package hfc_test

// Facade tests: the public import surface (package hfc) must be sufficient
// to run the whole framework without touching internal packages directly.

import (
	"math/rand"
	"testing"

	"hfc"
	"hfc/internal/netsim"
	"hfc/internal/topology"
)

func facadeWorld(t *testing.T, seed int64) (*netsim.Network, []int, []int, []hfc.CapabilitySet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	phys, err := topology.GenerateTransitStub(rng, topology.DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	net, err := netsim.New(phys)
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	stubs := phys.StubNodes()
	perm := rng.Perm(len(stubs))
	landmarks := make([]int, 6)
	for i := range landmarks {
		landmarks[i] = stubs[perm[i]]
	}
	proxies := make([]int, 40)
	for i := range proxies {
		proxies[i] = stubs[perm[6+i]]
	}
	services := []hfc.Service{"watermark", "transcode", "mix", "compress", "resize", "caption"}
	caps := make([]hfc.CapabilitySet, len(proxies))
	for i := range caps {
		count := 1 + rng.Intn(3)
		caps[i] = hfc.NewCapabilitySet()
		for _, idx := range rng.Perm(len(services))[:count] {
			caps[i].Add(services[idx])
		}
	}
	return net, landmarks, proxies, caps
}

func TestFacadeBootstrapAndRoute(t *testing.T) {
	net, landmarks, proxies, caps := facadeWorld(t, 1)
	rng := rand.New(rand.NewSource(2))
	fw, err := hfc.Bootstrap(rng, net, landmarks, proxies, caps, hfc.Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if err := fw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sg, err := hfc.Linear("watermark", "transcode", "compress")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := hfc.Request{Source: 0, Dest: 39, SG: sg}
	path, err := fw.Route(req)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if err := path.Validate(req, caps); err != nil {
		t.Fatalf("path invalid: %v", err)
	}
	services := path.Services()
	if len(services) != 3 || services[0] != "watermark" || services[2] != "compress" {
		t.Errorf("services = %v", services)
	}
}

func TestFacadeDetailedRoute(t *testing.T) {
	net, landmarks, proxies, caps := facadeWorld(t, 3)
	rng := rand.New(rand.NewSource(4))
	fw, err := hfc.Bootstrap(rng, net, landmarks, proxies, caps, hfc.Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	sg, err := hfc.Linear("mix", "resize")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	res, err := fw.RouteDetailed(hfc.Request{Source: 5, Dest: 20, SG: sg})
	if err != nil {
		t.Fatalf("RouteDetailed: %v", err)
	}
	if len(res.CSP) != 2 {
		t.Errorf("CSP = %v", res.CSP)
	}
	if len(res.Children) == 0 {
		t.Error("no child requests exposed")
	}
	if fw.NumClusters() < 1 || fw.N() != 40 {
		t.Errorf("framework shape wrong: %d clusters, %d nodes", fw.NumClusters(), fw.N())
	}
}
