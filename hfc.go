// Package hfc is a from-scratch Go reproduction of "Large-Scale Service
// Overlay Networking with Distance-Based Clustering" (Jin & Nahrstedt,
// Middleware 2003): a hierarchical service-routing middleware for large
// service overlay networks.
//
// The paper's pipeline, end to end:
//
//   - overlay proxies obtain a complete distance map with O(m² + nm)
//     measurements via landmark-based network coordinates (GNP);
//   - proxies are clustered by Internet distance with Zahn's MST method;
//   - the clusters form an HFC (Hierarchically Fully-Connected) topology:
//     full connectivity inside clusters, closest-pair border proxies
//     between clusters;
//   - a two-tier state protocol gives every proxy full state of its own
//     cluster (SCT_P) and aggregate state of every other cluster (SCT_C);
//   - service requests (source proxy + service dependency graph +
//     destination proxy) are routed hierarchically: the destination proxy
//     computes a cluster-level service path over the aggregate state,
//     dissects it into per-cluster child requests, and composes the
//     optimal intra-cluster answers.
//
// This package is the import surface: it re-exports the assembled
// framework from internal/core. The substrates live in internal/... (see
// DESIGN.md for the inventory), runnable examples in examples/, and the
// paper's full evaluation in cmd/experiments.
package hfc

import (
	"math/rand"

	"hfc/internal/coords"
	"hfc/internal/core"
	"hfc/internal/routing"
	"hfc/internal/svc"
)

// Framework is the assembled HFC service-routing middleware.
type Framework = core.Framework

// Config tunes framework construction; the zero value selects the paper's
// settings.
type Config = core.Config

// Service is a unique service name.
type Service = svc.Service

// Request is a service request: source proxy, service graph, destination
// proxy.
type Request = svc.Request

// ServiceGraph is a linear or non-linear service dependency DAG.
type ServiceGraph = svc.Graph

// CapabilitySet is the set of services installed on one proxy.
type CapabilitySet = svc.CapabilitySet

// Path is a concrete service path.
type Path = routing.Path

// Measurer is the measurement substrate Bootstrap probes for delays;
// *netsim.Network implements it, as would a real ping layer.
type Measurer = coords.Measurer

// Bootstrap builds the framework over a measurement substrate: landmark
// and proxy node IDs, per-proxy service deployments, and a configuration.
// See core.Bootstrap.
func Bootstrap(rng *rand.Rand, m Measurer, landmarks, proxies []int, caps []CapabilitySet, cfg Config) (*Framework, error) {
	return core.Bootstrap(rng, m, landmarks, proxies, caps, cfg)
}

// Linear builds a linear service graph s0 → s1 → ….
func Linear(services ...Service) (*ServiceGraph, error) {
	return svc.Linear(services...)
}

// NewCapabilitySet builds a capability set from service names.
func NewCapabilitySet(services ...Service) CapabilitySet {
	return svc.NewCapabilitySet(services...)
}
