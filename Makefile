# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race lint vet bench bench-full bench-compare bench-scale chaos sim fmt

# Output snapshot for the regression-gate benchmarks (see cmd/benchgate).
BENCH_OUT ?= BENCH_pr9.json

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs go vet plus hfcvet, the project's own analyzer suite
# (lockscope, guardedby, detrand, floatdist, errsweep plus the v2
# flow-sensitive passes lockorder, maporder, hotalloc, atomicmix, and
# selected std passes). See DESIGN.md "Concurrency & determinism
# invariants".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hfcvet ./...

# vet is the machine-readable variant: the registered-analyzer roster
# followed by the full suite with -json diagnostics (one JSON object per
# package, keyed by analyzer), for tooling that consumes findings.
vet:
	$(GO) run ./cmd/hfcvet -list
	$(GO) run ./cmd/hfcvet -json ./...

# bench runs the BenchmarkGate* regression gates and snapshots ns/op; CI
# compares a fresh snapshot against the newest committed BENCH_*.json and
# fails on >20% regressions.
bench:
	$(GO) run ./cmd/benchgate -write $(BENCH_OUT)

# bench-compare gates the working tree against the newest committed
# snapshot without overwriting it.
bench-compare:
	$(GO) run ./cmd/benchgate -write /tmp/bench-current.json
	$(GO) run ./cmd/benchgate -compare "$$(ls BENCH_*.json | sort | tail -1),/tmp/bench-current.json"

# bench-full runs the whole paper-reproduction benchmark suite.
bench-full:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-scale is the large-n construction smoke: one n=32k overlay built
# end-to-end through the geometric engine (no dense matrix) under a
# wall-clock budget. See DESIGN.md "The geometric engine".
bench-scale:
	HFC_BENCH_SCALE=1 $(GO) test -run TestScaleSmoke -v ./internal/experiments/

# chaos runs the partition→heal drill and its relatives under the race
# detector — the fault-injection acceptance suite CI's chaos job runs.
chaos:
	$(GO) test -race -run 'TestPartitionHealDrill|TestScheduledChaosAlwaysReconverges|TestRunnerTraceDeterminism' -count 2 ./internal/chaos/
	$(GO) test -race -run 'TestGrayNodeQuarantineAndRelease|TestDegradedRouteFallback' ./internal/overlay/
	$(GO) test -race -run 'TestEngineDegraded|TestEngineExcludesUnavailableProvider' ./internal/serve/

# sim runs the virtual-time determinism suite plus the 32k convergence
# drill under the race detector — CI's sim job. The 100k acceptance drill
# is opt-in: HFC_SIM_SCALE=1 go test -run TestSimConverge100k ./internal/experiments/
sim:
	$(GO) test -race -run 'TestSimulateDeterministic|TestNetsimLatencyUnderVirtualTime' -count 2 ./internal/overlay/
	$(GO) test -race -run 'TestRunnerDeterministicUnderVirtualTime' -count 2 ./internal/chaos/
	$(GO) test -race -run 'TestSimScaleConvergence' -timeout 30m ./internal/experiments/

fmt:
	gofmt -l -w $$(git ls-files '*.go' | grep -v '^vendor/')
