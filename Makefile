# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race lint bench fmt

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs go vet plus hfcvet, the project's own analyzer suite
# (lockscope, guardedby, detrand, floatdist, errsweep + selected std
# passes). See DESIGN.md "Concurrency & determinism invariants".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hfcvet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

fmt:
	gofmt -l -w $$(git ls-files '*.go' | grep -v '^vendor/')
