// Command benchgate runs the BenchmarkGate* regression benchmarks and
// gates changes on the results.
//
//	benchgate -write BENCH_pr3.json          # run the gates, snapshot ns/op
//	benchgate -compare old.json,new.json     # fail on >threshold regressions
//
// Snapshots keep the MINIMUM ns/op and allocs/op over -count runs per
// benchmark — the least-noisy estimator of the true cost on a shared
// machine (benchmarks run under -benchmem). Compare mode exits non-zero if
// any benchmark present in the old snapshot regressed by more than
// -threshold (default 20%) in ns/op or allocs/op, or disappeared. Old
// snapshots without alloc data compare on ns/op only, so the format is
// backward compatible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the on-disk format: benchmark name → best ns/op and
// allocs/op.
type Snapshot struct {
	// Benchmarks maps the bare benchmark name (no -GOMAXPROCS suffix) to
	// its minimum observed ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Allocs maps the benchmark name to its minimum observed allocs/op.
	// Absent in snapshots taken before alloc gating; such entries compare
	// on ns/op only.
	Allocs map[string]float64 `json:"allocs,omitempty"`
}

func main() {
	var (
		write     = flag.String("write", "", "run the gate benchmarks and write a snapshot to this file")
		compare   = flag.String("compare", "", "compare two snapshots: old.json,new.json")
		threshold = flag.Float64("threshold", 0.20, "max allowed fractional ns/op regression in -compare")
		benchRE   = flag.String("bench", "^BenchmarkGate", "benchmark selection regexp passed to go test")
		benchtime = flag.String("benchtime", "5x", "per-benchmark -benchtime passed to go test")
		count     = flag.Int("count", 2, "-count passed to go test; minimum ns/op wins")
		pkg       = flag.String("pkg", ".", "package containing the gate benchmarks")
	)
	flag.Parse()

	switch {
	case *write != "" && *compare != "":
		fatalf("use -write or -compare, not both")
	case *write != "":
		if err := runWrite(*write, *benchRE, *benchtime, *count, *pkg); err != nil {
			fatalf("%v", err)
		}
	case *compare != "":
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			fatalf("-compare wants old.json,new.json")
		}
		if err := runCompare(parts[0], parts[1], *threshold); err != nil {
			fatalf("%v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

func runWrite(path, benchRE, benchtime string, count int, pkg string) error {
	args := []string{
		"test", "-run", "^$",
		"-bench", benchRE,
		"-benchmem",
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	snap, err := parseBenchOutput(string(out))
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks matched %q", benchRE)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	names := sortedNames(snap)
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(names))
	for _, n := range names {
		fmt.Printf("  %-44s %14.0f ns/op %10.0f allocs/op\n", n, snap.Benchmarks[n], snap.Allocs[n])
	}
	return nil
}

// parseBenchOutput extracts per-benchmark minimum ns/op and allocs/op from
// `go test -bench -benchmem` output lines such as:
//
//	BenchmarkGateRouteResolve-8    50    158831 ns/op    1234 B/op    37 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots from machines with
// different core counts stay comparable by name.
func parseBenchOutput(out string) (*Snapshot, error) {
	snap := &Snapshot{
		Benchmarks: make(map[string]float64),
		Allocs:     make(map[string]float64),
	}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var ns, allocs float64
		foundNS, foundAllocs := false, false
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op on line %q: %w", line, err)
				}
				ns, foundNS = v, true
			case "allocs/op":
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op on line %q: %w", line, err)
				}
				allocs, foundAllocs = v, true
			}
		}
		if !foundNS {
			continue
		}
		if prev, ok := snap.Benchmarks[name]; !ok || ns < prev {
			snap.Benchmarks[name] = ns
		}
		if foundAllocs {
			if prev, ok := snap.Allocs[name]; !ok || allocs < prev {
				snap.Allocs[name] = allocs
			}
		}
	}
	return snap, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks key", path)
	}
	return &snap, nil
}

func runCompare(oldPath, newPath string, threshold float64) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range sortedNames(oldSnap) {
		oldNS := oldSnap.Benchmarks[name]
		newNS, ok := newSnap.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from %s", name, newPath))
			continue
		}
		ratio := newNS / oldNS
		status := "ok"
		if ratio > 1+threshold {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, oldNS, newNS, (ratio-1)*100))
		}
		fmt.Printf("  %-44s %14.0f -> %14.0f ns/op  %+7.1f%%  %s\n", name, oldNS, newNS, (ratio-1)*100, status)

		// Alloc gating only applies when the old snapshot recorded allocs
		// for this benchmark (snapshots predating -benchmem have none).
		oldAllocs, haveOld := oldSnap.Allocs[name]
		newAllocs, haveNew := newSnap.Allocs[name]
		if !haveOld {
			continue
		}
		if !haveNew {
			failures = append(failures, fmt.Sprintf("%s: allocs/op missing from %s", name, newPath))
			continue
		}
		if newAllocs > oldAllocs*(1+threshold) {
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f allocs/op", name, oldAllocs, newAllocs))
			fmt.Printf("  %-44s %14.0f -> %14.0f allocs/op          REGRESSED\n", name, oldAllocs, newAllocs)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.0f%%:\n  %s",
			len(failures), threshold*100, strings.Join(failures, "\n  "))
	}
	fmt.Printf("all %d benchmarks within %.0f%% of %s\n", len(oldSnap.Benchmarks), threshold*100, oldPath)
	return nil
}

func sortedNames(s *Snapshot) []string {
	names := make([]string, 0, len(s.Benchmarks))
	for n := range s.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
