// Command hfcroute builds a seeded simulation environment, routes service
// requests through the HFC framework, and prints the paper's Fig. 7
// artifacts for each: the cluster-level service path, the child requests,
// and the composed concrete path, with lengths under both the embedded and
// the true-delay metric.
//
// Usage:
//
//	hfcroute -proxies 250 -requests 3 -seed 7
//	hfcroute -proxies 100 -services "s1,s2,s3" -source 5 -dest 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hfc/internal/env"
	"hfc/internal/svc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hfcroute:", err)
		os.Exit(1)
	}
}

func run() error {
	proxies := flag.Int("proxies", 100, "overlay size")
	phys := flag.Int("phys", 0, "physical topology size (default: scaled from proxies)")
	requests := flag.Int("requests", 3, "number of random requests to route (ignored with -services)")
	seed := flag.Int64("seed", 1, "random seed")
	services := flag.String("services", "", "comma-separated linear service chain for one explicit request")
	source := flag.Int("source", 0, "source proxy for -services")
	dest := flag.Int("dest", 1, "destination proxy for -services")
	dot := flag.String("dot", "", "write the HFC topology as Graphviz to this file (render with dot -Kneato -n -Tsvg)")
	flag.Parse()

	spec := env.SmallSpec(*seed)
	spec.Proxies = *proxies
	if *phys != 0 {
		spec.PhysicalNodes = *phys
	} else if *proxies > 200 {
		spec.PhysicalNodes = *proxies + *proxies/5
	}
	spec.CatalogSize = 40
	spec.MinServices, spec.MaxServices = 4, 10
	spec.MinRequestLen, spec.MaxRequestLen = 4, 10

	fmt.Printf("building environment: %d proxies on %d physical nodes (seed %d)...\n",
		spec.Proxies, spec.PhysicalNodes, spec.Seed)
	e, err := env.Build(spec)
	if err != nil {
		return err
	}
	fw := e.Framework
	fmt.Printf("clusters: %d, border proxies: %d, state messages: %d\n\n",
		fw.NumClusters(), len(fw.Topology().BorderNodes()), fw.StateMessageStats().Total())

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		werr := fw.Topology().WriteDOT(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote topology graph to %s\n\n", *dot)
	}

	var reqs []svc.Request
	if *services != "" {
		var names []svc.Service
		for _, s := range strings.Split(*services, ",") {
			names = append(names, svc.Service(strings.TrimSpace(s)))
		}
		sg, err := svc.Linear(names...)
		if err != nil {
			return err
		}
		reqs = append(reqs, svc.Request{Source: *source, Dest: *dest, SG: sg})
	} else {
		for i := 0; i < *requests; i++ {
			r, err := e.NextRequest()
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
	}

	for i, req := range reqs {
		fmt.Printf("request %d: proxy %d -> [%s] -> proxy %d\n", i, req.Source, req.SG, req.Dest)
		res, err := fw.RouteDetailed(req)
		if err != nil {
			fmt.Printf("  routing failed: %v\n\n", err)
			continue
		}
		fmt.Printf("  CSP (lower-bound cost %.1f):", res.CSPCost)
		for _, entry := range res.CSP {
			fmt.Printf(" %s/C%d", req.SG.Services[entry.SGVertex], entry.Cluster)
		}
		fmt.Println()
		for j, child := range res.Children {
			fmt.Printf("  child %d: cluster %d, %d..%d, services %v (resolver %d)\n",
				j, child.Cluster, child.Source, child.Dest, child.Services, child.Resolver)
		}
		fmt.Printf("  final path: %s\n", res.Path)
		fmt.Printf("  length: %.1f embedded, %.1f ms true delay, %d relays\n\n",
			res.Path.Length(fw.Topology().Dist), res.Path.Length(e.TrueDist), res.Path.NumRelays())
	}
	return nil
}
