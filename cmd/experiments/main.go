// Command experiments regenerates every table and figure of the paper's §6
// evaluation, plus the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	experiments -run all                 # everything, reduced defaults
//	experiments -run fig10 -full         # paper-scale Fig. 10 (minutes)
//	experiments -run table1,fig9a,fig9b
//	experiments -run ablation-k,ablation-relax
//
// Runs: table1, fig9a, fig9b, fig10, messages, qos, multilevel,
// convergence, faults, chaos, serve, scale, simscale, ablation-k,
// ablation-dim, ablation-relax, ablation-border, ablation-landmarks,
// ablation-churn. `scale` sweeps overlay construction over the
// spatial-index engine at n=1k/8k (plus 32k and 100k with -full);
// `simscale` runs the virtual-time protocol simulation — churn, crashes,
// partition, probes — at the same sizes, tri-level above 50k.
//
// -cpuprofile/-memprofile write runtime/pprof profiles, flushed on clean
// shutdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hfc/internal/env"
	"hfc/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.String("run", "all", "comma-separated experiments to run (all, table1, fig9a, fig9b, fig10, messages, qos, multilevel, convergence, faults, chaos, serve, scale, simscale, ablation-k, ablation-dim, ablation-relax, ablation-border, ablation-landmarks, ablation-churn)")
	seed := flag.Int64("seed", 42, "base random seed")
	full := flag.Bool("full", false, "paper-scale sample sizes (5 trials, 1000 requests; takes minutes)")
	trials := flag.Int("trials", 0, "override trial count")
	requests := flag.Int("requests", 0, "override request count")
	parallel := flag.Int("parallel", 0, "worker pool for environment builds (0/1 serial, -1 all cores; results are bit-identical)")
	routeCache := flag.Bool("route-cache", false, "enable the invalidation-aware route cache in built frameworks")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on clean shutdown")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", cerr)
			}
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	nTrials, nRequests := 2, 200
	if *full {
		// §6.2: "up to 5 runs ... with 1000 client requests per each run";
		// §6.1: 10 physical topologies per size.
		nTrials, nRequests = 5, 1000
	}
	if *trials > 0 {
		nTrials = *trials
	}
	if *requests > 0 {
		nRequests = *requests
	}
	fig9Trials := nTrials
	if *full {
		fig9Trials = 10
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*runs, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	specs := env.Table1(*seed)
	for i := range specs {
		specs[i].Workers = *parallel
		specs[i].CacheRoutes = *routeCache
	}

	// The ablations run on the 250-proxy environment; paper-scale sweeps
	// on every size would add little beyond runtime.
	ablSpec := specs[0]

	section := func(name string) bool { return all || want[name] }
	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if section("table1") {
		fmt.Print(experiments.FormatTable1(specs))
		fmt.Println()
	}
	if section("fig9a") || section("fig9b") {
		if err := timed("fig9", func() error {
			rows, err := experiments.RunFig9(specs, fig9Trials)
			if err != nil {
				return err
			}
			if section("fig9a") {
				fmt.Print(experiments.FormatFig9a(rows))
			}
			if section("fig9b") {
				fmt.Print(experiments.FormatFig9b(rows))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if section("fig10") {
		if err := timed("fig10", func() error {
			rows, err := experiments.RunFig10(specs, nTrials, nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFig10(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("messages") {
		if err := timed("messages", func() error {
			rows, err := experiments.RunMessageOverhead(specs)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatMessageOverhead(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("ablation-k") {
		if err := timed("ablation-k", func() error {
			rows, err := experiments.RunAblationK(ablSpec, []float64{1.5, 2, 3, 4, 6}, nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblationK(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("ablation-dim") {
		if err := timed("ablation-dim", func() error {
			rows, err := experiments.RunAblationDim(ablSpec, []int{2, 3, 4, 5}, nRequests, 2000)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblationDim(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("ablation-relax") {
		if err := timed("ablation-relax", func() error {
			rows, err := experiments.RunAblationRelax(ablSpec, nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblationRelax(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("ablation-border") {
		if err := timed("ablation-border", func() error {
			rows, err := experiments.RunAblationBorder(ablSpec, nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblationBorder(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("qos") {
		if err := timed("qos", func() error {
			rows, err := experiments.RunQoS(ablSpec, experiments.DefaultQoSSettings(), nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatQoS(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("multilevel") {
		if err := timed("multilevel", func() error {
			rows, err := experiments.RunMultiLevel(specs, nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatMultiLevel(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("ablation-landmarks") {
		if err := timed("ablation-landmarks", func() error {
			rows, err := experiments.RunAblationLandmarks(*seed, 300, 250, 10, 2000, nTrials)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblationLandmarks(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("convergence") {
		if err := timed("convergence", func() error {
			spec := ablSpec
			spec.Proxies = 120
			rows, err := experiments.RunConvergence(spec, []float64{0, 0.1, 0.3, 0.5, 0.7}, nTrials+2, 60)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatConvergence(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("faults") {
		if err := timed("faults", func() error {
			spec := ablSpec
			spec.Proxies = 120
			rows, err := experiments.RunFaults(spec, []float64{0, 0.05, 0.10, 0.20}, nTrials, nRequests)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFaults(rows))
			fmt.Println()
			frows, err := experiments.RunBorderFailover(spec, nTrials+1, nRequests/2+1)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatBorderFailover(frows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("chaos") {
		if err := timed("chaos", func() error {
			spec := ablSpec
			spec.Proxies = 120
			// Every failed resolution during the cut burns a route
			// timeout of wall clock; a modest request set keeps the
			// drill in seconds.
			n := nRequests
			if n > 60 {
				n = 60
			}
			rows, err := experiments.RunChaosDrill(spec, nTrials, n)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatChaosDrill(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("serve") {
		if err := timed("serve", func() error {
			spec := env.SmallSpec(*seed)
			spec.Proxies = 150
			spec.Workers = *parallel
			n := nRequests
			if n > 500 {
				n = 500
			}
			rows, err := experiments.RunServe(spec, n, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatServe(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("ablation-churn") {
		if err := timed("ablation-churn", func() error {
			rows, err := experiments.RunAblationChurn(*seed, 150, []int{0, 25, 50, 100, 200})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblationChurn(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("scale") {
		if err := timed("scale", func() error {
			sizes := []int{1000, 8000}
			if *full {
				sizes = []int{1000, 8000, 32000, 100000}
			}
			rows, err := experiments.RunScale(*seed, sizes)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatScale(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if section("simscale") {
		if err := timed("simscale", func() error {
			sizes := []int{1000, 8000}
			if *full {
				sizes = []int{1000, 8000, 32000, 100000}
			}
			rows, err := experiments.RunSimScale(*seed, sizes, 0)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSimScale(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
