// Command hfcvet machine-checks the repo's concurrency and determinism
// invariants: the four custom analyzers (lockscope, guardedby, detrand,
// floatdist) plus the errsweep error-return sweep, alongside a selection
// of the standard go vet passes.
//
// Usage:
//
//	go run ./cmd/hfcvet ./...
//
// Internally the binary speaks the unitchecker protocol, so the command
// above re-executes itself as `go vet -vettool=<self> <patterns>`: the
// go tool handles package loading, caching and dependency facts, which
// keeps hfcvet runs incremental and proxy-free (the analysis framework
// is vendored from the Go toolchain's own copy of x/tools).
//
// Suppressions: a diagnostic from analyzer NAME is silenced by a comment
// `//hfcvet:ignore NAME <justification>` on the same line or the line
// above. See DESIGN.md "Concurrency & determinism invariants".
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/testinggoroutine"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"hfc/internal/analysis/detrand"
	"hfc/internal/analysis/errsweep"
	"hfc/internal/analysis/floatdist"
	"hfc/internal/analysis/guardedby"
	"hfc/internal/analysis/lockscope"
)

// analyzers is the full hfcvet suite: custom invariants first, then the
// go vet standard passes that apply to a pure-Go repo.
var analyzers = []*analysis.Analyzer{
	lockscope.Analyzer,
	guardedby.Analyzer,
	detrand.Analyzer,
	floatdist.Analyzer,
	errsweep.Analyzer,

	assign.Analyzer,
	atomic.Analyzer,
	bools.Analyzer,
	copylock.Analyzer,
	defers.Analyzer,
	errorsas.Analyzer,
	httpresponse.Analyzer,
	ifaceassert.Analyzer,
	loopclosure.Analyzer,
	lostcancel.Analyzer,
	nilfunc.Analyzer,
	printf.Analyzer,
	sigchanyzer.Analyzer,
	stdmethods.Analyzer,
	stringintconv.Analyzer,
	structtag.Analyzer,
	testinggoroutine.Analyzer,
	tests.Analyzer,
	unmarshal.Analyzer,
	unreachable.Analyzer,
	unusedresult.Analyzer,
}

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(analyzers...) // does not return
	}

	// Driver mode: hand package loading to the go tool, pointing it back
	// at this binary as the vet tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfcvet:", err)
		os.Exit(1)
	}
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "hfcvet:", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether the arguments follow the unitchecker
// protocol (go vet invoking us), as opposed to user package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
