// Command hfcvet machine-checks the repo's concurrency and determinism
// invariants: the v1 analyzers (lockscope, guardedby, detrand, floatdist,
// errsweep) and the v2 flow-sensitive suite (lockorder, maporder,
// hotalloc, atomicmix), alongside a selection of the standard go vet
// passes.
//
// Usage:
//
//	go run ./cmd/hfcvet ./...          # whole-tree check
//	go run ./cmd/hfcvet -list          # print the registered analyzers
//	go run ./cmd/hfcvet -json ./...    # machine-readable diagnostics
//
// Internally the binary speaks the unitchecker protocol, so the check
// re-executes itself as `go vet -vettool=<self> <patterns>`: the go tool
// handles package loading, caching and dependency facts — which is what
// lets lockorder assemble its cross-package lock graph incrementally —
// and stays proxy-free (the analysis framework is vendored from the Go
// toolchain's own copy of x/tools).
//
// Suppressions: a diagnostic from analyzer NAME is silenced by a comment
// `//hfcvet:ignore NAME <justification>` on the same line or the line
// above; a suppression that no longer matches any diagnostic is itself
// reported as stale. See DESIGN.md "Concurrency & determinism invariants".
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/testinggoroutine"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"hfc/internal/analysis/atomicmix"
	"hfc/internal/analysis/detrand"
	"hfc/internal/analysis/errsweep"
	"hfc/internal/analysis/floatdist"
	"hfc/internal/analysis/guardedby"
	"hfc/internal/analysis/hotalloc"
	"hfc/internal/analysis/lockorder"
	"hfc/internal/analysis/lockscope"
	"hfc/internal/analysis/maporder"
)

// analyzers is the full hfcvet suite: custom invariants first (v1 then
// the v2 flow-sensitive passes), then the go vet standard passes that
// apply to a pure-Go repo.
var analyzers = []*analysis.Analyzer{
	lockscope.Analyzer,
	guardedby.Analyzer,
	detrand.Analyzer,
	floatdist.Analyzer,
	errsweep.Analyzer,
	lockorder.Analyzer,
	maporder.Analyzer,
	hotalloc.Analyzer,
	atomicmix.Analyzer,

	assign.Analyzer,
	atomic.Analyzer,
	bools.Analyzer,
	copylock.Analyzer,
	defers.Analyzer,
	errorsas.Analyzer,
	httpresponse.Analyzer,
	ifaceassert.Analyzer,
	loopclosure.Analyzer,
	lostcancel.Analyzer,
	nilfunc.Analyzer,
	printf.Analyzer,
	sigchanyzer.Analyzer,
	stdmethods.Analyzer,
	stringintconv.Analyzer,
	structtag.Analyzer,
	testinggoroutine.Analyzer,
	tests.Analyzer,
	unmarshal.Analyzer,
	unreachable.Analyzer,
	unusedresult.Analyzer,
}

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(analyzers...) // does not return
	}

	// Driver mode: hand package loading to the go tool, pointing it back
	// at this binary as the vet tool. -list and -json are driver flags;
	// everything else is a package pattern.
	var jsonOut bool
	var patterns []string
	for _, a := range os.Args[1:] {
		switch a {
		case "-list", "--list":
			listAnalyzers()
			return
		case "-json", "--json":
			jsonOut = true
		default:
			patterns = append(patterns, a)
		}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfcvet:", err)
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"vet", "-vettool=" + self}
	if jsonOut {
		args = append(args, "-json")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "hfcvet:", err)
		os.Exit(1)
	}
}

// listAnalyzers prints the registered analyzers, one per line, with the
// first sentence of their doc — the contract surfaced by `hfcvet -list`.
func listAnalyzers() {
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("%-18s %s\n", a.Name, doc)
	}
}

// vetProtocol reports whether the arguments follow the unitchecker
// protocol (go vet invoking us), as opposed to user package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
