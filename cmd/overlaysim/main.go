// Command overlaysim runs the HFC framework as a live concurrent system:
// one goroutine per proxy, periodic §4 state-protocol rounds, and a stream
// of client service requests resolved by actual message exchange between
// the destination proxy and the clusters' resolver proxies.
//
// Usage:
//
//	overlaysim -proxies 120 -requests 50 -rounds 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hfc/internal/env"
	"hfc/internal/overlay"
	"hfc/internal/state"
	"hfc/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overlaysim:", err)
		os.Exit(1)
	}
}

func run() error {
	proxies := flag.Int("proxies", 120, "overlay size")
	requests := flag.Int("requests", 50, "service requests to route")
	rounds := flag.Int("rounds", 3, "state protocol rounds before routing")
	seed := flag.Int64("seed", 1, "random seed")
	delay := flag.Duration("delay", 0, "simulated wall-clock delay per embedded distance unit (e.g. 10us)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on clean shutdown")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "overlaysim: cpuprofile:", cerr)
			}
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "overlaysim: cpuprofile:", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "overlaysim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "overlaysim: memprofile:", err)
			}
		}()
	}

	spec := env.SmallSpec(*seed)
	spec.Proxies = *proxies
	if *proxies > 200 {
		spec.PhysicalNodes = *proxies + *proxies/5
	}
	fmt.Printf("building environment (%d proxies, seed %d)...\n", spec.Proxies, spec.Seed)
	e, err := env.Build(spec)
	if err != nil {
		return err
	}
	topo := e.Framework.Topology()
	caps := e.Framework.Capabilities()

	sys, err := overlay.New(topo, caps, overlay.Config{DelayPerUnit: *delay})
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	defer func() {
		if err := sys.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "overlaysim: stop:", err)
		}
	}()

	fmt.Printf("running %d state-protocol rounds over %d clusters...\n", *rounds, topo.NumClusters())
	start := time.Now()
	for i := 0; i < *rounds; i++ {
		sys.TriggerStateRound()
		sys.Quiesce()
	}
	states, err := sys.States()
	if err != nil {
		return err
	}
	if err := state.VerifyConvergence(topo, caps, states); err != nil {
		return fmt.Errorf("protocol did not converge: %w", err)
	}
	traffic := sys.Traffic()
	fmt.Printf("state converged in %v (verified against the synchronous model)\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("protocol traffic: %d local, %d aggregate messages over %d rounds\n\n",
		traffic.Local, traffic.Aggregate, *rounds)

	var lengths, relays []float64
	failed := 0
	start = time.Now()
	for i := 0; i < *requests; i++ {
		req, err := e.NextRequest()
		if err != nil {
			return err
		}
		res, err := sys.Route(req)
		if err != nil {
			failed++
			continue
		}
		if err := res.Path.Validate(req, caps); err != nil {
			return fmt.Errorf("request %d produced invalid path: %w", i, err)
		}
		lengths = append(lengths, res.Path.Length(e.TrueDist))
		relays = append(relays, float64(res.Path.NumRelays()))
	}
	elapsed := time.Since(start)
	fmt.Printf("routed %d requests in %v (%d failed)\n", len(lengths), elapsed.Round(time.Millisecond), failed)
	fmt.Printf("true-delay path length: %s\n", stats.Summarize(lengths))
	fmt.Printf("relay hops per path:    %s\n", stats.Summarize(relays))
	return nil
}
