// Command topogen generates transit-stub (or Waxman / flat random) physical
// topologies and writes them as JSON, with an optional summary of the delay
// structure. It is the reproduction's stand-in for GT-ITM. The output can
// be read back with topology.ReadJSON (and `topogen -check` verifies the
// round trip).
//
// Usage:
//
//	topogen -model ts -size 600 -seed 7 -o topo.json
//	topogen -model waxman -n 200 -summary
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hfc/internal/stats"
	"hfc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "ts", "topology model: ts (transit-stub), waxman, flat")
	size := flag.Int("size", 300, "target node count for -model ts (must be >= 100)")
	n := flag.Int("n", 100, "node count for -model waxman/flat")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	summary := flag.Bool("summary", false, "print delay-structure summary to stderr")
	check := flag.Bool("check", false, "verify the serialized topology round-trips")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var topo *topology.Topology
	var err error
	switch *model {
	case "ts":
		var cfg topology.TransitStubConfig
		cfg, err = topology.ConfigForSize(*size)
		if err != nil {
			return err
		}
		topo, err = topology.GenerateTransitStub(rng, cfg)
	case "waxman":
		topo, err = topology.GenerateWaxman(rng, *n, 1000, 0.4, 0.2)
	case "flat":
		topo, err = topology.GenerateFlatRandom(rng, *n, 0.05, topology.DelayRange{Lo: 1, Hi: 50})
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	if err := topo.WriteJSON(&buf); err != nil {
		return err
	}
	if *check {
		reread, err := topology.ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return fmt.Errorf("round-trip failed: %w", err)
		}
		if reread.N() != topo.N() || reread.Graph.M() != topo.Graph.M() {
			return fmt.Errorf("round-trip mismatch: %d/%d nodes, %d/%d edges",
				reread.N(), topo.N(), reread.Graph.M(), topo.Graph.M())
		}
		fmt.Fprintln(os.Stderr, "round-trip ok")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "topogen: closing output:", cerr)
			}
		}()
		w = f
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}

	if *summary {
		var delays []float64
		for _, e := range topo.Graph.Edges() {
			delays = append(delays, e.Weight)
		}
		fmt.Fprintf(os.Stderr, "nodes=%d edges=%d transit-domains=%d stub-domains=%d\n",
			topo.N(), topo.Graph.M(), topo.NumTransitDomains, topo.NumStubDomains)
		fmt.Fprintf(os.Stderr, "link delays: %s\n", stats.Summarize(delays))
	}
	return nil
}
