module hfc

go 1.22
