// Churn: the paper's §7 future-work scenario — dynamic membership — run on
// the concurrent overlay runtime. New proxies join the overlay over time
// with the join-nearest-cluster heuristic the paper suggests; the example
// tracks how clustering quality decays, triggers a full re-clustering when
// it degrades past a threshold, and shows routing staying correct
// throughout (each epoch rebuilds the HFC topology and re-converges state
// through the live message-passing system).
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/overlay"
	"hfc/internal/state"
	"hfc/internal/stats"
	"hfc/internal/svc"
)

// world is the evolving overlay membership.
type world struct {
	rng    *rand.Rand
	points []coords.Point
	caps   []svc.CapabilitySet
	cat    *svc.Catalog
	// assignment is maintained incrementally by join-nearest.
	assignment []int
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

func run() error {
	w := &world{rng: rand.New(rand.NewSource(31))}
	var err error
	w.cat, err = svc.NewCatalog(15)
	if err != nil {
		return err
	}

	// Initial membership: 5 tight neighbourhoods of 12 proxies.
	for b := 0; b < 5; b++ {
		cx := float64(b%3) * 300
		cy := float64(b/3) * 300
		for i := 0; i < 12; i++ {
			w.points = append(w.points, coords.Point{cx + w.rng.Float64()*40, cy + w.rng.Float64()*40})
		}
	}
	for range w.points {
		if err := w.deployServices(); err != nil {
			return err
		}
	}

	// Epoch 0: full clustering.
	cmap, err := coords.NewMap(w.points)
	if err != nil {
		return err
	}
	res, err := cluster.Cluster(len(w.points), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		return err
	}
	w.assignment = append([]int(nil), res.Assignment...)
	if err := w.runEpoch(0, res); err != nil {
		return err
	}

	// Epochs 1..3: 15 joins each via join-nearest; re-cluster when the
	// separation quality drops below threshold.
	const qualityFloor = 3.0
	for epoch := 1; epoch <= 3; epoch++ {
		for j := 0; j < 15; j++ {
			w.join()
			if err := w.deployServices(); err != nil {
				return err
			}
		}
		cmap, err := coords.NewMap(w.points)
		if err != nil {
			return err
		}
		joined := clusteringFrom(w.assignment)
		q := cluster.Evaluate(joined, cmap.Dist)
		fmt.Printf("epoch %d: %d proxies, %d clusters after join-nearest, separation %.1f\n",
			epoch, len(w.points), q.NumClusters, q.Separation)
		use := joined
		if q.Separation < qualityFloor {
			fmt.Printf("  separation below %.1f -> full re-clustering\n", qualityFloor)
			use, err = cluster.Cluster(len(w.points), cmap.Dist, cluster.DefaultConfig())
			if err != nil {
				return err
			}
			w.assignment = append(w.assignment[:0], use.Assignment...)
		}
		if err := w.runEpoch(epoch, use); err != nil {
			return err
		}
	}

	// Final phase: node crashes on the churned membership — fail-stop a
	// border proxy plus some regular proxies, keep routing through backup
	// borders and live providers, then recover everyone.
	return w.faultDrill()
}

// faultDrill crashes a primary border proxy and two regular proxies on the
// current membership, shows the overlay re-converging (modulo the crashed
// set) and routing around the failures, then recovers the nodes and
// re-verifies strict convergence.
func (w *world) faultDrill() error {
	cmap, err := coords.NewMap(w.points)
	if err != nil {
		return err
	}
	clustering, err := cluster.Cluster(len(w.points), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		return err
	}
	topo, err := hfc.Build(cmap, clustering)
	if err != nil {
		return err
	}
	sys, err := overlay.New(topo, w.caps, overlay.Config{})
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	defer func() {
		if err := sys.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "churn: stop:", err)
		}
	}()
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()

	// Crash one primary border proxy and two proxies with no border duty.
	victims := topo.BorderNodes()[:1]
	onDuty := map[int]bool{}
	for _, b := range topo.BorderNodes() {
		onDuty[b] = true
	}
	for _, b := range topo.BackupBorderNodes() {
		onDuty[b] = true
	}
	for i := 0; i < topo.N() && len(victims) < 3; i++ {
		if !onDuty[i] {
			victims = append(victims, i)
		}
	}
	for _, v := range victims {
		if err := sys.Crash(v); err != nil {
			return err
		}
	}
	rounds := 0
	for r := 1; r <= 10; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		ok, err := sys.ConvergedLive()
		if err != nil {
			return err
		}
		if ok {
			rounds = r
			break
		}
	}
	if rounds == 0 {
		return fmt.Errorf("fault drill: no re-convergence within 10 rounds")
	}
	fmt.Printf("fault drill: crashed %v (border %d), re-converged in %d round(s)\n",
		victims, victims[0], rounds)

	gen, err := svc.NewRequestGenerator(w.rng, w.caps, 2, 5)
	if err != nil {
		return err
	}
	routed := 0
	for i := 0; i < 20; i++ {
		req, err := gen.Next()
		if err != nil {
			return err
		}
		if sys.IsCrashed(req.Source) || sys.IsCrashed(req.Dest) {
			continue
		}
		res, err := sys.Route(req)
		if err != nil {
			return fmt.Errorf("fault drill request %d: %w", i, err)
		}
		if err := res.Path.Validate(req, w.caps); err != nil {
			return fmt.Errorf("fault drill request %d: %w", i, err)
		}
		routed++
	}
	fc := sys.FaultCounters()
	fmt.Printf("  routed %d requests around the crashes (%d sends dropped at crashed nodes)\n",
		routed, fc.DroppedToCrashed)

	for _, v := range victims {
		if err := sys.Recover(v); err != nil {
			return err
		}
	}
	for r := 0; r < 3; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
	}
	ok, err := sys.Converged()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("fault drill: no strict convergence after recovery")
	}
	fmt.Println("  recovered all; strict convergence restored")
	return nil
}

// deployServices gives the newest proxy 2-5 random services.
func (w *world) deployServices() error {
	if len(w.caps) >= len(w.points) {
		return nil
	}
	caps, err := svc.RandomCapabilities(w.rng, 1, w.cat, 2, 5)
	if err != nil {
		return err
	}
	w.caps = append(w.caps, caps[0])
	return nil
}

// join adds one proxy near a random existing proxy (a new machine in some
// stub domain) and assigns it to its nearest neighbour's cluster — the
// paper's suggested heuristic.
func (w *world) join() {
	anchor := w.points[w.rng.Intn(len(w.points))]
	p := coords.Point{anchor[0] + w.rng.NormFloat64()*30, anchor[1] + w.rng.NormFloat64()*30}
	best, bestD := 0, coords.Dist(p, w.points[0])
	for i := 1; i < len(w.points); i++ {
		if d := coords.Dist(p, w.points[i]); d < bestD {
			best, bestD = i, d
		}
	}
	w.points = append(w.points, p)
	w.assignment = append(w.assignment, w.assignment[best])
}

// runEpoch rebuilds the HFC topology for the current membership, runs the
// live state protocol to convergence, and routes a batch of requests.
func (w *world) runEpoch(epoch int, clustering *cluster.Result) error {
	cmap, err := coords.NewMap(w.points)
	if err != nil {
		return err
	}
	topo, err := hfc.Build(cmap, clustering)
	if err != nil {
		return err
	}
	sys, err := overlay.New(topo, w.caps, overlay.Config{})
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	defer func() {
		if err := sys.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "churn: stop:", err)
		}
	}()
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()
	states, err := sys.States()
	if err != nil {
		return err
	}
	if err := state.VerifyConvergence(topo, w.caps, states); err != nil {
		return fmt.Errorf("epoch %d: %w", epoch, err)
	}

	gen, err := svc.NewRequestGenerator(w.rng, w.caps, 2, 5)
	if err != nil {
		return err
	}
	var lengths []float64
	for i := 0; i < 20; i++ {
		req, err := gen.Next()
		if err != nil {
			return err
		}
		res, err := sys.Route(req)
		if err != nil {
			return err
		}
		if err := res.Path.Validate(req, w.caps); err != nil {
			return fmt.Errorf("epoch %d request %d: %w", epoch, i, err)
		}
		lengths = append(lengths, res.Path.Length(cmap.Dist))
	}
	fmt.Printf("  epoch %d live overlay: %d clusters, routed 20 requests, mean length %.1f\n",
		epoch, topo.NumClusters(), stats.Mean(lengths))
	return nil
}

// clusteringFrom densifies an assignment vector into a cluster.Result.
func clusteringFrom(assignment []int) *cluster.Result {
	remap := make(map[int]int)
	var clusters [][]int
	dense := make([]int, len(assignment))
	for node, c := range assignment {
		id, ok := remap[c]
		if !ok {
			id = len(clusters)
			remap[c] = id
			clusters = append(clusters, nil)
		}
		dense[node] = id
		clusters[id] = append(clusters[id], node)
	}
	return &cluster.Result{Assignment: dense, Clusters: clusters}
}
