// Multilevel: the tri-level HFC extension. The paper evaluates a bi-level
// hierarchy ("in a bi-level HFC hierarchy, two nodes are at most two nodes
// away"); this example adds a third tier — groups of clusters with
// super-border pairs — on the same overlay and shows the trade: every added
// level cuts per-proxy routing state further and pays with longer paths.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"math"
	"os"

	"hfc/internal/env"
	"hfc/internal/mlhfc"
	"hfc/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multilevel:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := env.SmallSpec(5)
	spec.Proxies = 150
	spec.PhysicalNodes = 300
	e, err := env.Build(spec)
	if err != nil {
		return err
	}
	fw := e.Framework
	biTopo := fw.Topology()
	caps := fw.Capabilities()

	cfg := mlhfc.DefaultConfig()
	cfg.TargetGroups = int(math.Round(math.Sqrt(float64(biTopo.NumClusters()))))
	tri, err := mlhfc.Build(biTopo.Coords(), cfg)
	if err != nil {
		return err
	}
	states, err := mlhfc.Distribute(tri, caps)
	if err != nil {
		return err
	}
	fmt.Printf("overlay: %d proxies\n", fw.N())
	fmt.Printf("bi-level:  %d clusters\n", biTopo.NumClusters())
	fmt.Printf("tri-level: %d groups", tri.NumGroups())
	for g := 0; g < tri.NumGroups(); g++ {
		fmt.Printf("  [group %d: %d proxies, %d clusters]", g, len(tri.Members(g)), tri.Interior(g).NumClusters())
	}
	fmt.Println()

	// State comparison.
	var biCoord, triCoord float64
	biStates := fw.States()
	var biSvc, triSvc float64
	for node := 0; node < fw.N(); node++ {
		view, err := biTopo.View(node)
		if err != nil {
			return err
		}
		biCoord += float64(view.CoordinateStateSize())
		biSvc += float64(biStates[node].ServiceStateSize())
		tc, err := tri.CoordinateStateSize(node)
		if err != nil {
			return err
		}
		triCoord += float64(tc)
		triSvc += float64(tri.ServiceStateSize(node))
	}
	n := float64(fw.N())
	fmt.Printf("\nper-proxy state (coordinates): flat %d, bi-level %.1f, tri-level %.1f\n",
		fw.N(), biCoord/n, triCoord/n)
	fmt.Printf("per-proxy state (services):    flat %d, bi-level %.1f, tri-level %.1f\n\n",
		fw.N(), biSvc/n, triSvc/n)

	// Path-quality comparison over the same requests.
	var biLens, triLens []float64
	var sample string
	for i := 0; i < 40; i++ {
		req, err := e.NextRequest()
		if err != nil {
			return err
		}
		biPath, err := fw.Route(req)
		if err != nil {
			return err
		}
		triRes, err := mlhfc.Route(tri, states, req)
		if err != nil {
			return err
		}
		biLens = append(biLens, biPath.Length(e.TrueDist))
		triLens = append(triLens, triRes.Path.Length(e.TrueDist))
		if i == 0 {
			sample = fmt.Sprintf("  request: %d -> [%s] -> %d\n  bi-level:  %s\n  tri-level: %s\n",
				req.Source, req.SG, req.Dest, biPath, triRes.Path)
		}
	}
	fmt.Printf("sample request resolved both ways:\n%s\n", sample)
	fmt.Printf("true-delay path length over 40 requests:\n")
	fmt.Printf("  bi-level:  %s\n", stats.Summarize(biLens))
	fmt.Printf("  tri-level: %s\n", stats.Summarize(triLens))
	fmt.Printf("\nthe trade: each hierarchy level cuts state and lengthens paths —\nthe deeper aggregation hides more internal distance from the router.\n")
	return nil
}
