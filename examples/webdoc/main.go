// Webdoc: the paper's second §2.1 application — web document
// customization — demonstrating a NON-LINEAR service graph (Fig. 2b). A
// document can reach the client through alternative preparations:
//
//	translate → merge → format   (translate first, then merge)
//	ocr → merge → format         (scanned source needs OCR instead)
//	ocr → format                 (scanned source used standalone)
//
// A feasible configuration is any source-to-sink path of the SG; the
// framework picks the configuration AND the providing proxies jointly, so
// the cheapest alternative wins.
//
//	go run ./examples/webdoc
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hfc/internal/core"
	"hfc/internal/netsim"
	"hfc/internal/svc"
	"hfc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webdoc:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(23))

	cfg, err := topology.ConfigForSize(300)
	if err != nil {
		return err
	}
	phys, err := topology.GenerateTransitStub(rng, cfg)
	if err != nil {
		return err
	}
	net, err := netsim.New(phys)
	if err != nil {
		return err
	}
	stubs := phys.StubNodes()
	perm := rng.Perm(len(stubs))
	landmarks := make([]int, 8)
	for i := range landmarks {
		landmarks[i] = stubs[perm[i]]
	}
	proxies := make([]int, 60)
	for i := range proxies {
		proxies[i] = stubs[perm[8+i]]
	}

	cat, err := svc.CatalogOf("translate", "merge", "format", "ocr", "spellcheck", "summarize")
	if err != nil {
		return err
	}
	caps, err := svc.RandomCapabilities(rng, len(proxies), cat, 2, 3)
	if err != nil {
		return err
	}
	fw, err := core.Bootstrap(rng, net, landmarks, proxies, caps, core.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("document proxy network: %d proxies, %d clusters\n\n", fw.N(), fw.NumClusters())

	// Fig. 2(b)-shaped SG. Vertices: translate(0), merge(1), format(2),
	// ocr(3). Edges: translate→merge, ocr→merge, merge→format, ocr→format.
	sg := &svc.Graph{
		Services: []svc.Service{"translate", "merge", "format", "ocr"},
		Edges:    [][2]int{{0, 1}, {3, 1}, {1, 2}, {3, 2}},
	}
	if err := sg.Validate(); err != nil {
		return err
	}
	fmt.Println("service graph:", sg)
	fmt.Println("feasible configurations:")
	for _, config := range sg.Configurations() {
		names := sg.ServicesOf(config)
		fmt.Printf("  %v\n", names)
	}

	req := svc.Request{Source: 2, Dest: 51, SG: sg}
	res, err := fw.RouteDetailed(req)
	if err != nil {
		return err
	}
	fmt.Printf("\nrequest: proxy %d -> proxy %d\n", req.Source, req.Dest)
	fmt.Printf("chosen configuration: %v\n", res.Path.Services())
	fmt.Printf("service path: %s\n", res.Path)
	fmt.Printf("embedded length %.1f\n", res.Path.Length(fw.Topology().Dist))
	return nil
}
