// Quickstart: build a small service overlay end to end and route one
// request through the HFC framework.
//
// The pipeline is the whole paper in five calls: generate a simulated
// Internet (transit-stub + delay oracle), bootstrap the framework (GNP
// coordinates → MST clustering → border selection → state distribution),
// and ask for a service path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hfc/internal/core"
	"hfc/internal/netsim"
	"hfc/internal/svc"
	"hfc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// 1. A simulated Internet: ~300 routers in transit-stub structure.
	cfg, err := topology.ConfigForSize(300)
	if err != nil {
		return err
	}
	phys, err := topology.GenerateTransitStub(rng, cfg)
	if err != nil {
		return err
	}
	net, err := netsim.New(phys)
	if err != nil {
		return err
	}

	// 2. Pick hosts: 8 landmarks and 50 proxies on distinct stub nodes.
	stubs := phys.StubNodes()
	perm := rng.Perm(len(stubs))
	landmarks := make([]int, 8)
	for i := range landmarks {
		landmarks[i] = stubs[perm[i]]
	}
	proxies := make([]int, 50)
	for i := range proxies {
		proxies[i] = stubs[perm[8+i]]
	}

	// 3. Deploy services: each proxy statically hosts 3-6 of 20 services.
	cat, err := svc.NewCatalog(20)
	if err != nil {
		return err
	}
	caps, err := svc.RandomCapabilities(rng, len(proxies), cat, 3, 6)
	if err != nil {
		return err
	}

	// 4. Bootstrap the HFC framework: measure → embed → cluster → borders
	// → distribute state.
	fw, err := core.Bootstrap(rng, net, landmarks, proxies, caps, core.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("overlay: %d proxies in %d clusters, %d border proxies\n",
		fw.N(), fw.NumClusters(), len(fw.Topology().BorderNodes()))
	fmt.Printf("state per proxy: own cluster + %d cluster aggregates (flat would be %d entries)\n\n",
		fw.NumClusters(), fw.N())

	// 5. Route a request: proxy 3 wants s2 → s7 → s11 applied on the way
	// to proxy 42.
	sg, err := svc.Linear("s2", "s7", "s11")
	if err != nil {
		return err
	}
	req := svc.Request{Source: 3, Dest: 42, SG: sg}
	res, err := fw.RouteDetailed(req)
	if err != nil {
		return err
	}
	fmt.Printf("request: proxy %d -> [%s] -> proxy %d\n", req.Source, req.SG, req.Dest)
	fmt.Print("cluster-level path:")
	for _, e := range res.CSP {
		fmt.Printf(" %s/C%d", req.SG.Services[e.SGVertex], e.Cluster)
	}
	fmt.Printf("\nfinal service path: %s\n", res.Path)
	fmt.Printf("embedded length %.1f, %d relay hops\n",
		res.Path.Length(fw.Topology().Dist), res.Path.NumRelays())
	return nil
}
