// Qosrouting: the paper's §7 future-work extension in action. Proxies have
// machine loads and overlay hops have bandwidth (the bottleneck of the
// physical route); requests carry QoS constraints. The example routes the
// same request under tightening constraints and shows the hierarchical
// router with aggregated QoS state (optimistic admission, exact child
// enforcement) against the flat full-state baseline, plus a
// provider-disjoint backup path for failover.
//
//	go run ./examples/qosrouting
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"hfc/internal/env"
	"hfc/internal/qos"
	"hfc/internal/routing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qosrouting:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := env.SmallSpec(19)
	spec.Proxies = 100
	spec.CatalogSize = 25
	e, err := env.Build(spec)
	if err != nil {
		return err
	}
	fw := e.Framework
	prof, err := e.QoSProfile(rand.New(rand.NewSource(7)), 0, 0.95)
	if err != nil {
		return err
	}
	fmt.Printf("overlay: %d proxies, %d clusters, loads in [0,0.95), bandwidth from physical bottlenecks\n\n",
		fw.N(), fw.NumClusters())

	router, err := qos.NewRouter(fw.Topology(), fw.States(), fw.Capabilities(), prof)
	if err != nil {
		return err
	}
	req, err := e.NextRequest()
	if err != nil {
		return err
	}
	fmt.Printf("request: proxy %d -> [%s] -> proxy %d\n\n", req.Source, req.SG, req.Dest)

	metric := routing.HFCMetric{T: fw.Topology()}
	provs := routing.CapabilityProviders(fw.Capabilities())
	for _, cons := range []qos.Constraints{
		{},
		{MaxLoad: 0.5},
		{MaxLoad: 0.5, MinBandwidth: 25},
		{MaxLoad: 0.5, MinBandwidth: 45},
	} {
		fmt.Printf("constraints: maxLoad=%.2f minBW=%.0f Mbps\n", orOne(cons.MaxLoad), cons.MinBandwidth)
		flat, flatErr := qos.FindPath(req, provs, metric, prof, cons, metric)
		if flatErr != nil {
			fmt.Printf("  flat (full state):        blocked (%v)\n", flatErr)
		} else {
			fmt.Printf("  flat (full state):        %s  len=%.1f\n", flat, flat.Length(e.TrueDist))
		}
		hier, hierErr := router.Route(req, cons)
		switch {
		case hierErr != nil && flatErr == nil:
			fmt.Printf("  hierarchical (aggregates): falsely blocked — the aggregation-precision cost\n")
		case hierErr != nil:
			fmt.Printf("  hierarchical (aggregates): blocked\n")
		default:
			fmt.Printf("  hierarchical (aggregates): %s  len=%.1f\n", hier, hier.Length(e.TrueDist))
			if err := qos.VerifyPath(hier, prof, cons); err != nil {
				return fmt.Errorf("constraint violation (bug): %w", err)
			}
		}
		fmt.Println()
	}

	// Failover: a provider-disjoint backup for the unconstrained request.
	primary, backup, err := routing.FindDisjointPair(req, provs, metric, metric)
	if err != nil && !errors.Is(err, routing.ErrNoBackup) {
		return err
	}
	fmt.Printf("failover pair:\n  primary: %s\n", primary)
	if backup != nil {
		fmt.Printf("  backup:  %s (disjoint providers, +%.1f%% length)\n",
			backup, 100*(backup.DecisionCost-primary.DecisionCost)/primary.DecisionCost)
	} else {
		fmt.Println("  backup:  none (some service has a single provider)")
	}
	return nil
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}
