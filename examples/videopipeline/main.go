// Videopipeline: the paper's §2.1 motivating application. An MPEG stream
// travelling from a media server's proxy to a client's proxy undergoes a
// chain of customizations:
//
//	watermark → mpeg-to-h261 → mix-music → compress
//
// Transcoders, watermarkers and mixers are statically installed on
// different proxies across the wide area; the framework finds a
// delay-efficient proxy for every step, hierarchically.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hfc/internal/core"
	"hfc/internal/netsim"
	"hfc/internal/svc"
	"hfc/internal/topology"
)

// mediaServices is the deployable catalog of this deployment.
var mediaServices = []svc.Service{
	"watermark", "mpeg-to-h261", "mpeg-to-jpeg", "jpeg-to-h261",
	"mix-music", "compress", "decompress", "resize", "denoise", "caption",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "videopipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))

	cfg, err := topology.ConfigForSize(600)
	if err != nil {
		return err
	}
	phys, err := topology.GenerateTransitStub(rng, cfg)
	if err != nil {
		return err
	}
	net, err := netsim.New(phys)
	if err != nil {
		return err
	}
	stubs := phys.StubNodes()
	perm := rng.Perm(len(stubs))
	landmarks := make([]int, 10)
	for i := range landmarks {
		landmarks[i] = stubs[perm[i]]
	}
	proxies := make([]int, 80)
	for i := range proxies {
		proxies[i] = stubs[perm[10+i]]
	}

	// Deploy 2-4 media services per proxy.
	cat, err := svc.CatalogOf(mediaServices...)
	if err != nil {
		return err
	}
	caps, err := svc.RandomCapabilities(rng, len(proxies), cat, 2, 4)
	if err != nil {
		return err
	}

	fw, err := core.Bootstrap(rng, net, landmarks, proxies, caps, core.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("media proxy network: %d proxies, %d clusters\n\n", fw.N(), fw.NumClusters())

	// The §2.1 customization chain: (1) watermark for copyright, (2)
	// convert MPEG to H.261 for bandwidth, (3) mix in background music,
	// (4) compress again.
	sg, err := svc.Linear("watermark", "mpeg-to-h261", "mix-music", "compress")
	if err != nil {
		return err
	}
	serverProxy, clientProxy := 0, fw.N()-1
	req := svc.Request{Source: serverProxy, Dest: clientProxy, SG: sg}

	res, err := fw.RouteDetailed(req)
	if err != nil {
		return err
	}
	fmt.Printf("stream: server proxy %d -> client proxy %d\n", serverProxy, clientProxy)
	fmt.Println("customization chain:", req.SG)
	fmt.Println()
	fmt.Println("hierarchical resolution:")
	for i, child := range res.Children {
		fmt.Printf("  cluster %d resolves %v (entry %d, exit %d) -> %s\n",
			child.Cluster, child.Services, child.Source, child.Dest, res.ChildPaths[i])
	}
	fmt.Printf("\ncomposed service path: %s\n", res.Path)
	fmt.Printf("embedded length %.1f over %d hops (%d pure relays)\n",
		res.Path.Length(fw.Topology().Dist), len(res.Path.Hops)-1, res.Path.NumRelays())

	// Show the paths the stream would have taken with no watermarking
	// requirement — dependency constraints change the mapping.
	short, err := svc.Linear("mpeg-to-h261", "compress")
	if err != nil {
		return err
	}
	p2, err := fw.Route(svc.Request{Source: serverProxy, Dest: clientProxy, SG: short})
	if err != nil {
		return err
	}
	fmt.Printf("\nwithout watermark/mix steps the path shortens to: %s (length %.1f)\n",
		p2, p2.Length(fw.Topology().Dist))
	return nil
}
