package hfc_test

// Benchmark harness: one benchmark per paper table/figure plus the ablation
// benches DESIGN.md calls out. Each figure bench sets up its environments
// outside the timer and measures the operation the figure is about; on the
// first iteration it logs the regenerated rows (run with -v to see them).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig10 -benchtime=1x -v   # print the rows

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfc/internal/chaos"
	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/env"
	"hfc/internal/experiments"
	"hfc/internal/geo"
	"hfc/internal/graph"
	"hfc/internal/hfc"
	"hfc/internal/overlay"
	"hfc/internal/routing"
	"hfc/internal/serve"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// benchSizes are the Table 1 overlay sizes; override the heavyweight ones
// away with -short.
func benchSpecs(b *testing.B) []env.Spec {
	b.Helper()
	specs := env.Table1(42)
	if testing.Short() {
		return specs[:1]
	}
	return specs
}

// envCache builds each environment once per bench binary run, keyed by the
// FULL spec: two specs sharing a seed but differing in any other knob
// (workers, cache flag, sizes) are distinct environments.
var (
	envMu    sync.Mutex
	envCache = map[env.Spec]*env.Environment{}
)

func cachedEnv(b *testing.B, spec env.Spec) *env.Environment {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[spec]; ok {
		return e
	}
	e, err := env.Build(spec)
	if err != nil {
		b.Fatalf("env.Build: %v", err)
	}
	envCache[spec] = e
	return e
}

// ---- Regression-gate benchmarks ----
//
// The BenchmarkGate* family is what cmd/benchgate runs to produce
// BENCH_*.json; CI compares the numbers against the last committed snapshot
// and fails on >20% regressions. Keep these cheap, deterministic in shape,
// and focused on the three hot paths: environment build, route resolution,
// and HFC maintenance.

func gateSpec() env.Spec {
	spec := env.SmallSpec(42)
	spec.Proxies = 120
	return spec
}

func benchGateEnvBuild(b *testing.B, workers int) {
	spec := gateSpec()
	spec.Workers = workers
	for i := 0; i < b.N; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)
		if _, err := env.Build(s); err != nil {
			b.Fatalf("Build: %v", err)
		}
	}
}

// BenchmarkGateEnvBuildSerial measures the end-to-end environment build on
// one worker.
func BenchmarkGateEnvBuildSerial(b *testing.B) { benchGateEnvBuild(b, 0) }

// BenchmarkGateEnvBuildParallel measures the same build fanned across all
// cores (identical output; see internal/env parallel tests).
func BenchmarkGateEnvBuildParallel(b *testing.B) { benchGateEnvBuild(b, -1) }

func benchGateRouteResolve(b *testing.B, cached bool) {
	spec := gateSpec()
	spec.CacheRoutes = cached
	e := cachedEnv(b, spec)
	reqs := make([]svc.Request, 64)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			b.Fatalf("NextRequest: %v", err)
		}
		reqs[i] = r
	}
	// Warm pass: populate the per-destination router cache (and, with
	// cached=true, the route cache) so the timed region measures
	// steady-state resolution rather than first-touch view construction.
	// Uncached resolution still performs the full hierarchical computation
	// per request.
	for _, r := range reqs {
		if _, err := e.Framework.Route(r); err != nil {
			b.Fatalf("warm Route: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Framework.Route(reqs[i%len(reqs)]); err != nil {
			b.Fatalf("Route: %v", err)
		}
	}
}

// BenchmarkGateRouteResolve measures uncached hierarchical route resolution.
func BenchmarkGateRouteResolve(b *testing.B) { benchGateRouteResolve(b, false) }

// BenchmarkGateRouteResolveCached measures the same request stream with the
// route cache on (steady state: every cycle after the first hits).
func BenchmarkGateRouteResolveCached(b *testing.B) { benchGateRouteResolve(b, true) }

// csrBenchGraph builds the 512-node delay-weighted graph the CSR Dijkstra
// gate runs on: the gate environment's proxy mesh distances, sparsified to
// a ~16-degree neighbour graph.
func csrBenchGraph(b *testing.B) *graph.CSR {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	const n, deg = 512, 16
	pts := make([]coords.Point, n)
	for i := range pts {
		pts[i] = coords.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	g := graph.New(n, false)
	for i := 0; i < n; i++ {
		for k := 0; k < deg; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			if err := g.AddEdge(i, j, coords.Dist(pts[i], pts[j])); err != nil {
				b.Fatalf("AddEdge: %v", err)
			}
		}
	}
	c, err := graph.NewCSR(g)
	if err != nil {
		b.Fatalf("NewCSR: %v", err)
	}
	return c
}

// BenchmarkGateDijkstraCSR measures one single-source delay-weighted
// Dijkstra over the packed CSR adjacency with the monotone radix queue and
// reused scratch — the zero-alloc steady state the //hfc:hotpath budget=0
// pin on DijkstraInto asserts.
func BenchmarkGateDijkstraCSR(b *testing.B) {
	c := csrBenchGraph(b)
	sc := graph.NewCSRScratch()
	// Warm pass over every source: bucket slices grow to their steady-state
	// capacity so the timed region is allocation-free regardless of which
	// sources b.N covers.
	for s := 0; s < c.N(); s++ {
		if err := c.DijkstraInto(s, sc); err != nil {
			b.Fatalf("DijkstraInto: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.DijkstraInto(i%c.N(), sc); err != nil {
			b.Fatalf("DijkstraInto: %v", err)
		}
	}
}

// batchBenchEngine builds the warmed engine + request stream shared by the
// batched/looped resolution gates: 256 requests drawn from a 64-request
// pool with Zipf-distributed popularity (s=1.3 — the skew the repo's
// serving workload model assumes, see svc.ZipfRequestGenerator), resolved
// once outside the timer so both benches measure steady-state serving.
// Both gates resolve the identical stream; only batching differs.
func batchBenchEngine(b *testing.B) (*serve.Engine, []svc.Request) {
	b.Helper()
	spec := gateSpec()
	spec.ServeEngine = true
	e := cachedEnv(b, spec)
	eng := e.Framework.Engine()
	if eng == nil {
		b.Fatal("framework has no serving engine")
	}
	uniq := make([]svc.Request, 64)
	for i := range uniq {
		r, err := e.NextRequest()
		if err != nil {
			b.Fatalf("NextRequest: %v", err)
		}
		uniq[i] = r
	}
	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(uniq)-1))
	reqs := make([]svc.Request, 256)
	for i := range reqs {
		reqs[i] = uniq[zipf.Uint64()]
	}
	if _, errs := eng.ResolveBatch(reqs, 1); errs != nil {
		for _, err := range errs {
			if err != nil {
				b.Fatalf("warm ResolveBatch: %v", err)
			}
		}
	}
	return eng, reqs
}

// BenchmarkGateResolveBatch measures amortized per-request cost of batched
// resolution: one ResolveBatch call per iteration over the 256-request
// stream, reported per request. The gate ratio against
// BenchmarkGateResolveLooped is the batching win.
func BenchmarkGateResolveBatch(b *testing.B) {
	eng, reqs := batchBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, errs := eng.ResolveBatch(reqs, 1)
		for j := range paths {
			if errs[j] != nil {
				b.Fatalf("ResolveBatch: %v", errs[j])
			}
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(reqs))
	b.ReportMetric(perReq, "ns/req")
}

// BenchmarkGateResolveLooped is the unbatched baseline for
// BenchmarkGateResolveBatch: the same stream resolved one Resolve call at a
// time.
func BenchmarkGateResolveLooped(b *testing.B) {
	eng, reqs := batchBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			if _, err := eng.Resolve(reqs[j]); err != nil {
				b.Fatalf("Resolve: %v", err)
			}
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(reqs))
	b.ReportMetric(perReq, "ns/req")
}

// maintenanceFixture builds a 512-node, ~16-cluster topology for the
// maintenance benchmarks.
func maintenanceFixture(b *testing.B) *hfc.Topology {
	b.Helper()
	rng := rand.New(rand.NewSource(8))
	n, k := 512, 16
	pts := make([]coords.Point, n)
	for i := range pts {
		c := i % k
		pts[i] = coords.Point{float64(c%4)*300 + rng.Float64()*40, float64(c/4)*300 + rng.Float64()*40}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		b.Fatalf("NewMap: %v", err)
	}
	res, err := cluster.Cluster(n, cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		b.Fatalf("Cluster: %v", err)
	}
	topo, err := hfc.Build(cmap, res)
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	return topo
}

// BenchmarkGateIncrementalMaintenance measures one churn event (border node
// leaves, then rejoins) under incremental border maintenance.
func BenchmarkGateIncrementalMaintenance(b *testing.B) {
	topo := maintenanceFixture(b)
	dyn := hfc.NewDynamic(topo)
	borders := topo.BorderNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := borders[i%len(borders)]
		if err := dyn.Leave(node); err != nil {
			b.Fatalf("Leave: %v", err)
		}
		if err := dyn.Rejoin(node); err != nil {
			b.Fatalf("Rejoin: %v", err)
		}
	}
}

// BenchmarkGateFullRebuildMaintenance measures the same churn event handled
// the pre-incremental way: a full border re-election after every membership
// change. The ratio against BenchmarkGateIncrementalMaintenance is the
// speedup the incremental path buys.
func BenchmarkGateFullRebuildMaintenance(b *testing.B) {
	topo := maintenanceFixture(b)
	dyn := hfc.NewDynamic(topo)
	borders := topo.BorderNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := borders[i%len(borders)]
		if err := dyn.Leave(node); err != nil {
			b.Fatalf("Leave: %v", err)
		}
		if err := dyn.Rebuild(); err != nil {
			b.Fatalf("Rebuild: %v", err)
		}
		if err := dyn.Rejoin(node); err != nil {
			b.Fatalf("Rejoin: %v", err)
		}
		if err := dyn.Rebuild(); err != nil {
			b.Fatalf("Rebuild: %v", err)
		}
	}
}

// BenchmarkGateFindPathFlat measures the flat §5.2 algorithm with its pooled
// scratch arena on a mesh oracle. benchgate records allocs/op (-benchmem),
// so growing the per-resolution allocation count past 20% fails the gate.
func BenchmarkGateFindPathFlat(b *testing.B) {
	e := cachedEnv(b, gateSpec())
	provs := routing.CapabilityProviders(e.Framework.Capabilities())
	oracle := routing.OracleFunc(e.Mesh.Dist)
	exp := routing.ExpanderFunc(e.Mesh.Path)
	reqs := make([]svc.Request, 64)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			b.Fatalf("NextRequest: %v", err)
		}
		reqs[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.FindPathFiltered(reqs[i%len(reqs)], provs, oracle, exp, nil); err != nil {
			b.Fatalf("FindPathFiltered: %v", err)
		}
	}
}

// BenchmarkGateSolveChildIndexed measures an intra-cluster child resolution
// through the inverted provider index — the serve-engine configuration of
// LocalIntraSolver. The alloc gate proves the per-service provider lookup
// stays a map access, not a member scan with a per-call closure.
func BenchmarkGateSolveChildIndexed(b *testing.B) {
	e := cachedEnv(b, gateSpec())
	topo := e.Framework.Topology()
	states := e.Framework.States()
	caps := e.Framework.Capabilities()
	idx := routing.NewLazyIndexes(states, func(n int) []int {
		return topo.Members(topo.ClusterOf(n))
	}, nil)
	solver := &routing.LocalIntraSolver{Topo: topo, States: states, Indexes: idx}

	// A child request inside cluster 0 for a service one of its members
	// provides.
	members := topo.Members(0)
	child := routing.ChildRequest{
		Cluster:  0,
		Source:   members[0],
		Dest:     members[len(members)-1],
		Resolver: members[0],
	}
	for _, m := range members {
		if ss := caps[m].Sorted(); len(ss) > 0 {
			child.Services = []svc.Service{ss[0]}
			break
		}
	}
	if child.Services == nil {
		b.Fatal("no provider in cluster 0")
	}
	idx.For(child.Resolver) // build outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SolveChild(child); err != nil {
			b.Fatalf("SolveChild: %v", err)
		}
	}
}

// BenchmarkGateServeThroughput measures steady-state concurrent serving
// through serve.Engine: a warmed request pool resolved from every GOMAXPROCS
// goroutine at once (run with -cpu 1,4,8 to see the scaling; the sharded
// cache keeps the hit path contention-free).
func BenchmarkGateServeThroughput(b *testing.B) {
	spec := gateSpec()
	spec.ServeEngine = true
	e := cachedEnv(b, spec)
	eng := e.Framework.Engine()
	if eng == nil {
		b.Fatal("framework has no serving engine")
	}
	reqs := make([]svc.Request, 256)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			b.Fatalf("NextRequest: %v", err)
		}
		reqs[i] = r
	}
	// Warm pass: fill the cache so the timed region measures serving, not
	// first-touch computation.
	for _, r := range reqs {
		if _, err := eng.Resolve(r); err != nil {
			b.Fatalf("warm Resolve: %v", err)
		}
	}
	var goroutines atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// A per-goroutine offset with a large prime stride spreads the pool
		// across cache shards without a shared counter.
		i := int(goroutines.Add(1)) * 7919
		for pb.Next() {
			if _, err := eng.Resolve(reqs[i%len(reqs)]); err != nil {
				b.Errorf("Resolve: %v", err)
				return
			}
			i++
		}
	})
}

// BenchmarkGateResolveUnderChaos measures steady-state live route serving
// while the chaos engine impairs every overlay link (25% duplication plus
// microsecond-scale delay jitter, no loss): the per-request cost of the
// LinkPolicy hook, the accrual health bookkeeping, and the degraded-serving
// machinery on the hot path of a noisy-but-functional network.
func BenchmarkGateResolveUnderChaos(b *testing.B) {
	spec := env.SmallSpec(42)
	spec.Proxies = 100
	e := cachedEnv(b, spec)
	ceng := chaos.NewEngine(42, time.Microsecond)
	if err := ceng.Inject(chaos.Fault{ID: "noise", DuplicateRate: 0.25, DelayMS: 1, JitterMS: 2}); err != nil {
		b.Fatalf("Inject: %v", err)
	}
	sys, err := overlay.New(e.Framework.Topology(), e.Framework.Capabilities(), overlay.Config{
		LinkPolicy:     ceng.Policy,
		Health:         overlay.HealthConfig{Enabled: true},
		DegradedRoutes: true,
		CacheRoutes:    true,
	})
	if err != nil {
		b.Fatalf("overlay.New: %v", err)
	}
	if err := sys.Start(); err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := sys.Stop(); err != nil {
			b.Errorf("Stop: %v", err)
		}
	}()
	for r := 0; r < 15; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		ok, err := sys.Converged()
		if err != nil {
			b.Fatalf("Converged: %v", err)
		}
		if ok {
			break
		}
	}
	reqs := make([]svc.Request, 64)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			b.Fatalf("NextRequest: %v", err)
		}
		reqs[i] = r
		// Warm pass: steady state measures cached serving under noise.
		if _, err := sys.Route(r); err != nil {
			b.Fatalf("warm Route: %v", err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Route(reqs[i%len(reqs)]); err != nil {
			b.Fatalf("Route: %v", err)
		}
	}
}

// BenchmarkTable1EnvBuild regenerates Table 1: the cost of building each
// simulation environment end to end (topology, GNP embedding, clustering,
// borders, state, mesh).
func BenchmarkTable1EnvBuild(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		spec := spec
		b.Run(fmt.Sprintf("proxies=%d", spec.Proxies), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := spec
				s.Seed = spec.Seed + int64(i)
				if _, err := env.Build(s); err != nil {
					b.Fatalf("Build: %v", err)
				}
			}
		})
	}
}

// BenchmarkFig9aCoordinatesOverhead regenerates Figure 9(a): per-proxy
// coordinate state under HFC, measured by materializing each node's view.
func BenchmarkFig9aCoordinatesOverhead(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		spec := spec
		b.Run(fmt.Sprintf("proxies=%d", spec.Proxies), func(b *testing.B) {
			e := cachedEnv(b, spec)
			topo := e.Framework.Topology()
			b.ResetTimer()
			var total int
			for i := 0; i < b.N; i++ {
				total = 0
				for node := 0; node < topo.N(); node++ {
					view, err := topo.View(node)
					if err != nil {
						b.Fatalf("View: %v", err)
					}
					total += view.CoordinateStateSize()
				}
			}
			b.ReportMetric(float64(total)/float64(topo.N()), "coordstates/proxy")
			if b.N == 1 {
				b.Logf("Fig9a: proxies=%d flat=%d hfc=%.1f", spec.Proxies, spec.Proxies, float64(total)/float64(topo.N()))
			}
		})
	}
}

// BenchmarkFig9bServiceOverhead regenerates Figure 9(b): per-proxy service
// capability state, measured by running the §4 state protocol.
func BenchmarkFig9bServiceOverhead(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		spec := spec
		b.Run(fmt.Sprintf("proxies=%d", spec.Proxies), func(b *testing.B) {
			e := cachedEnv(b, spec)
			topo := e.Framework.Topology()
			caps := e.Framework.Capabilities()
			b.ResetTimer()
			var mean float64
			for i := 0; i < b.N; i++ {
				states, _, err := state.Distribute(topo, caps)
				if err != nil {
					b.Fatalf("Distribute: %v", err)
				}
				total := 0
				for n := range states {
					total += states[n].ServiceStateSize()
				}
				mean = float64(total) / float64(len(states))
			}
			b.ReportMetric(mean, "svcstates/proxy")
			if b.N == 1 {
				b.Logf("Fig9b: proxies=%d flat=%d hfc=%.1f", spec.Proxies, spec.Proxies, mean)
			}
		})
	}
}

// BenchmarkFig10PathEfficiency regenerates Figure 10: per-request routing
// under the three schemes; the reported path lengths (true delay) are the
// figure's bars.
func BenchmarkFig10PathEfficiency(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		spec := spec
		e := cachedEnv(b, spec)
		fw := e.Framework
		provs := routing.CapabilityProviders(fw.Capabilities())
		hfcMetric := routing.HFCMetric{T: fw.Topology()}
		meshOracle := routing.OracleFunc(e.Mesh.Dist)
		meshExp := routing.ExpanderFunc(e.Mesh.Path)

		// Pre-draw a request pool so every scheme sees the same stream.
		reqs := make([]svc.Request, 256)
		for i := range reqs {
			r, err := e.NextRequest()
			if err != nil {
				b.Fatalf("NextRequest: %v", err)
			}
			reqs[i] = r
		}

		schemes := []struct {
			name  string
			route func(svc.Request) (*routing.Path, error)
		}{
			{"mesh", func(r svc.Request) (*routing.Path, error) {
				return routing.FindPath(r, provs, meshOracle, meshExp)
			}},
			{"hfc-agg", fw.Route},
			{"hfc-full", func(r svc.Request) (*routing.Path, error) {
				return routing.FindPath(r, provs, hfcMetric, hfcMetric)
			}},
		}
		for _, scheme := range schemes {
			scheme := scheme
			b.Run(fmt.Sprintf("proxies=%d/%s", spec.Proxies, scheme.name), func(b *testing.B) {
				sum := 0.0
				for i := 0; i < b.N; i++ {
					req := reqs[i%len(reqs)]
					p, err := scheme.route(req)
					if err != nil {
						b.Fatalf("%s route: %v", scheme.name, err)
					}
					sum += p.Length(e.TrueDist)
				}
				b.ReportMetric(sum/float64(b.N), "pathlen-ms")
			})
		}
	}
}

// BenchmarkAblationRelax regenerates ablation A3: the three cluster-level
// relaxation modes on the same environment and request stream.
func BenchmarkAblationRelax(b *testing.B) {
	spec := env.Table1(42)[0]
	e := cachedEnv(b, spec)
	topo := e.Framework.Topology()
	states := e.Framework.States()
	reqs := make([]svc.Request, 128)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			b.Fatalf("NextRequest: %v", err)
		}
		reqs[i] = r
	}
	for _, mode := range []routing.RelaxMode{routing.RelaxBacktrack, routing.RelaxExact, routing.RelaxExternalOnly} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			sum := 0.0
			for i := 0; i < b.N; i++ {
				req := reqs[i%len(reqs)]
				p, err := routing.RouteHierarchical(topo, states, req, mode)
				if err != nil {
					b.Fatalf("route: %v", err)
				}
				sum += p.Length(e.TrueDist)
			}
			b.ReportMetric(sum/float64(b.N), "pathlen-ms")
		})
	}
}

// BenchmarkAblationBorder regenerates ablations A4/A5 (border-selection
// rules) via the experiment runner.
func BenchmarkAblationBorder(b *testing.B) {
	spec := env.SmallSpec(42)
	spec.Proxies = 100
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationBorder(spec, 50)
		if err != nil {
			b.Fatalf("RunAblationBorder: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatAblationBorder(rows))
		}
	}
}

// BenchmarkAblationK regenerates ablation A1 (inconsistency factor sweep).
func BenchmarkAblationK(b *testing.B) {
	spec := env.SmallSpec(42)
	spec.Proxies = 100
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationK(spec, []float64{2, 3, 4}, 50)
		if err != nil {
			b.Fatalf("RunAblationK: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatAblationK(rows))
		}
	}
}

// BenchmarkAblationDim regenerates ablation A2 (embedding dimension).
func BenchmarkAblationDim(b *testing.B) {
	spec := env.SmallSpec(42)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationDim(spec, []int{2, 3}, 25, 400)
		if err != nil {
			b.Fatalf("RunAblationDim: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatAblationDim(rows))
		}
	}
}

// BenchmarkQoSExtension regenerates the §7 QoS experiment (flat vs
// hierarchical aggregated QoS routing, both admission policies).
func BenchmarkQoSExtension(b *testing.B) {
	spec := env.SmallSpec(42)
	spec.Proxies = 100
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunQoS(spec, experiments.DefaultQoSSettings(), 40)
		if err != nil {
			b.Fatalf("RunQoS: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatQoS(rows))
		}
	}
}

// BenchmarkAblationChurn regenerates ablation A6 (join-nearest vs
// re-clustering).
func BenchmarkAblationChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationChurn(42, 120, []int{0, 40, 120})
		if err != nil {
			b.Fatalf("RunAblationChurn: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatAblationChurn(rows))
		}
	}
}

// BenchmarkMultiLevel regenerates the tri-level comparison (state vs path
// quality of adding a third hierarchy tier).
func BenchmarkMultiLevel(b *testing.B) {
	specs := env.Table1(42)[:1]
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunMultiLevel(specs, 50)
		if err != nil {
			b.Fatalf("RunMultiLevel: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatMultiLevel(rows))
		}
	}
}

// BenchmarkAblationLandmarks regenerates ablation A8 (landmark placement).
func BenchmarkAblationLandmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationLandmarks(42, 300, 80, 8, 400, 1)
		if err != nil {
			b.Fatalf("RunAblationLandmarks: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + experiments.FormatAblationLandmarks(rows))
		}
	}
}

// BenchmarkGNPEmbedLandmarks measures phase 1 of §3.1 (the m-landmark
// simplex fit).
func BenchmarkGNPEmbedLandmarks(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := 10
	pts := make([]coords.Point, m)
	for i := range pts {
		pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	dists := make([][]float64, m)
	for i := range dists {
		dists[i] = make([]float64, m)
		for j := range dists[i] {
			dists[i][j] = coords.Dist(pts[i], pts[j])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coords.EmbedLandmarks(rng, dists, 2); err != nil {
			b.Fatalf("EmbedLandmarks: %v", err)
		}
	}
}

// BenchmarkGNPPlaceNode measures phase 2 of §3.1 (per-proxy placement).
func BenchmarkGNPPlaceNode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	landmarks := []coords.Point{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {50, 20}, {20, 80}}
	truth := coords.Point{37, 61}
	dists := make([]float64, len(landmarks))
	for i, lm := range landmarks {
		dists[i] = coords.Dist(truth, lm)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coords.PlaceNode(rng, landmarks, dists); err != nil {
			b.Fatalf("PlaceNode: %v", err)
		}
	}
}

// BenchmarkZahnClustering measures §3.2 MST cluster detection at overlay
// scale.
func BenchmarkZahnClustering(b *testing.B) {
	for _, n := range []int{250, 1000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			pts := make([]coords.Point, n)
			for i := range pts {
				c := i % 8
				pts[i] = coords.Point{float64(c%4)*200 + rng.Float64()*30, float64(c/4)*200 + rng.Float64()*30}
			}
			dist := func(i, j int) float64 { return coords.Dist(pts[i], pts[j]) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Cluster(n, dist, cluster.DefaultConfig()); err != nil {
					b.Fatalf("Cluster: %v", err)
				}
			}
		})
	}
}

// BenchmarkStateDistribute measures one synchronous §4 protocol round.
func BenchmarkStateDistribute(b *testing.B) {
	spec := env.Table1(42)[0]
	e := cachedEnv(b, spec)
	topo := e.Framework.Topology()
	caps := e.Framework.Capabilities()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := state.Distribute(topo, caps); err != nil {
			b.Fatalf("Distribute: %v", err)
		}
	}
}

// BenchmarkOverlayProtocolRound measures a live concurrent protocol round
// (goroutine-per-proxy message passing).
func BenchmarkOverlayProtocolRound(b *testing.B) {
	spec := env.SmallSpec(42)
	spec.Proxies = 100
	e := cachedEnv(b, spec)
	sys, err := overlay.New(e.Framework.Topology(), e.Framework.Capabilities(), overlay.Config{})
	if err != nil {
		b.Fatalf("overlay.New: %v", err)
	}
	if err := sys.Start(); err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := sys.Stop(); err != nil {
			b.Errorf("Stop: %v", err)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.TriggerStateRound()
		sys.Quiesce()
	}
}

// ---- Geometric-engine benchmarks ----
//
// The Indexed gates exercise the internal/geo spatial-index construction
// paths; their Brute counterparts (not gates — they exist as the speedup
// baseline recorded alongside the gates in BENCH_pr5.json) run the same
// work through the O(n²) scans.

// geoBenchPoints builds the shared n-point, 8-blob fixture for the
// geometry benches (same shape as BenchmarkZahnClustering, bigger n).
func geoBenchPoints(n int) []coords.Point {
	rng := rand.New(rand.NewSource(3))
	pts := make([]coords.Point, n)
	for i := range pts {
		c := i % 8
		pts[i] = coords.Point{float64(c%4)*200 + rng.Float64()*30, float64(c/4)*200 + rng.Float64()*30}
	}
	return pts
}

func benchZahnCluster(b *testing.B, n int, strat geo.Strategy) {
	pts := geoBenchPoints(n)
	dist := func(i, j int) float64 { return coords.Dist(pts[i], pts[j]) }
	cfg := cluster.DefaultConfig()
	cfg.Index = strat
	if strat != geo.Brute {
		cfg.Points = pts
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Cluster(n, dist, cfg); err != nil {
			b.Fatalf("Cluster: %v", err)
		}
	}
}

// BenchmarkGateZahnClusterIndexed measures §3.2 Zahn clustering through the
// k-d-tree Borůvka MST at n=4096.
func BenchmarkGateZahnClusterIndexed(b *testing.B) { benchZahnCluster(b, 4096, geo.KDTree) }

// BenchmarkZahnClusterBrute is the complete-graph Prim baseline for the
// indexed gate above.
func BenchmarkZahnClusterBrute(b *testing.B) { benchZahnCluster(b, 4096, geo.Brute) }

// borderBenchInstance builds an n-node, k-cluster instance for the border
// election benches.
func borderBenchInstance(b *testing.B, n, k int) (*coords.Map, *cluster.Result) {
	b.Helper()
	pts := geoBenchPoints(n)
	cmap, err := coords.NewMap(pts)
	if err != nil {
		b.Fatalf("NewMap: %v", err)
	}
	res := &cluster.Result{Assignment: make([]int, n), Clusters: make([][]int, k)}
	for i := 0; i < n; i++ {
		c := i % k
		res.Assignment[i] = c
		res.Clusters[c] = append(res.Clusters[c], i)
	}
	return cmap, res
}

func benchBorderElection(b *testing.B, indexed bool) {
	cmap, clustering := borderBenchInstance(b, 4096, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if indexed {
			_, err = hfc.Build(cmap, clustering)
		} else {
			_, err = hfc.BuildWithSelector(cmap, clustering, hfc.ClosestPairSelector())
		}
		if err != nil {
			b.Fatalf("build: %v", err)
		}
	}
}

// BenchmarkGateBorderElectionIndexed measures the full §3.3 border + backup
// elections through the per-cluster geo indexes at n=4096.
func BenchmarkGateBorderElectionIndexed(b *testing.B) { benchBorderElection(b, true) }

// BenchmarkBorderElectionBrute is the O(|A|·|B|)-per-pair baseline for the
// indexed gate above.
func BenchmarkBorderElectionBrute(b *testing.B) { benchBorderElection(b, false) }

// BenchmarkGateGeoKNN measures k-NN queries against a 4096-point k-d tree
// (k=8), the primitive the construction paths lean on.
func BenchmarkGateGeoKNN(b *testing.B) {
	pts := geoBenchPoints(4096)
	idx, err := geo.NewIndex(pts, nil, geo.KDTree)
	if err != nil {
		b.Fatalf("NewIndex: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nbs := idx.KNN(pts[i%len(pts)], 8, nil); len(nbs) != 8 {
			b.Fatalf("KNN returned %d neighbours", len(nbs))
		}
	}
}

// BenchmarkClusterMergeSmall measures clustering dominated by the
// small-cluster merge loop (satellite regression bench: the merge reuses
// one geo index across rounds instead of rescanning all pairs).
func BenchmarkClusterMergeSmall(b *testing.B) {
	const n = 2048
	pts := geoBenchPoints(n)
	dist := func(i, j int) float64 { return coords.Dist(pts[i], pts[j]) }
	for _, tc := range []struct {
		name  string
		strat geo.Strategy
	}{{"indexed", geo.KDTree}, {"brute", geo.Brute}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := cluster.DefaultConfig()
			cfg.MinClusterSize = 24
			cfg.Index = tc.strat
			if tc.strat != geo.Brute {
				cfg.Points = pts
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Cluster(n, dist, cfg); err != nil {
					b.Fatalf("Cluster: %v", err)
				}
			}
		})
	}
}

// scaleSpec is a 2048-proxy environment for the serial/parallel build-gap
// measurement (not a gate: one build takes seconds).
func scaleSpec(workers int) env.Spec {
	return env.Spec{
		PhysicalNodes: 3000,
		Landmarks:     12,
		Proxies:       2048,
		Clients:       50,
		MinServices:   4,
		MaxServices:   10,
		MinRequestLen: 4,
		MaxRequestLen: 10,
		CatalogSize:   40,
		CoordDim:      2,
		Probes:        3,
		Workers:       workers,
		Seed:          42,
	}
}

func benchEnvBuild2048(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		spec := scaleSpec(workers)
		spec.Seed += int64(i)
		if _, err := env.Build(spec); err != nil {
			b.Fatalf("Build: %v", err)
		}
	}
}

// BenchmarkEnvBuild2048Serial measures a 2048-proxy environment build on
// one worker; its ratio against BenchmarkEnvBuild2048Parallel is the
// parallel speedup DESIGN.md §10 documents.
func BenchmarkEnvBuild2048Serial(b *testing.B) { benchEnvBuild2048(b, 0) }

// BenchmarkEnvBuild2048Parallel is the all-cores counterpart.
func BenchmarkEnvBuild2048Parallel(b *testing.B) { benchEnvBuild2048(b, -1) }

// BenchmarkGateSimConverge100k is the virtual-time scale gate: one full
// 100k-proxy tri-level overlay — hierarchical construction plus the §4
// state distribution driven to ground-truth convergence — per iteration,
// entirely on the simulated clock on one scheduler. It pins the headline
// simulation-harness claim (100k converges in well under a minute) as a
// regression number; by far the heaviest gate, so benchgate's fixed
// benchtime matters more than usual here.
func BenchmarkGateSimConverge100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := overlay.Simulate(overlay.SimSpec{N: 100_000, Multilevel: true}, 1)
		if err != nil {
			b.Fatalf("Simulate: %v", err)
		}
		if !rep.Converged {
			b.Fatal("100k simulation did not converge")
		}
	}
}
