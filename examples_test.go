package hfc_test

// Every example main must build and run to completion — examples are part
// of the public contract, so they are executed (not merely compiled) here.
// Skipped under -short: each run builds a binary and simulates an overlay.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples found, want >= 3", len(entries))
	}
	for _, entry := range entries {
		if !entry.IsDir() {
			continue
		}
		entry := entry
		t.Run(entry.Name(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", entry.Name()))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", entry.Name(), err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", entry.Name())
			}
		})
	}
}
