package env

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestBuildParallelIdenticalToSerial is the end-to-end determinism gate for
// the whole pipeline: a Spec built with the worker pool must produce the
// SAME environment as the serial build — coordinates, clustering, borders,
// mesh distances, and the continued rng stream (exercised via request
// generation).
func TestBuildParallelIdenticalToSerial(t *testing.T) {
	serialSpec := SmallSpec(404)
	parallelSpec := serialSpec
	parallelSpec.Workers = -1

	serial, err := Build(serialSpec)
	if err != nil {
		t.Fatalf("serial Build: %v", err)
	}
	par, err := Build(parallelSpec)
	if err != nil {
		t.Fatalf("parallel Build: %v", err)
	}

	sc, pc := serial.Framework.Topology().Coords(), par.Framework.Topology().Coords()
	if !reflect.DeepEqual(sc.Points, pc.Points) {
		t.Error("embedded coordinates differ between serial and parallel builds")
	}
	st, pt := serial.Framework.Topology(), par.Framework.Topology()
	if st.NumClusters() != pt.NumClusters() {
		t.Fatalf("cluster counts differ: serial %d, parallel %d", st.NumClusters(), pt.NumClusters())
	}
	for i := 0; i < st.N(); i++ {
		if st.ClusterOf(i) != pt.ClusterOf(i) {
			t.Fatalf("node %d assigned to cluster %d serially, %d in parallel", i, st.ClusterOf(i), pt.ClusterOf(i))
		}
	}
	for a := 0; a < st.NumClusters(); a++ {
		for b := 0; b < st.NumClusters(); b++ {
			if a == b {
				continue
			}
			sa, sb, serr := st.Border(a, b)
			pa, pb, perr := pt.Border(a, b)
			if (serr == nil) != (perr == nil) || sa != pa || sb != pb {
				t.Errorf("Border(%d,%d): serial (%d,%d,%v), parallel (%d,%d,%v)", a, b, sa, sb, serr, pa, pb, perr)
			}
			sBk, _ := st.BackupBorders(a, b)
			pBk, _ := pt.BackupBorders(a, b)
			if !reflect.DeepEqual(sBk, pBk) {
				t.Errorf("BackupBorders(%d,%d) differ: serial %v, parallel %v", a, b, sBk, pBk)
			}
		}
	}
	if !reflect.DeepEqual(serial.ProxyPhys, par.ProxyPhys) {
		t.Error("proxy placements differ — rng streams diverged during build")
	}
	for u := 0; u < serial.Mesh.N(); u += 7 {
		for v := 0; v < serial.Mesh.N(); v += 5 {
			//hfcvet:ignore floatdist identical builds must agree bit-for-bit
			if serial.Mesh.Dist(u, v) != par.Mesh.Dist(u, v) {
				t.Fatalf("mesh Dist(%d,%d) differs between builds", u, v)
			}
		}
	}
	// The rng stream continues identically past the build: the next request
	// drawn must match exactly.
	sreq, serr := serial.NextRequest()
	preq, perr := par.NextRequest()
	if (serr == nil) != (perr == nil) || !reflect.DeepEqual(sreq, preq) {
		t.Errorf("first post-build request differs: serial (%+v, %v), parallel (%+v, %v)", sreq, serr, preq, perr)
	}
}

// TestBuildParallelSpeedup asserts the tentpole perf goal on machines with
// enough cores; single-core CI cannot show a speedup and skips.
func TestBuildParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is slow")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 cores to demonstrate speedup, have %d", runtime.GOMAXPROCS(0))
	}
	spec := SmallSpec(11)
	spec.PhysicalNodes = 600
	spec.Proxies = 250

	measure := func(workers int) time.Duration {
		s := spec
		s.Workers = workers
		start := time.Now()
		if _, err := Build(s); err != nil {
			t.Fatalf("Build(workers=%d): %v", workers, err)
		}
		return time.Since(start)
	}
	// Warm-up pass so first-touch costs don't skew the serial number.
	measure(1)
	serial := measure(1)
	parallel := measure(-1)
	t.Logf("serial %v, parallel %v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
	if parallel*2 > serial {
		t.Errorf("parallel build %v not 2x faster than serial %v on %d cores",
			parallel, serial, runtime.GOMAXPROCS(0))
	}
}
