package env

import (
	"testing"
	"time"
)

// TestScaleTiming exercises the four full Table 1 builds; skipped in -short
// runs because the 1000-proxy build takes a few seconds.
func TestScaleTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale builds skipped in short mode")
	}
	for _, spec := range Table1(42) {
		start := time.Now()
		e, err := Build(spec)
		if err != nil {
			t.Fatalf("Build(%d): %v", spec.Proxies, err)
		}
		if e.Framework.N() != spec.Proxies {
			t.Errorf("overlay size = %d, want %d", e.Framework.N(), spec.Proxies)
		}
		k := e.Framework.NumClusters()
		if k < 5 || k > spec.Proxies/2 {
			t.Errorf("suspicious cluster count %d for %d proxies", k, spec.Proxies)
		}
		t.Logf("proxies=%d phys=%d clusters=%d borders=%d elapsed=%v",
			spec.Proxies, spec.PhysicalNodes, k,
			len(e.Framework.Topology().BorderNodes()), time.Since(start))
	}
}
