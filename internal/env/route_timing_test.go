package env

import (
	"testing"
	"time"

	"hfc/internal/routing"
)

// TestRouteTiming checks that per-request routing cost at the largest
// Table 1 scale stays within interactive bounds for all three schemes.
func TestRouteTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale routing timing skipped in short mode")
	}
	spec := Table1(42)[3]
	e, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	fw := e.Framework
	provs := routing.CapabilityProviders(fw.Capabilities())
	const reqs = 50
	var tMesh, tHier, tFull time.Duration
	for i := 0; i < reqs; i++ {
		req, err := e.NextRequest()
		if err != nil {
			t.Fatalf("NextRequest: %v", err)
		}
		s := time.Now()
		if _, err := routing.FindPath(req, provs, routing.OracleFunc(e.Mesh.Dist), routing.ExpanderFunc(e.Mesh.Path)); err != nil {
			t.Fatalf("mesh route: %v", err)
		}
		tMesh += time.Since(s)
		s = time.Now()
		if _, err := fw.Route(req); err != nil {
			t.Fatalf("hierarchical route: %v", err)
		}
		tHier += time.Since(s)
		s = time.Now()
		m := routing.HFCMetric{T: fw.Topology()}
		if _, err := routing.FindPath(req, provs, m, m); err != nil {
			t.Fatalf("hfc-full route: %v", err)
		}
		tFull += time.Since(s)
	}
	t.Logf("per-request: mesh=%v hier=%v hfc-full=%v", tMesh/reqs, tHier/reqs, tFull/reqs)
	for name, d := range map[string]time.Duration{"mesh": tMesh, "hier": tHier, "hfc-full": tFull} {
		if d/reqs > 100*time.Millisecond {
			t.Errorf("%s routing too slow: %v per request", name, d/reqs)
		}
	}
}
