package env

import (
	"fmt"
	"math/rand"

	"hfc/internal/qos"
)

// QoSProfile builds the overlay's QoS ground truth: random machine loads in
// [loadLo, loadHi) and the physical network's bottleneck bandwidth between
// proxy hosts as the overlay-hop bandwidth oracle.
func (e *Environment) QoSProfile(rng *rand.Rand, loadLo, loadHi float64) (*qos.Profile, error) {
	loads, err := qos.RandomLoads(rng, e.Framework.N(), loadLo, loadHi)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	prof := &qos.Profile{
		Load: loads,
		Bandwidth: func(u, v int) (float64, error) {
			return e.Net.Bottleneck(e.ProxyPhys[u], e.ProxyPhys[v])
		},
	}
	if err := prof.Validate(e.Framework.N()); err != nil {
		return nil, err
	}
	return prof, nil
}
