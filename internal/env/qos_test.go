package env

import (
	"math"
	"math/rand"
	"testing"
)

func TestQoSProfileFromEnvironment(t *testing.T) {
	e, err := Build(SmallSpec(23))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	prof, err := e.QoSProfile(rng, 0.1, 0.8)
	if err != nil {
		t.Fatalf("QoSProfile: %v", err)
	}
	if len(prof.Load) != e.Framework.N() {
		t.Fatalf("loads = %d, want %d", len(prof.Load), e.Framework.N())
	}
	for i, l := range prof.Load {
		if l < 0.1 || l >= 0.8 {
			t.Errorf("load[%d] = %v outside [0.1,0.8)", i, l)
		}
	}
	// The bandwidth oracle reflects physical bottlenecks: positive,
	// symmetric, finite for distinct proxies.
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(e.Framework.N()), rng.Intn(e.Framework.N())
		if u == v {
			continue
		}
		bw, err := prof.Bandwidth(u, v)
		if err != nil {
			t.Fatalf("Bandwidth(%d,%d): %v", u, v, err)
		}
		rev, err := prof.Bandwidth(v, u)
		if err != nil {
			t.Fatalf("Bandwidth(%d,%d): %v", v, u, err)
		}
		if bw <= 0 || math.IsInf(bw, 1) {
			t.Fatalf("Bandwidth(%d,%d) = %v", u, v, bw)
		}
		//hfcvet:ignore floatdist both directions read the same cached bottleneck, identity expected
		if bw != rev {
			t.Fatalf("bandwidth asymmetric: %v vs %v", bw, rev)
		}
	}
	if _, err := e.QoSProfile(rng, 0.9, 0.1); err == nil {
		t.Error("inverted load range accepted")
	}
}
