// Package env builds complete simulation environments reproducing Table 1
// of the paper: a transit-stub physical topology, landmarks, overlay
// proxies with random service deployments, clients, the bootstrapped HFC
// framework, and the single-level mesh baseline — everything the §6
// experiments operate on, reproducibly from a seed.
package env

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/core"
	"hfc/internal/mesh"
	"hfc/internal/netsim"
	"hfc/internal/svc"
	"hfc/internal/topology"
)

// Spec is one simulation environment configuration — one row of Table 1
// plus the knobs the paper leaves implicit (catalog size, probe count,
// embedding dimension).
type Spec struct {
	// PhysicalNodes is the transit-stub topology size (Table 1: 300, 600,
	// 900, 1200).
	PhysicalNodes int
	// Landmarks is the GNP landmark count (Table 1: 10).
	Landmarks int
	// Proxies is the overlay size (Table 1: 250, 500, 750, 1000).
	Proxies int
	// Clients issue service requests from the edge (Table 1: 40, 90, 140,
	// 120).
	Clients int
	// MinServices and MaxServices bound services per proxy (Table 1:
	// 4–10).
	MinServices, MaxServices int
	// MinRequestLen and MaxRequestLen bound the service-graph length of
	// generated requests (Table 1: 4–10).
	MinRequestLen, MaxRequestLen int
	// CatalogSize is the number of distinct services in the system. The
	// paper does not state it; 40 keeps per-service provider density
	// realistic (each service on ~17% of proxies).
	CatalogSize int
	// CoordDim is the embedding dimension (paper: 2).
	CoordDim int
	// Probes is the measurement probe count (minimum taken).
	Probes int
	// InconsistencyK overrides the MST clustering inconsistency factor
	// when non-zero (ablation A1); zero keeps the library default.
	InconsistencyK float64
	// Workers bounds the worker pool the build's rng-free stages fan out
	// on — delay precomputation, coordinate solves, border scans, routing
	// tables (0/1 serial, negative = all cores). The built environment is
	// bit-identical for any value.
	Workers int
	// CacheRoutes enables the framework's route cache (repeated requests
	// answered from memory; safe because the bootstrapped state is static).
	CacheRoutes bool
	// ServeEngine attaches the concurrent route-serving engine
	// (internal/serve) to the built framework; see core.Config.ServeEngine.
	ServeEngine bool
	// CacheShards overrides the serving engine's cache shard count (0 =
	// default).
	CacheShards int
	// DenseMatrix materializes the O(n²) pairwise-distance matrix during
	// bootstrap (see core.Config.DenseMatrix); the default geo-indexed
	// build never needs it.
	DenseMatrix bool
	// Seed drives all randomness in the build.
	Seed int64
}

// Table1 returns the paper's four environments (Table 1), seeded with the
// given base seed (each row gets a distinct derived seed).
func Table1(seed int64) []Spec {
	rows := []struct {
		phys, proxies, clients int
	}{
		{300, 250, 40},
		{600, 500, 90},
		{900, 750, 140},
		{1200, 1000, 120},
	}
	specs := make([]Spec, len(rows))
	for i, r := range rows {
		specs[i] = Spec{
			PhysicalNodes: r.phys,
			Landmarks:     10,
			Proxies:       r.proxies,
			Clients:       r.clients,
			MinServices:   4,
			MaxServices:   10,
			MinRequestLen: 4,
			MaxRequestLen: 10,
			CatalogSize:   40,
			CoordDim:      2,
			Probes:        5,
			Seed:          seed + int64(i)*1009,
		}
	}
	return specs
}

// SmallSpec returns a laptop-friendly environment for tests and examples.
func SmallSpec(seed int64) Spec {
	return Spec{
		PhysicalNodes: 300,
		Landmarks:     8,
		Proxies:       60,
		Clients:       10,
		MinServices:   3,
		MaxServices:   6,
		MinRequestLen: 2,
		MaxRequestLen: 5,
		CatalogSize:   20,
		CoordDim:      2,
		Probes:        3,
		Seed:          seed,
	}
}

func (s Spec) validate() error {
	switch {
	case s.PhysicalNodes < 100:
		return fmt.Errorf("env: physical size %d below minimum 100", s.PhysicalNodes)
	case s.Landmarks < 2:
		return fmt.Errorf("env: need at least 2 landmarks, got %d", s.Landmarks)
	case s.Proxies < 2:
		return fmt.Errorf("env: need at least 2 proxies, got %d", s.Proxies)
	case s.Clients < 0:
		return fmt.Errorf("env: negative client count %d", s.Clients)
	case s.CatalogSize < 1:
		return fmt.Errorf("env: catalog size %d must be >= 1", s.CatalogSize)
	case s.MaxRequestLen > s.CatalogSize:
		return fmt.Errorf("env: request length up to %d exceeds catalog %d", s.MaxRequestLen, s.CatalogSize)
	}
	return nil
}

// Environment is a fully built simulation world.
type Environment struct {
	// Spec is the configuration the environment was built from.
	Spec Spec
	// Net is the physical network delay oracle.
	Net *netsim.Network
	// LandmarkPhys, ProxyPhys and ClientPhys map role indices to physical
	// node IDs; ProxyPhys[i] is overlay node i's host.
	LandmarkPhys, ProxyPhys, ClientPhys []int
	// Framework is the bootstrapped HFC middleware over the proxies.
	Framework *core.Framework
	// Mesh is the single-level baseline overlay over the same proxies and
	// the same embedded coordinates.
	Mesh *mesh.Mesh
	// rng continues the build's random stream for request generation.
	rng *rand.Rand
	gen *svc.RequestGenerator
}

// Build constructs the environment: generate the transit-stub Internet,
// place landmarks/proxies/clients on distinct stub nodes, bootstrap the HFC
// framework (GNP coordinates → clustering → borders → state), and build the
// mesh baseline on the same coordinates.
func Build(spec Spec) (*Environment, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	cfg, err := topology.ConfigForSize(spec.PhysicalNodes)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	topo, err := topology.GenerateTransitStub(rng, cfg)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	net, err := netsim.New(topo, netsim.WithWorkers(spec.Workers))
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}

	// Landmarks and proxies need distinct hosts; clients only attach to the
	// overlay from the edge and may share stub nodes when the topology is
	// tight (Table 1's 300-node row places 300 roles on ~288 stub nodes).
	stubs := topo.StubNodes()
	need := spec.Landmarks + spec.Proxies
	if need > len(stubs) {
		return nil, fmt.Errorf("env: need %d distinct stub nodes for landmarks+proxies but topology has %d", need, len(stubs))
	}
	perm := rng.Perm(len(stubs))
	pick := func(count int, offset int) []int {
		out := make([]int, count)
		for i := 0; i < count; i++ {
			out[i] = stubs[perm[offset+i]]
		}
		return out
	}
	landmarks := pick(spec.Landmarks, 0)
	proxies := pick(spec.Proxies, spec.Landmarks)
	var clients []int
	if remaining := len(stubs) - need; remaining >= spec.Clients {
		clients = pick(spec.Clients, need)
	} else {
		clients = make([]int, spec.Clients)
		for i := range clients {
			clients[i] = stubs[rng.Intn(len(stubs))]
		}
	}

	cat, err := svc.NewCatalog(spec.CatalogSize)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}
	caps, err := svc.RandomCapabilities(rng, spec.Proxies, cat, spec.MinServices, spec.MaxServices)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}

	coreCfg := core.Config{
		CoordDim:    spec.CoordDim,
		Probes:      spec.Probes,
		Workers:     spec.Workers,
		CacheRoutes: spec.CacheRoutes,
		ServeEngine: spec.ServeEngine,
		CacheShards: spec.CacheShards,
		DenseMatrix: spec.DenseMatrix,
	}
	if spec.InconsistencyK != 0 {
		coreCfg.Cluster.InconsistencyFactor = spec.InconsistencyK
	}
	fw, err := core.Bootstrap(rng, net, landmarks, proxies, caps, coreCfg)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}

	meshCfg := mesh.DefaultConfig()
	meshCfg.Workers = spec.Workers
	m, err := mesh.Build(rng, fw.Topology().Coords(), meshCfg)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}

	gen, err := svc.NewRequestGenerator(rng, caps, spec.MinRequestLen, spec.MaxRequestLen)
	if err != nil {
		return nil, fmt.Errorf("env: %w", err)
	}

	return &Environment{
		Spec:         spec,
		Net:          net,
		LandmarkPhys: landmarks,
		ProxyPhys:    proxies,
		ClientPhys:   clients,
		Framework:    fw,
		Mesh:         m,
		rng:          rng,
		gen:          gen,
	}, nil
}

// TrueDist returns the true physical latency between two overlay nodes —
// the evaluation metric of Fig. 10 (routing decisions use embedded
// coordinates; resulting paths are measured on the real network).
func (e *Environment) TrueDist(u, v int) float64 {
	return e.Net.Latency(e.ProxyPhys[u], e.ProxyPhys[v])
}

// NextRequest draws a random satisfiable service request per the spec's
// length range, with endpoints chosen as the proxies nearest to two random
// clients (requests enter the overlay at the edge). With no clients
// configured, endpoints are random distinct proxies.
func (e *Environment) NextRequest() (svc.Request, error) {
	req, err := e.gen.Next()
	if err != nil {
		return svc.Request{}, err
	}
	if len(e.ClientPhys) >= 2 {
		a := e.rng.Intn(len(e.ClientPhys))
		b := e.rng.Intn(len(e.ClientPhys) - 1)
		if b >= a {
			b++
		}
		req.Source = e.nearestProxy(e.ClientPhys[a])
		req.Dest = e.nearestProxy(e.ClientPhys[b])
		if req.Source == req.Dest {
			// Both clients attach to the same proxy; fall back to the
			// generator's distinct endpoints.
			return e.gen.Next()
		}
	}
	return req, nil
}

// nearestProxy returns the overlay index of the proxy closest (in true
// latency) to a physical node.
func (e *Environment) nearestProxy(phys int) int {
	best, bestD := 0, e.Net.Latency(phys, e.ProxyPhys[0])
	for i := 1; i < len(e.ProxyPhys); i++ {
		if d := e.Net.Latency(phys, e.ProxyPhys[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// EmbeddingError samples the coordinate map's relative error against true
// latencies over `samples` random proxy pairs.
func (e *Environment) EmbeddingError(samples int) ([]float64, error) {
	if samples < 1 {
		return nil, errors.New("env: need at least one sample")
	}
	cmap := e.Framework.Topology().Coords()
	out := make([]float64, 0, samples)
	for len(out) < samples {
		u, v := e.rng.Intn(cmap.N()), e.rng.Intn(cmap.N())
		if u == v {
			continue
		}
		pred := cmap.Dist(u, v)
		actual := e.TrueDist(u, v)
		out = append(out, relErr(pred, actual))
	}
	return out, nil
}

func relErr(pred, actual float64) float64 {
	const eps = 1e-6
	d := pred - actual
	if d < 0 {
		d = -d
	}
	return d / (actual + eps)
}
