package env

import (
	"testing"

	"hfc/internal/stats"
)

func TestTable1MatchesPaper(t *testing.T) {
	specs := Table1(1)
	if len(specs) != 4 {
		t.Fatalf("Table1 has %d rows, want 4", len(specs))
	}
	want := []struct{ phys, proxies, clients int }{
		{300, 250, 40}, {600, 500, 90}, {900, 750, 140}, {1200, 1000, 120},
	}
	for i, w := range want {
		s := specs[i]
		if s.PhysicalNodes != w.phys || s.Proxies != w.proxies || s.Clients != w.clients {
			t.Errorf("row %d = %+v, want %+v", i, s, w)
		}
		if s.Landmarks != 10 || s.MinServices != 4 || s.MaxServices != 10 ||
			s.MinRequestLen != 4 || s.MaxRequestLen != 10 {
			t.Errorf("row %d parameter columns wrong: %+v", i, s)
		}
	}
	// Distinct derived seeds.
	if specs[0].Seed == specs[1].Seed {
		t.Error("rows share a seed")
	}
}

func TestBuildSmallEnvironment(t *testing.T) {
	e, err := Build(SmallSpec(7))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if e.Framework.N() != 60 {
		t.Errorf("overlay size = %d, want 60", e.Framework.N())
	}
	if err := e.Framework.Validate(); err != nil {
		t.Errorf("framework invalid: %v", err)
	}
	if e.Framework.NumClusters() < 2 {
		t.Errorf("only %d clusters detected on a transit-stub overlay", e.Framework.NumClusters())
	}
	if e.Mesh.N() != 60 {
		t.Errorf("mesh size = %d, want 60", e.Mesh.N())
	}
	// Landmarks and proxies must occupy disjoint physical nodes (clients
	// may share hosts when the topology is tight).
	seen := make(map[int]bool)
	for _, group := range [][]int{e.LandmarkPhys, e.ProxyPhys} {
		for _, id := range group {
			if seen[id] {
				t.Fatalf("physical node %d plays two roles", id)
			}
			seen[id] = true
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(SmallSpec(3))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(SmallSpec(3))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Framework.NumClusters() != b.Framework.NumClusters() {
		t.Error("cluster counts differ across identical builds")
	}
	for i := range a.ProxyPhys {
		if a.ProxyPhys[i] != b.ProxyPhys[i] {
			t.Fatal("proxy placement differs across identical builds")
		}
	}
	ra, err := a.NextRequest()
	if err != nil {
		t.Fatalf("NextRequest: %v", err)
	}
	rb, err := b.NextRequest()
	if err != nil {
		t.Fatalf("NextRequest: %v", err)
	}
	if ra.Source != rb.Source || ra.Dest != rb.Dest || ra.SG.Len() != rb.SG.Len() {
		t.Error("request streams differ across identical builds")
	}
}

func TestNextRequestSatisfiable(t *testing.T) {
	e, err := Build(SmallSpec(11))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	deployed := make(map[string]bool)
	for _, c := range e.Framework.Capabilities() {
		for _, s := range c.Sorted() {
			deployed[string(s)] = true
		}
	}
	for i := 0; i < 30; i++ {
		req, err := e.NextRequest()
		if err != nil {
			t.Fatalf("NextRequest: %v", err)
		}
		if err := req.Validate(e.Framework.N()); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if req.Source == req.Dest {
			t.Fatalf("request %d has equal endpoints", i)
		}
		l := req.SG.Len()
		if l < e.Spec.MinRequestLen || l > e.Spec.MaxRequestLen {
			t.Fatalf("request %d length %d outside [%d,%d]", i, l, e.Spec.MinRequestLen, e.Spec.MaxRequestLen)
		}
		for _, s := range req.SG.Services {
			if !deployed[string(s)] {
				t.Fatalf("request %d asks for undeployed service %q", i, s)
			}
		}
	}
}

func TestTrueDistSymmetricPositive(t *testing.T) {
	e, err := Build(SmallSpec(13))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < 20; i++ {
		u, v := i%e.Framework.N(), (i*7+3)%e.Framework.N()
		if u == v {
			continue
		}
		//hfcvet:ignore floatdist the symmetrized matrix must agree bitwise in both directions
		if e.TrueDist(u, v) != e.TrueDist(v, u) {
			t.Errorf("TrueDist asymmetric for (%d,%d)", u, v)
		}
		if e.TrueDist(u, v) <= 0 {
			t.Errorf("TrueDist(%d,%d) = %v", u, v, e.TrueDist(u, v))
		}
	}
}

func TestEmbeddingErrorReasonable(t *testing.T) {
	e, err := Build(SmallSpec(17))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	errs, err := e.EmbeddingError(300)
	if err != nil {
		t.Fatalf("EmbeddingError: %v", err)
	}
	if med := stats.Median(errs); med > 0.6 {
		t.Errorf("median embedding error %.3f too high", med)
	}
	if _, err := e.EmbeddingError(0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	bads := []func(*Spec){
		func(s *Spec) { s.PhysicalNodes = 50 },
		func(s *Spec) { s.Landmarks = 1 },
		func(s *Spec) { s.Proxies = 1 },
		func(s *Spec) { s.Clients = -1 },
		func(s *Spec) { s.CatalogSize = 0 },
		func(s *Spec) { s.MaxRequestLen = 99 },
		func(s *Spec) { s.Proxies = 10000 }, // more landmarks+proxies than stub nodes
	}
	for i, mutate := range bads {
		spec := SmallSpec(1)
		mutate(&spec)
		if _, err := Build(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
