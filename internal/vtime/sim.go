package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sim is the discrete-event virtual clock: a monotonic time counter, a
// priority queue of events ordered by (time, sequence), and a cooperative
// task scheduler. One Run call drives everything on a single runner — the
// scheduler loop and every task goroutine pass an implicit baton over
// unbuffered channels, so exactly one of them executes at any moment and
// every access to Sim state is ordered by a channel handoff (race-detector
// clean with no locks). Virtual time advances only when no task is runnable:
// jumping straight to the next event is what makes a simulated minute of
// timeouts free.
//
// Determinism: with the same sequence of API calls, the event queue pops in
// the same (time, seq) order, tasks resume in the same FIFO order, and
// every callback runs at the same virtual instant — so a seeded simulation
// produces byte-identical traces run after run.
//
// All Sim methods must be called with the baton held — that is, from inside
// a task started by Run/Go or from an event callback. Calling them from a
// foreign goroutine is a data race by construction.
type Sim struct {
	now  time.Duration
	seq  uint64
	evq  eventQueue
	live int // events in evq not invalidated by Stop/Reset

	ready readyQueue
	idle  []*task // tasks parked in WaitIdle
	tasks int     // tasks started and not yet finished
	named int     // counter for auto-generated task names

	cur     *task
	yield   chan struct{} // task/loop -> loop baton return
	running bool
}

// task is one cooperative goroutine managed by the Sim scheduler.
type task struct {
	name      string
	wake      chan struct{} // loop -> task baton handoff
	blockedOn string        // human-readable park reason for deadlock reports
}

// event is one scheduled callback.
type event struct {
	when time.Duration
	seq  uint64
	fn   func()
	// timer links the event to its simTimer for lazy invalidation: the
	// event is stale (already Stopped or Reset) when gen no longer matches
	// the timer's current generation. Sleep wake-ups have a nil timer.
	timer *simTimer
	gen   uint64
}

// NewSim returns a virtual clock at time zero with an empty event queue.
func NewSim() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now is the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Pending reports how many scheduled events are still live — useful for
// tests asserting a quiesced scheduler.
func (s *Sim) Pending() int { return s.live }

// Tasks reports how many tasks are alive (running, ready, or parked).
func (s *Sim) Tasks() int { return s.tasks }

// Go starts fn as a new cooperative task. The task becomes runnable
// immediately (FIFO after already-ready tasks) but does not run until the
// current task parks or finishes. name appears in deadlock reports; empty
// picks a generated one.
func (s *Sim) Go(name string, fn func()) {
	if name == "" {
		s.named++
		name = fmt.Sprintf("task-%d", s.named)
	}
	t := &task{name: name, wake: make(chan struct{})}
	s.tasks++
	go func() {
		<-t.wake
		fn()
		s.tasks--
		s.cur = nil
		s.yield <- struct{}{}
	}()
	s.ready.push(t)
}

// Run starts fn as the first task and drives the event loop until every
// task has finished. Leftover events (stopped timers, timers past the last
// task's lifetime) are discarded. Run panics if no runnable task exists, no
// event can wake one, and tasks are still alive — a deadlock in simulated
// code, reported with every parked task's name and park reason.
func (s *Sim) Run(fn func()) {
	if s.running {
		panic("vtime: nested Sim.Run")
	}
	s.running = true
	defer func() { s.running = false }()
	s.Go("main", fn)
	for {
		if t, ok := s.ready.pop(); ok {
			s.cur = t
			t.wake <- struct{}{}
			<-s.yield
			continue
		}
		if s.fireNext() {
			continue
		}
		if len(s.idle) > 0 {
			for _, t := range s.idle {
				s.ready.push(t)
			}
			s.idle = s.idle[:0]
			continue
		}
		if s.tasks == 0 {
			s.evq = nil
			s.live = 0
			return
		}
		panic("vtime: deadlock — " + s.blockedReport())
	}
}

// fireNext pops events until one live event fires (advancing virtual time
// to its deadline and running its callback inline on the loop) or the queue
// is exhausted. Stale events — invalidated by Timer.Stop or Reset — are
// discarded without firing.
func (s *Sim) fireNext() bool {
	for len(s.evq) > 0 {
		ev := heap.Pop(&s.evq).(*event)
		if ev.timer != nil && (!ev.timer.armed || ev.timer.gen != ev.gen) {
			continue // stale: live was already decremented at Stop/Reset
		}
		if ev.timer != nil {
			ev.timer.armed = false
		}
		s.live--
		if ev.when > s.now {
			s.now = ev.when
		}
		ev.fn()
		return true
	}
	return false
}

// blockedReport lists every parked task for the deadlock panic.
func (s *Sim) blockedReport() string {
	var names []string
	for _, t := range s.idle {
		names = append(names, t.name+" (waitidle)")
	}
	n := fmt.Sprintf("%d task(s) blocked with no pending event", s.tasks)
	if len(names) > 0 {
		sort.Strings(names)
		n += ": " + strings.Join(names, ", ")
	}
	if s.cur != nil {
		n += fmt.Sprintf("; current=%s (%s)", s.cur.name, s.cur.blockedOn)
	}
	return n
}

// park hands the baton back to the loop and blocks until the task is
// rescheduled. The caller must have queued something (an event, a future
// waiter registration) that will eventually push t back onto the ready
// queue, or Run will report a deadlock.
func (s *Sim) park(t *task) {
	s.cur = nil
	s.yield <- struct{}{}
	<-t.wake
	s.cur = t
}

// current returns the running task, panicking when called from outside one
// (event callbacks run on the loop and must not block).
func (s *Sim) current(op string) *task {
	if s.cur == nil {
		panic("vtime: " + op + " called outside a task (event callbacks must not block)")
	}
	return s.cur
}

// Sleep parks the current task until d of virtual time has elapsed.
// Non-positive d still yields: the task re-queues behind every currently
// scheduled same-instant event, giving cooperative round-robin.
func (s *Sim) Sleep(d time.Duration) {
	t := s.current("Sleep")
	if d < 0 {
		d = 0
	}
	s.schedule(d, func() { s.ready.push(t) }, nil, 0)
	t.blockedOn = fmt.Sprintf("sleep %v until %v", d, s.now+d)
	s.park(t)
	t.blockedOn = ""
}

// WaitIdle parks the current task until the scheduler has no runnable task
// and no live event — every cascade of messages and timers has fully
// drained. Multiple tasks may wait; they all wake together. Returns
// immediately if the system is already idle.
func (s *Sim) WaitIdle() {
	t := s.current("WaitIdle")
	if s.ready.len() == 0 && s.live == 0 {
		return
	}
	t.blockedOn = "waitidle"
	s.idle = append(s.idle, t)
	s.park(t)
	t.blockedOn = ""
}

// AfterFunc schedules fn to run at virtual time Now()+d on the event loop.
// fn must not block (no Sleep, no Await); it may call Go to spawn a task
// that does. The returned Timer follows time.Timer Stop/Reset semantics.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	t := &simTimer{s: s, fn: fn}
	t.arm(d)
	return t
}

// schedule pushes one event.
func (s *Sim) schedule(d time.Duration, fn func(), timer *simTimer, gen uint64) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.evq, &event{when: s.now + d, seq: s.seq, fn: fn, timer: timer, gen: gen})
	s.live++
}

// simTimer is the virtual-clock Timer. Stop and Reset invalidate the
// pending event lazily by bumping gen; the stale heap entry is skipped when
// popped.
type simTimer struct {
	s     *Sim
	fn    func()
	armed bool
	gen   uint64
}

func (t *simTimer) arm(d time.Duration) {
	t.gen++
	t.armed = true
	t.s.schedule(d, func() { t.fn() }, t, t.gen)
}

// Stop cancels the pending callback, reporting whether it was still pending.
func (t *simTimer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	t.gen++
	t.s.live--
	return true
}

// Reset re-arms the timer for Now()+d, reporting whether it was pending.
func (t *simTimer) Reset(d time.Duration) bool {
	was := t.armed
	if was {
		t.s.live-- // the old event goes stale via the gen bump in arm
	}
	t.arm(d)
	return was
}

// eventQueue is a min-heap ordered by (when, seq): earliest deadline first,
// insertion order among same-instant events.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// readyQueue is a FIFO of runnable tasks with amortised O(1) pop (head
// index plus periodic compaction).
type readyQueue struct {
	q    []*task
	head int
}

func (r *readyQueue) push(t *task) { r.q = append(r.q, t) }

func (r *readyQueue) pop() (*task, bool) {
	if r.head >= len(r.q) {
		return nil, false
	}
	t := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	if r.head > 64 && r.head*2 >= len(r.q) {
		n := copy(r.q, r.q[r.head:])
		r.q = r.q[:n]
		r.head = 0
	}
	return t, true
}

func (r *readyQueue) len() int { return len(r.q) - r.head }
