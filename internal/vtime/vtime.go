// Package vtime abstracts time behind a Clock so the overlay runtime can run
// on either the wall clock (production: goroutines, real timers, unchanged
// behavior) or a discrete-event virtual clock (simulation: one runner, a
// deterministic event queue, 100k simulated nodes in seconds of wall time).
//
// The contract every consumer codes against:
//
//   - Now returns the time elapsed since the clock started, as a
//     time.Duration. It is monotonic and has no wall-clock meaning; only
//     differences matter.
//   - Sleep blocks the calling task for d. Under the real clock that is
//     time.Sleep; under the virtual clock the task parks and the scheduler
//     runs other work until the virtual time arrives.
//   - AfterFunc schedules fn to run once after d and returns a Timer whose
//     Stop/Reset follow time.Timer semantics (Stop reports whether it
//     prevented the call; Reset reports whether the timer had been active).
//     Virtual-clock callbacks run on the scheduler loop itself and therefore
//     must not block; real-clock callbacks run on their own goroutine, as
//     with time.AfterFunc.
//
// vtime is the sanctioned boundary to the time package: the detrand analyzer
// forbids raw time.Now/Sleep/AfterFunc in the deterministic packages and
// points callers here.
package vtime

import "time"

// Clock is the time source injected into the overlay runtime.
type Clock interface {
	// Now is the monotonic elapsed time since the clock started.
	Now() time.Duration
	// Sleep blocks the calling task until d has elapsed.
	Sleep(d time.Duration)
	// AfterFunc runs fn once after d. Under a Sim clock fn runs inline on
	// the event loop and must not block.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a stoppable, resettable pending AfterFunc call.
type Timer interface {
	// Stop cancels the pending call, reporting whether it was still pending
	// (time.Timer semantics: false means the callback already ran or the
	// timer was already stopped).
	Stop() bool
	// Reset re-arms the timer to fire after d, reporting whether it was
	// still pending beforehand.
	Reset(d time.Duration) bool
}

// Real is the production clock: thin wrappers over the time package with a
// fixed start point so Now is a monotonic elapsed duration.
type Real struct {
	start time.Time
}

// NewReal returns a wall-clock Clock starting at zero now.
func NewReal() *Real {
	return &Real{start: time.Now()}
}

// Now is the wall-clock time elapsed since NewReal.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep is time.Sleep.
func (r *Real) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc is time.AfterFunc.
func (r *Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

type realTimer struct {
	t *time.Timer
}

func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }
