package vtime

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	s := NewSim()
	var marks []time.Duration
	s.Run(func() {
		marks = append(marks, s.Now())
		s.Sleep(50 * time.Millisecond)
		marks = append(marks, s.Now())
		s.Sleep(2 * time.Hour) // virtual: costs nothing
		marks = append(marks, s.Now())
	})
	want := []time.Duration{0, 50 * time.Millisecond, 2*time.Hour + 50*time.Millisecond}
	for i, w := range want {
		if marks[i] != w {
			t.Fatalf("mark %d: got %v want %v", i, marks[i], w)
		}
	}
}

func TestSimAfterFuncOrdering(t *testing.T) {
	s := NewSim()
	var log []string
	s.Run(func() {
		// Same deadline: insertion order. Different deadlines: time order,
		// regardless of insertion order.
		s.AfterFunc(20*time.Millisecond, func() { log = append(log, "b1") })
		s.AfterFunc(10*time.Millisecond, func() { log = append(log, "a") })
		s.AfterFunc(20*time.Millisecond, func() { log = append(log, "b2") })
		s.Sleep(30 * time.Millisecond)
		log = append(log, "wake")
	})
	if got := strings.Join(log, ","); got != "a,b1,b2,wake" {
		t.Fatalf("fire order %q", got)
	}
}

func TestSimTimerStopReset(t *testing.T) {
	s := NewSim()
	fired := 0
	s.Run(func() {
		tm := s.AfterFunc(10*time.Millisecond, func() { fired++ })
		if !tm.Stop() {
			t.Error("Stop of pending timer should report true")
		}
		if tm.Stop() {
			t.Error("second Stop should report false")
		}
		if tm.Reset(5 * time.Millisecond) {
			t.Error("Reset of stopped timer should report false")
		}
		if !tm.Reset(15 * time.Millisecond) {
			t.Error("Reset of pending timer should report true")
		}
		s.Sleep(20 * time.Millisecond)
		if fired != 1 {
			t.Errorf("timer fired %d times, want exactly 1 (resets must supersede)", fired)
		}
		if tm.Stop() {
			t.Error("Stop after firing should report false")
		}
	})
}

func TestSimTasksInterleaveDeterministically(t *testing.T) {
	s := NewSim()
	var log []string
	s.Run(func() {
		for i := 0; i < 3; i++ {
			i := i
			s.Go(fmt.Sprintf("worker-%d", i), func() {
				for step := 0; step < 2; step++ {
					log = append(log, fmt.Sprintf("w%d.%d@%v", i, step, s.Now()))
					s.Sleep(time.Duration(i+1) * time.Millisecond)
				}
			})
		}
		s.WaitIdle()
		log = append(log, "idle@"+s.Now().String())
	})
	want := "w0.0@0s,w1.0@0s,w2.0@0s,w0.1@1ms,w1.1@2ms,w2.1@3ms,idle@6ms"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("interleaving\n got %s\nwant %s", got, want)
	}
}

func TestSimWaitIdleWaitsForTimerCascades(t *testing.T) {
	s := NewSim()
	depth := 0
	s.Run(func() {
		var chain func()
		chain = func() {
			depth++
			if depth < 5 {
				s.AfterFunc(time.Millisecond, chain)
			}
		}
		s.AfterFunc(time.Millisecond, chain)
		s.WaitIdle()
		if depth != 5 {
			t.Errorf("WaitIdle returned at depth %d, want 5", depth)
		}
		if s.Pending() != 0 {
			t.Errorf("%d live events after idle", s.Pending())
		}
	})
}

func TestFutureCompleteAndTimeout(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		// Completion before the deadline.
		f := NewFuture[int](s)
		s.AfterFunc(5*time.Millisecond, func() { f.Complete(42) })
		if v, ok := f.AwaitTimeout(time.Second); !ok || v != 42 {
			t.Errorf("await = (%d,%v), want (42,true)", v, ok)
		}
		if s.Now() != 5*time.Millisecond {
			t.Errorf("await woke at %v, want 5ms", s.Now())
		}

		// Deadline passes first.
		g := NewFuture[int](s)
		s.AfterFunc(time.Second, func() { g.Complete(7) })
		if v, ok := g.AwaitTimeout(10 * time.Millisecond); ok {
			t.Errorf("await = (%d,true), want timeout", v)
		}
		if s.Now() != 15*time.Millisecond {
			t.Errorf("timeout woke at %v, want 15ms", s.Now())
		}

		// Already-completed future returns immediately; duplicate Complete loses.
		h := NewFuture[string](s)
		if !h.Complete("first") {
			t.Error("first Complete should win")
		}
		if h.Complete("second") {
			t.Error("second Complete should report false")
		}
		if v, ok := h.AwaitTimeout(0); !ok || v != "first" {
			t.Errorf("await done future = (%q,%v)", v, ok)
		}
	})
}

func TestSimPanicsOutsideTask(t *testing.T) {
	s := NewSim()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s outside a task did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Sleep", func() { s.Sleep(time.Millisecond) })
	mustPanic("WaitIdle", func() { s.WaitIdle() })
	s.Run(func() {
		s.AfterFunc(time.Millisecond, func() {
			mustPanic("Sleep-in-callback", func() { s.Sleep(time.Millisecond) })
		})
		s.Sleep(2 * time.Millisecond)
	})
}

func TestSimNestedRunPanics(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("nested Run did not panic")
			}
		}()
		s.Run(func() {})
	})
}

// TestSimTraceDeterminism200Seeds runs a randomized workload — tasks,
// sleeps, timers, stops/resets, futures — twice per seed on fresh Sims and
// requires byte-identical event traces: same seed, same trace, always.
func TestSimTraceDeterminism200Seeds(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := runTraceScenario(seed)
		b := runTraceScenario(seed)
		if a != b {
			t.Fatalf("seed %d: traces differ\n--- run1 ---\n%s\n--- run2 ---\n%s", seed, a, b)
		}
	}
}

// runTraceScenario builds a deterministic-but-messy workload from seed and
// returns its trace.
func runTraceScenario(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	s := NewSim()
	var trace strings.Builder
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(&trace, "%v: ", s.Now())
		fmt.Fprintf(&trace, format, args...)
		trace.WriteByte('\n')
	}
	s.Run(func() {
		var timers []Timer
		nTasks := 2 + rng.Intn(4)
		for i := 0; i < nTasks; i++ {
			i := i
			steps := 1 + rng.Intn(4)
			period := time.Duration(1+rng.Intn(20)) * time.Millisecond
			s.Go(fmt.Sprintf("t%d", i), func() {
				for j := 0; j < steps; j++ {
					logf("task %d step %d", i, j)
					s.Sleep(period)
				}
			})
		}
		for i := 0; i < 5+rng.Intn(10); i++ {
			i := i
			d := time.Duration(rng.Intn(40)) * time.Millisecond
			timers = append(timers, s.AfterFunc(d, func() { logf("timer %d", i) }))
		}
		f := NewFuture[int](s)
		s.AfterFunc(time.Duration(rng.Intn(30))*time.Millisecond, func() { f.Complete(1) })
		s.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
		for i, tm := range timers {
			if rng.Intn(2) == 0 {
				logf("stop %d -> %v", i, tm.Stop())
			} else if rng.Intn(2) == 0 {
				logf("reset %d -> %v", i, tm.Reset(time.Duration(rng.Intn(20))*time.Millisecond))
			}
		}
		_, ok := f.AwaitTimeout(time.Duration(5+rng.Intn(40)) * time.Millisecond)
		logf("future ok=%v", ok)
		s.WaitIdle()
		logf("idle")
	})
	return trace.String()
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	t0 := c.Now()
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if tm.Stop() {
		t.Error("Stop after fire should report false")
	}
	if c.Now() < t0 {
		t.Error("real clock went backwards")
	}
}
