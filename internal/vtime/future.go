package vtime

import "time"

// Future is a single-assignment cell a Sim task can await with a deadline —
// the virtual-clock replacement for the "reply channel + timer + select"
// idiom. Complete delivers the value (first call wins) and wakes the
// waiter; AwaitTimeout parks the calling task until the value arrives or d
// of virtual time passes.
//
// Like everything on Sim, a Future must only be touched with the baton held
// (from tasks or event callbacks), and it supports at most one concurrent
// waiter.
type Future[T any] struct {
	s      *Sim
	done   bool
	val    T
	waiter *task
}

// NewFuture returns an incomplete Future bound to s.
func NewFuture[T any](s *Sim) *Future[T] {
	return &Future[T]{s: s}
}

// Complete delivers v, waking the waiter if one is parked. Only the first
// call takes effect; later calls report false and discard their value.
func (f *Future[T]) Complete(v T) bool {
	if f.done {
		return false
	}
	f.done = true
	f.val = v
	if w := f.waiter; w != nil {
		f.waiter = nil
		f.s.ready.push(w)
	}
	return true
}

// Done reports whether the value has been delivered.
func (f *Future[T]) Done() bool { return f.done }

// AwaitTimeout blocks the current task until the Future completes or d of
// virtual time elapses, reporting which happened. A completed Future
// returns immediately. Panics if another task is already waiting.
func (f *Future[T]) AwaitTimeout(d time.Duration) (T, bool) {
	if f.done {
		return f.val, true
	}
	if f.waiter != nil {
		panic("vtime: Future already has a waiter")
	}
	t := f.s.current("Future.AwaitTimeout")
	f.waiter = t
	timeout := f.s.AfterFunc(d, func() {
		// Still waiting at the deadline: detach and wake with no value.
		if f.waiter == t {
			f.waiter = nil
			f.s.ready.push(t)
		}
	})
	t.blockedOn = "future"
	f.s.park(t)
	t.blockedOn = ""
	timeout.Stop()
	if f.done {
		return f.val, true
	}
	var zero T
	return zero, false
}
