package vtime

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// refModel is an executable specification of Sim's timer semantics: timers
// are (deadline, seq) pairs fired in lexicographic order whenever virtual
// time advances past them, Stop/Reset report the armed flag, and re-arming
// takes a fresh sequence number. The property tests drive the same op
// stream through refModel and a real Sim and require identical fire logs
// and return values.
type refModel struct {
	now    time.Duration
	seq    uint64
	timers []*refTimer
	log    []string
}

type refTimer struct {
	id         int
	armed      bool
	deadline   time.Duration
	seq        uint64
	childDelay time.Duration // < 0: plain timer; >= 0: firing arms a child
	childID    int
}

func (m *refModel) arm(t *refTimer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.seq++
	t.armed, t.deadline, t.seq = true, m.now+d, m.seq
}

func (m *refModel) afterFunc(id int, d, childDelay time.Duration, childID int) *refTimer {
	t := &refTimer{id: id, childDelay: childDelay, childID: childID}
	m.arm(t, d)
	m.timers = append(m.timers, t)
	return t
}

func (m *refModel) stop(t *refTimer) bool {
	was := t.armed
	t.armed = false
	return was
}

func (m *refModel) reset(t *refTimer, d time.Duration) bool {
	was := t.armed
	m.arm(t, d)
	return was
}

// sleep advances to now+d, firing every armed timer whose (deadline, seq)
// precedes the sleeper's own wake event — exactly the Sim heap order.
func (m *refModel) sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.seq++
	wakeSeq := m.seq
	target := m.now + d
	for {
		var next *refTimer
		for _, t := range m.timers {
			if !t.armed {
				continue
			}
			if t.deadline > target || (t.deadline == target && t.seq > wakeSeq) {
				continue
			}
			if next == nil || t.deadline < next.deadline ||
				(t.deadline == next.deadline && t.seq < next.seq) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.armed = false
		if next.deadline > m.now {
			m.now = next.deadline
		}
		m.log = append(m.log, fmt.Sprintf("%v fire %d", m.now, next.id))
		if next.childDelay >= 0 {
			m.afterFunc(next.childID, next.childDelay, -1, 0)
		}
	}
	m.now = target
}

// drain fires everything still pending by sleeping past the last deadline.
func (m *refModel) drain() {
	var maxD time.Duration
	for _, t := range m.timers {
		if t.armed && t.deadline > maxD {
			maxD = t.deadline
		}
	}
	// Children armed during the drain land at child deadlines <= deadline +
	// childDelay; childDelay is bounded by maxOpDelay, so one generous pass
	// suffices for the depth-1 children the op stream creates.
	m.sleep(maxD - m.now + 10*maxOpDelay)
}

const maxOpDelay = 64 * time.Millisecond

// simOp is one step of the interleaving: create, create-with-child, stop,
// reset, or sleep.
type simOp struct {
	kind  byte // 'n' new, 'c' new-with-child, 's' stop, 'r' reset, 'z' sleep
	delay time.Duration
	aux   time.Duration // child delay / reset duration
	index int           // timer selector for stop/reset (mod live count)
}

// runOps executes the op stream against both the model and a live Sim and
// reports the first divergence.
func runOps(t *testing.T, ops []simOp) {
	t.Helper()
	model := &refModel{}
	nextID := 0
	var mTimers []*refTimer
	for _, op := range ops {
		switch op.kind {
		case 'n':
			mTimers = append(mTimers, model.afterFunc(nextID, op.delay, -1, 0))
			nextID++
		case 'c':
			mTimers = append(mTimers, model.afterFunc(nextID, op.delay, op.aux, nextID+1))
			nextID += 2
		case 's':
			if len(mTimers) > 0 {
				tm := mTimers[op.index%len(mTimers)]
				model.log = append(model.log, fmt.Sprintf("%v stop %d -> %v", model.now, tm.id, model.stop(tm)))
			}
		case 'r':
			if len(mTimers) > 0 {
				tm := mTimers[op.index%len(mTimers)]
				model.log = append(model.log, fmt.Sprintf("%v reset %d -> %v", model.now, tm.id, model.reset(tm, op.aux)))
			}
		case 'z':
			model.sleep(op.delay)
		}
	}
	model.drain()

	s := NewSim()
	var log []string
	s.Run(func() {
		nextID := 0
		var timers []Timer
		fire := func(id int) func() {
			return func() { log = append(log, fmt.Sprintf("%v fire %d", s.Now(), id)) }
		}
		for _, op := range ops {
			switch op.kind {
			case 'n':
				timers = append(timers, s.AfterFunc(op.delay, fire(nextID)))
				nextID++
			case 'c':
				id, childID := nextID, nextID+1
				childDelay := op.aux
				timers = append(timers, s.AfterFunc(op.delay, func() {
					log = append(log, fmt.Sprintf("%v fire %d", s.Now(), id))
					s.AfterFunc(childDelay, fire(childID))
				}))
				nextID += 2
			case 's':
				if len(timers) > 0 {
					i := op.index % len(timers)
					log = append(log, fmt.Sprintf("%v stop %d -> %v", s.Now(), timerID(ops, i), timers[i].Stop()))
				}
			case 'r':
				if len(timers) > 0 {
					i := op.index % len(timers)
					log = append(log, fmt.Sprintf("%v reset %d -> %v", s.Now(), timerID(ops, i), timers[i].Reset(op.aux)))
				}
			case 'z':
				s.Sleep(op.delay)
			}
		}
		s.WaitIdle()
	})

	got, want := strings.Join(log, "\n"), strings.Join(model.log, "\n")
	if got != want {
		t.Fatalf("sim diverges from reference model\nops: %+v\n--- sim ---\n%s\n--- model ---\n%s", ops, got, want)
	}
}

// timerID maps the i-th created Timer back to its log id (child timers of
// 'c' ops consume an id without appearing in the timers slice).
func timerID(ops []simOp, i int) int {
	id := 0
	n := 0
	for _, op := range ops {
		switch op.kind {
		case 'n':
			if n == i {
				return id
			}
			n++
			id++
		case 'c':
			if n == i {
				return id
			}
			n++
			id += 2
		}
	}
	return -1
}

// TestTimerModelProperty drives 300 random interleavings of
// AfterFunc/Stop/Reset/Sleep (including callbacks that arm child timers)
// through Sim and the reference model.
func TestTimerModelProperty(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nOps := 5 + rng.Intn(40)
		ops := make([]simOp, 0, nOps)
		for i := 0; i < nOps; i++ {
			op := simOp{
				delay: time.Duration(rng.Intn(int(maxOpDelay))),
				aux:   time.Duration(rng.Intn(int(maxOpDelay))),
				index: rng.Intn(64),
			}
			switch rng.Intn(6) {
			case 0, 1:
				op.kind = 'n'
			case 2:
				op.kind = 'c'
			case 3:
				op.kind = 's'
			case 4:
				op.kind = 'r'
			case 5:
				op.kind = 'z'
			}
			ops = append(ops, op)
		}
		ops = append(ops, simOp{kind: 'z', delay: maxOpDelay})
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runOps(t, ops) })
	}
}

// decodeOps turns fuzz bytes into a bounded op stream: each op is 4 bytes
// (kind, delay, aux, index).
func decodeOps(data []byte) []simOp {
	var ops []simOp
	for i := 0; i+3 < len(data) && len(ops) < 256; i += 4 {
		op := simOp{
			delay: time.Duration(data[i+1]) * time.Millisecond / 4,
			aux:   time.Duration(data[i+2]) * time.Millisecond / 4,
			index: int(data[i+3]),
		}
		switch data[i] % 5 {
		case 0:
			op.kind = 'n'
		case 1:
			op.kind = 'c'
		case 2:
			op.kind = 's'
		case 3:
			op.kind = 'r'
		case 4:
			op.kind = 'z'
		}
		ops = append(ops, op)
	}
	return ops
}

// FuzzVTimeSchedule fuzzes arbitrary timer-op schedules against the
// reference model.
func FuzzVTimeSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 4, 20, 0, 0})                       // new + sleep
	f.Add([]byte{1, 8, 8, 0, 2, 0, 0, 0, 4, 40, 0, 0})            // child + stop + sleep
	f.Add([]byte{0, 0, 0, 0, 3, 4, 0, 0, 4, 0, 0, 0, 4, 1, 0, 0}) // zero-delay churn
	f.Add([]byte{1, 2, 2, 1, 1, 2, 2, 1, 3, 0, 1, 1, 4, 3, 0, 0}) // same-instant pileup
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) == 0 {
			return
		}
		runOps(t, ops)
	})
}
