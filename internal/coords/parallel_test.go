package coords

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBuildMapWorkersBitIdentical is the determinism contract's hard gate:
// the map, the landmark points, AND the rng stream left behind must all be
// exactly what the serial path produces, for several worker counts.
func TestBuildMapWorkersBitIdentical(t *testing.T) {
	net := buildNetwork(t, 30)
	pool := net.Topology().StubNodes()
	pick := pickNodes(rand.New(rand.NewSource(31)), pool, 40)
	landmarks, nodes := pick[:8], pick[8:]

	run := func(workers int) (*Map, []Point, float64) {
		rng := rand.New(rand.NewSource(77))
		cmap, lm, err := BuildMapWorkers(rng, net, landmarks, nodes, 2, 3, workers)
		if err != nil {
			t.Fatalf("BuildMapWorkers(%d): %v", workers, err)
		}
		// The next draw exposes any divergence in rng consumption.
		return cmap, lm, rng.Float64()
	}

	wantMap, wantLM, wantNext := run(1)
	for _, workers := range []int{2, 4, -1} {
		gotMap, gotLM, gotNext := run(workers)
		if !reflect.DeepEqual(gotMap, wantMap) {
			t.Errorf("workers=%d: map differs from serial build", workers)
		}
		if !reflect.DeepEqual(gotLM, wantLM) {
			t.Errorf("workers=%d: landmark points differ from serial build", workers)
		}
		//hfcvet:ignore floatdist identical rng streams must produce identical draws bit-for-bit
		if gotNext != wantNext {
			t.Errorf("workers=%d: rng stream diverged (next draw %v, want %v)", workers, gotNext, wantNext)
		}
	}
}

func TestEmbedLandmarksWorkersBitIdentical(t *testing.T) {
	// A synthetic 6-landmark distance matrix.
	base := []Point{{0, 0}, {10, 0}, {0, 10}, {7, 7}, {3, 9}, {12, 4}}
	m := len(base)
	dists := make([][]float64, m)
	for i := range dists {
		dists[i] = make([]float64, m)
		for j := range dists[i] {
			if i != j {
				dists[i][j] = Dist(base[i], base[j])
			}
		}
	}
	run := func(workers int) []Point {
		rng := rand.New(rand.NewSource(5))
		pts, err := EmbedLandmarksWorkers(rng, dists, 2, workers)
		if err != nil {
			t.Fatalf("EmbedLandmarksWorkers(%d): %v", workers, err)
		}
		return pts
	}
	want := run(1)
	for _, workers := range []int{2, -1} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: embedding differs from serial", workers)
		}
	}
}

func TestDistMatrixMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]Point, 30)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	m, err := NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	for _, workers := range []int{1, 3, -1} {
		matrix := m.DistMatrix(workers)
		for i := 0; i < m.N(); i++ {
			for j := 0; j < m.N(); j++ {
				want := 0.0
				if i != j {
					want = m.Dist(i, j)
				}
				//hfcvet:ignore floatdist matrix entries must equal Dist bit-for-bit by construction
				if matrix[i][j] != want {
					t.Fatalf("workers=%d: matrix[%d][%d] = %v, want %v", workers, i, j, matrix[i][j], want)
				}
			}
		}
	}
}
