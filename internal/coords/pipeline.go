package coords

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/par"
)

// Measurer is the measurement capability the GNP pipeline needs from the
// underlying network: a noisy end-to-end delay probe that takes the minimum
// of several measurements. *netsim.Network satisfies it.
type Measurer interface {
	MeasureMin(rng *rand.Rand, u, v, probes int) (float64, error)
}

// BuildMap executes the paper's complete §3.1 procedure:
//
//  1. the landmark nodes measure their pairwise distances (minimum of
//     `probes` probes each) and are embedded into a dim-dimensional space;
//  2. every node in nodes measures its distance to each landmark and derives
//     its own coordinates.
//
// landmarks and nodes hold physical node IDs understood by the Measurer.
// The returned Map's Points are aligned with nodes (Points[i] belongs to
// nodes[i]); the landmark coordinates are returned separately. Landmarks
// only serve as reference points and take no further part in the overlay
// (§3.1), so they are not included in the Map.
func BuildMap(rng *rand.Rand, m Measurer, landmarks, nodes []int, dim, probes int) (*Map, []Point, error) {
	return BuildMapWorkers(rng, m, landmarks, nodes, dim, probes, 1)
}

// BuildMapWorkers is BuildMap with the function minimizations fanned out
// across a bounded worker pool (negative workers selects GOMAXPROCS; zero
// or one selects the serial path).
//
// Determinism contract: every rng draw — landmark measurements, per-node
// measurements, per-node placement jitters — happens sequentially on the
// calling goroutine in exactly the order the serial path draws them; only
// the rng-free Nelder–Mead solves run on the pool, and their results merge
// by node index. The returned map is therefore bit-identical to BuildMap
// for any worker count.
func BuildMapWorkers(rng *rand.Rand, m Measurer, landmarks, nodes []int, dim, probes, workers int) (*Map, []Point, error) {
	if rng == nil {
		return nil, nil, errors.New("coords: nil rng")
	}
	if m == nil {
		return nil, nil, errors.New("coords: nil measurer")
	}
	if len(landmarks) < 2 {
		return nil, nil, fmt.Errorf("coords: need at least 2 landmarks, got %d", len(landmarks))
	}
	if len(nodes) == 0 {
		return nil, nil, errors.New("coords: no nodes to place")
	}
	if probes < 1 {
		return nil, nil, fmt.Errorf("coords: probe count %d must be >= 1", probes)
	}

	// Phase 1: landmark embedding.
	lm := len(landmarks)
	dists := make([][]float64, lm)
	for i := range dists {
		dists[i] = make([]float64, lm)
	}
	for i := 0; i < lm; i++ {
		for j := i + 1; j < lm; j++ {
			d, err := m.MeasureMin(rng, landmarks[i], landmarks[j], probes)
			if err != nil {
				return nil, nil, fmt.Errorf("coords: measuring landmarks %d-%d: %w", landmarks[i], landmarks[j], err)
			}
			dists[i][j] = d
			dists[j][i] = d
		}
	}
	lmPoints, err := EmbedLandmarksWorkers(rng, dists, dim, workers)
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: place every overlay node relative to the landmarks.
	// Measurements and placement jitters draw from rng sequentially per
	// node (exactly the serial order); the rng-free solves then fan out.
	problems := make([]*placementProblem, len(nodes))
	nodeDists := make([]float64, lm)
	for i, node := range nodes {
		for j, l := range landmarks {
			d, err := m.MeasureMin(rng, node, l, probes)
			if err != nil {
				return nil, nil, fmt.Errorf("coords: measuring node %d to landmark %d: %w", node, l, err)
			}
			nodeDists[j] = d
		}
		p, err := newPlacementProblem(rng, lmPoints, nodeDists)
		if err != nil {
			return nil, nil, fmt.Errorf("coords: placing node %d: %w", node, err)
		}
		problems[i] = p
	}
	points := make([]Point, len(nodes))
	if err := par.ForErr(len(nodes), workers, func(i int) error {
		p, err := problems[i].solve()
		if err != nil {
			return fmt.Errorf("coords: placing node %d: %w", nodes[i], err)
		}
		points[i] = p
		return nil
	}); err != nil {
		return nil, nil, err
	}
	cmap, err := NewMap(points)
	if err != nil {
		return nil, nil, err
	}
	return cmap, lmPoints, nil
}
