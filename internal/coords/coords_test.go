package coords

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := Dist(a, b); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Dist(a, a); d != 0 {
		t.Errorf("Dist(a,a) = %v, want 0", d)
	}
}

func TestDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dist with mismatched dims did not panic")
		}
	}()
	Dist(Point{1}, Point{1, 2})
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

// planarDistMatrix builds the exact pairwise distance matrix of random
// points in the plane — a perfectly embeddable input.
func planarDistMatrix(rng *rand.Rand, m int, scale float64) ([][]float64, []Point) {
	pts := make([]Point, m)
	for i := range pts {
		pts[i] = Point{rng.Float64() * scale, rng.Float64() * scale}
	}
	d := make([][]float64, m)
	for i := range d {
		d[i] = make([]float64, m)
		for j := range d[i] {
			d[i][j] = Dist(pts[i], pts[j])
		}
	}
	return d, pts
}

func TestEmbedLandmarksRecoversPlanarDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists, _ := planarDistMatrix(rng, 8, 100)
	pts, err := EmbedLandmarks(rng, dists, 2)
	if err != nil {
		t.Fatalf("EmbedLandmarks: %v", err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	// Embedding is only unique up to isometry, so compare distances.
	var worst float64
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			re := RelativeError(Dist(pts[i], pts[j]), dists[i][j])
			if re > worst {
				worst = re
			}
		}
	}
	if worst > 0.05 {
		t.Errorf("worst pairwise relative error %.4f, want <= 0.05", worst)
	}
}

func TestEmbedLandmarksValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ok, _ := planarDistMatrix(rng, 4, 10)

	if _, err := EmbedLandmarks(nil, ok, 2); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := EmbedLandmarks(rng, ok, 0); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := EmbedLandmarks(rng, [][]float64{{0}}, 2); err == nil {
		t.Error("single landmark accepted")
	}
	ragged := [][]float64{{0, 1}, {1}}
	if _, err := EmbedLandmarks(rng, ragged, 2); err == nil {
		t.Error("ragged matrix accepted")
	}
	negDiag := [][]float64{{1, 1}, {1, 0}}
	if _, err := EmbedLandmarks(rng, negDiag, 2); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	negOff := [][]float64{{0, -1}, {-1, 0}}
	if _, err := EmbedLandmarks(rng, negOff, 2); err == nil {
		t.Error("negative distance accepted")
	}
	asym := [][]float64{{0, 1}, {2, 0}}
	if _, err := EmbedLandmarks(rng, asym, 2); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestPlaceNodeRecoversPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	landmarks := []Point{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {50, 20}}
	truth := Point{37, 61}
	dists := make([]float64, len(landmarks))
	for i, lm := range landmarks {
		dists[i] = Dist(truth, lm)
	}
	got, err := PlaceNode(rng, landmarks, dists)
	if err != nil {
		t.Fatalf("PlaceNode: %v", err)
	}
	if d := Dist(got, truth); d > 1 {
		t.Errorf("placed at %v, want near %v (off by %v)", got, truth, d)
	}
}

func TestPlaceNodeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lms := []Point{{0, 0}, {1, 0}}
	if _, err := PlaceNode(nil, lms, []float64{1, 1}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := PlaceNode(rng, lms[:1], []float64{1}); err == nil {
		t.Error("single landmark accepted")
	}
	if _, err := PlaceNode(rng, lms, []float64{1}); err == nil {
		t.Error("distance count mismatch accepted")
	}
	if _, err := PlaceNode(rng, lms, []float64{1, -2}); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := PlaceNode(rng, lms, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN distance accepted")
	}
	bad := []Point{{0, 0}, {1}}
	if _, err := PlaceNode(rng, bad, []float64{1, 1}); err == nil {
		t.Error("mixed-dimension landmarks accepted")
	}
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(nil); err == nil {
		t.Error("empty map accepted")
	}
	if _, err := NewMap([]Point{{}}); err == nil {
		t.Error("zero-dimensional points accepted")
	}
	if _, err := NewMap([]Point{{1, 2}, {1}}); err == nil {
		t.Error("mixed dimensions accepted")
	}
	m, err := NewMap([]Point{{0, 0}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if m.N() != 2 || m.Dim != 2 {
		t.Errorf("N=%d Dim=%d, want 2,2", m.N(), m.Dim)
	}
	if m.Dist(0, 1) != 5 {
		t.Errorf("Dist(0,1) = %v, want 5", m.Dist(0, 1))
	}
}

func TestMapDistSymmetryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.NormFloat64() * 50, rng.NormFloat64() * 50, rng.NormFloat64() * 50}
		}
		m, err := NewMap(pts)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				//hfcvet:ignore floatdist symmetry of the same Euclidean computation must hold bitwise
				if m.Dist(i, j) != m.Dist(j, i) {
					return false
				}
				// Triangle inequality holds exactly in Euclidean space.
				for k := 0; k < n; k++ {
					if m.Dist(i, j) > m.Dist(i, k)+m.Dist(k, j)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRelativeError(t *testing.T) {
	if re := RelativeError(110, 100); math.Abs(re-0.1) > 1e-6 {
		t.Errorf("RelativeError(110,100) = %v, want 0.1", re)
	}
	if re := RelativeError(0, 0); re != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", re)
	}
}
