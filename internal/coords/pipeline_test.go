package coords

import (
	"errors"
	"math/rand"
	"testing"

	"hfc/internal/netsim"
	"hfc/internal/stats"
	"hfc/internal/topology"
)

func buildNetwork(t *testing.T, seed int64) *netsim.Network {
	t.Helper()
	topo, err := topology.GenerateTransitStub(rand.New(rand.NewSource(seed)), topology.DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	net, err := netsim.New(topo)
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	return net
}

// pickNodes selects count distinct stub node IDs.
func pickNodes(rng *rand.Rand, pool []int, count int) []int {
	perm := rng.Perm(len(pool))
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func TestBuildMapEndToEndAccuracy(t *testing.T) {
	net := buildNetwork(t, 10)
	rng := rand.New(rand.NewSource(20))
	pool := net.Topology().StubNodes()
	ids := pickNodes(rng, pool, 50)
	landmarks, nodes := ids[:10], ids[10:]

	cmap, lmPoints, err := BuildMap(rng, net, landmarks, nodes, 2, 5)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	if cmap.N() != len(nodes) {
		t.Fatalf("map has %d points, want %d", cmap.N(), len(nodes))
	}
	if len(lmPoints) != len(landmarks) {
		t.Fatalf("got %d landmark points, want %d", len(lmPoints), len(landmarks))
	}

	// GNP on transit-stub topologies reaches median relative error well
	// under 50%; verify the embedding is genuinely predictive.
	var errs []float64
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			pred := cmap.Dist(i, j)
			actual := net.Latency(nodes[i], nodes[j])
			errs = append(errs, RelativeError(pred, actual))
		}
	}
	med := stats.Median(errs)
	if med > 0.5 {
		t.Errorf("median relative error %.3f, want <= 0.5", med)
	}
	t.Logf("embedding quality: median rel-err %.3f, p90 %.3f", med, stats.Percentile(errs, 90))
}

func TestBuildMapPreservesNearVsFar(t *testing.T) {
	// The property clustering actually needs: same-stub-domain pairs must
	// on average embed much closer than cross-transit-domain pairs.
	net := buildNetwork(t, 11)
	rng := rand.New(rand.NewSource(21))
	topo := net.Topology()
	pool := topo.StubNodes()
	ids := pickNodes(rng, pool, 60)
	landmarks, nodes := ids[:10], ids[10:]
	cmap, _, err := BuildMap(rng, net, landmarks, nodes, 2, 5)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	var near, far []float64
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := topo.Nodes[nodes[i]], topo.Nodes[nodes[j]]
			switch {
			case a.StubDomain == b.StubDomain:
				near = append(near, cmap.Dist(i, j))
			case a.TransitDomain != b.TransitDomain:
				far = append(far, cmap.Dist(i, j))
			}
		}
	}
	if len(near) == 0 || len(far) == 0 {
		t.Skip("sample produced no near/far pairs")
	}
	if stats.Mean(far) < 2*stats.Mean(near) {
		t.Errorf("embedded space too flat: near mean %.2f, far mean %.2f", stats.Mean(near), stats.Mean(far))
	}
}

// failingMeasurer returns an error after a set number of calls, to exercise
// error propagation.
type failingMeasurer struct {
	calls, failAt int
}

var errProbe = errors.New("probe failed")

func (f *failingMeasurer) MeasureMin(rng *rand.Rand, u, v, probes int) (float64, error) {
	f.calls++
	if f.calls >= f.failAt {
		return 0, errProbe
	}
	return 1 + float64(u+v), nil
}

func TestBuildMapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &failingMeasurer{failAt: 1 << 30}
	lms := []int{0, 1, 2}
	nodes := []int{3, 4}

	if _, _, err := BuildMap(nil, m, lms, nodes, 2, 3); err == nil {
		t.Error("nil rng accepted")
	}
	if _, _, err := BuildMap(rng, nil, lms, nodes, 2, 3); err == nil {
		t.Error("nil measurer accepted")
	}
	if _, _, err := BuildMap(rng, m, lms[:1], nodes, 2, 3); err == nil {
		t.Error("single landmark accepted")
	}
	if _, _, err := BuildMap(rng, m, lms, nil, 2, 3); err == nil {
		t.Error("no nodes accepted")
	}
	if _, _, err := BuildMap(rng, m, lms, nodes, 2, 0); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestBuildMapPropagatesMeasurementErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Fail during the landmark phase.
	m := &failingMeasurer{failAt: 2}
	if _, _, err := BuildMap(rng, m, []int{0, 1, 2}, []int{3}, 2, 1); !errors.Is(err, errProbe) {
		t.Errorf("landmark-phase error = %v, want errProbe", err)
	}
	// Fail during the node phase (after all 3 landmark pairs succeed).
	m = &failingMeasurer{failAt: 5}
	if _, _, err := BuildMap(rng, m, []int{0, 1, 2}, []int{3}, 2, 1); !errors.Is(err, errProbe) {
		t.Errorf("node-phase error = %v, want errProbe", err)
	}
}
