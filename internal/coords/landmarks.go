package coords

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// SelectLandmarksRandom picks k distinct landmarks uniformly from the
// candidate pool — the baseline placement strategy.
func SelectLandmarksRandom(rng *rand.Rand, pool []int, k int) ([]int, error) {
	if rng == nil {
		return nil, errors.New("coords: nil rng")
	}
	if k < 2 || k > len(pool) {
		return nil, fmt.Errorf("coords: cannot pick %d landmarks from pool of %d", k, len(pool))
	}
	perm := rng.Perm(len(pool))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = pool[perm[i]]
	}
	return out, nil
}

// SelectLandmarksFarthestPoint picks k landmarks by greedy max-min
// ("farthest point first") selection over measured distances: start from a
// random pool node, then repeatedly add the candidate whose minimum
// measured distance to the chosen set is largest. Spread-out landmarks
// anchor the GNP embedding better than clumped ones (Ng & Zhang study
// exactly this placement question); the ablation-landmarks experiment
// quantifies the effect. Measurement cost is O(k·|pool|) probes.
func SelectLandmarksFarthestPoint(rng *rand.Rand, m Measurer, pool []int, k, probes int) ([]int, error) {
	if rng == nil {
		return nil, errors.New("coords: nil rng")
	}
	if m == nil {
		return nil, errors.New("coords: nil measurer")
	}
	if k < 2 || k > len(pool) {
		return nil, fmt.Errorf("coords: cannot pick %d landmarks from pool of %d", k, len(pool))
	}
	if probes < 1 {
		return nil, fmt.Errorf("coords: probe count %d must be >= 1", probes)
	}
	chosen := []int{pool[rng.Intn(len(pool))]}
	chosenSet := map[int]bool{chosen[0]: true}
	// minDist[i] tracks pool[i]'s distance to the nearest chosen landmark.
	minDist := make([]float64, len(pool))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(chosen) < k {
		latest := chosen[len(chosen)-1]
		bestIdx := -1
		for i, cand := range pool {
			if chosenSet[cand] {
				continue
			}
			d, err := m.MeasureMin(rng, cand, latest, probes)
			if err != nil {
				return nil, fmt.Errorf("coords: measuring candidate %d: %w", cand, err)
			}
			if d < minDist[i] {
				minDist[i] = d
			}
			if bestIdx == -1 || minDist[i] > minDist[bestIdx] {
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			return nil, errors.New("coords: candidate pool exhausted")
		}
		chosen = append(chosen, pool[bestIdx])
		chosenSet[pool[bestIdx]] = true
	}
	return chosen, nil
}
