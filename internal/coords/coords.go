// Package coords implements landmark-based network coordinates in the style
// of GNP (Ng & Zhang, "Predicting Internet Network Distance with
// Coordinates-Based Approaches", INFOCOM 2002), which the paper adopts in
// §3.1 for obtaining a complete distance map with O(m² + nm) measurements:
//
//  1. m landmarks measure their pairwise distances and are embedded into a
//     k-dimensional geometric space by function minimization;
//  2. every ordinary proxy measures its distance to the landmarks and
//     derives its own coordinates relative to them.
//
// The function minimizer is the Nelder–Mead simplex from internal/optimize,
// the method the paper cites ([23]).
package coords

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hfc/internal/optimize"
	"hfc/internal/par"
)

// Point is a position in the k-dimensional embedding space.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Dist returns the Euclidean distance between two points of equal dimension.
// It panics on dimension mismatch, which indicates a programming error.
func Dist(a, b Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("coords: dimension mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// relErrEps regularizes relative-error terms when a measured distance is
// (near) zero.
const relErrEps = 1e-6

// EmbedLandmarks maps m landmarks into a dim-dimensional space such that
// pairwise Euclidean distances approximate the measured distance matrix. The
// objective is the sum of squared relative errors over all landmark pairs,
// the standard GNP criterion. Multiple random restarts (scaled to the
// distance magnitude) guard against poor local minima.
//
// dists must be a symmetric m×m matrix with zero diagonal and positive
// off-diagonal entries.
func EmbedLandmarks(rng *rand.Rand, dists [][]float64, dim int) ([]Point, error) {
	return EmbedLandmarksWorkers(rng, dists, dim, 1)
}

// EmbedLandmarksWorkers is EmbedLandmarks with the restart attempts solved
// on a bounded worker pool. Every random start is drawn from rng
// sequentially (in attempt order) BEFORE any minimization runs, and the
// Nelder–Mead solver consumes no randomness, so the result — and the rng
// stream left behind for the caller — is bit-identical to the serial path
// for any worker count.
func EmbedLandmarksWorkers(rng *rand.Rand, dists [][]float64, dim, workers int) ([]Point, error) {
	if rng == nil {
		return nil, errors.New("coords: nil rng")
	}
	m := len(dists)
	if m < 2 {
		return nil, fmt.Errorf("coords: need at least 2 landmarks, got %d", m)
	}
	if dim < 1 {
		return nil, fmt.Errorf("coords: dimension %d must be >= 1", dim)
	}
	maxD := 0.0
	for i, row := range dists {
		if len(row) != m {
			return nil, fmt.Errorf("coords: distance matrix row %d has %d entries, want %d", i, len(row), m)
		}
		for j, d := range row {
			if i == j {
				if d != 0 {
					return nil, fmt.Errorf("coords: nonzero diagonal entry dists[%d][%d] = %v", i, j, d)
				}
				continue
			}
			if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("coords: invalid distance dists[%d][%d] = %v", i, j, d)
			}
			if math.Abs(d-dists[j][i]) > 1e-9*math.Max(1, d) {
				return nil, fmt.Errorf("coords: asymmetric distances dists[%d][%d]=%v dists[%d][%d]=%v", i, j, d, j, i, dists[j][i])
			}
			if d > maxD {
				maxD = d
			}
		}
	}

	objective := func(x []float64) float64 {
		sum := 0.0
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				pred := pointDist(x, i, j, dim)
				actual := dists[i][j]
				rel := (pred - actual) / (actual + relErrEps)
				sum += rel * rel
			}
		}
		return sum
	}

	// Draw every random start up front (sequentially, in attempt order) so
	// the minimizations are pure and can fan out across workers without
	// perturbing the rng stream.
	const attempts = 4
	starts := make([][]float64, attempts)
	for a := range starts {
		x0 := make([]float64, m*dim)
		for i := range x0 {
			x0[i] = (rng.Float64() - 0.5) * maxD
		}
		starts[a] = x0
	}
	results := make([]optimize.Result, attempts)
	if err := par.ForErr(attempts, workers, func(a int) error {
		res, err := optimize.Minimize(objective, starts[a], optimize.Options{
			InitialStep: maxD / 4,
			Restarts:    2,
			MaxIter:     4000 * m * dim,
		})
		if err != nil {
			return fmt.Errorf("coords: landmark embedding: %w", err)
		}
		results[a] = res
		return nil
	}); err != nil {
		return nil, err
	}
	// Merge in attempt order with the same strict-< rule as the serial
	// loop, so ties keep resolving toward the earlier attempt.
	best := results[0]
	for _, res := range results[1:] {
		if res.F < best.F {
			best = res
		}
	}

	pts := make([]Point, m)
	for i := 0; i < m; i++ {
		pts[i] = Point(append([]float64(nil), best.X[i*dim:(i+1)*dim]...))
	}
	return pts, nil
}

// pointDist computes the Euclidean distance between the i-th and j-th
// dim-sized blocks of the flat coordinate vector x.
func pointDist(x []float64, i, j, dim int) float64 {
	sum := 0.0
	for d := 0; d < dim; d++ {
		diff := x[i*dim+d] - x[j*dim+d]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// placementAttempts is how many starts PlaceNode tries: the landmark
// centroid plus two random perturbations of it.
const placementAttempts = 3

// placementProblem is one node's GNP phase-2 placement with every random
// start already drawn: Solve is pure (the Nelder–Mead solver consumes no
// randomness), so problems built sequentially can be solved on any number
// of workers with bit-identical results.
type placementProblem struct {
	landmarks []Point
	dists     []float64
	maxD      float64
	starts    [][]float64
}

// newPlacementProblem validates the inputs and draws the random starts in
// the exact order the serial PlaceNode loop used to: the centroid start
// first (no draws), then dim jitter values for each of the two remaining
// attempts. dists is copied, so callers may reuse their buffer.
func newPlacementProblem(rng *rand.Rand, landmarks []Point, dists []float64) (*placementProblem, error) {
	if rng == nil {
		return nil, errors.New("coords: nil rng")
	}
	if len(landmarks) < 2 {
		return nil, fmt.Errorf("coords: need at least 2 landmarks, got %d", len(landmarks))
	}
	if len(dists) != len(landmarks) {
		return nil, fmt.Errorf("coords: %d distances for %d landmarks", len(dists), len(landmarks))
	}
	dim := len(landmarks[0])
	maxD := 0.0
	for i, lm := range landmarks {
		if len(lm) != dim {
			return nil, fmt.Errorf("coords: landmark %d has dimension %d, want %d", i, len(lm), dim)
		}
		if dists[i] < 0 || math.IsNaN(dists[i]) || math.IsInf(dists[i], 0) {
			return nil, fmt.Errorf("coords: invalid distance to landmark %d: %v", i, dists[i])
		}
		if dists[i] > maxD {
			maxD = dists[i]
		}
	}
	p := &placementProblem{
		landmarks: landmarks,
		dists:     append([]float64(nil), dists...),
		maxD:      maxD,
		starts:    make([][]float64, placementAttempts),
	}
	centroid := make([]float64, dim)
	for _, lm := range landmarks {
		for d := 0; d < dim; d++ {
			centroid[d] += lm[d] / float64(len(landmarks))
		}
	}
	for a := 0; a < placementAttempts; a++ {
		x0 := append([]float64(nil), centroid...)
		if a > 0 {
			for d := 0; d < dim; d++ {
				x0[d] += (rng.Float64() - 0.5) * maxD
			}
		}
		p.starts[a] = x0
	}
	return p, nil
}

// solve runs the minimization over the pre-drawn starts and keeps the best
// result (strict <, so ties resolve toward the earlier attempt, exactly
// like the serial loop).
func (p *placementProblem) solve() (Point, error) {
	dim := len(p.landmarks[0])
	objective := func(x []float64) float64 {
		sum := 0.0
		for i, lm := range p.landmarks {
			pred := 0.0
			for d := 0; d < dim; d++ {
				diff := x[d] - lm[d]
				pred += diff * diff
			}
			pred = math.Sqrt(pred)
			rel := (pred - p.dists[i]) / (p.dists[i] + relErrEps)
			sum += rel * rel
		}
		return sum
	}
	var best optimize.Result
	bestSet := false
	for _, x0 := range p.starts {
		res, err := optimize.Minimize(objective, x0, optimize.Options{
			InitialStep: math.Max(p.maxD/4, 1),
			Restarts:    1,
		})
		if err != nil {
			return nil, fmt.Errorf("coords: node placement: %w", err)
		}
		if !bestSet || res.F < best.F {
			best = res
			bestSet = true
		}
	}
	return Point(best.X), nil
}

// PlaceNode derives the coordinates of a single node from its measured
// distances to the landmarks (one per landmark, aligned by index), again by
// minimizing the sum of squared relative errors. This is the second GNP
// phase: each ordinary proxy solves this small problem for itself.
func PlaceNode(rng *rand.Rand, landmarks []Point, dists []float64) (Point, error) {
	p, err := newPlacementProblem(rng, landmarks, dists)
	if err != nil {
		return nil, err
	}
	return p.solve()
}

// Map is a completed distance map: the embedded coordinates of every overlay
// node, indexed by overlay node index. It satisfies the clustering and
// routing layers' need for an O(kn)-state distance oracle.
type Map struct {
	// Points holds one coordinate per overlay node.
	Points []Point
	// Dim is the embedding dimension.
	Dim int
}

// NewMap validates and wraps a coordinate list.
func NewMap(points []Point) (*Map, error) {
	if len(points) == 0 {
		return nil, errors.New("coords: empty coordinate map")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("coords: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("coords: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	return &Map{Points: points, Dim: dim}, nil
}

// N returns the number of mapped nodes.
func (m *Map) N() int { return len(m.Points) }

// Dist returns the predicted distance between overlay nodes i and j.
func (m *Map) Dist(i, j int) float64 { return Dist(m.Points[i], m.Points[j]) }

// DistMatrix materializes the full pairwise-distance matrix on a bounded
// worker pool (rows fan out across workers). Every entry equals the
// corresponding Dist(i, j) call bit-for-bit — the matrix only trades
// memory for the repeated evaluations clustering performs — so consumers
// may use either interchangeably without perturbing results.
func (m *Map) DistMatrix(workers int) [][]float64 {
	n := m.N()
	out := make([][]float64, n)
	par.For(n, workers, func(i int) {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if j != i {
				row[j] = Dist(m.Points[i], m.Points[j])
			}
		}
		out[i] = row
	})
	return out
}

// RelativeError quantifies embedding quality for a pair: |pred − actual| /
// actual (using the regularized denominator for tiny actuals).
func RelativeError(pred, actual float64) float64 {
	return math.Abs(pred-actual) / (actual + relErrEps)
}
