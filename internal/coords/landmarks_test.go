package coords

import (
	"math/rand"
	"testing"

	"hfc/internal/stats"
)

func TestSelectLandmarksRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := []int{10, 20, 30, 40, 50}
	got, err := SelectLandmarksRandom(rng, pool, 3)
	if err != nil {
		t.Fatalf("SelectLandmarksRandom: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d landmarks, want 3", len(got))
	}
	seen := map[int]bool{}
	inPool := map[int]bool{}
	for _, p := range pool {
		inPool[p] = true
	}
	for _, l := range got {
		if seen[l] {
			t.Errorf("duplicate landmark %d", l)
		}
		if !inPool[l] {
			t.Errorf("landmark %d not from pool", l)
		}
		seen[l] = true
	}
	if _, err := SelectLandmarksRandom(nil, pool, 3); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := SelectLandmarksRandom(rng, pool, 1); err == nil {
		t.Error("k < 2 accepted")
	}
	if _, err := SelectLandmarksRandom(rng, pool, 9); err == nil {
		t.Error("k > pool accepted")
	}
}

func TestSelectLandmarksFarthestPointSpreads(t *testing.T) {
	net := buildNetwork(t, 51)
	rng := rand.New(rand.NewSource(52))
	pool := net.Topology().StubNodes()

	fps, err := SelectLandmarksFarthestPoint(rng, net, pool, 8, 3)
	if err != nil {
		t.Fatalf("SelectLandmarksFarthestPoint: %v", err)
	}
	if len(fps) != 8 {
		t.Fatalf("got %d landmarks", len(fps))
	}
	seen := map[int]bool{}
	for _, l := range fps {
		if seen[l] {
			t.Fatalf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	// Spread check: the FPS set's minimum pairwise true distance should
	// comfortably exceed a random selection's, on average over draws.
	minPair := func(ids []int) float64 {
		best := -1.0
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				d := net.Latency(ids[i], ids[j])
				if best < 0 || d < best {
					best = d
				}
			}
		}
		return best
	}
	fpsSpread := minPair(fps)
	var randSpreads []float64
	for trial := 0; trial < 10; trial++ {
		r, err := SelectLandmarksRandom(rng, pool, 8)
		if err != nil {
			t.Fatalf("SelectLandmarksRandom: %v", err)
		}
		randSpreads = append(randSpreads, minPair(r))
	}
	if fpsSpread <= stats.Mean(randSpreads) {
		t.Errorf("FPS min-pair spread %.2f not above random mean %.2f", fpsSpread, stats.Mean(randSpreads))
	}
}

func TestSelectLandmarksFarthestPointValidation(t *testing.T) {
	net := buildNetwork(t, 53)
	rng := rand.New(rand.NewSource(54))
	pool := net.Topology().StubNodes()[:10]
	if _, err := SelectLandmarksFarthestPoint(nil, net, pool, 3, 2); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := SelectLandmarksFarthestPoint(rng, nil, pool, 3, 2); err == nil {
		t.Error("nil measurer accepted")
	}
	if _, err := SelectLandmarksFarthestPoint(rng, net, pool, 1, 2); err == nil {
		t.Error("k < 2 accepted")
	}
	if _, err := SelectLandmarksFarthestPoint(rng, net, pool, 11, 2); err == nil {
		t.Error("k > pool accepted")
	}
	if _, err := SelectLandmarksFarthestPoint(rng, net, pool, 3, 0); err == nil {
		t.Error("zero probes accepted")
	}
}
