package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(0); got != 1 {
		t.Errorf("Workers(0) = %d, want 1", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, -1} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n=0")
	}
}

func TestForErrReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForErr(10, 4, func(i int) error {
		switch i {
		case 3:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("ForErr = %v, want lowest-indexed error %v", err, errA)
	}
	if err := ForErr(10, 4, func(int) error { return nil }); err != nil {
		t.Errorf("ForErr with no failures = %v", err)
	}
}
