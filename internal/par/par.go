// Package par provides the bounded worker pool the parallel construction
// paths share. The contract every caller relies on: work items are pure
// functions of their index writing only to index-owned slots, so running
// them on any number of workers in any order yields results bit-identical
// to the serial loop. Randomness is never drawn inside a worker — callers
// draw every rng value sequentially before fanning out (see
// coords.BuildMapWorkers), which keeps detrand's determinism contract
// intact.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob to an effective pool size:
// negative selects runtime.GOMAXPROCS(0) (all available cores), zero and
// one select the serial path, and any other positive value is taken
// as-is.
func Workers(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		return 1
	}
	return workers
}

// For runs fn(0), …, fn(n-1) on a pool of Workers(workers) goroutines and
// returns when all calls have completed. With an effective pool of one it
// degenerates to the plain serial loop (no goroutines). Items are handed
// out through an atomic counter, so the assignment of items to workers is
// nondeterministic — fn must not care which worker runs it.
func For(n, workers int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For with error collection: every item runs (a failing item
// does not cancel the rest), and the error of the lowest-indexed failing
// item is returned, so the reported error is deterministic regardless of
// scheduling.
func ForErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
