// Package state implements the paper's hierarchical service-routing
// information distribution protocol (§4). Every proxy maintains two Service
// Capability Tables: SCT_P with the full per-proxy capability of its own
// cluster, and SCT_C with the aggregate capability (set union, footnote 5)
// of every cluster in the system. Local-state messages flood a proxy's SCI
// within its cluster; border proxies exchange aggregate-state messages
// across the external links and re-flood them inside their clusters.
//
// This package provides the protocol as a deterministic synchronous
// simulation with exact message accounting (used by the Fig. 9 experiments
// and by hierarchical routing); package overlay runs the same logic as a
// concurrent message-passing runtime.
package state

import (
	"errors"
	"fmt"

	"hfc/internal/hfc"
	"hfc/internal/svc"
)

// NodeState is the routing state one proxy holds after the protocol
// converges.
type NodeState struct {
	// Node is the proxy this state belongs to.
	Node int
	// SCTP maps each proxy of the node's own cluster (including itself)
	// to its service capability set.
	SCTP map[int]svc.CapabilitySet
	// SCTC maps every cluster ID in the system to the cluster's aggregate
	// service set.
	SCTC map[int]svc.CapabilitySet
	// SeqP and SeqC track the highest protocol round accepted per origin
	// proxy (local-state floods) and per origin cluster (aggregate
	// messages). A message stamped with an older round than the recorded
	// one is stale — a delayed or replayed flood — and must not overwrite
	// newer state; ApplyLocal/ApplyAggregate enforce this. Nil maps mean
	// no staleness tracking (the synchronous model, where ordering is
	// implicit).
	SeqP map[int]uint64
	SeqC map[int]uint64
}

// ApplyLocal installs a local-state flood from origin stamped with protocol
// round seq, unless a flood from the same origin for this or a newer round
// was already accepted. Exactly one authentic flood exists per (origin,
// round) — an origin broadcasts once per round — so an equal-round arrival
// is a replay and is rejected like any older one (duplicates of the
// authentic flood are absorbed upstream by the capability-generation
// check, which never calls down here). It reports whether the entry was
// applied; false means the message was stale and rejected (the
// resurrection guard a recovered node's re-flooded or delayed traffic
// must not bypass).
func (s *NodeState) ApplyLocal(origin int, seq uint64, set svc.CapabilitySet) bool {
	if s.SeqP == nil {
		s.SeqP = make(map[int]uint64)
	}
	if last, ok := s.SeqP[origin]; ok && seq <= last {
		return false
	}
	s.SeqP[origin] = seq
	if s.SCTP == nil {
		s.SCTP = make(map[int]svc.CapabilitySet)
	}
	s.SCTP[origin] = set
	return true
}

// ApplyAggregate installs an aggregate-state entry for an origin cluster
// stamped with protocol round seq, with the same staleness rule as
// ApplyLocal. Equal-round re-deliveries are accepted (several borders of
// one cluster legitimately forward the same round's aggregate).
func (s *NodeState) ApplyAggregate(cluster int, seq uint64, set svc.CapabilitySet) bool {
	if s.SeqC == nil {
		s.SeqC = make(map[int]uint64)
	}
	if last, ok := s.SeqC[cluster]; ok && seq < last {
		return false
	}
	s.SeqC[cluster] = seq
	if s.SCTC == nil {
		s.SCTC = make(map[int]svc.CapabilitySet)
	}
	s.SCTC[cluster] = set
	return true
}

// ServiceStateSize is the number of service-capability node-states the
// proxy maintains — the per-proxy quantity Fig. 9(b) reports: one entry per
// own-cluster proxy plus one per cluster in the system.
func (s *NodeState) ServiceStateSize() int { return len(s.SCTP) + len(s.SCTC) }

// HasLocal reports whether the node's SCT_P lists service x on proxy p.
func (s *NodeState) HasLocal(p int, x svc.Service) bool {
	set, ok := s.SCTP[p]
	return ok && set.Has(x)
}

// ClustersProviding returns the IDs of clusters whose aggregate set
// includes x, in increasing order.
func (s *NodeState) ClustersProviding(x svc.Service) []int {
	var out []int
	for c := 0; c < len(s.SCTC); c++ {
		if set, ok := s.SCTC[c]; ok && set.Has(x) {
			out = append(out, c)
		}
	}
	return out
}

// MessageStats counts protocol traffic for one full distribution round.
type MessageStats struct {
	// LocalMessages is the number of intra-cluster local-state messages
	// (each proxy floods its SCI to every other member of its cluster).
	LocalMessages int
	// AggregateMessages is the number of aggregate-state messages sent
	// across external links between border-proxy pairs.
	AggregateMessages int
	// ForwardMessages is the number of intra-cluster forwards of received
	// aggregate-state messages.
	ForwardMessages int
}

// Total returns the total message count.
func (m MessageStats) Total() int {
	return m.LocalMessages + m.AggregateMessages + m.ForwardMessages
}

// Distribute runs the §4 protocol to convergence over an HFC topology with
// the given per-proxy capability assignment (caps[i] is overlay node i's
// SCI) and returns every node's resulting state plus exact message counts.
//
// The synchronous schedule is: (1) every proxy floods a local-state message
// to its cluster; (2) every border proxy aggregates its own cluster's SCI
// and sends one aggregate-state message per external link it terminates;
// (3) every border proxy that received an aggregate forwards it to the
// other members of its cluster. A proxy learns its own cluster's aggregate
// locally (no message needed).
func Distribute(t *hfc.Topology, caps []svc.CapabilitySet) ([]NodeState, MessageStats, error) {
	if t == nil {
		return nil, MessageStats{}, errors.New("state: nil topology")
	}
	if len(caps) != t.N() {
		return nil, MessageStats{}, fmt.Errorf("state: %d capability sets for %d nodes", len(caps), t.N())
	}
	for i, c := range caps {
		if c == nil {
			return nil, MessageStats{}, fmt.Errorf("state: nil capability set for node %d", i)
		}
	}

	n := t.N()
	k := t.NumClusters()
	states := make([]NodeState, n)
	for i := range states {
		states[i] = NodeState{
			Node: i,
			SCTP: make(map[int]svc.CapabilitySet),
			SCTC: make(map[int]svc.CapabilitySet, k),
		}
	}
	var stats MessageStats

	// Phase 1: local-state flooding. Proxy p sends its SCI to every other
	// member of its cluster; every proxy also records its own SCI.
	for c := 0; c < k; c++ {
		members := t.Members(c)
		for _, p := range members {
			states[p].SCTP[p] = caps[p].Clone()
			for _, q := range members {
				if q == p {
					continue
				}
				states[q].SCTP[p] = caps[p].Clone()
				stats.LocalMessages++
			}
		}
	}

	// Aggregates: each cluster's union, computed at its border proxies
	// from their (now converged) SCT_P. Every proxy knows its own
	// cluster's aggregate locally.
	aggregates := make([]svc.CapabilitySet, k)
	for c := 0; c < k; c++ {
		sets := make([]svc.CapabilitySet, 0, len(t.Members(c)))
		for _, p := range t.Members(c) {
			sets = append(sets, caps[p])
		}
		aggregates[c] = svc.Union(sets...)
	}
	for i := range states {
		own := t.ClusterOf(i)
		states[i].SCTC[own] = aggregates[own].Clone()
	}

	// Phase 2+3: aggregate-state exchange across every external link, then
	// intra-cluster forwarding by the receiving border proxy.
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			// Border of a toward b sends a's aggregate to border of b.
			_, receiver, err := t.Border(a, b)
			if err != nil {
				return nil, MessageStats{}, fmt.Errorf("state: %w", err)
			}
			stats.AggregateMessages++
			states[receiver].SCTC[a] = aggregates[a].Clone()
			for _, q := range t.Members(b) {
				if q == receiver {
					continue
				}
				states[q].SCTC[a] = aggregates[a].Clone()
				stats.ForwardMessages++
			}
		}
	}
	return states, stats, nil
}

// FlatStateSize returns the per-proxy node-state count of the flat
// (single-level) baseline for both Fig. 9 metrics: every proxy keeps one
// entry per overlay node, for coordinates and for service capability alike.
func FlatStateSize(n int) int { return n }

// VerifyConvergence checks the protocol's correctness conditions: every
// node's SCT_P matches the true capabilities of exactly its cluster
// members, and every node's SCT_C holds the true aggregate of every
// cluster. It returns the first violation found.
func VerifyConvergence(t *hfc.Topology, caps []svc.CapabilitySet, states []NodeState) error {
	return VerifyConvergenceExcept(t, caps, states, nil)
}

// VerifyConvergenceExcept checks convergence modulo a crashed set (crashed
// may be nil for the strict fault-free check). Crashed nodes' own states
// are skipped entirely — fail-stop nodes neither receive nor process, so
// their tables are legitimately frozen. For live nodes the conditions
// relax exactly as far as fail-stop semantics force them to:
//
//   - SCT_P must hold the true capability of every LIVE member of the
//     node's cluster. Entries for crashed members may be absent (a
//     recovered node re-learns only from live floods) or stale (a
//     never-crashed node keeps the last pre-crash truth); either way they
//     are not checked.
//   - SCT_C must hold, for every cluster, at least the union of that
//     cluster's live members' capabilities and at most the union of all
//     its members' — the bracket between what a freshly recovered border
//     can aggregate and what an untouched node still remembers.
func VerifyConvergenceExcept(t *hfc.Topology, caps []svc.CapabilitySet, states []NodeState, crashed func(node int) bool) error {
	if len(states) != t.N() {
		return fmt.Errorf("state: %d states for %d nodes", len(states), t.N())
	}
	down := func(node int) bool { return crashed != nil && crashed(node) }
	k := t.NumClusters()
	liveAgg := make([]svc.CapabilitySet, k)
	fullAgg := make([]svc.CapabilitySet, k)
	for c := 0; c < k; c++ {
		var live, full []svc.CapabilitySet
		for _, p := range t.Members(c) {
			full = append(full, caps[p])
			if !down(p) {
				live = append(live, caps[p])
			}
		}
		liveAgg[c] = svc.Union(live...)
		fullAgg[c] = svc.Union(full...)
	}
	for i := range states {
		if down(i) {
			continue
		}
		st := &states[i]
		own := t.ClusterOf(i)
		members := t.Members(own)
		liveMembers := 0
		for _, m := range members {
			if down(m) {
				continue
			}
			liveMembers++
			set, ok := st.SCTP[m]
			if !ok {
				return fmt.Errorf("state: node %d SCT_P missing cluster member %d", i, m)
			}
			if !set.Equal(caps[m]) {
				return fmt.Errorf("state: node %d SCT_P entry for %d is %v, want %v", i, m, set, caps[m])
			}
		}
		if len(st.SCTP) < liveMembers || len(st.SCTP) > len(members) {
			return fmt.Errorf("state: node %d SCT_P has %d entries, want %d..%d", i, len(st.SCTP), liveMembers, len(members))
		}
		if len(st.SCTC) != k {
			return fmt.Errorf("state: node %d SCT_C has %d entries, want %d", i, len(st.SCTC), k)
		}
		for c := 0; c < k; c++ {
			set, ok := st.SCTC[c]
			if !ok {
				return fmt.Errorf("state: node %d SCT_C missing cluster %d", i, c)
			}
			if crashed == nil {
				if !set.Equal(fullAgg[c]) {
					return fmt.Errorf("state: node %d SCT_C entry for cluster %d is %v, want %v", i, c, set, fullAgg[c])
				}
				continue
			}
			if !containsAll(set, liveAgg[c]) || !containsAll(fullAgg[c], set) {
				return fmt.Errorf("state: node %d SCT_C entry for cluster %d is %v, want between live aggregate %v and full aggregate %v",
					i, c, set, liveAgg[c], fullAgg[c])
			}
		}
	}
	return nil
}

// containsAll reports whether super holds every service of sub.
func containsAll(super, sub svc.CapabilitySet) bool {
	for _, x := range sub.Sorted() {
		if !super.Has(x) {
			return false
		}
	}
	return true
}
