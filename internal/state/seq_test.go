package state

import (
	"testing"

	"hfc/internal/svc"
)

func TestApplyLocalRejectsStaleFlood(t *testing.T) {
	st := NodeState{Node: 0}
	if !st.ApplyLocal(3, 5, svc.NewCapabilitySet("fresh")) {
		t.Fatal("first flood rejected")
	}
	// A delayed flood from an earlier round must not overwrite.
	if st.ApplyLocal(3, 4, svc.NewCapabilitySet("stale")) {
		t.Error("stale flood (round 4 after round 5) accepted")
	}
	if !st.SCTP[3].Has("fresh") || st.SCTP[3].Has("stale") {
		t.Errorf("SCTP[3] = %v after stale flood, want the round-5 entry", st.SCTP[3])
	}
	// A same-round arrival is a replay — only one authentic flood exists
	// per (origin, round) — and must not reinstall.
	if st.ApplyLocal(3, 5, svc.NewCapabilitySet("replayed")) {
		t.Error("same-round replay accepted")
	}
	if st.SCTP[3].Has("replayed") {
		t.Errorf("SCTP[3] = %v after same-round replay, want the original round-5 entry", st.SCTP[3])
	}
	// A newer round replaces.
	if !st.ApplyLocal(3, 6, svc.NewCapabilitySet("newer")) {
		t.Error("newer flood rejected")
	}
	if !st.SCTP[3].Has("newer") {
		t.Errorf("SCTP[3] = %v, want round-6 entry", st.SCTP[3])
	}
}

func TestApplyAggregateRejectsStale(t *testing.T) {
	st := NodeState{Node: 0}
	if !st.ApplyAggregate(1, 2, svc.NewCapabilitySet("a")) {
		t.Fatal("first aggregate rejected")
	}
	if st.ApplyAggregate(1, 1, svc.NewCapabilitySet("old")) {
		t.Error("stale aggregate accepted")
	}
	if !st.SCTC[1].Has("a") {
		t.Errorf("SCTC[1] = %v, want round-2 aggregate", st.SCTC[1])
	}
	// Seq tracking is per origin: a different cluster's round-1 message
	// is not stale.
	if !st.ApplyAggregate(2, 1, svc.NewCapabilitySet("b")) {
		t.Error("unrelated cluster's aggregate rejected")
	}
}

func TestVerifyConvergenceExceptSkipsCrashed(t *testing.T) {
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	// Freeze node 1 as crashed: wipe its state entirely. Strict
	// verification must fail, the crash-aware check must pass.
	states[1] = NodeState{Node: 1, SCTP: map[int]svc.CapabilitySet{}, SCTC: map[int]svc.CapabilitySet{}}
	if err := VerifyConvergence(topo, caps, states); err == nil {
		t.Fatal("strict check passed with a wiped node")
	}
	crashed := func(n int) bool { return n == 1 }
	if err := VerifyConvergenceExcept(topo, caps, states, crashed); err != nil {
		t.Fatalf("crash-aware check failed: %v", err)
	}

	// A live node missing the crashed member's SCT_P entry is still fine
	// (a recovered node re-learns only from live floods)...
	delete(states[0].SCTP, 1)
	if err := VerifyConvergenceExcept(topo, caps, states, crashed); err != nil {
		t.Fatalf("crash-aware check failed with missing crashed-member entry: %v", err)
	}
	// ...but a live member's entry is mandatory and must be exact.
	states[0].SCTP[2] = svc.NewCapabilitySet("wrong")
	if err := VerifyConvergenceExcept(topo, caps, states, crashed); err == nil {
		t.Fatal("wrong live-member entry accepted")
	}
}

func TestVerifyConvergenceExceptBracketsAggregates(t *testing.T) {
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	crashed := func(n int) bool { return n == 1 } // cluster 0 member
	// Node 3 (cluster 1) holding only cluster 0's live aggregate — as if
	// it re-learned through a border that recovered after the crash — is
	// acceptable.
	live := svc.Union(caps[0], caps[2])
	states[3].SCTC[0] = live.Clone()
	if err := VerifyConvergenceExcept(topo, caps, states, crashed); err != nil {
		t.Fatalf("live-only aggregate rejected: %v", err)
	}
	// Less than the live aggregate is a real violation.
	states[3].SCTC[0] = svc.NewCapabilitySet()
	if err := VerifyConvergenceExcept(topo, caps, states, crashed); err == nil {
		t.Fatal("sub-live aggregate accepted")
	}
	// More than the full aggregate (a resurrected service) is too.
	full := svc.Union(caps[0], caps[1], caps[2])
	extra := full.Clone()
	extra.Add("ghost")
	states[3].SCTC[0] = extra
	if err := VerifyConvergenceExcept(topo, caps, states, crashed); err == nil {
		t.Fatal("super-full aggregate accepted")
	}
}
