package state

import (
	"math/rand"
	"testing"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/svc"
)

// fixture builds a 3-cluster HFC topology with 3+2+4 nodes and a known
// capability assignment.
func fixture(t *testing.T) (*hfc.Topology, []svc.CapabilitySet) {
	t.Helper()
	pts := []coords.Point{
		{0, 0}, {1, 0}, {2, 0}, // cluster 0: nodes 0-2
		{100, 0}, {101, 0}, // cluster 1: nodes 3-4
		{0, 100}, {1, 100}, {2, 100}, {3, 100}, // cluster 2: nodes 5-8
	}
	assignment := []int{0, 0, 0, 1, 1, 2, 2, 2, 2}
	clusters := [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7, 8}}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	topo, err := hfc.Build(cmap, &cluster.Result{Assignment: assignment, Clusters: clusters})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet("s1"),
		svc.NewCapabilitySet("s2", "s3"),
		svc.NewCapabilitySet("s1", "s4"),
		svc.NewCapabilitySet("s5"),
		svc.NewCapabilitySet("s2"),
		svc.NewCapabilitySet("s6"),
		svc.NewCapabilitySet("s6", "s7"),
		svc.NewCapabilitySet("s1"),
		svc.NewCapabilitySet("s8"),
	}
	return topo, caps
}

func TestDistributeConverges(t *testing.T) {
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	if err := VerifyConvergence(topo, caps, states); err != nil {
		t.Fatalf("VerifyConvergence: %v", err)
	}
}

func TestDistributeMessageCounts(t *testing.T) {
	topo, caps := fixture(t)
	_, stats, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	// Local: Σ |C|(|C|-1) = 3·2 + 2·1 + 4·3 = 20.
	if stats.LocalMessages != 20 {
		t.Errorf("LocalMessages = %d, want 20", stats.LocalMessages)
	}
	// Aggregate: one per directed cluster pair = 3·2 = 6.
	if stats.AggregateMessages != 6 {
		t.Errorf("AggregateMessages = %d, want 6", stats.AggregateMessages)
	}
	// Forwards: per received aggregate, |C|-1 forwards. Each cluster
	// receives k-1 = 2 aggregates: 2·(3-1) + 2·(2-1) + 2·(4-1) = 12.
	if stats.ForwardMessages != 12 {
		t.Errorf("ForwardMessages = %d, want 12", stats.ForwardMessages)
	}
	if stats.Total() != 38 {
		t.Errorf("Total = %d, want 38", stats.Total())
	}
}

func TestServiceStateSize(t *testing.T) {
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	// Fig. 9(b): |own cluster| + number of clusters.
	wantByCluster := map[int]int{0: 3 + 3, 1: 2 + 3, 2: 4 + 3}
	for i := range states {
		want := wantByCluster[topo.ClusterOf(i)]
		if got := states[i].ServiceStateSize(); got != want {
			t.Errorf("node %d ServiceStateSize = %d, want %d", i, got, want)
		}
	}
}

func TestHasLocalAndClustersProviding(t *testing.T) {
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	// Node 0 (cluster 0) sees node 2's s4 locally.
	if !states[0].HasLocal(2, "s4") {
		t.Error("node 0 does not see s4 on node 2")
	}
	// Node 0 must not have SCT_P entries for other clusters' nodes.
	if states[0].HasLocal(3, "s5") {
		t.Error("node 0 has foreign SCT_P entry for node 3")
	}
	// s1 is available in clusters 0 (nodes 0,2) and 2 (node 7).
	got := states[4].ClustersProviding("s1")
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ClustersProviding(s1) = %v, want [0 2]", got)
	}
	// s5 only in cluster 1.
	got = states[0].ClustersProviding("s5")
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("ClustersProviding(s5) = %v, want [1]", got)
	}
	if got := states[0].ClustersProviding("nope"); len(got) != 0 {
		t.Errorf("ClustersProviding(nope) = %v, want empty", got)
	}
}

func TestDistributeValidation(t *testing.T) {
	topo, caps := fixture(t)
	if _, _, err := Distribute(nil, caps); err == nil {
		t.Error("nil topology accepted")
	}
	if _, _, err := Distribute(topo, caps[:3]); err == nil {
		t.Error("short capability list accepted")
	}
	bad := append([]svc.CapabilitySet(nil), caps...)
	bad[2] = nil
	if _, _, err := Distribute(topo, bad); err == nil {
		t.Error("nil capability set accepted")
	}
}

func TestDistributeIsolation(t *testing.T) {
	// Mutating returned state must not corrupt the input capabilities.
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	states[0].SCTP[0].Add("injected")
	states[0].SCTC[0].Add("injected2")
	if caps[0].Has("injected") || caps[0].Has("injected2") {
		t.Error("node state aliases input capability sets")
	}
}

func TestVerifyConvergenceDetectsCorruption(t *testing.T) {
	topo, caps := fixture(t)
	states, _, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	states[3].SCTC[0].Add("bogus")
	if err := VerifyConvergence(topo, caps, states); err == nil {
		t.Error("corrupted SCT_C passed verification")
	}
	states, _, err = Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	delete(states[5].SCTP, 6)
	if err := VerifyConvergence(topo, caps, states); err == nil {
		t.Error("missing SCT_P entry passed verification")
	}
	if err := VerifyConvergence(topo, caps, states[:2]); err == nil {
		t.Error("short state list passed verification")
	}
}

func TestFlatStateSize(t *testing.T) {
	if FlatStateSize(1000) != 1000 {
		t.Error("FlatStateSize(1000) != 1000")
	}
}

func TestDistributeSingleCluster(t *testing.T) {
	pts := []coords.Point{{0, 0}, {1, 0}, {2, 0}}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	topo, err := hfc.Build(cmap, &cluster.Result{Assignment: []int{0, 0, 0}, Clusters: [][]int{{0, 1, 2}}})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet("a"),
		svc.NewCapabilitySet("b"),
		svc.NewCapabilitySet("c"),
	}
	states, stats, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	if stats.AggregateMessages != 0 || stats.ForwardMessages != 0 {
		t.Errorf("single cluster produced inter-cluster traffic: %+v", stats)
	}
	if err := VerifyConvergence(topo, caps, states); err != nil {
		t.Fatalf("VerifyConvergence: %v", err)
	}
}

func TestDistributeLargeRandomConvergesProperty(t *testing.T) {
	// Random clusterable point set end-to-end through the real clustering.
	rng := rand.New(rand.NewSource(77))
	var pts []coords.Point
	for c := 0; c < 5; c++ {
		for i := 0; i < 12; i++ {
			pts = append(pts, coords.Point{float64(c)*300 + rng.Float64()*20, float64(c%2)*300 + rng.Float64()*20})
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	res, err := cluster.Cluster(len(pts), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	topo, err := hfc.Build(cmap, res)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cat, err := svc.NewCatalog(20)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, len(pts), cat, 2, 6)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	states, stats, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	if err := VerifyConvergence(topo, caps, states); err != nil {
		t.Fatalf("VerifyConvergence: %v", err)
	}
	if stats.LocalMessages == 0 {
		t.Error("no local messages recorded")
	}
}
