package serve_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hfc/internal/routing"
	"hfc/internal/serve"
	"hfc/internal/svc"
)

// batchStream draws unique requests and tiles them into a stream with heavy
// duplication plus two invalid entries — the shape ResolveBatch is built to
// amortize.
func batchStream(t *testing.T, caps []svc.CapabilitySet, seed int64, unique, total int) []svc.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	uniq := make([]svc.Request, unique)
	for i := range uniq {
		if uniq[i], err = gen.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	stream := make([]svc.Request, total)
	for i := range stream {
		stream[i] = uniq[i%unique]
	}
	// Invalid requests must fail individually without disturbing neighbours.
	stream[total/3] = svc.Request{Source: -1, Dest: 0, SG: uniq[0].SG}
	stream[2*total/3] = svc.Request{Source: 0, Dest: 1 << 20, SG: uniq[0].SG}
	return stream
}

// TestResolveBatchMatchesLooped is the batch/looped equivalence property:
// across churn rounds (capability updates and availability flips applied
// identically to two same-seed engines between rounds), ResolveBatchDetailed
// returns exactly what a loop over ResolveDetailed returns — same per-request
// errors and bit-identical paths — at several worker counts.
func TestResolveBatchMatchesLooped(t *testing.T) {
	_, loopEng, caps := buildEngine(t, 71, 40, serve.Config{})
	_, batchEng, _ := buildEngine(t, 71, 40, serve.Config{})
	stream := batchStream(t, caps, 72, 16, 64)

	churn := []func(t *testing.T, e *serve.Engine){
		func(t *testing.T, e *serve.Engine) {},
		func(t *testing.T, e *serve.Engine) {
			if err := e.SetUnavailable(3, true); err != nil {
				t.Fatalf("SetUnavailable: %v", err)
			}
		},
		func(t *testing.T, e *serve.Engine) {
			if err := e.UpdateCapability(5, e.Capabilities()[7]); err != nil {
				t.Fatalf("UpdateCapability: %v", err)
			}
			if err := e.SetUnavailable(3, false); err != nil {
				t.Fatalf("SetUnavailable: %v", err)
			}
		},
	}
	for round, mutate := range churn {
		mutate(t, loopEng)
		mutate(t, batchEng)
		for _, workers := range []int{1, 4} {
			wantRes := make([]*routing.Result, len(stream))
			wantErr := make([]error, len(stream))
			for i, req := range stream {
				wantRes[i], wantErr[i] = loopEng.ResolveDetailed(req)
			}
			gotRes, gotErr := batchEng.ResolveBatchDetailed(stream, workers)
			if len(gotRes) != len(stream) || len(gotErr) != len(stream) {
				t.Fatalf("round %d workers %d: got %d results / %d errors for %d requests",
					round, workers, len(gotRes), len(gotErr), len(stream))
			}
			for i := range stream {
				if (gotErr[i] == nil) != (wantErr[i] == nil) {
					t.Fatalf("round %d workers %d req %d: batch err %v, looped err %v",
						round, workers, i, gotErr[i], wantErr[i])
				}
				if gotErr[i] != nil {
					if gotErr[i].Error() != wantErr[i].Error() {
						t.Fatalf("round %d workers %d req %d: batch err %q, looped err %q",
							round, workers, i, gotErr[i], wantErr[i])
					}
					continue
				}
				got, want := gotRes[i], wantRes[i]
				//hfcvet:ignore floatdist batch must reproduce the looped result bit-identically
				if got.Path.DecisionCost != want.Path.DecisionCost {
					t.Fatalf("round %d workers %d req %d: batch cost %v, looped cost %v (must be bit-identical)",
						round, workers, i, got.Path.DecisionCost, want.Path.DecisionCost)
				}
				if !reflect.DeepEqual(got.Path.Hops, want.Path.Hops) {
					t.Fatalf("round %d workers %d req %d: batch hops %v, looped hops %v",
						round, workers, i, got.Path.Hops, want.Path.Hops)
				}
				if !reflect.DeepEqual(got.CSP, want.CSP) {
					t.Fatalf("round %d workers %d req %d: batch CSP %v, looped CSP %v",
						round, workers, i, got.CSP, want.CSP)
				}
			}
		}
	}
}

// TestResolveBatchSharesDuplicates checks the in-batch amortization
// contract: positions asking for the same request get the same shared
// read-only result, resolved once.
func TestResolveBatchSharesDuplicates(t *testing.T) {
	_, eng, caps := buildEngine(t, 81, 30, serve.Config{})
	rng := rand.New(rand.NewSource(82))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	batch := []svc.Request{req, req, req, req}
	results, errs := eng.ResolveBatchDetailed(batch, 2)
	for i := range batch {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("request %d: duplicate did not share the batch result", i)
		}
	}
	if got := eng.Stats().Resolutions; got != 1 {
		t.Fatalf("batch of 4 duplicates performed %d resolutions, want 1", got)
	}
}

// TestResolveBatchConcurrentChurn hammers batches from several goroutines
// while availability flips and capability updates race them. Run under
// -race; every answered request must still be a valid path or a clean
// error.
func TestResolveBatchConcurrentChurn(t *testing.T) {
	_, eng, caps := buildEngine(t, 91, 30, serve.Config{})
	stream := batchStream(t, caps, 92, 8, 32)
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		flip := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			flip = !flip
			if err := eng.SetUnavailable(i%10, flip); err != nil {
				t.Errorf("SetUnavailable: %v", err)
				return
			}
			if i%7 == 0 {
				if err := eng.UpdateCapability(11, eng.Capabilities()[12]); err != nil {
					t.Errorf("UpdateCapability: %v", err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				results, errs := eng.ResolveBatchDetailed(stream, 2)
				for i := range stream {
					if errs[i] == nil && results[i].Path == nil {
						t.Errorf("pass %d req %d: nil path without error", pass, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}
