// Package serve is the concurrent route-serving engine: it answers §5
// service-routing requests against one bootstrapped HFC overlay at high
// request concurrency. Three mechanisms carry the load:
//
//   - a sharded, invalidation-aware route cache (routing.RouteCache), so
//     concurrent lookups on different keys never contend on one lock;
//   - inverted provider indexes (routing.LazyIndexes), rebuilt lazily when
//     the engine's state advances, so resolution looks providers up instead
//     of rescanning capability tables per request;
//   - in-flight deduplication: identical concurrent (source, destination,
//     service-graph) resolutions share one computation instead of racing to
//     compute the same route N times.
//
// Capability updates and cluster invalidations run under a writer lock and
// bump the cache's version clock, so a resolution never returns a route
// computed against state older than the resolution's own start.
package serve

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"hfc/internal/hfc"
	"hfc/internal/par"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Config tunes an Engine. The zero value selects the defaults noted per
// field.
type Config struct {
	// CacheShards is the route-cache shard count (default
	// routing.DefaultCacheShards; values below one select a single shard).
	CacheShards int
	// Relax selects the cluster-level relaxation mode (default
	// RelaxBacktrack).
	Relax routing.RelaxMode
	// Workers is the default fan-out of ResolveAll when its workers
	// argument is zero (0/1 serial, negative = all cores).
	Workers int
}

// Stats is a snapshot of the engine's serving counters.
type Stats struct {
	// Cache aggregates the route-cache outcomes.
	Cache routing.CacheStats
	// Resolutions counts full §5 computations performed.
	Resolutions int64
	// Deduped counts resolutions answered by joining another caller's
	// in-flight computation of the same request.
	Deduped int64
	// Degraded counts resolutions answered from the last-known-good store
	// because the destination proxy was marked unavailable (or resolution
	// failed while nodes were unavailable); see SetUnavailable.
	Degraded int64
	// UnavailableNodes is how many proxies are currently marked
	// unavailable.
	UnavailableNodes int
}

// ErrUnavailable is returned when a request's destination proxy is marked
// unavailable and no last-known-good route exists to serve degraded.
var ErrUnavailable = errors.New("serve: destination unavailable")

// flightKey identifies one deduplicatable computation: the route-cache key
// plus the cache version the computation was admitted under. Versioning the
// key means a caller only ever joins a computation at least as fresh as its
// own start — after an invalidation, late arrivals start a new computation
// instead of adopting a pre-invalidation result.
type flightKey struct {
	key     routing.CacheKey
	version uint64
}

// flightCall is one in-flight resolution; res and err are written exactly
// once, before done is closed, and read only after <-done.
type flightCall struct {
	done chan struct{}
	res  *routing.Result
	err  error
}

// Engine serves routing requests concurrently over one HFC overlay.
// Resolution is read-side (shared); capability updates are writer-side and
// invalidate exactly the cache entries and indexes they affect.
type Engine struct {
	topo    *hfc.Topology
	relax   routing.RelaxMode
	workers int

	// stateMu orders resolutions against state mutation: every resolution
	// computes under the read side, every mutation (UpdateCapability)
	// rewrites states and advances the cache version under the write side.
	stateMu sync.RWMutex
	caps    []svc.CapabilitySet // guarded by stateMu
	// states is updated in place (elements overwritten, header immutable),
	// so the solver and index structures that captured the slice at
	// construction observe every update.
	states []state.NodeState // guarded by stateMu

	cache   *routing.RouteCache
	indexes *routing.LazyIndexes
	solver  *routing.LocalIntraSolver

	// views caches each destination proxy's immutable topology view,
	// built on first use (topo.View copies border tables — far too
	// expensive per request). Concurrent first builds are idempotent.
	views []atomic.Pointer[hfc.NodeView]

	flightMu sync.Mutex
	flight   map[flightKey]*flightCall // guarded by flightMu

	// unavailable[i] marks proxy i partitioned/unreachable per an external
	// failure detector (SetUnavailable): fresh resolutions exclude it from
	// provider and border selection, and requests destined to it are served
	// from the last-known-good store, tagged degraded.
	unavailable []atomic.Bool
	unavailN    atomic.Int64

	// lkgMu guards the last-known-good store: the most recent successful
	// result per request key, serving degraded answers while the fresh
	// path is impossible. Cleared on capability updates — degraded serving
	// promises stale-but-valid, and validity is against the deployment.
	lkgMu sync.RWMutex
	lkg   map[routing.CacheKey]*routing.Result // guarded by lkgMu

	resolutions atomic.Int64
	deduped     atomic.Int64
	degraded    atomic.Int64
}

// NewEngine builds an engine over a bootstrapped topology with converged
// states. caps[i] is the deployment of proxy i (cloned; the engine owns its
// copy). states must be the matching state.Distribute output; the engine
// copies the slice and owns all subsequent mutation.
func NewEngine(topo *hfc.Topology, caps []svc.CapabilitySet, states []state.NodeState, cfg Config) (*Engine, error) {
	if topo == nil {
		return nil, errors.New("serve: nil topology")
	}
	if len(states) != topo.N() {
		return nil, fmt.Errorf("serve: %d states for %d nodes", len(states), topo.N())
	}
	if len(caps) != topo.N() {
		return nil, fmt.Errorf("serve: %d capability sets for %d nodes", len(caps), topo.N())
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = routing.DefaultCacheShards
	}
	if cfg.Relax == 0 {
		cfg.Relax = routing.RelaxBacktrack
	}
	capsClone := make([]svc.CapabilitySet, len(caps))
	for i, c := range caps {
		capsClone[i] = c.Clone()
	}
	// The states slice header is fixed here; UpdateCapability copies fresh
	// elements into it in place, so the indexes and solver built over it
	// always observe the current state.
	statesCopy := append([]state.NodeState(nil), states...)
	cache := routing.NewRouteCacheSharded(cfg.CacheShards)
	indexes := routing.NewLazyIndexes(statesCopy, func(node int) []int {
		return topo.Members(topo.ClusterOf(node))
	}, cache.Version)
	e := &Engine{
		topo:        topo,
		relax:       cfg.Relax,
		workers:     cfg.Workers,
		caps:        capsClone,
		states:      statesCopy,
		cache:       cache,
		indexes:     indexes,
		solver:      &routing.LocalIntraSolver{Topo: topo, States: statesCopy, Indexes: indexes},
		views:       make([]atomic.Pointer[hfc.NodeView], topo.N()),
		flight:      make(map[flightKey]*flightCall),
		unavailable: make([]atomic.Bool, topo.N()),
		lkg:         make(map[routing.CacheKey]*routing.Result),
	}
	e.solver.Exclude = e.IsUnavailable
	e.solver.ExcludeAny = func() bool { return e.unavailN.Load() > 0 }
	return e, nil
}

// view returns dest's cached topology view, building it on first use.
func (e *Engine) view(dest int) (*hfc.NodeView, error) {
	if v := e.views[dest].Load(); v != nil {
		return v, nil
	}
	v, err := e.topo.View(dest)
	if err != nil {
		return nil, err
	}
	// The availability set doubles as every view's failure detector, so
	// border selection skips unavailable endpoints via backup pairs.
	v.Alive = func(id int) bool { return !e.IsUnavailable(id) }
	// A concurrent builder may have won; either view is identical.
	e.views[dest].CompareAndSwap(nil, v)
	return e.views[dest].Load(), nil
}

// Resolve answers one service request, returning the composed path.
//
//hfc:hotpath budget=0
func (e *Engine) Resolve(req svc.Request) (*routing.Path, error) {
	res, err := e.ResolveDetailed(req)
	if err != nil {
		return nil, err
	}
	return res.Path, nil
}

// ResolveDetailed answers one service request with the full §5 result.
// Identical concurrent requests share one computation; repeated requests
// are answered from the route cache until an update invalidates a cluster
// their path depends on. The returned result is shared and read-only.
//
//hfc:hotpath budget=3
func (e *Engine) ResolveDetailed(req svc.Request) (*routing.Result, error) {
	if err := req.Validate(e.topo.N()); err != nil {
		return nil, err
	}
	canonical := req.SG.Canonical()
	key := routing.NewCacheKeyCanonical(req.Source, req.Dest, canonical)
	return e.resolveKeyed(req, key, canonical)
}

// resolveKeyed is resolution past validation and cache-key construction:
// the degraded check, cache lookup, in-flight dedup, and computation.
// Callers guarantee req is valid and (key, canonical) match req.
//
//hfc:hotpath budget=3
func (e *Engine) resolveKeyed(req svc.Request, key routing.CacheKey, canonical string) (*routing.Result, error) {
	if e.unavailable[req.Dest].Load() {
		// The destination resolver is unreachable, so a fresh §5
		// computation (which that proxy would perform) is impossible.
		// Serve the last-known-good route tagged degraded — stale may be
		// slower, never wrong — or report the outage.
		if res := e.degradedResult(key); res != nil {
			return res, nil
		}
		return nil, ErrUnavailable
	}
	if v, ok := e.cache.Get(key, canonical); ok {
		return v.(*routing.Result), nil
	}
	version := e.cache.Version()
	fk := flightKey{key: key, version: version}
	e.flightMu.Lock()
	if c, ok := e.flight[fk]; ok {
		e.flightMu.Unlock()
		// Join the in-flight computation. No locks are held while waiting;
		// the version in fk guarantees the leader started no earlier than
		// this caller's current view of the cache, so the shared result is
		// never older than this call.
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		e.deduped.Add(1)
		return c.res, nil
	}
	c := &flightCall{done: make(chan struct{})}
	e.flight[fk] = c
	e.flightMu.Unlock()

	c.res, c.err = e.compute(req, key, canonical, version)
	if c.err != nil && e.unavailN.Load() > 0 {
		// Resolution failed while nodes are marked unavailable — likely
		// every provider of some service sits behind the partition. Fall
		// back to the last-known-good route; waiters share the copy.
		if res := e.degradedResult(key); res != nil {
			c.res, c.err = res, nil
		}
	}
	e.flightMu.Lock()
	delete(e.flight, fk)
	e.flightMu.Unlock()
	close(c.done)
	return c.res, c.err
}

// compute performs the full hierarchical resolution under the state read
// lock and publishes the result to the cache (unless an invalidation
// overtook the computation — then the cache drops it and only this call's
// waiters see the result).
func (e *Engine) compute(req svc.Request, key routing.CacheKey, canonical string, version uint64) (*routing.Result, error) {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	view, err := e.view(req.Dest)
	if err != nil {
		return nil, err
	}
	r := routing.HierarchicalRouter{
		View:            view,
		State:           &e.states[req.Dest],
		Intra:           e.solver,
		ClusterOfSource: e.topo.ClusterOf,
		Mode:            e.relax,
		Index:           e.indexes.For(req.Dest),
	}
	res, err := r.Route(req)
	e.resolutions.Add(1)
	if err != nil {
		return nil, err
	}
	e.cache.Put(key, canonical, res, e.routeClusters(res, req), version)
	e.storeLKG(key, res)
	return res, nil
}

// storeLKG records a successful fresh result as the last-known-good answer
// for its key. Degraded results never re-enter the store.
func (e *Engine) storeLKG(key routing.CacheKey, res *routing.Result) {
	if res == nil || res.Degraded {
		return
	}
	e.lkgMu.Lock()
	e.lkg[key] = res
	e.lkgMu.Unlock()
}

// degradedResult returns a degraded-tagged copy of the last-known-good
// result for key (nil if none exists), counting the degraded serve. The
// stored result stays untouched — callers own the copy's top level.
func (e *Engine) degradedResult(key routing.CacheKey) *routing.Result {
	e.lkgMu.RLock()
	res, ok := e.lkg[key]
	e.lkgMu.RUnlock()
	if !ok {
		return nil
	}
	cp := *res
	cp.Degraded = true
	e.degraded.Add(1)
	return &cp
}

// SetUnavailable marks (down=true) or clears (down=false) a proxy as
// unavailable, as driven by an external failure detector — e.g. the overlay's
// accrual health score quarantining a gray node. While marked, the proxy is
// excluded from provider selection and border election in fresh resolutions,
// and requests destined to it are served from the last-known-good store,
// tagged degraded. Each transition invalidates the proxy's cluster in the
// route cache, since cached routes were computed under the old availability.
func (e *Engine) SetUnavailable(node int, down bool) error {
	if node < 0 || node >= e.topo.N() {
		return fmt.Errorf("serve: node %d out of range [0,%d)", node, e.topo.N())
	}
	if e.unavailable[node].CompareAndSwap(!down, down) {
		if down {
			e.unavailN.Add(1)
		} else {
			e.unavailN.Add(-1)
		}
		e.cache.AdvanceRound(e.topo.ClusterOf(node))
	}
	return nil
}

// IsUnavailable reports whether a proxy is currently marked unavailable.
// Out-of-range IDs report available.
func (e *Engine) IsUnavailable(node int) bool {
	return node >= 0 && node < len(e.unavailable) && e.unavailable[node].Load()
}

// UnavailableNodes lists the proxies currently marked unavailable, ascending.
func (e *Engine) UnavailableNodes() []int {
	var out []int
	for i := range e.unavailable {
		if e.unavailable[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// routeClusters lists every cluster a resolved route depends on — both
// endpoint clusters, the CSP's provider clusters, and the cluster of every
// hop proxy on the composed path — so the cache entry goes stale exactly
// when one of them advances. Duplicates are fine; the cache deduplicates.
func (e *Engine) routeClusters(res *routing.Result, req svc.Request) []int {
	out := []int{e.topo.ClusterOf(req.Source), e.topo.ClusterOf(req.Dest)}
	for _, entry := range res.CSP {
		out = append(out, entry.Cluster)
	}
	if res.Path != nil {
		for _, h := range res.Path.Hops {
			out = append(out, e.topo.ClusterOf(h.Node))
		}
	}
	return out
}

// ResolveAll answers a batch of requests on a bounded worker pool (see
// internal/par: 0 falls back to the engine's configured default, 1 is
// serial, negative uses all cores). Results and errors are aligned with
// reqs; each request succeeds or fails independently.
func (e *Engine) ResolveAll(reqs []svc.Request, workers int) ([]*routing.Path, []error) {
	if workers == 0 {
		workers = e.workers
	}
	paths := make([]*routing.Path, len(reqs))
	errs := make([]error, len(reqs))
	par.For(len(reqs), workers, func(i int) {
		paths[i], errs[i] = e.Resolve(reqs[i])
	})
	return paths, errs
}

// batchGroup is one distinct request within a batch: the representative
// request, every batch position that asked for it, and the resolution
// artifacts computed once for the whole group. Groups sharing a service
// graph but differing in endpoints chain through next (duplicates in real
// streams share the whole request, so chains are almost always length 1 and
// the dedup probe stays a one-word map lookup).
type batchGroup struct {
	req         svc.Request
	idxs        []int
	next        int32
	destCluster int
	key         routing.CacheKey
	canonical   string
	res         *routing.Result
	err         error
}

// batchScratch is the reusable grouping arena of ResolveBatchDetailed;
// pooled so steady-state batch calls do not rebuild the map or regrow the
// group, permutation, and index slices.
type batchScratch struct {
	bySG  map[*svc.Graph]int32
	order []batchGroup
	perm  []int32
}

// appendGroup opens a new group for (req, first batch position i), reusing
// the retained index-slice capacity of the slot the group lands in.
func (sc *batchScratch) appendGroup(req svc.Request, i int) int32 {
	gi := int32(len(sc.order))
	var idxs []int
	if len(sc.order) < cap(sc.order) {
		idxs = sc.order[: gi+1 : gi+1][gi].idxs[:0]
	}
	sc.order = append(sc.order, batchGroup{req: req, idxs: append(idxs, i), next: -1})
	return gi
}

var batchPool = sync.Pool{
	New: func() any { return &batchScratch{bySG: make(map[*svc.Graph]int32)} },
}

// ResolveBatch answers a batch of requests, amortizing per-request overhead
// across duplicates: requests with the same (source, destination,
// service-graph) resolve once and share the result. See
// ResolveBatchDetailed.
func (e *Engine) ResolveBatch(reqs []svc.Request, workers int) ([]*routing.Path, []error) {
	results, errs := e.ResolveBatchDetailed(reqs, workers)
	paths := make([]*routing.Path, len(results))
	for i, res := range results {
		if res != nil {
			paths[i] = res.Path
		}
	}
	return paths, errs
}

// ResolveBatchDetailed answers a batch of requests with full §5 results,
// aligned with reqs; each request succeeds or fails independently, exactly
// as a loop over ResolveDetailed would, but with the per-request overhead
// amortized across the batch:
//
//   - service graphs are canonicalized once per distinct *svc.Graph, not
//     once per request (streams cycling a request pool share graph values);
//   - identical requests are grouped by cache key and resolved once, the
//     shared read-only result scattered to every position — no flight-map
//     round trip per duplicate;
//   - groups resolve in destination-cluster order, so consecutive
//     resolutions on a worker reuse the same hot view, provider index, and
//     router scratch (the routing pools are per-P; sorted order keeps them
//     warm) instead of ping-ponging between destinations.
//
// workers bounds the fan-out over distinct groups (0 = the engine default,
// 1 = serial, negative = all cores). In-batch sharing does not count toward
// Stats.Deduped (it never enters the flight map); concurrent callers outside
// the batch dedup against it as usual.
//
//hfc:hotpath budget=6
func (e *Engine) ResolveBatchDetailed(reqs []svc.Request, workers int) ([]*routing.Result, []error) {
	if workers == 0 {
		workers = e.workers
	}
	results := make([]*routing.Result, len(reqs))
	errs := make([]error, len(reqs))
	sc := batchPool.Get().(*batchScratch)
	sc.order = sc.order[:0]
	clear(sc.bySG)
	for i := range reqs {
		req := &reqs[i]
		if gi, ok := sc.bySG[req.SG]; ok {
			for {
				g := &sc.order[gi]
				if g.req.Source == req.Source && g.req.Dest == req.Dest {
					//hfcvet:ignore hotalloc per-group index list retains capacity across pooled batch calls
					g.idxs = append(g.idxs, i)
					gi = -1
					break
				}
				if g.next < 0 {
					break
				}
				gi = g.next
			}
			if gi < 0 {
				continue
			}
			// Same graph, different endpoints: chain a sibling group.
			sc.order[gi].next = sc.appendGroup(*req, i)
			continue
		}
		sc.bySG[req.SG] = sc.appendGroup(*req, i)
	}
	// Per-group front matter, once per distinct request instead of once per
	// batch position: validation, canonicalization, cache-key hashing.
	n := e.topo.N()
	for gi := range sc.order {
		g := &sc.order[gi]
		if err := g.req.Validate(n); err != nil {
			g.err = err
			continue
		}
		g.destCluster = e.topo.ClusterOf(g.req.Dest)
		g.canonical = g.req.SG.Canonical()
		g.key = routing.NewCacheKeyCanonical(g.req.Source, g.req.Dest, g.canonical)
	}
	// Deterministic, locality-friendly resolution order regardless of the
	// batch's arrival order: consecutive groups on a worker share the same
	// destination's hot view, provider index, and pooled router scratch.
	// Sorting a permutation keeps the comparator's swaps to int32s instead
	// of the fat group structs (whose slice addresses the chains hold).
	sc.perm = sc.perm[:0]
	for gi := range sc.order {
		//hfcvet:ignore hotalloc permutation retains capacity across pooled batch calls
		sc.perm = append(sc.perm, int32(gi))
	}
	slices.SortFunc(sc.perm, func(a, b int32) int {
		ga, gb := &sc.order[a], &sc.order[b]
		if ga.destCluster != gb.destCluster {
			return ga.destCluster - gb.destCluster
		}
		if ga.req.Dest != gb.req.Dest {
			return ga.req.Dest - gb.req.Dest
		}
		if ga.req.Source != gb.req.Source {
			return ga.req.Source - gb.req.Source
		}
		return strings.Compare(ga.canonical, gb.canonical)
	})
	par.For(len(sc.perm), workers, func(j int) {
		g := &sc.order[sc.perm[j]]
		if g.err != nil {
			return
		}
		g.res, g.err = e.resolveKeyed(g.req, g.key, g.canonical)
	})
	for gi := range sc.order {
		g := &sc.order[gi]
		for _, i := range g.idxs {
			results[i], errs[i] = g.res, g.err
		}
		// Drop result references before pooling; keep idxs capacity.
		g.res, g.err, g.req, g.canonical = nil, nil, svc.Request{}, ""
	}
	batchPool.Put(sc)
	return results, errs
}

// UpdateCapability replaces one proxy's installed services and re-converges
// the engine's routing state, invalidating every cached route that depends
// on the proxy's cluster. Resolutions in flight either complete against the
// old state (and their cache entries are invalidated here) or observe the
// new state in full — never a mix.
func (e *Engine) UpdateCapability(node int, set svc.CapabilitySet) error {
	if node < 0 || node >= e.topo.N() {
		return fmt.Errorf("serve: node %d out of range [0,%d)", node, e.topo.N())
	}
	if set == nil {
		return errors.New("serve: nil capability set")
	}
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	old := e.caps[node]
	e.caps[node] = set.Clone()
	fresh, _, err := state.Distribute(e.topo, e.caps)
	if err != nil {
		e.caps[node] = old
		return fmt.Errorf("serve: re-converge after capability update: %w", err)
	}
	copy(e.states, fresh)
	// Version bump after the state swap: a resolution admitted after this
	// line computes on the new states; one admitted before is either fully
	// finished (its cache entry invalidated by this advance if it depends
	// on the cluster) or blocked on the read lock and will see the new
	// states in full.
	e.cache.AdvanceRound(e.topo.ClusterOf(node))
	// Last-known-good routes were validated against the old deployment;
	// degraded serving promises stale-but-valid, so drop them all.
	e.lkgMu.Lock()
	clear(e.lkg)
	e.lkgMu.Unlock()
	return nil
}

// InvalidateCluster drops every cached route depending on one cluster and
// forces provider-index rebuilds, as after an external state change in that
// cluster.
func (e *Engine) InvalidateCluster(cluster int) {
	e.cache.AdvanceRound(cluster)
}

// InvalidateAll drops every cached route and forces provider-index
// rebuilds, as after a full state-distribution round.
func (e *Engine) InvalidateAll() {
	e.cache.AdvanceAll()
}

// Capabilities returns a snapshot (deep copy) of the current deployments.
func (e *Engine) Capabilities() []svc.CapabilitySet {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	out := make([]svc.CapabilitySet, len(e.caps))
	for i, c := range e.caps {
		out[i] = c.Clone()
	}
	return out
}

// Topology exposes the engine's HFC topology.
func (e *Engine) Topology() *hfc.Topology { return e.topo }

// Stats snapshots the serving counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Cache:            e.cache.Stats(),
		Resolutions:      e.resolutions.Load(),
		Deduped:          e.deduped.Load(),
		Degraded:         e.degraded.Load(),
		UnavailableNodes: int(e.unavailN.Load()),
	}
}
