package serve_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hfc/internal/routing"
	"hfc/internal/serve"
	"hfc/internal/svc"
)

// warmRequest resolves one generated request fresh and returns it with its
// result, so degraded tests start from a populated last-known-good store.
func warmRequest(t *testing.T, eng *serve.Engine, caps []svc.CapabilitySet, seed int64) (svc.Request, *routing.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	res, err := eng.ResolveDetailed(req)
	if err != nil {
		t.Fatalf("ResolveDetailed: %v", err)
	}
	if res.Degraded {
		t.Fatal("fresh resolution tagged degraded")
	}
	return req, res
}

func TestEngineDegradedServesLastKnownGood(t *testing.T) {
	_, eng, caps := buildEngine(t, 81, 30, serve.Config{})
	req, fresh := warmRequest(t, eng, caps, 82)

	if err := eng.SetUnavailable(req.Dest, true); err != nil {
		t.Fatalf("SetUnavailable: %v", err)
	}
	if got := eng.UnavailableNodes(); !reflect.DeepEqual(got, []int{req.Dest}) {
		t.Fatalf("UnavailableNodes = %v, want [%d]", got, req.Dest)
	}
	deg, err := eng.ResolveDetailed(req)
	if err != nil {
		t.Fatalf("ResolveDetailed while dest unavailable: %v", err)
	}
	if !deg.Degraded {
		t.Error("result served during outage not tagged degraded")
	}
	if !reflect.DeepEqual(deg.Path, fresh.Path) || !reflect.DeepEqual(deg.CSP, fresh.CSP) {
		t.Error("degraded result differs from last known good")
	}
	if err := deg.Path.Validate(req, eng.Capabilities()); err != nil {
		t.Errorf("degraded path invalid: %v", err)
	}
	if fresh.Degraded {
		t.Error("stored last-known-good result was mutated")
	}
	st := eng.Stats()
	if st.Degraded != 1 || st.UnavailableNodes != 1 {
		t.Errorf("stats = %+v, want Degraded=1 UnavailableNodes=1", st)
	}

	// Recovery: the next resolution is fresh again.
	if err := eng.SetUnavailable(req.Dest, false); err != nil {
		t.Fatalf("SetUnavailable(recover): %v", err)
	}
	if n := eng.Stats().UnavailableNodes; n != 0 {
		t.Fatalf("UnavailableNodes after recovery = %d, want 0", n)
	}
	res, err := eng.ResolveDetailed(req)
	if err != nil {
		t.Fatalf("ResolveDetailed after recovery: %v", err)
	}
	if res.Degraded {
		t.Error("post-recovery resolution still tagged degraded")
	}
}

func TestEngineUnavailableWithoutLastKnownGood(t *testing.T) {
	_, eng, caps := buildEngine(t, 91, 30, serve.Config{})
	rng := rand.New(rand.NewSource(92))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if err := eng.SetUnavailable(req.Dest, true); err != nil {
		t.Fatalf("SetUnavailable: %v", err)
	}
	if _, err := eng.ResolveDetailed(req); !errors.Is(err, serve.ErrUnavailable) {
		t.Fatalf("ResolveDetailed = %v, want ErrUnavailable", err)
	}
	if st := eng.Stats(); st.Degraded != 0 {
		t.Errorf("Degraded = %d, want 0", st.Degraded)
	}
}

func TestEngineUpdateCapabilityClearsLastKnownGood(t *testing.T) {
	_, eng, caps := buildEngine(t, 101, 30, serve.Config{})
	req, _ := warmRequest(t, eng, caps, 102)

	if err := eng.SetUnavailable(req.Dest, true); err != nil {
		t.Fatalf("SetUnavailable: %v", err)
	}
	if res, err := eng.ResolveDetailed(req); err != nil || !res.Degraded {
		t.Fatalf("degraded serve before update: res=%v err=%v", res, err)
	}
	// A capability update invalidates every last-known-good route: degraded
	// serving promises stale-but-valid, and validity is per deployment.
	other := (req.Dest + 1) % eng.Topology().N()
	if err := eng.UpdateCapability(other, caps[other].Clone()); err != nil {
		t.Fatalf("UpdateCapability: %v", err)
	}
	if _, err := eng.ResolveDetailed(req); !errors.Is(err, serve.ErrUnavailable) {
		t.Fatalf("ResolveDetailed after update = %v, want ErrUnavailable", err)
	}
}

func TestEngineExcludesUnavailableProvider(t *testing.T) {
	_, eng, caps := buildEngine(t, 111, 30, serve.Config{})

	// Install a unique service on exactly two nodes; resolution must avoid
	// whichever one is marked unavailable.
	const flip svc.Service = "flip-degraded"
	a, b := 2, 17
	for _, n := range []int{a, b} {
		withFlip := caps[n].Clone()
		withFlip.Add(flip)
		if err := eng.UpdateCapability(n, withFlip); err != nil {
			t.Fatalf("UpdateCapability(%d): %v", n, err)
		}
	}
	sg, err := svc.Linear(flip)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 1, SG: sg}
	p, err := eng.Resolve(req)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	first := providerOf(t, p, flip)
	if first != a && first != b {
		t.Fatalf("flip served by node %d, want %d or %d", first, a, b)
	}

	// Mark the chosen provider unavailable: the cached route depends on its
	// cluster and is invalidated, and the fresh resolution must use the
	// other provider.
	if err := eng.SetUnavailable(first, true); err != nil {
		t.Fatalf("SetUnavailable: %v", err)
	}
	p, err = eng.Resolve(req)
	if err != nil {
		t.Fatalf("Resolve with provider down: %v", err)
	}
	second := providerOf(t, p, flip)
	if second == first {
		t.Fatalf("flip still served by unavailable node %d", first)
	}
	if second != a && second != b {
		t.Fatalf("flip served by node %d, want %d or %d", second, a, b)
	}

	// Both providers down: a fresh computation is impossible, so the engine
	// falls back to the last known good route, tagged degraded.
	if err := eng.SetUnavailable(second, true); err != nil {
		t.Fatalf("SetUnavailable(second): %v", err)
	}
	res, err := eng.ResolveDetailed(req)
	if err != nil {
		t.Fatalf("ResolveDetailed with all providers down: %v", err)
	}
	if !res.Degraded {
		t.Error("fallback result not tagged degraded")
	}
	if got := providerOf(t, res.Path, flip); got != second {
		t.Errorf("degraded route served by node %d, want last known good %d", got, second)
	}
	if st := eng.Stats(); st.Degraded == 0 || st.UnavailableNodes != 2 {
		t.Errorf("stats = %+v, want Degraded>0 UnavailableNodes=2", st)
	}
}

func TestEngineSetUnavailableValidation(t *testing.T) {
	_, eng, _ := buildEngine(t, 121, 20, serve.Config{})
	if err := eng.SetUnavailable(-1, true); err == nil {
		t.Error("negative node accepted")
	}
	if err := eng.SetUnavailable(eng.Topology().N(), true); err == nil {
		t.Error("out-of-range node accepted")
	}
	if eng.IsUnavailable(-1) || eng.IsUnavailable(10_000) {
		t.Error("out-of-range node reported unavailable")
	}
	// Marking twice is idempotent: the count moves once per transition.
	if err := eng.SetUnavailable(3, true); err != nil {
		t.Fatalf("SetUnavailable: %v", err)
	}
	if err := eng.SetUnavailable(3, true); err != nil {
		t.Fatalf("SetUnavailable(again): %v", err)
	}
	if n := eng.Stats().UnavailableNodes; n != 1 {
		t.Errorf("UnavailableNodes = %d, want 1", n)
	}
	if err := eng.SetUnavailable(3, false); err != nil {
		t.Fatalf("SetUnavailable(clear): %v", err)
	}
	if n := eng.Stats().UnavailableNodes; n != 0 {
		t.Errorf("UnavailableNodes after clear = %d, want 0", n)
	}
}
