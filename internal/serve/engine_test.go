package serve_test

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hfc/internal/core"
	"hfc/internal/netsim"
	"hfc/internal/routing"
	"hfc/internal/serve"
	"hfc/internal/svc"
	"hfc/internal/topology"
)

// buildWorld creates a physical network and role assignments for Bootstrap.
func buildWorld(t testing.TB, seed int64, landmarks, proxies int) (*netsim.Network, []int, []int, []svc.CapabilitySet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo, err := topology.GenerateTransitStub(rng, topology.DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	net, err := netsim.New(topo)
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	stubs := topo.StubNodes()
	perm := rng.Perm(len(stubs))
	lm := make([]int, landmarks)
	for i := range lm {
		lm[i] = stubs[perm[i]]
	}
	px := make([]int, proxies)
	for i := range px {
		px[i] = stubs[perm[landmarks+i]]
	}
	cat, err := svc.NewCatalog(12)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, proxies, cat, 2, 5)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	return net, lm, px, caps
}

// buildEngine bootstraps a framework and wraps its outputs in an Engine.
func buildEngine(t testing.TB, seed int64, proxies int, cfg serve.Config) (*core.Framework, *serve.Engine, []svc.CapabilitySet) {
	t.Helper()
	net, lm, px, caps := buildWorld(t, seed, 8, proxies)
	rng := rand.New(rand.NewSource(seed + 1))
	fw, err := core.Bootstrap(rng, net, lm, px, caps, core.Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	eng, err := serve.NewEngine(fw.Topology(), fw.Capabilities(), fw.States(), cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return fw, eng, caps
}

func TestEngineMatchesFramework(t *testing.T) {
	fw, eng, caps := buildEngine(t, 21, 40, serve.Config{})
	rng := rand.New(rand.NewSource(22))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 30; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		want, err := fw.Route(req)
		if err != nil {
			t.Fatalf("framework Route: %v", err)
		}
		got, err := eng.Resolve(req)
		if err != nil {
			t.Fatalf("engine Resolve: %v", err)
		}
		//hfcvet:ignore floatdist the engine must reproduce the framework result bit-identically
		if got.DecisionCost != want.DecisionCost {
			t.Fatalf("request %d: engine cost %v, framework cost %v (must be bit-identical)", i, got.DecisionCost, want.DecisionCost)
		}
		if !reflect.DeepEqual(got.Hops, want.Hops) {
			t.Fatalf("request %d: engine hops %v, framework hops %v", i, got.Hops, want.Hops)
		}
		if err := got.Validate(req, caps); err != nil {
			t.Errorf("request %d: invalid path: %v", i, err)
		}
	}
}

func TestEngineCachesRepeatedRequests(t *testing.T) {
	_, eng, caps := buildEngine(t, 31, 30, serve.Config{})
	rng := rand.New(rand.NewSource(32))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	first, err := eng.ResolveDetailed(req)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	second, err := eng.ResolveDetailed(req)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if first != second {
		t.Error("repeated request not answered from cache (distinct results)")
	}
	st := eng.Stats()
	if st.Cache.Hits == 0 {
		t.Errorf("stats = %+v, want at least one cache hit", st)
	}
	if st.Resolutions != 1 {
		t.Errorf("resolutions = %d, want 1", st.Resolutions)
	}
}

func TestEngineAccountsEveryResolution(t *testing.T) {
	_, eng, caps := buildEngine(t, 41, 30, serve.Config{})
	rng := rand.New(rand.NewSource(42))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	// Many concurrent identical resolutions of one uncached request: every
	// call must be accounted as exactly one of cache hit, dedup join, or
	// full resolution, and all must agree on the result.
	const callers = 32
	var wg sync.WaitGroup
	results := make([]*routing.Path, callers)
	start := make(chan struct{})
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			p, err := eng.Resolve(req)
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
				return
			}
			results[g] = p
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < callers; g++ {
		if results[g] == nil || !reflect.DeepEqual(results[g].Hops, results[0].Hops) {
			t.Fatalf("caller %d result %v differs from caller 0 result %v", g, results[g], results[0])
		}
	}
	st := eng.Stats()
	if got := st.Cache.Hits + st.Deduped + st.Resolutions; got != callers {
		t.Errorf("hits(%d) + deduped(%d) + resolutions(%d) = %d, want %d",
			st.Cache.Hits, st.Deduped, st.Resolutions, got, callers)
	}
}

func TestEngineResolveAll(t *testing.T) {
	fw, eng, caps := buildEngine(t, 51, 40, serve.Config{Workers: -1})
	rng := rand.New(rand.NewSource(52))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	reqs := make([]svc.Request, 60)
	for i := range reqs {
		if reqs[i], err = gen.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	paths, errs := eng.ResolveAll(reqs, 0)
	if len(paths) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("ResolveAll returned %d paths, %d errors for %d requests", len(paths), len(errs), len(reqs))
	}
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := fw.Route(reqs[i])
		if err != nil {
			t.Fatalf("framework Route %d: %v", i, err)
		}
		//hfcvet:ignore floatdist the engine must reproduce the framework result bit-identically
		if paths[i].DecisionCost != want.DecisionCost {
			t.Errorf("request %d: cost %v, want %v", i, paths[i].DecisionCost, want.DecisionCost)
		}
	}
	// Serial ResolveAll agrees with the parallel run.
	serial, serrs := eng.ResolveAll(reqs, 1)
	for i := range reqs {
		if serrs[i] != nil {
			t.Fatalf("serial request %d: %v", i, serrs[i])
		}
		if !reflect.DeepEqual(serial[i].Hops, paths[i].Hops) {
			t.Errorf("request %d: serial hops %v != parallel hops %v", i, serial[i].Hops, paths[i].Hops)
		}
	}
}

func TestEngineUpdateCapabilityMovesProvider(t *testing.T) {
	_, eng, caps := buildEngine(t, 61, 30, serve.Config{})

	// Install a fresh service on node a; requests must route through a.
	const flip svc.Service = "flip-service"
	a, b := 2, 17
	capsA := caps[a].Clone()
	capsA.Add(flip)
	if err := eng.UpdateCapability(a, capsA); err != nil {
		t.Fatalf("UpdateCapability(a): %v", err)
	}
	sg, err := svc.Linear(flip)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 1, SG: sg}
	p, err := eng.Resolve(req)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if node := providerOf(t, p, flip); node != a {
		t.Fatalf("flip served by node %d, want %d", node, a)
	}

	// Move the service to node b: the cached route must be invalidated and
	// the new resolution must use b.
	if err := eng.UpdateCapability(a, caps[a]); err != nil {
		t.Fatalf("UpdateCapability(a, restore): %v", err)
	}
	capsB := caps[b].Clone()
	capsB.Add(flip)
	if err := eng.UpdateCapability(b, capsB); err != nil {
		t.Fatalf("UpdateCapability(b): %v", err)
	}
	p, err = eng.Resolve(req)
	if err != nil {
		t.Fatalf("Resolve after move: %v", err)
	}
	if node := providerOf(t, p, flip); node != b {
		t.Fatalf("after move, flip served by node %d, want %d", node, b)
	}
	if err := p.Validate(req, eng.Capabilities()); err != nil {
		t.Errorf("path invalid under current capabilities: %v", err)
	}

	// Remove it everywhere: resolution must fail with ErrNoProviders.
	if err := eng.UpdateCapability(b, caps[b]); err != nil {
		t.Fatalf("UpdateCapability(b, restore): %v", err)
	}
	if _, err := eng.Resolve(req); !errors.Is(err, routing.ErrNoProviders) {
		t.Errorf("Resolve with no provider: err = %v, want ErrNoProviders", err)
	}
}

func TestEngineValidation(t *testing.T) {
	fw, eng, caps := buildEngine(t, 71, 20, serve.Config{})
	if _, err := serve.NewEngine(nil, caps, fw.States(), serve.Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := serve.NewEngine(fw.Topology(), caps[:2], fw.States(), serve.Config{}); err == nil {
		t.Error("mismatched caps accepted")
	}
	if _, err := serve.NewEngine(fw.Topology(), caps, fw.States()[:3], serve.Config{}); err == nil {
		t.Error("mismatched states accepted")
	}
	sg, err := svc.Linear("s0")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := eng.Resolve(svc.Request{Source: 0, Dest: 999, SG: sg}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := eng.UpdateCapability(-1, svc.NewCapabilitySet("x")); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := eng.UpdateCapability(0, nil); err == nil {
		t.Error("nil capability set accepted")
	}
}

// providerOf returns the node serving service s on path p.
func providerOf(t *testing.T, p *routing.Path, s svc.Service) int {
	t.Helper()
	for _, h := range p.Hops {
		if h.Service == s {
			return h.Node
		}
	}
	t.Fatalf("path %v has no hop serving %q", p, s)
	return -1
}
