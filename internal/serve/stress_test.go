package serve_test

import (
	"math/rand"
	"sync"
	"testing"

	"hfc/internal/serve"
	"hfc/internal/svc"
)

// TestEngineStressChurn hammers one engine with concurrent resolutions
// while a churn goroutine moves a service between two carrier nodes
// (modelling provider crash/recovery) and fires cluster- and engine-wide
// invalidations. Run under -race in CI (the serve-engine job).
//
// Invariants asserted:
//
//   - a resolution concurrent with churn returns a path valid under the
//     union of the old and new deployments (linearizable: the route was
//     correct at some instant during the call);
//   - a path serving the churned service uses one of the two carriers,
//     never any other node (no torn state);
//   - requests for unchurned services always validate against the static
//     deployment;
//   - after churn stops and a final invalidation, every resolution is
//     valid under exactly the current deployment — no stale route served.
func TestEngineStressChurn(t *testing.T) {
	_, eng, caps := buildEngine(t, 81, 30, serve.Config{})

	const flip svc.Service = "churned-service"
	carrierA, carrierB := 3, 19
	withFlip := func(node int) svc.CapabilitySet {
		c := caps[node].Clone()
		c.Add(flip)
		return c
	}
	// Union deployment: during churn a path is valid if each hop's service
	// was installed on its node under the old or the new deployment.
	unionCaps := make([]svc.CapabilitySet, len(caps))
	for i, c := range caps {
		unionCaps[i] = c.Clone()
	}
	unionCaps[carrierA].Add(flip)
	unionCaps[carrierB].Add(flip)

	if err := eng.UpdateCapability(carrierA, withFlip(carrierA)); err != nil {
		t.Fatalf("seed carrier: %v", err)
	}

	flipSG, err := svc.Linear(flip)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	flipReqs := []svc.Request{
		{Source: 0, Dest: 1, SG: flipSG},
		{Source: 7, Dest: 12, SG: flipSG},
		{Source: 22, Dest: 5, SG: flipSG},
	}
	rng := rand.New(rand.NewSource(82))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	staticReqs := make([]svc.Request, 12)
	for i := range staticReqs {
		if staticReqs[i], err = gen.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}

	const (
		resolvers = 6
		rounds    = 40
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: alternate the flip carrier, with interleaved invalidations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			from, to := carrierA, carrierB
			if i%2 == 1 {
				from, to = carrierB, carrierA
			}
			// Install on the new carrier before removing from the old one,
			// so the service never vanishes entirely (resolvers treat
			// ErrNoProviders as a hard failure).
			if err := eng.UpdateCapability(to, withFlip(to)); err != nil {
				t.Errorf("churn %d install: %v", i, err)
				return
			}
			if err := eng.UpdateCapability(from, caps[from]); err != nil {
				t.Errorf("churn %d remove: %v", i, err)
				return
			}
			switch i % 5 {
			case 2:
				eng.InvalidateCluster(eng.Topology().ClusterOf(to))
			case 4:
				eng.InvalidateAll()
			}
		}
	}()

	for g := 0; g < resolvers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := flipReqs[(g+i)%len(flipReqs)]
				p, err := eng.Resolve(req)
				if err != nil {
					t.Errorf("resolver %d: flip request: %v", g, err)
					return
				}
				if err := p.Validate(req, unionCaps); err != nil {
					t.Errorf("resolver %d: path invalid under union deployment: %v", g, err)
					return
				}
				for _, h := range p.Hops {
					if h.Service == flip && h.Node != carrierA && h.Node != carrierB {
						t.Errorf("resolver %d: %q served by node %d, not a carrier", g, flip, h.Node)
						return
					}
				}
				sreq := staticReqs[(g*7+i)%len(staticReqs)]
				sp, err := eng.Resolve(sreq)
				if err != nil {
					t.Errorf("resolver %d: static request: %v", g, err)
					return
				}
				if err := sp.Validate(sreq, unionCaps); err != nil {
					t.Errorf("resolver %d: static path invalid: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: pin the carrier, invalidate everything, and require every
	// resolution to be exact under the final deployment.
	if err := eng.UpdateCapability(carrierA, withFlip(carrierA)); err != nil {
		t.Fatalf("final install: %v", err)
	}
	if err := eng.UpdateCapability(carrierB, caps[carrierB]); err != nil {
		t.Fatalf("final remove: %v", err)
	}
	eng.InvalidateAll()
	final := eng.Capabilities()
	for _, req := range flipReqs {
		p, err := eng.Resolve(req)
		if err != nil {
			t.Fatalf("final resolve: %v", err)
		}
		if err := p.Validate(req, final); err != nil {
			t.Errorf("stale route served after final invalidation: %v", err)
		}
		for _, h := range p.Hops {
			if h.Service == flip && h.Node != carrierA {
				t.Errorf("final %q carrier = %d, want %d", flip, h.Node, carrierA)
			}
		}
	}
	for _, req := range staticReqs {
		p, err := eng.Resolve(req)
		if err != nil {
			t.Fatalf("final static resolve: %v", err)
		}
		if err := p.Validate(req, final); err != nil {
			t.Errorf("final static path invalid: %v", err)
		}
	}

	st := eng.Stats()
	if st.Resolutions == 0 {
		t.Error("stress run performed no full resolutions")
	}
	if st.Cache.Hits == 0 {
		t.Error("stress run never hit the cache")
	}
}
