// Package topology generates simulated Internet topologies. Its centerpiece
// is the transit-stub model of Zegura, Calvert and Bhattacharjee ("How to
// Model an Internetwork", INFOCOM 1996), which the paper uses (via GT-ITM and
// ns-2) as the physical substrate for all of its experiments. Flat random and
// Waxman generators are provided for comparison and testing.
//
// A Topology couples an undirected weighted graph (edge weights are one-way
// propagation delays, in milliseconds) with per-node metadata describing the
// transit/stub role of each node. All generation is driven by an explicit
// *rand.Rand so experiments are reproducible.
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hfc/internal/graph"
)

// NodeKind distinguishes backbone (transit) routers from edge (stub) routers.
type NodeKind int

// Node kinds. Enums start at one so the zero value is invalid, per style.
const (
	KindTransit NodeKind = iota + 1
	KindStub
)

// String returns a short human-readable label.
func (k NodeKind) String() string {
	switch k {
	case KindTransit:
		return "transit"
	case KindStub:
		return "stub"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is the metadata record of a topology vertex.
type Node struct {
	// ID is the vertex index in the topology graph.
	ID int
	// Kind is the node's role.
	Kind NodeKind
	// TransitDomain is the index of the transit domain this node belongs
	// to (for stub nodes: the domain of the transit node they hang off).
	TransitDomain int
	// StubDomain is the global index of the node's stub domain, or -1 for
	// transit nodes.
	StubDomain int
}

// Topology is a generated physical network.
type Topology struct {
	// Graph holds the link structure; weights are propagation delays (ms).
	Graph *graph.Graph
	// BandwidthGraph mirrors Graph's structure exactly (same vertices,
	// same insertion order) with link capacities in Mbps as weights. It
	// supports the QoS extension (§7 future work); generators that do not
	// model bandwidth leave it nil.
	BandwidthGraph *graph.Graph
	// Nodes holds per-vertex metadata, indexed by vertex ID.
	Nodes []Node
	// NumTransitDomains and NumStubDomains describe the domain structure
	// (both zero for flat generators).
	NumTransitDomains int
	NumStubDomains    int
}

// LinkBandwidth returns the largest capacity among the direct links between
// u and v, or 0 when no direct link (or no bandwidth model) exists.
func (t *Topology) LinkBandwidth(u, v int) float64 {
	if t.BandwidthGraph == nil {
		return 0
	}
	best := 0.0
	t.BandwidthGraph.Neighbors(u, func(w int, bw float64) {
		if w == v && bw > best {
			best = bw
		}
	})
	return best
}

// StubNodes returns the IDs of all stub nodes, in increasing order. For flat
// topologies (no domain structure) it returns all node IDs, since every node
// is an eligible overlay host.
func (t *Topology) StubNodes() []int {
	var out []int
	for _, n := range t.Nodes {
		if n.Kind == KindStub {
			out = append(out, n.ID)
		}
	}
	if out == nil {
		for _, n := range t.Nodes {
			out = append(out, n.ID)
		}
	}
	return out
}

// N returns the number of nodes.
func (t *Topology) N() int { return t.Graph.N() }

// DelayRange is an inclusive range of link delays in milliseconds.
type DelayRange struct {
	Lo, Hi float64
}

func (r DelayRange) sample(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

func (r DelayRange) valid() bool { return r.Lo > 0 && r.Hi >= r.Lo }

// TransitStubConfig parameterizes the transit-stub generator. Total node
// count is TransitDomains · TransitNodesPerDomain · (1 + StubsPerTransitNode
// · StubNodesPerDomain).
type TransitStubConfig struct {
	// TransitDomains is the number of backbone domains (≥ 1).
	TransitDomains int
	// TransitNodesPerDomain is the number of routers per backbone domain
	// (≥ 1).
	TransitNodesPerDomain int
	// StubsPerTransitNode is the number of stub domains attached to each
	// transit node (≥ 0).
	StubsPerTransitNode int
	// StubNodesPerDomain is the number of nodes per stub domain (≥ 1).
	StubNodesPerDomain int
	// ExtraIntraTransitEdgeProb adds redundancy inside transit domains
	// beyond the spanning tree (0..1).
	ExtraIntraTransitEdgeProb float64
	// ExtraIntraStubEdgeProb adds redundancy inside stub domains (0..1).
	ExtraIntraStubEdgeProb float64
	// Delay classes for the four link types. The hierarchy
	// InterTransit > IntraTransit > TransitStub > IntraStub mirrors
	// real Internet delay structure and is what gives overlay nodes the
	// clusterable distance structure the paper exploits.
	InterTransitDelay DelayRange
	IntraTransitDelay DelayRange
	TransitStubDelay  DelayRange
	IntraStubDelay    DelayRange
	// Bandwidth classes (Mbps) for the same four link types, used by the
	// QoS extension: fat core links, thin edge links.
	InterTransitBandwidth DelayRange
	IntraTransitBandwidth DelayRange
	TransitStubBandwidth  DelayRange
	IntraStubBandwidth    DelayRange
}

// DefaultTransitStubConfig returns the delay classes and redundancy used
// throughout the reproduction, with the domain counts left for the caller.
func DefaultTransitStubConfig() TransitStubConfig {
	return TransitStubConfig{
		TransitDomains:            3,
		TransitNodesPerDomain:     4,
		StubsPerTransitNode:       3,
		StubNodesPerDomain:        8,
		ExtraIntraTransitEdgeProb: 0.4,
		ExtraIntraStubEdgeProb:    0.25,
		InterTransitDelay:         DelayRange{Lo: 20, Hi: 60},
		IntraTransitDelay:         DelayRange{Lo: 8, Hi: 25},
		TransitStubDelay:          DelayRange{Lo: 2, Hi: 10},
		IntraStubDelay:            DelayRange{Lo: 0.5, Hi: 4},
		InterTransitBandwidth:     DelayRange{Lo: 1000, Hi: 2500},
		IntraTransitBandwidth:     DelayRange{Lo: 600, Hi: 1500},
		TransitStubBandwidth:      DelayRange{Lo: 100, Hi: 400},
		IntraStubBandwidth:        DelayRange{Lo: 20, Hi: 100},
	}
}

// ConfigForSize returns a transit-stub configuration whose total node count
// approximates target (≥ 100), scaling the number of transit domains while
// keeping per-domain structure fixed. With the default per-domain structure
// each transit domain contributes 100 nodes, so the paper's physical sizes
// {300, 600, 900, 1200} map to {3, 6, 9, 12} transit domains exactly.
func ConfigForSize(target int) (TransitStubConfig, error) {
	if target < 100 {
		return TransitStubConfig{}, fmt.Errorf("topology: target size %d below minimum 100", target)
	}
	cfg := DefaultTransitStubConfig()
	perDomain := cfg.TransitNodesPerDomain * (1 + cfg.StubsPerTransitNode*cfg.StubNodesPerDomain)
	cfg.TransitDomains = (target + perDomain/2) / perDomain
	if cfg.TransitDomains < 1 {
		cfg.TransitDomains = 1
	}
	return cfg, nil
}

// TotalNodes returns the node count the configuration will generate.
func (c TransitStubConfig) TotalNodes() int {
	return c.TransitDomains * c.TransitNodesPerDomain * (1 + c.StubsPerTransitNode*c.StubNodesPerDomain)
}

func (c TransitStubConfig) validate() error {
	switch {
	case c.TransitDomains < 1:
		return errors.New("topology: TransitDomains must be >= 1")
	case c.TransitNodesPerDomain < 1:
		return errors.New("topology: TransitNodesPerDomain must be >= 1")
	case c.StubsPerTransitNode < 0:
		return errors.New("topology: StubsPerTransitNode must be >= 0")
	case c.StubsPerTransitNode > 0 && c.StubNodesPerDomain < 1:
		return errors.New("topology: StubNodesPerDomain must be >= 1 when stubs are attached")
	case !c.InterTransitDelay.valid(), !c.IntraTransitDelay.valid(),
		!c.TransitStubDelay.valid(), !c.IntraStubDelay.valid():
		return errors.New("topology: delay ranges must satisfy 0 < Lo <= Hi")
	}
	if c.modelsBandwidth() {
		if !c.InterTransitBandwidth.valid() || !c.IntraTransitBandwidth.valid() ||
			!c.TransitStubBandwidth.valid() || !c.IntraStubBandwidth.valid() {
			return errors.New("topology: bandwidth ranges must either all be zero or all satisfy 0 < Lo <= Hi")
		}
	}
	return nil
}

// modelsBandwidth reports whether any bandwidth class is configured.
func (c TransitStubConfig) modelsBandwidth() bool {
	zero := DelayRange{}
	return c.InterTransitBandwidth != zero || c.IntraTransitBandwidth != zero ||
		c.TransitStubBandwidth != zero || c.IntraStubBandwidth != zero
}

// GenerateTransitStub builds a connected transit-stub topology. Inside each
// domain the nodes are connected by a random spanning tree plus extra random
// edges; transit domains are themselves connected by a random spanning tree
// over domains plus redundant inter-domain links; each stub domain attaches
// to its transit node by a single access link.
func GenerateTransitStub(rng *rand.Rand, cfg TransitStubConfig) (*Topology, error) {
	if rng == nil {
		return nil, errors.New("topology: nil rng")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	total := cfg.TotalNodes()
	g := graph.New(total, false)
	var bwG *graph.Graph
	if cfg.modelsBandwidth() {
		bwG = graph.New(total, false)
	}
	nodes := make([]Node, 0, total)

	// addEdge inserts the link into the delay graph and, when bandwidth is
	// modelled, a structurally identical edge into the bandwidth graph.
	addEdge := func(u, v int, delays, bws DelayRange) error {
		if err := g.AddEdge(u, v, delays.sample(rng)); err != nil {
			return fmt.Errorf("topology: %w", err)
		}
		if bwG != nil {
			if err := bwG.AddEdge(u, v, bws.sample(rng)); err != nil {
				return fmt.Errorf("topology: %w", err)
			}
		}
		return nil
	}

	// Allocate transit nodes first: domain d owns IDs
	// [d·NT, (d+1)·NT).
	nt := cfg.TransitNodesPerDomain
	for d := 0; d < cfg.TransitDomains; d++ {
		for i := 0; i < nt; i++ {
			nodes = append(nodes, Node{
				ID:            d*nt + i,
				Kind:          KindTransit,
				TransitDomain: d,
				StubDomain:    -1,
			})
		}
	}

	// Intra-transit-domain connectivity.
	for d := 0; d < cfg.TransitDomains; d++ {
		base := d * nt
		if err := connectRandomly(rng, addEdge, base, nt, cfg.IntraTransitDelay, cfg.IntraTransitBandwidth, cfg.ExtraIntraTransitEdgeProb); err != nil {
			return nil, err
		}
	}

	// Inter-transit-domain connectivity: random spanning tree over domains
	// plus one redundant link per extra domain pair with probability 0.3.
	if cfg.TransitDomains > 1 {
		order := rng.Perm(cfg.TransitDomains)
		for i := 1; i < len(order); i++ {
			a := order[rng.Intn(i)]
			b := order[i]
			if err := addEdge(a*nt+rng.Intn(nt), b*nt+rng.Intn(nt), cfg.InterTransitDelay, cfg.InterTransitBandwidth); err != nil {
				return nil, err
			}
		}
		for a := 0; a < cfg.TransitDomains; a++ {
			for b := a + 1; b < cfg.TransitDomains; b++ {
				if rng.Float64() < 0.3 {
					if err := addEdge(a*nt+rng.Intn(nt), b*nt+rng.Intn(nt), cfg.InterTransitDelay, cfg.InterTransitBandwidth); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Stub domains.
	next := cfg.TransitDomains * nt
	stubDomain := 0
	for d := 0; d < cfg.TransitDomains; d++ {
		for i := 0; i < nt; i++ {
			transitID := d*nt + i
			for s := 0; s < cfg.StubsPerTransitNode; s++ {
				base := next
				for j := 0; j < cfg.StubNodesPerDomain; j++ {
					nodes = append(nodes, Node{
						ID:            base + j,
						Kind:          KindStub,
						TransitDomain: d,
						StubDomain:    stubDomain,
					})
				}
				next += cfg.StubNodesPerDomain
				if err := connectRandomly(rng, addEdge, base, cfg.StubNodesPerDomain, cfg.IntraStubDelay, cfg.IntraStubBandwidth, cfg.ExtraIntraStubEdgeProb); err != nil {
					return nil, err
				}
				// Access link from a random stub node to the transit node.
				if err := addEdge(transitID, base+rng.Intn(cfg.StubNodesPerDomain), cfg.TransitStubDelay, cfg.TransitStubBandwidth); err != nil {
					return nil, err
				}
				stubDomain++
			}
		}
	}

	topo := &Topology{
		Graph:             g,
		BandwidthGraph:    bwG,
		Nodes:             nodes,
		NumTransitDomains: cfg.TransitDomains,
		NumStubDomains:    stubDomain,
	}
	if !g.Connected() {
		// Construction guarantees connectivity; reaching here indicates a
		// bug, but we surface it as an error rather than panicking.
		return nil, errors.New("topology: generated transit-stub graph is disconnected")
	}
	return topo, nil
}

// connectRandomly wires the n nodes [base, base+n) into a random spanning
// tree and then adds each remaining pair with probability extraProb. Edges
// are inserted through addEdge so delay and bandwidth stay paired.
func connectRandomly(rng *rand.Rand, addEdge func(u, v int, delays, bws DelayRange) error, base, n int, delays, bws DelayRange, extraProb float64) error {
	if n == 1 {
		return nil
	}
	perm := rng.Perm(n)
	inTree := make(map[[2]int]bool, n-1)
	for i := 1; i < n; i++ {
		u := base + perm[rng.Intn(i)]
		v := base + perm[i]
		if err := addEdge(u, v, delays, bws); err != nil {
			return err
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		inTree[[2]int{a, b}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if inTree[[2]int{base + i, base + j}] {
				continue
			}
			if rng.Float64() < extraProb {
				if err := addEdge(base+i, base+j, delays, bws); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GenerateWaxman builds a flat Waxman random graph: n nodes scattered
// uniformly on a plane of the given side length, with each pair (u,v) linked
// with probability alpha·exp(−d(u,v)/(beta·L√2)), and delays proportional to
// Euclidean distance. Connectivity is ensured by adding a random spanning
// tree first.
func GenerateWaxman(rng *rand.Rand, n int, side, alpha, beta float64) (*Topology, error) {
	if rng == nil {
		return nil, errors.New("topology: nil rng")
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: node count %d must be >= 1", n)
	}
	if side <= 0 || alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topology: invalid waxman parameters side=%v alpha=%v beta=%v", side, alpha, beta)
	}
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * side, rng.Float64() * side}
	}
	dist := func(i, j int) float64 {
		return math.Hypot(pts[i][0]-pts[j][0], pts[i][1]-pts[j][1])
	}
	g := graph.New(n, false)
	// Delay is distance-proportional: 0.05 ms per unit, floored so that no
	// link is free.
	delay := func(d float64) float64 { return math.Max(0.05*d, 0.1) }
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[rng.Intn(i)], perm[i]
		if err := g.AddEdge(u, v, delay(dist(u, v))); err != nil {
			return nil, fmt.Errorf("topology: %w", err)
		}
	}
	maxD := side * math.Sqrt2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < alpha*math.Exp(-dist(i, j)/(beta*maxD)) {
				if err := g.AddEdge(i, j, delay(dist(i, j))); err != nil {
					return nil, fmt.Errorf("topology: %w", err)
				}
			}
		}
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, Kind: KindStub, TransitDomain: -1, StubDomain: -1}
	}
	return &Topology{Graph: g, Nodes: nodes}, nil
}

// GenerateFlatRandom builds a connected Erdős–Rényi-style graph with uniform
// random delays in the given range. It is used as a structureless control in
// tests: distance-based clustering should find little structure in it.
func GenerateFlatRandom(rng *rand.Rand, n int, edgeProb float64, delays DelayRange) (*Topology, error) {
	if rng == nil {
		return nil, errors.New("topology: nil rng")
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: node count %d must be >= 1", n)
	}
	if edgeProb < 0 || edgeProb > 1 {
		return nil, fmt.Errorf("topology: edge probability %v out of [0,1]", edgeProb)
	}
	if !delays.valid() {
		return nil, errors.New("topology: delay range must satisfy 0 < Lo <= Hi")
	}
	g := graph.New(n, false)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(perm[rng.Intn(i)], perm[i], delays.sample(rng)); err != nil {
			return nil, fmt.Errorf("topology: %w", err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				if err := g.AddEdge(i, j, delays.sample(rng)); err != nil {
					return nil, fmt.Errorf("topology: %w", err)
				}
			}
		}
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, Kind: KindStub, TransitDomain: -1, StubDomain: -1}
	}
	return &Topology{Graph: g, Nodes: nodes}, nil
}
