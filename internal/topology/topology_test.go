package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigForSizeMatchesPaperSizes(t *testing.T) {
	// The paper's physical topology sizes must be reproduced exactly by the
	// default per-domain structure.
	for _, want := range []int{300, 600, 900, 1200} {
		cfg, err := ConfigForSize(want)
		if err != nil {
			t.Fatalf("ConfigForSize(%d): %v", want, err)
		}
		if got := cfg.TotalNodes(); got != want {
			t.Errorf("ConfigForSize(%d).TotalNodes() = %d", want, got)
		}
	}
}

func TestConfigForSizeTooSmall(t *testing.T) {
	if _, err := ConfigForSize(50); err == nil {
		t.Error("ConfigForSize(50) succeeded, want error")
	}
}

func TestGenerateTransitStubStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultTransitStubConfig()
	topo, err := GenerateTransitStub(rng, cfg)
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	if topo.N() != cfg.TotalNodes() {
		t.Errorf("N() = %d, want %d", topo.N(), cfg.TotalNodes())
	}
	if !topo.Graph.Connected() {
		t.Error("generated topology disconnected")
	}
	// Count node kinds.
	transit, stub := 0, 0
	for _, n := range topo.Nodes {
		switch n.Kind {
		case KindTransit:
			transit++
			if n.StubDomain != -1 {
				t.Errorf("transit node %d has stub domain %d", n.ID, n.StubDomain)
			}
		case KindStub:
			stub++
			if n.StubDomain < 0 || n.StubDomain >= topo.NumStubDomains {
				t.Errorf("stub node %d has out-of-range stub domain %d", n.ID, n.StubDomain)
			}
		default:
			t.Errorf("node %d has invalid kind %v", n.ID, n.Kind)
		}
		if n.TransitDomain < 0 || n.TransitDomain >= cfg.TransitDomains {
			t.Errorf("node %d has out-of-range transit domain %d", n.ID, n.TransitDomain)
		}
	}
	wantTransit := cfg.TransitDomains * cfg.TransitNodesPerDomain
	if transit != wantTransit {
		t.Errorf("transit nodes = %d, want %d", transit, wantTransit)
	}
	if stub != topo.N()-wantTransit {
		t.Errorf("stub nodes = %d, want %d", stub, topo.N()-wantTransit)
	}
	wantStubDomains := wantTransit * cfg.StubsPerTransitNode
	if topo.NumStubDomains != wantStubDomains {
		t.Errorf("NumStubDomains = %d, want %d", topo.NumStubDomains, wantStubDomains)
	}
}

func TestGenerateTransitStubDeterministic(t *testing.T) {
	cfg := DefaultTransitStubConfig()
	a, err := GenerateTransitStub(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	b, err := GenerateTransitStub(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGenerateTransitStubValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := DefaultTransitStubConfig()
	if _, err := GenerateTransitStub(nil, good); err == nil {
		t.Error("nil rng accepted")
	}
	bads := []func(*TransitStubConfig){
		func(c *TransitStubConfig) { c.TransitDomains = 0 },
		func(c *TransitStubConfig) { c.TransitNodesPerDomain = 0 },
		func(c *TransitStubConfig) { c.StubsPerTransitNode = -1 },
		func(c *TransitStubConfig) { c.StubNodesPerDomain = 0 },
		func(c *TransitStubConfig) { c.IntraStubDelay = DelayRange{Lo: 0, Hi: 1} },
		func(c *TransitStubConfig) { c.InterTransitDelay = DelayRange{Lo: 5, Hi: 2} },
	}
	for i, mutate := range bads {
		cfg := good
		mutate(&cfg)
		if _, err := GenerateTransitStub(rng, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStubNodesReturnsOnlyStubs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo, err := GenerateTransitStub(rng, DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	for _, id := range topo.StubNodes() {
		if topo.Nodes[id].Kind != KindStub {
			t.Errorf("StubNodes() includes non-stub node %d", id)
		}
	}
}

func TestStubNodesFlatTopologyReturnsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo, err := GenerateFlatRandom(rng, 10, 0.2, DelayRange{Lo: 1, Hi: 5})
	if err != nil {
		t.Fatalf("GenerateFlatRandom: %v", err)
	}
	if got := len(topo.StubNodes()); got != 10 {
		t.Errorf("flat StubNodes() = %d nodes, want 10", got)
	}
}

func TestDelayHierarchyProperty(t *testing.T) {
	// Intra-stub-domain shortest paths must be short relative to paths that
	// cross transit domains: the structure the clustering pipeline relies on.
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultTransitStubConfig()
	topo, err := GenerateTransitStub(rng, cfg)
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	apsp, err := topo.Graph.AllPairsShortestPaths()
	if err != nil {
		t.Fatalf("APSP: %v", err)
	}
	var intraStub, interTransit []float64
	for i, a := range topo.Nodes {
		for j := i + 1; j < len(topo.Nodes); j++ {
			b := topo.Nodes[j]
			if a.Kind != KindStub || b.Kind != KindStub {
				continue
			}
			d := apsp.Dist(a.ID, b.ID)
			switch {
			case a.StubDomain == b.StubDomain:
				intraStub = append(intraStub, d)
			case a.TransitDomain != b.TransitDomain:
				interTransit = append(interTransit, d)
			}
		}
	}
	if len(intraStub) == 0 || len(interTransit) == 0 {
		t.Fatal("no sample pairs collected")
	}
	meanIntra := mean(intraStub)
	meanInter := mean(interTransit)
	if meanInter < 3*meanIntra {
		t.Errorf("delay hierarchy too flat: intra-stub mean %.2f, inter-transit mean %.2f", meanIntra, meanInter)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestGenerateWaxman(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	topo, err := GenerateWaxman(rng, 60, 100, 0.4, 0.2)
	if err != nil {
		t.Fatalf("GenerateWaxman: %v", err)
	}
	if topo.N() != 60 {
		t.Errorf("N() = %d, want 60", topo.N())
	}
	if !topo.Graph.Connected() {
		t.Error("waxman topology disconnected")
	}
}

func TestGenerateWaxmanValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		n           int
		side, a, b  float64
		description string
	}{
		{0, 100, 0.4, 0.2, "zero nodes"},
		{10, -1, 0.4, 0.2, "negative side"},
		{10, 100, 0, 0.2, "zero alpha"},
		{10, 100, 1.5, 0.2, "alpha > 1"},
		{10, 100, 0.4, 0, "zero beta"},
	}
	for _, c := range cases {
		if _, err := GenerateWaxman(rng, c.n, c.side, c.a, c.b); err == nil {
			t.Errorf("GenerateWaxman accepted %s", c.description)
		}
	}
	if _, err := GenerateWaxman(nil, 10, 100, 0.4, 0.2); err == nil {
		t.Error("GenerateWaxman accepted nil rng")
	}
}

func TestGenerateFlatRandomConnectedProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		topo, err := GenerateFlatRandom(rng, n, 0.05, DelayRange{Lo: 1, Hi: 10})
		if err != nil {
			return false
		}
		return topo.Graph.Connected()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateFlatRandomValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenerateFlatRandom(rng, 0, 0.1, DelayRange{Lo: 1, Hi: 2}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := GenerateFlatRandom(rng, 5, -0.1, DelayRange{Lo: 1, Hi: 2}); err == nil {
		t.Error("negative edge probability accepted")
	}
	if _, err := GenerateFlatRandom(rng, 5, 1.1, DelayRange{Lo: 1, Hi: 2}); err == nil {
		t.Error("edge probability > 1 accepted")
	}
	if _, err := GenerateFlatRandom(rng, 5, 0.1, DelayRange{Lo: 0, Hi: 2}); err == nil {
		t.Error("zero-delay range accepted")
	}
	if _, err := GenerateFlatRandom(nil, 5, 0.1, DelayRange{Lo: 1, Hi: 2}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestNodeKindString(t *testing.T) {
	if KindTransit.String() != "transit" || KindStub.String() != "stub" {
		t.Error("NodeKind.String() wrong for valid kinds")
	}
	if NodeKind(0).String() == "" {
		t.Error("NodeKind(0).String() empty")
	}
}
