package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig, err := GenerateTransitStub(rng, DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.N() != orig.N() {
		t.Fatalf("N = %d, want %d", got.N(), orig.N())
	}
	if got.NumTransitDomains != orig.NumTransitDomains || got.NumStubDomains != orig.NumStubDomains {
		t.Errorf("domain counts differ: (%d,%d) vs (%d,%d)",
			got.NumTransitDomains, got.NumStubDomains, orig.NumTransitDomains, orig.NumStubDomains)
	}
	for i := range orig.Nodes {
		if got.Nodes[i] != orig.Nodes[i] {
			t.Fatalf("node %d = %+v, want %+v", i, got.Nodes[i], orig.Nodes[i])
		}
	}
	oe, ge := orig.Graph.Edges(), got.Graph.Edges()
	if len(oe) != len(ge) {
		t.Fatalf("edge counts differ: %d vs %d", len(ge), len(oe))
	}
	for i := range oe {
		if oe[i] != ge[i] {
			t.Fatalf("edge %d = %v, want %v", i, ge[i], oe[i])
		}
	}
	if got.BandwidthGraph == nil {
		t.Fatal("bandwidth graph lost in round trip")
	}
	ob, gb := orig.BandwidthGraph.Edges(), got.BandwidthGraph.Edges()
	for i := range ob {
		if ob[i] != gb[i] {
			t.Fatalf("bandwidth edge %d = %v, want %v", i, gb[i], ob[i])
		}
	}
}

func TestJSONRoundTripWithoutBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig, err := GenerateFlatRandom(rng, 20, 0.2, DelayRange{Lo: 1, Hi: 5})
	if err != nil {
		t.Fatalf("GenerateFlatRandom: %v", err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.BandwidthGraph != nil {
		t.Error("bandwidth graph invented from nothing")
	}
	if got.N() != 20 {
		t.Errorf("N = %d, want 20", got.N())
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"garbage", "not json"},
		{"empty", `{"nodes":[],"edges":[]}`},
		{"bad kind", `{"nodes":[{"id":0,"kind":"router"}],"edges":[]}`},
		{"non-dense ids", `{"nodes":[{"id":5,"kind":"stub"}],"edges":[]}`},
		{"edge out of range", `{"nodes":[{"id":0,"kind":"stub"}],"edges":[{"from":0,"to":7,"delay_ms":1}]}`},
		{"negative delay", `{"nodes":[{"id":0,"kind":"stub"},{"id":1,"kind":"stub"}],"edges":[{"from":0,"to":1,"delay_ms":-1}]}`},
		{"partial bandwidth", `{"nodes":[{"id":0,"kind":"stub"},{"id":1,"kind":"stub"},{"id":2,"kind":"stub"}],"edges":[{"from":0,"to":1,"delay_ms":1,"bandwidth_mbps":10},{"from":1,"to":2,"delay_ms":1}]}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWriteJSONNil(t *testing.T) {
	var buf bytes.Buffer
	var topo *Topology
	if err := topo.WriteJSON(&buf); err == nil {
		t.Error("nil topology accepted")
	}
}
