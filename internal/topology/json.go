package topology

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hfc/internal/graph"
)

// jsonTopology is the serialized wire form of a Topology.
type jsonTopology struct {
	Nodes          []jsonNode `json:"nodes"`
	Edges          []jsonEdge `json:"edges"`
	TransitDomains int        `json:"transit_domains"`
	StubDomains    int        `json:"stub_domains"`
}

type jsonNode struct {
	ID            int    `json:"id"`
	Kind          string `json:"kind"`
	TransitDomain int    `json:"transit_domain"`
	StubDomain    int    `json:"stub_domain"`
}

type jsonEdge struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	DelayMs   float64 `json:"delay_ms"`
	Bandwidth float64 `json:"bandwidth_mbps,omitempty"`
}

// WriteJSON serializes the topology (structure, delays, node metadata, and
// the bandwidth model when present) to w as indented JSON.
func (t *Topology) WriteJSON(w io.Writer) error {
	if t == nil || t.Graph == nil {
		return errors.New("topology: nil topology")
	}
	jt := jsonTopology{
		TransitDomains: t.NumTransitDomains,
		StubDomains:    t.NumStubDomains,
	}
	for _, n := range t.Nodes {
		jt.Nodes = append(jt.Nodes, jsonNode{
			ID:            n.ID,
			Kind:          n.Kind.String(),
			TransitDomain: n.TransitDomain,
			StubDomain:    n.StubDomain,
		})
	}
	delayEdges := t.Graph.Edges()
	var bwEdges []graph.Edge
	if t.BandwidthGraph != nil {
		bwEdges = t.BandwidthGraph.Edges()
		if len(bwEdges) != len(delayEdges) {
			return fmt.Errorf("topology: bandwidth graph has %d edges, delay graph %d", len(bwEdges), len(delayEdges))
		}
	}
	for i, e := range delayEdges {
		je := jsonEdge{From: e.From, To: e.To, DelayMs: e.Weight}
		if bwEdges != nil {
			// Edges() reports undirected edges in deterministic adjacency
			// order, and both graphs were built with identical inserts, so
			// positions correspond.
			if bwEdges[i].From != e.From || bwEdges[i].To != e.To {
				return fmt.Errorf("topology: bandwidth edge %d is (%d,%d), delay edge is (%d,%d)",
					i, bwEdges[i].From, bwEdges[i].To, e.From, e.To)
			}
			je.Bandwidth = bwEdges[i].Weight
		}
		jt.Edges = append(jt.Edges, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON deserializes a topology written by WriteJSON, validating node
// IDs, kinds, and edge endpoints.
func ReadJSON(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology: decoding: %w", err)
	}
	n := len(jt.Nodes)
	if n == 0 {
		return nil, errors.New("topology: no nodes in input")
	}
	nodes := make([]Node, n)
	for i, jn := range jt.Nodes {
		if jn.ID != i {
			return nil, fmt.Errorf("topology: node %d has ID %d (IDs must be dense and ordered)", i, jn.ID)
		}
		var kind NodeKind
		switch jn.Kind {
		case "transit":
			kind = KindTransit
		case "stub":
			kind = KindStub
		default:
			return nil, fmt.Errorf("topology: node %d has unknown kind %q", i, jn.Kind)
		}
		nodes[i] = Node{ID: jn.ID, Kind: kind, TransitDomain: jn.TransitDomain, StubDomain: jn.StubDomain}
	}
	g := graph.New(n, false)
	hasBW := false
	for _, je := range jt.Edges {
		if je.Bandwidth > 0 {
			hasBW = true
			break
		}
	}
	var bwG *graph.Graph
	if hasBW {
		bwG = graph.New(n, false)
	}
	for i, je := range jt.Edges {
		if err := g.AddEdge(je.From, je.To, je.DelayMs); err != nil {
			return nil, fmt.Errorf("topology: edge %d: %w", i, err)
		}
		if bwG != nil {
			if je.Bandwidth <= 0 {
				return nil, fmt.Errorf("topology: edge %d missing bandwidth in a bandwidth-modelled topology", i)
			}
			if err := bwG.AddEdge(je.From, je.To, je.Bandwidth); err != nil {
				return nil, fmt.Errorf("topology: edge %d: %w", i, err)
			}
		}
	}
	return &Topology{
		Graph:             g,
		BandwidthGraph:    bwG,
		Nodes:             nodes,
		NumTransitDomains: jt.TransitDomains,
		NumStubDomains:    jt.StubDomains,
	}, nil
}
