package mlhfc

import (
	"math/rand"
	"testing"
)

// TestSuperBorderMatchesBruteScan pins the geo-engine equivalence the build
// relies on: the indexed closest-pair election for every super-border must
// produce exactly the pair a brute first-minimum scan over the sorted group
// members elects, tie rule included. The world is large enough (hundreds of
// nodes per group) that geo.Auto actually builds spatial indexes rather
// than falling back to brute internally.
func TestSuperBorderMatchesBruteScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cmap := triWorld(t, rng, 4, 4, 40)
	topo, err := Build(cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	k := topo.NumGroups()
	if k < 2 {
		t.Fatalf("got %d groups, want >= 2", k)
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			// Brute reference: first minimum over sorted members of a × b.
			best := -1.0
			bu, bv := -1, -1
			for _, u := range topo.Members(a) {
				for _, v := range topo.Members(b) {
					if d := cmap.Dist(u, v); best < 0 || d < best {
						best, bu, bv = d, u, v
					}
				}
			}
			gu, gv, err := topo.SuperBorder(a, b)
			if err != nil {
				t.Fatalf("SuperBorder(%d,%d): %v", a, b, err)
			}
			if gu != bu || gv != bv {
				t.Errorf("super-border (%d,%d): indexed (%d,%d), brute (%d,%d) at dist %v",
					a, b, gu, gv, bu, bv, best)
			}
		}
	}
}
