// Package mlhfc generalizes the paper's bi-level HFC topology to three
// levels — the scaling direction the paper's "bi-level HFC hierarchy"
// phrasing implies. Overlay nodes are first grouped coarsely
// (super-clusters); each group internally runs the complete bi-level HFC
// construction (MST clustering + closest-pair borders); groups are fully
// connected pairwise through super-border node pairs. Any two nodes are at
// most 4 overlay hops apart, and per-node state drops from
// |cluster| + #clusters (bi-level) to |cluster| + #clusters-in-own-group +
// #groups.
//
// The implementation deliberately reuses the bi-level machinery: each
// group's interior IS an hfc.Topology over group-local indices, and
// per-group child requests are resolved by the §5 hierarchical router
// unchanged. This package adds the third tier: super-aggregates, the
// group-level path search, and the extra divide step.
package mlhfc

import (
	"errors"
	"fmt"
	"sort"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/geo"
	"hfc/internal/graph"
	"hfc/internal/hfc"
	"hfc/internal/par"
)

// Config selects the two clustering granularities.
type Config struct {
	// Top configures the grouping of cluster CENTROIDS into
	// super-clusters — "clustering the clusters". Default: the library
	// default MST settings with the global-median criterion.
	Top cluster.Config
	// Inner configures the fine per-node clustering whose clusters become
	// the interior bi-level clusters. Default: the library default.
	Inner cluster.Config
	// TargetGroups, when > 1, overrides Top's detection with a fixed
	// fan-out: the longest centroid-MST edges are cut until exactly this
	// many groups remain (bounded by the fine-cluster count). Overlay
	// embeddings often lack a crisp second distance scale, so operators
	// pick the hierarchy fan-out — √(#clusters) balances the levels.
	TargetGroups int
	// Workers bounds the worker pool for the per-group interior builds and
	// super-border scans (0/1 serial, negative = all cores). The topology
	// is identical for any value.
	Workers int
}

// DefaultConfig returns the granularities used by the experiments: the
// library default for the fine pass, and the global-median criterion for
// the (small) centroid set, where local neighbourhood averages are
// unreliable.
func DefaultConfig() Config {
	top := cluster.DefaultConfig()
	top.Criterion = cluster.CriterionGlobalMedian
	return Config{Top: top, Inner: cluster.DefaultConfig()}
}

// Topology is a constructed tri-level HFC overlay.
type Topology struct {
	cmap *coords.Map
	// groupOf maps a global node index to its group.
	groupOf []int
	// groups maps a group ID to its sorted global node indices; the slice
	// index of a node within its group is its group-local index.
	groups [][]int
	// local maps a global node to its group-local index.
	local []int
	// perGroup holds each group's interior bi-level HFC topology over
	// group-local indices.
	perGroup []*hfc.Topology
	// superBorder[a][b] is the global node of group a closest to group b
	// (-1 on the diagonal) — the super-border pair mirrors §3.3 one level
	// up.
	superBorder [][]int
}

// Build constructs the tri-level topology from embedded coordinates: a
// fine per-node clustering first, then a second Zahn pass over the fine
// clusters' centroids to form groups (every fine cluster lands wholly in
// one group), then the interior HFC per group reusing the fine clusters.
func Build(cmap *coords.Map, cfg Config) (*Topology, error) {
	if cmap == nil {
		return nil, errors.New("mlhfc: nil coordinate map")
	}
	fine, err := cluster.Cluster(cmap.N(), cmap.Dist, cfg.Inner)
	if err != nil {
		return nil, fmt.Errorf("mlhfc: fine clustering: %w", err)
	}
	// Centroids of the fine clusters.
	dim := cmap.Dim
	centroids := make([]coords.Point, fine.NumClusters())
	for c, members := range fine.Clusters {
		centroid := make(coords.Point, dim)
		for _, m := range members {
			for d := 0; d < dim; d++ {
				centroid[d] += cmap.Points[m][d] / float64(len(members))
			}
		}
		centroids[c] = centroid
	}
	centroidDist := func(i, j int) float64 { return coords.Dist(centroids[i], centroids[j]) }
	var clusterGroup []int
	if cfg.TargetGroups > 1 {
		clusterGroup, err = cutToTarget(len(centroids), centroidDist, cfg.TargetGroups)
		if err != nil {
			return nil, fmt.Errorf("mlhfc: centroid grouping: %w", err)
		}
	} else {
		top, err := cluster.Cluster(len(centroids), centroidDist, cfg.Top)
		if err != nil {
			return nil, fmt.Errorf("mlhfc: centroid grouping: %w", err)
		}
		clusterGroup = top.Assignment
	}
	// Node's group = group of its fine cluster.
	assignment := make([]int, cmap.N())
	for node, c := range fine.Assignment {
		assignment[node] = clusterGroup[c]
	}
	grouping := groupingFromAssignment(assignment)
	return BuildFromGroupingWorkers(cmap, grouping, cfg.Inner, cfg.Workers)
}

// cutToTarget removes the longest MST edges over the n points until exactly
// min(target, n) components remain, returning the component assignment.
func cutToTarget(n int, dist func(i, j int) float64, target int) ([]int, error) {
	mst, err := graph.EuclideanMST(n, dist)
	if err != nil {
		return nil, err
	}
	if target > n {
		target = n
	}
	sort.Slice(mst, func(a, b int) bool { return mst[a].Weight < mst[b].Weight })
	uf := graph.NewUnionFind(n)
	// Keep the n-target shortest edges; cutting the target-1 longest ones
	// leaves exactly target components.
	for _, e := range mst[:n-target] {
		uf.Union(e.From, e.To)
	}
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = uf.Find(i)
	}
	return assignment, nil
}

// groupingFromAssignment densifies an assignment vector.
func groupingFromAssignment(assignment []int) *cluster.Result {
	remap := make(map[int]int)
	var clusters [][]int
	dense := make([]int, len(assignment))
	for node, c := range assignment {
		id, ok := remap[c]
		if !ok {
			id = len(clusters)
			remap[c] = id
			clusters = append(clusters, nil)
		}
		dense[node] = id
		clusters[id] = append(clusters[id], node)
	}
	return &cluster.Result{Assignment: dense, Clusters: clusters}
}

// BuildFromGrouping constructs the tri-level topology from an explicit
// top-level grouping (used by tests and by callers with their own grouping
// policy).
func BuildFromGrouping(cmap *coords.Map, grouping *cluster.Result, inner cluster.Config) (*Topology, error) {
	return BuildFromGroupingWorkers(cmap, grouping, inner, 1)
}

// BuildFromGroupingWorkers is BuildFromGrouping with the per-group interior
// HFC constructions and the super-border scans fanned out across a bounded
// worker pool. Each group's construction and each group pair's scan is
// independent and rng-free, and results merge by index, so the topology is
// bit-identical to the serial build for any worker count.
func BuildFromGroupingWorkers(cmap *coords.Map, grouping *cluster.Result, inner cluster.Config, workers int) (*Topology, error) {
	if cmap == nil {
		return nil, errors.New("mlhfc: nil coordinate map")
	}
	if grouping == nil {
		return nil, errors.New("mlhfc: nil grouping")
	}
	if len(grouping.Assignment) != cmap.N() {
		return nil, fmt.Errorf("mlhfc: grouping covers %d nodes but map has %d", len(grouping.Assignment), cmap.N())
	}
	t := &Topology{
		cmap:    cmap,
		groupOf: append([]int(nil), grouping.Assignment...),
		groups:  make([][]int, grouping.NumClusters()),
		local:   make([]int, cmap.N()),
	}
	for g, members := range grouping.Clusters {
		t.groups[g] = append([]int(nil), members...)
		sort.Ints(t.groups[g])
		for li, node := range t.groups[g] {
			t.local[node] = li
		}
	}

	// Interior bi-level HFC per group, one worker slot per group.
	t.perGroup = make([]*hfc.Topology, len(t.groups))
	if err := par.ForErr(len(t.groups), workers, func(g int) error {
		members := t.groups[g]
		pts := make([]coords.Point, len(members))
		for li, node := range members {
			pts[li] = cmap.Points[node].Clone()
		}
		sub, err := coords.NewMap(pts)
		if err != nil {
			return fmt.Errorf("mlhfc: group %d map: %w", g, err)
		}
		// The interior clustering runs over GROUP-LOCAL indices, so any
		// Points the caller supplied (global indices) must be replaced by
		// the group's own sub-map — which also switches the interior MST
		// onto the sub-quadratic geometric engine, the difference between
		// minutes and seconds at n=100k.
		innerCfg := inner
		innerCfg.Points = sub.Points
		clustering, err := cluster.Cluster(sub.N(), sub.Dist, innerCfg)
		if err != nil {
			return fmt.Errorf("mlhfc: group %d clustering: %w", g, err)
		}
		topo, err := hfc.Build(sub, clustering)
		if err != nil {
			return fmt.Errorf("mlhfc: group %d hfc: %w", g, err)
		}
		t.perGroup[g] = topo
		return nil
	}); err != nil {
		return nil, err
	}

	// Super-border pairs: closest cross pair per group pair, each pair's
	// scan in its own slot.
	k := len(t.groups)
	t.superBorder = make([][]int, k)
	for a := range t.superBorder {
		t.superBorder[a] = make([]int, k)
		for b := range t.superBorder[a] {
			t.superBorder[a][b] = -1
		}
	}
	type groupPair struct{ a, b int }
	pairs := make([]groupPair, 0, k*(k-1)/2)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			pairs = append(pairs, groupPair{a, b})
		}
	}
	// One spatial index per group, shared by that group's k-1 pair scans;
	// geo's (Dist, A, B) tie rule equals the old brute scan's first-minimum
	// over sorted members, so the elected pairs are bit-identical.
	indexes := make([]geo.Index, k)
	if err := par.ForErr(k, workers, func(g int) error {
		idx, err := geo.NewIndex(cmap.Points, t.groups[g], geo.Auto)
		if err != nil {
			return fmt.Errorf("mlhfc: group %d index: %w", g, err)
		}
		indexes[g] = idx
		return nil
	}); err != nil {
		return nil, err
	}
	par.For(len(pairs), workers, func(i int) {
		a, b := pairs[i].a, pairs[i].b
		if p, ok := geo.ClosestPairIndexed(cmap.Points, t.groups[a], indexes[b], nil, nil); ok {
			t.superBorder[a][b] = p.A
			t.superBorder[b][a] = p.B
		}
	})
	return t, nil
}

// N returns the number of overlay nodes.
func (t *Topology) N() int { return t.cmap.N() }

// NumGroups returns the number of super-clusters.
func (t *Topology) NumGroups() int { return len(t.groups) }

// GroupOf returns the group of a global node.
func (t *Topology) GroupOf(node int) int { return t.groupOf[node] }

// Members returns a group's global node list (sorted; shared slice).
func (t *Topology) Members(g int) []int { return t.groups[g] }

// Interior returns group g's bi-level HFC topology (group-local indices).
func (t *Topology) Interior(g int) *hfc.Topology { return t.perGroup[g] }

// ToLocal translates a global node index to its group-local index.
func (t *Topology) ToLocal(node int) int { return t.local[node] }

// ToGlobal translates a group-local index back to the global node index.
func (t *Topology) ToGlobal(g, localIdx int) int { return t.groups[g][localIdx] }

// SuperBorder returns the super-border pair between two distinct groups,
// oriented (inA, inB), as global node indices.
func (t *Topology) SuperBorder(a, b int) (inA, inB int, err error) {
	if a == b {
		return 0, 0, fmt.Errorf("mlhfc: no super-border within group %d", a)
	}
	if a < 0 || a >= len(t.groups) || b < 0 || b >= len(t.groups) {
		return 0, 0, fmt.Errorf("mlhfc: group pair (%d,%d) out of range", a, b)
	}
	return t.superBorder[a][b], t.superBorder[b][a], nil
}

// Dist returns the embedded distance between two global nodes.
func (t *Topology) Dist(u, v int) float64 { return t.cmap.Dist(u, v) }

// CoordinateStateSize is the number of coordinate records node keeps under
// the tri-level scheme: its own inner cluster's members, the border proxies
// of its own group's interior, and every super-border node in the system
// (deduplicated) — the tri-level analogue of Fig. 9(a).
func (t *Topology) CoordinateStateSize(node int) (int, error) {
	g := t.groupOf[node]
	interior := t.perGroup[g]
	view, err := interior.View(t.local[node])
	if err != nil {
		return 0, fmt.Errorf("mlhfc: %w", err)
	}
	known := make(map[int]bool)
	for li := range view.Coords {
		known[t.ToGlobal(g, li)] = true
	}
	for a := 0; a < len(t.groups); a++ {
		for b := 0; b < len(t.groups); b++ {
			if sb := t.superBorder[a][b]; sb >= 0 {
				known[sb] = true
			}
		}
	}
	return len(known), nil
}

// ServiceStateSize is the tri-level analogue of Fig. 9(b): one entry per
// own-inner-cluster proxy, one aggregate per cluster in the own group, and
// one super-aggregate per group.
func (t *Topology) ServiceStateSize(node int) int {
	g := t.groupOf[node]
	interior := t.perGroup[g]
	ownCluster := interior.ClusterOf(t.local[node])
	return len(interior.Members(ownCluster)) + interior.NumClusters() + len(t.groups)
}

// MaxOverlayHops is the tri-level reachability bound: at most two
// super-border relays plus two inner border relays.
const MaxOverlayHops = 5

// Validate checks structural invariants across all three levels.
func (t *Topology) Validate() error {
	seen := make(map[int]bool, t.N())
	for g, members := range t.groups {
		for li, node := range members {
			if t.groupOf[node] != g {
				return fmt.Errorf("mlhfc: node %d listed in group %d but assigned to %d", node, g, t.groupOf[node])
			}
			if t.local[node] != li {
				return fmt.Errorf("mlhfc: node %d local index %d, want %d", node, t.local[node], li)
			}
			if seen[node] {
				return fmt.Errorf("mlhfc: node %d appears in multiple groups", node)
			}
			seen[node] = true
		}
		if err := t.perGroup[g].Validate(); err != nil {
			return fmt.Errorf("mlhfc: group %d interior: %w", g, err)
		}
	}
	if len(seen) != t.N() {
		return fmt.Errorf("mlhfc: groups cover %d of %d nodes", len(seen), t.N())
	}
	for a := 0; a < len(t.groups); a++ {
		for b := 0; b < len(t.groups); b++ {
			if a == b {
				continue
			}
			sb := t.superBorder[a][b]
			if sb < 0 || t.groupOf[sb] != a {
				return fmt.Errorf("mlhfc: super-border of (%d,%d) is %d (group %d)", a, b, sb, t.groupOf[sb])
			}
		}
	}
	return nil
}
