package mlhfc

import (
	"errors"
	"fmt"
	"math"

	"hfc/internal/routing"
	"hfc/internal/svc"
)

// GroupChild is one piece of a request dissected at the super level: a run
// of consecutive services mapped to the same group, with group-internal
// endpoints (super-border nodes except at the original endpoints).
type GroupChild struct {
	// Group is the super-cluster resolving this child.
	Group int
	// Source and Dest are GLOBAL node indices inside Group.
	Source, Dest int
	// Services is the linear run to place.
	Services []svc.Service
}

// Result carries the tri-level routing outcome.
type Result struct {
	// GSP is the group-level service path: (SG vertex, group) in order.
	GSP []struct{ SGVertex, Group int }
	// Children are the per-group child requests.
	Children []GroupChild
	// Path is the final composed concrete path (global indices).
	Path *routing.Path
}

// Route resolves req with three-phase divide-and-conquer: (1) the
// destination node maps the request onto groups using the super-aggregates
// and a back-tracking relax over super-border distances; (2) the request is
// dissected into per-group children; (3) each child is resolved by the
// unchanged §5 bi-level hierarchical router inside its group, and the
// answers compose.
func Route(t *Topology, states *States, req svc.Request) (*Result, error) {
	if t == nil || states == nil {
		return nil, errors.New("mlhfc: nil topology or states")
	}
	if err := req.Validate(t.N()); err != nil {
		return nil, err
	}
	gs, gd := t.GroupOf(req.Source), t.GroupOf(req.Dest)

	gsp, err := groupLevelPath(t, states, req, gs, gd)
	if err != nil {
		return nil, err
	}
	children, err := dissect(t, req, gsp, gs, gd)
	if err != nil {
		return nil, err
	}

	var hops []routing.Hop
	cost := 0.0
	for i, child := range children {
		p, err := solveGroupChild(t, states, child)
		if err != nil {
			return nil, fmt.Errorf("mlhfc: child %d (group %d): %w", i, child.Group, err)
		}
		hops = append(hops, p.Hops...)
		cost += p.DecisionCost
		if i+1 < len(children) {
			u, v, err := t.SuperBorder(child.Group, children[i+1].Group)
			if err != nil {
				return nil, err
			}
			cost += t.Dist(u, v)
		}
	}
	res := &Result{GSP: gsp, Children: children, Path: &routing.Path{Hops: compact(hops), DecisionCost: cost}}
	return res, nil
}

// groupLevelPath is the phase-1 search: the super-level analogue of §5.1
// step 2, with labels carrying the super-border entry node.
func groupLevelPath(t *Topology, states *States, req svc.Request, gs, gd int) ([]struct{ SGVertex, Group int }, error) {
	sg := req.SG
	nv := sg.Len()
	cands := make([][]int, nv)
	for v := 0; v < nv; v++ {
		cands[v] = states.GroupsProviding(sg.Services[v])
		if len(cands[v]) == 0 {
			return nil, fmt.Errorf("mlhfc: service %q: %w", sg.Services[v], routing.ErrNoProviders)
		}
	}
	order, err := sgTopo(sg)
	if err != nil {
		return nil, err
	}
	edgesByTail := make([][]int, nv)
	for _, e := range sg.Edges {
		edgesByTail[e[0]] = append(edgesByTail[e[0]], e[1])
	}

	type label struct {
		dist             float64
		entry            int // global super-border node, -1 inside source group
		parentV, parentG int
	}
	labels := make(map[[2]int]label)
	better := func(v, g int, cand label) {
		if old, ok := labels[[2]int{v, g}]; !ok || cand.dist < old.dist {
			labels[[2]int{v, g}] = cand
		}
	}
	internal := func(entry, exit int) float64 {
		if entry == -1 || entry == exit {
			return 0
		}
		return t.Dist(entry, exit)
	}

	for _, v := range sg.Sources() {
		for _, g := range cands[v] {
			l := label{parentV: -1, parentG: -1}
			if g == gs {
				l.dist, l.entry = 0, -1
			} else {
				out, in, err := t.SuperBorder(gs, g)
				if err != nil {
					return nil, err
				}
				l.dist = t.Dist(out, in)
				l.entry = in
			}
			better(v, g, l)
		}
	}
	for _, u := range order {
		for _, g := range cands[u] {
			ul, ok := labels[[2]int{u, g}]
			if !ok {
				continue
			}
			for _, v := range edgesByTail[u] {
				for _, g2 := range cands[v] {
					nl := label{parentV: u, parentG: g}
					if g2 == g {
						nl.dist, nl.entry = ul.dist, ul.entry
					} else {
						out, in, err := t.SuperBorder(g, g2)
						if err != nil {
							return nil, err
						}
						nl.dist = ul.dist + internal(ul.entry, out) + t.Dist(out, in)
						nl.entry = in
					}
					better(v, g2, nl)
				}
			}
		}
	}

	best := math.Inf(1)
	bestV, bestG := -1, -1
	for _, v := range sg.Sinks() {
		for _, g := range cands[v] {
			l, ok := labels[[2]int{v, g}]
			if !ok {
				continue
			}
			total := l.dist
			if g == gd {
				total += internal(l.entry, req.Dest)
			} else {
				out, in, err := t.SuperBorder(g, gd)
				if err != nil {
					return nil, err
				}
				total += internal(l.entry, out) + t.Dist(out, in) + t.Dist(in, req.Dest)
			}
			if total < best {
				best, bestV, bestG = total, v, g
			}
		}
	}
	if bestV == -1 {
		return nil, routing.ErrInfeasible
	}
	var rev []struct{ SGVertex, Group int }
	v, g := bestV, bestG
	for v != -1 {
		rev = append(rev, struct{ SGVertex, Group int }{v, g})
		l := labels[[2]int{v, g}]
		v, g = l.parentV, l.parentG
	}
	out := make([]struct{ SGVertex, Group int }, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}

func sgTopo(sg *svc.Graph) ([]int, error) {
	n := sg.Len()
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range sg.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("mlhfc: service graph contains a cycle")
	}
	return order, nil
}

// dissect splits the request along the GSP into per-group children.
func dissect(t *Topology, req svc.Request, gsp []struct{ SGVertex, Group int }, gs, gd int) ([]GroupChild, error) {
	type run struct {
		group    int
		services []svc.Service
	}
	runs := []run{{group: gs}}
	for _, e := range gsp {
		cur := &runs[len(runs)-1]
		if e.Group == cur.group {
			cur.services = append(cur.services, req.SG.Services[e.SGVertex])
			continue
		}
		runs = append(runs, run{group: e.Group, services: []svc.Service{req.SG.Services[e.SGVertex]}})
	}
	if runs[len(runs)-1].group != gd {
		runs = append(runs, run{group: gd})
	}
	children := make([]GroupChild, len(runs))
	for i, ru := range runs {
		child := GroupChild{Group: ru.group, Services: ru.services}
		if i == 0 {
			child.Source = req.Source
		} else {
			src, _, err := t.SuperBorder(ru.group, runs[i-1].group)
			if err != nil {
				return nil, err
			}
			child.Source = src
		}
		if i == len(runs)-1 {
			child.Dest = req.Dest
		} else {
			dst, _, err := t.SuperBorder(ru.group, runs[i+1].group)
			if err != nil {
				return nil, err
			}
			child.Dest = dst
		}
		children[i] = child
	}
	return children, nil
}

// solveGroupChild resolves one child inside its group via the unchanged
// bi-level hierarchical router, translating between global and group-local
// indices.
func solveGroupChild(t *Topology, states *States, child GroupChild) (*routing.Path, error) {
	g := child.Group
	if t.GroupOf(child.Source) != g || t.GroupOf(child.Dest) != g {
		return nil, fmt.Errorf("mlhfc: child endpoints (%d,%d) not in group %d", child.Source, child.Dest, g)
	}
	localSrc, localDst := t.ToLocal(child.Source), t.ToLocal(child.Dest)
	if len(child.Services) == 0 {
		if localSrc == localDst {
			return &routing.Path{Hops: []routing.Hop{{Node: child.Source}}}, nil
		}
		interior := t.Interior(g)
		seq, err := interior.OverlayHopPath(localSrc, localDst)
		if err != nil {
			return nil, err
		}
		hops := make([]routing.Hop, len(seq))
		for i, li := range seq {
			hops[i] = routing.Hop{Node: t.ToGlobal(g, li)}
		}
		return &routing.Path{Hops: hops, DecisionCost: interior.PathLength(seq)}, nil
	}
	sg, err := svc.Linear(child.Services...)
	if err != nil {
		return nil, err
	}
	localReq := svc.Request{Source: localSrc, Dest: localDst, SG: sg}
	res, err := routing.NewHierarchicalRouter(t.Interior(g), states.PerGroup[g], localDst, routing.RelaxBacktrack)
	if err != nil {
		return nil, err
	}
	local, err := res.Route(localReq)
	if err != nil {
		return nil, err
	}
	hops := make([]routing.Hop, len(local.Path.Hops))
	for i, h := range local.Path.Hops {
		hops[i] = routing.Hop{Node: t.ToGlobal(g, h.Node), Service: h.Service}
	}
	return &routing.Path{Hops: hops, DecisionCost: local.Path.DecisionCost}, nil
}

// compact removes serviceless hops duplicating an adjacent hop's node.
func compact(hops []routing.Hop) []routing.Hop {
	out := make([]routing.Hop, 0, len(hops))
	for i, h := range hops {
		if h.Service == "" {
			if len(out) > 0 && out[len(out)-1].Node == h.Node {
				continue
			}
			if i+1 < len(hops) && hops[i+1].Node == h.Node {
				continue
			}
		}
		out = append(out, h)
	}
	return out
}
