package mlhfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// triWorld generates a three-scale point set: `groups` regions far apart,
// each containing `blobs` clusters of `per` nodes.
func triWorld(t *testing.T, rng *rand.Rand, groups, blobs, per int) *coords.Map {
	t.Helper()
	var pts []coords.Point
	for g := 0; g < groups; g++ {
		gx := float64(g%3) * 5000
		gy := float64(g/3) * 5000
		for b := 0; b < blobs; b++ {
			bx := gx + float64(b%2)*400
			by := gy + float64(b/2)*400
			for i := 0; i < per; i++ {
				pts = append(pts, coords.Point{bx + rng.Float64()*40, by + rng.Float64()*40})
			}
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return cmap
}

func buildTri(t *testing.T, seed int64) (*Topology, []svc.CapabilitySet, *States) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cmap := triWorld(t, rng, 3, 3, 6)
	topo, err := Build(cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cat, err := svc.NewCatalog(15)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, cmap.N(), cat, 2, 5)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	states, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	return topo, caps, states
}

func TestBuildDetectsThreeScales(t *testing.T) {
	topo, _, _ := buildTri(t, 1)
	if topo.NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3", topo.NumGroups())
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Each group's interior should have detected multiple clusters.
	for g := 0; g < topo.NumGroups(); g++ {
		if k := topo.Interior(g).NumClusters(); k < 2 {
			t.Errorf("group %d has %d inner clusters, want >= 2", g, k)
		}
	}
}

func TestIndexTranslationRoundTrip(t *testing.T) {
	topo, _, _ := buildTri(t, 2)
	for node := 0; node < topo.N(); node++ {
		g := topo.GroupOf(node)
		if got := topo.ToGlobal(g, topo.ToLocal(node)); got != node {
			t.Fatalf("node %d round-trips to %d", node, got)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err == nil {
		t.Error("nil map accepted")
	}
	cmap, err := coords.NewMap([]coords.Point{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if _, err := BuildFromGrouping(cmap, nil, cluster.DefaultConfig()); err == nil {
		t.Error("nil grouping accepted")
	}
	if _, err := BuildFromGrouping(cmap, &cluster.Result{Assignment: []int{0}, Clusters: [][]int{{0}}}, cluster.DefaultConfig()); err == nil {
		t.Error("size-mismatched grouping accepted")
	}
}

func TestDistributeAndVerify(t *testing.T) {
	topo, caps, states := buildTri(t, 3)
	if err := Verify(topo, caps, states); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if states.Messages.Total() == 0 {
		t.Error("no protocol traffic recorded")
	}
	// Corruption detection.
	states.Super[0].Add("bogus")
	if err := Verify(topo, caps, states); err == nil {
		t.Error("corrupted super-aggregate passed verification")
	}
}

func TestDistributeValidation(t *testing.T) {
	topo, caps, _ := buildTri(t, 4)
	if _, err := Distribute(nil, caps); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Distribute(topo, caps[:2]); err == nil {
		t.Error("short caps accepted")
	}
}

func TestRouteProducesValidPaths(t *testing.T) {
	topo, caps, states := buildTri(t, 5)
	rng := rand.New(rand.NewSource(6))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 30; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		res, err := Route(topo, states, req)
		if err != nil {
			t.Fatalf("request %d: Route: %v", i, err)
		}
		if err := res.Path.Validate(req, caps); err != nil {
			t.Fatalf("request %d: invalid path %v: %v", i, res.Path, err)
		}
		if len(res.GSP) != req.SG.Len() {
			t.Fatalf("request %d: GSP covers %d of %d services", i, len(res.GSP), req.SG.Len())
		}
	}
}

func TestRouteMissingService(t *testing.T) {
	topo, _, states := buildTri(t, 7)
	sg, err := svc.Linear("nowhere")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := Route(topo, states, svc.Request{Source: 0, Dest: 1, SG: sg}); err == nil {
		t.Error("undeployed service routed")
	}
}

func TestRouteValidation(t *testing.T) {
	topo, _, states := buildTri(t, 8)
	sg, err := svc.Linear("s0")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := Route(nil, states, svc.Request{Source: 0, Dest: 1, SG: sg}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Route(topo, nil, svc.Request{Source: 0, Dest: 1, SG: sg}); err == nil {
		t.Error("nil states accepted")
	}
	if _, err := Route(topo, states, svc.Request{Source: -1, Dest: 1, SG: sg}); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestStateSizesBelowBiLevel(t *testing.T) {
	// The whole point of the third level: per-node state below the
	// bi-level scheme on the same overlay.
	rng := rand.New(rand.NewSource(9))
	cmap := triWorld(t, rng, 4, 4, 8)
	tri, err := Build(cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Bi-level over the same coordinates.
	flatClustering, err := cluster.Cluster(cmap.N(), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	bi, err := hfc.Build(cmap, flatClustering)
	if err != nil {
		t.Fatalf("hfc.Build: %v", err)
	}
	var triCoord, biCoord, triSvcTotal, biSvcTotal int
	for node := 0; node < cmap.N(); node++ {
		tc, err := tri.CoordinateStateSize(node)
		if err != nil {
			t.Fatalf("CoordinateStateSize: %v", err)
		}
		view, err := bi.View(node)
		if err != nil {
			t.Fatalf("View: %v", err)
		}
		triCoord += tc
		biCoord += view.CoordinateStateSize()
		triSvcTotal += tri.ServiceStateSize(node)
		biSvcTotal += len(bi.Members(bi.ClusterOf(node))) + bi.NumClusters()
	}
	t.Logf("coord states: tri %.1f vs bi %.1f per node; svc states: tri %.1f vs bi %.1f",
		float64(triCoord)/float64(cmap.N()), float64(biCoord)/float64(cmap.N()),
		float64(triSvcTotal)/float64(cmap.N()), float64(biSvcTotal)/float64(cmap.N()))
	if triSvcTotal >= biSvcTotal {
		t.Errorf("tri-level service state %d not below bi-level %d", triSvcTotal, biSvcTotal)
	}
	if triCoord >= biCoord {
		t.Errorf("tri-level coordinate state %d not below bi-level %d", triCoord, biCoord)
	}
}

func TestTriNeverBeatsUnconstrainedOptimumProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cmap := triWorld(t, rng, 3, 2, 5)
		topo, err := Build(cmap, DefaultConfig())
		if err != nil {
			return false
		}
		cat, err := svc.NewCatalog(10)
		if err != nil {
			return false
		}
		caps, err := svc.RandomCapabilities(rng, cmap.N(), cat, 2, 4)
		if err != nil {
			return false
		}
		states, err := Distribute(topo, caps)
		if err != nil {
			return false
		}
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			req, err := gen.Next()
			if err != nil {
				return false
			}
			res, err := Route(topo, states, req)
			if err != nil {
				return false
			}
			if err := res.Path.Validate(req, caps); err != nil {
				return false
			}
			flat, err := routing.FindPath(req, routing.CapabilityProviders(caps), routing.OracleFunc(cmap.Dist), nil)
			if err != nil {
				return false
			}
			if res.Path.Length(cmap.Dist) < flat.DecisionCost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestSingleGroupDegeneratesToBiLevel(t *testing.T) {
	// Force one group: the tri-level route must equal the bi-level route.
	rng := rand.New(rand.NewSource(11))
	var pts []coords.Point
	for b := 0; b < 3; b++ {
		for i := 0; i < 6; i++ {
			pts = append(pts, coords.Point{float64(b)*400 + rng.Float64()*40, rng.Float64() * 40})
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	grouping := &cluster.Result{Assignment: make([]int, len(pts)), Clusters: [][]int{allOf(len(pts))}}
	topo, err := BuildFromGrouping(cmap, grouping, cluster.DefaultConfig())
	if err != nil {
		t.Fatalf("BuildFromGrouping: %v", err)
	}
	cat, err := svc.NewCatalog(10)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, len(pts), cat, 2, 4)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	states, err := Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	// Bi-level reference over the same inner clustering.
	inner := topo.Interior(0)
	biStates, _, err := state.Distribute(inner, caps)
	if err != nil {
		t.Fatalf("state.Distribute: %v", err)
	}
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 10; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		triRes, err := Route(topo, states, req)
		if err != nil {
			t.Fatalf("tri Route: %v", err)
		}
		biPath, err := routing.RouteHierarchical(inner, biStates, req, routing.RelaxBacktrack)
		if err != nil {
			t.Fatalf("bi Route: %v", err)
		}
		if len(triRes.Path.Hops) != len(biPath.Hops) {
			t.Fatalf("request %d: tri %v != bi %v", i, triRes.Path, biPath)
		}
		for h := range biPath.Hops {
			if triRes.Path.Hops[h] != biPath.Hops[h] {
				t.Fatalf("request %d hop %d: tri %v != bi %v", i, h, triRes.Path, biPath)
			}
		}
	}
}

func allOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
