package mlhfc

import (
	"errors"
	"fmt"

	"hfc/internal/state"
	"hfc/internal/svc"
)

// States is the converged tri-level routing state: per group, the bi-level
// §4 state of its members (group-local indices), plus one super-aggregate
// per group — the union of everything deployed in it, which super-border
// nodes would exchange pairwise exactly as §4's border proxies do one level
// down.
type States struct {
	// PerGroup[g] holds group g's converged bi-level states, indexed by
	// group-local node index.
	PerGroup [][]state.NodeState
	// Super[g] is group g's aggregate service set.
	Super []svc.CapabilitySet
	// Messages totals the protocol traffic across all groups' interior
	// rounds plus the super-aggregate exchange.
	Messages state.MessageStats
}

// Distribute runs the tri-level state protocol synchronously: each group's
// interior §4 round, then the super-aggregate exchange between super-border
// pairs with intra-group re-flooding (counted, not simulated node by node —
// the interior machinery is identical to the bi-level case already
// exercised by package state).
func Distribute(t *Topology, caps []svc.CapabilitySet) (*States, error) {
	if t == nil {
		return nil, errors.New("mlhfc: nil topology")
	}
	if len(caps) != t.N() {
		return nil, fmt.Errorf("mlhfc: %d capability sets for %d nodes", len(caps), t.N())
	}
	out := &States{
		PerGroup: make([][]state.NodeState, t.NumGroups()),
		Super:    make([]svc.CapabilitySet, t.NumGroups()),
	}
	for g := 0; g < t.NumGroups(); g++ {
		members := t.Members(g)
		localCaps := make([]svc.CapabilitySet, len(members))
		sets := make([]svc.CapabilitySet, len(members))
		for li, node := range members {
			localCaps[li] = caps[node]
			sets[li] = caps[node]
		}
		states, msgs, err := state.Distribute(t.Interior(g), localCaps)
		if err != nil {
			return nil, fmt.Errorf("mlhfc: group %d state: %w", g, err)
		}
		out.PerGroup[g] = states
		out.Super[g] = svc.Union(sets...)
		out.Messages.LocalMessages += msgs.LocalMessages
		out.Messages.AggregateMessages += msgs.AggregateMessages
		out.Messages.ForwardMessages += msgs.ForwardMessages
	}
	// Super-aggregate exchange: one message per directed group pair, then
	// |group|-1 forwards into each receiving group.
	k := t.NumGroups()
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			out.Messages.AggregateMessages++
			out.Messages.ForwardMessages += len(t.Members(b)) - 1
		}
	}
	return out, nil
}

// GroupsProviding returns the groups whose super-aggregate includes x, in
// increasing order.
func (s *States) GroupsProviding(x svc.Service) []int {
	var out []int
	for g, set := range s.Super {
		if set.Has(x) {
			out = append(out, g)
		}
	}
	return out
}

// Verify checks tri-level convergence: every group's interior state against
// the bi-level verifier, and every super-aggregate against the true union.
func Verify(t *Topology, caps []svc.CapabilitySet, s *States) error {
	if s == nil || len(s.PerGroup) != t.NumGroups() {
		return errors.New("mlhfc: malformed states")
	}
	for g := 0; g < t.NumGroups(); g++ {
		members := t.Members(g)
		localCaps := make([]svc.CapabilitySet, len(members))
		sets := make([]svc.CapabilitySet, len(members))
		for li, node := range members {
			localCaps[li] = caps[node]
			sets[li] = caps[node]
		}
		if err := state.VerifyConvergence(t.Interior(g), localCaps, s.PerGroup[g]); err != nil {
			return fmt.Errorf("mlhfc: group %d: %w", g, err)
		}
		if !s.Super[g].Equal(svc.Union(sets...)) {
			return fmt.Errorf("mlhfc: group %d super-aggregate mismatch", g)
		}
	}
	return nil
}
