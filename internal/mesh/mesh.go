// Package mesh builds the paper's single-level baseline overlay (§6.2): a
// "regular mesh" in which every proxy links to its 1–4 nearest neighbours
// plus 1–2 randomly chosen farther nodes (the long links that keep the
// topology connected), with link lengths taken from the embedded coordinate
// map. It also provides the all-pairs routing tables mesh-based service
// routing needs: every node holds global state, and consecutive services
// are connected along mesh shortest paths through relay proxies.
package mesh

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"hfc/internal/coords"
	"hfc/internal/graph"
	"hfc/internal/par"
)

// Config controls mesh construction, mirroring §6.2's construction rule.
type Config struct {
	// MinNear and MaxNear bound the per-proxy count of nearest-neighbour
	// links (paper: 1–4).
	MinNear, MaxNear int
	// MinFar and MaxFar bound the per-proxy count of random long links
	// (paper: 1–2).
	MinFar, MaxFar int
	// Workers bounds the pool used for the all-pairs routing tables
	// (0/1 serial, negative = all cores). Link construction stays serial
	// — it draws from rng — so the mesh is identical for any value.
	Workers int
}

// DefaultConfig returns the paper's 1–4 nearest plus 1–2 random settings.
func DefaultConfig() Config {
	return Config{MinNear: 1, MaxNear: 4, MinFar: 1, MaxFar: 2}
}

func (c Config) validate(n int) error {
	switch {
	case c.MinNear < 1 || c.MaxNear < c.MinNear:
		return fmt.Errorf("mesh: invalid nearest-neighbour range [%d,%d]", c.MinNear, c.MaxNear)
	case c.MinFar < 0 || c.MaxFar < c.MinFar:
		return fmt.Errorf("mesh: invalid far-link range [%d,%d]", c.MinFar, c.MaxFar)
	case n < 2:
		return fmt.Errorf("mesh: need at least 2 nodes, got %d", n)
	case c.MaxNear >= n:
		return fmt.Errorf("mesh: up to %d nearest neighbours for %d nodes", c.MaxNear, n)
	}
	return nil
}

// Mesh is a constructed overlay mesh plus its routing tables.
type Mesh struct {
	// Graph is the overlay link structure; weights are embedded distances.
	Graph *graph.Graph
	// routes[s] holds the shortest-path tree rooted at s.
	routes []*graph.PathResult
}

// Build constructs a connected mesh over the coordinate map's nodes. Each
// node draws a nearest-link count in [MinNear, MaxNear] and a far-link
// count in [MinFar, MaxFar]; if the result is disconnected, the closest
// cross-component pairs are linked (rare, and keeps the construction honest
// — the paper's far links exist precisely "to make the topology
// connected").
func Build(rng *rand.Rand, cmap *coords.Map, cfg Config) (*Mesh, error) {
	if rng == nil {
		return nil, errors.New("mesh: nil rng")
	}
	if cmap == nil {
		return nil, errors.New("mesh: nil coordinate map")
	}
	n := cmap.N()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}

	g := graph.New(n, false)
	type key [2]int
	present := make(map[key]bool)
	addLink := func(u, v int) error {
		if u == v {
			return nil
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if present[key{a, b}] {
			return nil
		}
		present[key{a, b}] = true
		if err := g.AddEdge(u, v, cmap.Dist(u, v)); err != nil {
			return fmt.Errorf("mesh: %w", err)
		}
		return nil
	}

	// Nearest-neighbour links.
	order := make([]int, n)
	for u := 0; u < n; u++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := cmap.Dist(u, order[a]), cmap.Dist(u, order[b])
			//hfcvet:ignore floatdist exact-tie fallback to index keeps the sort deterministic
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		count := cfg.MinNear + rng.Intn(cfg.MaxNear-cfg.MinNear+1)
		added := 0
		for _, v := range order {
			if v == u {
				continue
			}
			if err := addLink(u, v); err != nil {
				return nil, err
			}
			added++
			if added == count {
				break
			}
		}
	}

	// Random far links.
	for u := 0; u < n; u++ {
		count := cfg.MinFar
		if cfg.MaxFar > cfg.MinFar {
			count += rng.Intn(cfg.MaxFar - cfg.MinFar + 1)
		}
		for i := 0; i < count; i++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			if err := addLink(u, v); err != nil {
				return nil, err
			}
		}
	}

	// Repair connectivity if needed by joining the closest pairs across
	// components.
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			break
		}
		bestU, bestV := -1, -1
		bestD := 0.0
		for _, u := range comps[0] {
			for _, c := range comps[1:] {
				for _, v := range c {
					if d := cmap.Dist(u, v); bestU == -1 || d < bestD {
						bestU, bestV, bestD = u, v, d
					}
				}
			}
		}
		if err := addLink(bestU, bestV); err != nil {
			return nil, err
		}
	}

	// Routing tables: one rng-free Dijkstra per source, fanned out.
	m := &Mesh{Graph: g, routes: make([]*graph.PathResult, n)}
	if err := par.ForErr(n, cfg.Workers, func(s int) error {
		r, err := g.Dijkstra(s)
		if err != nil {
			return fmt.Errorf("mesh: routing table for %d: %w", s, err)
		}
		m.routes[s] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// N returns the number of overlay nodes.
func (m *Mesh) N() int { return m.Graph.N() }

// Dist returns the mesh shortest-path distance between two overlay nodes in
// the embedded metric — the decision-time distance mesh routing uses.
func (m *Mesh) Dist(u, v int) float64 { return m.routes[u].Dist[v] }

// Path returns the overlay node sequence of the mesh shortest path from u
// to v, endpoints included: the relay proxies a mesh service path must
// traverse between two consecutive services.
func (m *Mesh) Path(u, v int) ([]int, error) {
	p, err := m.routes[u].PathTo(v)
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	return p, nil
}

// AvgDegree returns the mean number of mesh links per node.
func (m *Mesh) AvgDegree() float64 {
	return 2 * float64(m.Graph.M()) / float64(m.N())
}
