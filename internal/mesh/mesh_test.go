package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/coords"
)

func randomMap(t *testing.T, rng *rand.Rand, n int) *coords.Map {
	t.Helper()
	pts := make([]coords.Point, n)
	for i := range pts {
		pts[i] = coords.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	m, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

func TestBuildConnectedAndDegreeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cmap := randomMap(t, rng, 80)
	m, err := Build(rng, cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !m.Graph.Connected() {
		t.Fatal("mesh disconnected")
	}
	if m.N() != 80 {
		t.Errorf("N = %d, want 80", m.N())
	}
	// With 1-4 near + 1-2 far per node, average degree lands in [2, 12].
	if d := m.AvgDegree(); d < 2 || d > 12 {
		t.Errorf("AvgDegree = %v outside sane range", d)
	}
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cmap := randomMap(t, rng, 10)
	if _, err := Build(nil, cmap, DefaultConfig()); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Build(rng, nil, DefaultConfig()); err == nil {
		t.Error("nil map accepted")
	}
	bad := DefaultConfig()
	bad.MinNear = 0
	if _, err := Build(rng, cmap, bad); err == nil {
		t.Error("MinNear=0 accepted")
	}
	bad = DefaultConfig()
	bad.MaxNear = 10
	if _, err := Build(rng, cmap, bad); err == nil {
		t.Error("MaxNear >= n accepted")
	}
	bad = DefaultConfig()
	bad.MinFar = -1
	if _, err := Build(rng, cmap, bad); err == nil {
		t.Error("negative MinFar accepted")
	}
	bad = DefaultConfig()
	bad.MaxFar = 0
	if _, err := Build(rng, cmap, bad); err == nil {
		t.Error("MaxFar < MinFar accepted")
	}
	two := randomMap(t, rng, 2)
	cfg := Config{MinNear: 1, MaxNear: 1, MinFar: 0, MaxFar: 0}
	if _, err := Build(rng, two, cfg); err != nil {
		t.Errorf("2-node mesh rejected: %v", err)
	}
}

func TestDistMatchesPathLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cmap := randomMap(t, rng, 40)
	m, err := Build(rng, cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(40), rng.Intn(40)
		path, err := m.Path(u, v)
		if err != nil {
			t.Fatalf("Path(%d,%d): %v", u, v, err)
		}
		if path[0] != u || path[len(path)-1] != v {
			t.Fatalf("Path(%d,%d) endpoints wrong: %v", u, v, path)
		}
		sum := 0.0
		for i := 0; i+1 < len(path); i++ {
			sum += cmap.Dist(path[i], path[i+1])
		}
		if diff := sum - m.Dist(u, v); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Path length %v != Dist %v", sum, m.Dist(u, v))
		}
	}
}

func TestMeshDistAtLeastDirect(t *testing.T) {
	// Mesh shortest-path distance can never beat the direct embedded
	// distance (triangle inequality in Euclidean space).
	rng := rand.New(rand.NewSource(3))
	cmap := randomMap(t, rng, 50)
	m, err := Build(rng, cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	check := func(a, b uint8) bool {
		u, v := int(a)%50, int(b)%50
		return m.Dist(u, v) >= cmap.Dist(u, v)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	cmapRng := rand.New(rand.NewSource(4))
	cmap := randomMap(t, cmapRng, 30)
	a, err := Build(rand.New(rand.NewSource(9)), cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(rand.New(rand.NewSource(9)), cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestBuildRepairsDisconnectedDraw(t *testing.T) {
	// Two tight distant clumps with MinNear too small to bridge them and no
	// far links: the repair pass must connect the components.
	rng := rand.New(rand.NewSource(7))
	var pts []coords.Point
	for c := 0; c < 2; c++ {
		for i := 0; i < 10; i++ {
			pts = append(pts, coords.Point{float64(c)*100000 + rng.Float64(), rng.Float64()})
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	cfg := Config{MinNear: 1, MaxNear: 2, MinFar: 0, MaxFar: 0}
	m, err := Build(rng, cmap, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !m.Graph.Connected() {
		t.Fatal("repair pass left the mesh disconnected")
	}
	// The bridge must be the closest cross pair: both clumps span < 1 unit,
	// so exactly one very long edge exists.
	long := 0
	for _, e := range m.Graph.Edges() {
		if e.Weight > 50000 {
			long++
		}
	}
	if long != 1 {
		t.Errorf("expected exactly 1 bridge edge, found %d", long)
	}
}

func TestPathErrorsOnCorruptRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cmap := randomMap(t, rng, 10)
	m, err := Build(rng, cmap, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := m.Path(0, 0); err != nil {
		t.Errorf("self path errored: %v", err)
	}
	// Out-of-range endpoints surface as errors from the route tables.
	defer func() {
		if recover() != nil {
			t.Log("out-of-range path panicked (acceptable contract)")
		}
	}()
	if p, err := m.Path(0, 9); err != nil || len(p) < 1 {
		t.Errorf("Path(0,9) = %v, %v", p, err)
	}
}
