package routing

// This file reproduces the paper's worked example (§5, Figures 6–8): a
// 13-proxy, 4-cluster HFC overlay, the request
//
//	C0.2  →  S1 → S2 → S3 → S4 → S5  →  C2.1
//
// and checks every intermediate artifact the paper walks through: the
// cluster-level service path (Fig. 7c), the dissected child requests
// (Fig. 7d), each child service path (Fig. 8), and the composed final path
// (Fig. 7e). The coordinates below realize the example's structure (the
// same border pairs, service placement, and optimal choices); absolute
// distances differ from the figure's labels, which a 2-D embedding cannot
// all realize simultaneously.

import (
	"math"
	"testing"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Node indices for readability.
const (
	c00 = iota // C0.0
	c01        // C0.1
	c02        // C0.2 (source)
	c03        // C0.3
	c10        // C1.0
	c11        // C1.1
	c12        // C1.2
	c13        // C1.3
	c20        // C2.0
	c21        // C2.1 (destination)
	c22        // C2.2
	c30        // C3.0
	c31        // C3.1
)

func paperExample(t *testing.T) (*hfc.Topology, []svc.CapabilitySet, []state.NodeState) {
	t.Helper()
	pts := []coords.Point{
		{0, 0},    // C0.0
		{2, 2},    // C0.1
		{-1, 1},   // C0.2
		{-2, -1},  // C0.3
		{20, 2},   // C1.0
		{23, 1},   // C1.1
		{25, 0},   // C1.2
		{22, 4},   // C1.3
		{45, 0},   // C2.0
		{47, 1},   // C2.1
		{46, -2},  // C2.2
		{18, -30}, // C3.0
		{14, -34}, // C3.1
	}
	assignment := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3}
	clusters := [][]int{{c00, c01, c02, c03}, {c10, c11, c12, c13}, {c20, c21, c22}, {c30, c31}}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	topo, err := hfc.Build(cmap, &cluster.Result{Assignment: assignment, Clusters: clusters})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Fig. 6 service placement.
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet("S1"),       // C0.0
		svc.NewCapabilitySet("S4"),       // C0.1
		svc.NewCapabilitySet("S4"),       // C0.2
		svc.NewCapabilitySet("S1"),       // C0.3
		svc.NewCapabilitySet("S2"),       // C1.0
		svc.NewCapabilitySet("S3", "S4"), // C1.1
		svc.NewCapabilitySet("S3"),       // C1.2
		svc.NewCapabilitySet("S2", "S4"), // C1.3
		svc.NewCapabilitySet("S5"),       // C2.0
		svc.NewCapabilitySet("S2"),       // C2.1
		svc.NewCapabilitySet("S5"),       // C2.2
		svc.NewCapabilitySet("S4"),       // C3.0
		svc.NewCapabilitySet("S1", "S4"), // C3.1
	}
	states, _, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	if err := state.VerifyConvergence(topo, caps, states); err != nil {
		t.Fatalf("VerifyConvergence: %v", err)
	}
	return topo, caps, states
}

func paperRequest(t *testing.T) svc.Request {
	t.Helper()
	sg, err := svc.Linear("S1", "S2", "S3", "S4", "S5")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	return svc.Request{Source: c02, Dest: c21, SG: sg}
}

func TestPaperExampleBorderPairs(t *testing.T) {
	topo, _, _ := paperExample(t)
	// The geometry realizes the example's key border pairs.
	cases := []struct {
		a, b       int
		inA, inB   int
		descriptor string
	}{
		{0, 1, c01, c10, "(C0,C1) = (C0.1, C1.0)"},
		{1, 2, c12, c20, "(C1,C2) = (C1.2, C2.0)"},
		{0, 3, c00, c30, "(C0,C3) = (C0.0, C3.0)"},
		{2, 3, c22, c30, "(C2,C3) = (C2.2, C3.0)"},
	}
	for _, c := range cases {
		u, v, err := topo.Border(c.a, c.b)
		if err != nil {
			t.Fatalf("Border(%d,%d): %v", c.a, c.b, err)
		}
		if u != c.inA || v != c.inB {
			t.Errorf("border %s: got (%d,%d)", c.descriptor, u, v)
		}
	}
}

func TestPaperExampleAggregates(t *testing.T) {
	_, _, states := paperExample(t)
	// Fig. 7(a): the aggregate state perceived at C2.1.
	pd := &states[c21]
	want := map[int]svc.CapabilitySet{
		0: svc.NewCapabilitySet("S1", "S4"),
		1: svc.NewCapabilitySet("S2", "S3", "S4"),
		2: svc.NewCapabilitySet("S2", "S5"),
		3: svc.NewCapabilitySet("S1", "S4"),
	}
	for c, set := range want {
		if !pd.SCTC[c].Equal(set) {
			t.Errorf("SCT_C[%d] = %v, want %v", c, pd.SCTC[c], set)
		}
	}
}

func TestPaperExampleCSP(t *testing.T) {
	topo, _, states := paperExample(t)
	r, err := NewHierarchicalRouter(topo, states, c21, RelaxBacktrack)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	res, err := r.Route(paperRequest(t))
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	// Fig. 7(c) bold path: S1/C0 → S2/C1 → S3/C1 → S4/C1 → S5/C2.
	wantClusters := []int{0, 1, 1, 1, 2}
	if len(res.CSP) != len(wantClusters) {
		t.Fatalf("CSP = %v, want 5 entries", res.CSP)
	}
	for i, e := range res.CSP {
		if e.SGVertex != i || e.Cluster != wantClusters[i] {
			t.Errorf("CSP[%d] = %+v, want service %d in cluster %d", i, e, i, wantClusters[i])
		}
	}
}

func TestPaperExampleChildRequests(t *testing.T) {
	topo, _, states := paperExample(t)
	r, err := NewHierarchicalRouter(topo, states, c21, RelaxBacktrack)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	res, err := r.Route(paperRequest(t))
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	// Fig. 7(d): three child requests.
	if len(res.Children) != 3 {
		t.Fatalf("children = %+v, want 3", res.Children)
	}
	want := []ChildRequest{
		{Cluster: 0, Source: c02, Dest: c01, Services: []svc.Service{"S1"}, Resolver: c01},
		{Cluster: 1, Source: c10, Dest: c12, Services: []svc.Service{"S2", "S3", "S4"}, Resolver: c12},
		{Cluster: 2, Source: c20, Dest: c21, Services: []svc.Service{"S5"}, Resolver: c21},
	}
	for i, w := range want {
		got := res.Children[i]
		if got.Cluster != w.Cluster || got.Source != w.Source || got.Dest != w.Dest || got.Resolver != w.Resolver {
			t.Errorf("child %d = %+v, want %+v", i, got, w)
		}
		if len(got.Services) != len(w.Services) {
			t.Errorf("child %d services = %v, want %v", i, got.Services, w.Services)
			continue
		}
		for j := range w.Services {
			if got.Services[j] != w.Services[j] {
				t.Errorf("child %d services = %v, want %v", i, got.Services, w.Services)
				break
			}
		}
	}
}

func TestPaperExampleChildPaths(t *testing.T) {
	topo, _, states := paperExample(t)
	r, err := NewHierarchicalRouter(topo, states, c21, RelaxBacktrack)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	res, err := r.Route(paperRequest(t))
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	// Fig. 8: child 1 maps S1 onto C0.0 (not C0.3); child 2 maps S2/C1.0,
	// S3/C1.1, S4/C1.1; child 3 maps S5 onto C2.0 (not C2.2).
	child1 := res.ChildPaths[0]
	if s := child1.Services(); len(s) != 1 || s[0] != "S1" {
		t.Fatalf("child 1 services = %v", s)
	}
	if n := serviceNode(child1, "S1"); n != c00 {
		t.Errorf("S1 mapped to node %d, want C0.0 (%d)", n, c00)
	}
	child2 := res.ChildPaths[1]
	wantMap := map[svc.Service]int{"S2": c10, "S3": c11, "S4": c11}
	for s, wantNode := range wantMap {
		if n := serviceNode(child2, s); n != wantNode {
			t.Errorf("%s mapped to node %d, want %d", s, n, wantNode)
		}
	}
	child3 := res.ChildPaths[2]
	if n := serviceNode(child3, "S5"); n != c20 {
		t.Errorf("S5 mapped to node %d, want C2.0 (%d)", n, c20)
	}
}

// serviceNode returns the node performing service s in path p, or -1.
func serviceNode(p *Path, s svc.Service) int {
	for _, h := range p.Hops {
		if h.Service == s {
			return h.Node
		}
	}
	return -1
}

func TestPaperExampleFinalPath(t *testing.T) {
	topo, caps, states := paperExample(t)
	req := paperRequest(t)
	p, err := RouteHierarchical(topo, states, req, RelaxBacktrack)
	if err != nil {
		t.Fatalf("RouteHierarchical: %v", err)
	}
	if err := p.Validate(req, caps); err != nil {
		t.Fatalf("final path invalid: %v", err)
	}
	// Fig. 7(e): C0.2, S1/C0.0, -/C0.1, S2/C1.0, S3/C1.1, S4/C1.1, -/C1.2,
	// S5/C2.0, C2.1. (The leading -/C1.0 and -/C2.0 of the figure collapse
	// into the service hops on the same nodes.)
	want := []Hop{
		{Node: c02},
		{Node: c00, Service: "S1"},
		{Node: c01},
		{Node: c10, Service: "S2"},
		{Node: c11, Service: "S3"},
		{Node: c11, Service: "S4"},
		{Node: c12},
		{Node: c20, Service: "S5"},
		{Node: c21},
	}
	if len(p.Hops) != len(want) {
		t.Fatalf("final path = %v, want %d hops", p, len(want))
	}
	for i, w := range want {
		if p.Hops[i] != w {
			t.Errorf("hop %d = %v, want %v", i, p.Hops[i], w)
		}
	}
	// The decision cost must equal the path length under the embedded
	// metric.
	if got := p.Length(topo.Dist); math.Abs(got-p.DecisionCost) > 1e-9 {
		t.Errorf("DecisionCost = %v but recomputed length = %v", p.DecisionCost, got)
	}
}

func TestPaperExampleAllRelaxModesFeasible(t *testing.T) {
	topo, caps, states := paperExample(t)
	req := paperRequest(t)
	for _, mode := range []RelaxMode{RelaxBacktrack, RelaxExact, RelaxExternalOnly} {
		p, err := RouteHierarchical(topo, states, req, mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if err := p.Validate(req, caps); err != nil {
			t.Errorf("mode %v: invalid path: %v", mode, err)
		}
	}
}

func TestPaperExampleExactNoWorseThanBacktrack(t *testing.T) {
	topo, _, states := paperExample(t)
	req := paperRequest(t)
	rb, err := NewHierarchicalRouter(topo, states, c21, RelaxBacktrack)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	resB, err := rb.Route(req)
	if err != nil {
		t.Fatalf("Route backtrack: %v", err)
	}
	re, err := NewHierarchicalRouter(topo, states, c21, RelaxExact)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	resE, err := re.Route(req)
	if err != nil {
		t.Fatalf("Route exact: %v", err)
	}
	if resE.CSPCost > resB.CSPCost+1e-9 {
		t.Errorf("exact CSP cost %v worse than backtrack %v", resE.CSPCost, resB.CSPCost)
	}
}
