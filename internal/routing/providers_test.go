package routing

import (
	"reflect"
	"testing"

	"hfc/internal/state"
	"hfc/internal/svc"
)

// testNodeState builds a NodeState whose cluster members hold the given
// capability sets and whose SCT_C covers the given cluster aggregates.
func testNodeState(members []int, memberCaps []svc.CapabilitySet, aggregates []svc.CapabilitySet) *state.NodeState {
	st := &state.NodeState{
		SCTP: make(map[int]svc.CapabilitySet),
		SCTC: make(map[int]svc.CapabilitySet),
	}
	for i, m := range members {
		st.SCTP[m] = memberCaps[i]
	}
	for c, agg := range aggregates {
		st.SCTC[c] = agg
	}
	return st
}

func TestProviderIndexMatchesScan(t *testing.T) {
	members := []int{3, 7, 11, 20}
	memberCaps := []svc.CapabilitySet{
		svc.NewCapabilitySet("a", "b"),
		svc.NewCapabilitySet("b", "c"),
		svc.NewCapabilitySet("a", "c", "d"),
		svc.NewCapabilitySet("b"),
	}
	aggregates := []svc.CapabilitySet{
		svc.NewCapabilitySet("a", "b", "c", "d"),
		svc.NewCapabilitySet("c"),
		svc.NewCapabilitySet("a", "d"),
	}
	st := testNodeState(members, memberCaps, aggregates)
	pi := BuildProviderIndex(st, members)

	for _, s := range []svc.Service{"a", "b", "c", "d", "missing"} {
		// Reference: the scan SolveChild used to run per service.
		var want []int
		for _, m := range members {
			if set, ok := st.SCTP[m]; ok && set.Has(s) {
				want = append(want, m)
			}
		}
		if got := pi.Providers(s); !reflect.DeepEqual(got, want) {
			t.Errorf("Providers(%q) = %v, want %v", s, got, want)
		}
		if got, want := pi.ClustersProviding(s), st.ClustersProviding(s); !reflect.DeepEqual(got, want) {
			t.Errorf("ClustersProviding(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestProviderIndexLookupAllocFree(t *testing.T) {
	members := []int{0, 1, 2}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet("a", "b"),
		svc.NewCapabilitySet("a"),
		svc.NewCapabilitySet("b"),
	}
	st := testNodeState(members, caps, []svc.CapabilitySet{svc.NewCapabilitySet("a", "b")})
	pi := BuildProviderIndex(st, members)
	fn := pi.ProviderFunc()
	if allocs := testing.AllocsPerRun(100, func() {
		if len(fn("a")) != 2 {
			t.Fatal("wrong provider count")
		}
	}); allocs != 0 {
		t.Errorf("indexed provider lookup allocates %.1f times per call, want 0", allocs)
	}
}

func TestLazyIndexesRebuildOnVersionBump(t *testing.T) {
	members := []int{0, 1}
	states := []state.NodeState{
		*testNodeState(members, []svc.CapabilitySet{svc.NewCapabilitySet("a"), svc.NewCapabilitySet("b")},
			[]svc.CapabilitySet{svc.NewCapabilitySet("a", "b")}),
		*testNodeState(members, []svc.CapabilitySet{svc.NewCapabilitySet("a"), svc.NewCapabilitySet("b")},
			[]svc.CapabilitySet{svc.NewCapabilitySet("a", "b")}),
	}
	var version uint64
	li := NewLazyIndexes(states, func(int) []int { return members }, func() uint64 { return version })

	first := li.For(1)
	if second := li.For(1); second != first {
		t.Fatal("index rebuilt without a version bump")
	}

	// Mutate node 1's state, bump the version: For must rebuild and see it.
	states[1].SCTP[0].Add("c")
	version++
	rebuilt := li.For(1)
	if rebuilt == first {
		t.Fatal("index not rebuilt after version bump")
	}
	if got := rebuilt.Providers("c"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("rebuilt Providers(c) = %v, want [0]", got)
	}

	li.InvalidateAll()
	if li.For(1) == rebuilt {
		t.Fatal("InvalidateAll kept a cached index")
	}
}
