package routing

import (
	"sync"

	"hfc/internal/svc"
)

// CacheKey identifies a routed request: source proxy, destination proxy,
// and the service graph's canonical fingerprint. Distinct graphs with the
// same fingerprint are disambiguated inside the cache by the full canonical
// string, so a (vanishingly unlikely) hash collision degrades to a miss,
// never to a wrong route.
type CacheKey struct {
	Src, Dst int
	SG       uint64
}

// NewCacheKey builds the key for a (source, service graph, destination)
// routing question.
func NewCacheKey(src, dst int, sg *svc.Graph) CacheKey {
	return CacheKey{Src: src, Dst: dst, SG: sg.Fingerprint()}
}

// CacheStats counts cache outcomes.
type CacheStats struct {
	// Hits and Misses count Get outcomes; a stale or collided entry is a
	// miss. Invalidations counts stale entries evicted by Get; Stores
	// counts Put calls that inserted or replaced an entry.
	Hits, Misses, Invalidations, Stores int64
}

// stamp records the state round of one cluster at the time a route was
// cached. The entry stays valid only while every stamped cluster remains at
// its recorded round.
type stamp struct {
	cluster int
	round   uint64
}

type cacheEntry struct {
	// canonical guards against fingerprint collisions: the full canonical
	// form of the service graph the value was computed for.
	canonical string
	value     any
	stamps    []stamp
}

// RouteCache is an invalidation-aware cache of resolved routes keyed by
// (source, service-graph fingerprint, destination). Entries carry the state
// rounds of the clusters their path traverses; advancing a cluster's round
// (capability change, membership churn) or the global round (a state
// distribution sweep, §4) invalidates exactly the entries that depended on
// it. Stale entries are evicted lazily on lookup.
//
// Cached values are shared between callers and must be treated as
// read-only. The cache itself is safe for concurrent use.
type RouteCache struct {
	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry // guarded by mu
	rounds  map[int]uint64           // guarded by mu
	global  uint64                   // guarded by mu
	// version counts every round advance; Put refuses to store a value
	// computed before the latest advance (see Version).
	version uint64     // guarded by mu
	stats   CacheStats // guarded by mu
}

// NewRouteCache returns an empty cache at round zero everywhere.
func NewRouteCache() *RouteCache {
	return &RouteCache{
		entries: make(map[CacheKey]*cacheEntry),
		rounds:  make(map[int]uint64),
	}
}

// effectiveRoundLocked is the invalidation clock of one cluster: its own
// round plus the global epoch. Called with mu held.
func (c *RouteCache) effectiveRoundLocked(cluster int) uint64 {
	return c.rounds[cluster] + c.global
}

// Get returns the cached value for key, if one exists whose canonical form
// matches and whose cluster stamps are all still current. Stale entries are
// evicted and counted as invalidations; every non-hit is a miss.
func (c *RouteCache) Get(key CacheKey, canonical string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	if e.canonical != canonical {
		c.stats.Misses++
		return nil, false
	}
	for _, s := range e.stamps {
		if c.effectiveRoundLocked(s.cluster) != s.round {
			delete(c.entries, key)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
	}
	c.stats.Hits++
	return e.value, true
}

// Version returns an opaque token identifying the cache's current
// invalidation state. Capture it BEFORE computing a route and pass it to
// Put: if any round advanced in between, the just-computed route may
// already be stale, and Put discards it instead of stamping old data with
// fresh rounds.
func (c *RouteCache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Put stores a resolved route under key, stamped with the current rounds of
// the clusters the route depends on, unless the cache advanced past the
// caller's version token since the computation began (then the value is
// dropped — never cached stale). A later advance of any stamped cluster
// makes the entry stale.
func (c *RouteCache) Put(key CacheKey, canonical string, value any, clusters []int, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != c.version {
		return
	}
	e := &cacheEntry{canonical: canonical, value: value, stamps: make([]stamp, 0, len(clusters))}
	seen := make(map[int]bool, len(clusters))
	for _, cl := range clusters {
		if seen[cl] {
			continue
		}
		seen[cl] = true
		e.stamps = append(e.stamps, stamp{cluster: cl, round: c.effectiveRoundLocked(cl)})
	}
	c.entries[key] = e
	c.stats.Stores++
}

// AdvanceRound bumps one cluster's state round, invalidating every cached
// route stamped with that cluster.
func (c *RouteCache) AdvanceRound(cluster int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds[cluster]++
	c.version++
}

// AdvanceAll bumps the global epoch, invalidating every cached route (a
// full state-distribution round touches every cluster).
func (c *RouteCache) AdvanceAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.global++
	c.version++
}

// Stats returns a snapshot of the cache counters.
func (c *RouteCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of entries currently stored (stale entries not yet
// evicted included).
func (c *RouteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
