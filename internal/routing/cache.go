package routing

import (
	"sync"
	"sync/atomic"

	"hfc/internal/svc"
)

// CacheKey identifies a routed request: source proxy, destination proxy,
// and the service graph's canonical fingerprint. Distinct graphs with the
// same fingerprint are disambiguated inside the cache by the full canonical
// string, so a (vanishingly unlikely) hash collision degrades to a miss,
// never to a wrong route.
type CacheKey struct {
	Src, Dst int
	SG       uint64
}

// NewCacheKey builds the key for a (source, service graph, destination)
// routing question.
func NewCacheKey(src, dst int, sg *svc.Graph) CacheKey {
	return CacheKey{Src: src, Dst: dst, SG: sg.Fingerprint()}
}

// NewCacheKeyCanonical builds the same key from an already-rendered
// canonical form, skipping the second render Fingerprint would pay for.
// canonical must be sg.Canonical() for the request's graph.
func NewCacheKeyCanonical(src, dst int, canonical string) CacheKey {
	return CacheKey{Src: src, Dst: dst, SG: svc.FingerprintCanonical(canonical)}
}

// shard selects the cache shard for a key by mixing its three components
// with an FNV-ish multiply-xor; the fingerprint alone would collapse all
// (src, dst) variants of one popular service graph onto one shard.
func (k CacheKey) shard(n int) int {
	h := k.SG
	h ^= uint64(uint32(k.Src)) * 0x9e3779b97f4a7c15
	h ^= uint64(uint32(k.Dst)) * 0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// CacheStats counts cache outcomes.
type CacheStats struct {
	// Hits and Misses count Get outcomes; a stale or collided entry is a
	// miss. Invalidations counts stale entries evicted by Get; Stores
	// counts Put calls that inserted or replaced an entry.
	Hits, Misses, Invalidations, Stores int64
}

// stamp records the state round of one cluster at the time a route was
// cached. The entry stays valid only while every stamped cluster remains at
// its recorded round.
type stamp struct {
	cluster int
	round   uint64
}

type cacheEntry struct {
	// canonical guards against fingerprint collisions: the full canonical
	// form of the service graph the value was computed for.
	canonical string
	value     any
	stamps    []stamp
}

// cacheShard is one independently locked segment of the cache. Each shard
// keeps its own copy of the invalidation clocks (cluster rounds + global
// epoch): AdvanceRound/AdvanceAll sweep all shards, while the hot Get/Put
// path touches exactly one shard lock.
type cacheShard struct {
	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry // guarded by mu
	rounds  map[int]uint64           // guarded by mu
	global  uint64                   // guarded by mu
}

// effectiveRoundLocked is the invalidation clock of one cluster: its own
// round plus the global epoch. Called with sh.mu held.
func (sh *cacheShard) effectiveRoundLocked(cluster int) uint64 {
	return sh.rounds[cluster] + sh.global
}

// DefaultCacheShards is the shard count NewRouteCache uses — enough to keep
// shard-lock collisions rare at realistic request concurrency without
// making the AdvanceRound sweep noticeable.
const DefaultCacheShards = 16

// RouteCache is an invalidation-aware cache of resolved routes keyed by
// (source, service-graph fingerprint, destination). Entries carry the state
// rounds of the clusters their path traverses; advancing a cluster's round
// (capability change, membership churn) or the global round (a state
// distribution sweep, §4) invalidates exactly the entries that depended on
// it. Stale entries are evicted lazily on lookup.
//
// The cache is sharded by key hash: concurrent Get/Put calls on different
// keys proceed on independent locks, and the outcome counters are atomics,
// so the cache imposes no single serialization point on the request hot
// path. Round advances bump the cache-wide version token and then sweep
// every shard under its own lock, preserving the version contract: a Put
// whose token predates any advance is dropped.
//
// Cached values are shared between callers and must be treated as
// read-only. The cache itself is safe for concurrent use.
type RouteCache struct {
	shards []cacheShard
	// version counts every round advance; Put refuses to store a value
	// computed before the latest advance (see Version). Incremented before
	// the shard sweep so a Put that still observes the old version is
	// guaranteed no newer advance has been signaled (see Put).
	version atomic.Uint64
	// advanceMu serializes AdvanceRound/AdvanceAll so concurrent advances
	// cannot interleave their shard sweeps (each shard must see advances
	// in one consistent order).
	advanceMu sync.Mutex

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	stores        atomic.Int64
}

// NewRouteCache returns an empty cache at round zero everywhere, with
// DefaultCacheShards shards.
func NewRouteCache() *RouteCache { return NewRouteCacheSharded(DefaultCacheShards) }

// NewRouteCacheSharded returns an empty cache with the given shard count
// (values below one select a single shard — the fully serialized layout).
func NewRouteCacheSharded(shards int) *RouteCache {
	if shards < 1 {
		shards = 1
	}
	c := &RouteCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		//hfcvet:ignore guardedby construction precedes publication; no concurrent access yet
		c.shards[i].entries = make(map[CacheKey]*cacheEntry)
		//hfcvet:ignore guardedby construction precedes publication; no concurrent access yet
		c.shards[i].rounds = make(map[int]uint64)
	}
	return c
}

// NumShards reports the shard count the cache was built with.
func (c *RouteCache) NumShards() int { return len(c.shards) }

// Get returns the cached value for key, if one exists whose canonical form
// matches and whose cluster stamps are all still current. Stale entries are
// evicted and counted as invalidations; every non-hit is a miss.
//
//hfc:hotpath budget=0
func (c *RouteCache) Get(key CacheKey, canonical string) (any, bool) {
	sh := &c.shards[key.shard(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	if e.canonical != canonical {
		c.misses.Add(1)
		return nil, false
	}
	for _, s := range e.stamps {
		if sh.effectiveRoundLocked(s.cluster) != s.round {
			delete(sh.entries, key)
			c.invalidations.Add(1)
			c.misses.Add(1)
			return nil, false
		}
	}
	c.hits.Add(1)
	return e.value, true
}

// Version returns an opaque token identifying the cache's current
// invalidation state. Capture it BEFORE computing a route and pass it to
// Put: if any round advanced in between, the just-computed route may
// already be stale, and Put discards it instead of stamping old data with
// fresh rounds.
func (c *RouteCache) Version() uint64 { return c.version.Load() }

// Put stores a resolved route under key, stamped with the current rounds of
// the clusters the route depends on, unless the cache advanced past the
// caller's version token since the computation began (then the value is
// dropped — never cached stale). A later advance of any stamped cluster
// makes the entry stale.
func (c *RouteCache) Put(key CacheKey, canonical string, value any, clusters []int, version uint64) {
	sh := &c.shards[key.shard(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The version check runs under the shard lock. Advances bump the
	// version BEFORE sweeping shards, so if the token still matches here,
	// every advance signaled since the caller captured it is absent — and
	// any sweep still in flight belongs to an advance whose bump predates
	// the capture, meaning the computation already saw the post-advance
	// state. Stamping then uses either the swept (current) rounds, which
	// is correct, or the pre-sweep rounds, which under-stamps and merely
	// invalidates the entry early. No stale value is ever stored with
	// fresh stamps.
	if version != c.version.Load() {
		return
	}
	e := &cacheEntry{canonical: canonical, value: value, stamps: make([]stamp, 0, len(clusters))}
	seen := make(map[int]bool, len(clusters))
	for _, cl := range clusters {
		if seen[cl] {
			continue
		}
		seen[cl] = true
		e.stamps = append(e.stamps, stamp{cluster: cl, round: sh.effectiveRoundLocked(cl)})
	}
	sh.entries[key] = e
	c.stores.Add(1)
}

// AdvanceRound bumps one cluster's state round, invalidating every cached
// route stamped with that cluster.
func (c *RouteCache) AdvanceRound(cluster int) {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	// Version first, shard sweep second — see the Put version check.
	c.version.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.rounds[cluster]++
		sh.mu.Unlock()
	}
}

// AdvanceAll bumps the global epoch, invalidating every cached route (a
// full state-distribution round touches every cluster).
func (c *RouteCache) AdvanceAll() {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	// Version first, shard sweep second — see the Put version check.
	c.version.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.global++
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the cache counters.
func (c *RouteCache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Stores:        c.stores.Load(),
	}
}

// Len returns the number of entries currently stored (stale entries not yet
// evicted included).
func (c *RouteCache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}
