package routing

import (
	"testing"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
)

func resolverFixture(t *testing.T) *hfc.Topology {
	t.Helper()
	pts := []coords.Point{
		{0, 0}, {0, 10}, {0, 20}, {0, 30}, // cluster 0
		{100, 0}, {100, 10}, {100, 20}, {100, 30}, // cluster 1
		{50, 200}, {50, 210}, {50, 220}, {50, 230}, // cluster 2
	}
	assignment := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	clusters := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	topo, err := hfc.Build(cmap, &cluster.Result{Assignment: assignment, Clusters: clusters})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestResolverCandidatesOwnCluster(t *testing.T) {
	topo := resolverFixture(t)
	view, err := topo.View(0)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	child := ChildRequest{Cluster: 0, Source: 0, Dest: 2, Resolver: 2}
	got := ResolverCandidates(view, child)
	if got[0] != 2 {
		t.Fatalf("candidates %v: designated resolver not first", got)
	}
	if len(got) != len(view.Members) {
		t.Errorf("candidates %v: want all %d cluster members", got, len(view.Members))
	}
	seen := map[int]bool{}
	for _, c := range got {
		if seen[c] {
			t.Errorf("candidates %v contain duplicate %d", got, c)
		}
		seen[c] = true
		if topo.ClusterOf(c) != 0 {
			t.Errorf("candidate %d outside cluster 0", c)
		}
	}
}

func TestResolverCandidatesForeignClusterUsesBorders(t *testing.T) {
	topo := resolverFixture(t)
	view, err := topo.View(0) // cluster 0 looking into cluster 1
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	in1, _, err := topo.Border(1, 0)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	child := ChildRequest{Cluster: 1, Source: in1, Dest: in1, Resolver: in1}
	got := ResolverCandidates(view, child)
	if got[0] != in1 {
		t.Fatalf("candidates %v: designated resolver %d not first", got, in1)
	}
	if len(got) < 2 {
		t.Fatalf("candidates %v: no alternates despite backup borders", got)
	}
	for _, c := range got {
		if topo.ClusterOf(c) != 1 {
			t.Errorf("candidate %d not in target cluster 1", c)
		}
	}
}
