// Package routing implements service routing — the mapping of a service
// request (source proxy + service graph + destination proxy) onto a
// delay-efficient service path. It contains both layers of the paper:
//
//   - the flat, global-view optimal algorithm of the authors' earlier work
//     [11]: map the service topology and request into a service DAG so that
//     a classical shortest-paths algorithm finds an optimal service path
//     (FindPath), usable over any distance oracle (full connectivity, mesh,
//     or HFC-constrained); and
//   - the hierarchical divide-and-conquer procedure of §5: the destination
//     proxy computes a Cluster-level Service Path over aggregate state,
//     dissects it into per-cluster child requests, has each cluster resolve
//     its child intra-cluster, and composes the final concrete path
//     (HierarchicalRouter).
package routing

import (
	"errors"
	"fmt"
	"strings"

	"hfc/internal/svc"
)

// Hop is one entry of a concrete service path sp = ⟨−/p0, s1/p1, …, sn/pn,
// −/pn+1⟩ (§2.2): an overlay node plus the service it performs, or no
// service when the node merely relays the stream.
type Hop struct {
	// Node is the overlay node index.
	Node int
	// Service is the service performed at this hop, or "" for a pure
	// relay (including the source and destination endpoints).
	Service svc.Service
}

// String renders the hop in the paper's s/p notation.
func (h Hop) String() string {
	if h.Service == "" {
		return fmt.Sprintf("-/%d", h.Node)
	}
	return fmt.Sprintf("%s/%d", h.Service, h.Node)
}

// Path is a concrete service path.
type Path struct {
	// Hops is the full hop sequence, starting at the source proxy and
	// ending at the destination proxy. Consecutive hops may share a node
	// (several services executed on the same proxy).
	Hops []Hop
	// DecisionCost is the path cost under the metric the routing scheme
	// used to make its decisions (embedded coordinate distances for every
	// scheme in this reproduction). Evaluate with Length to measure a
	// path under a different metric, e.g. true network latency.
	DecisionCost float64
}

// String renders the path in the paper's notation.
func (p *Path) String() string {
	parts := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		parts[i] = h.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Nodes returns the hop node sequence.
func (p *Path) Nodes() []int {
	out := make([]int, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = h.Node
	}
	return out
}

// Services returns the performed services in path order (relays skipped).
func (p *Path) Services() []svc.Service {
	var out []svc.Service
	for _, h := range p.Hops {
		if h.Service != "" {
			out = append(out, h.Service)
		}
	}
	return out
}

// NumRelays counts pure-relay hops, excluding the two endpoints.
func (p *Path) NumRelays() int {
	count := 0
	for i, h := range p.Hops {
		if i == 0 || i == len(p.Hops)-1 {
			continue
		}
		if h.Service == "" {
			count++
		}
	}
	return count
}

// Length evaluates the path under an arbitrary metric: the sum of dist over
// consecutive hop pairs (zero-cost when consecutive services run on the
// same node). Passing true network latency here measures the path the way
// Fig. 10 does.
func (p *Path) Length(dist func(u, v int) float64) float64 {
	total := 0.0
	for i := 0; i+1 < len(p.Hops); i++ {
		u, v := p.Hops[i].Node, p.Hops[i+1].Node
		if u != v {
			total += dist(u, v)
		}
	}
	return total
}

// Validate checks that the path is a correct answer to req given the true
// capability assignment caps: endpoints match, every service hop runs on a
// proxy that actually has the service, and the performed service sequence
// is a feasible configuration of the request's service graph.
func (p *Path) Validate(req svc.Request, caps []svc.CapabilitySet) error {
	if len(p.Hops) == 0 {
		return errors.New("routing: empty path")
	}
	if p.Hops[0].Node != req.Source {
		return fmt.Errorf("routing: path starts at %d, want source %d", p.Hops[0].Node, req.Source)
	}
	if p.Hops[len(p.Hops)-1].Node != req.Dest {
		return fmt.Errorf("routing: path ends at %d, want destination %d", p.Hops[len(p.Hops)-1].Node, req.Dest)
	}
	for _, h := range p.Hops {
		if h.Node < 0 || h.Node >= len(caps) {
			return fmt.Errorf("routing: hop node %d out of range [0,%d)", h.Node, len(caps))
		}
		if h.Service != "" && !caps[h.Node].Has(h.Service) {
			return fmt.Errorf("routing: proxy %d does not provide service %q", h.Node, h.Service)
		}
	}
	performed := p.Services()
	for _, config := range req.SG.Configurations() {
		want := req.SG.ServicesOf(config)
		if serviceSeqEqual(performed, want) {
			return nil
		}
	}
	return fmt.Errorf("routing: performed services %v match no feasible configuration of %v", performed, req.SG)
}

func serviceSeqEqual(a, b []svc.Service) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
