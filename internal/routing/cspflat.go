package routing

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/svc"
)

// This file is the flat (struct-of-arrays) implementation of the §5.1
// cluster-level search for the greedy relaxation modes. It produces
// results identical to the map-based clusterLevelPathGeneric — same
// candidate iteration order, same strict-< improvements, same
// floating-point evaluation order — but keeps its labels in pooled dense
// arrays indexed (SG vertex)*K + cluster and reads border pairs and
// coordinates from the view's DenseTables instead of hashing map keys per
// lookup. RelaxExact keeps the generic path (its (vertex, cluster, entry)
// state space does not flatten to a K-wide table), which doubles as the
// reference implementation the equivalence tests compare against.

// cspScratch is the reusable arena of one flat cluster-level search.
type cspScratch struct {
	cands   [][]int // candidate clusters per SG vertex (shared or candBuf-backed)
	candBuf []int   // backing storage for admissibility-filtered lists

	indeg, outdeg  []int32
	queue, order   []int32
	sources, sinks []int32
	headOff        []int32 // SG edges grouped by tail, CSR-packed
	heads          []int32

	// Flat label tables over (SG vertex, cluster) slots: slot = v*K + c.
	// dist +Inf marks "no label"; entry is the border proxy the path
	// entered the cluster through (-1 when inside since the source);
	// parV/parC identify the predecessor label (-1 for virtual source).
	dist       []float64
	entry      []int32
	parV, parC []int32
}

var cspPool = sync.Pool{New: func() any { return new(cspScratch) }}

// crossingFlat resolves the oriented border pair and external link length
// between distinct clusters a and b, preferring the dense tables: when no
// override is installed, the primary pair is known, and both endpoints
// pass the failure detector (if any), the precomputed pair and length
// apply; otherwise it falls back to the view's ranked map-based lookup —
// exactly what the generic path computes via View.Border + View.Dist.
func (r *HierarchicalRouter) crossingFlat(dt *hfc.DenseTables, a, b int) (inA, inB int, ext float64, err error) {
	v := r.View
	if v.BorderOverride == nil {
		ia := dt.BorderInA[a*dt.K+b]
		if ia >= 0 {
			ib := dt.BorderInA[b*dt.K+a]
			if v.Alive == nil || (v.Alive(int(ia)) && v.Alive(int(ib))) {
				if e := dt.Ext[a*dt.K+b]; !math.IsNaN(e) {
					return int(ia), int(ib), e, nil
				}
				d, err := v.Dist(int(ia), int(ib))
				return int(ia), int(ib), d, err
			}
		}
	}
	inA, inB, err = v.Border(a, b)
	if err != nil {
		return 0, 0, 0, err
	}
	ext, err = r.distFlat(dt, inA, inB)
	return inA, inB, ext, err
}

// distFlat is View.Dist through the dense coordinate table, falling back
// to the view's map lookup for ids the table does not cover (promoted
// borders served via ResolveCoord). coords.Dist on the same points gives
// bit-identical results to the map path.
func (r *HierarchicalRouter) distFlat(dt *hfc.DenseTables, u, w int) (float64, error) {
	if u >= 0 && u < len(dt.Pts) && w >= 0 && w < len(dt.Pts) {
		pu, pw := dt.Pts[u], dt.Pts[w]
		if pu != nil && pw != nil {
			return coords.Dist(pu, pw), nil
		}
	}
	return r.View.Dist(u, w)
}

// internalFlat mirrors the generic internalDist: the entry-border→exit
// distance inside a cluster, 0 when the entry is unknown, they coincide,
// or the mode ignores internal distances.
func (r *HierarchicalRouter) internalFlat(dt *hfc.DenseTables, externalOnly bool, entry int32, exit int) (float64, error) {
	if entry == -1 || int(entry) == exit || externalOnly {
		return 0, nil
	}
	return r.distFlat(dt, int(entry), exit)
}

// clusterLevelPathFlat runs the greedy-mode cluster-level search on flat
// label arrays. handled reports whether the flat path applied; when false
// (cluster ids outside the dense tables) the caller runs the generic
// search instead. Steady state allocates only the returned CSP.
//
//hfc:hotpath budget=2
func (r *HierarchicalRouter) clusterLevelPathFlat(req svc.Request, srcCluster, destCluster int) (csp []CSPEntry, cost float64, handled bool, err error) {
	dt := r.View.Dense()
	k := dt.K
	if k <= 0 || srcCluster < 0 || srcCluster >= k || destCluster < 0 || destCluster >= k {
		return nil, 0, false, nil
	}
	externalOnly := r.mode() == RelaxExternalOnly
	sg := req.SG
	nv := sg.Len()

	sc := cspPool.Get().(*cspScratch)
	defer cspPool.Put(sc)

	// Candidate clusters per SG vertex, from SCT_C (optionally narrowed
	// by the QoS admissibility hook), matching the generic path's order.
	sc.cands = grow(sc.cands, nv)
	sc.candBuf = sc.candBuf[:0]
	filtered := 0 // vertices whose lists live in candBuf, by position
	for v := 0; v < nv; v++ {
		var all []int
		if r.Index != nil {
			all = r.Index.ClustersProviding(sg.Services[v])
		} else {
			all = r.State.ClustersProviding(sg.Services[v])
		}
		if r.ClusterAdmissible != nil {
			start := len(sc.candBuf)
			for _, c := range all {
				if r.ClusterAdmissible(sg.Services[v], c) {
					//hfcvet:ignore hotalloc candBuf retains capacity across pooled runs; steady-state append never grows
					sc.candBuf = append(sc.candBuf, c)
				}
			}
			sc.cands[v] = sc.candBuf[start:len(sc.candBuf):len(sc.candBuf)]
			filtered++
		} else {
			sc.cands[v] = all
		}
		if len(sc.cands[v]) == 0 {
			//hfcvet:ignore hotalloc cold no-provider error path
			return nil, 0, false, fmt.Errorf("routing: service %q: %w", sg.Services[v], ErrNoProviders)
		}
		for _, c := range sc.cands[v] {
			if c < 0 || c >= k {
				return nil, 0, false, nil // outside the dense tables: let the generic path judge
			}
		}
	}
	// candBuf may have been re-sliced by appends after earlier vertices
	// captured windows into it; rebuild windows when any growth happened.
	if filtered > 0 {
		off := 0
		for v := 0; v < nv; v++ {
			if r.ClusterAdmissible == nil {
				continue
			}
			n := len(sc.cands[v])
			sc.cands[v] = sc.candBuf[off : off+n : off+n]
			off += n
		}
	}

	// SG degrees, CSR-packed edges by tail, sources/sinks, Kahn order —
	// ascending-vertex everywhere, matching svc.Graph.Sources/Sinks and
	// sgTopoOrder.
	sc.indeg = grow(sc.indeg, nv)
	sc.outdeg = grow(sc.outdeg, nv)
	sc.headOff = grow(sc.headOff, nv+1)
	sc.heads = grow(sc.heads, len(sg.Edges))
	for v := 0; v < nv; v++ {
		sc.indeg[v] = 0
		sc.outdeg[v] = 0
	}
	for _, e := range sg.Edges {
		sc.outdeg[e[0]]++
		sc.indeg[e[1]]++
	}
	// CSR-pack edges by tail: store end offsets, count each bucket down
	// while filling, then reverse each bucket so heads keep sg.Edges
	// order per tail (the countdown fills back-to-front).
	off := int32(0)
	for v := 0; v < nv; v++ {
		off += sc.outdeg[v]
		sc.headOff[v] = off
	}
	sc.headOff[nv] = off
	for _, e := range sg.Edges {
		sc.headOff[e[0]]--
		sc.heads[sc.headOff[e[0]]] = int32(e[1])
	}
	for v := 0; v < nv; v++ {
		for i, j := sc.headOff[v], sc.headOff[v+1]-1; i < j; i, j = i+1, j-1 {
			sc.heads[i], sc.heads[j] = sc.heads[j], sc.heads[i]
		}
	}

	sc.sources = sc.sources[:0]
	sc.sinks = sc.sinks[:0]
	sc.queue = sc.queue[:0]
	for v := 0; v < nv; v++ {
		if sc.indeg[v] == 0 {
			//hfcvet:ignore hotalloc sources/queue retain capacity across pooled runs
			sc.sources = append(sc.sources, int32(v))
			//hfcvet:ignore hotalloc sources/queue retain capacity across pooled runs
			sc.queue = append(sc.queue, int32(v))
		}
		if sc.outdeg[v] == 0 {
			//hfcvet:ignore hotalloc sinks retains capacity across pooled runs
			sc.sinks = append(sc.sinks, int32(v))
		}
	}
	sc.order = sc.order[:0]
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		//hfcvet:ignore hotalloc order retains capacity across pooled runs
		sc.order = append(sc.order, u)
		for i := sc.headOff[u]; i < sc.headOff[u+1]; i++ {
			v := sc.heads[i]
			sc.indeg[v]--
			if sc.indeg[v] == 0 {
				//hfcvet:ignore hotalloc queue retains capacity across pooled runs
				sc.queue = append(sc.queue, v)
			}
		}
	}
	if len(sc.order) != nv {
		return nil, 0, false, errors.New("routing: service graph contains a cycle")
	}

	// Flat label tables.
	n := nv * k
	sc.dist = grow(sc.dist, n)
	sc.entry = grow(sc.entry, n)
	sc.parV = grow(sc.parV, n)
	sc.parC = grow(sc.parC, n)
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		sc.dist[i] = inf
	}

	// Initialize SG source vertices.
	for _, v := range sc.sources {
		for _, c := range sc.cands[v] {
			var d float64
			var entry int32 = -1
			if c != srcCluster {
				if r.CrossingAdmissible != nil && !r.CrossingAdmissible(srcCluster, c) {
					continue
				}
				_, inC, ext, err := r.crossingFlat(dt, srcCluster, c)
				if err != nil {
					return nil, 0, false, err
				}
				d = ext
				entry = int32(inC)
			}
			slot := int(v)*k + c
			if d < sc.dist[slot] {
				sc.dist[slot] = d
				sc.entry[slot] = entry
				sc.parV[slot] = -1
				sc.parC[slot] = -1
			}
		}
	}

	// Relax SG edges in topological order.
	for _, u := range sc.order {
		for _, c := range sc.cands[u] {
			uSlot := int(u)*k + c
			ud := sc.dist[uSlot]
			if math.IsInf(ud, 1) {
				continue
			}
			ue := sc.entry[uSlot]
			for i := sc.headOff[u]; i < sc.headOff[u+1]; i++ {
				v := sc.heads[i]
				for _, c2 := range sc.cands[v] {
					var nd float64
					var ne int32
					if c2 == c {
						nd = ud
						ne = ue
					} else {
						if r.CrossingAdmissible != nil && !r.CrossingAdmissible(c, c2) {
							continue
						}
						exitB, inC2, ext, err := r.crossingFlat(dt, c, c2)
						if err != nil {
							return nil, 0, false, err
						}
						internal, err := r.internalFlat(dt, externalOnly, ue, exitB)
						if err != nil {
							return nil, 0, false, err
						}
						nd = ud + internal + ext
						ne = int32(inC2)
					}
					slot := int(v)*k + c2
					if nd < sc.dist[slot] {
						sc.dist[slot] = nd
						sc.entry[slot] = ne
						sc.parV[slot] = u
						sc.parC[slot] = int32(c)
					}
				}
			}
		}
	}

	// Terminate at the destination proxy.
	best := inf
	bestV, bestC := -1, -1
	for _, v := range sc.sinks {
		for _, c := range sc.cands[v] {
			slot := int(v)*k + c
			total := sc.dist[slot]
			if math.IsInf(total, 1) {
				continue
			}
			entry := sc.entry[slot]
			if c == destCluster {
				tail, err := r.internalFlat(dt, externalOnly, entry, r.View.Node)
				if err != nil {
					return nil, 0, false, err
				}
				total += tail
			} else {
				if r.CrossingAdmissible != nil && !r.CrossingAdmissible(c, destCluster) {
					continue
				}
				exitB, inDest, ext, err := r.crossingFlat(dt, c, destCluster)
				if err != nil {
					return nil, 0, false, err
				}
				internal, err := r.internalFlat(dt, externalOnly, entry, exitB)
				if err != nil {
					return nil, 0, false, err
				}
				tail := 0.0
				if !externalOnly && inDest != r.View.Node {
					tail, err = r.distFlat(dt, inDest, r.View.Node)
					if err != nil {
						return nil, 0, false, err
					}
				}
				total += internal + ext + tail
			}
			if total < best {
				best = total
				bestV, bestC = int(v), c
			}
		}
	}
	if bestV == -1 {
		return nil, 0, false, ErrInfeasible
	}

	// Reconstruct the CSP: measure the chain, then fill back-to-front.
	depth := 0
	for v, c := bestV, bestC; v != -1; {
		depth++
		slot := v*k + c
		v, c = int(sc.parV[slot]), int(sc.parC[slot])
	}
	csp = make([]CSPEntry, depth)
	for v, c, i := bestV, bestC, depth-1; v != -1; i-- {
		//hfcvet:ignore hotalloc value assignment into the preallocated result slice
		csp[i] = CSPEntry{SGVertex: v, Cluster: c}
		slot := v*k + c
		v, c = int(sc.parV[slot]), int(sc.parC[slot])
	}
	return csp, best, true, nil
}
