package routing

import (
	"math"
	"math/rand"
	"testing"

	"hfc/internal/hfc"
	"hfc/internal/svc"
)

// TestClusterLevelPathFlatMatchesGeneric is the flat/generic equivalence
// property: across random overlays, modes, provider indexes, QoS
// admissibility hooks, failure detectors, and border overrides, the SoA
// implementation returns exactly the generic map-based search's CSP,
// bit-identical cost, and identical errors.
func TestClusterLevelPathFlatMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo, caps, states := randomOverlay(t, rng, 3+int(seed%3), 6, 10)
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
		if err != nil {
			t.Fatalf("seed %d: NewRequestGenerator: %v", seed, err)
		}
		for trial := 0; trial < 10; trial++ {
			req, err := gen.Next()
			if err != nil {
				t.Fatalf("seed %d: Next: %v", seed, err)
			}
			view, err := topo.View(req.Dest)
			if err != nil {
				t.Fatalf("seed %d: View(%d): %v", seed, req.Dest, err)
			}
			mode := RelaxBacktrack
			if trial%3 == 2 {
				mode = RelaxExternalOnly
			}
			r := &HierarchicalRouter{
				View:            view,
				State:           &states[req.Dest],
				ClusterOfSource: topo.ClusterOf,
				Mode:            mode,
			}
			if trial%2 == 1 {
				r.Index = BuildProviderIndex(&states[req.Dest], topo.Members(topo.ClusterOf(req.Dest)))
			}
			switch trial % 5 {
			case 1:
				// Failure detector that kills some border proxies: the
				// flat fast path must duck to the ranked fallback.
				view.Alive = func(n int) bool { return n%4 != 1 }
			case 2:
				r.ClusterAdmissible = func(s svc.Service, c int) bool {
					return (len(s)+c)%5 != 0
				}
			case 3:
				r.CrossingAdmissible = func(a, b int) bool { return (a+b)%7 != 3 }
			case 4:
				// Override re-routing half the pairs through their first
				// backup, when one exists.
				bb := view.BackupBorders
				view.BorderOverride = func(a, b int) (int, int, bool) {
					lo, hi := a, b
					if lo > hi {
						lo, hi = hi, lo
					}
					pairs := bb[[2]int{lo, hi}]
					if len(pairs) == 0 || (a+b)%2 == 0 {
						return 0, 0, false
					}
					if a == lo {
						return pairs[0].Low, pairs[0].High, true
					}
					return pairs[0].High, pairs[0].Low, true
				}
			}
			srcCluster := topo.ClusterOf(req.Source)
			destCluster := view.ClusterID

			cspF, costF, handled, errF := r.clusterLevelPathFlat(req, srcCluster, destCluster)
			cspG, costG, errG := r.clusterLevelPathGeneric(req, srcCluster, destCluster)
			if !handled && errF == nil {
				t.Fatalf("seed %d trial %d: flat path did not handle a dense-coverable view", seed, trial)
			}
			if (errF == nil) != (errG == nil) {
				t.Fatalf("seed %d trial %d: flat err %v, generic err %v", seed, trial, errF, errG)
			}
			if errF != nil {
				if errF.Error() != errG.Error() {
					t.Fatalf("seed %d trial %d: flat err %q, generic err %q", seed, trial, errF, errG)
				}
				continue
			}
			if math.Float64bits(costF) != math.Float64bits(costG) {
				t.Fatalf("seed %d trial %d: flat cost %v, generic cost %v (must be bit-identical)",
					seed, trial, costF, costG)
			}
			if len(cspF) != len(cspG) {
				t.Fatalf("seed %d trial %d: flat CSP %v, generic CSP %v", seed, trial, cspF, cspG)
			}
			for i := range cspF {
				if cspF[i] != cspG[i] {
					t.Fatalf("seed %d trial %d: CSP entry %d: flat %v, generic %v",
						seed, trial, i, cspF[i], cspG[i])
				}
			}
		}
	}
}

// TestClusterLevelPathFlatSharedView repeats the equivalence check on
// aliasing SharedViews (the 100k-node runtime's view flavor), where every
// coordinate goes through ResolveCoord instead of a materialized map.
func TestClusterLevelPathFlatSharedView(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	topo, caps, states := randomOverlay(t, rng, 4, 6, 10)
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		mkRouter := func(view *hfc.NodeView) *HierarchicalRouter {
			return &HierarchicalRouter{
				View:            view,
				State:           &states[req.Dest],
				ClusterOfSource: topo.ClusterOf,
				Mode:            RelaxBacktrack,
			}
		}
		shared, err := topo.SharedView(req.Dest)
		if err != nil {
			t.Fatalf("SharedView(%d): %v", req.Dest, err)
		}
		rs := mkRouter(shared)
		cspF, costF, handled, errF := rs.clusterLevelPathFlat(req, topo.ClusterOf(req.Source), shared.ClusterID)
		cspG, costG, errG := rs.clusterLevelPathGeneric(req, topo.ClusterOf(req.Source), shared.ClusterID)
		if !handled && errF == nil {
			t.Fatalf("trial %d: flat path did not handle a shared view", trial)
		}
		if (errF == nil) != (errG == nil) {
			t.Fatalf("trial %d: flat err %v, generic err %v", trial, errF, errG)
		}
		if errF != nil {
			continue
		}
		if math.Float64bits(costF) != math.Float64bits(costG) {
			t.Fatalf("trial %d: flat cost %v, generic cost %v", trial, costF, costG)
		}
		for i := range cspF {
			if cspF[i] != cspG[i] {
				t.Fatalf("trial %d: CSP entry %d: flat %v, generic %v", trial, i, cspF[i], cspG[i])
			}
		}
	}
}
