package routing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/coords"
	"hfc/internal/svc"
)

// euclidOracle builds an oracle over 2-D points.
func euclidOracle(pts []coords.Point) Oracle {
	return OracleFunc(func(u, v int) float64 { return coords.Dist(pts[u], pts[v]) })
}

func mustLinear(t *testing.T, services ...svc.Service) *svc.Graph {
	t.Helper()
	g, err := svc.Linear(services...)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	return g
}

func TestFindPathSingleService(t *testing.T) {
	pts := []coords.Point{{0, 0}, {5, 0}, {10, 0}, {5, 10}}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
	}
	req := svc.Request{Source: 0, Dest: 2, SG: mustLinear(t, "x")}
	p, err := FindPath(req, CapabilityProviders(caps), euclidOracle(pts), nil)
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	// Provider 1 is on the straight line (cost 10); provider 3 detours
	// (cost ~22.4).
	if len(p.Hops) != 3 || p.Hops[1].Node != 1 || p.Hops[1].Service != "x" {
		t.Errorf("path = %v, want x on node 1", p)
	}
	if math.Abs(p.DecisionCost-10) > 1e-9 {
		t.Errorf("cost = %v, want 10", p.DecisionCost)
	}
	if err := p.Validate(req, caps); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFindPathServicesCollapseOnOneNode(t *testing.T) {
	// A node with both services should host both when it is on the way.
	pts := []coords.Point{{0, 0}, {5, 0}, {10, 0}}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("a", "b"),
		svc.NewCapabilitySet(),
	}
	req := svc.Request{Source: 0, Dest: 2, SG: mustLinear(t, "a", "b")}
	p, err := FindPath(req, CapabilityProviders(caps), euclidOracle(pts), nil)
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	if math.Abs(p.DecisionCost-10) > 1e-9 {
		t.Errorf("cost = %v, want 10 (both services on node 1)", p.DecisionCost)
	}
	wantHops := 4 // src, a/1, b/1, dst
	if len(p.Hops) != wantHops {
		t.Errorf("hops = %v, want %d entries", p.Hops, wantHops)
	}
	if err := p.Validate(req, caps); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFindPathNoProviders(t *testing.T) {
	pts := []coords.Point{{0, 0}, {1, 0}}
	caps := []svc.CapabilitySet{svc.NewCapabilitySet(), svc.NewCapabilitySet()}
	req := svc.Request{Source: 0, Dest: 1, SG: mustLinear(t, "ghost")}
	if _, err := FindPath(req, CapabilityProviders(caps), euclidOracle(pts), nil); !errors.Is(err, ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}

func TestFindPathValidationErrors(t *testing.T) {
	pts := []coords.Point{{0, 0}, {1, 0}}
	caps := []svc.CapabilitySet{svc.NewCapabilitySet("x"), svc.NewCapabilitySet()}
	req := svc.Request{Source: 0, Dest: 1, SG: mustLinear(t, "x")}
	if _, err := FindPath(req, nil, euclidOracle(pts), nil); err == nil {
		t.Error("nil providers accepted")
	}
	if _, err := FindPath(req, CapabilityProviders(caps), nil, nil); err == nil {
		t.Error("nil oracle accepted")
	}
	bad := svc.Request{Source: 0, Dest: 1, SG: &svc.Graph{}}
	if _, err := FindPath(bad, CapabilityProviders(caps), euclidOracle(pts), nil); err == nil {
		t.Error("invalid SG accepted")
	}
}

// bruteForceLinear enumerates every provider assignment for a linear SG and
// returns the optimal cost.
func bruteForceLinear(req svc.Request, provs ProviderFunc, oracle Oracle) float64 {
	services := req.SG.Services
	best := math.Inf(1)
	var rec func(idx, prev int, cost float64)
	rec = func(idx, prev int, cost float64) {
		if cost >= best {
			return
		}
		if idx == len(services) {
			total := cost
			if prev != req.Dest {
				total += oracle.Dist(prev, req.Dest)
			}
			if total < best {
				best = total
			}
			return
		}
		for _, p := range provs(services[idx]) {
			step := 0.0
			if p != prev {
				step = oracle.Dist(prev, p)
			}
			rec(idx+1, p, cost+step)
		}
	}
	rec(0, req.Source, 0)
	return best
}

func TestFindPathMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		pts := make([]coords.Point, n)
		for i := range pts {
			pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		cat, err := svc.NewCatalog(5)
		if err != nil {
			return false
		}
		caps, err := svc.RandomCapabilities(rng, n, cat, 1, 3)
		if err != nil {
			return false
		}
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
		if err != nil {
			return true // random deployment too thin for the length range
		}
		req, err := gen.Next()
		if err != nil {
			return false
		}
		oracle := euclidOracle(pts)
		provs := CapabilityProviders(caps)
		p, err := FindPath(req, provs, oracle, nil)
		if err != nil {
			return false
		}
		if err := p.Validate(req, caps); err != nil {
			return false
		}
		// Reported cost must equal recomputed hop length and the brute-
		// force optimum.
		if math.Abs(p.DecisionCost-p.Length(oracle.Dist)) > 1e-9 {
			return false
		}
		want := bruteForceLinear(req, provs, oracle)
		return math.Abs(p.DecisionCost-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFindPathNonLinearSGPicksBestConfiguration(t *testing.T) {
	// Fig. 2(b)-style SG: configurations s0→s1→s2, s3→s1→s2, s3→s2.
	sg := &svc.Graph{
		Services: []svc.Service{"s0", "s1", "s2", "s3"},
		Edges:    [][2]int{{0, 1}, {3, 1}, {1, 2}, {3, 2}},
	}
	// Geometry: s3 and s2 providers sit on the straight line from source to
	// dest; s0/s1 providers force a detour. The best configuration must be
	// s3→s2.
	pts := []coords.Point{
		{0, 0},   // 0: source
		{30, 0},  // 1: dest
		{10, 0},  // 2: provides s3
		{20, 0},  // 3: provides s2
		{10, 40}, // 4: provides s0
		{20, 40}, // 5: provides s1
	}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("s3"),
		svc.NewCapabilitySet("s2"),
		svc.NewCapabilitySet("s0"),
		svc.NewCapabilitySet("s1"),
	}
	req := svc.Request{Source: 0, Dest: 1, SG: sg}
	p, err := FindPath(req, CapabilityProviders(caps), euclidOracle(pts), nil)
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	got := p.Services()
	if len(got) != 2 || got[0] != "s3" || got[1] != "s2" {
		t.Errorf("configuration = %v, want [s3 s2]", got)
	}
	if math.Abs(p.DecisionCost-30) > 1e-9 {
		t.Errorf("cost = %v, want 30", p.DecisionCost)
	}
	if err := p.Validate(req, caps); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFindPathNonLinearMatchesPerConfigurationOptimum(t *testing.T) {
	// The DAG optimum equals the minimum over configurations of the linear
	// optimum for that configuration.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		pts := make([]coords.Point, n)
		for i := range pts {
			pts[i] = coords.Point{rng.Float64() * 50, rng.Float64() * 50}
		}
		cat, err := svc.NewCatalog(8)
		if err != nil {
			return false
		}
		caps, err := svc.RandomCapabilities(rng, n, cat, 2, 5)
		if err != nil {
			return false
		}
		req, err := svc.RandomDAGRequest(rng, cat, n, 2, 1, 2)
		if err != nil {
			return false
		}
		oracle := euclidOracle(pts)
		provs := CapabilityProviders(caps)
		p, err := FindPath(req, provs, oracle, nil)
		if errors.Is(err, ErrNoProviders) {
			return true // randomly undeployed service; nothing to check
		}
		if err != nil {
			return false
		}
		best := math.Inf(1)
		for _, config := range req.SG.Configurations() {
			services := req.SG.ServicesOf(config)
			missing := false
			for _, s := range services {
				if len(provs(s)) == 0 {
					missing = true
					break
				}
			}
			if missing {
				continue
			}
			lin, err := svc.Linear(services...)
			if err != nil {
				return false
			}
			sub := svc.Request{Source: req.Source, Dest: req.Dest, SG: lin}
			c := bruteForceLinear(sub, provs, oracle)
			if c < best {
				best = c
			}
		}
		return math.Abs(p.DecisionCost-best) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// recordingExpander inserts a fixed relay between every distinct pair.
type recordingExpander struct {
	relay int
}

func (r recordingExpander) Expand(u, v int) ([]int, error) {
	if u == r.relay || v == r.relay {
		return []int{u, v}, nil
	}
	return []int{u, r.relay, v}, nil
}

func TestFindPathExpanderInsertsRelays(t *testing.T) {
	pts := []coords.Point{{0, 0}, {5, 0}, {10, 0}}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
		svc.NewCapabilitySet(),
	}
	req := svc.Request{Source: 0, Dest: 2, SG: mustLinear(t, "x")}
	p, err := FindPath(req, CapabilityProviders(caps), euclidOracle(pts), recordingExpander{relay: 1})
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	// 0 → x/1 → 2 with no extra relay (1 is adjacent to the relay itself).
	if p.NumRelays() != 0 {
		t.Errorf("relays = %d, want 0: %v", p.NumRelays(), p)
	}
	// Now force relays by moving the provider.
	caps2 := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
	}
	pts2 := append(pts, coords.Point{5, 5})
	req2 := svc.Request{Source: 0, Dest: 2, SG: mustLinear(t, "x")}
	p2, err := FindPath(req2, CapabilityProviders(caps2), euclidOracle(pts2), recordingExpander{relay: 1})
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	// 0 →(relay 1)→ x/3 →(relay 1)→ 2.
	if p2.NumRelays() != 2 {
		t.Errorf("relays = %d, want 2: %v", p2.NumRelays(), p2)
	}
	if err := p2.Validate(req2, caps2); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

type badExpander struct{}

func (badExpander) Expand(u, v int) ([]int, error) { return []int{v, u}, nil }

func TestFindPathRejectsBadExpander(t *testing.T) {
	pts := []coords.Point{{0, 0}, {5, 0}, {10, 0}}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
		svc.NewCapabilitySet(),
	}
	req := svc.Request{Source: 0, Dest: 2, SG: mustLinear(t, "x")}
	if _, err := FindPath(req, CapabilityProviders(caps), euclidOracle(pts), badExpander{}); err == nil {
		t.Error("invalid expander output accepted")
	}
}

func TestPathHelpers(t *testing.T) {
	p := &Path{Hops: []Hop{{Node: 0}, {Node: 3, Service: "a"}, {Node: 5}, {Node: 7, Service: "b"}, {Node: 9}}}
	nodes := p.Nodes()
	if len(nodes) != 5 || nodes[2] != 5 {
		t.Errorf("Nodes = %v", nodes)
	}
	if s := p.Services(); len(s) != 2 || s[0] != "a" || s[1] != "b" {
		t.Errorf("Services = %v", s)
	}
	if p.NumRelays() != 1 {
		t.Errorf("NumRelays = %d, want 1", p.NumRelays())
	}
	if got := p.String(); got != "<-/0, a/3, -/5, b/7, -/9>" {
		t.Errorf("String = %q", got)
	}
	unit := func(u, v int) float64 { return 1 }
	if l := p.Length(unit); l != 4 {
		t.Errorf("Length = %v, want 4", l)
	}
}

func TestPathValidateCatchesLies(t *testing.T) {
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
		svc.NewCapabilitySet(),
	}
	req := svc.Request{Source: 0, Dest: 2, SG: mustLinear(t, "x")}
	good := &Path{Hops: []Hop{{Node: 0}, {Node: 1, Service: "x"}, {Node: 2}}}
	if err := good.Validate(req, caps); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
	cases := []*Path{
		{},
		{Hops: []Hop{{Node: 1}, {Node: 1, Service: "x"}, {Node: 2}}},                          // wrong source
		{Hops: []Hop{{Node: 0}, {Node: 1, Service: "x"}, {Node: 1}}},                          // wrong dest
		{Hops: []Hop{{Node: 0}, {Node: 2, Service: "x"}, {Node: 2}}},                          // node lacks service
		{Hops: []Hop{{Node: 0}, {Node: 2}}},                                                   // no services performed
		{Hops: []Hop{{Node: 0}, {Node: 99, Service: "x"}, {Node: 2}}},                         // out of range
		{Hops: []Hop{{Node: 0}, {Node: 1, Service: "x"}, {Node: 1, Service: "x"}, {Node: 2}}}, // service twice
	}
	for i, p := range cases {
		if err := p.Validate(req, caps); err == nil {
			t.Errorf("bad path %d accepted: %v", i, p)
		}
	}
}
