package routing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/floats"
	"hfc/internal/hfc"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// randomOverlay builds a clusterable random overlay with converged state:
// nClusters blobs of blobSize nodes, capabilities drawn from catSize
// services.
func randomOverlay(t *testing.T, rng *rand.Rand, nClusters, blobSize, catSize int) (*hfc.Topology, []svc.CapabilitySet, []state.NodeState) {
	t.Helper()
	var pts []coords.Point
	for c := 0; c < nClusters; c++ {
		cx := float64(c%3) * 400
		cy := float64(c/3) * 400
		for i := 0; i < blobSize; i++ {
			pts = append(pts, coords.Point{cx + rng.Float64()*30, cy + rng.Float64()*30})
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	res, err := cluster.Cluster(len(pts), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	topo, err := hfc.Build(cmap, res)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cat, err := svc.NewCatalog(catSize)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, len(pts), cat, 2, 5)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	states, _, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	return topo, caps, states
}

func TestHierarchicalPathsAlwaysValidProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, caps, states := randomOverlay(t, rng, 4, 10, 12)
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 6)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			req, err := gen.Next()
			if err != nil {
				return false
			}
			p, err := RouteHierarchical(topo, states, req, RelaxBacktrack)
			if err != nil {
				// The only acceptable failure is a service deployed
				// nowhere, which the generator prevents.
				return false
			}
			if err := p.Validate(req, caps); err != nil {
				t.Logf("seed %d request %d: invalid path: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalNeverBeatsFlatOptimalProperty(t *testing.T) {
	// The flat optimum over the unconstrained embedded metric lower-bounds
	// every hierarchical path measured in the same metric.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, caps, states := randomOverlay(t, rng, 3, 8, 10)
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			req, err := gen.Next()
			if err != nil {
				return false
			}
			hier, err := RouteHierarchical(topo, states, req, RelaxBacktrack)
			if err != nil {
				return false
			}
			flat, err := FindPath(req, CapabilityProviders(caps), FullMetric{T: topo}, nil)
			if err != nil {
				return false
			}
			if hier.Length(topo.Dist) < flat.DecisionCost-1e-9 {
				t.Logf("seed %d: hierarchical %.3f beats flat optimum %.3f", seed, hier.Length(topo.Dist), flat.DecisionCost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalMatchesHFCConstrainedOptimumOnSingleCluster(t *testing.T) {
	// When everything lives in one cluster, hierarchical routing reduces
	// to the intra-cluster flat algorithm and must be optimal.
	rng := rand.New(rand.NewSource(5))
	topo, caps, states := randomOverlay(t, rng, 1, 12, 8)
	if topo.NumClusters() != 1 {
		t.Skip("random draw produced more than one cluster")
	}
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		hier, err := RouteHierarchical(topo, states, req, RelaxBacktrack)
		if err != nil {
			t.Fatalf("RouteHierarchical: %v", err)
		}
		flat, err := FindPath(req, CapabilityProviders(caps), FullMetric{T: topo}, nil)
		if err != nil {
			t.Fatalf("FindPath: %v", err)
		}
		if math.Abs(hier.Length(topo.Dist)-flat.DecisionCost) > 1e-9 {
			t.Errorf("request %d: hierarchical %.4f != flat optimum %.4f", i, hier.Length(topo.Dist), flat.DecisionCost)
		}
	}
}

// tieBreakFixture builds the geometry where back-tracking matters: two
// candidate middle clusters whose external links tie, but whose internal
// border-to-border distances differ drastically (the §5.1 path-1 vs path-2
// argument).
//
// Cluster 0 (source), clusters 1 and 2 (middle candidates, both provide
// "mid"), cluster 3 (destination). Cluster 1's entry and exit borders are
// far apart; cluster 2's coincide.
func tieBreakFixture(t *testing.T) (*hfc.Topology, []svc.CapabilitySet, []state.NodeState) {
	t.Helper()
	// Source cluster at the bottom, destination cluster straight above it.
	// Cluster 1 is stretched vertically: its entry border (from cluster 0)
	// and exit border (to cluster 3) are 160 apart, but its external links
	// are short (70.7 each). Cluster 2 is compact but sits farther out, so
	// its external links are long (~126 each). External-only: via cluster 1
	// = 141 beats via cluster 2 = 253. With internal distances: via cluster
	// 1 = 141+160 loses to via cluster 2 = 253+1.4.
	pts := []coords.Point{
		// Cluster 0: source side.
		{0, 0},   // 0 source proxy
		{10, 10}, // 1 border toward everything
		{-5, -5}, // 2 filler
		// Cluster 1: vertically stretched middle.
		{80, 20},  // 3 entry border (from cluster 0)
		{80, 180}, // 4 exit border (to cluster 3)
		{80, 100}, // 5 provides "mid"
		// Cluster 2: compact middle, farther out.
		{100, 100}, // 6 border toward cluster 3
		{101, 101}, // 7 provides "mid"
		{99, 99},   // 8 border toward cluster 0
		// Cluster 3: destination side.
		{10, 190}, // 9 border toward everything
		{0, 200},  // 10 destination proxy
		{-5, 205}, // 11 filler
	}
	assignment := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	clusters := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	topo, err := hfc.Build(cmap, &cluster.Result{Assignment: assignment, Clusters: clusters})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	caps := make([]svc.CapabilitySet, len(pts))
	for i := range caps {
		caps[i] = svc.NewCapabilitySet()
	}
	caps[5].Add("mid")
	caps[7].Add("mid")
	states, _, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	return topo, caps, states
}

func TestBacktrackConsidersInternalDistances(t *testing.T) {
	topo, caps, states := tieBreakFixture(t)
	sg, err := svc.Linear("mid")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 10, SG: sg}

	// Sanity on the geometry: the external-only route via cluster 1 is
	// strictly shorter on external links, but cluster 1's internal
	// crossing (160) dwarfs cluster 2's (1.4).
	via1 := extSum(t, topo, []int{0, 1, 3})
	via2 := extSum(t, topo, []int{0, 2, 3})
	if via1 >= via2 {
		t.Fatalf("fixture broken: external-only via cluster 1 (%v) should beat via cluster 2 (%v)", via1, via2)
	}

	rb, err := NewHierarchicalRouter(topo, states, 10, RelaxBacktrack)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	resB, err := rb.Route(req)
	if err != nil {
		t.Fatalf("Route backtrack: %v", err)
	}
	if resB.CSP[0].Cluster != 2 {
		t.Errorf("backtrack mapped mid to cluster %d, want 2 (small internal crossing)", resB.CSP[0].Cluster)
	}
	if err := resB.Path.Validate(req, caps); err != nil {
		t.Errorf("backtrack path invalid: %v", err)
	}

	re, err := NewHierarchicalRouter(topo, states, 10, RelaxExternalOnly)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	resE, err := re.Route(req)
	if err != nil {
		t.Fatalf("Route external-only: %v", err)
	}
	if resE.CSP[0].Cluster != 1 {
		t.Errorf("external-only mapped mid to cluster %d, want 1 (blind to internal distance)", resE.CSP[0].Cluster)
	}
	// The resulting concrete paths: backtrack must win end to end.
	lb := resB.Path.Length(topo.Dist)
	le := resE.Path.Length(topo.Dist)
	if lb >= le {
		t.Errorf("backtrack path length %.2f not better than external-only %.2f", lb, le)
	}
}

// extSum sums external link lengths along a cluster sequence.
func extSum(t *testing.T, topo *hfc.Topology, clusters []int) float64 {
	t.Helper()
	total := 0.0
	for i := 0; i+1 < len(clusters); i++ {
		l, err := topo.ExternalLinkLength(clusters[i], clusters[i+1])
		if err != nil {
			t.Fatalf("ExternalLinkLength: %v", err)
		}
		total += l
	}
	return total
}

func TestExactNeverWorseThanBacktrackProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, _, states := randomOverlay(t, rng, 4, 8, 10)
		caps := make([]svc.CapabilitySet, 0)
		_ = caps
		gen, err := newGenFromStates(rng, states, topo)
		if err != nil {
			return true // degenerate deployment; skip
		}
		for i := 0; i < 6; i++ {
			req, err := gen.Next()
			if err != nil {
				return false
			}
			rb, err := NewHierarchicalRouter(topo, states, req.Dest, RelaxBacktrack)
			if err != nil {
				return false
			}
			resB, err := rb.Route(req)
			if err != nil {
				return false
			}
			re, err := NewHierarchicalRouter(topo, states, req.Dest, RelaxExact)
			if err != nil {
				return false
			}
			resE, err := re.Route(req)
			if err != nil {
				return false
			}
			if resE.CSPCost > resB.CSPCost+1e-9 {
				t.Logf("seed %d: exact CSP %.3f worse than backtrack %.3f", seed, resE.CSPCost, resB.CSPCost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// newGenFromStates rebuilds a request generator from converged SCT_P state
// (the capability truth is recoverable from any node's own entry).
func newGenFromStates(rng *rand.Rand, states []state.NodeState, topo *hfc.Topology) (*svc.RequestGenerator, error) {
	caps := make([]svc.CapabilitySet, topo.N())
	for i := range caps {
		caps[i] = states[i].SCTP[i]
	}
	return svc.NewRequestGenerator(rng, caps, 2, 5)
}

func TestRouteRejectsWrongDestination(t *testing.T) {
	topo, _, states := tieBreakFixture(t)
	sg, err := svc.Linear("mid")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	r, err := NewHierarchicalRouter(topo, states, 10, RelaxBacktrack)
	if err != nil {
		t.Fatalf("NewHierarchicalRouter: %v", err)
	}
	if _, err := r.Route(svc.Request{Source: 0, Dest: 9, SG: sg}); err == nil {
		t.Error("request for another destination accepted")
	}
}

func TestRouteMissingService(t *testing.T) {
	topo, _, states := tieBreakFixture(t)
	sg, err := svc.Linear("nowhere")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := RouteHierarchical(topo, states, svc.Request{Source: 0, Dest: 10, SG: sg}, RelaxBacktrack); !errors.Is(err, ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}

func TestRouterValidation(t *testing.T) {
	topo, _, states := tieBreakFixture(t)
	view, err := topo.View(10)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	solver := &LocalIntraSolver{Topo: topo, States: states}
	sg, err := svc.Linear("mid")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 10, SG: sg}
	cases := []HierarchicalRouter{
		{View: nil, State: &states[10], Intra: solver, ClusterOfSource: topo.ClusterOf},
		{View: view, State: nil, Intra: solver, ClusterOfSource: topo.ClusterOf},
		{View: view, State: &states[10], Intra: nil, ClusterOfSource: topo.ClusterOf},
		{View: view, State: &states[10], Intra: solver, ClusterOfSource: nil},
		{View: view, State: &states[10], Intra: solver, ClusterOfSource: topo.ClusterOf, Mode: RelaxMode(42)},
	}
	for i, r := range cases {
		if _, err := r.Route(req); err == nil {
			t.Errorf("invalid router %d accepted", i)
		}
	}
	if _, err := NewHierarchicalRouter(nil, states, 10, RelaxBacktrack); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewHierarchicalRouter(topo, states[:2], 10, RelaxBacktrack); err == nil {
		t.Error("short state list accepted")
	}
	if _, err := NewHierarchicalRouter(topo, states, -1, RelaxBacktrack); err == nil {
		t.Error("negative destination accepted")
	}
}

func TestLocalIntraSolverValidation(t *testing.T) {
	topo, _, states := tieBreakFixture(t)
	s := &LocalIntraSolver{Topo: topo, States: states}
	// Cross-cluster endpoints must be rejected.
	if _, err := s.SolveChild(ChildRequest{Cluster: 0, Source: 0, Dest: 5, Resolver: 1}); err == nil {
		t.Error("cross-cluster dest accepted")
	}
	if _, err := s.SolveChild(ChildRequest{Cluster: 0, Source: 5, Dest: 1, Resolver: 1}); err == nil {
		t.Error("cross-cluster source accepted")
	}
	if _, err := s.SolveChild(ChildRequest{Cluster: 0, Source: 0, Dest: 1, Resolver: 5}); err == nil {
		t.Error("cross-cluster resolver accepted")
	}
	bad := &LocalIntraSolver{Topo: nil}
	if _, err := bad.SolveChild(ChildRequest{}); err == nil {
		t.Error("nil topology accepted")
	}
	short := &LocalIntraSolver{Topo: topo, States: states[:1]}
	if _, err := short.SolveChild(ChildRequest{Cluster: 0, Source: 0, Dest: 1, Resolver: 1}); err == nil {
		t.Error("short state list accepted")
	}
}

func TestLocalIntraSolverRelayOnlyChild(t *testing.T) {
	topo, _, states := tieBreakFixture(t)
	s := &LocalIntraSolver{Topo: topo, States: states}
	p, err := s.SolveChild(ChildRequest{Cluster: 0, Source: 0, Dest: 1, Resolver: 1})
	if err != nil {
		t.Fatalf("SolveChild: %v", err)
	}
	if len(p.Hops) != 2 || p.Hops[0].Node != 0 || p.Hops[1].Node != 1 {
		t.Errorf("relay child path = %v", p)
	}
	same, err := s.SolveChild(ChildRequest{Cluster: 0, Source: 1, Dest: 1, Resolver: 1})
	if err != nil {
		t.Fatalf("SolveChild: %v", err)
	}
	if len(same.Hops) != 1 || same.DecisionCost != 0 {
		t.Errorf("same-node relay child = %v", same)
	}
}

func TestHFCMetricConsistentWithExpand(t *testing.T) {
	topo, _, _ := tieBreakFixture(t)
	m := HFCMetric{T: topo}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(topo.N()), rng.Intn(topo.N())
		seq, err := m.Expand(u, v)
		if err != nil {
			t.Fatalf("Expand(%d,%d): %v", u, v, err)
		}
		if !floats.AlmostEqual(topo.PathLength(seq), m.Dist(u, v)) {
			t.Fatalf("Dist(%d,%d) = %v but expanded length = %v", u, v, m.Dist(u, v), topo.PathLength(seq))
		}
		// HFC distance dominates the direct embedded distance.
		if m.Dist(u, v) < topo.Dist(u, v)-1e-9 {
			t.Fatalf("HFC dist %v below direct %v", m.Dist(u, v), topo.Dist(u, v))
		}
	}
}

func TestRelaxModeString(t *testing.T) {
	for _, m := range []RelaxMode{RelaxBacktrack, RelaxExact, RelaxExternalOnly} {
		if m.String() == "" {
			t.Errorf("mode %d has empty String()", int(m))
		}
	}
	if RelaxMode(0).String() == "" {
		t.Error("invalid mode has empty String()")
	}
}
