package routing

import (
	"hfc/internal/hfc"
)

// ExpanderFunc adapts a function to the Expander interface.
type ExpanderFunc func(u, v int) ([]int, error)

// Expand implements Expander.
func (f ExpanderFunc) Expand(u, v int) ([]int, error) { return f(u, v) }

// HFCMetric is the distance metric and relay structure the HFC topology
// imposes (§3 connectivity): nodes within a cluster communicate directly at
// their embedded distance; nodes in different clusters communicate through
// the fixed border-proxy pair of their clusters. It is the oracle for the
// "HFC without state aggregation" baseline of §6.2, where every proxy has
// full (coordinate) state but the topology is still HFC.
type HFCMetric struct {
	T *hfc.Topology
}

// Dist implements Oracle: the length of the overlay hop path from u to v.
func (m HFCMetric) Dist(u, v int) float64 { return m.T.ConstrainedDist(u, v) }

// Expand implements Expander with the border-proxy relay sequence.
func (m HFCMetric) Expand(u, v int) ([]int, error) { return m.T.OverlayHopPath(u, v) }

// FullMetric is the unconstrained embedded metric: every pair of overlay
// nodes communicates directly. It models the idealized fully connected
// overlay the paper argues large networks cannot afford but small clusters
// can (§3), and serves as the lower-bound reference in the experiments.
type FullMetric struct {
	T *hfc.Topology
}

// Dist implements Oracle.
func (m FullMetric) Dist(u, v int) float64 { return m.T.Dist(u, v) }
