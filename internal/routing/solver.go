package routing

import (
	"errors"
	"fmt"

	"hfc/internal/hfc"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// LocalIntraSolver resolves child requests by direct computation (§5.2),
// using only the knowledge the child's resolver proxy legitimately holds:
// its SCT_P for providers and its own-cluster member coordinates for
// distances. Inside a cluster the HFC topology is fully connected, so the
// flat algorithm of [11] returns the optimal intra-cluster mapping.
type LocalIntraSolver struct {
	// Topo supplies membership and intra-cluster distances.
	Topo *hfc.Topology
	// States holds the converged per-node routing state; the resolver's
	// SCT_P supplies the provider lists.
	States []state.NodeState
	// Indexes, when non-nil, supplies prebuilt inverted provider indexes
	// per resolver, turning the per-service provider lookup into a map
	// access instead of a scan over every cluster member's capability set
	// (and eliminating the per-call closure allocation). Share one
	// LazyIndexes across solvers serving the same states — serve.Engine
	// does — so indexes are built once per state round, not per request.
	Indexes *LazyIndexes
	// Exclude, when non-nil, removes nodes from provider selection — the
	// hook an availability tracker (serve.Engine's unavailable set) filters
	// suspected-partitioned proxies through. It must be safe for concurrent
	// use.
	Exclude func(node int) bool
	// ExcludeAny, when non-nil alongside Exclude, reports whether ANY node
	// is currently excluded. When it returns false the solver skips the
	// per-service filtered copy of every provider list entirely — the
	// common fault-free steady state — instead of copying each list only to
	// keep every element. It must be safe for concurrent use and may be
	// conservatively true.
	ExcludeAny func() bool
}

var _ IntraSolver = (*LocalIntraSolver)(nil)

// SolveChild implements IntraSolver.
func (s *LocalIntraSolver) SolveChild(child ChildRequest) (*Path, error) {
	if s.Topo == nil {
		return nil, errors.New("routing: intra solver has nil topology")
	}
	if len(s.States) != s.Topo.N() {
		return nil, fmt.Errorf("routing: intra solver has %d states for %d nodes", len(s.States), s.Topo.N())
	}
	if s.Topo.ClusterOf(child.Source) != child.Cluster {
		return nil, fmt.Errorf("routing: child source %d not in cluster %d", child.Source, child.Cluster)
	}
	if s.Topo.ClusterOf(child.Dest) != child.Cluster {
		return nil, fmt.Errorf("routing: child destination %d not in cluster %d", child.Dest, child.Cluster)
	}
	if s.Topo.ClusterOf(child.Resolver) != child.Cluster {
		return nil, fmt.Errorf("routing: child resolver %d not in cluster %d", child.Resolver, child.Cluster)
	}

	// A relay-only child: the cluster just carries the stream between its
	// borders (or an endpoint and a border).
	if len(child.Services) == 0 {
		if child.Source == child.Dest {
			return &Path{Hops: []Hop{{Node: child.Source}}}, nil
		}
		return &Path{
			Hops:         []Hop{{Node: child.Source}, {Node: child.Dest}},
			DecisionCost: s.Topo.Dist(child.Source, child.Dest),
		}, nil
	}

	sg, err := svc.Linear(child.Services...)
	if err != nil {
		return nil, fmt.Errorf("routing: child service chain: %w", err)
	}
	var providers ProviderFunc
	if s.Indexes != nil {
		providers = s.Indexes.For(child.Resolver).ProviderFunc()
	} else {
		resolver := &s.States[child.Resolver]
		members := s.Topo.Members(child.Cluster)
		providers = func(x svc.Service) []int {
			var out []int
			for _, m := range members {
				if set, ok := resolver.SCTP[m]; ok && set.Has(x) {
					out = append(out, m)
				}
			}
			return out
		}
	}
	if s.Exclude != nil && (s.ExcludeAny == nil || s.ExcludeAny()) {
		inner := providers
		providers = func(x svc.Service) []int {
			all := inner(x)
			// The index may hand back a shared slice; filter into a copy.
			out := make([]int, 0, len(all))
			for _, m := range all {
				if !s.Exclude(m) {
					out = append(out, m)
				}
			}
			return out
		}
	}
	req := svc.Request{Source: child.Source, Dest: child.Dest, SG: sg}
	return FindPath(req, providers, OracleFunc(s.Topo.Dist), nil)
}
