package routing

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/coords"
	"hfc/internal/svc"
)

func TestFindDisjointPairBasic(t *testing.T) {
	// Two providers of each service on either side of the line.
	pts := []coords.Point{
		{0, 0},  // 0 source
		{30, 0}, // 1 dest
		{10, 1}, // 2 a (near)
		{20, 1}, // 3 b (near)
		{10, 9}, // 4 a (far)
		{20, 9}, // 5 b (far)
	}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(), svc.NewCapabilitySet(),
		svc.NewCapabilitySet("a"), svc.NewCapabilitySet("b"),
		svc.NewCapabilitySet("a"), svc.NewCapabilitySet("b"),
	}
	req := svc.Request{Source: 0, Dest: 1, SG: mustLinear(t, "a", "b")}
	primary, backup, err := FindDisjointPair(req, CapabilityProviders(caps), euclidOracle(pts), nil)
	if err != nil {
		t.Fatalf("FindDisjointPair: %v", err)
	}
	if err := primary.Validate(req, caps); err != nil {
		t.Fatalf("primary invalid: %v", err)
	}
	if err := backup.Validate(req, caps); err != nil {
		t.Fatalf("backup invalid: %v", err)
	}
	// Primary uses the near providers, backup the far ones.
	if n := serviceNode(primary, "a"); n != 2 {
		t.Errorf("primary a on %d, want 2", n)
	}
	if n := serviceNode(backup, "a"); n != 4 {
		t.Errorf("backup a on %d, want 4", n)
	}
	if backup.DecisionCost < primary.DecisionCost {
		t.Errorf("backup %v cheaper than primary %v", backup.DecisionCost, primary.DecisionCost)
	}
}

func TestFindDisjointPairNoBackup(t *testing.T) {
	pts := []coords.Point{{0, 0}, {10, 0}, {5, 1}}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(), svc.NewCapabilitySet(), svc.NewCapabilitySet("only"),
	}
	req := svc.Request{Source: 0, Dest: 1, SG: mustLinear(t, "only")}
	primary, backup, err := FindDisjointPair(req, CapabilityProviders(caps), euclidOracle(pts), nil)
	if !errors.Is(err, ErrNoBackup) {
		t.Fatalf("err = %v, want ErrNoBackup", err)
	}
	if primary == nil {
		t.Fatal("primary missing despite feasible request")
	}
	if backup != nil {
		t.Fatal("backup returned alongside ErrNoBackup")
	}
}

func TestFindDisjointPairInfeasiblePrimary(t *testing.T) {
	pts := []coords.Point{{0, 0}, {10, 0}}
	caps := []svc.CapabilitySet{svc.NewCapabilitySet(), svc.NewCapabilitySet()}
	req := svc.Request{Source: 0, Dest: 1, SG: mustLinear(t, "ghost")}
	if _, _, err := FindDisjointPair(req, CapabilityProviders(caps), euclidOracle(pts), nil); !errors.Is(err, ErrNoProviders) {
		t.Fatalf("err = %v, want ErrNoProviders", err)
	}
}

func TestFindDisjointPairProviderDisjointProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		pts := make([]coords.Point, n)
		for i := range pts {
			pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		cat, err := svc.NewCatalog(5)
		if err != nil {
			return false
		}
		caps, err := svc.RandomCapabilities(rng, n, cat, 1, 3)
		if err != nil {
			return false
		}
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 3)
		if err != nil {
			return true // random deployment too thin for the length range
		}
		req, err := gen.Next()
		if err != nil {
			return false
		}
		primary, backup, err := FindDisjointPair(req, CapabilityProviders(caps), euclidOracle(pts), nil)
		if errors.Is(err, ErrNoBackup) {
			return primary != nil // legitimate outcome
		}
		if err != nil {
			return false
		}
		if primary.Validate(req, caps) != nil || backup.Validate(req, caps) != nil {
			return false
		}
		// Provider sets must be disjoint.
		used := map[int]bool{}
		for _, h := range primary.Hops {
			if h.Service != "" {
				used[h.Node] = true
			}
		}
		for _, h := range backup.Hops {
			if h.Service != "" && used[h.Node] {
				return false
			}
		}
		return backup.DecisionCost >= primary.DecisionCost-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
