package routing

import (
	"errors"
	"fmt"

	"hfc/internal/hfc"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// NewHierarchicalRouter wires a §5 router for the destination proxy dest
// from the simulation's global structures, carving out exactly the
// knowledge dest legitimately holds: its Fig. 4 view, its converged state,
// a LocalIntraSolver for child requests, and the cluster-ID query answered
// from the clustering assignment (the source proxy would answer it in a
// deployment).
func NewHierarchicalRouter(topo *hfc.Topology, states []state.NodeState, dest int, mode RelaxMode) (*HierarchicalRouter, error) {
	if topo == nil {
		return nil, errors.New("routing: nil topology")
	}
	if len(states) != topo.N() {
		return nil, fmt.Errorf("routing: %d states for %d nodes", len(states), topo.N())
	}
	if dest < 0 || dest >= topo.N() {
		return nil, fmt.Errorf("routing: destination %d out of range [0,%d)", dest, topo.N())
	}
	view, err := topo.View(dest)
	if err != nil {
		return nil, err
	}
	return &HierarchicalRouter{
		View:            view,
		State:           &states[dest],
		Intra:           &LocalIntraSolver{Topo: topo, States: states},
		ClusterOfSource: topo.ClusterOf,
		Mode:            mode,
	}, nil
}

// RouteHierarchical is the one-call form: route req over the HFC framework
// with converged state, returning the composed path.
func RouteHierarchical(topo *hfc.Topology, states []state.NodeState, req svc.Request, mode RelaxMode) (*Path, error) {
	r, err := NewHierarchicalRouter(topo, states, req.Dest, mode)
	if err != nil {
		return nil, err
	}
	res, err := r.Route(req)
	if err != nil {
		return nil, err
	}
	return res.Path, nil
}
