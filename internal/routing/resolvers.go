package routing

import (
	"hfc/internal/hfc"
)

// ResolverCandidates lists, in preference order, the proxies of
// child.Cluster that the view's owner can legitimately address to resolve
// the child request: the designated resolver first, then every other
// member of the cluster the view knows. Any member works — intra-cluster
// flooding gives every member the full SCT_P — but the view only knows
// foreign clusters through their border proxies, so:
//
//   - for the view's own cluster, the alternates are the remaining cluster
//     members (sorted);
//   - for a foreign cluster, the alternates are its primary border proxies
//     toward each other cluster, then its backup border proxies, in
//     cluster-ID order.
//
// The caller retries down this list when the resolver at the front fails
// to answer (crashed or unreachable) — the §5 conquer phase's failover.
func ResolverCandidates(view *hfc.NodeView, child ChildRequest) []int {
	out := []int{child.Resolver}
	seen := map[int]bool{child.Resolver: true}
	add := func(n int) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if child.Cluster == view.ClusterID {
		for _, m := range view.Members {
			add(m)
		}
		return out
	}
	// Primaries toward every other cluster first, then backups: primaries
	// are likelier to already hold warm state for the pair being routed.
	for other := 0; other < view.NumClusters; other++ {
		if other == child.Cluster {
			continue
		}
		pairs, err := view.BorderRanked(child.Cluster, other)
		if err != nil {
			continue
		}
		add(pairs[0][0])
	}
	for other := 0; other < view.NumClusters; other++ {
		if other == child.Cluster {
			continue
		}
		pairs, err := view.BorderRanked(child.Cluster, other)
		if err != nil {
			continue
		}
		for _, p := range pairs[1:] {
			add(p[0])
		}
	}
	return out
}
