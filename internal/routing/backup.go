package routing

import (
	"errors"
	"fmt"

	"hfc/internal/svc"
)

// ErrNoBackup is returned when no provider-disjoint backup path exists.
var ErrNoBackup = errors.New("routing: no provider-disjoint backup path")

// FindDisjointPair computes a primary optimal service path and a backup
// path whose PROVIDER nodes are disjoint from the primary's — if any proxy
// serving the primary fails (the "machine volatility" the paper lists among
// QoS concerns), the backup is immediately usable. Relay nodes and the
// request endpoints may be shared; only service placements must differ.
//
// The backup is the optimal path over the reduced provider sets, so the
// pair is the classical "best + best-disjoint" combination rather than a
// jointly-optimal pair (which would require Suurballe-style machinery over
// provider assignments; the greedy pair is what failover systems deploy).
// ErrNoBackup (wrapped) is returned when some service has all its providers
// on the primary path.
func FindDisjointPair(req svc.Request, providers ProviderFunc, oracle Oracle, exp Expander) (primary, backup *Path, err error) {
	primary, err = FindPath(req, providers, oracle, exp)
	if err != nil {
		return nil, nil, err
	}
	used := make(map[int]bool)
	for _, h := range primary.Hops {
		if h.Service != "" {
			used[h.Node] = true
		}
	}
	reduced := func(s svc.Service) []int {
		var out []int
		for _, p := range providers(s) {
			if !used[p] {
				out = append(out, p)
			}
		}
		return out
	}
	backup, err = FindPath(req, reduced, oracle, exp)
	if err != nil {
		if errors.Is(err, ErrNoProviders) || errors.Is(err, ErrInfeasible) {
			return primary, nil, fmt.Errorf("routing: %w: %v", ErrNoBackup, err)
		}
		return primary, nil, err
	}
	return primary, backup, nil
}
