package routing

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hfc/internal/coords"
	"hfc/internal/svc"
)

// scratchScenario is one randomized FindPath instance derived from a seed:
// node coordinates, capability assignment, a (possibly non-linear) service
// graph, and an optional admissibility filter.
type scratchScenario struct {
	req        svc.Request
	providers  ProviderFunc
	oracle     Oracle
	admissible EdgeFilter
}

func buildScratchScenario(seed int64, nNodes, nServices int) scratchScenario {
	rng := rand.New(rand.NewSource(seed))
	if nNodes < 2 {
		nNodes = 2
	}
	if nServices < 1 {
		nServices = 1
	}

	pts := make([]coords.Point, nNodes)
	for i := range pts {
		pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
	}

	names := make([]svc.Service, nServices)
	for i := range names {
		names[i] = svc.Service('a' + byte(i%26))
		if i >= 26 {
			names[i] += svc.Service('0' + byte(i/26))
		}
	}
	caps := make([]svc.CapabilitySet, nNodes)
	for i := range caps {
		caps[i] = svc.NewCapabilitySet()
	}
	// Every service gets at least one provider; extras at random.
	for _, s := range names {
		caps[rng.Intn(nNodes)].Add(s)
		for i := range caps {
			if rng.Float64() < 0.3 {
				caps[i].Add(s)
			}
		}
	}

	// Random DAG over the services: forward edges i -> j (i < j) keep it
	// acyclic; ensure weak connectivity by chaining consecutive vertices
	// with some probability and adding random skips.
	sg := &svc.Graph{Services: names}
	for i := 0; i+1 < nServices; i++ {
		if rng.Float64() < 0.8 {
			sg.Edges = append(sg.Edges, [2]int{i, i + 1})
		}
	}
	for k := 0; k < nServices; k++ {
		i := rng.Intn(nServices)
		j := rng.Intn(nServices)
		if i < j {
			sg.Edges = append(sg.Edges, [2]int{i, j})
		}
	}

	var filter EdgeFilter
	if rng.Float64() < 0.5 {
		// A deterministic filter that prunes some hop pairs.
		mod := 2 + rng.Intn(3)
		filter = func(u, v int) bool { return (u+v)%mod != 0 }
	}

	return scratchScenario{
		req:        svc.Request{Source: rng.Intn(nNodes), Dest: rng.Intn(nNodes), SG: sg},
		providers:  CapabilityProviders(caps),
		oracle:     euclidOracle(pts),
		admissible: filter,
	}
}

// comparePooledFresh runs the scenario through the pooled entry point and
// through a fresh arena, failing unless errors and results (hop sequences
// and bitwise costs) agree.
func comparePooledFresh(t *testing.T, sc scratchScenario) {
	t.Helper()
	pooled, errP := FindPathFiltered(sc.req, sc.providers, sc.oracle, nil, sc.admissible)
	fresh, errF := findPathScratch(sc.req, sc.providers, sc.oracle, nil, sc.admissible, new(pathScratch))
	if (errP == nil) != (errF == nil) {
		t.Fatalf("pooled err = %v, fresh err = %v", errP, errF)
	}
	if errP != nil {
		if errP.Error() != errF.Error() {
			t.Fatalf("pooled err = %v, fresh err = %v", errP, errF)
		}
		return
	}
	//hfcvet:ignore floatdist the pooled arena must reproduce the fresh result bit-identically
	if pooled.DecisionCost != fresh.DecisionCost {
		t.Fatalf("pooled cost = %v, fresh cost = %v (must be bit-identical)", pooled.DecisionCost, fresh.DecisionCost)
	}
	if !reflect.DeepEqual(pooled.Hops, fresh.Hops) {
		t.Fatalf("pooled hops = %v, fresh hops = %v", pooled.Hops, fresh.Hops)
	}
}

func TestFindPathScratchMatchesFresh(t *testing.T) {
	// Dirty the pool with a large instance first so small runs exercise
	// capacity reuse with stale contents.
	big := buildScratchScenario(99, 40, 12)
	if _, err := FindPathFiltered(big.req, big.providers, big.oracle, nil, big.admissible); err != nil && !errors.Is(err, ErrInfeasible) {
		t.Fatalf("warm-up: %v", err)
	}
	for seed := int64(0); seed < 200; seed++ {
		sc := buildScratchScenario(seed, 2+int(seed%17), 1+int(seed%7))
		comparePooledFresh(t, sc)
	}
}

func TestFindPathScratchConcurrentReuse(t *testing.T) {
	// Concurrent pooled calls must not share live scratches; each goroutine
	// cross-checks its pooled result against a fresh arena.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for seed := int64(g * 100); seed < int64(g*100+50); seed++ {
				sc := buildScratchScenario(seed, 3+int(seed%11), 1+int(seed%5))
				pooled, errP := FindPathFiltered(sc.req, sc.providers, sc.oracle, nil, sc.admissible)
				fresh, errF := findPathScratch(sc.req, sc.providers, sc.oracle, nil, sc.admissible, new(pathScratch))
				if (errP == nil) != (errF == nil) {
					done <- errors.New("pooled/fresh error mismatch")
					return
				}
				//hfcvet:ignore floatdist the pooled arena must reproduce the fresh result bit-identically
				if errP == nil && (pooled.DecisionCost != fresh.DecisionCost || !reflect.DeepEqual(pooled.Hops, fresh.Hops)) {
					done <- errors.New("pooled/fresh result mismatch")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzFindPathScratch asserts that the pooled-scratch search is
// indistinguishable from a fresh-allocation run on arbitrary randomized
// instances (ISSUE PR4 satellite d).
func FuzzFindPathScratch(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2))
	f.Add(int64(7), uint8(12), uint8(5))
	f.Add(int64(42), uint8(30), uint8(9))
	f.Add(int64(-3), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nNodes, nServices uint8) {
		sc := buildScratchScenario(seed, int(nNodes%48), int(nServices%14))
		comparePooledFresh(t, sc)
	})
}
