package routing

import (
	"fmt"
	"sync"
	"testing"

	"hfc/internal/svc"
)

func testGraph(t *testing.T, names ...string) *svc.Graph {
	t.Helper()
	services := make([]svc.Service, len(names))
	for i, n := range names {
		services[i] = svc.Service(n)
	}
	g, err := svc.Linear(services...)
	if err != nil {
		t.Fatalf("Linear(%v): %v", names, err)
	}
	return g
}

func TestRouteCacheHitMissLifecycle(t *testing.T) {
	c := NewRouteCache()
	g := testGraph(t, "a", "b", "c")
	key := NewCacheKey(1, 2, g)
	canon := g.Canonical()

	if _, ok := c.Get(key, canon); ok {
		t.Fatal("hit on an empty cache")
	}
	v := c.Version()
	c.Put(key, canon, "route-1", []int{0, 3}, v)
	got, ok := c.Get(key, canon)
	if !ok || got != "route-1" {
		t.Fatalf("Get = (%v, %v), want (route-1, true)", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 store", st)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestRouteCachePerClusterInvalidation(t *testing.T) {
	c := NewRouteCache()
	g := testGraph(t, "a", "b")
	canon := g.Canonical()
	kA := NewCacheKey(0, 1, g)
	kB := NewCacheKey(2, 3, g)
	v := c.Version()
	c.Put(kA, canon, "through-0", []int{0}, v)
	c.Put(kB, canon, "through-5", []int{5}, v)

	c.AdvanceRound(0)
	if _, ok := c.Get(kA, canon); ok {
		t.Error("route stamped with cluster 0 survived AdvanceRound(0)")
	}
	if _, ok := c.Get(kB, canon); !ok {
		t.Error("route through an untouched cluster was invalidated")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after lazy eviction, want 1", c.Len())
	}
}

func TestRouteCacheAdvanceAllInvalidatesEverything(t *testing.T) {
	c := NewRouteCache()
	g := testGraph(t, "a")
	canon := g.Canonical()
	for i := 0; i < 4; i++ {
		c.Put(NewCacheKey(i, i+1, g), canon, i, []int{i}, c.Version())
	}
	c.AdvanceAll()
	for i := 0; i < 4; i++ {
		if _, ok := c.Get(NewCacheKey(i, i+1, g), canon); ok {
			t.Errorf("entry %d survived AdvanceAll", i)
		}
	}
}

// TestRouteCacheStaleVersionPutDropped is the race guard: a route computed
// BEFORE an invalidation must not be stored AFTER it, or a stale path would
// be stamped with fresh rounds and served forever.
func TestRouteCacheStaleVersionPutDropped(t *testing.T) {
	c := NewRouteCache()
	g := testGraph(t, "a", "b")
	key := NewCacheKey(0, 1, g)
	canon := g.Canonical()

	v := c.Version() // route computation starts here...
	c.AdvanceRound(2)
	c.Put(key, canon, "stale", []int{2}, v) // ...and finishes after the bump
	if _, ok := c.Get(key, canon); ok {
		t.Fatal("stale-version Put was stored")
	}
	if st := c.Stats(); st.Stores != 0 {
		t.Errorf("Stores = %d, want 0 (dropped)", st.Stores)
	}

	// A recapture after the advance is current again and must store.
	c.Put(key, canon, "fresh", []int{2}, c.Version())
	if got, ok := c.Get(key, canon); !ok || got != "fresh" {
		t.Fatalf("Get = (%v, %v) after fresh Put, want (fresh, true)", got, ok)
	}
}

// TestRouteCacheCollisionGuard forces two graphs under one key (same
// fingerprint slot) and checks the canonical string demotes the mismatch to
// a miss rather than returning the wrong route.
func TestRouteCacheCollisionGuard(t *testing.T) {
	c := NewRouteCache()
	g1 := testGraph(t, "a", "b")
	g2 := testGraph(t, "a", "c")
	key := NewCacheKey(0, 1, g1) // pretend g2 collided into g1's key
	c.Put(key, g1.Canonical(), "g1-route", nil, c.Version())
	if _, ok := c.Get(key, g2.Canonical()); ok {
		t.Fatal("canonical mismatch returned a cached route")
	}
	if got, ok := c.Get(key, g1.Canonical()); !ok || got != "g1-route" {
		t.Fatalf("matching canonical Get = (%v, %v), want (g1-route, true)", got, ok)
	}
}

func TestRouteCacheDedupesStampClusters(t *testing.T) {
	c := NewRouteCache()
	g := testGraph(t, "a", "b")
	key := NewCacheKey(0, 1, g)
	canon := g.Canonical()
	c.Put(key, canon, "r", []int{1, 1, 2, 1, 2}, c.Version())
	sh := &c.shards[key.shard(len(c.shards))]
	sh.mu.Lock()
	stamps := len(sh.entries[key].stamps)
	sh.mu.Unlock()
	if stamps != 2 {
		t.Errorf("stored %d stamps for clusters {1,2}, want 2", stamps)
	}
}

// TestRouteCacheShardDistribution checks that realistic key populations
// spread across shards instead of collapsing onto one lock: every shard of
// a 16-shard cache should own some of 4096 distinct (src, dst) keys.
func TestRouteCacheShardDistribution(t *testing.T) {
	c := NewRouteCacheSharded(16)
	g := testGraph(t, "a", "b")
	canon := g.Canonical()
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			if src == dst {
				continue
			}
			c.Put(NewCacheKey(src, dst, g), canon, "r", nil, c.Version())
		}
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := len(sh.entries)
		sh.mu.Unlock()
		if n == 0 {
			t.Errorf("shard %d holds no entries; key hash is collapsing shards", i)
		}
	}
}

// TestRouteCacheSingleShard pins the degenerate configuration: one shard
// must behave exactly like the pre-sharding cache.
func TestRouteCacheSingleShard(t *testing.T) {
	c := NewRouteCacheSharded(0) // clamps to 1
	if c.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", c.NumShards())
	}
	g := testGraph(t, "a", "b")
	canon := g.Canonical()
	key := NewCacheKey(0, 1, g)
	c.Put(key, canon, "r", []int{3}, c.Version())
	if _, ok := c.Get(key, canon); !ok {
		t.Fatal("miss on a fresh single-shard entry")
	}
	c.AdvanceRound(3)
	if _, ok := c.Get(key, canon); ok {
		t.Fatal("single-shard entry survived AdvanceRound")
	}
}

func TestRouteCacheConcurrentAccess(t *testing.T) {
	c := NewRouteCache()
	g := testGraph(t, "a", "b", "c")
	canon := g.Canonical()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := NewCacheKey(i%16, (i+1)%16, g)
				switch i % 4 {
				case 0:
					c.Put(key, canon, fmt.Sprintf("r%d", i), []int{i % 3}, c.Version())
				case 1:
					c.Get(key, canon)
				case 2:
					c.AdvanceRound(i % 3)
				default:
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	c.AdvanceAll()
	for i := 0; i < 16; i++ {
		if _, ok := c.Get(NewCacheKey(i, (i+1)%16, g), canon); ok {
			t.Fatal("entry survived AdvanceAll after concurrent churn")
		}
	}
}
