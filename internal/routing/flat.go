package routing

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hfc/internal/svc"
)

// ErrNoProviders is returned when a requested service is installed nowhere
// the router can see.
var ErrNoProviders = errors.New("routing: service has no providers")

// ErrInfeasible is returned when no feasible service path exists.
var ErrInfeasible = errors.New("routing: no feasible service path")

// Oracle supplies decision-time distances between overlay nodes. Distances
// must be non-negative; the shortest-path machinery assumes it.
type Oracle interface {
	Dist(u, v int) float64
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(u, v int) float64

// Dist implements Oracle.
func (f OracleFunc) Dist(u, v int) float64 { return f(u, v) }

// Expander turns one logical overlay hop into the concrete node sequence
// the topology forces the stream through (endpoints included): mesh relay
// chains, or the border-proxy pair of an HFC inter-cluster hop. A nil
// Expander means every hop is direct.
type Expander interface {
	Expand(u, v int) ([]int, error)
}

// ProviderFunc lists the overlay nodes offering a service, under whatever
// state the routing scheme has (global state for flat schemes, SCT_P for
// intra-cluster routing).
type ProviderFunc func(s svc.Service) []int

// EdgeFilter reports whether routing may lay a logical overlay hop from u
// to v; it is how QoS bandwidth constraints prune the service DAG. A nil
// filter admits everything. Same-node transitions (two services on one
// proxy) are never filtered.
type EdgeFilter func(u, v int) bool

// FindPath computes an optimal service path for req with the global-view
// algorithm of [11]: build the service DAG — virtual source, one vertex per
// (service-graph vertex, provider) pair, virtual sink — and relax its edges
// in service-graph topological order. With a non-negative oracle this
// yields a minimum-cost feasible service path under the oracle's metric.
//
// The returned path's DecisionCost is the DAG cost; hops between distinct
// nodes are expanded through exp when given (relays get empty Service).
func FindPath(req svc.Request, providers ProviderFunc, oracle Oracle, exp Expander) (*Path, error) {
	return FindPathFiltered(req, providers, oracle, exp, nil)
}

// pathScratch is the reusable work arena of one FindPathFiltered call. The
// per-vertex dist/parent tables are flattened into single backing arrays
// indexed through off, and the per-vertex edge buckets keep their capacity
// across calls, so a steady-state resolution allocates only its result.
// Scratches are pooled; every field is re-initialized per call.
type pathScratch struct {
	provs [][]int // provider list per SG vertex (shared slices, not owned)
	off   []int   // off[v] is the flat offset of vertex v; len nv+1

	// Flat tables over all (vertex, provider-index) pairs: the slot of
	// (v, i) is off[v]+i. dist is the best cost from the virtual source;
	// parV/parI track (prevVertex, prevProviderIdx), with parV == -2
	// marking unreached and -1 the virtual source.
	dist []float64
	parV []int
	parI []int

	edges   [][]int // edgesByTail: SG edge heads grouped by tail vertex
	indeg   []int
	outdeg  []int
	queue   []int
	order   []int
	sources []int
	sinks   []int
	revV    []int // reconstruction stack (vertex, provider-index)
	revI    []int
}

// grow returns buf with length n, reusing its capacity when possible. The
// returned slice's contents are unspecified; callers must overwrite.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

var scratchPool = sync.Pool{New: func() any { return new(pathScratch) }}

// FindPathFiltered is FindPath with an admissibility filter on overlay
// hops: DAG edges whose endpoints fail the filter are not relaxed, so the
// result is the minimum-cost service path using admissible hops only. It
// returns ErrInfeasible when the filter disconnects every configuration.
//
// The search runs on a pooled scratch arena, so concurrent and repeated
// calls do per-request work without per-request table allocations; results
// are identical to a fresh-allocation run (asserted by FuzzFindPathScratch).
//
//hfc:hotpath budget=0
func FindPathFiltered(req svc.Request, providers ProviderFunc, oracle Oracle, exp Expander, admissible EdgeFilter) (*Path, error) {
	sc := scratchPool.Get().(*pathScratch)
	defer scratchPool.Put(sc)
	return findPathScratch(req, providers, oracle, exp, admissible, sc)
}

// findPathScratch is the FindPathFiltered implementation against an
// explicit scratch arena (tests pass fresh arenas to compare against pooled
// runs).
//
//hfc:hotpath budget=18
func findPathScratch(req svc.Request, providers ProviderFunc, oracle Oracle, exp Expander, admissible EdgeFilter, sc *pathScratch) (*Path, error) {
	if providers == nil {
		return nil, errors.New("routing: nil provider function")
	}
	if oracle == nil {
		return nil, errors.New("routing: nil oracle")
	}
	if err := req.SG.Validate(); err != nil {
		return nil, err
	}
	hopOK := func(u, v int) bool {
		return u == v || admissible == nil || admissible(u, v)
	}

	sg := req.SG
	nv := sg.Len()

	// Provider lists per service-graph vertex, and the flat offsets.
	sc.provs = grow(sc.provs, nv)
	sc.off = grow(sc.off, nv+1)
	total := 0
	for v := 0; v < nv; v++ {
		sc.off[v] = total
		sc.provs[v] = providers(sg.Services[v])
		if len(sc.provs[v]) == 0 {
			return nil, fmt.Errorf("routing: service %q: %w", sg.Services[v], ErrNoProviders)
		}
		total += len(sc.provs[v])
	}
	sc.off[nv] = total

	sc.dist = grow(sc.dist, total)
	sc.parV = grow(sc.parV, total)
	sc.parI = grow(sc.parI, total)
	inf := math.Inf(1)
	for i := 0; i < total; i++ {
		sc.dist[i] = inf
		sc.parV[i] = -2
	}

	// Degrees, sources and sinks, and edges grouped by tail — one pass
	// over the SG edge list into reused buckets.
	sc.indeg = grow(sc.indeg, nv)
	sc.outdeg = grow(sc.outdeg, nv)
	sc.edges = grow(sc.edges, nv)
	for v := 0; v < nv; v++ {
		sc.indeg[v] = 0
		sc.outdeg[v] = 0
		sc.edges[v] = sc.edges[v][:0]
	}
	for _, e := range sg.Edges {
		sc.edges[e[0]] = append(sc.edges[e[0]], e[1])
		sc.indeg[e[1]]++
		sc.outdeg[e[0]]++
	}
	sc.sources = sc.sources[:0]
	sc.sinks = sc.sinks[:0]
	for v := 0; v < nv; v++ {
		if sc.indeg[v] == 0 {
			sc.sources = append(sc.sources, v)
		}
		if sc.outdeg[v] == 0 {
			sc.sinks = append(sc.sinks, v)
		}
	}

	// Initialize SG source vertices from the virtual source (req.Source).
	for _, v := range sc.sources {
		base := sc.off[v]
		for i, p := range sc.provs[v] {
			if !hopOK(req.Source, p) {
				continue
			}
			var d float64
			if p != req.Source {
				d = oracle.Dist(req.Source, p)
			}
			if d < sc.dist[base+i] {
				sc.dist[base+i] = d
				sc.parV[base+i] = -1
				sc.parI[base+i] = -1
			}
		}
	}

	// Topological order of the SG vertices (Kahn, consuming indeg).
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, sc.sources...)
	sc.order = sc.order[:0]
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		sc.order = append(sc.order, u)
		for _, v := range sc.edges[u] {
			sc.indeg[v]--
			if sc.indeg[v] == 0 {
				sc.queue = append(sc.queue, v)
			}
		}
	}
	if len(sc.order) != nv {
		return nil, errors.New("routing: service graph contains a cycle")
	}

	// Relax SG edges in topological order of the service graph.
	for _, u := range sc.order {
		baseU := sc.off[u]
		for i, p := range sc.provs[u] {
			du := sc.dist[baseU+i]
			if math.IsInf(du, 1) {
				continue
			}
			for _, v := range sc.edges[u] {
				baseV := sc.off[v]
				for j, q := range sc.provs[v] {
					if !hopOK(p, q) {
						continue
					}
					var d float64
					if p != q {
						d = oracle.Dist(p, q)
					}
					if nd := du + d; nd < sc.dist[baseV+j] {
						sc.dist[baseV+j] = nd
						sc.parV[baseV+j] = u
						sc.parI[baseV+j] = i
					}
				}
			}
		}
	}

	// Terminate at the virtual sink (req.Dest) from SG sink vertices.
	bestCost := math.Inf(1)
	bestV, bestI := -1, -1
	for _, v := range sc.sinks {
		base := sc.off[v]
		for i, p := range sc.provs[v] {
			if math.IsInf(sc.dist[base+i], 1) || !hopOK(p, req.Dest) {
				continue
			}
			var d float64
			if p != req.Dest {
				d = oracle.Dist(p, req.Dest)
			}
			if c := sc.dist[base+i] + d; c < bestCost {
				bestCost = c
				bestV, bestI = v, i
			}
		}
	}
	if bestV == -1 {
		return nil, ErrInfeasible
	}

	// Reconstruct the (service, node) sequence.
	sc.revV = sc.revV[:0]
	sc.revI = sc.revI[:0]
	for v, i := bestV, bestI; v != -1; {
		sc.revV = append(sc.revV, v)
		sc.revI = append(sc.revI, i)
		slot := sc.off[v] + i
		v, i = sc.parV[slot], sc.parI[slot]
	}
	// The hop sequence escapes into the result; allocate it exactly once.
	hops := make([]Hop, 0, len(sc.revV)+2)
	hops = append(hops, Hop{Node: req.Source})
	for idx := len(sc.revV) - 1; idx >= 0; idx-- {
		v, i := sc.revV[idx], sc.revI[idx]
		hops = append(hops, Hop{Node: sc.provs[v][i], Service: sg.Services[v]})
	}
	hops = append(hops, Hop{Node: req.Dest})

	expanded, err := expandHops(hops, exp)
	if err != nil {
		return nil, err
	}
	return &Path{Hops: expanded, DecisionCost: bestCost}, nil
}

// sgTopoOrder topologically orders the service-graph vertices.
func sgTopoOrder(sg *svc.Graph) ([]int, error) {
	n := sg.Len()
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range sg.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("routing: service graph contains a cycle")
	}
	return order, nil
}

// expandHops inserts topology-mandated relay nodes between consecutive hops
// on distinct nodes.
func expandHops(hops []Hop, exp Expander) ([]Hop, error) {
	if exp == nil {
		return hops, nil
	}
	out := []Hop{hops[0]}
	for i := 1; i < len(hops); i++ {
		prev, cur := hops[i-1], hops[i]
		if prev.Node == cur.Node {
			out = append(out, cur)
			continue
		}
		seq, err := exp.Expand(prev.Node, cur.Node)
		if err != nil {
			return nil, fmt.Errorf("routing: expanding hop %d->%d: %w", prev.Node, cur.Node, err)
		}
		if len(seq) < 2 || seq[0] != prev.Node || seq[len(seq)-1] != cur.Node {
			return nil, fmt.Errorf("routing: expander returned invalid sequence %v for hop %d->%d", seq, prev.Node, cur.Node)
		}
		for _, relay := range seq[1 : len(seq)-1] {
			out = append(out, Hop{Node: relay})
		}
		out = append(out, cur)
	}
	return out, nil
}

// CapabilityProviders builds a ProviderFunc over an explicit capability
// assignment: providers of s are all nodes whose set contains s, in index
// order. This models full global service-capability state.
func CapabilityProviders(caps []svc.CapabilitySet) ProviderFunc {
	return func(s svc.Service) []int {
		var out []int
		for i, set := range caps {
			if set.Has(s) {
				out = append(out, i)
			}
		}
		return out
	}
}
