package routing

import (
	"errors"
	"fmt"
	"math"

	"hfc/internal/svc"
)

// ErrNoProviders is returned when a requested service is installed nowhere
// the router can see.
var ErrNoProviders = errors.New("routing: service has no providers")

// ErrInfeasible is returned when no feasible service path exists.
var ErrInfeasible = errors.New("routing: no feasible service path")

// Oracle supplies decision-time distances between overlay nodes. Distances
// must be non-negative; the shortest-path machinery assumes it.
type Oracle interface {
	Dist(u, v int) float64
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(u, v int) float64

// Dist implements Oracle.
func (f OracleFunc) Dist(u, v int) float64 { return f(u, v) }

// Expander turns one logical overlay hop into the concrete node sequence
// the topology forces the stream through (endpoints included): mesh relay
// chains, or the border-proxy pair of an HFC inter-cluster hop. A nil
// Expander means every hop is direct.
type Expander interface {
	Expand(u, v int) ([]int, error)
}

// ProviderFunc lists the overlay nodes offering a service, under whatever
// state the routing scheme has (global state for flat schemes, SCT_P for
// intra-cluster routing).
type ProviderFunc func(s svc.Service) []int

// EdgeFilter reports whether routing may lay a logical overlay hop from u
// to v; it is how QoS bandwidth constraints prune the service DAG. A nil
// filter admits everything. Same-node transitions (two services on one
// proxy) are never filtered.
type EdgeFilter func(u, v int) bool

// FindPath computes an optimal service path for req with the global-view
// algorithm of [11]: build the service DAG — virtual source, one vertex per
// (service-graph vertex, provider) pair, virtual sink — and relax its edges
// in service-graph topological order. With a non-negative oracle this
// yields a minimum-cost feasible service path under the oracle's metric.
//
// The returned path's DecisionCost is the DAG cost; hops between distinct
// nodes are expanded through exp when given (relays get empty Service).
func FindPath(req svc.Request, providers ProviderFunc, oracle Oracle, exp Expander) (*Path, error) {
	return FindPathFiltered(req, providers, oracle, exp, nil)
}

// FindPathFiltered is FindPath with an admissibility filter on overlay
// hops: DAG edges whose endpoints fail the filter are not relaxed, so the
// result is the minimum-cost service path using admissible hops only. It
// returns ErrInfeasible when the filter disconnects every configuration.
func FindPathFiltered(req svc.Request, providers ProviderFunc, oracle Oracle, exp Expander, admissible EdgeFilter) (*Path, error) {
	if providers == nil {
		return nil, errors.New("routing: nil provider function")
	}
	if oracle == nil {
		return nil, errors.New("routing: nil oracle")
	}
	if err := req.SG.Validate(); err != nil {
		return nil, err
	}
	hopOK := func(u, v int) bool {
		return u == v || admissible == nil || admissible(u, v)
	}

	sg := req.SG
	nv := sg.Len()

	// Provider lists per service-graph vertex.
	provs := make([][]int, nv)
	for v := 0; v < nv; v++ {
		provs[v] = providers(sg.Services[v])
		if len(provs[v]) == 0 {
			return nil, fmt.Errorf("routing: service %q: %w", sg.Services[v], ErrNoProviders)
		}
	}

	// dist[v][i] is the best cost from the virtual source to provider
	// provs[v][i] having performed the services of some SG path ending at
	// vertex v. parent tracks (prevVertex, prevProviderIdx); prevVertex ==
	// -1 marks the virtual source.
	dist := make([][]float64, nv)
	parentV := make([][]int, nv)
	parentI := make([][]int, nv)
	for v := 0; v < nv; v++ {
		dist[v] = make([]float64, len(provs[v]))
		parentV[v] = make([]int, len(provs[v]))
		parentI[v] = make([]int, len(provs[v]))
		for i := range dist[v] {
			dist[v][i] = math.Inf(1)
			parentV[v][i] = -2
		}
	}

	// Initialize SG source vertices from the virtual source (req.Source).
	for _, v := range sg.Sources() {
		for i, p := range provs[v] {
			if !hopOK(req.Source, p) {
				continue
			}
			var d float64
			if p != req.Source {
				d = oracle.Dist(req.Source, p)
			}
			if d < dist[v][i] {
				dist[v][i] = d
				parentV[v][i] = -1
				parentI[v][i] = -1
			}
		}
	}

	// Relax SG edges in topological order of the service graph.
	order, err := sgTopoOrder(sg)
	if err != nil {
		return nil, err
	}
	pos := make([]int, nv)
	for idx, v := range order {
		pos[v] = idx
	}
	// Group edges by tail and process tails in topological order.
	edgesByTail := make([][]int, nv)
	for _, e := range sg.Edges {
		edgesByTail[e[0]] = append(edgesByTail[e[0]], e[1])
	}
	for _, u := range order {
		for i, p := range provs[u] {
			du := dist[u][i]
			if math.IsInf(du, 1) {
				continue
			}
			for _, v := range edgesByTail[u] {
				for j, q := range provs[v] {
					if !hopOK(p, q) {
						continue
					}
					var d float64
					if p != q {
						d = oracle.Dist(p, q)
					}
					if nd := du + d; nd < dist[v][j] {
						dist[v][j] = nd
						parentV[v][j] = u
						parentI[v][j] = i
					}
				}
			}
		}
	}

	// Terminate at the virtual sink (req.Dest) from SG sink vertices.
	bestCost := math.Inf(1)
	bestV, bestI := -1, -1
	for _, v := range sg.Sinks() {
		for i, p := range provs[v] {
			if math.IsInf(dist[v][i], 1) || !hopOK(p, req.Dest) {
				continue
			}
			var d float64
			if p != req.Dest {
				d = oracle.Dist(p, req.Dest)
			}
			if c := dist[v][i] + d; c < bestCost {
				bestCost = c
				bestV, bestI = v, i
			}
		}
	}
	if bestV == -1 {
		return nil, ErrInfeasible
	}

	// Reconstruct the (service, node) sequence.
	type step struct {
		v, i int
	}
	var rev []step
	for v, i := bestV, bestI; v != -1; {
		rev = append(rev, step{v, i})
		pv, pi := parentV[v][i], parentI[v][i]
		v, i = pv, pi
	}
	hops := []Hop{{Node: req.Source}}
	for idx := len(rev) - 1; idx >= 0; idx-- {
		s := rev[idx]
		hops = append(hops, Hop{Node: provs[s.v][s.i], Service: sg.Services[s.v]})
	}
	hops = append(hops, Hop{Node: req.Dest})

	expanded, err := expandHops(hops, exp)
	if err != nil {
		return nil, err
	}
	return &Path{Hops: expanded, DecisionCost: bestCost}, nil
}

// sgTopoOrder topologically orders the service-graph vertices.
func sgTopoOrder(sg *svc.Graph) ([]int, error) {
	n := sg.Len()
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range sg.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("routing: service graph contains a cycle")
	}
	return order, nil
}

// expandHops inserts topology-mandated relay nodes between consecutive hops
// on distinct nodes.
func expandHops(hops []Hop, exp Expander) ([]Hop, error) {
	if exp == nil {
		return hops, nil
	}
	out := []Hop{hops[0]}
	for i := 1; i < len(hops); i++ {
		prev, cur := hops[i-1], hops[i]
		if prev.Node == cur.Node {
			out = append(out, cur)
			continue
		}
		seq, err := exp.Expand(prev.Node, cur.Node)
		if err != nil {
			return nil, fmt.Errorf("routing: expanding hop %d->%d: %w", prev.Node, cur.Node, err)
		}
		if len(seq) < 2 || seq[0] != prev.Node || seq[len(seq)-1] != cur.Node {
			return nil, fmt.Errorf("routing: expander returned invalid sequence %v for hop %d->%d", seq, prev.Node, cur.Node)
		}
		for _, relay := range seq[1 : len(seq)-1] {
			out = append(out, Hop{Node: relay})
		}
		out = append(out, cur)
	}
	return out, nil
}

// CapabilityProviders builds a ProviderFunc over an explicit capability
// assignment: providers of s are all nodes whose set contains s, in index
// order. This models full global service-capability state.
func CapabilityProviders(caps []svc.CapabilitySet) ProviderFunc {
	return func(s svc.Service) []int {
		var out []int
		for i, set := range caps {
			if set.Has(s) {
				out = append(out, i)
			}
		}
		return out
	}
}
