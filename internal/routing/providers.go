package routing

import (
	"sort"
	"sync"

	"hfc/internal/state"
	"hfc/internal/svc"
)

// ProviderIndex is the inverted service-capability index one resolver proxy
// derives from its converged routing state: for every service, the sorted
// own-cluster providers (from SCT_P) and the sorted clusters whose
// aggregate offers it (from SCT_C). Request resolution is lookup-driven
// against this index instead of rescanning every cluster member's
// capability set per service per request.
//
// The index is immutable after construction; the returned slices are shared
// and must be treated as read-only. Staleness is the caller's concern:
// rebuild the index when the underlying state advances (see LazyIndexes).
type ProviderIndex struct {
	local    map[svc.Service][]int
	clusters map[svc.Service][]int
	// fn is the ProviderFunc adapter, bound once at build time so hot
	// paths can pass the index into FindPath without a per-call closure
	// allocation.
	fn ProviderFunc
}

// BuildProviderIndex inverts one node's state tables. members must be the
// sorted member list of the node's cluster (hfc.Topology.Members order):
// provider lists come out in exactly the order the previous per-request
// membership scan produced, so routing decisions are bit-identical.
func BuildProviderIndex(st *state.NodeState, members []int) *ProviderIndex {
	pi := &ProviderIndex{
		local:    make(map[svc.Service][]int),
		clusters: make(map[svc.Service][]int),
	}
	for _, m := range members {
		set, ok := st.SCTP[m]
		if !ok {
			continue
		}
		for s := range set {
			pi.local[s] = append(pi.local[s], m)
		}
	}
	// Map iteration filled each list in members order per service only for
	// the outer loop; the inner set iteration order is irrelevant (one
	// member appends to many services, each exactly once). Lists are in
	// ascending member order already, but sort defensively so the contract
	// does not depend on the caller passing sorted members.
	for s := range pi.local {
		sort.Ints(pi.local[s])
	}
	clusterIDs := make([]int, 0, len(st.SCTC))
	for c := range st.SCTC {
		clusterIDs = append(clusterIDs, c)
	}
	sort.Ints(clusterIDs)
	for _, c := range clusterIDs {
		for s := range st.SCTC[c] {
			pi.clusters[s] = append(pi.clusters[s], c)
		}
	}
	pi.local = packLists(pi.local)
	pi.clusters = packLists(pi.clusters)
	pi.fn = func(s svc.Service) []int { return pi.local[s] }
	return pi
}

// packLists rewrites a map of per-service lists so every list is a window
// into one shared CSR-style backing array, replacing len(m) separately grown
// slices (and their append-doubling waste) with a single contiguous
// allocation that hot readers walk with perfect locality. List contents and
// per-list order are unchanged; map keys stay as-is.
func packLists(m map[svc.Service][]int) map[svc.Service][]int {
	total := 0
	keys := make([]svc.Service, 0, len(m))
	for s, l := range m {
		total += len(l)
		keys = append(keys, s)
	}
	// Sorted key order keeps the backing layout deterministic (map
	// iteration order would not change any list's contents, but a
	// reproducible array is worth the sort at build time).
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	backing := make([]int, 0, total)
	for _, s := range keys {
		l := m[s]
		off := len(backing)
		backing = append(backing, l...)
		m[s] = backing[off : off+len(l) : off+len(l)]
	}
	return m
}

// Providers returns the sorted own-cluster providers of s (shared slice —
// do not modify). Nil when no member provides s.
func (pi *ProviderIndex) Providers(s svc.Service) []int { return pi.local[s] }

// ClustersProviding returns the sorted cluster IDs whose aggregate set
// includes s (shared slice — do not modify). Matches
// state.NodeState.ClustersProviding on a state whose SCT_C covers clusters
// 0..k-1.
func (pi *ProviderIndex) ClustersProviding(s svc.Service) []int { return pi.clusters[s] }

// ProviderFunc returns the index's SCT_P lookup as a ProviderFunc without
// allocating a new closure per call.
func (pi *ProviderIndex) ProviderFunc() ProviderFunc { return pi.fn }

// LazyIndexes caches per-resolver ProviderIndexes over a NodeState slice,
// rebuilding them lazily when the owning engine's invalidation version
// moves — the same token the route cache stamps entries with, so index and
// cache go stale together.
//
// Readers and the version source must be externally consistent: a caller
// that mutates the states must advance the version before the mutation is
// observable to For (serve.Engine does both under its state write lock).
type LazyIndexes struct {
	states  []state.NodeState
	members func(node int) []int
	// version supplies the current invalidation stamp; nil pins version 0
	// (static states, e.g. the synchronous simulation).
	version func() uint64

	mu  sync.RWMutex
	idx map[int]stampedIndex // guarded by mu
}

type stampedIndex struct {
	version uint64
	pi      *ProviderIndex
}

// NewLazyIndexes builds an empty index cache. members maps a node to its
// cluster's sorted member list; version may be nil for static states.
func NewLazyIndexes(states []state.NodeState, members func(node int) []int, version func() uint64) *LazyIndexes {
	return &LazyIndexes{
		states:  states,
		members: members,
		version: version,
		idx:     make(map[int]stampedIndex),
	}
}

// For returns node's provider index, building it on first use and after
// every version advance. Concurrent callers may build the same index twice;
// both results are identical and either may win the store.
func (l *LazyIndexes) For(node int) *ProviderIndex {
	var v uint64
	if l.version != nil {
		v = l.version()
	}
	l.mu.RLock()
	e, ok := l.idx[node]
	l.mu.RUnlock()
	if ok && e.version == v {
		return e.pi
	}
	pi := BuildProviderIndex(&l.states[node], l.members(node))
	l.mu.Lock()
	l.idx[node] = stampedIndex{version: v, pi: pi}
	l.mu.Unlock()
	return pi
}

// InvalidateAll drops every cached index immediately. Not required for
// correctness when a version source is configured (stale stamps already
// force rebuilds); it exists to release memory eagerly and to serve as the
// invalidation hook for version-less (static) usage.
func (l *LazyIndexes) InvalidateAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	clear(l.idx)
}
