package routing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hfc/internal/hfc"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// RelaxMode selects how the cluster-level shortest-path search accounts for
// distances inside intermediate clusters (§5.1 step 2).
type RelaxMode int

// Relaxation modes. Enums start at one so the zero value is invalid.
const (
	// RelaxBacktrack is the paper's modified DAG-shortest-paths: each
	// label remembers the border proxy through which the path entered its
	// cluster, and relaxing an outgoing external edge adds the internal
	// entry-border→exit-border distance (a lower bound on the eventual
	// intra-cluster path) before the external link length.
	RelaxBacktrack RelaxMode = iota + 1
	// RelaxExact expands the search state to (service, cluster, entry
	// border), which optimizes the same lower-bound objective exactly
	// instead of greedily; used by ablation A3.
	RelaxExact
	// RelaxExternalOnly is the unmodified DAG-shortest-paths the paper
	// argues against: only external link lengths count, so the two
	// candidate paths of the worked example tie at 45.
	RelaxExternalOnly
)

// String returns a short label for the mode.
func (m RelaxMode) String() string {
	switch m {
	case RelaxBacktrack:
		return "backtrack"
	case RelaxExact:
		return "exact"
	case RelaxExternalOnly:
		return "external-only"
	default:
		return fmt.Sprintf("RelaxMode(%d)", int(m))
	}
}

// CSPEntry is one element of a Cluster-level Service Path: a service-graph
// vertex mapped to the cluster that will provide it.
type CSPEntry struct {
	// SGVertex indexes the request's service-graph Services.
	SGVertex int
	// Cluster is the cluster ID the service is mapped to.
	Cluster int
}

// ChildRequest is one piece of a dissected request (§5.1 step 3): a run of
// consecutive services mapped to the same cluster, with intra-cluster
// source and destination proxies (border proxies, except at the original
// endpoints). Services may be empty when the cluster only relays between
// its borders.
type ChildRequest struct {
	// Cluster is the cluster that must resolve this child.
	Cluster int
	// Source and Dest are overlay nodes inside Cluster.
	Source, Dest int
	// Services is the linear run of services to place, in order.
	Services []svc.Service
	// Resolver is the proxy responsible for computing the child path —
	// the child's destination proxy, matching the paper's convention that
	// a request is resolved by its destination.
	Resolver int
}

// IntraSolver resolves a child request inside one cluster using only that
// cluster's full local state (SCT_P plus member coordinates). In the
// in-process simulation it is a direct call; in package overlay it is an
// RPC to the child's resolver proxy.
type IntraSolver interface {
	SolveChild(child ChildRequest) (*Path, error)
}

// HierarchicalRouter performs §5 service routing at a destination proxy,
// using only knowledge that proxy legitimately has: its Fig. 4 topology
// view, its converged SCT_C/SCT_P, and the ability to query the source
// proxy for its cluster ID.
type HierarchicalRouter struct {
	// View is the destination proxy's topology view.
	View *hfc.NodeView
	// State is the destination proxy's converged routing state.
	State *state.NodeState
	// Intra resolves child requests.
	Intra IntraSolver
	// ClusterOfSource answers "which cluster is proxy p in?" — the query
	// pd sends to the source proxy (§5.1 step 1).
	ClusterOfSource func(node int) int
	// Mode selects the cluster-level relaxation (default RelaxBacktrack).
	Mode RelaxMode
	// ClusterAdmissible, when non-nil, restricts which clusters may host a
	// service at the cluster level — the hook the QoS extension uses to
	// enforce aggregated machine-load constraints (§7 future work).
	ClusterAdmissible func(s svc.Service, cluster int) bool
	// CrossingAdmissible, when non-nil, restricts which external links the
	// cluster-level path may use — the QoS hook for aggregated bandwidth
	// constraints.
	CrossingAdmissible func(from, to int) bool
	// Index, when non-nil, answers the per-service cluster-candidate query
	// from an inverted SCT_C index instead of scanning State's aggregate
	// table per service. Built from the same state; results are identical.
	Index *ProviderIndex
}

// Result carries the outcome of a hierarchical routing step, including the
// intermediate artifacts the paper's Fig. 7 walks through.
type Result struct {
	// CSP is the cluster-level service path chosen in step 2.
	CSP []CSPEntry
	// CSPCost is the CSP's lower-bound cost (external links + known
	// internal border distances).
	CSPCost float64
	// Children are the dissected child requests of step 3.
	Children []ChildRequest
	// ChildPaths are the resolved child paths, aligned with Children.
	ChildPaths []*Path
	// Path is the composed final service path (step 4).
	Path *Path
	// Degraded marks a result served from last-known-good state because a
	// fresh resolution was impossible (resolver partitioned or every
	// attempt timed out). The path was valid when computed but may be
	// stale against the current deployment; callers that need freshness
	// must retry once the fault heals. Fresh resolutions never set it.
	Degraded bool
}

// Route runs the full §5 procedure for req.
func (r *HierarchicalRouter) Route(req svc.Request) (*Result, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	if err := req.SG.Validate(); err != nil {
		return nil, err
	}
	if req.Dest != r.View.Node {
		return nil, fmt.Errorf("routing: request destination %d is not this proxy %d", req.Dest, r.View.Node)
	}
	srcCluster := r.ClusterOfSource(req.Source)
	destCluster := r.View.ClusterID

	csp, cost, err := r.clusterLevelPath(req, srcCluster, destCluster)
	if err != nil {
		return nil, err
	}
	children, err := r.dissect(req, csp, srcCluster, destCluster)
	if err != nil {
		return nil, err
	}
	childPaths := make([]*Path, len(children))
	for i, child := range children {
		p, err := r.Intra.SolveChild(child)
		if err != nil {
			return nil, fmt.Errorf("routing: child %d (cluster %d): %w", i, child.Cluster, err)
		}
		childPaths[i] = p
	}
	final, err := compose(children, childPaths, r.View)
	if err != nil {
		return nil, err
	}
	return &Result{
		CSP:        csp,
		CSPCost:    cost,
		Children:   children,
		ChildPaths: childPaths,
		Path:       final,
	}, nil
}

func (r *HierarchicalRouter) validate() error {
	switch {
	case r.View == nil:
		return errors.New("routing: hierarchical router has nil view")
	case r.State == nil:
		return errors.New("routing: hierarchical router has nil state")
	case r.Intra == nil:
		return errors.New("routing: hierarchical router has nil intra-cluster solver")
	case r.ClusterOfSource == nil:
		return errors.New("routing: hierarchical router has nil source-cluster query")
	}
	switch r.Mode {
	case 0, RelaxBacktrack, RelaxExact, RelaxExternalOnly:
	default:
		return fmt.Errorf("routing: unknown relax mode %d", int(r.Mode))
	}
	return nil
}

func (r *HierarchicalRouter) mode() RelaxMode {
	if r.Mode == 0 {
		return RelaxBacktrack
	}
	return r.Mode
}

// label is the cluster-level search state for one (SG vertex, cluster)
// pair (Backtrack/ExternalOnly modes) or one (SG vertex, cluster, entry)
// triple (Exact mode).
type label struct {
	dist float64
	// entry is the border proxy through which the path entered the
	// cluster, or -1 when the path has been inside this cluster since the
	// source proxy (internal offset unknown to pd, counted as 0).
	entry int
	// parent identifies the predecessor label for reconstruction.
	parentV int // SG vertex, -1 for virtual source
	parentC int // cluster
	parentE int // entry border of predecessor (Exact mode), else -1
}

// clusterLevelPath maps the request onto clusters (§5.1 steps 1–2). The
// greedy modes run on the flat SoA implementation (cspflat.go); RelaxExact
// — and any view the dense tables cannot describe — takes the generic
// map-based search. Both produce identical results (asserted by
// TestClusterLevelPathFlatMatchesGeneric).
func (r *HierarchicalRouter) clusterLevelPath(req svc.Request, srcCluster, destCluster int) ([]CSPEntry, float64, error) {
	if r.mode() != RelaxExact {
		csp, cost, handled, err := r.clusterLevelPathFlat(req, srcCluster, destCluster)
		if handled || err != nil {
			return csp, cost, err
		}
	}
	return r.clusterLevelPathGeneric(req, srcCluster, destCluster)
}

// clusterLevelPathGeneric is the map-based reference implementation of the
// cluster-level search, covering every relaxation mode.
func (r *HierarchicalRouter) clusterLevelPathGeneric(req svc.Request, srcCluster, destCluster int) ([]CSPEntry, float64, error) {
	sg := req.SG
	nv := sg.Len()

	// Candidate clusters per SG vertex, from SCT_C (optionally narrowed by
	// the QoS admissibility hook).
	cands := make([][]int, nv)
	for v := 0; v < nv; v++ {
		var all []int
		if r.Index != nil {
			all = r.Index.ClustersProviding(sg.Services[v])
		} else {
			all = r.State.ClustersProviding(sg.Services[v])
		}
		if r.ClusterAdmissible != nil {
			// Filter into a fresh slice: the index path hands out a shared
			// read-only slice that must not be compacted in place.
			kept := make([]int, 0, len(all))
			for _, c := range all {
				if r.ClusterAdmissible(sg.Services[v], c) {
					kept = append(kept, c)
				}
			}
			all = kept
		}
		cands[v] = all
		if len(cands[v]) == 0 {
			return nil, 0, fmt.Errorf("routing: service %q: %w", sg.Services[v], ErrNoProviders)
		}
	}
	crossingOK := func(a, b int) bool {
		return r.CrossingAdmissible == nil || r.CrossingAdmissible(a, b)
	}

	order, err := sgTopoOrder(sg)
	if err != nil {
		return nil, 0, err
	}
	edgesByTail := make([][]int, nv)
	for _, e := range sg.Edges {
		edgesByTail[e[0]] = append(edgesByTail[e[0]], e[1])
	}

	exact := r.mode() == RelaxExact
	// Labels: per (vertex, cluster) in greedy modes; per (vertex, cluster,
	// entry) in exact mode. Entry index -1 is encoded as key k (one past
	// the last cluster... entries are node IDs, so use a map).
	type key struct {
		v, c, e int
	}
	labels := make(map[key]label)
	betterOf := func(k key, cand label) bool {
		old, ok := labels[k]
		if !ok || cand.dist < old.dist {
			labels[k] = cand
			return true
		}
		return false
	}
	keyOf := func(v, c, e int) key {
		if !exact {
			return key{v, c, 0}
		}
		return key{v, c, e}
	}

	// internalDist returns the distance inside cluster c from the entry
	// border to the exit border, 0 when the entry is unknown (-1) or they
	// coincide.
	internalDist := func(entry, exit int) (float64, error) {
		if entry == -1 || entry == exit {
			return 0, nil
		}
		if r.mode() == RelaxExternalOnly {
			return 0, nil
		}
		return r.View.Dist(entry, exit)
	}

	// Initialize SG source vertices.
	for _, v := range sg.Sources() {
		for _, c := range cands[v] {
			var l label
			l.parentV = -1
			l.parentC = -1
			l.parentE = -1
			if c == srcCluster {
				l.dist = 0
				l.entry = -1
			} else {
				if !crossingOK(srcCluster, c) {
					continue
				}
				ext, err := r.externalLink(srcCluster, c)
				if err != nil {
					return nil, 0, err
				}
				l.dist = ext
				_, inC, err := r.View.Border(srcCluster, c)
				if err != nil {
					return nil, 0, err
				}
				l.entry = inC
			}
			betterOf(keyOf(v, c, l.entry), l)
		}
	}

	// Relax SG edges in topological order.
	for _, u := range order {
		for _, c := range cands[u] {
			// Collect the labels at (u, c): one in greedy modes, possibly
			// several in exact mode.
			var uLabels []label
			if exact {
				entries := append([]int{-1}, r.clusterBorders(c)...)
				for _, e := range entries {
					if l, ok := labels[key{u, c, e}]; ok {
						uLabels = append(uLabels, l)
					}
				}
			} else if l, ok := labels[key{u, c, 0}]; ok {
				uLabels = append(uLabels, l)
			}
			for _, ul := range uLabels {
				for _, v := range edgesByTail[u] {
					for _, c2 := range cands[v] {
						nl := label{parentV: u, parentC: c, parentE: ul.entry}
						if c2 == c {
							nl.dist = ul.dist
							nl.entry = ul.entry
						} else {
							if !crossingOK(c, c2) {
								continue
							}
							exitB, inC2, err := r.View.Border(c, c2)
							if err != nil {
								return nil, 0, err
							}
							internal, err := internalDist(ul.entry, exitB)
							if err != nil {
								return nil, 0, err
							}
							ext, err := r.externalLink(c, c2)
							if err != nil {
								return nil, 0, err
							}
							nl.dist = ul.dist + internal + ext
							nl.entry = inC2
						}
						betterOf(keyOf(v, c2, nl.entry), nl)
					}
				}
			}
		}
	}

	// Terminate at the destination proxy.
	best := label{dist: math.Inf(1)}
	bestV, bestC, bestE := -1, -1, -1
	consider := func(v, c int, l label) error {
		total := l.dist
		if c == destCluster {
			tail, err := internalDist(l.entry, r.View.Node)
			if err != nil {
				return err
			}
			total += tail
		} else {
			if !crossingOK(c, destCluster) {
				return nil
			}
			exitB, inDest, err := r.View.Border(c, destCluster)
			if err != nil {
				return err
			}
			internal, err := internalDist(l.entry, exitB)
			if err != nil {
				return err
			}
			ext, err := r.externalLink(c, destCluster)
			if err != nil {
				return err
			}
			tail := 0.0
			if r.mode() != RelaxExternalOnly && inDest != r.View.Node {
				tail, err = r.View.Dist(inDest, r.View.Node)
				if err != nil {
					return err
				}
			}
			total += internal + ext + tail
		}
		if total < best.dist {
			best = label{dist: total, entry: l.entry, parentV: l.parentV, parentC: l.parentC, parentE: l.parentE}
			bestV, bestC, bestE = v, c, l.entry
		}
		return nil
	}
	for _, v := range sg.Sinks() {
		for _, c := range cands[v] {
			if exact {
				entries := append([]int{-1}, r.clusterBorders(c)...)
				for _, e := range entries {
					if l, ok := labels[key{v, c, e}]; ok {
						if err := consider(v, c, l); err != nil {
							return nil, 0, err
						}
					}
				}
			} else if l, ok := labels[key{v, c, 0}]; ok {
				if err := consider(v, c, l); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	if bestV == -1 {
		return nil, 0, ErrInfeasible
	}

	// Reconstruct the CSP.
	var rev []CSPEntry
	v, c, e := bestV, bestC, bestE
	for v != -1 {
		rev = append(rev, CSPEntry{SGVertex: v, Cluster: c})
		l, ok := labels[keyOf(v, c, e)]
		if !ok {
			return nil, 0, fmt.Errorf("routing: internal error: missing label (%d,%d,%d) during CSP reconstruction", v, c, e)
		}
		v, c, e = l.parentV, l.parentC, l.parentE
	}
	csp := make([]CSPEntry, len(rev))
	for i := range rev {
		csp[i] = rev[len(rev)-1-i]
	}
	return csp, best.dist, nil
}

// clusterBorders lists the border proxies of cluster c visible in the view,
// sorted for determinism.
func (r *HierarchicalRouter) clusterBorders(c int) []int {
	seen := make(map[int]bool)
	for pair := range r.View.Borders {
		var other int
		switch c {
		case pair[0]:
			other = pair[1]
		case pair[1]:
			other = pair[0]
		default:
			continue
		}
		inC, _, err := r.View.Border(c, other)
		if err != nil {
			continue
		}
		seen[inC] = true
	}
	out := make([]int, 0, len(seen))
	for node := range seen {
		out = append(out, node)
	}
	sort.Ints(out)
	return out
}

// externalLink returns the embedded length of the external link between two
// distinct clusters, from the view's border coordinates.
func (r *HierarchicalRouter) externalLink(a, b int) (float64, error) {
	u, v, err := r.View.Border(a, b)
	if err != nil {
		return 0, err
	}
	return r.View.Dist(u, v)
}

// dissect splits the original request along the CSP into per-cluster child
// requests (§5.1 step 3).
func (r *HierarchicalRouter) dissect(req svc.Request, csp []CSPEntry, srcCluster, destCluster int) ([]ChildRequest, error) {
	type run struct {
		cluster  int
		services []svc.Service
	}
	runs := []run{{cluster: srcCluster}}
	for _, e := range csp {
		cur := &runs[len(runs)-1]
		if e.Cluster == cur.cluster {
			cur.services = append(cur.services, req.SG.Services[e.SGVertex])
			continue
		}
		runs = append(runs, run{cluster: e.Cluster, services: []svc.Service{req.SG.Services[e.SGVertex]}})
	}
	if runs[len(runs)-1].cluster != destCluster {
		runs = append(runs, run{cluster: destCluster})
	}

	children := make([]ChildRequest, len(runs))
	for i, ru := range runs {
		child := ChildRequest{Cluster: ru.cluster, Services: ru.services}
		if i == 0 {
			child.Source = req.Source
		} else {
			src, _, err := r.View.Border(ru.cluster, runs[i-1].cluster)
			if err != nil {
				return nil, err
			}
			child.Source = src
		}
		if i == len(runs)-1 {
			child.Dest = req.Dest
		} else {
			dst, _, err := r.View.Border(ru.cluster, runs[i+1].cluster)
			if err != nil {
				return nil, err
			}
			child.Dest = dst
		}
		child.Resolver = child.Dest
		children[i] = child
	}
	return children, nil
}

// compose concatenates resolved child paths into the final service path
// (§5.1 step 4). Consecutive children sit in different clusters; the
// external link between their border proxies is implicit in hop adjacency.
func compose(children []ChildRequest, childPaths []*Path, view *hfc.NodeView) (*Path, error) {
	if len(children) != len(childPaths) {
		return nil, fmt.Errorf("routing: %d children but %d child paths", len(children), len(childPaths))
	}
	var hops []Hop
	cost := 0.0
	for i, p := range childPaths {
		if p == nil || len(p.Hops) == 0 {
			return nil, fmt.Errorf("routing: child %d returned an empty path", i)
		}
		if p.Hops[0].Node != children[i].Source || p.Hops[len(p.Hops)-1].Node != children[i].Dest {
			return nil, fmt.Errorf("routing: child %d path %v does not span %d..%d", i, p, children[i].Source, children[i].Dest)
		}
		hops = append(hops, p.Hops...)
		cost += p.DecisionCost
		if i+1 < len(childPaths) {
			ext, err := viewExternal(view, children[i].Cluster, children[i+1].Cluster)
			if err != nil {
				return nil, err
			}
			cost += ext
		}
	}
	return &Path{Hops: compactHops(hops), DecisionCost: cost}, nil
}

func viewExternal(view *hfc.NodeView, a, b int) (float64, error) {
	u, v, err := view.Border(a, b)
	if err != nil {
		return 0, err
	}
	return view.Dist(u, v)
}

// compactHops removes serviceless hops that duplicate an adjacent hop's
// node (artifacts of child-path concatenation); the endpoints' nodes are
// always preserved because their neighbours share the node.
func compactHops(hops []Hop) []Hop {
	out := make([]Hop, 0, len(hops))
	for i, h := range hops {
		if h.Service == "" {
			if len(out) > 0 && out[len(out)-1].Node == h.Node {
				continue
			}
			if i+1 < len(hops) && hops[i+1].Node == h.Node {
				continue
			}
		}
		out = append(out, h)
	}
	return out
}
