package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizeQuadratic1D(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	res, err := Minimize(f, []float64{0}, Options{})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 {
		t.Errorf("minimum at %v, want 3", res.X[0])
	}
	if res.F > 1e-6 {
		t.Errorf("F = %v, want ~0", res.F)
	}
}

func TestMinimizeSphere5D(t *testing.T) {
	f := func(x []float64) float64 {
		sum := 0.0
		for i, v := range x {
			d := v - float64(i)
			sum += d * d
		}
		return sum
	}
	res, err := Minimize(f, make([]float64, 5), Options{})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-3 {
			t.Errorf("X[%d] = %v, want %d", i, v, i)
		}
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	// The classic banana function: minimum (1,1), value 0.
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Minimize(f, []float64{-1.2, 1}, Options{MaxIter: 20000, Restarts: 4})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("minimum at %v, want (1,1); F=%v", res.X, res.F)
	}
}

func TestMinimizeEmptyStart(t *testing.T) {
	if _, err := Minimize(func(x []float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Error("Minimize with empty start succeeded")
	}
}

func TestMinimizeNilObjective(t *testing.T) {
	if _, err := Minimize(nil, []float64{0}, Options{}); err == nil {
		t.Error("Minimize with nil objective succeeded")
	}
}

func TestMinimizeNaNStart(t *testing.T) {
	f := func(x []float64) float64 { return math.NaN() }
	if _, err := Minimize(f, []float64{0}, Options{}); err == nil {
		t.Error("Minimize with NaN objective at start succeeded")
	}
}

func TestMinimizeDoesNotMutateStart(t *testing.T) {
	x0 := []float64{5, 5}
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	if _, err := Minimize(f, x0, Options{}); err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if x0[0] != 5 || x0[1] != 5 {
		t.Errorf("starting point mutated: %v", x0)
	}
}

func TestMinimizeReportsIterationsAndConvergence(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := Minimize(f, []float64{10}, Options{})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res.Iterations <= 0 {
		t.Errorf("Iterations = %d, want > 0", res.Iterations)
	}
	if !res.Converged {
		t.Error("Converged = false on trivial quadratic")
	}
}

func TestMinimizeImprovesProperty(t *testing.T) {
	// From any random start, the result is never worse than the start on a
	// convex quadratic, and is essentially optimal.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		target := make([]float64, dim)
		for i := range target {
			target[i] = rng.NormFloat64() * 5
		}
		f := func(x []float64) float64 {
			sum := 0.0
			for i, v := range x {
				d := v - target[i]
				sum += d * d
			}
			return sum
		}
		x0 := make([]float64, dim)
		for i := range x0 {
			x0[i] = rng.NormFloat64() * 5
		}
		res, err := Minimize(f, x0, Options{})
		if err != nil {
			return false
		}
		return res.F <= f(x0)+1e-12 && res.F < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeMultimodalFindsGoodBasin(t *testing.T) {
	// Rastrigin-lite in 2D: restarts should at least settle in a local
	// minimum with value below the starting value.
	f := func(x []float64) float64 {
		sum := 20.0
		for _, v := range x {
			sum += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return sum
	}
	res, err := Minimize(f, []float64{3.7, -2.2}, Options{Restarts: 3})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res.F >= f([]float64{3.7, -2.2}) {
		t.Errorf("no improvement: F = %v", res.F)
	}
}
