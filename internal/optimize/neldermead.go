// Package optimize implements the Nelder–Mead downhill-simplex method for
// unconstrained function minimization (Nelder & Mead, Computer Journal 1965),
// the method the paper cites ([23]) for fitting network coordinates: mapping
// landmark distance matrices into a geometric space and placing ordinary
// proxies relative to the landmarks.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Objective is a function to be minimized. Implementations must not retain
// or mutate the argument slice.
type Objective func(x []float64) float64

// Options configures a Nelder–Mead run. The zero value picks reasonable
// defaults via (*Options).withDefaults.
type Options struct {
	// MaxIter bounds the number of simplex iterations (default 2000·dim).
	MaxIter int
	// Tolerance stops the search when the relative spread of function
	// values across the simplex falls below it (default 1e-9).
	Tolerance float64
	// InitialStep is the displacement used to build the initial simplex
	// around the starting point (default 1.0).
	InitialStep float64
	// Restarts re-runs the simplex from the best point found, rebuilding
	// the simplex, to escape premature collapse (default 2).
	Restarts int
}

func (o Options) withDefaults(dim int) Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000 * dim
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	if o.InitialStep == 0 {
		o.InitialStep = 1.0
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	}
	return o
}

// Result reports the outcome of a minimization.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the total number of simplex iterations performed.
	Iterations int
	// Converged reports whether the tolerance criterion was met (as
	// opposed to stopping on the iteration budget).
	Converged bool
}

// Standard Nelder–Mead coefficients.
const (
	reflectCoeff  = 1.0
	expandCoeff   = 2.0
	contractCoeff = 0.5
	shrinkCoeff   = 0.5
)

// Minimize runs Nelder–Mead from x0 and returns the best point found.
// It returns an error when x0 is empty or f returns NaN at the start.
func Minimize(f Objective, x0 []float64, opts Options) (Result, error) {
	dim := len(x0)
	if dim == 0 {
		return Result{}, errors.New("optimize: empty starting point")
	}
	if f == nil {
		return Result{}, errors.New("optimize: nil objective")
	}
	opts = opts.withDefaults(dim)

	start := append([]float64(nil), x0...)
	if v := f(start); math.IsNaN(v) {
		return Result{}, fmt.Errorf("optimize: objective is NaN at starting point %v", start)
	}

	best := Result{X: start, F: f(start)}
	totalIter := 0
	step := opts.InitialStep
	for attempt := 0; attempt <= opts.Restarts; attempt++ {
		res := runSimplex(f, best.X, step, opts.MaxIter, opts.Tolerance)
		totalIter += res.Iterations
		if res.F < best.F {
			best = res
		}
		best.Converged = res.Converged
		// Restart with a smaller simplex around the incumbent.
		step *= 0.25
	}
	best.Iterations = totalIter
	return best, nil
}

// vertex couples a simplex point with its objective value.
type vertex struct {
	x []float64
	f float64
}

func runSimplex(f Objective, x0 []float64, step float64, maxIter int, tol float64) Result {
	dim := len(x0)
	simplex := make([]vertex, dim+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			x[i-1] += step
		}
		simplex[i] = vertex{x: x, f: f(x)}
	}

	centroid := make([]float64, dim)
	trial := make([]float64, dim)
	iter := 0
	converged := false
	for ; iter < maxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		lo, hi := simplex[0].f, simplex[dim].f
		if relativeSpread(lo, hi) < tol {
			converged = true
			break
		}

		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j, v := range simplex[i].x {
				centroid[j] += v
			}
		}
		for j := range centroid {
			centroid[j] /= float64(dim)
		}

		worst := simplex[dim]
		// Reflection.
		affine(trial, centroid, worst.x, 1+reflectCoeff, -reflectCoeff)
		fr := f(trial)
		switch {
		case fr < simplex[0].f:
			// Expansion.
			expanded := make([]float64, dim)
			affine(expanded, centroid, worst.x, 1+expandCoeff, -expandCoeff)
			if fe := f(expanded); fe < fr {
				simplex[dim] = vertex{x: expanded, f: fe}
			} else {
				simplex[dim] = vertex{x: append([]float64(nil), trial...), f: fr}
			}
		case fr < simplex[dim-1].f:
			simplex[dim] = vertex{x: append([]float64(nil), trial...), f: fr}
		default:
			// Contraction (outside or inside, toward the better of
			// reflected and worst).
			ref := worst
			if fr < worst.f {
				ref = vertex{x: append([]float64(nil), trial...), f: fr}
			}
			contracted := make([]float64, dim)
			affine(contracted, centroid, ref.x, 1-contractCoeff, contractCoeff)
			if fc := f(contracted); fc < ref.f {
				simplex[dim] = vertex{x: contracted, f: fc}
			} else {
				// Shrink the whole simplex toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + shrinkCoeff*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{
		X:          append([]float64(nil), simplex[0].x...),
		F:          simplex[0].f,
		Iterations: iter,
		Converged:  converged,
	}
}

// affine computes out = a·p + b·q element-wise.
func affine(out, p, q []float64, a, b float64) {
	for j := range out {
		out[j] = a*p[j] + b*q[j]
	}
}

// relativeSpread measures how far apart the best and worst simplex values
// are, normalized to their magnitude.
func relativeSpread(lo, hi float64) float64 {
	denom := math.Abs(lo) + math.Abs(hi)
	if denom < 1e-300 {
		return 0
	}
	return 2 * math.Abs(hi-lo) / denom
}
