package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/coords"
)

// diskBlobs generates c well-separated uniform-disk blobs of size per in 2-D
// and returns the points plus ground-truth labels. Uniform disks avoid the
// heavy tails of Gaussians, which make ground truth itself ambiguous.
func diskBlobs(rng *rand.Rand, c, per int, radius, separation float64) ([]coords.Point, []int) {
	var pts []coords.Point
	var labels []int
	for b := 0; b < c; b++ {
		cx := float64(b) * separation
		cy := float64(b%2) * separation
		for i := 0; i < per; i++ {
			ang := rng.Float64() * 2 * math.Pi
			r := radius * math.Sqrt(rng.Float64())
			pts = append(pts, coords.Point{cx + r*math.Cos(ang), cy + r*math.Sin(ang)})
			labels = append(labels, b)
		}
	}
	return pts, labels
}

func pointDist(pts []coords.Point) func(i, j int) float64 {
	return func(i, j int) float64 { return coords.Dist(pts[i], pts[j]) }
}

func TestClusterFindsWellSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, labels := diskBlobs(rng, 4, 20, 4, 100)
	res, err := Cluster(len(pts), pointDist(pts), DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.NumClusters() != 4 {
		t.Fatalf("found %d clusters, want 4 (removed %d edges)", res.NumClusters(), len(res.RemovedEdges))
	}
	// Every detected cluster must be pure w.r.t. ground truth.
	for id, members := range res.Clusters {
		truth := labels[members[0]]
		for _, v := range members {
			if labels[v] != truth {
				t.Errorf("cluster %d mixes ground-truth labels %d and %d", id, truth, labels[v])
			}
		}
	}
}

func TestClusterSingleBlobStaysWhole(t *testing.T) {
	// A rim point that lands far from its neighbours can legitimately split
	// off as a satellite cluster, so this uses a seed whose draw is a
	// typical dense blob.
	rng := rand.New(rand.NewSource(1))
	pts, _ := diskBlobs(rng, 1, 40, 5, 0)
	res, err := Cluster(len(pts), pointDist(pts), DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.NumClusters() != 1 {
		t.Errorf("uniform blob split into %d clusters", res.NumClusters())
	}
}

func TestClusterSingleNode(t *testing.T) {
	res, err := Cluster(1, func(i, j int) float64 { return 0 }, DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.NumClusters() != 1 || len(res.Clusters[0]) != 1 {
		t.Errorf("single node clustering = %+v", res.Clusters)
	}
}

func TestClusterTwoDistantNodes(t *testing.T) {
	// A single edge has no nearby edges, so it is consistent by definition
	// and the pair stays one cluster regardless of length.
	pts := []coords.Point{{0, 0}, {1000, 0}}
	res, err := Cluster(2, pointDist(pts), DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.NumClusters() != 1 {
		t.Errorf("two isolated nodes split into %d clusters", res.NumClusters())
	}
}

func TestClusterValidation(t *testing.T) {
	d := func(i, j int) float64 { return 1 }
	if _, err := Cluster(0, d, DefaultConfig()); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := Cluster(3, nil, DefaultConfig()); err == nil {
		t.Error("nil distance accepted")
	}
	bad := DefaultConfig()
	bad.InconsistencyFactor = 0.5
	if _, err := Cluster(3, d, bad); err == nil {
		t.Error("k <= 1 accepted")
	}
	bad = DefaultConfig()
	bad.NeighborhoodDepth = -1
	if _, err := Cluster(3, d, bad); err == nil {
		t.Error("negative depth accepted")
	}
	bad = DefaultConfig()
	bad.Criterion = Criterion(99)
	if _, err := Cluster(3, d, bad); err == nil {
		t.Error("unknown criterion accepted")
	}
	bad = DefaultConfig()
	bad.MinClusterSize = -2
	if _, err := Cluster(3, d, bad); err == nil {
		t.Error("negative min cluster size accepted")
	}
}

func TestClusterAssignmentConsistentWithClusters(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(4)
		pts, _ := diskBlobs(rng, c, 5+rng.Intn(10), 2, 80)
		res, err := Cluster(len(pts), pointDist(pts), DefaultConfig())
		if err != nil {
			return false
		}
		// Every node appears in exactly one cluster, matching Assignment.
		seen := make(map[int]bool)
		for id, members := range res.Clusters {
			for _, v := range members {
				if seen[v] || res.Assignment[v] != id {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == len(pts)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := diskBlobs(rng, 3, 15, 4, 80)
	a, err := Cluster(len(pts), pointDist(pts), DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	b, err := Cluster(len(pts), pointDist(pts), DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if a.NumClusters() != b.NumClusters() {
		t.Fatalf("non-deterministic cluster counts: %d vs %d", a.NumClusters(), b.NumClusters())
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("non-deterministic assignment at node %d", i)
		}
	}
}

func TestHigherKMergesMoreProperty(t *testing.T) {
	// Raising the inconsistency factor can only remove fewer edges, so the
	// cluster count must be non-increasing in k.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts, _ := diskBlobs(rng, 3, 12, 5, 40)
		prev := math.MaxInt
		for _, k := range []float64{1.5, 2, 3, 4, 6} {
			cfg := DefaultConfig()
			cfg.InconsistencyFactor = k
			res, err := Cluster(len(pts), pointDist(pts), cfg)
			if err != nil {
				return false
			}
			if res.NumClusters() > prev {
				return false
			}
			prev = res.NumClusters()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCriterionVariantsAllFindObviousBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := diskBlobs(rng, 3, 20, 2, 200)
	for _, crit := range []Criterion{CriterionCombined, CriterionBothSides, CriterionMaxSide} {
		cfg := DefaultConfig()
		cfg.Criterion = crit
		res, err := Cluster(len(pts), pointDist(pts), cfg)
		if err != nil {
			t.Fatalf("Cluster(%v): %v", crit, err)
		}
		if res.NumClusters() != 3 {
			t.Errorf("criterion %v found %d clusters, want 3", crit, res.NumClusters())
		}
	}
}

func TestMinClusterSizeMergesSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := diskBlobs(rng, 2, 20, 3, 100)
	// Add a lone outlier far from both blobs but nearer blob 1.
	pts = append(pts, coords.Point{100 + 60, 40})
	cfg := DefaultConfig()
	cfg.MinClusterSize = 3
	res, err := Cluster(len(pts), pointDist(pts), cfg)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	for _, members := range res.Clusters {
		if len(members) < 3 {
			t.Errorf("cluster of size %d survived MinClusterSize=3", len(members))
		}
	}
}

func TestEvaluateQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts, _ := diskBlobs(rng, 3, 15, 3, 100)
	dist := pointDist(pts)
	res, err := Cluster(len(pts), dist, DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	q := Evaluate(res, dist)
	if q.NumClusters != res.NumClusters() {
		t.Errorf("Quality.NumClusters = %d, want %d", q.NumClusters, res.NumClusters())
	}
	if q.Separation < 5 {
		t.Errorf("Separation = %.2f for well-separated blobs, want >= 5", q.Separation)
	}
	if q.MaxClusterFraction <= 0 || q.MaxClusterFraction > 1 {
		t.Errorf("MaxClusterFraction = %v out of (0,1]", q.MaxClusterFraction)
	}
}

func TestEvaluateSingleCluster(t *testing.T) {
	pts := []coords.Point{{0, 0}, {1, 0}, {0, 1}}
	dist := pointDist(pts)
	res, err := Cluster(3, dist, DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	q := Evaluate(res, dist)
	if q.MeanInter != 0 {
		t.Errorf("MeanInter = %v for single cluster, want 0", q.MeanInter)
	}
}

func TestCriterionString(t *testing.T) {
	if CriterionCombined.String() != "combined" {
		t.Error("CriterionCombined.String() wrong")
	}
	if Criterion(0).String() == "" {
		t.Error("invalid criterion String() empty")
	}
}

func TestMSTEdgeCountInvariant(t *testing.T) {
	// The MST of n nodes has n-1 edges, and clusters = removed edges + 1
	// when the removed edges are a subset of the tree.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		pts := make([]coords.Point, n)
		for i := range pts {
			pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		res, err := Cluster(n, pointDist(pts), DefaultConfig())
		if err != nil {
			return false
		}
		return len(res.MSTEdges) == n-1 && res.NumClusters() == len(res.RemovedEdges)+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCriterionGlobalMedianOnTinySets(t *testing.T) {
	// Three collinear tight pairs far apart: local neighbourhood averages
	// are dominated by the long edges themselves, but the global median
	// (a short intra-pair edge) exposes them.
	pts := []coords.Point{
		{0, 0}, {1, 0},
		{100, 0}, {101, 0},
		{200, 0}, {201, 0},
	}
	cfg := DefaultConfig()
	cfg.Criterion = CriterionGlobalMedian
	res, err := Cluster(len(pts), pointDist(pts), cfg)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.NumClusters() != 3 {
		t.Errorf("global-median found %d clusters, want 3", res.NumClusters())
	}
	// The local combined criterion cannot separate this set (each long
	// edge's neighbourhood contains the other long edge).
	res2, err := Cluster(len(pts), pointDist(pts), DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res2.NumClusters() >= 3 {
		t.Logf("note: combined criterion also found %d clusters here", res2.NumClusters())
	}
}

func TestCriterionGlobalMedianUniformStaysWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := diskBlobs(rng, 1, 40, 5, 0)
	cfg := DefaultConfig()
	cfg.Criterion = CriterionGlobalMedian
	res, err := Cluster(len(pts), pointDist(pts), cfg)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.NumClusters() > 2 {
		t.Errorf("uniform blob split into %d clusters under global median", res.NumClusters())
	}
}
