package cluster

import (
	"math"
	"testing"
)

// FuzzZahnCluster drives Cluster with arbitrary point sets and
// configurations decoded from the fuzz input, asserting the structural
// invariants every result must satisfy: no panic, a total assignment in
// range, cluster membership lists consistent with the assignment, and the
// MinClusterSize floor respected.
func FuzzZahnCluster(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 2, 10, 10, 200, 200, 10, 200, 200, 10, 100, 100})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 4, 255, 0, 0, 255, 128, 128, 64, 192, 32, 32, 224, 224})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		cfg := Config{
			// > 1 required; spread over (1, 6.1].
			InconsistencyFactor: 1.02 + float64(data[0]%100)/19.6,
			NeighborhoodDepth:   1 + int(data[0]>>4),
			Criterion:           Criterion(1 + int(data[1])%4),
			MinClusterSize:      1 + int(data[1]>>5),
		}
		coords := data[2:]
		n := len(coords) / 2
		if n > 64 {
			n = 64
		}
		if n < 1 {
			t.Skip()
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(coords[2*i])
			ys[i] = float64(coords[2*i+1])
		}
		dist := func(i, j int) float64 {
			return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		}
		res, err := Cluster(n, dist, cfg)
		if err != nil {
			return // invalid inputs may be rejected, never panic
		}
		if len(res.Assignment) != n {
			t.Fatalf("assignment covers %d of %d points", len(res.Assignment), n)
		}
		k := len(res.Clusters)
		if k < 1 {
			t.Fatal("no clusters returned")
		}
		for i, c := range res.Assignment {
			if c < 0 || c >= k {
				t.Fatalf("point %d assigned to cluster %d of %d", i, c, k)
			}
		}
		seen := 0
		for c, members := range res.Clusters {
			if len(members) == 0 {
				t.Fatalf("cluster %d is empty", c)
			}
			if k > 1 && len(members) < cfg.MinClusterSize {
				t.Fatalf("cluster %d has %d members below floor %d", c, len(members), cfg.MinClusterSize)
			}
			for _, m := range members {
				if m < 0 || m >= n {
					t.Fatalf("cluster %d contains out-of-range point %d", c, m)
				}
				if res.Assignment[m] != c {
					t.Fatalf("point %d listed in cluster %d but assigned to %d", m, c, res.Assignment[m])
				}
				seen++
			}
		}
		if seen != n {
			t.Fatalf("cluster lists cover %d of %d points", seen, n)
		}
		if len(res.MSTEdges) != n-1 {
			t.Fatalf("MST has %d edges for %d points", len(res.MSTEdges), n)
		}
	})
}

// FuzzClusterDeterminism re-runs Cluster on the same decoded instance and
// requires byte-identical results — the determinism contract the parallel
// build relies on.
func FuzzClusterDeterminism(f *testing.F) {
	f.Add(uint16(12), []byte{9, 9, 30, 200, 77, 1, 160, 90, 2, 250})
	f.Fuzz(func(t *testing.T, seedN uint16, data []byte) {
		n := int(seedN)%32 + 2
		if len(data) < 2 {
			t.Skip()
		}
		dist := func(i, j int) float64 {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			mix := data[(lo*7+hi*13)%len(data)]
			return 1 + float64(mix)*float64(lo+1)/float64(hi+1)
		}
		a, errA := Cluster(n, dist, DefaultConfig())
		b, errB := Cluster(n, dist, DefaultConfig())
		if (errA == nil) != (errB == nil) {
			t.Fatalf("one run failed: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if len(a.Assignment) != len(b.Assignment) {
			t.Fatal("assignment lengths differ between identical runs")
		}
		for i := range a.Assignment {
			if a.Assignment[i] != b.Assignment[i] {
				t.Fatalf("point %d assigned %d then %d on identical input", i, a.Assignment[i], b.Assignment[i])
			}
		}
	})
}
