package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"hfc/internal/coords"
	"hfc/internal/geo"
)

// equivPoints draws one of several adversarial families: Gaussian blobs,
// uniform noise, and a coarse integer lattice whose duplicated coordinates
// force exact distance ties everywhere — the case the canonical
// (weight, lo, hi) edge order exists for.
func equivPoints(rng *rand.Rand, seed int64, n int) []coords.Point {
	pts := make([]coords.Point, n)
	switch seed % 3 {
	case 0:
		for i := range pts {
			c := float64(i % 4)
			pts[i] = coords.Point{c*300 + rng.NormFloat64()*10, c*300 + rng.NormFloat64()*10}
		}
	case 1:
		for i := range pts {
			pts[i] = coords.Point{rng.Float64() * 500, rng.Float64() * 500}
		}
	default:
		for i := range pts {
			pts[i] = coords.Point{float64(rng.Intn(8)) * 10, float64(rng.Intn(8)) * 10}
		}
	}
	return pts
}

// TestClusterGeoMatchesBrute is the tentpole equivalence property: across
// 200 seeded instances, clustering through the spatial-index engine (k-d
// tree and grid) produces results deeply equal to the brute-force
// complete-graph path — same MST edges, removed edges, assignments, and
// merged small clusters.
func TestClusterGeoMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 80 + rng.Intn(200)
		pts := equivPoints(rng, seed, n)
		for _, minSize := range []int{1, 4} {
			base := DefaultConfig()
			base.MinClusterSize = minSize
			brute := base
			brute.Index = geo.Brute
			want, err := Cluster(n, pointDist(pts), brute)
			if err != nil {
				t.Fatalf("seed %d: brute Cluster: %v", seed, err)
			}
			for _, strat := range []geo.Strategy{geo.KDTree, geo.Grid} {
				cfg := base
				cfg.Points = pts
				cfg.Index = strat
				got, err := Cluster(n, pointDist(pts), cfg)
				if err != nil {
					t.Fatalf("seed %d/%v: geo Cluster: %v", seed, strat, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d/%v minSize=%d n=%d: geo clustering differs from brute\n got: %+v\nwant: %+v",
						seed, strat, minSize, n, got, want)
				}
			}
		}
	}
}

// TestClusterAutoIndexThreshold pins Auto's behaviour: small inputs with
// Points stay on the brute path, and inputs past the threshold produce the
// identical result through the index.
func TestClusterAutoIndexThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{100, indexAutoMinN} {
		pts := equivPoints(rng, 1, n)
		brute := DefaultConfig()
		brute.Index = geo.Brute
		want, err := Cluster(n, pointDist(pts), brute)
		if err != nil {
			t.Fatalf("n=%d: brute: %v", n, err)
		}
		auto := DefaultConfig()
		auto.Points = pts
		got, err := Cluster(n, pointDist(pts), auto)
		if err != nil {
			t.Fatalf("n=%d: auto: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: auto clustering differs from brute", n)
		}
	}
}

// TestClusterIndexRequiresPoints pins the config validation: an explicit
// indexed strategy without Points is an error, and mismatched lengths are
// rejected.
func TestClusterIndexRequiresPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := equivPoints(rng, 1, 20)
	cfg := DefaultConfig()
	cfg.Index = geo.KDTree
	if _, err := Cluster(20, pointDist(pts), cfg); err == nil {
		t.Fatal("expected error for KDTree strategy without Points")
	}
	cfg.Points = pts[:10]
	if _, err := Cluster(20, pointDist(pts), cfg); err == nil {
		t.Fatal("expected error for mismatched Points length")
	}
}
