// Package cluster detects proximity clusters in a point set with Zahn's
// minimum-spanning-tree method ("Graph-Theoretical Methods for Detecting and
// Describing Gestalt Clusters", IEEE ToC 1971), which the paper adopts in
// §3.2: build the MST of the overlay nodes in the embedded coordinate space,
// flag edges that are significantly longer than their neighbourhood average
// as inconsistent, and remove them; the surviving connected components are
// the clusters.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hfc/internal/coords"
	"hfc/internal/geo"
	"hfc/internal/graph"
)

// Criterion selects how an edge's neighbourhood average b is computed when
// testing inconsistency a/b > k (a = edge length). The paper's wording
// ("the left and right sub-trees connected by l, whose average length of
// links is denoted by b") corresponds to CriterionCombined; the variants are
// kept for the ablation study.
type Criterion int

// Inconsistency criteria. Enums start at one so the zero value is invalid.
const (
	// CriterionCombined averages nearby edges from both subtrees together.
	CriterionCombined Criterion = iota + 1
	// CriterionBothSides requires a > k·avg on each side independently
	// (Zahn's conservative variant: both neighbourhoods must find the edge
	// long).
	CriterionBothSides
	// CriterionMaxSide requires a > k·max(avgLeft, avgRight).
	CriterionMaxSide
	// CriterionGlobalMedian requires a > k·median(all MST edge lengths).
	// Local neighbourhood averages break down on very small point sets
	// (a long edge dominates its own neighbourhood); the global median is
	// robust there, and is the criterion the multi-level construction
	// uses when clustering cluster centroids.
	CriterionGlobalMedian
)

// String returns a short label for the criterion.
func (c Criterion) String() string {
	switch c {
	case CriterionCombined:
		return "combined"
	case CriterionBothSides:
		return "both-sides"
	case CriterionMaxSide:
		return "max-side"
	case CriterionGlobalMedian:
		return "global-median"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Config parameterizes clustering.
type Config struct {
	// InconsistencyFactor is the paper's k: an edge of length a with
	// neighbourhood average b is inconsistent when a/b > k. The paper
	// suggests "a selected number, e.g., 2, 3, ..." (§3.2); we default to 3,
	// which on sampled point sets avoids the over-segmentation that k=2
	// suffers from natural MST edge-length variance.
	InconsistencyFactor float64
	// NeighborhoodDepth is how many hops into each subtree count as
	// "nearby" when averaging edge lengths. Default 3.
	NeighborhoodDepth int
	// Criterion selects the neighbourhood-average variant. Default
	// CriterionCombined.
	Criterion Criterion
	// MinClusterSize, when > 1, merges any smaller detected cluster into
	// the cluster containing its nearest outside node. The paper leaves
	// degenerate clusters untreated; this knob exists for the robustness
	// ablation and defaults to 1 (disabled).
	MinClusterSize int
	// Points, when set, are the embedded coordinates behind dist, aligned
	// by node index: dist(i, j) must equal coords.Dist(Points[i],
	// Points[j]). Supplying them enables the sub-quadratic geometric
	// engine (internal/geo) for the MST and small-cluster merging; the
	// result is identical to the brute-force scans either way.
	Points []coords.Point
	// Index selects the geometric engine strategy. The zero value
	// (geo.Auto) uses the k-d engine when Points are present, finite, and
	// the node set is large enough to amortize tree construction, falling
	// back to the O(n²) scans otherwise; geo.Brute forces the scans; an
	// explicit geo.KDTree or geo.Grid requires Points.
	Index geo.Strategy
}

// indexAutoMinN is the node count at which geo.Auto switches Cluster onto
// the geometric engine; below it the dense Prim scan is at least as fast.
const indexAutoMinN = 512

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		InconsistencyFactor: 3,
		NeighborhoodDepth:   3,
		Criterion:           CriterionCombined,
		MinClusterSize:      1,
	}
}

func (c Config) withDefaults() Config {
	if c.InconsistencyFactor == 0 {
		c.InconsistencyFactor = 3
	}
	if c.NeighborhoodDepth == 0 {
		c.NeighborhoodDepth = 3
	}
	if c.Criterion == 0 {
		c.Criterion = CriterionCombined
	}
	if c.MinClusterSize == 0 {
		c.MinClusterSize = 1
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.InconsistencyFactor <= 1:
		return fmt.Errorf("cluster: inconsistency factor %v must be > 1", c.InconsistencyFactor)
	case c.NeighborhoodDepth < 1:
		return fmt.Errorf("cluster: neighbourhood depth %d must be >= 1", c.NeighborhoodDepth)
	case c.MinClusterSize < 1:
		return fmt.Errorf("cluster: min cluster size %d must be >= 1", c.MinClusterSize)
	}
	switch c.Criterion {
	case CriterionCombined, CriterionBothSides, CriterionMaxSide, CriterionGlobalMedian:
	default:
		return fmt.Errorf("cluster: unknown criterion %d", int(c.Criterion))
	}
	return nil
}

// Result describes a clustering.
type Result struct {
	// Assignment maps node index → cluster ID in [0, len(Clusters)).
	// Cluster IDs are assigned in order of each cluster's smallest member,
	// so results are deterministic.
	Assignment []int
	// Clusters lists each cluster's members in increasing node order.
	Clusters [][]int
	// MSTEdges is the spanning tree the detection ran on.
	MSTEdges []graph.Edge
	// RemovedEdges are the inconsistent edges whose removal produced the
	// clusters.
	RemovedEdges []graph.Edge
}

// NumClusters returns the number of detected clusters.
func (r *Result) NumClusters() int { return len(r.Clusters) }

// Cluster runs the full §3.2 procedure on n nodes whose pairwise distances
// are given by dist (symmetric, non-negative): build the MST of the complete
// graph, remove inconsistent edges, and return the resulting components.
func Cluster(n int, dist func(i, j int) float64, cfg Config) (*Result, error) {
	if n <= 0 {
		return nil, errors.New("cluster: empty node set")
	}
	if dist == nil {
		return nil, errors.New("cluster: nil distance function")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	useGeo, err := cfg.useGeoEngine(n)
	if err != nil {
		return nil, err
	}

	// Both paths yield the unique MST under the (weight, lo, hi) tuple
	// order, canonicalized so geo-backed and brute-force runs DeepEqual.
	var mst []graph.Edge
	if useGeo {
		mst, err = geo.MST(cfg.Points, cfg.Index)
	} else {
		mst, err = graph.EuclideanMST(n, dist)
		graph.CanonicalizeEdges(mst)
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: building mst: %w", err)
	}

	removed := inconsistentEdges(n, mst, cfg)

	// Components of the MST minus the removed edges.
	removedSet := make(map[[2]int]bool, len(removed))
	for _, e := range removed {
		removedSet[edgeKey(e)] = true
	}
	uf := graph.NewUnionFind(n)
	for _, e := range mst {
		if !removedSet[edgeKey(e)] {
			uf.Union(e.From, e.To)
		}
	}
	res := &Result{MSTEdges: mst, RemovedEdges: removed}
	res.Assignment, res.Clusters = componentsToClusters(n, uf)

	if cfg.MinClusterSize > 1 {
		// The merge rounds reuse one index over the full (static) node
		// set: cluster membership changes between rounds, but the node
		// set does not, so per-round skip filters are enough.
		var idx geo.Index
		if useGeo {
			idx, err = geo.NewIndex(cfg.Points, nil, cfg.Index)
			if err != nil {
				return nil, fmt.Errorf("cluster: merge index: %w", err)
			}
		}
		mergeSmallClusters(res, dist, cfg.MinClusterSize, cfg.Points, idx)
	}
	return res, nil
}

// useGeoEngine decides whether Cluster runs on the geometric engine.
// Explicit indexed strategies require Points; geo.Auto silently falls back
// to the brute scans when Points are absent, non-finite, or the node set
// is too small to benefit.
func (c Config) useGeoEngine(n int) (bool, error) {
	switch {
	case c.Index == geo.Brute:
		return false, nil
	case c.Points == nil:
		if c.Index == geo.Auto {
			return false, nil
		}
		return false, fmt.Errorf("cluster: strategy %v requires Config.Points", c.Index)
	case len(c.Points) != n:
		return false, fmt.Errorf("cluster: %d points for %d nodes", len(c.Points), n)
	case c.Index == geo.Auto && (n < indexAutoMinN || !geo.Finite(c.Points)):
		return false, nil
	}
	return true, nil
}

func edgeKey(e graph.Edge) [2]int {
	if e.From < e.To {
		return [2]int{e.From, e.To}
	}
	return [2]int{e.To, e.From}
}

// inconsistentEdges applies the Zahn test to every MST edge.
func inconsistentEdges(n int, mst []graph.Edge, cfg Config) []graph.Edge {
	if cfg.Criterion == CriterionGlobalMedian {
		weights := make([]float64, len(mst))
		for i, e := range mst {
			weights[i] = e.Weight
		}
		med := median(weights)
		var removed []graph.Edge
		for _, e := range mst {
			if med > 0 && e.Weight > cfg.InconsistencyFactor*med {
				removed = append(removed, e)
			}
		}
		return removed
	}

	// Adjacency of the tree: node → incident edge indices.
	adj := make([][]int, n)
	for idx, e := range mst {
		adj[e.From] = append(adj[e.From], idx)
		adj[e.To] = append(adj[e.To], idx)
	}

	var removed []graph.Edge
	for idx, e := range mst {
		left := nearbyEdgeWeights(mst, adj, e.From, idx, cfg.NeighborhoodDepth)
		right := nearbyEdgeWeights(mst, adj, e.To, idx, cfg.NeighborhoodDepth)
		if isInconsistent(e.Weight, left, right, cfg) {
			removed = append(removed, e)
		}
	}
	return removed
}

// median returns the lower median of xs (xs is not mutated).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[(len(sorted)-1)/2]
}

// nearbyEdgeWeights collects the weights of tree edges reachable from start
// within depth hops, never traversing the excluded edge — i.e., the "nearby"
// links of one subtree side.
func nearbyEdgeWeights(mst []graph.Edge, adj [][]int, start, excludeIdx, depth int) []float64 {
	type frontierNode struct {
		v int
		d int
	}
	visitedEdges := map[int]bool{excludeIdx: true}
	visitedNodes := map[int]bool{start: true}
	queue := []frontierNode{{v: start, d: 0}}
	var weights []float64
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d == depth {
			continue
		}
		for _, ei := range adj[cur.v] {
			if visitedEdges[ei] {
				continue
			}
			visitedEdges[ei] = true
			e := mst[ei]
			weights = append(weights, e.Weight)
			next := e.From
			if next == cur.v {
				next = e.To
			}
			if !visitedNodes[next] {
				visitedNodes[next] = true
				queue = append(queue, frontierNode{v: next, d: cur.d + 1})
			}
		}
	}
	return weights
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// isInconsistent applies the configured a/b > k test. Sides without nearby
// edges (leaf endpoints) do not constrain the decision; an edge with no
// nearby edges at all is consistent by definition.
func isInconsistent(a float64, left, right []float64, cfg Config) bool {
	k := cfg.InconsistencyFactor
	switch cfg.Criterion {
	case CriterionBothSides:
		switch {
		case len(left) == 0 && len(right) == 0:
			return false
		case len(left) == 0:
			return a > k*avg(right)
		case len(right) == 0:
			return a > k*avg(left)
		default:
			return a > k*avg(left) && a > k*avg(right)
		}
	case CriterionMaxSide:
		b := math.Max(avg(left), avg(right))
		return b > 0 && a > k*b
	default: // CriterionCombined
		combined := append(append([]float64(nil), left...), right...)
		b := avg(combined)
		return b > 0 && a > k*b
	}
}

// componentsToClusters converts union-find state into the canonical
// Result representation with deterministic cluster IDs.
func componentsToClusters(n int, uf *graph.UnionFind) ([]int, [][]int) {
	repToMembers := make(map[int][]int)
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		repToMembers[r] = append(repToMembers[r], v)
	}
	groups := make([][]int, 0, len(repToMembers))
	for _, members := range repToMembers {
		sort.Ints(members)
		groups = append(groups, members)
	}
	// Order clusters by smallest member for determinism.
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	assignment := make([]int, n)
	for id, members := range groups {
		for _, v := range members {
			assignment[v] = id
		}
	}
	return assignment, groups
}

// mergeSmallClusters folds clusters below minSize into the cluster of their
// nearest outside node (single-linkage), repeating until no undersized
// cluster remains or only one cluster is left. The nearest outside node is
// chosen under the canonical (distance, small member u, outside node v)
// order — scanning u and v in ascending node order with a strict < makes
// ties resolve to exactly that tuple minimum, and the geo-indexed path
// reproduces it query for query. idx, when non-nil, is an index over the
// full node set (pts aligned with dist).
func mergeSmallClusters(res *Result, dist func(i, j int) float64, minSize int, pts []coords.Point, idx geo.Index) {
	n := len(res.Assignment)
	inSmall := make([]bool, n)
	for len(res.Clusters) > 1 {
		smallID := -1
		for id, members := range res.Clusters {
			if len(members) < minSize {
				smallID = id
				break
			}
		}
		if smallID == -1 {
			return
		}
		// Find nearest outside node over all members of the small cluster.
		bestDist := math.Inf(1)
		bestCluster := -1
		small := res.Clusters[smallID]
		for _, u := range small {
			inSmall[u] = true
		}
		if idx != nil {
			skip := func(v int) bool { return inSmall[v] }
			for _, u := range small {
				// The incumbent distance bounds the query; a returned
				// candidate below it is necessarily the exact per-u
				// minimum, so the strict merge reproduces the brute scan.
				nb, ok := idx.NearestBounded(pts[u], bestDist, skip)
				if ok && nb.Dist < bestDist {
					bestDist = nb.Dist
					bestCluster = res.Assignment[nb.Idx]
				}
			}
		} else {
			for _, u := range small {
				for v := 0; v < n; v++ {
					if inSmall[v] {
						continue
					}
					if d := dist(u, v); d < bestDist {
						bestDist = d
						bestCluster = res.Assignment[v]
					}
				}
			}
		}
		for _, u := range small {
			inSmall[u] = false
		}
		merged := append(res.Clusters[smallID], res.Clusters[bestCluster]...)
		sort.Ints(merged)
		// Rebuild cluster list without smallID, replacing bestCluster.
		var groups [][]int
		for id, members := range res.Clusters {
			switch id {
			case smallID:
			case bestCluster:
				groups = append(groups, merged)
			default:
				groups = append(groups, members)
			}
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
		res.Clusters = groups
		for id, members := range groups {
			for _, v := range members {
				res.Assignment[v] = id
			}
		}
	}
}

// Quality summarizes how well a clustering separates near from far nodes.
type Quality struct {
	// NumClusters is the cluster count.
	NumClusters int
	// MeanIntra is the mean pairwise distance within clusters (0 when all
	// clusters are singletons).
	MeanIntra float64
	// MeanInter is the mean pairwise distance across clusters (0 when
	// there is a single cluster).
	MeanInter float64
	// Separation is MeanInter / MeanIntra (+Inf when MeanIntra is 0;
	// higher is better).
	Separation float64
	// MaxClusterFraction is the size of the largest cluster divided by n;
	// values near 1 indicate the degenerate one-big-cluster outcome the
	// paper discusses in §6.1.
	MaxClusterFraction float64
}

// Evaluate computes clustering quality over the same distance function the
// clustering ran on.
func Evaluate(res *Result, dist func(i, j int) float64) Quality {
	n := len(res.Assignment)
	var intraSum, interSum float64
	var intraCnt, interCnt int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(i, j)
			if res.Assignment[i] == res.Assignment[j] {
				intraSum += d
				intraCnt++
			} else {
				interSum += d
				interCnt++
			}
		}
	}
	q := Quality{NumClusters: len(res.Clusters)}
	if intraCnt > 0 {
		q.MeanIntra = intraSum / float64(intraCnt)
	}
	if interCnt > 0 {
		q.MeanInter = interSum / float64(interCnt)
	}
	if q.MeanIntra > 0 {
		q.Separation = q.MeanInter / q.MeanIntra
	} else if q.MeanInter > 0 {
		q.Separation = math.Inf(1)
	}
	maxSize := 0
	for _, members := range res.Clusters {
		if len(members) > maxSize {
			maxSize = len(members)
		}
	}
	if n > 0 {
		q.MaxClusterFraction = float64(maxSize) / float64(n)
	}
	return q
}
