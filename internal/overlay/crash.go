package overlay

import (
	"fmt"

	"hfc/internal/state"
	"hfc/internal/svc"
)

// Crash fail-stops a node: from now on every message addressed to it is
// silently discarded at send time (counted in FaultStats.DroppedToCrashed),
// and the runtime's failure detector reports it dead, so border duty
// migrates to backup pairs and resolvers/providers stop being chosen on it.
// The node's goroutine keeps draining its mailbox — a fail-stop process
// disappears, it does not wedge the network — but no new traffic reaches
// it. Crashing an already-crashed node is a no-op.
func (s *System) Crash(id int) error {
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("overlay: node %d out of range [0,%d)", id, len(s.nodes))
	}
	s.crashed[id].Store(true)
	// The crash registry subsumes any gray-node suspicion: a fail-stopped
	// node must not linger in quarantine, or Recover's clean Rejoin would
	// race a stale flag.
	s.clearQuarantine(id)
	// Incrementally re-elect the borders the crashed node served (§5.2):
	// only its own cluster's pairs are touched. A node the accrual detector
	// already quarantined has already left the elections; the Present check
	// makes the two paths commute.
	s.dynMu.Lock()
	var err error
	if s.dyn.Present(id) {
		err = s.dyn.Leave(id)
	}
	s.dynMu.Unlock()
	if err != nil {
		return fmt.Errorf("overlay: crash of %d: %w", id, err)
	}
	// Cached routes through the node's cluster may cross the dead proxy.
	if s.cache != nil {
		s.cache.AdvanceRound(s.topo.ClusterOf(id))
	}
	return nil
}

// Recover rejoins a crashed node with empty tables: it knows only its own
// capability and its own cluster's aggregate-of-one, exactly like a freshly
// booted proxy, and re-learns everything from the next protocol rounds. The
// SeqP/SeqC trackers survive the crash (the stand-in for the stable-storage
// epoch a real proxy would persist), so the recovered node still rejects
// floods older than what it accepted before crashing. Recovering a live
// node is a no-op.
func (s *System) Recover(id int) error {
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("overlay: node %d out of range [0,%d)", id, len(s.nodes))
	}
	if !s.crashed[id].Load() {
		return nil
	}
	n := s.nodes[id]
	caps := s.capsOf(id)
	n.st.Lock()
	n.state = state.NodeState{
		Node: id,
		SCTP: map[int]svc.CapabilitySet{id: caps.Clone()},
		SCTC: map[int]svc.CapabilitySet{n.view.ClusterID: caps.Clone()},
		SeqP: n.state.SeqP,
		SeqC: n.state.SeqC,
	}
	// The generation tokens and aggregate cache describe tables that were
	// just wiped: forget them so the next flood re-installs everything.
	for i := range n.genSeen {
		n.genSeen[i] = 0
	}
	for i := range n.aggGenSeen {
		n.aggGenSeen[i] = 0
	}
	for i := range n.fwdEpoch {
		n.fwdEpoch[i] = 0
	}
	n.aggCache = nil
	n.aggDirty = true
	n.st.Unlock()
	// The rejoined node holds none of the foreign aggregates its cluster's
	// borders may have stopped re-flooding: advance the repair epoch so
	// every border repeats the intra-cluster forward once.
	s.repairEpoch[n.view.ClusterID].Add(1)
	// A recovered node starts with a clean bill of health: pre-crash
	// suspicion was evidence about a process that no longer exists.
	s.clearQuarantine(id)
	// Restore the node into the live border elections before senders can
	// see it alive, so border duty and view lookups are consistent.
	s.dynMu.Lock()
	var err error
	if !s.dyn.Present(id) {
		err = s.dyn.Rejoin(id)
	}
	s.dynMu.Unlock()
	if err != nil {
		return fmt.Errorf("overlay: recover of %d: %w", id, err)
	}
	if s.cache != nil {
		s.cache.AdvanceRound(s.topo.ClusterOf(id))
	}
	// Flip the flag last: once senders see the node live, its tables are
	// already in the clean rejoin state.
	s.crashed[id].Store(false)
	return nil
}

// IsCrashed reports whether a node is currently fail-stopped. Out-of-range
// IDs report false.
func (s *System) IsCrashed(id int) bool {
	if id < 0 || id >= len(s.crashed) {
		return false
	}
	return s.crashed[id].Load()
}

// CrashedNodes returns the IDs of currently crashed nodes in increasing
// order.
func (s *System) CrashedNodes() []int {
	var out []int
	for i := range s.crashed {
		if s.crashed[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// ConvergedLive is Converged modulo the currently crashed set: live nodes
// must hold exact state for live members and bracketed aggregates (see
// state.VerifyConvergenceExcept); crashed nodes' frozen tables are skipped.
func (s *System) ConvergedLive() (bool, error) {
	crashed := func(n int) bool { return s.IsCrashed(n) }
	if s.sim != nil {
		// Baton-ordered simulation mode: verify through aliases, no copy.
		return state.VerifyConvergenceExcept(s.topo, s.Capabilities(), s.simStates(), crashed) == nil, nil
	}
	states, err := s.States()
	if err != nil {
		return false, err
	}
	return state.VerifyConvergenceExcept(s.topo, s.Capabilities(), states, crashed) == nil, nil
}

// noteStaleRejected, noteRPCRetry and noteResolverFailover bump the
// corresponding FaultStats counters.
func (s *System) noteStaleRejected() {
	s.dropMu.Lock()
	s.faults.StaleRejected++
	s.dropMu.Unlock()
}

func (s *System) noteRPCRetry() {
	s.dropMu.Lock()
	s.faults.RPCRetries++
	s.dropMu.Unlock()
}

func (s *System) noteResolverFailover() {
	s.dropMu.Lock()
	s.faults.ResolverFailovers++
	s.dropMu.Unlock()
}
