package overlay

import (
	"strings"
	"testing"

	"hfc/internal/routing"
	"hfc/internal/svc"
)

func convergedSystem(t *testing.T, seed int64) (*System, []svc.CapabilitySet) {
	t.Helper()
	topo, caps := buildFixture(t, seed)
	sys := startSystem(t, topo, caps, Config{})
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()
	return sys, caps
}

func TestExecuteAppliesServicesInOrder(t *testing.T) {
	sys, caps := convergedSystem(t, 60)
	req, err := newRequest(t, caps, 61)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	res, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	trace, err := sys.Execute(res.Path, "stream")
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// The data plane must apply exactly the services the control plane
	// planned, in order.
	want := res.Path.Services()
	got := trace.Services()
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v", got, want)
		}
	}
	// The payload nests transformations innermost-first.
	if !strings.HasSuffix(trace.Payload, "(stream)"+strings.Repeat(")", len(want)-1)) {
		t.Errorf("payload = %q", trace.Payload)
	}
	// Forwards equal the number of distinct-node transitions.
	transitions := 0
	for i := 0; i+1 < len(res.Path.Hops); i++ {
		if res.Path.Hops[i].Node != res.Path.Hops[i+1].Node {
			transitions++
		}
	}
	if trace.Forwards != transitions {
		t.Errorf("forwards = %d, want %d", trace.Forwards, transitions)
	}
	// Traffic accounting: the injection plus each forward.
	if sys.Traffic().Data != transitions+1 {
		t.Errorf("data messages = %d, want %d", sys.Traffic().Data, transitions+1)
	}
}

func TestExecuteRejectsLyingPath(t *testing.T) {
	sys, caps := convergedSystem(t, 62)
	// A forged path assigning a service to a proxy that lacks it.
	victim := -1
	for i, set := range caps {
		if !set.Has("s0") {
			victim = i
			break
		}
	}
	if victim == -1 {
		t.Skip("every proxy has s0")
	}
	forged := &routing.Path{Hops: []routing.Hop{
		{Node: 0},
		{Node: victim, Service: "s0"},
		{Node: 1},
	}}
	if _, err := sys.Execute(forged, "x"); err == nil {
		t.Error("forged path executed without error")
	}
}

func TestExecuteValidation(t *testing.T) {
	sys, _ := convergedSystem(t, 63)
	if _, err := sys.Execute(nil, "x"); err == nil {
		t.Error("nil path accepted")
	}
	if _, err := sys.Execute(&routing.Path{}, "x"); err == nil {
		t.Error("empty path accepted")
	}
	bad := &routing.Path{Hops: []routing.Hop{{Node: 9999}}}
	if _, err := sys.Execute(bad, "x"); err == nil {
		t.Error("out-of-range hop accepted")
	}
}

func TestExecuteRelayOnlyPath(t *testing.T) {
	sys, _ := convergedSystem(t, 64)
	p := &routing.Path{Hops: []routing.Hop{{Node: 0}, {Node: 5}, {Node: 9}}}
	trace, err := sys.Execute(p, "raw")
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(trace.Applied) != 0 {
		t.Errorf("relay-only path applied services: %v", trace.Applied)
	}
	if trace.Payload != "raw" {
		t.Errorf("payload mutated: %q", trace.Payload)
	}
	if trace.Forwards != 2 {
		t.Errorf("forwards = %d, want 2", trace.Forwards)
	}
}

func TestExecuteEndToEndMatchesRequestSemantics(t *testing.T) {
	// Full-circle integration: route, execute, and check the executed
	// service sequence satisfies the request's service graph.
	sys, caps := convergedSystem(t, 65)
	for i := 0; i < 10; i++ {
		req, err := newRequest(t, caps, int64(70+i))
		if err != nil {
			continue
		}
		res, err := sys.Route(req)
		if err != nil {
			t.Fatalf("Route: %v", err)
		}
		trace, err := sys.Execute(res.Path, "payload")
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		applied := trace.Services()
		matched := false
		for _, config := range req.SG.Configurations() {
			want := req.SG.ServicesOf(config)
			if len(want) == len(applied) {
				same := true
				for j := range want {
					if want[j] != applied[j] {
						same = false
						break
					}
				}
				if same {
					matched = true
					break
				}
			}
		}
		if !matched {
			t.Fatalf("executed services %v satisfy no configuration of %v", applied, req.SG)
		}
	}
}
