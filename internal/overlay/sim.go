package overlay

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/mlhfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
	"hfc/internal/vtime"
)

// SimSpec configures one seeded end-to-end simulation: a generated
// geometric overlay of N proxies driven through convergence, capability
// churn, a cluster partition, and crash/recovery cycles entirely on a
// virtual clock. Every run with the same (spec, seed) produces a
// byte-identical Trace and StateDigest — the FoundationDB-style property
// that turns "it flaked once at 3am" into "replay seed 1742".
type SimSpec struct {
	// N is the overlay size (>= 16).
	N int
	// Multilevel switches to the tri-level mlhfc hierarchy: one overlay
	// runtime per group on a shared scheduler, with the super-aggregate
	// layer maintained by the harness. Required past ~50k nodes, where a
	// flat §4 round's 2n^1.5 messages stop fitting in a test budget.
	Multilevel bool
	// Groups fixes the multilevel fan-out (0 picks n^⅓, the balanced
	// tri-level split).
	Groups int
	// Rounds is the number of state rounds per convergence phase
	// (default 2 — local flood, then aggregate exchange settles).
	Rounds int
	// Churn is how many capability-churn events to inject.
	Churn int
	// Crashes is how many crash/recover cycles to run.
	Crashes int
	// Partition, when true, isolates one cluster for a round and then
	// heals it.
	Partition bool
	// Probes is how many route probes to issue per probe phase.
	Probes int
	// MeasureImprecision additionally solves every flat-mode probe with
	// the optimal flat router and reports the mean length ratio
	// (hierarchical / optimal) — the Fig. 10 imprecision signal. Ignored
	// in multilevel mode.
	MeasureImprecision bool
	// DelayPerUnit, when positive, charges Dist(u,v)·DelayPerUnit of
	// virtual time per delivery (free under virtual time, but it shuffles
	// event order realistically).
	DelayPerUnit time.Duration
}

func (spec SimSpec) withDefaults() SimSpec {
	if spec.Rounds == 0 {
		spec.Rounds = 2
	}
	return spec
}

// SimReport is the outcome of one Simulate run.
type SimReport struct {
	// N, Clusters, and Groups describe the generated topology (Groups is
	// 0 in flat mode; Clusters sums the per-group interiors in multilevel
	// mode).
	N, Clusters, Groups int
	// Rounds counts the state rounds actually triggered.
	Rounds int
	// Traffic totals delivered runtime messages (summed over the
	// per-group runtimes in multilevel mode).
	Traffic TrafficStats
	// Faults totals fault-path events the same way.
	Faults FaultStats
	// SuperMessages counts the harness-level super-aggregate exchange
	// messages (multilevel only).
	SuperMessages int
	// Probes and ProbeFailures count route probes issued and failed.
	Probes, ProbeFailures int
	// MaxRelayRun is the longest run of consecutive pure-relay hops seen
	// in any probed path — the §5 bound says <= 2 for bi-level routing
	// (one border pair per cluster crossing).
	MaxRelayRun int
	// MeanImprecision is the mean hierarchical/optimal path-length ratio
	// (0 when not measured).
	MeanImprecision float64
	// Converged reports the final ground-truth convergence check.
	Converged bool
	// VirtualTime is the simulated clock at the end of the run.
	VirtualTime time.Duration
	// Trace is the deterministic event log: byte-identical across runs
	// with the same spec and seed.
	Trace string
	// StateDigest is an order-independent FNV digest of every node's
	// final converged state.
	StateDigest uint64
}

// simPoints is the simulation workload generator: proxies drawn around
// `blobs` Gaussian blobs in a 1000-unit square, the workload family the
// construction gates measure. Callers pick the blob count to land cluster
// sizes near the paper's per-round traffic optimum for their mode — with
// a fixed count, per-cluster membership (and hence local-flood traffic
// per round) would grow as O(n²). Centers sit on a jittered grid rather
// than uniform-random positions: at hundreds of blobs, random centers
// frequently land close enough to chain neighbouring blobs into one MST
// cluster, collapsing K and with it the whole traffic model.
func simPoints(rng *rand.Rand, n, blobs int) []coords.Point {
	if blobs < 16 {
		blobs = 16
	}
	side := int(math.Ceil(math.Sqrt(float64(blobs))))
	spacing := 1000.0 / float64(side)
	sigma := spacing / 10
	centers := make([]coords.Point, blobs)
	for b := range centers {
		row, col := b/side, b%side
		centers[b] = coords.Point{
			(float64(col)+0.5)*spacing + (rng.Float64()-0.5)*spacing/4,
			(float64(row)+0.5)*spacing + (rng.Float64()-0.5)*spacing/4,
		}
	}
	pts := make([]coords.Point, n)
	for i := range pts {
		c := centers[i%blobs]
		pts[i] = coords.Point{c[0] + rng.NormFloat64()*sigma, c[1] + rng.NormFloat64()*sigma}
	}
	return pts
}

// simPointsHier is simPoints with one more level of structure: `groups`
// superblobs on a coarse jittered grid, each holding `blobsPerGroup` blobs
// on its own fine grid, with every length scale an order of magnitude
// below the one above (group gap ≫ blob gap ≫ blob radius). The MST
// therefore cuts group-separating edges first and blob-separating edges
// second — the hierarchical workload the tri-level builder is meant for.
func simPointsHier(rng *rand.Rand, n, groups, blobsPerGroup int) []coords.Point {
	if blobsPerGroup < 1 {
		blobsPerGroup = 1
	}
	sideG := int(math.Ceil(math.Sqrt(float64(groups))))
	spacingG := 1000.0 / float64(sideG)
	sideB := int(math.Ceil(math.Sqrt(float64(blobsPerGroup))))
	span := spacingG * 0.5
	spacingB := span / float64(sideB)
	sigma := spacingB / 10
	centers := make([]coords.Point, groups*blobsPerGroup)
	for g := 0; g < groups; g++ {
		gRow, gCol := g/sideG, g%sideG
		gx := (float64(gCol)+0.5)*spacingG + (rng.Float64()-0.5)*spacingG/8
		gy := (float64(gRow)+0.5)*spacingG + (rng.Float64()-0.5)*spacingG/8
		for b := 0; b < blobsPerGroup; b++ {
			bRow, bCol := b/sideB, b%sideB
			centers[g*blobsPerGroup+b] = coords.Point{
				gx - span/2 + (float64(bCol)+0.5)*spacingB + (rng.Float64()-0.5)*spacingB/4,
				gy - span/2 + (float64(bRow)+0.5)*spacingB + (rng.Float64()-0.5)*spacingB/4,
			}
		}
	}
	pts := make([]coords.Point, n)
	for i := range pts {
		c := centers[i%len(centers)]
		pts[i] = coords.Point{c[0] + rng.NormFloat64()*sigma, c[1] + rng.NormFloat64()*sigma}
	}
	return pts
}

// maxRelayRun returns the longest run of consecutive relay (service-free,
// non-endpoint) hops in the path.
func maxRelayRun(p *routing.Path) int {
	best, run := 0, 0
	for i, h := range p.Hops {
		if i > 0 && i < len(p.Hops)-1 && h.Service == "" {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// digestStates folds every (node, table, origin, services) entry of the
// final protocol state into one order-independent digest: each entry is
// FNV-hashed on its own and XORed in, so map iteration order cannot leak
// into the result.
func digestStates(states []state.NodeState) uint64 {
	var acc uint64
	// Simulation states alias shared capability sets (every SCTP entry for
	// one origin is the same map; every SCTC entry for one cluster is the
	// border's shared aggregate), so hash each distinct set once, keyed by
	// map identity. Identity is only a cache key — two different maps with
	// equal content simply hash twice to the same value.
	setMemo := make(map[uintptr]uint64, len(states))
	setHash := func(set svc.CapabilitySet) uint64 {
		key := reflect.ValueOf(set).Pointer()
		if h, ok := setMemo[key]; ok && key != 0 {
			return h
		}
		h := fnv.New64a()
		for _, s := range set.Sorted() {
			// hash.Hash writes never fail.
			_, _ = h.Write([]byte(s))
			_, _ = h.Write([]byte{','})
		}
		sum := h.Sum64()
		if key != 0 {
			setMemo[key] = sum
		}
		return sum
	}
	entry := func(node int, table string, key int, set svc.CapabilitySet) {
		h := fnv.New64a()
		_, _ = fmt.Fprintf(h, "%d|%s|%d|%016x", node, table, key, setHash(set))
		acc ^= h.Sum64()
	}
	for _, st := range states {
		for origin, set := range st.SCTP {
			entry(st.Node, "p", origin, set)
		}
		for cl, set := range st.SCTC {
			entry(st.Node, "c", cl, set)
		}
	}
	return acc
}

// Simulate builds a seeded overlay and drives it through convergence,
// churn, partition, and crash phases on a virtual clock, returning the
// deterministic report. Runs are single-threaded discrete-event
// executions: n=32k flat or n=100k multilevel finish in seconds of wall
// time while simulating minutes of protocol timeouts.
func Simulate(spec SimSpec, seed int64) (*SimReport, error) {
	spec = spec.withDefaults()
	if spec.N < 16 {
		return nil, fmt.Errorf("overlay: simulate N=%d too small (need >= 16)", spec.N)
	}
	if spec.Multilevel {
		return simulateMultilevel(spec, seed)
	}
	return simulateFlat(spec, seed)
}

// simTrace accumulates the deterministic event log.
type simTrace struct {
	b strings.Builder
}

func (t *simTrace) f(format string, args ...interface{}) {
	fmt.Fprintf(&t.b, format+"\n", args...)
}

func simulateFlat(spec SimSpec, seed int64) (*SimReport, error) {
	rng := rand.New(rand.NewSource(seed))
	// Bi-level optimum: |C| ≈ K ≈ √n balances the per-round local floods
	// (n·|C|) against the aggregate re-floods (n·(K-1)).
	pts := simPoints(rng, spec.N, int(math.Sqrt(float64(spec.N))))
	cmap, err := coords.NewMap(pts)
	if err != nil {
		return nil, err
	}
	clustering, err := cluster.Cluster(spec.N, cmap.Dist, cluster.Config{
		Points:         cmap.Points,
		MinClusterSize: 8,
	})
	if err != nil {
		return nil, fmt.Errorf("overlay: simulate cluster: %w", err)
	}
	topo, err := hfc.Build(cmap, clustering)
	if err != nil {
		return nil, fmt.Errorf("overlay: simulate build: %w", err)
	}
	cat, err := svc.NewCatalog(12)
	if err != nil {
		return nil, err
	}
	caps, err := svc.RandomCapabilities(rng, spec.N, cat, 2, 5)
	if err != nil {
		return nil, err
	}

	sim := vtime.NewSim()
	// The partition filter is read on the scheduler runner (baton-ordered
	// with its writers below), so a plain variable suffices.
	partitioned := -1
	cfg := Config{
		Clock:        sim,
		DelayPerUnit: spec.DelayPerUnit,
		LinkPolicy: func(from, to int, kind MsgKind) LinkVerdict {
			if partitioned >= 0 &&
				(topo.ClusterOf(from) == partitioned) != (topo.ClusterOf(to) == partitioned) {
				return LinkVerdict{Drop: true}
			}
			return LinkVerdict{}
		},
	}
	sys, err := New(topo, caps, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}

	rep := &SimReport{N: spec.N, Clusters: topo.NumClusters()}
	tr := &simTrace{}
	tr.f("sim seed=%d mode=flat n=%d clusters=%d rounds=%d churn=%d crashes=%d partition=%v probes=%d",
		seed, spec.N, rep.Clusters, spec.Rounds, spec.Churn, spec.Crashes, spec.Partition, spec.Probes)

	converge := func(label string, rounds int) {
		for i := 0; i < rounds; i++ {
			sys.TriggerStateRound()
			sys.Quiesce()
			rep.Rounds++
			tf := sys.Traffic()
			tr.f("round %d (%s): local=%d agg=%d t=%v", rep.Rounds, label, tf.Local, tf.Aggregate, sim.Now())
		}
	}

	var imprecisions []float64
	probePhase := func(label string) error {
		if spec.Probes == 0 {
			return nil
		}
		cur := sys.Capabilities()
		gen, err := svc.NewRequestGenerator(rng, cur, 2, 4)
		if err != nil {
			return err
		}
		provs := routing.CapabilityProviders(cur)
		oracle := routing.OracleFunc(cmap.Dist)
		for i := 0; i < spec.Probes; i++ {
			req, err := gen.Next()
			if err != nil {
				return err
			}
			res, err := sys.Route(req)
			rep.Probes++
			if err != nil {
				rep.ProbeFailures++
				tr.f("probe %s/%d: FAIL %v", label, i, err)
				continue
			}
			run := maxRelayRun(res.Path)
			if run > rep.MaxRelayRun {
				rep.MaxRelayRun = run
			}
			if err := res.Path.Validate(req, cur); err != nil {
				return fmt.Errorf("overlay: simulate probe %s/%d invalid path: %w", label, i, err)
			}
			tr.f("probe %s/%d: hops=%d relayrun=%d", label, i, len(res.Path.Hops), run)
			if spec.MeasureImprecision {
				opt, err := routing.FindPath(req, provs, oracle, nil)
				if err != nil {
					return fmt.Errorf("overlay: simulate probe %s/%d optimal: %w", label, i, err)
				}
				if ol := opt.Length(cmap.Dist); ol > 0 {
					imprecisions = append(imprecisions, res.Path.Length(cmap.Dist)/ol)
				}
			}
		}
		return nil
	}

	var simErr error
	sim.Run(func() {
		converge("initial", spec.Rounds)
		if simErr = probePhase("pre"); simErr != nil {
			return
		}
		for i := 0; i < spec.Churn; i++ {
			victim := rng.Intn(spec.N)
			fresh, err := svc.RandomCapabilities(rng, 1, cat, 2, 5)
			if err != nil {
				simErr = err
				return
			}
			if err := sys.UpdateCapability(victim, fresh[0]); err != nil {
				simErr = err
				return
			}
			tr.f("churn %d: node %d -> %d services", i, victim, fresh[0].Len())
		}
		if spec.Churn > 0 {
			converge("churn", spec.Rounds)
		}
		if spec.Partition {
			partitioned = rng.Intn(topo.NumClusters())
			tr.f("partition: isolate cluster %d", partitioned)
			converge("partitioned", 1)
			partitioned = -1
			tr.f("partition: healed (policy dropped %d)", sys.FaultCounters().DroppedByPolicy)
			converge("healed", spec.Rounds)
		}
		for i := 0; i < spec.Crashes; i++ {
			victim := rng.Intn(spec.N)
			if err := sys.Crash(victim); err != nil {
				simErr = err
				return
			}
			tr.f("crash %d: node %d", i, victim)
			converge("crashed", 1)
			if err := sys.Recover(victim); err != nil {
				simErr = err
				return
			}
			tr.f("recover %d: node %d", i, victim)
		}
		if spec.Crashes > 0 {
			converge("recovered", spec.Rounds)
		}
		if simErr = probePhase("post"); simErr != nil {
			return
		}
	})
	if simErr != nil {
		_ = sys.Stop()
		return nil, simErr
	}

	converged, err := sys.Converged()
	if err != nil {
		_ = sys.Stop()
		return nil, err
	}
	states := sys.simStates()
	if err := sys.Stop(); err != nil {
		return nil, err
	}
	rep.Converged = converged
	rep.Traffic = sys.Traffic()
	rep.Faults = sys.FaultCounters()
	rep.VirtualTime = sim.Now()
	rep.StateDigest = digestStates(states)
	if len(imprecisions) > 0 {
		sum := 0.0
		for _, r := range imprecisions {
			sum += r
		}
		rep.MeanImprecision = sum / float64(len(imprecisions))
	}
	tr.f("final: converged=%v relaymax=%d virtual=%v digest=%016x",
		converged, rep.MaxRelayRun, rep.VirtualTime, rep.StateDigest)
	rep.Trace = tr.b.String()
	return rep, nil
}

// simulateMultilevel runs the tri-level hierarchy: every group's interior
// is a complete overlay runtime on one shared virtual clock, and the
// harness plays the super layer — maintaining per-group super-aggregates
// and accounting their pairwise exchange — exactly as mlhfc.Distribute
// models it synchronously.
func simulateMultilevel(spec SimSpec, seed int64) (*SimReport, error) {
	rng := rand.New(rand.NewSource(seed))
	// Tri-level optimum: groups ≈ clusters-per-group ≈ |C| ≈ n^⅓, so each
	// level fans out evenly and the per-round flood volume stays near
	// n·n^⅓. The workload carries that hierarchy in its geometry
	// (superblobs of blobs), so the topology builder discovers balanced
	// groups instead of carving a uniform centroid grid into one giant
	// component plus slivers.
	groups := spec.Groups
	if groups == 0 {
		groups = int(math.Round(math.Cbrt(float64(spec.N))))
	}
	if groups < 2 {
		groups = 2
	}
	blobsPerGroup := int(math.Round(math.Pow(float64(spec.N), 2.0/3.0))) / groups
	pts := simPointsHier(rng, spec.N, groups, blobsPerGroup)
	cmap, err := coords.NewMap(pts)
	if err != nil {
		return nil, err
	}
	mlCfg := mlhfc.DefaultConfig()
	mlCfg.Inner.Points = cmap.Points
	mlCfg.Inner.MinClusterSize = 8
	mlCfg.TargetGroups = groups
	topo, err := mlhfc.Build(cmap, mlCfg)
	if err != nil {
		return nil, fmt.Errorf("overlay: simulate mlhfc build: %w", err)
	}
	cat, err := svc.NewCatalog(12)
	if err != nil {
		return nil, err
	}
	caps, err := svc.RandomCapabilities(rng, spec.N, cat, 2, 5)
	if err != nil {
		return nil, err
	}

	k := topo.NumGroups()
	sim := vtime.NewSim()
	systems := make([]*System, k)
	superCaps := make([]svc.CapabilitySet, k)
	rep := &SimReport{N: spec.N, Groups: k}
	for g := 0; g < k; g++ {
		members := topo.Members(g)
		localCaps := make([]svc.CapabilitySet, len(members))
		for li, node := range members {
			localCaps[li] = caps[node]
		}
		sys, err := New(topo.Interior(g), localCaps, Config{Clock: sim, DelayPerUnit: spec.DelayPerUnit})
		if err != nil {
			return nil, fmt.Errorf("overlay: simulate group %d: %w", g, err)
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		systems[g] = sys
		superCaps[g] = svc.Union(localCaps...)
		rep.Clusters += topo.Interior(g).NumClusters()
	}
	stopAll := func() {
		for _, sys := range systems {
			_ = sys.Stop()
		}
	}

	tr := &simTrace{}
	tr.f("sim seed=%d mode=multilevel n=%d groups=%d clusters=%d rounds=%d churn=%d crashes=%d probes=%d",
		seed, spec.N, k, rep.Clusters, spec.Rounds, spec.Churn, spec.Crashes, spec.Probes)

	// superExchange accounts one harness-level super round: each group
	// ships its aggregate to every other group's super border, which
	// re-floods it internally — counted exactly as mlhfc.Distribute does.
	superExchange := func() {
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if a != b {
					rep.SuperMessages += 1 + len(topo.Members(b)) - 1
				}
			}
		}
	}

	converge := func(label string, rounds int) {
		for i := 0; i < rounds; i++ {
			for _, sys := range systems {
				sys.TriggerStateRound()
			}
			// One WaitIdle drains every group's cascade: they share the
			// scheduler.
			systems[0].Quiesce()
			rep.Rounds++
			superExchange()
			tr.f("round %d (%s): t=%v", rep.Rounds, label, sim.Now())
		}
	}

	// assembleStates aliases every group runtime's live node states into
	// the mlhfc routing view — no clones; reads are baton-ordered with the
	// runtimes because probes run on the scheduler between rounds.
	assembleStates := func() *mlhfc.States {
		st := &mlhfc.States{
			PerGroup: make([][]state.NodeState, k),
			Super:    make([]svc.CapabilitySet, k),
		}
		for g := 0; g < k; g++ {
			st.PerGroup[g] = systems[g].simStates()
			st.Super[g] = superCaps[g]
		}
		return st
	}

	probePhase := func(label string) error {
		if spec.Probes == 0 {
			return nil
		}
		cur := make([]svc.CapabilitySet, spec.N)
		for g := 0; g < k; g++ {
			groupCaps := systems[g].Capabilities()
			for li, node := range topo.Members(g) {
				cur[node] = groupCaps[li]
			}
		}
		gen, err := svc.NewRequestGenerator(rng, cur, 2, 4)
		if err != nil {
			return err
		}
		states := assembleStates()
		for i := 0; i < spec.Probes; i++ {
			req, err := gen.Next()
			if err != nil {
				return err
			}
			res, err := mlhfc.Route(topo, states, req)
			rep.Probes++
			if err != nil {
				rep.ProbeFailures++
				tr.f("probe %s/%d: FAIL %v", label, i, err)
				continue
			}
			run := maxRelayRun(res.Path)
			if run > rep.MaxRelayRun {
				rep.MaxRelayRun = run
			}
			if err := res.Path.Validate(req, cur); err != nil {
				return fmt.Errorf("overlay: simulate ml probe %s/%d invalid path: %w", label, i, err)
			}
			tr.f("probe %s/%d: groups=%d hops=%d relayrun=%d", label, i, len(res.Children), len(res.Path.Hops), run)
		}
		return nil
	}

	var simErr error
	sim.Run(func() {
		converge("initial", spec.Rounds)
		if simErr = probePhase("pre"); simErr != nil {
			return
		}
		for i := 0; i < spec.Churn; i++ {
			victim := rng.Intn(spec.N)
			g, li := topo.GroupOf(victim), topo.ToLocal(victim)
			fresh, err := svc.RandomCapabilities(rng, 1, cat, 2, 5)
			if err != nil {
				simErr = err
				return
			}
			if err := systems[g].UpdateCapability(li, fresh[0]); err != nil {
				simErr = err
				return
			}
			superCaps[g] = svc.Union(systems[g].Capabilities()...)
			tr.f("churn %d: node %d (group %d) -> %d services", i, victim, g, fresh[0].Len())
		}
		if spec.Churn > 0 {
			converge("churn", spec.Rounds)
		}
		for i := 0; i < spec.Crashes; i++ {
			victim := rng.Intn(spec.N)
			g, li := topo.GroupOf(victim), topo.ToLocal(victim)
			if err := systems[g].Crash(li); err != nil {
				simErr = err
				return
			}
			tr.f("crash %d: node %d (group %d)", i, victim, g)
			converge("crashed", 1)
			if err := systems[g].Recover(li); err != nil {
				simErr = err
				return
			}
			tr.f("recover %d: node %d", i, victim)
		}
		if spec.Crashes > 0 {
			converge("recovered", spec.Rounds)
		}
		if simErr = probePhase("post"); simErr != nil {
			return
		}
	})
	if simErr != nil {
		stopAll()
		return nil, simErr
	}

	rep.Converged = true
	var allStates []state.NodeState
	for g := 0; g < k; g++ {
		ok, err := systems[g].Converged()
		if err != nil {
			stopAll()
			return nil, err
		}
		if !ok {
			rep.Converged = false
		}
		tf := systems[g].Traffic()
		rep.Traffic.Local += tf.Local
		rep.Traffic.Aggregate += tf.Aggregate
		rep.Traffic.Route += tf.Route
		rep.Traffic.Child += tf.Child
		rep.Traffic.Data += tf.Data
		fc := systems[g].FaultCounters()
		rep.Faults.Dropped += fc.Dropped
		rep.Faults.DroppedToCrashed += fc.DroppedToCrashed
		rep.Faults.StaleRejected += fc.StaleRejected
		rep.Faults.RPCRetries += fc.RPCRetries
		// Digest over GLOBAL node ids so two different groupings of the
		// same converged facts cannot collide.
		for li, st := range systems[g].simStates() {
			st.Node = topo.ToGlobal(g, li)
			allStates = append(allStates, st)
		}
	}
	stopAll()
	rep.VirtualTime = sim.Now()
	rep.StateDigest = digestStates(allStates)
	tr.f("final: converged=%v relaymax=%d virtual=%v super=%d digest=%016x",
		rep.Converged, rep.MaxRelayRun, rep.VirtualTime, rep.SuperMessages, rep.StateDigest)
	rep.Trace = tr.b.String()
	return rep, nil
}

// simStates returns aliases of every node's live protocol state — the
// struct values share the underlying maps, so callers must treat them as
// read-only. Simulation-mode only: the aliasing is safe exactly because
// every runtime access is baton-ordered on the shared scheduler.
func (s *System) simStates() []state.NodeState {
	if s.sim == nil {
		panic("overlay: simStates outside simulation mode")
	}
	out := make([]state.NodeState, len(s.nodes))
	for i, n := range s.nodes {
		//hfcvet:ignore guardedby sim mode is baton-ordered on one scheduler; no node runs while this reads
		out[i] = n.state
	}
	return out
}
