package overlay

import (
	"testing"
)

func TestDropRateValidation(t *testing.T) {
	topo, caps := buildFixture(t, 30)
	if _, err := New(topo, caps, Config{DropRate: -0.1}); err == nil {
		t.Error("negative drop rate accepted")
	}
	if _, err := New(topo, caps, Config{DropRate: 1.5}); err == nil {
		t.Error("drop rate > 1 accepted")
	}
	if _, err := New(topo, caps, Config{ProtocolDropRate: -0.1}); err == nil {
		t.Error("negative protocol drop rate accepted")
	}
	if _, err := New(topo, caps, Config{ProtocolDropRate: 1.5}); err == nil {
		t.Error("protocol drop rate > 1 accepted")
	}
}

func TestLossyProtocolEventuallyConverges(t *testing.T) {
	// With 30% loss a single round leaves gaps, but the periodic protocol
	// resends everything each round, so convergence must arrive within a
	// bounded number of rounds (P(miss k rounds) = 0.3^k per message).
	topo, caps := buildFixture(t, 31)
	sys := startSystem(t, topo, caps, Config{ProtocolDropRate: 0.3, DropSeed: 7})

	converged := false
	rounds := 0
	for ; rounds < 40; rounds++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		ok, err := sys.Converged()
		if err != nil {
			t.Fatalf("Converged: %v", err)
		}
		if ok {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("no convergence after %d lossy rounds (%d messages dropped)", rounds, sys.DroppedMessages())
	}
	if sys.DroppedMessages() == 0 {
		t.Error("fault injection dropped nothing at rate 0.3")
	}
	t.Logf("converged after %d rounds with %d dropped messages", rounds+1, sys.DroppedMessages())
}

func TestFullLossNeverConverges(t *testing.T) {
	topo, caps := buildFixture(t, 32)
	sys := startSystem(t, topo, caps, Config{ProtocolDropRate: 1.0, DropSeed: 7})
	for i := 0; i < 3; i++ {
		sys.TriggerStateRound()
		sys.Quiesce()
	}
	ok, err := sys.Converged()
	if err != nil {
		t.Fatalf("Converged: %v", err)
	}
	if ok {
		t.Error("system converged despite 100% protocol loss")
	}
	if sys.DroppedMessages() == 0 {
		t.Error("no drops recorded at rate 1.0")
	}
}

func TestRoutingStillWorksAfterLossyConvergence(t *testing.T) {
	// ProtocolDropRate spares the request plane, so every Route must
	// succeed once the state protocol has healed. 40 rounds at 20% loss
	// leave P(any single message missed every round) ≈ 10^-28 — if this
	// seed fails to converge, the protocol is broken, hence Fatal below.
	topo, caps := buildFixture(t, 33)
	sys := startSystem(t, topo, caps, Config{ProtocolDropRate: 0.2, DropSeed: 3})
	converged := false
	for i := 0; i < 40; i++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		if ok, err := sys.Converged(); err != nil {
			t.Fatalf("Converged: %v", err)
		} else if ok {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("no convergence after 40 rounds at 20%% protocol loss (seed 3, %d dropped)", sys.DroppedMessages())
	}
	// Requests and replies are never dropped; routing over the recovered
	// state must produce valid paths.
	reqsDone := 0
	for i := 0; i < 10; i++ {
		req, err := newRequest(t, caps, int64(i))
		if err != nil {
			continue
		}
		res, rerr := sys.Route(req)
		if rerr != nil {
			t.Fatalf("Route: %v", rerr)
		}
		if err := res.Path.Validate(req, caps); err != nil {
			t.Fatalf("invalid path after lossy convergence: %v", err)
		}
		reqsDone++
	}
	if reqsDone == 0 {
		t.Fatal("no requests exercised")
	}
}
