package overlay

import (
	"sync"
	"testing"
	"time"
)

// TestStopConcurrentWithRoundBurst is the shutdown-ordering regression
// test: Stop must be safe to call while protocol triggers and route
// requests are still being injected from other goroutines. The invariant
// chain under test (enforced statically by hfcvet's lockscope and guardedby
// analyzers, and dynamically here under -race) is:
//
//  1. Stop flips accepting under sendMu before waiting, so no sender can
//     slip past the check and Add to inflight after the Wait started;
//  2. inboxes are closed only after inflight drains, so no send can hit a
//     closed channel (a panic, not an error);
//  3. sends racing or following Stop are counted DroppedAfterStop no-ops.
//
// Routes racing the shutdown may fail with a timeout; that is a clean
// rejection and acceptable. What the test forbids is a panic (send on
// closed channel) or a race report.
func TestStopConcurrentWithRoundBurst(t *testing.T) {
	for iter := 0; iter < 6; iter++ {
		topo, caps := buildFixture(t, int64(100+iter))
		cfg := Config{
			MailboxSize:  16,
			RouteTimeout: 50 * time.Millisecond,
			RPCTimeout:   20 * time.Millisecond,
			RPCRetries:   -1, // keep racing routes from stretching the test
		}
		sys, err := New(topo, caps, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sys.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		req, err := newRequest(t, caps, int64(300+iter))
		if err != nil {
			t.Fatalf("newRequest: %v", err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					sys.TriggerStateRound()
					if i%10 == g {
						// Exercise the request path too; racing Stop it may
						// time out, but it must never panic.
						_, _ = sys.Route(req)
					}
				}
			}(g)
		}
		// One goroutine races Stop against the burst.
		wg.Add(1)
		var stopErr error
		go func() {
			defer wg.Done()
			<-start
			stopErr = sys.Stop()
		}()
		close(start)
		wg.Wait()

		if stopErr != nil {
			t.Fatalf("iter %d: Stop: %v", iter, stopErr)
		}
		if err := sys.Stop(); err == nil {
			t.Fatalf("iter %d: second Stop succeeded", iter)
		}
		// Injections after full shutdown must be counted no-ops.
		sys.TriggerStateRound()
		if got := sys.FaultCounters().DroppedAfterStop; got == 0 {
			t.Errorf("iter %d: post-stop trigger not counted as DroppedAfterStop", iter)
		}
	}
}
