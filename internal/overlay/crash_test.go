package overlay

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfc/internal/svc"
)

// fastFaultConfig keeps timeout-path tests quick.
func fastFaultConfig() Config {
	return Config{
		RouteTimeout: 50 * time.Millisecond,
		RPCTimeout:   15 * time.Millisecond,
		RPCRetries:   1,
		RPCBackoff:   time.Millisecond,
	}
}

func convergeRounds(t *testing.T, sys *System, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		sys.TriggerStateRound()
		sys.Quiesce()
	}
}

// nonBorderNode returns a node with no border duty, primary or backup.
func nonBorderNode(t *testing.T, sys *System) int {
	t.Helper()
	protected := map[int]bool{}
	for _, b := range sys.topo.BorderNodes() {
		protected[b] = true
	}
	for _, b := range sys.topo.BackupBorderNodes() {
		protected[b] = true
	}
	for i := 0; i < sys.topo.N(); i++ {
		if !protected[i] {
			return i
		}
	}
	t.Fatal("every node has border duty")
	return -1
}

func TestCrashRecoverValidation(t *testing.T) {
	topo, caps := buildFixture(t, 60)
	sys := startSystem(t, topo, caps, Config{})
	if err := sys.Crash(-1); err == nil {
		t.Error("negative id accepted by Crash")
	}
	if err := sys.Recover(topo.N()); err == nil {
		t.Error("out-of-range id accepted by Recover")
	}
	if err := sys.Recover(0); err != nil {
		t.Errorf("recovering a live node: %v", err)
	}
	if sys.IsCrashed(-5) || sys.IsCrashed(topo.N()+5) {
		t.Error("out-of-range id reported crashed")
	}
	if err := sys.Crash(3); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := sys.Crash(3); err != nil {
		t.Errorf("double crash: %v", err)
	}
	if got := sys.CrashedNodes(); len(got) != 1 || got[0] != 3 {
		t.Errorf("CrashedNodes = %v, want [3]", got)
	}
}

func TestRouteToCrashedDestTimesOut(t *testing.T) {
	topo, caps := buildFixture(t, 61)
	cfg := fastFaultConfig()
	sys, sim := startSimSystem(t, topo, caps, cfg)

	req, err := newRequest(t, caps, 61)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	var rerr error
	var elapsed time.Duration
	sim.Run(func() {
		convergeRounds(t, sys, 2)
		if err := sys.Crash(req.Dest); err != nil {
			t.Errorf("Crash: %v", err)
			return
		}
		start := sim.Now()
		_, rerr = sys.Route(req)
		elapsed = sim.Now() - start
	})
	if !errors.Is(rerr, ErrRPCTimeout) {
		t.Fatalf("Route to crashed dest: err = %v, want ErrRPCTimeout", rerr)
	}
	// Virtual time makes the deadline math exact: RPCRetries=1 → two
	// attempts of RouteTimeout each, separated by one backoff.
	if want := 2*cfg.RouteTimeout + cfg.RPCBackoff; elapsed != want {
		t.Errorf("timed-out route took %v of virtual time, want exactly %v", elapsed, want)
	}
	fc := sys.FaultCounters()
	if fc.DroppedToCrashed < 2 {
		t.Errorf("DroppedToCrashed = %d, want >= 2 (both attempts)", fc.DroppedToCrashed)
	}
	if fc.RPCRetries < 1 {
		t.Errorf("RPCRetries = %d, want >= 1", fc.RPCRetries)
	}
}

func TestChildRPCFailsOverToAlternateResolver(t *testing.T) {
	topo, caps := buildFixture(t, 62)
	if topo.NumClusters() < 2 {
		t.Fatal("fixture needs >= 2 clusters")
	}
	// Give the destination a service nobody else provides, so the CSP maps
	// it to the destination's cluster and the source cluster contributes a
	// pure-relay child whose resolver is its exit border.
	ca, cb := 0, 1
	src, dest := -1, -1
	for i := 0; i < topo.N(); i++ {
		if src == -1 && topo.ClusterOf(i) == ca {
			src = i
		}
		if dest == -1 && topo.ClusterOf(i) == cb {
			dest = i
		}
	}
	unique := svc.Service("unique-child-failover")
	caps[dest] = caps[dest].Clone()
	caps[dest].Add(unique)

	sys := startSystem(t, topo, caps, fastFaultConfig())
	convergeRounds(t, sys, 2)

	inCa, _, err := topo.Border(ca, cb)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	if err := sys.Crash(inCa); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// Simulate failure-detector lag at the destination: it still believes
	// the crashed border is alive (and has not heard the re-elected border
	// either), so the child RPC must discover the failure the hard way —
	// deadline misses, then alternate resolvers.
	sys.nodes[dest].view.Alive = func(int) bool { return true }
	sys.nodes[dest].view.BorderOverride = nil

	sg, err := svc.Linear(unique)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	res, rerr := sys.Route(svc.Request{Source: src, Dest: dest, SG: sg})
	if rerr != nil {
		t.Fatalf("Route with crashed designated resolver: %v", rerr)
	}
	if res.Path == nil || len(res.Path.Hops) == 0 {
		t.Fatal("empty path")
	}
	fc := sys.FaultCounters()
	if fc.RPCRetries < 1 {
		t.Errorf("RPCRetries = %d, want >= 1 (crashed resolver must time out)", fc.RPCRetries)
	}
	if fc.ResolverFailovers < 1 {
		t.Errorf("ResolverFailovers = %d, want >= 1 (alternate resolver must answer)", fc.ResolverFailovers)
	}
}

func TestBorderCrashReconvergesThroughBackup(t *testing.T) {
	topo, caps := buildFixture(t, 63)
	ca, cb := 0, 1
	backups, err := topo.BackupBorders(ca, cb)
	if err != nil {
		t.Fatalf("BackupBorders: %v", err)
	}
	if len(backups) == 0 {
		t.Fatal("fixture clusters too small for backup borders")
	}
	inCa, _, err := topo.Border(ca, cb)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}

	sys := startSystem(t, topo, caps, Config{})
	convergeRounds(t, sys, 2)
	if err := sys.Crash(inCa); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	// Change ground truth in the border's cluster AFTER the crash: the only
	// way the new service can reach other clusters' SCT_C (the live-aggregate
	// floor of ConvergedLive) is an aggregate exchange over a backup pair.
	fresh := svc.Service("post-crash-service")
	var carrier int = -1
	for i := 0; i < topo.N(); i++ {
		if topo.ClusterOf(i) == ca && i != inCa && !sys.IsCrashed(i) {
			carrier = i
			break
		}
	}
	set := caps[carrier].Clone()
	set.Add(fresh)
	if err := sys.UpdateCapability(carrier, set); err != nil {
		t.Fatalf("UpdateCapability: %v", err)
	}

	reconverged := false
	for r := 0; r < 5; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		ok, err := sys.ConvergedLive()
		if err != nil {
			t.Fatalf("ConvergedLive: %v", err)
		}
		if ok {
			reconverged = true
			t.Logf("re-converged %d round(s) after border crash", r+1)
			break
		}
	}
	if !reconverged {
		t.Fatal("no re-convergence through backup border within 5 rounds")
	}
	// The new service crossed clusters, so it travelled over a backup pair.
	for i := 0; i < topo.N(); i++ {
		if sys.IsCrashed(i) || topo.ClusterOf(i) == ca {
			continue
		}
		st, err := sys.StateOf(i)
		if err != nil {
			t.Fatalf("StateOf: %v", err)
		}
		if !st.SCTC[ca].Has(fresh) {
			t.Errorf("node %d SCT_C[%d] missing %q: backup exchange did not happen", i, ca, fresh)
		}
	}
	// Live views must now resolve the pair's border to a live backup.
	for _, n := range sys.nodes {
		if sys.IsCrashed(n.id) {
			continue
		}
		u, v, err := n.view.Border(ca, cb)
		if err != nil {
			continue // views not party to the pair may not know it
		}
		if u == inCa || v == inCa {
			t.Errorf("node %d view still selects crashed border %d for (%d,%d)", n.id, inCa, ca, cb)
		}
	}
	if fc := sys.FaultCounters(); fc.DroppedToCrashed == 0 {
		t.Error("no messages recorded as dropped to the crashed border")
	}
}

func TestRecoveredNodeRejoins(t *testing.T) {
	topo, caps := buildFixture(t, 64)
	sys := startSystem(t, topo, caps, Config{})
	convergeRounds(t, sys, 2)

	victim := nonBorderNode(t, sys)
	if err := sys.Crash(victim); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	convergeRounds(t, sys, 1)
	if ok, err := sys.ConvergedLive(); err != nil || !ok {
		t.Fatalf("ConvergedLive with %d crashed = %v, %v", victim, ok, err)
	}

	// Ground truth moves while the victim is down; after recovery it must
	// re-learn everything, including the change it never saw.
	other := (victim + 1) % topo.N()
	if sys.IsCrashed(other) {
		other = (victim + 2) % topo.N()
	}
	set := caps[other].Clone()
	set.Add("while-you-were-out")
	if err := sys.UpdateCapability(other, set); err != nil {
		t.Fatalf("UpdateCapability: %v", err)
	}

	if err := sys.Recover(victim); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(sys.CrashedNodes()) != 0 {
		t.Fatalf("CrashedNodes = %v after recovery", sys.CrashedNodes())
	}
	st, err := sys.StateOf(victim)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if len(st.SCTP) != 1 {
		t.Errorf("recovered node rejoined with %d SCT_P entries, want only itself", len(st.SCTP))
	}

	convergeRounds(t, sys, 3)
	ok, err := sys.Converged()
	if err != nil {
		t.Fatalf("Converged: %v", err)
	}
	if !ok {
		t.Fatal("no strict convergence after recovery")
	}
	st, err = sys.StateOf(victim)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if !st.SCTP[other].Has("while-you-were-out") {
		t.Error("recovered node missed the capability change made while it was down")
	}
}

func TestStaleRefloodRejected(t *testing.T) {
	topo, caps := buildFixture(t, 65)
	sys := startSystem(t, topo, caps, Config{})
	convergeRounds(t, sys, 2) // round counter now 2

	victim := 0
	var origin int = -1
	for i := 1; i < topo.N(); i++ {
		if topo.ClusterOf(i) == topo.ClusterOf(victim) {
			origin = i
			break
		}
	}
	if origin == -1 {
		t.Fatal("victim has no cluster peer")
	}
	before, err := sys.StateOf(victim)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if !before.SCTP[origin].Equal(caps[origin]) {
		t.Fatalf("victim not converged before replay")
	}

	// Replay a round-1 flood carrying bogus state — a delayed duplicate
	// from before convergence. The sequence check must discard it.
	sys.send(-1, victim, message{
		kind:      kindLocal,
		localFrom: origin,
		localSet:  svc.NewCapabilitySet("bogus-replayed"),
		seq:       1,
	})
	sys.Quiesce()

	after, err := sys.StateOf(victim)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if after.SCTP[origin].Has("bogus-replayed") {
		t.Error("stale re-flood overwrote newer state")
	}
	if !after.SCTP[origin].Equal(caps[origin]) {
		t.Errorf("SCTP[%d] = %v after replay, want %v", origin, after.SCTP[origin], caps[origin])
	}
	if fc := sys.FaultCounters(); fc.StaleRejected < 1 {
		t.Errorf("StaleRejected = %d, want >= 1", fc.StaleRejected)
	}
}

func TestSendAfterStopIsCountedNoOp(t *testing.T) {
	topo, caps := buildFixture(t, 66)
	sys, err := New(topo, caps, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	sys.TriggerStateRound() // must not panic on closed inboxes
	fc := sys.FaultCounters()
	if fc.DroppedAfterStop != topo.N() {
		t.Errorf("DroppedAfterStop = %d, want %d (one per node)", fc.DroppedAfterStop, topo.N())
	}
}

// TestStopSendRaceHammer races concurrent senders against Stop; before the
// sendMu admission protocol, this was a send-on-closed-channel panic under
// load. Run with -race.
func TestStopSendRaceHammer(t *testing.T) {
	topo, caps := buildFixture(t, 67)
	for i := 0; i < 25; i++ {
		sys, err := New(topo, caps, Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sys.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		var stopped atomic.Bool
		var rounds atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The cap bounds how much flood traffic Stop must drain;
				// the race window is in the first few rounds anyway.
				for !stopped.Load() && rounds.Load() < 32 {
					sys.TriggerStateRound()
					rounds.Add(1)
				}
			}()
		}
		// Vary how much send traffic Stop races against — a work-based
		// stagger instead of a wall-clock sleep, so the hammer spends its
		// whole budget hammering.
		for target := int64(i % 3); rounds.Load() < target; {
			runtime.Gosched()
		}
		if err := sys.Stop(); err != nil {
			t.Fatalf("Stop: %v", err)
		}
		stopped.Store(true)
		wg.Wait()
	}
}
