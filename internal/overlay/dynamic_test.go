package overlay

import (
	"testing"

	"hfc/internal/hfc"
	"hfc/internal/svc"
)

// TestCrashReelectsBorderIncrementally exercises the §4/§5 failover path on
// top of incremental HFC maintenance: crashing a primary border endpoint
// must re-elect a live pair (matching a full rebuild over live membership),
// the live views must serve the new pair, and cross-cluster routing must
// keep working without touching the crashed node.
func TestCrashReelectsBorderIncrementally(t *testing.T) {
	topo, caps := buildFixture(t, 70)
	if topo.NumClusters() < 2 {
		t.Fatal("fixture needs >= 2 clusters")
	}
	ca, cb := 0, 1
	inCa, inCb, err := topo.Border(ca, cb)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	// Keep the destination clear of the border pair so crashing inCa cannot
	// take the destination down with it.
	src, dest := -1, -1
	for i := 0; i < topo.N(); i++ {
		if src == -1 && topo.ClusterOf(i) == ca && i != inCa {
			src = i
		}
		if dest == -1 && topo.ClusterOf(i) == cb && i != inCb {
			dest = i
		}
	}
	if src == -1 || dest == -1 {
		t.Fatal("fixture clusters too small to avoid the border pair")
	}
	unique := svc.Service("unique-dyn-failover")
	caps[dest] = caps[dest].Clone()
	caps[dest].Add(unique)

	sys := startSystem(t, topo, caps, fastFaultConfig())
	convergeRounds(t, sys, 2)
	if err := sys.Crash(inCa); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	// The incremental tables must agree with a full rebuild over the live
	// membership — the equivalence contract, checked at the system level.
	ref := hfc.NewDynamic(topo)
	if err := ref.Leave(inCa); err != nil {
		t.Fatalf("reference Leave: %v", err)
	}
	if err := ref.Rebuild(); err != nil {
		t.Fatalf("reference Rebuild: %v", err)
	}
	for a := 0; a < topo.NumClusters(); a++ {
		for b := 0; b < topo.NumClusters(); b++ {
			if a == b {
				continue
			}
			wantA, wantB, wantOK := ref.Border(a, b)
			sys.dynMu.RLock()
			gotA, gotB, gotOK := sys.dyn.Border(a, b)
			sys.dynMu.RUnlock()
			if gotA != wantA || gotB != wantB || gotOK != wantOK {
				t.Errorf("dyn.Border(%d,%d) = (%d,%d,%v), rebuild says (%d,%d,%v)",
					a, b, gotA, gotB, gotOK, wantA, wantB, wantOK)
			}
		}
	}

	// Every live view resolves the pair through the override to live nodes.
	for _, n := range sys.nodes {
		if sys.IsCrashed(n.id) {
			continue
		}
		u, v, err := n.view.Border(ca, cb)
		if err != nil {
			continue
		}
		if u == inCa || v == inCa {
			t.Errorf("node %d view still serves crashed border %d", n.id, inCa)
		}
	}

	// Cross-cluster routing succeeds through the re-elected pair.
	sg, err := svc.Linear(unique)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	res, rerr := sys.Route(svc.Request{Source: src, Dest: dest, SG: sg})
	if rerr != nil {
		t.Fatalf("Route after border crash: %v", rerr)
	}
	for _, hop := range res.Path.Hops {
		if hop.Node == inCa {
			t.Fatalf("path %v routes through crashed border %d", res.Path.Hops, inCa)
		}
	}

	// Recovery rejoins the node and restores the static election.
	if err := sys.Recover(inCa); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	sys.dynMu.RLock()
	gotA, gotB, ok := sys.dyn.Border(ca, cb)
	sys.dynMu.RUnlock()
	if !ok || gotA != inCa || gotB != inCb {
		t.Errorf("after recovery dyn.Border(%d,%d) = (%d,%d,%v), want static (%d,%d,true)",
			ca, cb, gotA, gotB, ok, inCa, inCb)
	}
}

// TestRouteCacheServesAndRevalidates is the satellite cache property: a
// repeated request is a hit; a state-round bump invalidates it (no stale
// path survives), and the re-resolved route validates against current
// capabilities.
func TestRouteCacheServesAndRevalidates(t *testing.T) {
	topo, caps := buildFixture(t, 71)
	sys := startSystem(t, topo, caps, Config{CacheRoutes: true})
	convergeRounds(t, sys, 2)

	req, err := newRequest(t, caps, 71)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	first, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	second, err := sys.Route(req)
	if err != nil {
		t.Fatalf("repeat Route: %v", err)
	}
	if first != second {
		t.Error("repeat route did not come from the cache")
	}
	st, ok := sys.RouteCacheStats()
	if !ok {
		t.Fatal("RouteCacheStats reports no cache despite CacheRoutes")
	}
	if st.Hits != 1 || st.Stores != 1 {
		t.Errorf("stats after repeat = %+v, want 1 hit and 1 store", st)
	}

	// A state round advances every cluster: the cached entry must NOT be
	// served again, and the fresh resolution must be valid now.
	sys.TriggerStateRound()
	sys.Quiesce()
	third, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route after state round: %v", err)
	}
	if third == first {
		t.Error("stale cached route survived a state-round bump")
	}
	if err := third.Path.Validate(req, sys.Capabilities()); err != nil {
		t.Errorf("re-resolved route invalid: %v", err)
	}
	st2, _ := sys.RouteCacheStats()
	if st2.Hits != st.Hits+0 && st2.Invalidations < 1 {
		t.Errorf("stats after bump = %+v, expected an invalidation, no new hit", st2)
	}
	if st2.Invalidations < 1 {
		t.Errorf("Invalidations = %d after state-round bump, want >= 1", st2.Invalidations)
	}

	// The fresh entry serves hits again.
	fourth, err := sys.Route(req)
	if err != nil {
		t.Fatalf("fourth Route: %v", err)
	}
	if fourth != third {
		t.Error("route after re-store did not come from the cache")
	}
}

// TestRouteCacheInvalidatedByCapabilityChange checks the per-cluster path:
// updating a capability bumps only that node's cluster, which must evict
// exactly the cached routes that traverse it.
func TestRouteCacheInvalidatedByCapabilityChange(t *testing.T) {
	topo, caps := buildFixture(t, 72)
	sys := startSystem(t, topo, caps, Config{CacheRoutes: true})
	convergeRounds(t, sys, 2)

	req, err := newRequest(t, caps, 72)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	first, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	// Touch a node on the cached path: its cluster is stamped on the entry.
	onPath := first.Path.Hops[0].Node
	set := sys.capsOf(onPath).Clone()
	set.Add("cache-buster")
	if err := sys.UpdateCapability(onPath, set); err != nil {
		t.Fatalf("UpdateCapability: %v", err)
	}
	again, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route after capability change: %v", err)
	}
	if again == first {
		t.Error("cached route survived a capability change on its own path")
	}
	st, _ := sys.RouteCacheStats()
	if st.Invalidations < 1 {
		t.Errorf("Invalidations = %d, want >= 1", st.Invalidations)
	}
}

func TestRouteCacheAbsentWhenDisabled(t *testing.T) {
	topo, caps := buildFixture(t, 73)
	sys := startSystem(t, topo, caps, Config{})
	if _, ok := sys.RouteCacheStats(); ok {
		t.Error("RouteCacheStats reports a cache without CacheRoutes")
	}
	convergeRounds(t, sys, 2)
	req, err := newRequest(t, caps, 73)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	a, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	b, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if a == b {
		t.Error("identical result pointer without a cache — routes must be recomputed")
	}
}
