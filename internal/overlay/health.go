package overlay

import (
	"hfc/internal/hfc"
	"hfc/internal/routing"
)

// HealthConfig tunes the accrual failure detector. Unlike the binary
// crash registry, the detector scores *partial* evidence: an RPC deadline
// missed against a node, or a protocol round that passed without anyone
// hearing the node's floods, each raise its suspicion; successful replies
// and fresh floods lower it. A node whose suspicion crosses QuarantineAt is
// quarantined — still running, still receiving traffic, but excluded from
// border election (via the incremental §5.2 maintainer) and from
// provider/resolver choice — until its suspicion decays below ReleaseBelow,
// the hysteresis gap preventing flapping nodes from thrashing the border
// tables every round.
type HealthConfig struct {
	// Enabled switches the detector on; all other fields default as noted
	// when zero.
	Enabled bool
	// MissScore is added per missed RPC deadline attributed to a node
	// (default 1).
	MissScore float64
	// GapScore is added per protocol round of flood silence beyond
	// GapRounds (default 1).
	GapScore float64
	// Relief is subtracted (floored at 0) per successful RPC reply and
	// per round the node's floods were heard on time (default 0.5).
	Relief float64
	// GapRounds is how many rounds of silence are tolerated before
	// GapScore accrues (default 2) — a freshly started system needs a
	// round or two before silence means anything.
	GapRounds uint64
	// QuarantineAt is the suspicion level at which a node is quarantined
	// (default 3).
	QuarantineAt float64
	// ReleaseBelow is the level a quarantined node must decay to before
	// it is restored (default 1). Must be below QuarantineAt.
	ReleaseBelow float64
	// MaxScore caps suspicion (default 2·QuarantineAt): however long a
	// node misbehaved, its release after healing takes at most
	// (MaxScore − ReleaseBelow) / Relief healthy rounds — the bound the
	// chaos reconvergence invariant relies on.
	MaxScore float64
}

func (h HealthConfig) withDefaults() HealthConfig {
	if !h.Enabled {
		return h
	}
	if h.MissScore == 0 {
		h.MissScore = 1
	}
	if h.GapScore == 0 {
		h.GapScore = 1
	}
	if h.Relief == 0 {
		h.Relief = 0.5
	}
	if h.GapRounds == 0 {
		h.GapRounds = 2
	}
	if h.QuarantineAt == 0 {
		h.QuarantineAt = 3
	}
	if h.ReleaseBelow == 0 {
		h.ReleaseBelow = 1
	}
	if h.MaxScore == 0 {
		h.MaxScore = 2 * h.QuarantineAt
	}
	return h
}

// HealthStats counts the accrual detector's events.
type HealthStats struct {
	// DeadlineMisses and RPCSuccesses are the suspicion inputs from the
	// request path; RoundGaps counts flood-silence penalties.
	DeadlineMisses, RPCSuccesses, RoundGaps int
	// Quarantines and Unquarantines count state transitions.
	Quarantines, Unquarantines int
}

// noteHeard records that node `from`'s round-`seq` flood reached somebody —
// the evidence stream the round-gap scorer reads. Monotonic (CAS-max): late
// floods from old rounds never regress it.
func (s *System) noteHeard(from int, seq uint64) {
	for {
		cur := s.lastHeard[from].Load()
		if seq <= cur || s.lastHeard[from].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// noteRPCOutcome feeds one RPC attempt's outcome against a target node into
// the detector. No-op when health is disabled.
func (s *System) noteRPCOutcome(target int, ok bool) {
	if !s.cfg.Health.Enabled || target < 0 || target >= len(s.quarantined) {
		return
	}
	s.healthMu.Lock()
	if ok {
		s.healthStats.RPCSuccesses++
		s.suspicion[target] -= s.cfg.Health.Relief
		if s.suspicion[target] < 0 {
			s.suspicion[target] = 0
		}
	} else {
		s.healthStats.DeadlineMisses++
		s.suspicion[target] += s.cfg.Health.MissScore
		if s.suspicion[target] > s.cfg.Health.MaxScore {
			s.suspicion[target] = s.cfg.Health.MaxScore
		}
	}
	s.healthMu.Unlock()
}

// evaluateHealth runs at each protocol tick (TriggerStateRound, with seq the
// round about to start): it scores flood silence, then applies quarantine
// and release transitions. Crashed nodes are the crash registry's business
// and are skipped entirely.
func (s *System) evaluateHealth(seq uint64) {
	h := s.cfg.Health
	var quarantine, release []int
	s.healthMu.Lock()
	for i := range s.suspicion {
		if s.crashed[i].Load() {
			continue
		}
		// Rounds of silence: floods of round seq-1 should have been heard
		// by now (the caller quiesced between rounds).
		if seq > 1 {
			heard := s.lastHeard[i].Load()
			gap := seq - 1 - heard // heard <= seq-1 always
			if gap >= h.GapRounds {
				s.suspicion[i] += h.GapScore
				if s.suspicion[i] > h.MaxScore {
					s.suspicion[i] = h.MaxScore
				}
				s.healthStats.RoundGaps++
			} else if gap == 0 {
				s.suspicion[i] -= h.Relief
				if s.suspicion[i] < 0 {
					s.suspicion[i] = 0
				}
			}
		}
		if !s.quarantined[i].Load() && s.suspicion[i] >= h.QuarantineAt {
			quarantine = append(quarantine, i)
			s.healthStats.Quarantines++
		} else if s.quarantined[i].Load() && s.suspicion[i] <= h.ReleaseBelow {
			release = append(release, i)
			s.healthStats.Unquarantines++
		}
	}
	s.healthMu.Unlock()

	// Apply transitions outside healthMu: the border maintainer has its
	// own lock, and the same Present checks Crash/Recover use make the two
	// state machines commute.
	for _, id := range quarantine {
		s.dynMu.Lock()
		var err error
		if s.dyn.Present(id) {
			err = s.dyn.Leave(id)
		}
		s.dynMu.Unlock()
		if err != nil {
			// Leave only errors on out-of-range/absent ids, both excluded
			// above; surfacing a harness bug loudly beats limping on.
			panic(err)
		}
		s.quarantined[id].Store(true)
		if s.cache != nil {
			s.cache.AdvanceRound(s.topo.ClusterOf(id))
		}
	}
	for _, id := range release {
		s.quarantined[id].Store(false)
		s.dynMu.Lock()
		var err error
		if !s.dyn.Present(id) && !s.crashed[id].Load() {
			err = s.dyn.Rejoin(id)
		}
		s.dynMu.Unlock()
		if err != nil {
			panic(err)
		}
		if s.cache != nil {
			s.cache.AdvanceRound(s.topo.ClusterOf(id))
		}
	}
}

// clearQuarantine forgets a node's health state without touching the border
// maintainer — the crash path took over (Crash handles Leave itself, and
// Recover's Rejoin must not race a stale quarantine flag).
func (s *System) clearQuarantine(id int) {
	if !s.cfg.Health.Enabled {
		return
	}
	s.quarantined[id].Store(false)
	s.healthMu.Lock()
	s.suspicion[id] = 0
	s.healthMu.Unlock()
}

// IsQuarantined reports whether the accrual detector currently holds a node
// out of border election and provider choice. Out-of-range IDs report
// false.
func (s *System) IsQuarantined(id int) bool {
	if id < 0 || id >= len(s.quarantined) {
		return false
	}
	return s.quarantined[id].Load()
}

// QuarantinedNodes returns the IDs of currently quarantined nodes in
// increasing order.
func (s *System) QuarantinedNodes() []int {
	var out []int
	for i := range s.quarantined {
		if s.quarantined[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// SuspicionLevel returns a node's current accrual suspicion score (0 when
// health is disabled or the ID is out of range).
func (s *System) SuspicionLevel(id int) float64 {
	if !s.cfg.Health.Enabled || id < 0 || id >= s.topo.N() {
		return 0
	}
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.suspicion[id]
}

// HealthCounters snapshots the accrual detector's counters.
func (s *System) HealthCounters() HealthStats {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.healthStats
}

// BorderSnapshot deep-copies the live incremental border state — membership
// net of crashes and quarantines, plus the current elections. The chaos
// property tests compare it against a fresh rebuild after every schedule
// heals.
func (s *System) BorderSnapshot() hfc.DynamicSnapshot {
	s.dynMu.RLock()
	defer s.dynMu.RUnlock()
	return s.dyn.Snapshot()
}

// storeLKG records a successfully resolved route as the last-known-good
// answer for its request. No-op unless DegradedRoutes is on.
func (s *System) storeLKG(key routing.CacheKey, res *routing.Result) {
	if !s.cfg.DegradedRoutes || res == nil || res.Degraded {
		return
	}
	s.lkgMu.Lock()
	s.lkg[key] = res
	s.lkgMu.Unlock()
}

// degradedResult serves the last-known-good route for a request whose fresh
// resolution timed out, as a shallow copy tagged Degraded. ok is false when
// degraded serving is off or nothing good was ever known.
func (s *System) degradedResult(key routing.CacheKey) (*routing.Result, bool) {
	if !s.cfg.DegradedRoutes {
		return nil, false
	}
	s.lkgMu.RLock()
	res, ok := s.lkg[key]
	s.lkgMu.RUnlock()
	if !ok {
		return nil, false
	}
	s.dropMu.Lock()
	s.faults.DegradedRoutes++
	s.dropMu.Unlock()
	stale := *res
	stale.Degraded = true
	return &stale, true
}
