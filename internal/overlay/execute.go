package overlay

import (
	"errors"
	"fmt"

	"hfc/internal/routing"
	"hfc/internal/svc"
)

// ExecutionTrace records what actually happened to a stream forwarded along
// a service path through the live overlay.
type ExecutionTrace struct {
	// Applied lists the service applications in order, as "service@node".
	Applied []string
	// Forwards is the number of node-to-node transmissions.
	Forwards int
	// Payload is the final transformed payload.
	Payload string
}

// dataMsg is the data-plane envelope: the stream walks the hop list, each
// proxy applying its service (or just relaying), until the last hop replies.
type dataMsg struct {
	hops    []routing.Hop
	idx     int
	payload string
	trace   *ExecutionTrace
	reply   *replyTo[dataReply]
}

type dataReply struct {
	trace *ExecutionTrace
	err   error
}

// Execute pushes a payload along a concrete service path through the
// running system — the data plane to Route's control plane. Every proxy on
// the path checks that it really provides the service the path assigns to
// it (a stale or lying control plane surfaces here as an explicit error,
// not silent corruption) and transforms the payload by tagging it.
func (s *System) Execute(path *routing.Path, payload string) (*ExecutionTrace, error) {
	if path == nil || len(path.Hops) == 0 {
		return nil, errors.New("overlay: empty path")
	}
	for _, h := range path.Hops {
		if h.Node < 0 || h.Node >= len(s.nodes) {
			return nil, fmt.Errorf("overlay: path hop node %d out of range [0,%d)", h.Node, len(s.nodes))
		}
	}
	reply := newReply[dataReply](s)
	m := message{
		kind: kindData,
		data: &dataMsg{
			hops:    path.Hops,
			idx:     0,
			payload: payload,
			trace:   &ExecutionTrace{Payload: payload},
			reply:   reply,
		},
	}
	s.send(-1, path.Hops[0].Node, m)
	// The data plane has no retry of its own: a stream that dies mid-path
	// (crashed hop, dropped forward) surfaces as a deadline miss and the
	// client re-routes — by then the control plane has steered around the
	// failure.
	if out, ok := reply.await(s, s.cfg.RouteTimeout); ok {
		return out.trace, out.err
	}
	return nil, fmt.Errorf("overlay: execute on %d-hop path: %w", len(path.Hops), ErrRPCTimeout)
}

// handleData is one proxy's data-plane step: verify + apply the hop's
// service, then forward to the next hop (or reply when the path ends).
func (n *node) handleData(m message) {
	defer n.sys.doneInflight()
	d := m.data
	hop := d.hops[d.idx]
	if hop.Node != n.id {
		d.reply.deliver(dataReply{err: fmt.Errorf("overlay: hop %d addressed to %d but delivered to %d", d.idx, hop.Node, n.id)})
		return
	}
	if hop.Service != "" {
		if !n.sys.capsOf(n.id).Has(hop.Service) {
			d.reply.deliver(dataReply{err: fmt.Errorf("overlay: proxy %d asked to apply %q which it does not provide", n.id, hop.Service)})
			return
		}
		d.payload = fmt.Sprintf("%s(%s)", hop.Service, d.payload)
		d.trace.Applied = append(d.trace.Applied, fmt.Sprintf("%s@%d", hop.Service, n.id))
		d.trace.Payload = d.payload
	}
	if d.idx+1 == len(d.hops) {
		d.reply.deliver(dataReply{trace: d.trace})
		return
	}
	d.idx++
	next := d.hops[d.idx].Node
	if next == n.id {
		// Consecutive services on the same proxy: keep processing locally
		// without a network transmission.
		n.sys.addInflight()
		n.handleData(m)
		return
	}
	d.trace.Forwards++
	n.sys.send(n.id, next, m)
}

// svcNamesOf extracts the service sequence of a trace (helper for tests).
func (t *ExecutionTrace) svcNamesOf() []svc.Service {
	out := make([]svc.Service, 0, len(t.Applied))
	for _, a := range t.Applied {
		for i := 0; i < len(a); i++ {
			if a[i] == '@' {
				out = append(out, svc.Service(a[:i]))
				break
			}
		}
	}
	return out
}

// Services returns the applied service names in order.
func (t *ExecutionTrace) Services() []svc.Service { return t.svcNamesOf() }
