package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hfc/internal/netsim"
	"hfc/internal/topology"
)

// physicalNetwork builds a deterministic transit-stub measurement network
// large enough to host the 24-proxy overlay fixture (proxy i lives on
// physical node i, the identity embedding OverlayLatency documents).
func physicalNetwork(t *testing.T, seed int64) *netsim.Network {
	t.Helper()
	phys, err := topology.GenerateTransitStub(rand.New(rand.NewSource(seed)), topology.DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	net, err := netsim.New(phys)
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	return net
}

// TestNetsimLatencyUnderVirtualTime wires the measurement simulator's
// per-link delay model into the overlay runtime's Config.Latency hook and
// runs the protocol on a virtual clock: every delivery is charged the
// physical path's one-way delay, so the virtual clock must advance, the
// protocol must still converge, and two same-seed runs must agree on the
// exact virtual duration — the end-to-end determinism contract across the
// netsim → overlay → vtime stack.
func TestNetsimLatencyUnderVirtualTime(t *testing.T) {
	run := func() time.Duration {
		net := physicalNetwork(t, 3)
		topo, caps := buildFixture(t, 9)
		sys, sim := startSimSystem(t, topo, caps, Config{Latency: net.OverlayLatency(1.0)})
		sim.Run(func() {
			sys.TriggerStateRound()
			sys.Quiesce()
			sys.TriggerStateRound()
			sys.Quiesce()
		})
		ok, err := sys.Converged()
		if err != nil {
			t.Fatalf("Converged: %v", err)
		}
		if !ok {
			t.Fatal("overlay did not converge under netsim latency")
		}
		return sim.Now()
	}
	a := run()
	if a == 0 {
		t.Fatal("virtual clock did not advance despite per-link latency")
	}
	if b := run(); a != b {
		t.Fatalf("same-seed virtual durations differ: %v vs %v", a, b)
	}
}

// TestNetsimLatencyFaultsSlowConvergence checks that impairing physical
// links through the fault table is visible to the overlay: inflating every
// link's delay stretches the virtual time the same protocol run consumes.
func TestNetsimLatencyFaultsSlowConvergence(t *testing.T) {
	elapse := func(fault netsim.LinkFault) time.Duration {
		net := physicalNetwork(t, 3)
		topo, caps := buildFixture(t, 9)
		if !fault.IsZero() {
			n := topo.N()
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u != v {
						net.Faults().Set(u, v, fault)
					}
				}
			}
		}
		sys, sim := startSimSystem(t, topo, caps, Config{Latency: net.OverlayLatency(1.0)})
		sim.Run(func() {
			sys.TriggerStateRound()
			sys.Quiesce()
		})
		return sim.Now()
	}
	healthy := elapse(netsim.LinkFault{})
	congested := elapse(netsim.LinkFault{DelayFactor: 4, DelayAddMS: 10})
	if congested <= healthy {
		t.Fatalf("congested run (%v) not slower than healthy run (%v)", congested, healthy)
	}
}
