package overlay

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hfc/internal/hfc"
	"hfc/internal/state"
)

// healthConfig is a fast accrual detector for tests: one round of tolerated
// silence, quarantine at 3, release at 1.
func healthConfig() HealthConfig {
	return HealthConfig{Enabled: true, GapRounds: 2, QuarantineAt: 3, ReleaseBelow: 1}
}

func TestLinkPolicyDuplicateAndDelayAreHarmless(t *testing.T) {
	topo, caps := buildFixture(t, 80)
	cfg := Config{LinkPolicy: func(from, to int, kind MsgKind) LinkVerdict {
		// Double every flood and hold it back a hair: the sequence checks
		// must make the duplicates invisible to convergence.
		if kind == MsgLocal || kind == MsgAggregate {
			return LinkVerdict{Duplicate: true, Delay: time.Millisecond}
		}
		return LinkVerdict{}
	}}
	sys := startSystem(t, topo, caps, cfg)
	convergeRounds(t, sys, 2)
	got, err := sys.States()
	if err != nil {
		t.Fatalf("States: %v", err)
	}
	if err := state.VerifyConvergence(topo, caps, got); err != nil {
		t.Fatalf("convergence under duplication: %v", err)
	}
	fc := sys.FaultCounters()
	if fc.DuplicatedByPolicy == 0 {
		t.Error("DuplicatedByPolicy = 0, want > 0")
	}
	if fc.DroppedByPolicy != 0 {
		t.Errorf("DroppedByPolicy = %d, want 0", fc.DroppedByPolicy)
	}
}

func TestLinkPolicyDropIsCounted(t *testing.T) {
	topo, caps := buildFixture(t, 81)
	var dropped atomic.Int64
	cfg := Config{LinkPolicy: func(from, to int, kind MsgKind) LinkVerdict {
		if kind == MsgLocal {
			dropped.Add(1)
			return LinkVerdict{Drop: true}
		}
		return LinkVerdict{}
	}}
	sys := startSystem(t, topo, caps, cfg)
	sys.TriggerStateRound()
	sys.Quiesce()
	fc := sys.FaultCounters()
	if int64(fc.DroppedByPolicy) != dropped.Load() {
		t.Errorf("DroppedByPolicy = %d, want %d", fc.DroppedByPolicy, dropped.Load())
	}
	if fc.DroppedByPolicy == 0 {
		t.Error("no local floods offered to the policy")
	}
	if tr := sys.Traffic(); tr.Local != 0 {
		t.Errorf("%d local floods delivered past a drop-all policy", tr.Local)
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{
		MsgLocal: "local", MsgAggregate: "aggregate", MsgTrigger: "trigger",
		MsgRoute: "route", MsgChild: "child", MsgData: "data", MsgKind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("MsgKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestGrayNodeQuarantineAndRelease drives the full accrual cycle: a border
// node goes gray (alive, but every outbound flood is lost), accumulates
// suspicion from round gaps, is quarantined out of border election, then
// heals, decays below the release threshold, and is restored — with the
// border tables ending DeepEqual to a fresh rebuild.
func TestGrayNodeQuarantineAndRelease(t *testing.T) {
	topo, caps := buildFixture(t, 82)
	gray, _, err := topo.Border(0, 1)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	var silenced atomic.Bool
	cfg := Config{
		Health: healthConfig(),
		LinkPolicy: func(from, to int, kind MsgKind) LinkVerdict {
			if silenced.Load() && from == gray {
				return LinkVerdict{Drop: true}
			}
			return LinkVerdict{}
		},
	}
	sys := startSystem(t, topo, caps, cfg)
	convergeRounds(t, sys, 2)
	if sys.IsQuarantined(gray) {
		t.Fatal("healthy node quarantined")
	}

	silenced.Store(true)
	quarantinedAt := -1
	for r := 0; r < 8; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		if sys.IsQuarantined(gray) {
			quarantinedAt = r + 1
			break
		}
	}
	if quarantinedAt < 0 {
		t.Fatalf("gray node %d not quarantined within 8 rounds (suspicion %v)",
			gray, sys.SuspicionLevel(gray))
	}
	t.Logf("node %d quarantined after %d silent round(s), suspicion %v",
		gray, quarantinedAt, sys.SuspicionLevel(gray))
	if got := sys.QuarantinedNodes(); len(got) != 1 || got[0] != gray {
		t.Errorf("QuarantinedNodes = %v, want [%d]", got, gray)
	}
	if sys.SuspicionLevel(gray) < cfg.Health.QuarantineAt {
		t.Errorf("suspicion %v below quarantine threshold %v",
			sys.SuspicionLevel(gray), cfg.Health.QuarantineAt)
	}
	if sys.nodes[0].view.Alive(gray) {
		t.Error("failure detector still reports quarantined node alive")
	}
	if a, _, ok := sys.dynBorder(0, 1); ok && a == gray {
		t.Error("quarantined node still elected as border")
	}
	hc := sys.HealthCounters()
	if hc.Quarantines != 1 || hc.RoundGaps == 0 {
		t.Errorf("HealthCounters = %+v, want Quarantines=1, RoundGaps>0", hc)
	}

	// Heal: the node's floods flow again; suspicion decays, the node is
	// released, and border duty returns to the static election.
	silenced.Store(false)
	released := -1
	for r := 0; r < 15; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		if !sys.IsQuarantined(gray) {
			released = r + 1
			break
		}
	}
	if released < 0 {
		t.Fatalf("node %d never released (suspicion %v)", gray, sys.SuspicionLevel(gray))
	}
	t.Logf("released after %d healthy round(s)", released)
	if hc := sys.HealthCounters(); hc.Unquarantines != 1 {
		t.Errorf("Unquarantines = %d, want 1", hc.Unquarantines)
	}
	fresh := hfc.NewDynamic(topo)
	if err := fresh.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if got, want := sys.BorderSnapshot(), fresh.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-release border state diverges from fresh rebuild:\n got %+v\nwant %+v", got, want)
	}
}

func TestDeadlineMissesRaiseSuspicion(t *testing.T) {
	topo, caps := buildFixture(t, 83)
	cfg := fastFaultConfig()
	cfg.Health = healthConfig()
	sys := startSystem(t, topo, caps, cfg)
	convergeRounds(t, sys, 2)
	req, err := newRequest(t, caps, 83)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	if err := sys.Crash(req.Dest); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, rerr := sys.Route(req); !errors.Is(rerr, ErrRPCTimeout) {
		t.Fatalf("Route to crashed dest: err = %v, want ErrRPCTimeout", rerr)
	}
	hc := sys.HealthCounters()
	if hc.DeadlineMisses < 2 {
		t.Errorf("DeadlineMisses = %d, want >= 2 (every attempt missed)", hc.DeadlineMisses)
	}
	if sys.SuspicionLevel(req.Dest) == 0 {
		t.Error("missed deadlines left suspicion at 0")
	}
	// Crashed nodes are the crash registry's business: the detector must
	// not also quarantine them, however suspicious they look.
	sys.TriggerStateRound()
	sys.Quiesce()
	if sys.IsQuarantined(req.Dest) {
		t.Error("crashed node quarantined by the accrual detector")
	}
	// Recovery wipes the stale suspicion.
	if err := sys.Recover(req.Dest); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := sys.SuspicionLevel(req.Dest); got != 0 {
		t.Errorf("suspicion after recovery = %v, want 0", got)
	}
}

func TestHealthAccessorsDisabledAndOutOfRange(t *testing.T) {
	topo, caps := buildFixture(t, 84)
	sys := startSystem(t, topo, caps, Config{})
	if sys.IsQuarantined(-1) || sys.IsQuarantined(topo.N()+3) || sys.IsQuarantined(0) {
		t.Error("quarantine reported with health disabled")
	}
	if sys.SuspicionLevel(0) != 0 || sys.SuspicionLevel(-2) != 0 {
		t.Error("nonzero suspicion with health disabled")
	}
	if got := sys.QuarantinedNodes(); got != nil {
		t.Errorf("QuarantinedNodes = %v, want nil", got)
	}
	sys.noteRPCOutcome(0, false) // must be a no-op, not a panic
	if hc := sys.HealthCounters(); hc != (HealthStats{}) {
		t.Errorf("HealthCounters = %+v, want zero", hc)
	}
}

func TestDegradedRouteFallback(t *testing.T) {
	topo, caps := buildFixture(t, 85)
	cfg := fastFaultConfig()
	cfg.DegradedRoutes = true
	sys := startSystem(t, topo, caps, cfg)
	convergeRounds(t, sys, 2)
	req, err := newRequest(t, caps, 85)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	fresh, err := sys.Route(req)
	if err != nil {
		t.Fatalf("fresh Route: %v", err)
	}
	if fresh.Degraded {
		t.Fatal("fresh result tagged Degraded")
	}

	// Partition the destination away (fail-stop is the harshest case) and
	// re-ask: the last-known-good answer comes back tagged, not an error.
	if err := sys.Crash(req.Dest); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	stale, err := sys.Route(req)
	if err != nil {
		t.Fatalf("degraded Route: %v", err)
	}
	if !stale.Degraded {
		t.Error("stale result not tagged Degraded")
	}
	if !reflect.DeepEqual(stale.CSP, fresh.CSP) || !reflect.DeepEqual(stale.Path, fresh.Path) {
		t.Error("degraded result differs from the last-known-good route")
	}
	if fresh.Degraded {
		t.Error("degraded serving mutated the stored result")
	}
	if fc := sys.FaultCounters(); fc.DegradedRoutes != 1 {
		t.Errorf("DegradedRoutes = %d, want 1", fc.DegradedRoutes)
	}

	// A deployment change voids the stale-but-valid promise: the store is
	// cleared and the partitioned destination is an error again.
	if err := sys.UpdateCapability(req.Source, caps[req.Source].Clone()); err != nil {
		t.Fatalf("UpdateCapability: %v", err)
	}
	if _, rerr := sys.Route(req); !errors.Is(rerr, ErrRPCTimeout) {
		t.Fatalf("Route after LKG clear: err = %v, want ErrRPCTimeout", rerr)
	}
}

func TestDegradedRouteRequiresKnownGood(t *testing.T) {
	topo, caps := buildFixture(t, 86)
	cfg := fastFaultConfig()
	cfg.DegradedRoutes = true
	sys := startSystem(t, topo, caps, cfg)
	convergeRounds(t, sys, 2)
	req, err := newRequest(t, caps, 86)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	if err := sys.Crash(req.Dest); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// Nothing was ever resolved for this request: degraded serving must
	// not invent a route.
	if _, rerr := sys.Route(req); !errors.Is(rerr, ErrRPCTimeout) {
		t.Fatalf("Route with empty LKG: err = %v, want ErrRPCTimeout", rerr)
	}
	if fc := sys.FaultCounters(); fc.DegradedRoutes != 0 {
		t.Errorf("DegradedRoutes = %d, want 0", fc.DegradedRoutes)
	}
}

// dynBorder reads the live border election for a cluster pair.
func (s *System) dynBorder(a, b int) (int, int, bool) {
	s.dynMu.RLock()
	defer s.dynMu.RUnlock()
	return s.dyn.Border(a, b)
}
