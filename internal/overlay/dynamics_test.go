package overlay

import (
	"testing"

	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

func TestTrafficMatchesSynchronousModel(t *testing.T) {
	topo, caps := buildFixture(t, 40)
	sys := startSystem(t, topo, caps, Config{})
	sys.TriggerStateRound()
	sys.Quiesce()

	_, want, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	got := sys.Traffic()
	if got.Local != want.LocalMessages {
		t.Errorf("local messages = %d, want %d", got.Local, want.LocalMessages)
	}
	// The runtime counts border exchanges and forwards as one kind.
	if got.Aggregate != want.AggregateMessages+want.ForwardMessages {
		t.Errorf("aggregate messages = %d, want %d", got.Aggregate, want.AggregateMessages+want.ForwardMessages)
	}
	if got.Route != 0 || got.Child != 0 {
		t.Errorf("unexpected request traffic: %+v", got)
	}

	// A second round doubles protocol traffic exactly (the protocol is
	// stateless per round).
	sys.TriggerStateRound()
	sys.Quiesce()
	got2 := sys.Traffic()
	if got2.Local != 2*want.LocalMessages {
		t.Errorf("after 2 rounds local = %d, want %d", got2.Local, 2*want.LocalMessages)
	}
	if got2.Total() != 2*(want.LocalMessages+want.AggregateMessages+want.ForwardMessages) {
		t.Errorf("after 2 rounds total = %d", got2.Total())
	}
}

func TestRouteTrafficCounted(t *testing.T) {
	topo, caps := buildFixture(t, 41)
	sys := startSystem(t, topo, caps, Config{})
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()
	before := sys.Traffic()
	req, err := newRequest(t, caps, 5)
	if err != nil {
		t.Fatalf("newRequest: %v", err)
	}
	if _, err := sys.Route(req); err != nil {
		t.Fatalf("Route: %v", err)
	}
	after := sys.Traffic()
	if after.Route != before.Route+1 {
		t.Errorf("route messages %d -> %d, want +1", before.Route, after.Route)
	}
	if after.Child < before.Child {
		t.Errorf("child counter went backwards")
	}
}

func TestUpdateCapabilityPropagatesNextRound(t *testing.T) {
	topo, caps := buildFixture(t, 42)
	sys := startSystem(t, topo, caps, Config{})
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()
	if ok, err := sys.Converged(); err != nil || !ok {
		t.Fatalf("initial convergence failed: ok=%v err=%v", ok, err)
	}

	// Install a brand-new service on node 0.
	newSet := caps[0].Clone()
	newSet.Add("hotpatch")
	if err := sys.UpdateCapability(0, newSet); err != nil {
		t.Fatalf("UpdateCapability: %v", err)
	}

	// Before the next round, peers still hold stale state.
	cluster0 := topo.ClusterOf(0)
	var peer int
	found := false
	for _, m := range topo.Members(cluster0) {
		if m != 0 {
			peer = m
			found = true
			break
		}
	}
	if !found {
		t.Skip("node 0 is a singleton cluster")
	}
	st, err := sys.StateOf(peer)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if st.SCTP[0].Has("hotpatch") {
		t.Error("peer learned the update without a protocol round")
	}

	// Two rounds: SCT_P then aggregates re-converge to the NEW truth.
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()
	if ok, err := sys.Converged(); err != nil || !ok {
		t.Fatalf("post-update convergence failed: ok=%v err=%v", ok, err)
	}
	st, err = sys.StateOf(peer)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if !st.SCTP[0].Has("hotpatch") {
		t.Error("peer SCT_P missing the new service after re-convergence")
	}
	// The new service must now be routable.
	sg, err := svc.Linear("hotpatch")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	dest := (topo.N() - 1)
	res, err := sys.Route(svc.Request{Source: 1, Dest: dest, SG: sg})
	if err != nil {
		t.Fatalf("Route for new service: %v", err)
	}
	if n := serviceProvider(res); n != 0 {
		t.Errorf("hotpatch served by node %d, want 0", n)
	}
}

func serviceProvider(res *routing.Result) int {
	for _, h := range res.Path.Hops {
		if h.Service != "" {
			return h.Node
		}
	}
	return -1
}

func TestUpdateCapabilityValidation(t *testing.T) {
	topo, caps := buildFixture(t, 43)
	sys := startSystem(t, topo, caps, Config{})
	if err := sys.UpdateCapability(-1, svc.NewCapabilitySet("x")); err == nil {
		t.Error("negative node accepted")
	}
	if err := sys.UpdateCapability(0, nil); err == nil {
		t.Error("nil set accepted")
	}
}

func TestCapabilitiesSnapshotIsolated(t *testing.T) {
	topo, caps := buildFixture(t, 44)
	sys := startSystem(t, topo, caps, Config{})
	snap := sys.Capabilities()
	snap[0].Add("tampered")
	snap2 := sys.Capabilities()
	if snap2[0].Has("tampered") {
		t.Error("Capabilities snapshot aliases internal state")
	}
}
