package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
	"hfc/internal/vtime"
)

// buildFixture creates a 3-cluster overlay with deterministic geometry and
// random capabilities.
func buildFixture(t *testing.T, seed int64) (*hfc.Topology, []svc.CapabilitySet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []coords.Point
	for c := 0; c < 3; c++ {
		for i := 0; i < 8; i++ {
			pts = append(pts, coords.Point{float64(c)*300 + rng.Float64()*30, rng.Float64() * 30})
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	res, err := cluster.Cluster(len(pts), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	topo, err := hfc.Build(cmap, res)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cat, err := svc.NewCatalog(12)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, len(pts), cat, 2, 5)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	return topo, caps
}

func startSystem(t *testing.T, topo *hfc.Topology, caps []svc.CapabilitySet, cfg Config) *System {
	t.Helper()
	sys, err := New(topo, caps, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		// Stop errors after an explicit test Stop are fine.
		_ = sys.Stop()
	})
	return sys
}

// startSimSystem builds a system on a fresh virtual clock. Every driving
// call (TriggerStateRound, Quiesce, Route, Execute) must then run inside
// sim.Run, which also supplies deadlock detection for free: a wedged
// protocol panics with a blocked-task report instead of hanging the test.
func startSimSystem(t *testing.T, topo *hfc.Topology, caps []svc.CapabilitySet, cfg Config) (*System, *vtime.Sim) {
	t.Helper()
	sim := vtime.NewSim()
	cfg.Clock = sim
	sys, err := New(topo, caps, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = sys.Stop() })
	return sys, sim
}

func TestNewValidation(t *testing.T) {
	topo, caps := buildFixture(t, 1)
	if _, err := New(nil, caps, Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(topo, caps[:3], Config{}); err == nil {
		t.Error("short capability list accepted")
	}
	if _, err := New(topo, caps, Config{MailboxSize: -1}); err == nil {
		t.Error("negative mailbox accepted")
	}
}

func TestStartStopLifecycle(t *testing.T) {
	topo, caps := buildFixture(t, 2)
	sys, err := New(topo, caps, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.Stop(); err == nil {
		t.Error("Stop before Start succeeded")
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.Start(); err == nil {
		t.Error("double Start succeeded")
	}
	if err := sys.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := sys.Stop(); err == nil {
		t.Error("double Stop succeeded")
	}
}

func TestProtocolConvergesToSynchronousModel(t *testing.T) {
	topo, caps := buildFixture(t, 3)
	sys := startSystem(t, topo, caps, Config{})

	// Two protocol rounds: the first converges SCT_P everywhere; the
	// second lets border proxies aggregate over complete local knowledge.
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()

	got, err := sys.States()
	if err != nil {
		t.Fatalf("States: %v", err)
	}
	if err := state.VerifyConvergence(topo, caps, got); err != nil {
		t.Fatalf("distributed protocol did not converge to the synchronous model: %v", err)
	}
	// And it must equal Distribute's output exactly.
	want, _, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	for i := range want {
		for k, set := range want[i].SCTP {
			if !got[i].SCTP[k].Equal(set) {
				t.Fatalf("node %d SCT_P[%d] mismatch", i, k)
			}
		}
		for k, set := range want[i].SCTC {
			if !got[i].SCTC[k].Equal(set) {
				t.Fatalf("node %d SCT_C[%d] mismatch", i, k)
			}
		}
	}
}

func TestDistributedRoutingMatchesSimulation(t *testing.T) {
	topo, caps := buildFixture(t, 4)
	sys := startSystem(t, topo, caps, Config{})
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()

	states, _, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 15; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		distRes, err := sys.Route(req)
		if err != nil {
			t.Fatalf("distributed Route: %v", err)
		}
		if err := distRes.Path.Validate(req, caps); err != nil {
			t.Fatalf("distributed path invalid: %v", err)
		}
		simPath, err := routing.RouteHierarchical(topo, states, req, routing.RelaxBacktrack)
		if err != nil {
			t.Fatalf("simulated route: %v", err)
		}
		// Same algorithm, same state → identical hop sequences.
		if len(distRes.Path.Hops) != len(simPath.Hops) {
			t.Fatalf("request %d: distributed %v != simulated %v", i, distRes.Path, simPath)
		}
		for h := range simPath.Hops {
			if distRes.Path.Hops[h] != simPath.Hops[h] {
				t.Fatalf("request %d hop %d: distributed %v != simulated %v", i, h, distRes.Path, simPath)
			}
		}
	}
}

func TestConcurrentRoutesDoNotDeadlock(t *testing.T) {
	topo, caps := buildFixture(t, 5)
	sys, sim := startSimSystem(t, topo, caps, Config{})

	rng := rand.New(rand.NewSource(10))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	reqs := make([]svc.Request, 40)
	for i := range reqs {
		r, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		reqs[i] = r
	}
	// Under virtual time a deadlock is not a 30-second hang: the scheduler
	// panics the moment no task can make progress, naming the blocked tasks.
	var errs []error
	sim.Run(func() {
		sys.TriggerStateRound()
		sys.Quiesce()
		sys.TriggerStateRound()
		sys.Quiesce()
		for _, req := range reqs {
			req := req
			sim.Go("route", func() {
				res, err := sys.Route(req)
				if err != nil {
					errs = append(errs, err)
					return
				}
				if err := res.Path.Validate(req, caps); err != nil {
					errs = append(errs, err)
				}
			})
		}
		sim.WaitIdle()
	})
	for _, err := range errs {
		t.Errorf("concurrent route: %v", err)
	}
}

// TestSimModeMatchesRealMode converges the same fixture once on the wall
// clock and once on the virtual clock and requires identical per-node
// protocol state: the simulation runtime is the same protocol, only the
// scheduler differs.
func TestSimModeMatchesRealMode(t *testing.T) {
	topo, caps := buildFixture(t, 5)

	real := startSystem(t, topo, caps, Config{})
	real.TriggerStateRound()
	real.Quiesce()
	real.TriggerStateRound()
	real.Quiesce()
	realStates, err := real.States()
	if err != nil {
		t.Fatalf("real States: %v", err)
	}

	simSys, sim := startSimSystem(t, topo, caps, Config{})
	sim.Run(func() {
		simSys.TriggerStateRound()
		simSys.Quiesce()
		simSys.TriggerStateRound()
		simSys.Quiesce()
	})
	simStates, err := simSys.States()
	if err != nil {
		t.Fatalf("sim States: %v", err)
	}

	for i := range realStates {
		r, s := realStates[i], simStates[i]
		for origin, set := range r.SCTP {
			if !s.SCTP[origin].Equal(set) {
				t.Fatalf("node %d SCTP[%d]: sim %v != real %v", i, origin, s.SCTP[origin], set)
			}
		}
		if len(r.SCTP) != len(s.SCTP) || len(r.SCTC) != len(s.SCTC) {
			t.Fatalf("node %d: table sizes diverge (sim %d/%d, real %d/%d)",
				i, len(s.SCTP), len(s.SCTC), len(r.SCTP), len(r.SCTC))
		}
		for cl, set := range r.SCTC {
			if !s.SCTC[cl].Equal(set) {
				t.Fatalf("node %d SCTC[%d]: sim %v != real %v", i, cl, s.SCTC[cl], set)
			}
		}
	}
}

func TestSimulatedDelayStillConverges(t *testing.T) {
	topo, caps := buildFixture(t, 6)
	sys := startSystem(t, topo, caps, Config{DelayPerUnit: 10 * time.Microsecond})
	sys.TriggerStateRound()
	sys.Quiesce()
	sys.TriggerStateRound()
	sys.Quiesce()
	got, err := sys.States()
	if err != nil {
		t.Fatalf("States: %v", err)
	}
	if err := state.VerifyConvergence(topo, caps, got); err != nil {
		t.Fatalf("delayed protocol did not converge: %v", err)
	}
}

func TestRouteBeforeConvergenceFailsGracefully(t *testing.T) {
	topo, caps := buildFixture(t, 7)
	sys := startSystem(t, topo, caps, Config{})
	// No protocol rounds: nodes only know themselves. Routing must either
	// fail cleanly (no providers visible) or return a valid path — never
	// hang or return garbage.
	rng := rand.New(rand.NewSource(11))
	gen, err := svc.NewRequestGenerator(rng, caps, 2, 3)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 10; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		res, err := sys.Route(req)
		if err != nil {
			continue // expected: incomplete state
		}
		if err := res.Path.Validate(req, caps); err != nil {
			t.Errorf("pre-convergence path invalid: %v", err)
		}
	}
}

func TestStateOfValidation(t *testing.T) {
	topo, caps := buildFixture(t, 8)
	sys := startSystem(t, topo, caps, Config{})
	if _, err := sys.StateOf(-1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := sys.StateOf(topo.N()); err == nil {
		t.Error("out-of-range id accepted")
	}
	st, err := sys.StateOf(0)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	// Snapshot isolation: mutating the copy must not affect the node.
	st.SCTP[0].Add("injected")
	st2, err := sys.StateOf(0)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if st2.SCTP[0].Has("injected") {
		t.Error("StateOf returned an aliased snapshot")
	}
}

func TestRouteValidatesRequest(t *testing.T) {
	topo, caps := buildFixture(t, 12)
	sys := startSystem(t, topo, caps, Config{})
	sg, err := svc.Linear("s0")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := sys.Route(svc.Request{Source: -1, Dest: 0, SG: sg}); err == nil {
		t.Error("invalid request accepted")
	}
}

// newRequest draws one satisfiable request from a per-seed generator.
func newRequest(t *testing.T, caps []svc.CapabilitySet, seed int64) (svc.Request, error) {
	t.Helper()
	gen, err := svc.NewRequestGenerator(rand.New(rand.NewSource(seed+1000)), caps, 2, 4)
	if err != nil {
		return svc.Request{}, err
	}
	return gen.Next()
}
