package overlay

import (
	"strings"
	"testing"
	"time"
)

// TestSimulateDeterministic is the core virtual-time property: two runs of
// the same seeded scenario — churn, a partition, crash/recover cycles, and
// route probes included — produce byte-identical event traces and the same
// state digest.
func TestSimulateDeterministic(t *testing.T) {
	spec := SimSpec{N: 600, Churn: 4, Crashes: 2, Partition: true, Probes: 8, MeasureImprecision: true}
	a, err := Simulate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Errorf("same-seed traces differ:\n--- run A ---\n%s\n--- run B ---\n%s", a.Trace, b.Trace)
	}
	if a.StateDigest != b.StateDigest {
		t.Errorf("same-seed digests differ: %x vs %x", a.StateDigest, b.StateDigest)
	}
	if a.Traffic != b.Traffic {
		t.Errorf("same-seed traffic differs: %+v vs %+v", a.Traffic, b.Traffic)
	}
	if a.VirtualTime != b.VirtualTime {
		t.Errorf("same-seed virtual clocks differ: %v vs %v", a.VirtualTime, b.VirtualTime)
	}
	c, err := Simulate(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace == a.Trace {
		t.Error("different seeds produced identical traces")
	}
}

// TestSimulateFlatConvergesWithFaults checks the protocol outcome of a flat
// run: full convergence despite the injected faults, all probes routable,
// and the paper's ≤2 consecutive relays on every probed path.
func TestSimulateFlatConvergesWithFaults(t *testing.T) {
	rep, err := Simulate(SimSpec{N: 600, Churn: 4, Crashes: 2, Partition: true, Probes: 10,
		MeasureImprecision: true, DelayPerUnit: time.Microsecond}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("flat simulation did not converge")
	}
	if rep.Probes == 0 || rep.ProbeFailures != 0 {
		t.Errorf("probes %d with %d failures, want >0 with 0", rep.Probes, rep.ProbeFailures)
	}
	if rep.MaxRelayRun > 2 {
		t.Errorf("max consecutive relay run %d exceeds the paper's 2-relay bound", rep.MaxRelayRun)
	}
	if rep.MeanImprecision < 1 {
		t.Errorf("mean imprecision %v below 1 (hierarchical cannot beat optimal)", rep.MeanImprecision)
	}
	if rep.Faults.DroppedToCrashed == 0 {
		t.Error("crash cycles injected but no message was dropped at a crashed node")
	}
	if rep.VirtualTime == 0 {
		t.Error("virtual clock never advanced")
	}
	if !strings.Contains(rep.Trace, "partition") {
		t.Error("trace does not record the partition phase")
	}
}

// TestSimulateMultilevelConverges runs the tri-level hierarchy end to end:
// per-group overlays on one shared scheduler plus the harness-maintained
// super layer, with churn and crashes, and checks global convergence and
// the deterministic digest.
func TestSimulateMultilevelConverges(t *testing.T) {
	spec := SimSpec{N: 1200, Multilevel: true, Churn: 3, Crashes: 2, Probes: 8}
	a, err := Simulate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Error("multilevel simulation did not converge")
	}
	if a.Groups < 2 {
		t.Errorf("got %d groups, want >= 2", a.Groups)
	}
	if a.Probes == 0 || a.ProbeFailures != 0 {
		t.Errorf("probes %d with %d failures, want >0 with 0", a.Probes, a.ProbeFailures)
	}
	if a.SuperMessages == 0 {
		t.Error("super layer exchanged no messages")
	}
	b, err := Simulate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace || a.StateDigest != b.StateDigest {
		t.Error("same-seed multilevel runs diverged")
	}
}

// TestSimulateRejectsTinyN pins the argument validation.
func TestSimulateRejectsTinyN(t *testing.T) {
	if _, err := Simulate(SimSpec{N: 8}, 1); err == nil {
		t.Error("Simulate accepted N=8")
	}
}
