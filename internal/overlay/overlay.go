// Package overlay runs the HFC framework as a concurrent message-passing
// system: one goroutine per proxy with a mailbox, exchanging the §4 state
// protocol messages (local-state floods, aggregate-state border exchange and
// forwarding) and resolving §5 service requests by RPC — the destination
// proxy computes the cluster-level path from its own converged tables and
// sends child requests to the resolver proxies of the clusters involved.
//
// The same algorithm code as the synchronous simulation (packages state and
// routing) runs here against each node's privately accumulated state, so
// integration tests can check that the distributed execution converges to
// exactly what the synchronous model predicts.
package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Config tunes the runtime.
type Config struct {
	// MailboxSize is each node's message buffer (default 256).
	MailboxSize int
	// DelayPerUnit, when positive, makes message delivery between nodes u
	// and v take Dist(u,v)·DelayPerUnit of wall-clock time, simulating
	// network latency. Zero delivers immediately (default).
	DelayPerUnit time.Duration
	// DropRate, in [0, 1], makes EVERY node-to-node message — state
	// protocol, route and child RPCs, data-plane forwards — be lost with
	// this probability. The RPC paths survive it by deadline + retry; the
	// periodic protocol needs no retry because the next round resends
	// everything. Default 0.
	DropRate float64
	// ProtocolDropRate, in [0, 1], additionally drops only state-protocol
	// messages (local-state floods, aggregate exchange and forwards) —
	// the knob the convergence experiments use to stress §4 without
	// touching request traffic. Protocol messages are dropped at
	// max(DropRate, ProtocolDropRate). Default 0.
	ProtocolDropRate float64
	// DropSeed seeds the drop decisions so failure tests are
	// reproducible.
	DropSeed int64
	// RouteTimeout bounds each attempt of a Route (and Execute) call; on
	// expiry the request is retried up to RPCRetries more times with
	// exponential backoff, then fails with ErrRPCTimeout. Default 2s.
	RouteTimeout time.Duration
	// RPCTimeout bounds each attempt of an internal child-request RPC.
	// After RPCRetries extra attempts against the designated resolver the
	// caller fails over to the next candidate resolver of the target
	// cluster. Default 250ms.
	RPCTimeout time.Duration
	// RPCRetries is how many extra attempts follow a timed-out first
	// attempt (per resolver candidate for child RPCs). Default 2; set -1
	// for zero retries.
	RPCRetries int
	// RPCBackoff is the pause before the first retry, doubling on each
	// further one. Default 5ms.
	RPCBackoff time.Duration
	// CacheRoutes enables the invalidation-aware route cache: Route
	// answers repeated (source, service graph, destination) questions from
	// cache until a state round, capability update, or crash/recovery in a
	// cluster the cached path depends on invalidates the entry. Default
	// off.
	CacheRoutes bool
	// CacheShards overrides the route cache's shard count (0 selects
	// routing.DefaultCacheShards). Ignored without CacheRoutes.
	CacheShards int
	// LinkPolicy, when non-nil, is consulted for every node-to-node
	// payload message (never for externally injected control traffic) and
	// can drop, delay, or duplicate it — the hook the chaos engine
	// (internal/chaos) injects link-level faults through. It must be safe
	// for concurrent use and is called on the sender's goroutine.
	LinkPolicy func(from, to int, kind MsgKind) LinkVerdict
	// Health configures the accrual failure detector (see health.go):
	// gray nodes — alive but silent or missing deadlines — accumulate
	// suspicion and are quarantined out of border election and
	// provider/resolver choice until they behave again. The zero value
	// disables it.
	Health HealthConfig
	// DegradedRoutes keeps a last-known-good result per (source, service
	// graph, destination): when every Route attempt times out — the
	// destination or its resolvers partitioned away — the stale result is
	// served with Result.Degraded set instead of an error. Default off.
	DegradedRoutes bool
}

// MsgKind identifies a runtime message class to the LinkPolicy hook.
type MsgKind int

// The message kinds a LinkPolicy can act on, mirroring the runtime's
// internal envelope kinds: §4 local-state floods, aggregate border
// exchange/forwards, the state-round trigger (control; never offered to the
// policy), §5 route and child RPCs, and data-plane forwards.
const (
	MsgLocal     MsgKind = MsgKind(kindLocal)
	MsgAggregate MsgKind = MsgKind(kindAggregate)
	MsgTrigger   MsgKind = MsgKind(kindTrigger)
	MsgRoute     MsgKind = MsgKind(kindRoute)
	MsgChild     MsgKind = MsgKind(kindChild)
	MsgData      MsgKind = MsgKind(kindData)
)

// String names the kind for traces.
func (k MsgKind) String() string {
	switch k {
	case MsgLocal:
		return "local"
	case MsgAggregate:
		return "aggregate"
	case MsgTrigger:
		return "trigger"
	case MsgRoute:
		return "route"
	case MsgChild:
		return "child"
	case MsgData:
		return "data"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// LinkVerdict is a LinkPolicy's decision for one message.
type LinkVerdict struct {
	// Drop loses the message (counted in FaultStats.DroppedByPolicy).
	Drop bool
	// Delay holds delivery back by this much wall-clock time, on top of
	// any configured DelayPerUnit latency.
	Delay time.Duration
	// Duplicate delivers a second copy of the message (after the same
	// delay) — retransmission storms and routing loops in one knob.
	Duplicate bool
}

func (c Config) withDefaults() Config {
	if c.MailboxSize == 0 {
		c.MailboxSize = 256
	}
	if c.RouteTimeout == 0 {
		c.RouteTimeout = 2 * time.Second
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 250 * time.Millisecond
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	} else if c.RPCRetries < 0 {
		c.RPCRetries = 0
	}
	if c.RPCBackoff == 0 {
		c.RPCBackoff = 5 * time.Millisecond
	}
	c.Health = c.Health.withDefaults()
	return c
}

// ErrRPCTimeout is returned (wrapped) when every attempt of a Route,
// Execute, or child RPC misses its deadline — the destination is crashed,
// unreachable, or every resolver candidate is down.
var ErrRPCTimeout = errors.New("rpc deadline exceeded")

// System is a running overlay of concurrent proxy nodes.
type System struct {
	topo *hfc.Topology
	// capsMu protects the ground-truth deployment slice; stored sets are
	// treated as immutable (replaced, never mutated).
	capsMu sync.RWMutex
	caps   []svc.CapabilitySet // guarded by capsMu
	cfg    Config
	nodes  []*node

	// inflight tracks undelivered/unprocessed messages so Quiesce can wait
	// for protocol cascades to settle.
	inflight sync.WaitGroup
	// mu guards the start/stop lifecycle flags.
	mu      sync.Mutex
	started bool // guarded by mu
	stopped bool // guarded by mu
	wg      sync.WaitGroup

	// sendMu serializes send admission against Stop: senders hold the
	// read side across the accepting check and the inflight.Add, Stop
	// takes the write side to flip accepting off, so a send can never
	// slip past Stop's inflight.Wait and hit a closed inbox.
	sendMu    sync.RWMutex
	accepting bool // guarded by sendMu

	// crashed[i] marks node i fail-stopped: every message addressed to it
	// is silently discarded (and counted) at send time.
	crashed []atomic.Bool

	// round is the §4 protocol round counter; every protocol message is
	// stamped with it so stale (delayed or replayed) floods are rejected
	// by the per-entry sequence check.
	round atomic.Uint64

	// dynMu guards the incremental §5.2 border maintainer that every
	// node view's BorderOverride consults: on crash/recovery only the
	// affected cluster's border elections are redone, instead of
	// rebuilding the whole topology.
	dynMu sync.RWMutex
	dyn   *hfc.Dynamic // guarded by dynMu

	// cache, when non-nil (Config.CacheRoutes), answers repeated Route
	// calls; it is internally synchronized, and cached results are shared
	// read-only values.
	cache *routing.RouteCache

	// dropRng drives fault injection; the *rand.Rand pointer is immutable
	// after New, but the generator's internal state is not concurrency-safe,
	// so every draw happens under dropMu.
	dropMu  sync.Mutex
	dropRng *rand.Rand
	faults  FaultStats // guarded by dropMu

	// statMu protects the delivered-message counters.
	statMu sync.Mutex
	stats  TrafficStats // guarded by statMu

	// lastHeard[i] is the highest protocol round in which some node
	// received a flood from node i — the silence signal the accrual
	// detector scores round gaps from. Nil when Health is disabled.
	lastHeard []atomic.Uint64

	// quarantined[i] marks node i suspected gray: still running and still
	// receiving traffic, but excluded from border election and
	// provider/resolver choice until its suspicion decays.
	quarantined []atomic.Bool

	// healthMu guards the suspicion scores and health counters; it is
	// never held together with dynMu (transitions decide under healthMu,
	// then apply under dynMu).
	healthMu    sync.Mutex
	suspicion   []float64   // guarded by healthMu
	healthStats HealthStats // guarded by healthMu

	// lkgMu guards the last-known-good route store for degraded serving.
	lkgMu sync.RWMutex
	lkg   map[routing.CacheKey]*routing.Result // guarded by lkgMu
}

// FaultStats counts fault-injection and recovery events in the runtime.
type FaultStats struct {
	// Dropped is the number of messages lost to random drop injection
	// (DropRate / ProtocolDropRate).
	Dropped int
	// DroppedToCrashed counts messages discarded because the destination
	// was crashed at send time.
	DroppedToCrashed int
	// DroppedAfterStop counts sends that arrived after Stop — counted
	// no-ops, never a panic.
	DroppedAfterStop int
	// DroppedBackpressure counts protocol messages shed because the
	// destination mailbox was full: the mailbox loop never blocks on a
	// saturated peer (that cycle is a distributed deadlock), and the next
	// periodic round resends everything anyway.
	DroppedBackpressure int
	// StaleRejected counts protocol messages rejected by the sequence
	// check (a delayed or replayed flood carrying an older round).
	StaleRejected int
	// RPCRetries counts re-sent route/child RPC attempts after a missed
	// deadline.
	RPCRetries int
	// ResolverFailovers counts child requests answered by an alternate
	// resolver after the designated one failed to reply.
	ResolverFailovers int
	// DroppedByPolicy and DuplicatedByPolicy count messages the LinkPolicy
	// hook (chaos injection) lost or doubled.
	DroppedByPolicy, DuplicatedByPolicy int
	// DegradedRoutes counts Route calls answered from the last-known-good
	// store after every fresh attempt timed out.
	DegradedRoutes int
}

// TrafficStats counts messages the runtime actually delivered, by kind.
type TrafficStats struct {
	// Local counts §4 local-state floods; Aggregate counts border
	// exchanges plus intra-cluster forwards (the synchronous model's
	// AggregateMessages + ForwardMessages).
	Local, Aggregate int
	// Route and Child count request-processing RPCs; Data counts
	// data-plane forwards (Execute).
	Route, Child, Data int
}

// Total returns the total delivered message count.
func (t TrafficStats) Total() int {
	return t.Local + t.Aggregate + t.Route + t.Child + t.Data
}

// message is the mailbox envelope. Exactly one field group is set.
type message struct {
	// local-state flood (§4 step 1).
	localFrom     int
	localServices []svc.Service

	// aggregate-state exchange/forward (§4 step 2).
	aggCluster  int
	aggServices []svc.Service
	aggForward  bool // true when this node must re-flood it intra-cluster

	// broadcast trigger (control).
	trigger bool

	// seq is the protocol round the message belongs to (local/aggregate/
	// trigger kinds); receivers reject entries older than what they hold.
	seq uint64

	// route request (full §5 routing at this node).
	routeReq   *svc.Request
	routeReply chan routeReply

	// child request (intra-cluster resolution at this node).
	childReq   *routing.ChildRequest
	childReply chan childReply

	// data-plane stream step (see execute.go).
	data *dataMsg

	kind msgKind
}

type msgKind int

const (
	kindLocal msgKind = iota + 1
	kindAggregate
	kindTrigger
	kindRoute
	kindChild
	kindData
)

type routeReply struct {
	result *routing.Result
	err    error
}

type childReply struct {
	path *routing.Path
	err  error
}

// node is one proxy's runtime.
type node struct {
	id    int
	sys   *System
	view  *hfc.NodeView
	inbox chan message

	// st guards the node's routing state, which worker goroutines read.
	st    sync.RWMutex
	state state.NodeState // guarded by st
}

// New builds a system over a constructed HFC topology and per-proxy
// capabilities. Call Start to launch the goroutines.
func New(topo *hfc.Topology, caps []svc.CapabilitySet, cfg Config) (*System, error) {
	if topo == nil {
		return nil, errors.New("overlay: nil topology")
	}
	if len(caps) != topo.N() {
		return nil, fmt.Errorf("overlay: %d capability sets for %d nodes", len(caps), topo.N())
	}
	cfg = cfg.withDefaults()
	if cfg.MailboxSize < 1 {
		return nil, fmt.Errorf("overlay: mailbox size %d must be >= 1", cfg.MailboxSize)
	}
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("overlay: drop rate %v outside [0,1]", cfg.DropRate)
	}
	if cfg.ProtocolDropRate < 0 || cfg.ProtocolDropRate > 1 {
		return nil, fmt.Errorf("overlay: protocol drop rate %v outside [0,1]", cfg.ProtocolDropRate)
	}
	var cache *routing.RouteCache
	if cfg.CacheRoutes {
		shards := cfg.CacheShards
		if shards == 0 {
			shards = routing.DefaultCacheShards
		}
		cache = routing.NewRouteCacheSharded(shards)
	}
	s := &System{topo: topo, caps: caps, cfg: cfg, accepting: true,
		dyn: hfc.NewDynamic(topo), cache: cache}
	if cfg.DropRate > 0 || cfg.ProtocolDropRate > 0 {
		s.dropRng = rand.New(rand.NewSource(cfg.DropSeed))
	}
	s.crashed = make([]atomic.Bool, topo.N())
	s.quarantined = make([]atomic.Bool, topo.N())
	if cfg.Health.Enabled {
		s.lastHeard = make([]atomic.Uint64, topo.N())
		s.healthMu.Lock()
		s.suspicion = make([]float64, topo.N())
		s.healthMu.Unlock()
	}
	if cfg.DegradedRoutes {
		s.lkgMu.Lock()
		s.lkg = make(map[routing.CacheKey]*routing.Result)
		s.lkgMu.Unlock()
	}
	s.nodes = make([]*node, topo.N())
	for i := range s.nodes {
		view, err := topo.View(i)
		if err != nil {
			return nil, fmt.Errorf("overlay: %w", err)
		}
		// The runtime's crash registry plus the accrual quarantine set
		// double as every node's failure detector: border selection and
		// intra-cluster provider choice skip nodes reported dead or
		// suspected gray. A deployment would plug a gossip or heartbeat
		// detector in here.
		view.Alive = func(id int) bool { return !s.IsCrashed(id) && !s.IsQuarantined(id) }
		// Border lookups consult the incrementally maintained live
		// elections first (§5.2): with no churn they return exactly the
		// static primaries; after a crash they return the re-elected
		// closest live pair for the affected cluster's links.
		view.BorderOverride = func(a, b int) (int, int, bool) {
			s.dynMu.RLock()
			defer s.dynMu.RUnlock()
			return s.dyn.Border(a, b)
		}
		// A re-elected border can fall outside the static view's
		// coordinate entitlement; the promotion announcement carries the
		// coordinates along (Fig. 4), modeled by this resolver.
		view.ResolveCoord = func(id int) (coords.Point, bool) {
			if id < 0 || id >= topo.N() {
				return nil, false
			}
			return topo.Coords().Points[id].Clone(), true
		}
		// Every node knows its own cluster's aggregate of what it has seen
		// so far (initially just itself).
		s.nodes[i] = &node{
			id:    i,
			sys:   s,
			view:  view,
			inbox: make(chan message, cfg.MailboxSize),
			state: state.NodeState{
				Node: i,
				SCTP: map[int]svc.CapabilitySet{i: caps[i].Clone()},
				SCTC: map[int]svc.CapabilitySet{view.ClusterID: caps[i].Clone()},
			},
		}
	}
	return s, nil
}

// Start launches one goroutine per node. It is an error to start twice.
func (s *System) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("overlay: already started")
	}
	s.started = true
	for _, n := range s.nodes {
		s.wg.Add(1)
		go func(n *node) {
			defer s.wg.Done()
			n.run()
		}(n)
	}
	return nil
}

// Stop shuts the system down and waits for every node goroutine to exit.
// Safe to call once; subsequent calls return an error. Sends racing Stop
// are counted no-ops (FaultStats.DroppedAfterStop), never a panic.
func (s *System) Stop() error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.mu.Unlock()
		return errors.New("overlay: not running")
	}
	s.stopped = true
	s.mu.Unlock()
	// Refuse new sends, wait for in-flight traffic, then close inboxes.
	// The write lock cannot be acquired while a sender is between its
	// accepting check and its inflight.Add, so every admitted message is
	// covered by the Wait below.
	s.sendMu.Lock()
	s.accepting = false
	s.sendMu.Unlock()
	s.inflight.Wait()
	for _, n := range s.nodes {
		close(n.inbox)
	}
	s.wg.Wait()
	return nil
}

// send delivers a message to node `to`, optionally after the simulated
// network delay from node `from` (-1 for external injection, no delay).
// Messages to crashed nodes and sends after Stop are counted no-ops; all
// payload kinds are subject to the configured drop rates and the LinkPolicy
// hook (trigger messages are control-plane injections and never drop
// randomly; external injections never face the link policy — a client's
// request enters at its destination, it does not cross simulated links).
func (s *System) send(from, to int, m message) {
	if s.crashed[to].Load() {
		s.dropMu.Lock()
		s.faults.DroppedToCrashed++
		s.dropMu.Unlock()
		return
	}
	var extra time.Duration
	duplicate := false
	if s.cfg.LinkPolicy != nil && from >= 0 && from != to && m.kind != kindTrigger {
		v := s.cfg.LinkPolicy(from, to, MsgKind(m.kind))
		if v.Drop {
			s.dropMu.Lock()
			s.faults.DroppedByPolicy++
			s.dropMu.Unlock()
			return
		}
		extra = v.Delay
		duplicate = v.Duplicate
	}
	if s.dropRng != nil && m.kind != kindTrigger {
		rate := s.cfg.DropRate
		if (m.kind == kindLocal || m.kind == kindAggregate) && s.cfg.ProtocolDropRate > rate {
			rate = s.cfg.ProtocolDropRate
		}
		if rate > 0 {
			s.dropMu.Lock()
			drop := s.dropRng.Float64() < rate
			if drop {
				s.faults.Dropped++
			}
			s.dropMu.Unlock()
			if drop {
				return
			}
		}
	}
	s.deliver(from, to, m, extra)
	if duplicate {
		s.dropMu.Lock()
		s.faults.DuplicatedByPolicy++
		s.dropMu.Unlock()
		// The copy takes the same delay; the protocol's sequence checks
		// make duplicated floods idempotent, RPC replies park in their
		// buffered reply channels.
		s.deliver(from, to, m, extra)
	}
}

// deliver admits one message past the Stop gate and hands it to the
// destination mailbox, after the simulated link delay (configured latency
// plus any policy-injected extra) when there is one.
func (s *System) deliver(from, to int, m message, extra time.Duration) {
	s.sendMu.RLock()
	if !s.accepting {
		s.sendMu.RUnlock()
		s.dropMu.Lock()
		s.faults.DroppedAfterStop++
		s.dropMu.Unlock()
		return
	}
	s.inflight.Add(1)
	s.sendMu.RUnlock()
	count := func() {
		s.statMu.Lock()
		switch m.kind {
		case kindLocal:
			s.stats.Local++
		case kindAggregate:
			s.stats.Aggregate++
		case kindRoute:
			s.stats.Route++
		case kindChild:
			s.stats.Child++
		case kindData:
			s.stats.Data++
		}
		s.statMu.Unlock()
		if s.lastHeard != nil && from >= 0 && (m.kind == kindLocal || m.kind == kindAggregate) {
			s.noteHeard(from, m.seq)
		}
	}
	deliver := func() {
		// Safe against Stop: the message is registered in inflight, and
		// Stop only closes inboxes after inflight drains.
		s.nodes[to].inbox <- m
		count()
	}
	d := extra
	if s.cfg.DelayPerUnit > 0 && from >= 0 && from != to {
		d += time.Duration(s.topo.Dist(from, to)) * s.cfg.DelayPerUnit
	}
	if d > 0 {
		time.AfterFunc(d, deliver)
		return
	}
	if (m.kind == kindLocal || m.kind == kindAggregate) && from >= 0 {
		// Protocol sends originate from a node's mailbox loop; blocking
		// there on a saturated peer can close a cycle of full mailboxes
		// into a distributed deadlock. The periodic protocol resends
		// everything next round, so backpressure degrades to a counted
		// drop instead.
		select {
		case s.nodes[to].inbox <- m:
			count()
		default:
			s.inflight.Done()
			s.dropMu.Lock()
			s.faults.DroppedBackpressure++
			s.dropMu.Unlock()
		}
		return
	}
	deliver()
}

// TriggerStateRound makes every node broadcast its local state and, at
// border proxies, aggregate and exchange cluster state — one full round of
// the §4 protocol. Call Quiesce to wait for convergence. Crashed nodes
// neither receive the trigger nor broadcast.
func (s *System) TriggerStateRound() {
	seq := s.round.Add(1)
	// Health transitions happen on the protocol tick, before the round's
	// floods go out: re-elected borders take effect for this round, and
	// the evaluation point is deterministic given the message history.
	if s.cfg.Health.Enabled {
		s.evaluateHealth(seq)
	}
	// A full protocol round refreshes every cluster's state: all cached
	// routes are stale against what nodes are about to learn.
	if s.cache != nil {
		s.cache.AdvanceAll()
	}
	for i := range s.nodes {
		s.send(-1, i, message{kind: kindTrigger, trigger: true, seq: seq})
	}
}

// Quiesce blocks until all in-flight messages (and the messages they
// caused) have been processed.
func (s *System) Quiesce() { s.inflight.Wait() }

// DroppedMessages reports how many messages random fault injection has
// discarded so far (drops to crashed nodes are counted separately; see
// FaultCounters).
func (s *System) DroppedMessages() int {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	return s.faults.Dropped
}

// FaultCounters snapshots the fault-injection and recovery counters.
func (s *System) FaultCounters() FaultStats {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	return s.faults
}

// Traffic snapshots the delivered-message counters.
func (s *System) Traffic() TrafficStats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// UpdateCapability changes a proxy's installed services at runtime. The
// change propagates on the NEXT protocol round — exactly the periodic
// §4 behaviour; until then other nodes route on stale state, which is safe
// because paths are validated against the live deployment at execution
// time in a real system.
func (s *System) UpdateCapability(node int, set svc.CapabilitySet) error {
	if node < 0 || node >= len(s.nodes) {
		return fmt.Errorf("overlay: node %d out of range [0,%d)", node, len(s.nodes))
	}
	if set == nil {
		return errors.New("overlay: nil capability set")
	}
	s.capsMu.Lock()
	s.caps[node] = set.Clone()
	s.capsMu.Unlock()
	n := s.nodes[node]
	n.st.Lock()
	n.state.SCTP[node] = set.Clone()
	n.st.Unlock()
	// Cached routes through this proxy's cluster may rely on the old
	// deployment; invalidate them. The last-known-good store is cleared
	// outright: degraded serving promises stale-but-valid paths, and
	// validity is against the deployment, which just changed.
	if s.cache != nil {
		s.cache.AdvanceRound(s.topo.ClusterOf(node))
	}
	if s.cfg.DegradedRoutes {
		s.lkgMu.Lock()
		clear(s.lkg)
		s.lkgMu.Unlock()
	}
	return nil
}

// capsOf returns node i's current capability set (immutable once stored).
func (s *System) capsOf(i int) svc.CapabilitySet {
	s.capsMu.RLock()
	defer s.capsMu.RUnlock()
	return s.caps[i]
}

// Capabilities snapshots the current ground-truth deployment.
func (s *System) Capabilities() []svc.CapabilitySet {
	s.capsMu.RLock()
	defer s.capsMu.RUnlock()
	out := make([]svc.CapabilitySet, len(s.caps))
	for i, c := range s.caps {
		out[i] = c.Clone()
	}
	return out
}

// Converged reports whether every node's state currently matches the
// synchronous model's converged tables — the check failure-recovery tests
// poll between protocol rounds.
func (s *System) Converged() (bool, error) {
	states, err := s.States()
	if err != nil {
		return false, err
	}
	return state.VerifyConvergence(s.topo, s.Capabilities(), states) == nil, nil
}

// Route injects a service request at its destination proxy and waits for
// the composed service path, exactly as a client would. Each attempt is
// bounded by Config.RouteTimeout; missed deadlines (a crashed or
// unreachable destination, a dropped request) are retried with exponential
// backoff up to Config.RPCRetries times before failing with ErrRPCTimeout —
// or, with Config.DegradedRoutes, falling back to the last-known-good
// result for the same request, tagged Degraded (stale but never invented).
func (s *System) Route(req svc.Request) (*routing.Result, error) {
	if err := req.Validate(s.topo.N()); err != nil {
		return nil, err
	}
	var key routing.CacheKey
	var canonical string
	var version uint64
	if s.cache != nil || s.cfg.DegradedRoutes {
		canonical = req.SG.Canonical()
		key = routing.NewCacheKeyCanonical(req.Source, req.Dest, canonical)
	}
	if s.cache != nil {
		if v, ok := s.cache.Get(key, canonical); ok {
			// Cached results are shared read-only values.
			res := v.(*routing.Result)
			s.storeLKG(key, res)
			return res, nil
		}
		version = s.cache.Version()
	}
	backoff := s.cfg.RPCBackoff
	for attempt := 0; ; attempt++ {
		// A fresh reply channel per attempt: a late reply to an abandoned
		// attempt parks harmlessly in its own buffer.
		reply := make(chan routeReply, 1)
		r := req
		s.send(-1, req.Dest, message{kind: kindRoute, routeReq: &r, routeReply: reply})
		timer := time.NewTimer(s.cfg.RouteTimeout)
		select {
		case out := <-reply:
			timer.Stop()
			s.noteRPCOutcome(req.Dest, true)
			if out.err == nil && out.result != nil {
				if s.cache != nil {
					s.cache.Put(key, canonical, out.result, s.routeClusters(out.result, req), version)
				}
				s.storeLKG(key, out.result)
			}
			if out.err != nil && errors.Is(out.err, ErrRPCTimeout) {
				// The destination answered but could not reach the
				// resolvers it needed — partitioned mid-resolution.
				if res, ok := s.degradedResult(key); ok {
					return res, nil
				}
			}
			return out.result, out.err
		case <-timer.C:
			s.noteRPCOutcome(req.Dest, false)
		}
		if attempt == s.cfg.RPCRetries {
			if res, ok := s.degradedResult(key); ok {
				return res, nil
			}
			return nil, fmt.Errorf("overlay: route to %d after %d attempts: %w", req.Dest, attempt+1, ErrRPCTimeout)
		}
		s.noteRPCRetry()
		time.Sleep(backoff)
		backoff *= 2
	}
}

// routeClusters lists every cluster a resolved route depends on — the CSP's
// provider clusters, the cluster of every hop proxy on the composed path,
// and both endpoint clusters — so the cache entry goes stale exactly when
// one of them advances. Duplicates are fine; the cache deduplicates.
func (s *System) routeClusters(res *routing.Result, req svc.Request) []int {
	out := []int{s.topo.ClusterOf(req.Source), s.topo.ClusterOf(req.Dest)}
	for _, e := range res.CSP {
		out = append(out, e.Cluster)
	}
	if res.Path != nil {
		for _, h := range res.Path.Hops {
			out = append(out, s.topo.ClusterOf(h.Node))
		}
	}
	return out
}

// RouteCacheStats snapshots the route cache's counters; ok is false when
// caching is disabled.
func (s *System) RouteCacheStats() (stats routing.CacheStats, ok bool) {
	if s.cache == nil {
		return routing.CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// StateOf snapshots a node's current routing state (deep copy).
func (s *System) StateOf(id int) (state.NodeState, error) {
	if id < 0 || id >= len(s.nodes) {
		return state.NodeState{}, fmt.Errorf("overlay: node %d out of range [0,%d)", id, len(s.nodes))
	}
	n := s.nodes[id]
	n.st.RLock()
	defer n.st.RUnlock()
	out := state.NodeState{
		Node: id,
		SCTP: make(map[int]svc.CapabilitySet, len(n.state.SCTP)),
		SCTC: make(map[int]svc.CapabilitySet, len(n.state.SCTC)),
		SeqP: make(map[int]uint64, len(n.state.SeqP)),
		SeqC: make(map[int]uint64, len(n.state.SeqC)),
	}
	for k, v := range n.state.SCTP {
		out.SCTP[k] = v.Clone()
	}
	for k, v := range n.state.SCTC {
		out.SCTC[k] = v.Clone()
	}
	for k, v := range n.state.SeqP {
		out.SeqP[k] = v
	}
	for k, v := range n.state.SeqC {
		out.SeqC[k] = v
	}
	return out, nil
}

// States snapshots every node's state, aligned by node index.
func (s *System) States() ([]state.NodeState, error) {
	out := make([]state.NodeState, len(s.nodes))
	for i := range s.nodes {
		st, err := s.StateOf(i)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// run is the node's mailbox loop. Protocol messages mutate state inline;
// route and child requests are dispatched to worker goroutines so a node
// blocked composing a path keeps serving child requests (no distributed
// deadlock).
func (n *node) run() {
	for m := range n.inbox {
		switch m.kind {
		case kindLocal:
			n.st.Lock()
			ok := n.state.ApplyLocal(m.localFrom, m.seq, svc.NewCapabilitySet(m.localServices...))
			n.st.Unlock()
			if !ok {
				n.sys.noteStaleRejected()
			}
			n.sys.inflight.Done()
		case kindAggregate:
			n.st.Lock()
			ok := n.state.ApplyAggregate(m.aggCluster, m.seq, svc.NewCapabilitySet(m.aggServices...))
			n.st.Unlock()
			if !ok {
				n.sys.noteStaleRejected()
			} else if m.aggForward {
				n.forwardAggregate(m.aggCluster, m.aggServices, m.seq)
			}
			n.sys.inflight.Done()
		case kindTrigger:
			n.broadcast(m.seq)
			n.sys.inflight.Done()
		case kindRoute:
			go n.handleRoute(m)
		case kindChild:
			go n.handleChild(m)
		case kindData:
			// A data chain sends onward from inside the handler; run it off
			// the mailbox loop so a full downstream inbox can never stall
			// message consumption (and thus never deadlock a cycle).
			go n.handleData(m)
		}
	}
}

// broadcast floods this node's local state to its cluster and, if it is
// the preferred live border toward some cluster, aggregates its cluster's
// (currently known) capability and sends it across the external link. With
// the failure detector wired into the view, border duty migrates to the
// first live backup pair when a primary border endpoint is crashed.
func (n *node) broadcast(seq uint64) {
	services := n.sys.capsOf(n.id).Sorted()
	for _, member := range n.view.Members {
		if member == n.id {
			continue
		}
		n.sys.send(n.id, member, message{
			kind:          kindLocal,
			localFrom:     n.id,
			localServices: services,
			seq:           seq,
		})
	}
	// Border duty: for each cluster pair this node currently terminates
	// (primary, or backup promoted by the failure detector), send the
	// aggregate of its own cluster.
	n.st.RLock()
	sets := make([]svc.CapabilitySet, 0, len(n.state.SCTP))
	for _, set := range n.state.SCTP {
		sets = append(sets, set)
	}
	n.st.RUnlock()
	agg := svc.Union(sets...).Sorted()
	own := n.view.ClusterID
	for other := 0; other < n.view.NumClusters; other++ {
		if other == own {
			continue
		}
		inOwn, inOther, err := n.view.Border(own, other)
		if err != nil || inOwn != n.id {
			continue
		}
		n.sys.send(n.id, inOther, message{
			kind:        kindAggregate,
			aggCluster:  own,
			aggServices: agg,
			aggForward:  true,
			seq:         seq,
		})
	}
	// Record our own cluster's aggregate locally.
	n.st.Lock()
	n.state.ApplyAggregate(own, seq, svc.NewCapabilitySet(agg...))
	n.st.Unlock()
}

// forwardAggregate re-floods a received aggregate to the rest of this
// node's cluster (§4 step 2, receiving border's duty).
func (n *node) forwardAggregate(cluster int, services []svc.Service, seq uint64) {
	for _, member := range n.view.Members {
		if member == n.id {
			continue
		}
		n.sys.send(n.id, member, message{
			kind:        kindAggregate,
			aggCluster:  cluster,
			aggServices: services,
			aggForward:  false,
			seq:         seq,
		})
	}
}

// handleRoute performs the full §5 procedure at this (destination) node.
//
// The cluster-level search picks clusters from SCT_C aggregates, which are
// blind to individual crashes inside foreign clusters: a cluster whose only
// provider of some service is down still looks viable, and its child
// request then fails with no live provider. When that happens the route is
// recomputed with the failed (cluster, service) combinations banned via the
// ClusterAdmissible hook, steering the CSP to an alternate provider cluster
// — route-level backtracking around crashed providers.
func (n *node) handleRoute(m message) {
	defer n.sys.inflight.Done()
	n.st.RLock()
	snapshot := n.state
	// Routing only reads the tables; holding the read lock for the whole
	// computation would block protocol updates, so deep-copy instead.
	stCopy := state.NodeState{Node: n.id, SCTP: map[int]svc.CapabilitySet{}, SCTC: map[int]svc.CapabilitySet{}}
	for k, v := range snapshot.SCTP {
		stCopy.SCTP[k] = v.Clone()
	}
	for k, v := range snapshot.SCTC {
		stCopy.SCTC[k] = v.Clone()
	}
	n.st.RUnlock()

	type ban struct {
		cluster int
		service svc.Service
	}
	banned := map[ban]bool{}
	var res *routing.Result
	var err error
	for attempt := 0; attempt <= n.view.NumClusters; attempt++ {
		solver := &rpcSolver{n: n}
		router := &routing.HierarchicalRouter{
			View:            n.view,
			State:           &stCopy,
			Intra:           solver,
			ClusterOfSource: n.sys.topo.ClusterOf,
			Mode:            routing.RelaxBacktrack,
		}
		if len(banned) > 0 {
			router.ClusterAdmissible = func(s svc.Service, c int) bool {
				return !banned[ban{cluster: c, service: s}]
			}
		}
		res, err = router.Route(*m.routeReq)
		if err == nil || solver.failedChild == nil ||
			!(errors.Is(err, routing.ErrNoProviders) || errors.Is(err, routing.ErrInfeasible)) {
			break
		}
		// The child doesn't say which of its services lacked a live
		// provider; ban them all in that cluster — at worst the next CSP
		// is slightly longer.
		fc := solver.failedChild
		grew := false
		for _, s := range fc.Services {
			if !banned[ban{cluster: fc.Cluster, service: s}] {
				banned[ban{cluster: fc.Cluster, service: s}] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	m.routeReply <- routeReply{result: res, err: err}
}

// handleChild resolves a child request against this node's own SCT_P.
func (n *node) handleChild(m message) {
	defer n.sys.inflight.Done()
	path, err := n.solveChildLocal(*m.childReq)
	m.childReply <- childReply{path: path, err: err}
}

// solveChildLocal is the §5.2 intra-cluster computation using this node's
// privately accumulated SCT_P.
func (n *node) solveChildLocal(child routing.ChildRequest) (*routing.Path, error) {
	if len(child.Services) == 0 {
		if child.Source == child.Dest {
			return &routing.Path{Hops: []routing.Hop{{Node: child.Source}}}, nil
		}
		d, err := n.view.Dist(child.Source, child.Dest)
		if err != nil {
			return nil, err
		}
		return &routing.Path{
			Hops:         []routing.Hop{{Node: child.Source}, {Node: child.Dest}},
			DecisionCost: d,
		}, nil
	}
	sg, err := svc.Linear(child.Services...)
	if err != nil {
		return nil, err
	}
	n.st.RLock()
	providers := func(x svc.Service) []int {
		var out []int
		for _, member := range n.view.Members {
			// Skip providers the failure detector reports dead: a path
			// through a crashed proxy would only fail at execution time.
			if n.view.Alive != nil && !n.view.Alive(member) {
				continue
			}
			if set, ok := n.state.SCTP[member]; ok && set.Has(x) {
				out = append(out, member)
			}
		}
		return out
	}
	defer n.st.RUnlock()
	oracle := routing.OracleFunc(func(u, v int) float64 {
		d, err := n.view.Dist(u, v)
		if err != nil {
			// Intra-cluster endpoints are always in the view; an error
			// here is a harness bug.
			panic(err)
		}
		return d
	})
	req := svc.Request{Source: child.Source, Dest: child.Dest, SG: sg}
	return routing.FindPath(req, providers, oracle, nil)
}

// rpcSolver sends child requests to their resolver proxies and waits for
// the answers — the conquer phase as actual message exchange. A child whose
// resolver is this node is solved inline (a node does not RPC itself).
//
// Each RPC attempt is bounded by Config.RPCTimeout and retried (with
// exponential backoff) up to Config.RPCRetries times; when a resolver keeps
// missing its deadline — crashed, or its replies keep being dropped — the
// solver re-issues the child request to the next candidate resolver of the
// target cluster (routing.ResolverCandidates), since any member holding the
// cluster's SCT_P can answer.
type rpcSolver struct {
	n *node
	// failedChild records the child whose resolution failed semantically
	// (no provider / infeasible), so handleRoute can ban its cluster-service
	// combinations and recompute the CSP around the failure.
	failedChild *routing.ChildRequest
}

var _ routing.IntraSolver = (*rpcSolver)(nil)

// SolveChild implements routing.IntraSolver.
func (s *rpcSolver) SolveChild(child routing.ChildRequest) (*routing.Path, error) {
	sys := s.n.sys
	candidates := routing.ResolverCandidates(s.n.view, child)
	tried := 0
	for ci, resolver := range candidates {
		// The failure detector prunes known-dead candidates; the designated
		// resolver is still attempted when every candidate looks dead, so
		// detector false positives degrade to a timeout, not a wrong answer.
		if s.n.view.Alive != nil && !s.n.view.Alive(resolver) {
			continue
		}
		tried++
		c := child
		c.Resolver = resolver
		path, err := s.solveAt(c)
		if err == nil {
			if ci > 0 {
				sys.noteResolverFailover()
			}
			return path, nil
		}
		if !errors.Is(err, ErrRPCTimeout) {
			// A semantic failure (no provider, unsatisfiable graph) is the
			// same at every resolver — converged SCT_Ps agree — so failing
			// over would only repeat it.
			c := child
			s.failedChild = &c
			return nil, err
		}
	}
	if tried == 0 {
		c := child
		return s.solveAt(c)
	}
	return nil, fmt.Errorf("overlay: child request for cluster %d: all %d resolver candidates failed: %w",
		child.Cluster, tried, ErrRPCTimeout)
}

// solveAt runs the deadline+retry loop against one specific resolver.
func (s *rpcSolver) solveAt(child routing.ChildRequest) (*routing.Path, error) {
	if child.Resolver == s.n.id {
		return s.n.solveChildLocal(child)
	}
	sys := s.n.sys
	backoff := sys.cfg.RPCBackoff
	for attempt := 0; ; attempt++ {
		reply := make(chan childReply, 1)
		c := child
		sys.send(s.n.id, child.Resolver, message{kind: kindChild, childReq: &c, childReply: reply})
		timer := time.NewTimer(sys.cfg.RPCTimeout)
		select {
		case out := <-reply:
			timer.Stop()
			sys.noteRPCOutcome(child.Resolver, true)
			if out.err != nil {
				return nil, fmt.Errorf("overlay: child request at %d: %w", child.Resolver, out.err)
			}
			return out.path, nil
		case <-timer.C:
			sys.noteRPCOutcome(child.Resolver, false)
		}
		if attempt == sys.cfg.RPCRetries {
			return nil, fmt.Errorf("overlay: child request at %d: %d attempts: %w", child.Resolver, attempt+1, ErrRPCTimeout)
		}
		sys.noteRPCRetry()
		time.Sleep(backoff)
		backoff *= 2
	}
}
