// Package overlay runs the HFC framework as a concurrent message-passing
// system: one goroutine per proxy with a mailbox, exchanging the §4 state
// protocol messages (local-state floods, aggregate-state border exchange and
// forwarding) and resolving §5 service requests by RPC — the destination
// proxy computes the cluster-level path from its own converged tables and
// sends child requests to the resolver proxies of the clusters involved.
//
// The same algorithm code as the synchronous simulation (packages state and
// routing) runs here against each node's privately accumulated state, so
// integration tests can check that the distributed execution converges to
// exactly what the synchronous model predicts.
package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Config tunes the runtime.
type Config struct {
	// MailboxSize is each node's message buffer (default 256).
	MailboxSize int
	// DelayPerUnit, when positive, makes message delivery between nodes u
	// and v take Dist(u,v)·DelayPerUnit of wall-clock time, simulating
	// network latency. Zero delivers immediately (default).
	DelayPerUnit time.Duration
	// DropRate, in [0, 1], makes each state-protocol message (local-state
	// flood, aggregate exchange, aggregate forward) be lost with this
	// probability — fault injection for convergence testing. Request and
	// reply traffic is never dropped (a deployment would retry it; the
	// periodic protocol needs no retry because the next round resends
	// everything). Default 0.
	DropRate float64
	// DropSeed seeds the drop decisions so failure tests are
	// reproducible.
	DropSeed int64
}

func (c Config) withDefaults() Config {
	if c.MailboxSize == 0 {
		c.MailboxSize = 256
	}
	return c
}

// System is a running overlay of concurrent proxy nodes.
type System struct {
	topo *hfc.Topology
	// caps is the ground-truth deployment; capsMu guards the slice and
	// stored sets are treated as immutable (replaced, never mutated).
	capsMu sync.RWMutex
	caps   []svc.CapabilitySet
	cfg    Config
	nodes  []*node

	// inflight tracks undelivered/unprocessed messages so Quiesce can wait
	// for protocol cascades to settle.
	inflight sync.WaitGroup
	// stopped guards double-stop.
	mu      sync.Mutex
	started bool
	stopped bool
	wg      sync.WaitGroup

	// drop state (fault injection), guarded by dropMu.
	dropMu  sync.Mutex
	dropRng *rand.Rand
	dropped int

	// traffic counters (delivered messages by kind), guarded by statMu.
	statMu sync.Mutex
	stats  TrafficStats
}

// TrafficStats counts messages the runtime actually delivered, by kind.
type TrafficStats struct {
	// Local counts §4 local-state floods; Aggregate counts border
	// exchanges plus intra-cluster forwards (the synchronous model's
	// AggregateMessages + ForwardMessages).
	Local, Aggregate int
	// Route and Child count request-processing RPCs; Data counts
	// data-plane forwards (Execute).
	Route, Child, Data int
}

// Total returns the total delivered message count.
func (t TrafficStats) Total() int {
	return t.Local + t.Aggregate + t.Route + t.Child + t.Data
}

// message is the mailbox envelope. Exactly one field group is set.
type message struct {
	// local-state flood (§4 step 1).
	localFrom     int
	localServices []svc.Service

	// aggregate-state exchange/forward (§4 step 2).
	aggCluster  int
	aggServices []svc.Service
	aggForward  bool // true when this node must re-flood it intra-cluster

	// broadcast trigger (control).
	trigger bool

	// route request (full §5 routing at this node).
	routeReq   *svc.Request
	routeReply chan routeReply

	// child request (intra-cluster resolution at this node).
	childReq   *routing.ChildRequest
	childReply chan childReply

	// data-plane stream step (see execute.go).
	data *dataMsg

	kind msgKind
}

type msgKind int

const (
	kindLocal msgKind = iota + 1
	kindAggregate
	kindTrigger
	kindRoute
	kindChild
	kindData
)

type routeReply struct {
	result *routing.Result
	err    error
}

type childReply struct {
	path *routing.Path
	err  error
}

// node is one proxy's runtime.
type node struct {
	id    int
	sys   *System
	view  *hfc.NodeView
	inbox chan message

	// st guards the node's routing state, which worker goroutines read.
	st    sync.RWMutex
	state state.NodeState
}

// New builds a system over a constructed HFC topology and per-proxy
// capabilities. Call Start to launch the goroutines.
func New(topo *hfc.Topology, caps []svc.CapabilitySet, cfg Config) (*System, error) {
	if topo == nil {
		return nil, errors.New("overlay: nil topology")
	}
	if len(caps) != topo.N() {
		return nil, fmt.Errorf("overlay: %d capability sets for %d nodes", len(caps), topo.N())
	}
	cfg = cfg.withDefaults()
	if cfg.MailboxSize < 1 {
		return nil, fmt.Errorf("overlay: mailbox size %d must be >= 1", cfg.MailboxSize)
	}
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("overlay: drop rate %v outside [0,1]", cfg.DropRate)
	}
	s := &System{topo: topo, caps: caps, cfg: cfg}
	if cfg.DropRate > 0 {
		s.dropRng = rand.New(rand.NewSource(cfg.DropSeed))
	}
	s.nodes = make([]*node, topo.N())
	for i := range s.nodes {
		view, err := topo.View(i)
		if err != nil {
			return nil, fmt.Errorf("overlay: %w", err)
		}
		n := &node{
			id:    i,
			sys:   s,
			view:  view,
			inbox: make(chan message, cfg.MailboxSize),
			state: state.NodeState{
				Node: i,
				SCTP: map[int]svc.CapabilitySet{i: caps[i].Clone()},
				SCTC: map[int]svc.CapabilitySet{},
			},
		}
		// Every node knows its own cluster's aggregate of what it has seen
		// so far (initially just itself).
		n.state.SCTC[view.ClusterID] = caps[i].Clone()
		s.nodes[i] = n
	}
	return s, nil
}

// Start launches one goroutine per node. It is an error to start twice.
func (s *System) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("overlay: already started")
	}
	s.started = true
	for _, n := range s.nodes {
		s.wg.Add(1)
		go func(n *node) {
			defer s.wg.Done()
			n.run()
		}(n)
	}
	return nil
}

// Stop shuts the system down and waits for every node goroutine to exit.
// Safe to call once; subsequent calls return an error.
func (s *System) Stop() error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.mu.Unlock()
		return errors.New("overlay: not running")
	}
	s.stopped = true
	s.mu.Unlock()
	// Wait for in-flight traffic, then close inboxes.
	s.inflight.Wait()
	for _, n := range s.nodes {
		close(n.inbox)
	}
	s.wg.Wait()
	return nil
}

// send delivers a message to node `to`, optionally after the simulated
// network delay from node `from` (-1 for external injection, no delay).
// State-protocol messages are subject to the configured drop rate.
func (s *System) send(from, to int, m message) {
	if s.dropRng != nil && (m.kind == kindLocal || m.kind == kindAggregate) {
		s.dropMu.Lock()
		drop := s.dropRng.Float64() < s.cfg.DropRate
		if drop {
			s.dropped++
		}
		s.dropMu.Unlock()
		if drop {
			return
		}
	}
	s.inflight.Add(1)
	s.statMu.Lock()
	switch m.kind {
	case kindLocal:
		s.stats.Local++
	case kindAggregate:
		s.stats.Aggregate++
	case kindRoute:
		s.stats.Route++
	case kindChild:
		s.stats.Child++
	case kindData:
		s.stats.Data++
	}
	s.statMu.Unlock()
	deliver := func() {
		// A send racing Stop would panic on the closed channel; Stop waits
		// for inflight first, so ordering is safe as long as callers only
		// send while the system is running.
		s.nodes[to].inbox <- m
	}
	if s.cfg.DelayPerUnit > 0 && from >= 0 && from != to {
		d := time.Duration(s.topo.Dist(from, to)) * s.cfg.DelayPerUnit
		time.AfterFunc(d, deliver)
		return
	}
	deliver()
}

// TriggerStateRound makes every node broadcast its local state and, at
// border proxies, aggregate and exchange cluster state — one full round of
// the §4 protocol. Call Quiesce to wait for convergence.
func (s *System) TriggerStateRound() {
	for i := range s.nodes {
		s.send(-1, i, message{kind: kindTrigger, trigger: true})
	}
}

// Quiesce blocks until all in-flight messages (and the messages they
// caused) have been processed.
func (s *System) Quiesce() { s.inflight.Wait() }

// DroppedMessages reports how many protocol messages fault injection has
// discarded so far.
func (s *System) DroppedMessages() int {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	return s.dropped
}

// Traffic snapshots the delivered-message counters.
func (s *System) Traffic() TrafficStats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// UpdateCapability changes a proxy's installed services at runtime. The
// change propagates on the NEXT protocol round — exactly the periodic
// §4 behaviour; until then other nodes route on stale state, which is safe
// because paths are validated against the live deployment at execution
// time in a real system.
func (s *System) UpdateCapability(node int, set svc.CapabilitySet) error {
	if node < 0 || node >= len(s.nodes) {
		return fmt.Errorf("overlay: node %d out of range [0,%d)", node, len(s.nodes))
	}
	if set == nil {
		return errors.New("overlay: nil capability set")
	}
	s.capsMu.Lock()
	s.caps[node] = set.Clone()
	s.capsMu.Unlock()
	n := s.nodes[node]
	n.st.Lock()
	n.state.SCTP[node] = set.Clone()
	n.st.Unlock()
	return nil
}

// capsOf returns node i's current capability set (immutable once stored).
func (s *System) capsOf(i int) svc.CapabilitySet {
	s.capsMu.RLock()
	defer s.capsMu.RUnlock()
	return s.caps[i]
}

// Capabilities snapshots the current ground-truth deployment.
func (s *System) Capabilities() []svc.CapabilitySet {
	s.capsMu.RLock()
	defer s.capsMu.RUnlock()
	out := make([]svc.CapabilitySet, len(s.caps))
	for i, c := range s.caps {
		out[i] = c.Clone()
	}
	return out
}

// Converged reports whether every node's state currently matches the
// synchronous model's converged tables — the check failure-recovery tests
// poll between protocol rounds.
func (s *System) Converged() (bool, error) {
	states, err := s.States()
	if err != nil {
		return false, err
	}
	return state.VerifyConvergence(s.topo, s.Capabilities(), states) == nil, nil
}

// Route injects a service request at its destination proxy and waits for
// the composed service path, exactly as a client would.
func (s *System) Route(req svc.Request) (*routing.Result, error) {
	if err := req.Validate(s.topo.N()); err != nil {
		return nil, err
	}
	reply := make(chan routeReply, 1)
	r := req
	s.send(-1, req.Dest, message{kind: kindRoute, routeReq: &r, routeReply: reply})
	out := <-reply
	return out.result, out.err
}

// StateOf snapshots a node's current routing state (deep copy).
func (s *System) StateOf(id int) (state.NodeState, error) {
	if id < 0 || id >= len(s.nodes) {
		return state.NodeState{}, fmt.Errorf("overlay: node %d out of range [0,%d)", id, len(s.nodes))
	}
	n := s.nodes[id]
	n.st.RLock()
	defer n.st.RUnlock()
	out := state.NodeState{
		Node: id,
		SCTP: make(map[int]svc.CapabilitySet, len(n.state.SCTP)),
		SCTC: make(map[int]svc.CapabilitySet, len(n.state.SCTC)),
	}
	for k, v := range n.state.SCTP {
		out.SCTP[k] = v.Clone()
	}
	for k, v := range n.state.SCTC {
		out.SCTC[k] = v.Clone()
	}
	return out, nil
}

// States snapshots every node's state, aligned by node index.
func (s *System) States() ([]state.NodeState, error) {
	out := make([]state.NodeState, len(s.nodes))
	for i := range s.nodes {
		st, err := s.StateOf(i)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// run is the node's mailbox loop. Protocol messages mutate state inline;
// route and child requests are dispatched to worker goroutines so a node
// blocked composing a path keeps serving child requests (no distributed
// deadlock).
func (n *node) run() {
	for m := range n.inbox {
		switch m.kind {
		case kindLocal:
			n.st.Lock()
			n.state.SCTP[m.localFrom] = svc.NewCapabilitySet(m.localServices...)
			n.st.Unlock()
			n.sys.inflight.Done()
		case kindAggregate:
			n.st.Lock()
			n.state.SCTC[m.aggCluster] = svc.NewCapabilitySet(m.aggServices...)
			n.st.Unlock()
			if m.aggForward {
				n.forwardAggregate(m.aggCluster, m.aggServices)
			}
			n.sys.inflight.Done()
		case kindTrigger:
			n.broadcast()
			n.sys.inflight.Done()
		case kindRoute:
			go n.handleRoute(m)
		case kindChild:
			go n.handleChild(m)
		case kindData:
			// A data chain sends onward from inside the handler; run it off
			// the mailbox loop so a full downstream inbox can never stall
			// message consumption (and thus never deadlock a cycle).
			go n.handleData(m)
		}
	}
}

// broadcast floods this node's local state to its cluster and, if it is a
// border proxy, aggregates its cluster's (currently known) capability and
// sends it across each external link it terminates.
func (n *node) broadcast() {
	services := n.sys.capsOf(n.id).Sorted()
	for _, member := range n.view.Members {
		if member == n.id {
			continue
		}
		n.sys.send(n.id, member, message{
			kind:          kindLocal,
			localFrom:     n.id,
			localServices: services,
		})
	}
	// Border duty: for each cluster pair this node terminates, send the
	// aggregate of its own cluster.
	n.st.RLock()
	sets := make([]svc.CapabilitySet, 0, len(n.state.SCTP))
	for _, set := range n.state.SCTP {
		sets = append(sets, set)
	}
	n.st.RUnlock()
	agg := svc.Union(sets...).Sorted()
	own := n.view.ClusterID
	for other := 0; other < n.view.NumClusters; other++ {
		if other == own {
			continue
		}
		inOwn, inOther, err := n.view.Border(own, other)
		if err != nil || inOwn != n.id {
			continue
		}
		n.sys.send(n.id, inOther, message{
			kind:        kindAggregate,
			aggCluster:  own,
			aggServices: agg,
			aggForward:  true,
		})
	}
	// Record our own cluster's aggregate locally.
	n.st.Lock()
	n.state.SCTC[own] = svc.NewCapabilitySet(agg...)
	n.st.Unlock()
}

// forwardAggregate re-floods a received aggregate to the rest of this
// node's cluster (§4 step 2, receiving border's duty).
func (n *node) forwardAggregate(cluster int, services []svc.Service) {
	for _, member := range n.view.Members {
		if member == n.id {
			continue
		}
		n.sys.send(n.id, member, message{
			kind:        kindAggregate,
			aggCluster:  cluster,
			aggServices: services,
			aggForward:  false,
		})
	}
}

// handleRoute performs the full §5 procedure at this (destination) node.
func (n *node) handleRoute(m message) {
	defer n.sys.inflight.Done()
	n.st.RLock()
	snapshot := n.state
	// Routing only reads the tables; holding the read lock for the whole
	// computation would block protocol updates, so deep-copy instead.
	stCopy := state.NodeState{Node: n.id, SCTP: map[int]svc.CapabilitySet{}, SCTC: map[int]svc.CapabilitySet{}}
	for k, v := range snapshot.SCTP {
		stCopy.SCTP[k] = v.Clone()
	}
	for k, v := range snapshot.SCTC {
		stCopy.SCTC[k] = v.Clone()
	}
	n.st.RUnlock()

	router := &routing.HierarchicalRouter{
		View:            n.view,
		State:           &stCopy,
		Intra:           rpcSolver{n: n},
		ClusterOfSource: n.sys.topo.ClusterOf,
		Mode:            routing.RelaxBacktrack,
	}
	res, err := router.Route(*m.routeReq)
	m.routeReply <- routeReply{result: res, err: err}
}

// handleChild resolves a child request against this node's own SCT_P.
func (n *node) handleChild(m message) {
	defer n.sys.inflight.Done()
	path, err := n.solveChildLocal(*m.childReq)
	m.childReply <- childReply{path: path, err: err}
}

// solveChildLocal is the §5.2 intra-cluster computation using this node's
// privately accumulated SCT_P.
func (n *node) solveChildLocal(child routing.ChildRequest) (*routing.Path, error) {
	if len(child.Services) == 0 {
		if child.Source == child.Dest {
			return &routing.Path{Hops: []routing.Hop{{Node: child.Source}}}, nil
		}
		d, err := n.view.Dist(child.Source, child.Dest)
		if err != nil {
			return nil, err
		}
		return &routing.Path{
			Hops:         []routing.Hop{{Node: child.Source}, {Node: child.Dest}},
			DecisionCost: d,
		}, nil
	}
	sg, err := svc.Linear(child.Services...)
	if err != nil {
		return nil, err
	}
	n.st.RLock()
	providers := func(x svc.Service) []int {
		var out []int
		for _, member := range n.view.Members {
			if set, ok := n.state.SCTP[member]; ok && set.Has(x) {
				out = append(out, member)
			}
		}
		return out
	}
	defer n.st.RUnlock()
	oracle := routing.OracleFunc(func(u, v int) float64 {
		d, err := n.view.Dist(u, v)
		if err != nil {
			// Intra-cluster endpoints are always in the view; an error
			// here is a harness bug.
			panic(err)
		}
		return d
	})
	req := svc.Request{Source: child.Source, Dest: child.Dest, SG: sg}
	return routing.FindPath(req, providers, oracle, nil)
}

// rpcSolver sends child requests to their resolver proxies and waits for
// the answers — the conquer phase as actual message exchange. A child whose
// resolver is this node is solved inline (a node does not RPC itself).
type rpcSolver struct {
	n *node
}

var _ routing.IntraSolver = rpcSolver{}

// SolveChild implements routing.IntraSolver.
func (s rpcSolver) SolveChild(child routing.ChildRequest) (*routing.Path, error) {
	if child.Resolver == s.n.id {
		return s.n.solveChildLocal(child)
	}
	reply := make(chan childReply, 1)
	c := child
	s.n.sys.send(s.n.id, child.Resolver, message{kind: kindChild, childReq: &c, childReply: reply})
	out := <-reply
	if out.err != nil {
		return nil, fmt.Errorf("overlay: child request at %d: %w", child.Resolver, out.err)
	}
	return out.path, nil
}
