// Package overlay runs the HFC framework as a concurrent message-passing
// system: one goroutine per proxy with a mailbox, exchanging the §4 state
// protocol messages (local-state floods, aggregate-state border exchange and
// forwarding) and resolving §5 service requests by RPC — the destination
// proxy computes the cluster-level path from its own converged tables and
// sends child requests to the resolver proxies of the clusters involved.
//
// The same algorithm code as the synchronous simulation (packages state and
// routing) runs here against each node's privately accumulated state, so
// integration tests can check that the distributed execution converges to
// exactly what the synchronous model predicts.
package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
	"hfc/internal/vtime"
)

// Config tunes the runtime.
type Config struct {
	// Clock is the time source for every delay, deadline, and backoff in
	// the runtime. Nil selects the wall clock (production behaviour,
	// unchanged). A *vtime.Sim switches the system into simulation mode:
	// no per-node goroutines, mailboxes drain as discrete events on the
	// Sim's single-threaded scheduler, and Route/Execute/Quiesce must be
	// called from a Sim task (inside Sim.Run). Same protocol code, two
	// executions.
	Clock vtime.Clock
	// MailboxSize is each node's message buffer (default 256). Unused in
	// simulation mode, where delivery is an event, not a channel send.
	MailboxSize int
	// DelayPerUnit, when positive, makes message delivery between nodes u
	// and v take Dist(u,v)·DelayPerUnit of clock time, simulating
	// network latency. Zero delivers immediately (default).
	DelayPerUnit time.Duration
	// Latency, when non-nil, adds its per-link duration to every
	// node-to-node delivery on top of DelayPerUnit — the hook netsim's
	// measured-delay model (netsim.Network.OverlayLatency) plugs in. It
	// must be deterministic and safe for concurrent use.
	Latency func(from, to int) time.Duration
	// DropRate, in [0, 1], makes EVERY node-to-node message — state
	// protocol, route and child RPCs, data-plane forwards — be lost with
	// this probability. The RPC paths survive it by deadline + retry; the
	// periodic protocol needs no retry because the next round resends
	// everything. Default 0.
	DropRate float64
	// ProtocolDropRate, in [0, 1], additionally drops only state-protocol
	// messages (local-state floods, aggregate exchange and forwards) —
	// the knob the convergence experiments use to stress §4 without
	// touching request traffic. Protocol messages are dropped at
	// max(DropRate, ProtocolDropRate). Default 0.
	ProtocolDropRate float64
	// DropSeed seeds the drop decisions so failure tests are
	// reproducible.
	DropSeed int64
	// RouteTimeout bounds each attempt of a Route (and Execute) call; on
	// expiry the request is retried up to RPCRetries more times with
	// exponential backoff, then fails with ErrRPCTimeout. Default 2s.
	RouteTimeout time.Duration
	// RPCTimeout bounds each attempt of an internal child-request RPC.
	// After RPCRetries extra attempts against the designated resolver the
	// caller fails over to the next candidate resolver of the target
	// cluster. Default 250ms.
	RPCTimeout time.Duration
	// RPCRetries is how many extra attempts follow a timed-out first
	// attempt (per resolver candidate for child RPCs). Default 2; set -1
	// for zero retries.
	RPCRetries int
	// RPCBackoff is the pause before the first retry, doubling on each
	// further one. Default 5ms.
	RPCBackoff time.Duration
	// CacheRoutes enables the invalidation-aware route cache: Route
	// answers repeated (source, service graph, destination) questions from
	// cache until a state round, capability update, or crash/recovery in a
	// cluster the cached path depends on invalidates the entry. Default
	// off.
	CacheRoutes bool
	// CacheShards overrides the route cache's shard count (0 selects
	// routing.DefaultCacheShards). Ignored without CacheRoutes.
	CacheShards int
	// LinkPolicy, when non-nil, is consulted for every node-to-node
	// payload message (never for externally injected control traffic) and
	// can drop, delay, or duplicate it — the hook the chaos engine
	// (internal/chaos) injects link-level faults through. It must be safe
	// for concurrent use and is called on the sender's goroutine.
	LinkPolicy func(from, to int, kind MsgKind) LinkVerdict
	// Health configures the accrual failure detector (see health.go):
	// gray nodes — alive but silent or missing deadlines — accumulate
	// suspicion and are quarantined out of border election and
	// provider/resolver choice until they behave again. The zero value
	// disables it.
	Health HealthConfig
	// DegradedRoutes keeps a last-known-good result per (source, service
	// graph, destination): when every Route attempt times out — the
	// destination or its resolvers partitioned away — the stale result is
	// served with Result.Degraded set instead of an error. Default off.
	DegradedRoutes bool
}

// MsgKind identifies a runtime message class to the LinkPolicy hook.
type MsgKind int

// The message kinds a LinkPolicy can act on, mirroring the runtime's
// internal envelope kinds: §4 local-state floods, aggregate border
// exchange/forwards, the state-round trigger (control; never offered to the
// policy), §5 route and child RPCs, and data-plane forwards.
const (
	MsgLocal     MsgKind = MsgKind(kindLocal)
	MsgAggregate MsgKind = MsgKind(kindAggregate)
	MsgTrigger   MsgKind = MsgKind(kindTrigger)
	MsgRoute     MsgKind = MsgKind(kindRoute)
	MsgChild     MsgKind = MsgKind(kindChild)
	MsgData      MsgKind = MsgKind(kindData)
)

// String names the kind for traces.
func (k MsgKind) String() string {
	switch k {
	case MsgLocal:
		return "local"
	case MsgAggregate:
		return "aggregate"
	case MsgTrigger:
		return "trigger"
	case MsgRoute:
		return "route"
	case MsgChild:
		return "child"
	case MsgData:
		return "data"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// LinkVerdict is a LinkPolicy's decision for one message.
type LinkVerdict struct {
	// Drop loses the message (counted in FaultStats.DroppedByPolicy).
	Drop bool
	// Delay holds delivery back by this much wall-clock time, on top of
	// any configured DelayPerUnit latency.
	Delay time.Duration
	// Duplicate delivers a second copy of the message (after the same
	// delay) — retransmission storms and routing loops in one knob.
	Duplicate bool
}

func (c Config) withDefaults() Config {
	if c.MailboxSize == 0 {
		c.MailboxSize = 256
	}
	if c.RouteTimeout == 0 {
		c.RouteTimeout = 2 * time.Second
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 250 * time.Millisecond
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	} else if c.RPCRetries < 0 {
		c.RPCRetries = 0
	}
	if c.RPCBackoff == 0 {
		c.RPCBackoff = 5 * time.Millisecond
	}
	c.Health = c.Health.withDefaults()
	return c
}

// ErrRPCTimeout is returned (wrapped) when every attempt of a Route,
// Execute, or child RPC misses its deadline — the destination is crashed,
// unreachable, or every resolver candidate is down.
var ErrRPCTimeout = errors.New("rpc deadline exceeded")

// System is a running overlay of concurrent proxy nodes.
type System struct {
	topo *hfc.Topology
	// clock is the resolved time source (Config.Clock or a fresh Real);
	// sim is non-nil exactly when the clock is a *vtime.Sim — simulation
	// mode, where every System entry point runs on the Sim's single
	// runner and scheduler state needs no locking (baton-ordered).
	clock vtime.Clock
	sim   *vtime.Sim
	// capsMu protects the ground-truth deployment slice; stored sets are
	// treated as immutable (replaced, never mutated).
	capsMu sync.RWMutex
	caps   []svc.CapabilitySet // guarded by capsMu
	// capGen[i] is bumped whenever node i's deployment changes; floods
	// carry it so receivers that already hold the generation can take the
	// sequence-only fast path instead of re-installing an identical set.
	capGen []uint64 // guarded by capsMu
	// aggGenCtr issues System-unique aggregate generations: every border
	// that rebuilds its cluster union draws a fresh value, so a matching
	// generation at a receiver always means an identical set.
	aggGenCtr atomic.Uint64
	// repairEpoch[c] advances whenever some member of cluster c may have
	// missed an aggregate re-flood (a dropped forward, a recovery with
	// wiped tables). Borders skip the per-round intra-cluster re-flood of
	// an unchanged aggregate only while the epoch they last forwarded
	// under still stands; a bump forces one full repair re-flood.
	repairEpoch []atomic.Uint32
	cfg         Config
	nodes       []*node

	// stopCh closes when Stop begins, releasing RPC waits and retry
	// backoffs immediately instead of letting them sleep through shutdown.
	stopCh chan struct{}

	// simStopped mirrors `accepting == false` for simulation mode, where
	// all access is baton-ordered on the Sim runner and needs no lock.
	simStopped bool

	// dutyIn/dutyOut, in simulation mode, cache the round's border-duty
	// table: dutyIn[a*K+b] is the node in cluster a that terminates the
	// (a,b) border (dutyOut its peer in b), computed once per trigger
	// instead of n·K ranked-border lookups. Baton-ordered, sim-only.
	dutyIn, dutyOut []int32

	// inflight tracks undelivered/unprocessed messages so Quiesce can wait
	// for protocol cascades to settle.
	inflight sync.WaitGroup
	// mu guards the start/stop lifecycle flags.
	mu      sync.Mutex
	started bool // guarded by mu
	stopped bool // guarded by mu
	wg      sync.WaitGroup

	// sendMu serializes send admission against Stop: senders hold the
	// read side across the accepting check and the inflight.Add, Stop
	// takes the write side to flip accepting off, so a send can never
	// slip past Stop's inflight.Wait and hit a closed inbox.
	sendMu    sync.RWMutex
	accepting bool // guarded by sendMu

	// crashed[i] marks node i fail-stopped: every message addressed to it
	// is silently discarded (and counted) at send time.
	crashed []atomic.Bool

	// round is the §4 protocol round counter; every protocol message is
	// stamped with it so stale (delayed or replayed) floods are rejected
	// by the per-entry sequence check.
	round atomic.Uint64

	// dynMu guards the incremental §5.2 border maintainer that every
	// node view's BorderOverride consults: on crash/recovery only the
	// affected cluster's border elections are redone, instead of
	// rebuilding the whole topology.
	dynMu sync.RWMutex
	dyn   *hfc.Dynamic // guarded by dynMu

	// cache, when non-nil (Config.CacheRoutes), answers repeated Route
	// calls; it is internally synchronized, and cached results are shared
	// read-only values.
	cache *routing.RouteCache

	// dropRng drives fault injection; the *rand.Rand pointer is immutable
	// after New, but the generator's internal state is not concurrency-safe,
	// so every draw happens under dropMu.
	dropMu  sync.Mutex
	dropRng *rand.Rand
	faults  FaultStats // guarded by dropMu

	// statMu protects the delivered-message counters.
	statMu sync.Mutex
	stats  TrafficStats // guarded by statMu

	// lastHeard[i] is the highest protocol round in which some node
	// received a flood from node i — the silence signal the accrual
	// detector scores round gaps from. Nil when Health is disabled.
	lastHeard []atomic.Uint64

	// quarantined[i] marks node i suspected gray: still running and still
	// receiving traffic, but excluded from border election and
	// provider/resolver choice until its suspicion decays.
	quarantined []atomic.Bool

	// healthMu guards the suspicion scores and health counters; it is
	// never held together with dynMu (transitions decide under healthMu,
	// then apply under dynMu).
	healthMu    sync.Mutex
	suspicion   []float64   // guarded by healthMu
	healthStats HealthStats // guarded by healthMu

	// lkgMu guards the last-known-good route store for degraded serving.
	lkgMu sync.RWMutex
	lkg   map[routing.CacheKey]*routing.Result // guarded by lkgMu
}

// FaultStats counts fault-injection and recovery events in the runtime.
type FaultStats struct {
	// Dropped is the number of messages lost to random drop injection
	// (DropRate / ProtocolDropRate).
	Dropped int
	// DroppedToCrashed counts messages discarded because the destination
	// was crashed at send time.
	DroppedToCrashed int
	// DroppedAfterStop counts sends that arrived after Stop — counted
	// no-ops, never a panic.
	DroppedAfterStop int
	// DroppedBackpressure counts protocol messages shed because the
	// destination mailbox was full: the mailbox loop never blocks on a
	// saturated peer (that cycle is a distributed deadlock), and the next
	// periodic round resends everything anyway.
	DroppedBackpressure int
	// StaleRejected counts protocol messages rejected by the sequence
	// check (a delayed or replayed flood carrying an older round).
	StaleRejected int
	// RPCRetries counts re-sent route/child RPC attempts after a missed
	// deadline.
	RPCRetries int
	// ResolverFailovers counts child requests answered by an alternate
	// resolver after the designated one failed to reply.
	ResolverFailovers int
	// DroppedByPolicy and DuplicatedByPolicy count messages the LinkPolicy
	// hook (chaos injection) lost or doubled.
	DroppedByPolicy, DuplicatedByPolicy int
	// DegradedRoutes counts Route calls answered from the last-known-good
	// store after every fresh attempt timed out.
	DegradedRoutes int
}

// TrafficStats counts messages the runtime actually delivered, by kind.
type TrafficStats struct {
	// Local counts §4 local-state floods; Aggregate counts border
	// exchanges plus intra-cluster forwards (the synchronous model's
	// AggregateMessages + ForwardMessages).
	Local, Aggregate int
	// Route and Child count request-processing RPCs; Data counts
	// data-plane forwards (Execute).
	Route, Child, Data int
}

// Total returns the total delivered message count.
func (t TrafficStats) Total() int {
	return t.Local + t.Aggregate + t.Route + t.Child + t.Data
}

// message is the mailbox envelope. Exactly one field group is set.
//
// Capability payloads travel as shared immutable CapabilitySets — one set
// per flood, referenced by every receiver — instead of per-receiver service
// slices: at n=32k a single protocol round delivers ~10⁷ messages, and
// materializing a fresh set per delivery is the difference between a
// two-second round and a two-minute one. The runtime-wide convention that
// stored sets are replaced, never mutated, is what makes the sharing safe.
type message struct {
	// local-state flood (§4 step 1). localGen is the sender's capability
	// generation: a receiver that already installed this generation holds
	// byte-identical content and treats the flood as a no-op. Zero means
	// "unknown generation, always install". localRank is the sender's
	// index in its own (sorted) cluster membership — every cluster peer
	// shares that ordering, so stamping it once at send time saves each
	// receiver a per-message binary search.
	localFrom int
	localRank int
	localSet  svc.CapabilitySet
	localGen  uint64

	// aggregate-state exchange/forward (§4 step 2). aggGen identifies the
	// aggregate rebuild that produced aggSet (unique across the System): a
	// receiver that already installed this generation for aggCluster holds
	// byte-identical content and skips the table write. Zero means
	// "unknown generation, always install".
	aggCluster int
	aggSet     svc.CapabilitySet
	aggGen     uint64
	aggForward bool // true when this node must re-flood it intra-cluster

	// broadcast trigger (control).
	trigger bool

	// seq is the protocol round the message belongs to (local/aggregate/
	// trigger kinds); receivers reject entries older than what they hold.
	seq uint64

	// route request (full §5 routing at this node).
	routeReq   *svc.Request
	routeReply *replyTo[routeReply]

	// child request (intra-cluster resolution at this node).
	childReq   *routing.ChildRequest
	childReply *replyTo[childReply]

	// data-plane stream step (see execute.go).
	data *dataMsg

	kind msgKind
}

// replyTo carries one RPC answer back to its waiting caller: a buffered
// channel under the real clock, a vtime.Future under the virtual one
// (parking the calling task instead of blocking a goroutine in a select).
type replyTo[T any] struct {
	ch  chan T
	fut *vtime.Future[T]
}

// newReply builds the mode-appropriate reply cell.
func newReply[T any](s *System) *replyTo[T] {
	if s.sim != nil {
		return &replyTo[T]{fut: vtime.NewFuture[T](s.sim)}
	}
	return &replyTo[T]{ch: make(chan T, 1)}
}

// deliver hands the answer over without ever blocking the handler: a late
// or duplicated reply to an abandoned attempt parks in the buffer (real) or
// loses the first-write race (sim) and is discarded.
func (r *replyTo[T]) deliver(v T) {
	if r.fut != nil {
		r.fut.Complete(v)
		return
	}
	select {
	case r.ch <- v:
	default:
	}
}

// await blocks the caller for an answer, one RPC attempt's deadline, or
// shutdown, whichever is first; ok reports whether an answer arrived.
func (r *replyTo[T]) await(s *System, d time.Duration) (v T, ok bool) {
	if r.fut != nil {
		return r.fut.AwaitTimeout(d)
	}
	timeout := make(chan struct{})
	tm := s.clock.AfterFunc(d, func() { close(timeout) })
	select {
	case v = <-r.ch:
		tm.Stop()
		return v, true
	case <-timeout:
		return v, false
	case <-s.stopCh:
		// Shutdown: give up immediately instead of sleeping out the
		// deadline; the caller surfaces it as a timeout.
		tm.Stop()
		return v, false
	}
}

type msgKind int

const (
	kindLocal msgKind = iota + 1
	kindAggregate
	kindTrigger
	kindRoute
	kindChild
	kindData
)

type routeReply struct {
	result *routing.Result
	err    error
}

type childReply struct {
	path *routing.Path
	err  error
}

// node is one proxy's runtime.
type node struct {
	id   int
	sys  *System
	view *hfc.NodeView
	// rank is this node's own index in view.Members, stamped on floods so
	// receivers skip the lookup (immutable after New).
	rank int
	// inbox is the real-mode mailbox; nil in simulation mode, where
	// deliveries run inline as scheduler events.
	inbox chan message

	// st guards the node's routing state, which worker goroutines read.
	st    sync.RWMutex
	state state.NodeState // guarded by st
	// genSeen[r] is the capability generation last installed from the
	// cluster member with rank r in view.Members — the token that lets a
	// re-flood of unchanged capabilities skip the set install (and, via
	// aggDirty, skip re-unioning the cluster aggregate).
	genSeen []uint64 // guarded by st
	// aggGenSeen[c] is the aggregate generation last installed for cluster
	// c — the cluster-level counterpart of genSeen that lets the per-round
	// aggregate re-flood skip the SeqC/SCTC map writes when nothing
	// changed.
	aggGenSeen []uint64 // guarded by st
	// fwdEpoch[c] is the repair epoch of this node's own cluster at the
	// time it last re-flooded cluster c's aggregate intra-cluster.
	fwdEpoch []uint32 // guarded by st
	// aggCache is the node's current union over SCTP, rebuilt only when
	// aggDirty — without it every border node re-unions |C| sets every
	// round, which dominates large-scale rounds. aggGen identifies the
	// rebuild (drawn from System.aggGenCtr, so generations never collide
	// across borders).
	aggCache svc.CapabilitySet // guarded by st
	aggGen   uint64            // guarded by st
	aggDirty bool              // guarded by st
}

// rankOf returns member's index in the node's (sorted) cluster membership,
// or -1 for a non-member.
func (n *node) rankOf(member int) int {
	lo, hi := 0, len(n.view.Members)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.view.Members[mid] < member {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.view.Members) && n.view.Members[lo] == member {
		return lo
	}
	return -1
}

// New builds a system over a constructed HFC topology and per-proxy
// capabilities. Call Start to launch the goroutines.
func New(topo *hfc.Topology, caps []svc.CapabilitySet, cfg Config) (*System, error) {
	if topo == nil {
		return nil, errors.New("overlay: nil topology")
	}
	if len(caps) != topo.N() {
		return nil, fmt.Errorf("overlay: %d capability sets for %d nodes", len(caps), topo.N())
	}
	cfg = cfg.withDefaults()
	if cfg.MailboxSize < 1 {
		return nil, fmt.Errorf("overlay: mailbox size %d must be >= 1", cfg.MailboxSize)
	}
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("overlay: drop rate %v outside [0,1]", cfg.DropRate)
	}
	if cfg.ProtocolDropRate < 0 || cfg.ProtocolDropRate > 1 {
		return nil, fmt.Errorf("overlay: protocol drop rate %v outside [0,1]", cfg.ProtocolDropRate)
	}
	var cache *routing.RouteCache
	if cfg.CacheRoutes {
		shards := cfg.CacheShards
		if shards == 0 {
			shards = routing.DefaultCacheShards
		}
		cache = routing.NewRouteCacheSharded(shards)
	}
	s := &System{topo: topo, caps: caps, cfg: cfg, accepting: true,
		dyn: hfc.NewDynamic(topo), cache: cache, stopCh: make(chan struct{})}
	s.clock = cfg.Clock
	if s.clock == nil {
		s.clock = vtime.NewReal()
	}
	if sim, ok := s.clock.(*vtime.Sim); ok {
		s.sim = sim
	}
	s.capsMu.Lock()
	s.capGen = make([]uint64, topo.N())
	for i := range s.capGen {
		s.capGen[i] = 1
	}
	s.capsMu.Unlock()
	s.repairEpoch = make([]atomic.Uint32, topo.NumClusters())
	if cfg.DropRate > 0 || cfg.ProtocolDropRate > 0 {
		s.dropRng = rand.New(rand.NewSource(cfg.DropSeed))
	}
	s.crashed = make([]atomic.Bool, topo.N())
	s.quarantined = make([]atomic.Bool, topo.N())
	if cfg.Health.Enabled {
		s.lastHeard = make([]atomic.Uint64, topo.N())
		s.healthMu.Lock()
		s.suspicion = make([]float64, topo.N())
		s.healthMu.Unlock()
	}
	if cfg.DegradedRoutes {
		s.lkgMu.Lock()
		s.lkg = make(map[routing.CacheKey]*routing.Result)
		s.lkgMu.Unlock()
	}
	s.nodes = make([]*node, topo.N())
	for i := range s.nodes {
		// SharedView aliases the topology's border tables and membership
		// and serves coordinates on demand — O(1) per node where the
		// materialized View's per-node copies are O(K²), which is what
		// lets a 100k-node system construct in seconds. The runtime never
		// mutates a view's shared maps. ResolveCoord doubles as the
		// Fig. 4 coordinate hand-off for promoted backup borders.
		view, err := topo.SharedView(i)
		if err != nil {
			return nil, fmt.Errorf("overlay: %w", err)
		}
		// The runtime's crash registry plus the accrual quarantine set
		// double as every node's failure detector: border selection and
		// intra-cluster provider choice skip nodes reported dead or
		// suspected gray. A deployment would plug a gossip or heartbeat
		// detector in here.
		view.Alive = func(id int) bool { return !s.IsCrashed(id) && !s.IsQuarantined(id) }
		// Border lookups consult the incrementally maintained live
		// elections first (§5.2): with no churn they return exactly the
		// static primaries; after a crash they return the re-elected
		// closest live pair for the affected cluster's links.
		view.BorderOverride = func(a, b int) (int, int, bool) {
			s.dynMu.RLock()
			defer s.dynMu.RUnlock()
			return s.dyn.Border(a, b)
		}
		// Every node knows its own cluster's aggregate of what it has seen
		// so far (initially just itself).
		s.nodes[i] = &node{
			id:   i,
			sys:  s,
			view: view,
			state: state.NodeState{
				Node: i,
				SCTP: map[int]svc.CapabilitySet{i: caps[i].Clone()},
				SCTC: map[int]svc.CapabilitySet{view.ClusterID: caps[i].Clone()},
			},
			genSeen:    make([]uint64, len(view.Members)),
			aggGenSeen: make([]uint64, topo.NumClusters()),
			fwdEpoch:   make([]uint32, topo.NumClusters()),
			aggDirty:   true,
		}
		s.nodes[i].rank = s.nodes[i].rankOf(i)
		if s.sim == nil {
			s.nodes[i].inbox = make(chan message, cfg.MailboxSize)
		}
	}
	return s, nil
}

// Start launches one goroutine per node — or, in simulation mode, just
// arms the system: deliveries run inline on the Sim scheduler and need no
// resident goroutines. It is an error to start twice.
func (s *System) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("overlay: already started")
	}
	s.started = true
	if s.sim != nil {
		return nil
	}
	for _, n := range s.nodes {
		s.wg.Add(1)
		go func(n *node) {
			defer s.wg.Done()
			n.run()
		}(n)
	}
	return nil
}

// Stop shuts the system down and waits for every node goroutine to exit.
// Safe to call once; subsequent calls return an error. Sends racing Stop
// are counted no-ops (FaultStats.DroppedAfterStop), never a panic. RPC
// waits and retry backoffs in flight are released immediately (stopCh)
// instead of sleeping out their deadlines.
func (s *System) Stop() error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.mu.Unlock()
		return errors.New("overlay: not running")
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	// Refuse new sends, wait for in-flight traffic, then close inboxes.
	// The write lock cannot be acquired while a sender is between its
	// accepting check and its inflight.Add, so every admitted message is
	// covered by the Wait below.
	s.sendMu.Lock()
	s.accepting = false
	s.sendMu.Unlock()
	if s.sim != nil {
		// No goroutines or inboxes to tear down; pending deliveries on
		// the scheduler observe simStopped and drop.
		s.simStopped = true
		return nil
	}
	s.inflight.Wait()
	for _, n := range s.nodes {
		close(n.inbox)
	}
	s.wg.Wait()
	return nil
}

// addInflight / doneInflight bracket one tracked message in real mode; the
// simulation scheduler tracks its own work, so they are no-ops there (a
// message processed inline has no "in flight" window at all).
func (s *System) addInflight() {
	if s.sim == nil {
		s.inflight.Add(1)
	}
}

func (s *System) doneInflight() {
	if s.sim == nil {
		s.inflight.Done()
	}
}

// send delivers a message to node `to`, optionally after the simulated
// network delay from node `from` (-1 for external injection, no delay).
// Messages to crashed nodes and sends after Stop are counted no-ops; all
// payload kinds are subject to the configured drop rates and the LinkPolicy
// hook (trigger messages are control-plane injections and never drop
// randomly; external injections never face the link policy — a client's
// request enters at its destination, it does not cross simulated links).
func (s *System) send(from, to int, m message) {
	if s.crashed[to].Load() {
		s.dropMu.Lock()
		s.faults.DroppedToCrashed++
		s.dropMu.Unlock()
		return
	}
	var extra time.Duration
	duplicate := false
	if s.cfg.LinkPolicy != nil && from >= 0 && from != to && m.kind != kindTrigger {
		v := s.cfg.LinkPolicy(from, to, MsgKind(m.kind))
		if v.Drop {
			s.dropMu.Lock()
			s.faults.DroppedByPolicy++
			s.dropMu.Unlock()
			s.noteAggDrop(to, m)
			return
		}
		extra = v.Delay
		duplicate = v.Duplicate
	}
	if s.dropRng != nil && m.kind != kindTrigger {
		rate := s.cfg.DropRate
		if (m.kind == kindLocal || m.kind == kindAggregate) && s.cfg.ProtocolDropRate > rate {
			rate = s.cfg.ProtocolDropRate
		}
		if rate > 0 {
			s.dropMu.Lock()
			drop := s.dropRng.Float64() < rate
			if drop {
				s.faults.Dropped++
			}
			s.dropMu.Unlock()
			if drop {
				s.noteAggDrop(to, m)
				return
			}
		}
	}
	s.deliver(from, to, m, extra)
	if duplicate {
		s.dropMu.Lock()
		s.faults.DuplicatedByPolicy++
		s.dropMu.Unlock()
		// The copy takes the same delay; the protocol's sequence checks
		// make duplicated floods idempotent, RPC replies park in their
		// buffered reply channels.
		s.deliver(from, to, m, extra)
	}
}

// deliver admits one message past the Stop gate and hands it to the
// destination mailbox, after the simulated link delay (configured latency
// plus any policy-injected extra) when there is one.
func (s *System) deliver(from, to int, m message, extra time.Duration) {
	d := extra
	if from >= 0 && from != to {
		if s.cfg.DelayPerUnit > 0 {
			d += time.Duration(s.topo.Dist(from, to)) * s.cfg.DelayPerUnit
		}
		if s.cfg.Latency != nil {
			d += s.cfg.Latency(from, to)
		}
	}
	if s.sim != nil {
		s.simDeliver(from, to, m, d)
		return
	}
	s.sendMu.RLock()
	if !s.accepting {
		s.sendMu.RUnlock()
		s.dropMu.Lock()
		s.faults.DroppedAfterStop++
		s.dropMu.Unlock()
		return
	}
	s.inflight.Add(1)
	s.sendMu.RUnlock()
	deliver := func() {
		// Safe against Stop: the message is registered in inflight, and
		// Stop only closes inboxes after inflight drains.
		s.nodes[to].inbox <- m
		s.count(from, m)
	}
	if d > 0 {
		s.clock.AfterFunc(d, deliver)
		return
	}
	if (m.kind == kindLocal || m.kind == kindAggregate) && from >= 0 {
		// Protocol sends originate from a node's mailbox loop; blocking
		// there on a saturated peer can close a cycle of full mailboxes
		// into a distributed deadlock. The periodic protocol resends
		// everything next round, so backpressure degrades to a counted
		// drop instead.
		select {
		case s.nodes[to].inbox <- m:
			s.count(from, m)
		default:
			s.inflight.Done()
			s.dropMu.Lock()
			s.faults.DroppedBackpressure++
			s.dropMu.Unlock()
			s.noteAggDrop(to, m)
		}
		return
	}
	deliver()
}

// simDeliver is delivery in simulation mode: a delayed message becomes a
// scheduler event; an immediate one is processed inline, depth-first, on
// the current task — protocol kinds mutate the receiver's state directly,
// while RPC kinds (which park awaiting answers) get their own cooperative
// task. There is no mailbox, no backpressure shedding (an event queue has
// no fixed capacity), and no inflight accounting (Quiesce maps to the
// scheduler's own idle detection).
func (s *System) simDeliver(from, to int, m message, d time.Duration) {
	if d > 0 {
		s.sim.AfterFunc(d, func() { s.simDeliver(from, to, m, 0) })
		return
	}
	if s.simStopped {
		s.dropMu.Lock()
		s.faults.DroppedAfterStop++
		s.dropMu.Unlock()
		return
	}
	s.count(from, m)
	n := s.nodes[to]
	switch m.kind {
	case kindRoute:
		s.sim.Go("route", func() { n.handleRoute(m) })
	case kindChild:
		s.sim.Go("child", func() { n.handleChild(m) })
	case kindData:
		s.sim.Go("data", func() { n.handleData(m) })
	default:
		n.process(m)
	}
}

// noteAggDrop records that a node lost an aggregate message, so its
// cluster may now hold a stale member: the cluster's repair epoch advances
// and every border repeats the intra-cluster re-flood on its next
// exchange, even for generations it already forwarded.
func (s *System) noteAggDrop(to int, m message) {
	if m.kind != kindAggregate {
		return
	}
	s.repairEpoch[s.nodes[to].view.ClusterID].Add(1)
}

// count tallies one delivered message and feeds the health detector's
// heard-from signal.
func (s *System) count(from int, m message) {
	s.statMu.Lock()
	switch m.kind {
	case kindLocal:
		s.stats.Local++
	case kindAggregate:
		s.stats.Aggregate++
	case kindRoute:
		s.stats.Route++
	case kindChild:
		s.stats.Child++
	case kindData:
		s.stats.Data++
	}
	s.statMu.Unlock()
	if s.lastHeard != nil && from >= 0 && (m.kind == kindLocal || m.kind == kindAggregate) {
		s.noteHeard(from, m.seq)
	}
}

// TriggerStateRound makes every node broadcast its local state and, at
// border proxies, aggregate and exchange cluster state — one full round of
// the §4 protocol. Call Quiesce to wait for convergence. Crashed nodes
// neither receive the trigger nor broadcast.
func (s *System) TriggerStateRound() {
	seq := s.round.Add(1)
	// Health transitions happen on the protocol tick, before the round's
	// floods go out: re-elected borders take effect for this round, and
	// the evaluation point is deterministic given the message history.
	if s.cfg.Health.Enabled {
		s.evaluateHealth(seq)
	}
	// A full protocol round refreshes every cluster's state: all cached
	// routes are stale against what nodes are about to learn.
	if s.cache != nil {
		s.cache.AdvanceAll()
	}
	if s.sim != nil {
		s.computeDuty()
	}
	for i := range s.nodes {
		s.send(-1, i, message{kind: kindTrigger, trigger: true, seq: seq})
	}
}

// computeDuty materializes this round's border-duty table for simulation
// mode: K² ranked-border lookups once per round, instead of every node
// scanning all K clusters through the locked Border path (n·K lookups).
// Border assignments are cluster-symmetric, so any node's view answers for
// all of them.
func (s *System) computeDuty() {
	k := s.topo.NumClusters()
	if s.dutyIn == nil {
		s.dutyIn = make([]int32, k*k)
		s.dutyOut = make([]int32, k*k)
	}
	v := s.nodes[0].view
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			inA, inB, err := v.Border(a, b)
			if err != nil {
				inA, inB = -1, -1
			}
			s.dutyIn[a*k+b], s.dutyOut[a*k+b] = int32(inA), int32(inB)
			s.dutyIn[b*k+a], s.dutyOut[b*k+a] = int32(inB), int32(inA)
		}
	}
}

// Quiesce blocks until all in-flight messages (and the messages they
// caused) have been processed. In simulation mode it parks the calling
// task until the scheduler is idle — every delayed delivery and timer
// cascade drained.
func (s *System) Quiesce() {
	if s.sim != nil {
		s.sim.WaitIdle()
		return
	}
	s.inflight.Wait()
}

// DroppedMessages reports how many messages random fault injection has
// discarded so far (drops to crashed nodes are counted separately; see
// FaultCounters).
func (s *System) DroppedMessages() int {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	return s.faults.Dropped
}

// FaultCounters snapshots the fault-injection and recovery counters.
func (s *System) FaultCounters() FaultStats {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	return s.faults
}

// Traffic snapshots the delivered-message counters.
func (s *System) Traffic() TrafficStats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// UpdateCapability changes a proxy's installed services at runtime. The
// change propagates on the NEXT protocol round — exactly the periodic
// §4 behaviour; until then other nodes route on stale state, which is safe
// because paths are validated against the live deployment at execution
// time in a real system.
func (s *System) UpdateCapability(node int, set svc.CapabilitySet) error {
	if node < 0 || node >= len(s.nodes) {
		return fmt.Errorf("overlay: node %d out of range [0,%d)", node, len(s.nodes))
	}
	if set == nil {
		return errors.New("overlay: nil capability set")
	}
	s.capsMu.Lock()
	s.caps[node] = set.Clone()
	// A new generation: receivers must install the fresh set instead of
	// taking the unchanged-capability fast path.
	s.capGen[node]++
	s.capsMu.Unlock()
	n := s.nodes[node]
	n.st.Lock()
	n.state.SCTP[node] = set.Clone()
	n.aggDirty = true
	n.st.Unlock()
	// Cached routes through this proxy's cluster may rely on the old
	// deployment; invalidate them. The last-known-good store is cleared
	// outright: degraded serving promises stale-but-valid paths, and
	// validity is against the deployment, which just changed.
	if s.cache != nil {
		s.cache.AdvanceRound(s.topo.ClusterOf(node))
	}
	if s.cfg.DegradedRoutes {
		s.lkgMu.Lock()
		clear(s.lkg)
		s.lkgMu.Unlock()
	}
	return nil
}

// capsOf returns node i's current capability set (immutable once stored).
func (s *System) capsOf(i int) svc.CapabilitySet {
	s.capsMu.RLock()
	defer s.capsMu.RUnlock()
	return s.caps[i]
}

// Capabilities snapshots the current ground-truth deployment.
func (s *System) Capabilities() []svc.CapabilitySet {
	s.capsMu.RLock()
	defer s.capsMu.RUnlock()
	out := make([]svc.CapabilitySet, len(s.caps))
	for i, c := range s.caps {
		out[i] = c.Clone()
	}
	return out
}

// Converged reports whether every node's state currently matches the
// synchronous model's converged tables — the check failure-recovery tests
// poll between protocol rounds.
func (s *System) Converged() (bool, error) {
	if s.sim != nil {
		// Simulation mode is baton-ordered: the verifier can read the live
		// tables through aliases instead of deep-copying every node.
		return state.VerifyConvergence(s.topo, s.Capabilities(), s.simStates()) == nil, nil
	}
	states, err := s.States()
	if err != nil {
		return false, err
	}
	return state.VerifyConvergence(s.topo, s.Capabilities(), states) == nil, nil
}

// Route injects a service request at its destination proxy and waits for
// the composed service path, exactly as a client would. Each attempt is
// bounded by Config.RouteTimeout; missed deadlines (a crashed or
// unreachable destination, a dropped request) are retried with exponential
// backoff up to Config.RPCRetries times before failing with ErrRPCTimeout —
// or, with Config.DegradedRoutes, falling back to the last-known-good
// result for the same request, tagged Degraded (stale but never invented).
func (s *System) Route(req svc.Request) (*routing.Result, error) {
	if err := req.Validate(s.topo.N()); err != nil {
		return nil, err
	}
	var key routing.CacheKey
	var canonical string
	var version uint64
	if s.cache != nil || s.cfg.DegradedRoutes {
		canonical = req.SG.Canonical()
		key = routing.NewCacheKeyCanonical(req.Source, req.Dest, canonical)
	}
	if s.cache != nil {
		if v, ok := s.cache.Get(key, canonical); ok {
			// Cached results are shared read-only values.
			res := v.(*routing.Result)
			s.storeLKG(key, res)
			return res, nil
		}
		version = s.cache.Version()
	}
	backoff := s.cfg.RPCBackoff
	for attempt := 0; ; attempt++ {
		// A fresh reply cell per attempt: a late reply to an abandoned
		// attempt parks harmlessly in its own buffer.
		reply := newReply[routeReply](s)
		r := req
		s.send(-1, req.Dest, message{kind: kindRoute, routeReq: &r, routeReply: reply})
		if out, ok := reply.await(s, s.cfg.RouteTimeout); ok {
			s.noteRPCOutcome(req.Dest, true)
			if out.err == nil && out.result != nil {
				if s.cache != nil {
					s.cache.Put(key, canonical, out.result, s.routeClusters(out.result, req), version)
				}
				s.storeLKG(key, out.result)
			}
			if out.err != nil && errors.Is(out.err, ErrRPCTimeout) {
				// The destination answered but could not reach the
				// resolvers it needed — partitioned mid-resolution.
				if res, ok := s.degradedResult(key); ok {
					return res, nil
				}
			}
			return out.result, out.err
		}
		s.noteRPCOutcome(req.Dest, false)
		if attempt == s.cfg.RPCRetries {
			if res, ok := s.degradedResult(key); ok {
				return res, nil
			}
			return nil, fmt.Errorf("overlay: route to %d after %d attempts: %w", req.Dest, attempt+1, ErrRPCTimeout)
		}
		s.noteRPCRetry()
		if !s.backoffWait(backoff) {
			return nil, fmt.Errorf("overlay: route to %d: shut down during retry backoff: %w", req.Dest, ErrRPCTimeout)
		}
		backoff *= 2
	}
}

// backoffWait pauses a retry loop for d on the injected clock, returning
// false when the system shut down during the wait — callers must abandon
// the retry instead of sending into a stopped system. Under the real clock
// this is the shutdown-interruptible replacement for time.Sleep; under the
// virtual clock it parks the task (Stop cannot happen mid-wait there, as
// both run on the same scheduler, so the check happens on wake).
func (s *System) backoffWait(d time.Duration) bool {
	if s.sim != nil {
		s.sim.Sleep(d)
		return !s.simStopped
	}
	done := make(chan struct{})
	tm := s.clock.AfterFunc(d, func() { close(done) })
	select {
	case <-done:
		return true
	case <-s.stopCh:
		tm.Stop()
		return false
	}
}

// routeClusters lists every cluster a resolved route depends on — the CSP's
// provider clusters, the cluster of every hop proxy on the composed path,
// and both endpoint clusters — so the cache entry goes stale exactly when
// one of them advances. Duplicates are fine; the cache deduplicates.
func (s *System) routeClusters(res *routing.Result, req svc.Request) []int {
	out := []int{s.topo.ClusterOf(req.Source), s.topo.ClusterOf(req.Dest)}
	for _, e := range res.CSP {
		out = append(out, e.Cluster)
	}
	if res.Path != nil {
		for _, h := range res.Path.Hops {
			out = append(out, s.topo.ClusterOf(h.Node))
		}
	}
	return out
}

// RouteCacheStats snapshots the route cache's counters; ok is false when
// caching is disabled.
func (s *System) RouteCacheStats() (stats routing.CacheStats, ok bool) {
	if s.cache == nil {
		return routing.CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// StateOf snapshots a node's current routing state (deep copy).
func (s *System) StateOf(id int) (state.NodeState, error) {
	if id < 0 || id >= len(s.nodes) {
		return state.NodeState{}, fmt.Errorf("overlay: node %d out of range [0,%d)", id, len(s.nodes))
	}
	n := s.nodes[id]
	n.st.RLock()
	defer n.st.RUnlock()
	out := state.NodeState{
		Node: id,
		SCTP: make(map[int]svc.CapabilitySet, len(n.state.SCTP)),
		SCTC: make(map[int]svc.CapabilitySet, len(n.state.SCTC)),
		SeqP: make(map[int]uint64, len(n.state.SeqP)),
		SeqC: make(map[int]uint64, len(n.state.SeqC)),
	}
	for k, v := range n.state.SCTP {
		out.SCTP[k] = v.Clone()
	}
	for k, v := range n.state.SCTC {
		out.SCTC[k] = v.Clone()
	}
	for k, v := range n.state.SeqP {
		out.SeqP[k] = v
	}
	for k, v := range n.state.SeqC {
		out.SeqC[k] = v
	}
	return out, nil
}

// States snapshots every node's state, aligned by node index.
func (s *System) States() ([]state.NodeState, error) {
	out := make([]state.NodeState, len(s.nodes))
	for i := range s.nodes {
		st, err := s.StateOf(i)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// run is the node's real-mode mailbox loop. Protocol messages mutate state
// inline; route and child requests are dispatched to worker goroutines so a
// node blocked composing a path keeps serving child requests (no
// distributed deadlock). Simulation mode has no mailbox: simDeliver calls
// process (or spawns a task) directly.
func (n *node) run() {
	for m := range n.inbox {
		switch m.kind {
		case kindLocal, kindAggregate, kindTrigger:
			n.process(m)
			n.sys.inflight.Done()
		case kindRoute:
			go n.handleRoute(m)
		case kindChild:
			go n.handleChild(m)
		case kindData:
			// A data chain sends onward from inside the handler; run it off
			// the mailbox loop so a full downstream inbox can never stall
			// message consumption (and thus never deadlock a cycle).
			go n.handleData(m)
		}
	}
}

// process applies one protocol message — the non-blocking kinds shared
// verbatim by the mailbox loop and the simulation scheduler.
func (n *node) process(m message) {
	switch m.kind {
	case kindLocal:
		n.applyLocal(m)
	case kindAggregate:
		n.applyAggregate(m)
	case kindTrigger:
		n.broadcast(m.seq)
	}
}

// applyLocal installs a local-state flood. When the flood carries the
// capability generation the node already holds for that origin, the
// message is a pure no-op — the steady-state path that keeps a no-churn
// round free of map writes and aggregate re-unions.
func (n *node) applyLocal(m message) {
	// Fast path: the flood carries a capability generation this node has
	// already installed from this origin, so its content is byte-identical
	// to the stored entry and the whole message is a no-op — no map touch
	// at all. At ~10⁷ floods per large simulated round, this is the
	// difference between seconds and minutes. The sender-stamped rank is
	// validated against the shared membership before it is trusted.
	r := m.localRank
	ranked := r >= 0 && r < len(n.view.Members) && n.view.Members[r] == m.localFrom
	n.st.Lock()
	if ranked && m.localGen != 0 && n.genSeen[r] == m.localGen {
		n.st.Unlock()
		return
	}
	if !ranked {
		r = n.rankOf(m.localFrom)
	}
	ok := n.state.ApplyLocal(m.localFrom, m.seq, m.localSet)
	if ok {
		if r >= 0 {
			n.genSeen[r] = m.localGen
		}
		n.aggDirty = true
	}
	n.st.Unlock()
	if !ok {
		n.sys.noteStaleRejected()
	}
}

// applyAggregate installs an aggregate-state entry and, at a receiving
// border, re-floods it intra-cluster (§4 step 2). A message carrying an
// aggregate generation this node has already installed is byte-identical
// to the stored entry, so the table write is skipped. The border re-flood
// of a known generation is also skipped — unless the cluster's repair
// epoch advanced since this border last forwarded it, meaning some member
// may have missed a forward (drop, crash/recovery) and needs the repeat.
func (n *node) applyAggregate(m message) {
	c := m.aggCluster
	n.st.Lock()
	inRange := c >= 0 && c < len(n.aggGenSeen)
	known := m.aggGen != 0 && inRange && n.aggGenSeen[c] == m.aggGen
	ok := known
	if !known {
		ok = n.state.ApplyAggregate(c, m.seq, m.aggSet)
		if ok && inRange {
			n.aggGenSeen[c] = m.aggGen
		}
	}
	fwd := false
	if ok && m.aggForward {
		ep := n.sys.repairEpoch[n.view.ClusterID].Load()
		fwd = !known || !inRange || n.fwdEpoch[c] != ep
		if fwd && inRange {
			// Stamp the epoch only when the forward actually goes out; a
			// bump that lands during or after these sends leaves the
			// stamp behind and forces another repair round.
			n.fwdEpoch[c] = ep
		}
	}
	n.st.Unlock()
	if !ok {
		n.sys.noteStaleRejected()
		return
	}
	if fwd {
		n.forwardAggregate(c, m.aggSet, m.aggGen, m.seq)
	}
}

// broadcast floods this node's local state to its cluster and, if it is
// the preferred live border toward some cluster, aggregates its cluster's
// (currently known) capability and sends it across the external link. With
// the failure detector wired into the view, border duty migrates to the
// first live backup pair when a primary border endpoint is crashed.
func (n *node) broadcast(seq uint64) {
	s := n.sys
	s.capsMu.RLock()
	services := s.caps[n.id] // immutable once stored; shared by every flood copy
	gen := s.capGen[n.id]
	s.capsMu.RUnlock()
	flood := message{kind: kindLocal, localFrom: n.id, localRank: n.rank, localSet: services, localGen: gen, seq: seq}
	for _, member := range n.view.Members {
		if member == n.id {
			continue
		}
		s.send(n.id, member, flood)
	}
	// Border duty: for each cluster pair this node currently terminates
	// (primary, or backup promoted by the failure detector), send the
	// aggregate of its own cluster. The union over SCTP is cached and
	// rebuilt only when some member's installed set actually changed.
	n.st.Lock()
	if n.aggDirty || n.aggCache == nil {
		sets := make([]svc.CapabilitySet, 0, len(n.state.SCTP))
		for _, set := range n.state.SCTP {
			//hfcvet:ignore maporder set union is commutative; the aggregate is identical in any order
			sets = append(sets, set)
		}
		n.aggCache = svc.Union(sets...)
		n.aggGen = s.aggGenCtr.Add(1)
		n.aggDirty = false
	}
	agg, aggGen := n.aggCache, n.aggGen
	n.st.Unlock()
	own := n.view.ClusterID
	exchange := message{kind: kindAggregate, aggCluster: own, aggSet: agg, aggGen: aggGen, aggForward: true, seq: seq}
	if duty := s.dutyIn; duty != nil {
		// Simulation mode: the round's duty table answers "which pairs do
		// I terminate" with K array reads instead of K locked ranked-border
		// elections per node.
		k := n.view.NumClusters
		base := own * k
		for other := 0; other < k; other++ {
			if other == own || duty[base+other] != int32(n.id) {
				continue
			}
			s.send(n.id, int(s.dutyOut[base+other]), exchange)
		}
	} else {
		for other := 0; other < n.view.NumClusters; other++ {
			if other == own {
				continue
			}
			inOwn, inOther, err := n.view.Border(own, other)
			if err != nil || inOwn != n.id {
				continue
			}
			s.send(n.id, inOther, exchange)
		}
	}
	// Record our own cluster's aggregate locally (generation-guarded like
	// any other receiver).
	n.st.Lock()
	if n.aggGenSeen[own] != aggGen {
		if n.state.ApplyAggregate(own, seq, agg) {
			n.aggGenSeen[own] = aggGen
		}
	}
	n.st.Unlock()
}

// forwardAggregate re-floods a received aggregate to the rest of this
// node's cluster (§4 step 2, receiving border's duty).
func (n *node) forwardAggregate(cluster int, set svc.CapabilitySet, gen, seq uint64) {
	fwd := message{kind: kindAggregate, aggCluster: cluster, aggSet: set, aggGen: gen, seq: seq}
	for _, member := range n.view.Members {
		if member == n.id {
			continue
		}
		n.sys.send(n.id, member, fwd)
	}
}

// handleRoute performs the full §5 procedure at this (destination) node.
//
// The cluster-level search picks clusters from SCT_C aggregates, which are
// blind to individual crashes inside foreign clusters: a cluster whose only
// provider of some service is down still looks viable, and its child
// request then fails with no live provider. When that happens the route is
// recomputed with the failed (cluster, service) combinations banned via the
// ClusterAdmissible hook, steering the CSP to an alternate provider cluster
// — route-level backtracking around crashed providers.
func (n *node) handleRoute(m message) {
	defer n.sys.doneInflight()
	n.st.RLock()
	snapshot := n.state
	// Routing only reads the tables; holding the read lock for the whole
	// computation would block protocol updates, so deep-copy instead.
	stCopy := state.NodeState{Node: n.id, SCTP: map[int]svc.CapabilitySet{}, SCTC: map[int]svc.CapabilitySet{}}
	for k, v := range snapshot.SCTP {
		stCopy.SCTP[k] = v.Clone()
	}
	for k, v := range snapshot.SCTC {
		stCopy.SCTC[k] = v.Clone()
	}
	n.st.RUnlock()

	type ban struct {
		cluster int
		service svc.Service
	}
	banned := map[ban]bool{}
	var res *routing.Result
	var err error
	for attempt := 0; attempt <= n.view.NumClusters; attempt++ {
		solver := &rpcSolver{n: n}
		router := &routing.HierarchicalRouter{
			View:            n.view,
			State:           &stCopy,
			Intra:           solver,
			ClusterOfSource: n.sys.topo.ClusterOf,
			Mode:            routing.RelaxBacktrack,
		}
		if len(banned) > 0 {
			router.ClusterAdmissible = func(s svc.Service, c int) bool {
				return !banned[ban{cluster: c, service: s}]
			}
		}
		res, err = router.Route(*m.routeReq)
		if err == nil || solver.failedChild == nil ||
			!(errors.Is(err, routing.ErrNoProviders) || errors.Is(err, routing.ErrInfeasible)) {
			break
		}
		// The child doesn't say which of its services lacked a live
		// provider; ban them all in that cluster — at worst the next CSP
		// is slightly longer.
		fc := solver.failedChild
		grew := false
		for _, s := range fc.Services {
			if !banned[ban{cluster: fc.Cluster, service: s}] {
				banned[ban{cluster: fc.Cluster, service: s}] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	m.routeReply.deliver(routeReply{result: res, err: err})
}

// handleChild resolves a child request against this node's own SCT_P.
func (n *node) handleChild(m message) {
	defer n.sys.doneInflight()
	path, err := n.solveChildLocal(*m.childReq)
	m.childReply.deliver(childReply{path: path, err: err})
}

// solveChildLocal is the §5.2 intra-cluster computation using this node's
// privately accumulated SCT_P.
func (n *node) solveChildLocal(child routing.ChildRequest) (*routing.Path, error) {
	if len(child.Services) == 0 {
		if child.Source == child.Dest {
			return &routing.Path{Hops: []routing.Hop{{Node: child.Source}}}, nil
		}
		d, err := n.view.Dist(child.Source, child.Dest)
		if err != nil {
			return nil, err
		}
		return &routing.Path{
			Hops:         []routing.Hop{{Node: child.Source}, {Node: child.Dest}},
			DecisionCost: d,
		}, nil
	}
	sg, err := svc.Linear(child.Services...)
	if err != nil {
		return nil, err
	}
	n.st.RLock()
	providers := func(x svc.Service) []int {
		var out []int
		for _, member := range n.view.Members {
			// Skip providers the failure detector reports dead: a path
			// through a crashed proxy would only fail at execution time.
			if n.view.Alive != nil && !n.view.Alive(member) {
				continue
			}
			if set, ok := n.state.SCTP[member]; ok && set.Has(x) {
				out = append(out, member)
			}
		}
		return out
	}
	defer n.st.RUnlock()
	oracle := routing.OracleFunc(func(u, v int) float64 {
		d, err := n.view.Dist(u, v)
		if err != nil {
			// Intra-cluster endpoints are always in the view; an error
			// here is a harness bug.
			panic(err)
		}
		return d
	})
	req := svc.Request{Source: child.Source, Dest: child.Dest, SG: sg}
	return routing.FindPath(req, providers, oracle, nil)
}

// rpcSolver sends child requests to their resolver proxies and waits for
// the answers — the conquer phase as actual message exchange. A child whose
// resolver is this node is solved inline (a node does not RPC itself).
//
// Each RPC attempt is bounded by Config.RPCTimeout and retried (with
// exponential backoff) up to Config.RPCRetries times; when a resolver keeps
// missing its deadline — crashed, or its replies keep being dropped — the
// solver re-issues the child request to the next candidate resolver of the
// target cluster (routing.ResolverCandidates), since any member holding the
// cluster's SCT_P can answer.
type rpcSolver struct {
	n *node
	// failedChild records the child whose resolution failed semantically
	// (no provider / infeasible), so handleRoute can ban its cluster-service
	// combinations and recompute the CSP around the failure.
	failedChild *routing.ChildRequest
}

var _ routing.IntraSolver = (*rpcSolver)(nil)

// SolveChild implements routing.IntraSolver.
func (s *rpcSolver) SolveChild(child routing.ChildRequest) (*routing.Path, error) {
	sys := s.n.sys
	candidates := routing.ResolverCandidates(s.n.view, child)
	tried := 0
	for ci, resolver := range candidates {
		// The failure detector prunes known-dead candidates; the designated
		// resolver is still attempted when every candidate looks dead, so
		// detector false positives degrade to a timeout, not a wrong answer.
		if s.n.view.Alive != nil && !s.n.view.Alive(resolver) {
			continue
		}
		tried++
		c := child
		c.Resolver = resolver
		path, err := s.solveAt(c)
		if err == nil {
			if ci > 0 {
				sys.noteResolverFailover()
			}
			return path, nil
		}
		if !errors.Is(err, ErrRPCTimeout) {
			// A semantic failure (no provider, unsatisfiable graph) is the
			// same at every resolver — converged SCT_Ps agree — so failing
			// over would only repeat it.
			c := child
			s.failedChild = &c
			return nil, err
		}
	}
	if tried == 0 {
		c := child
		return s.solveAt(c)
	}
	return nil, fmt.Errorf("overlay: child request for cluster %d: all %d resolver candidates failed: %w",
		child.Cluster, tried, ErrRPCTimeout)
}

// solveAt runs the deadline+retry loop against one specific resolver.
func (s *rpcSolver) solveAt(child routing.ChildRequest) (*routing.Path, error) {
	if child.Resolver == s.n.id {
		return s.n.solveChildLocal(child)
	}
	sys := s.n.sys
	backoff := sys.cfg.RPCBackoff
	for attempt := 0; ; attempt++ {
		reply := newReply[childReply](sys)
		c := child
		sys.send(s.n.id, child.Resolver, message{kind: kindChild, childReq: &c, childReply: reply})
		if out, ok := reply.await(sys, sys.cfg.RPCTimeout); ok {
			sys.noteRPCOutcome(child.Resolver, true)
			if out.err != nil {
				return nil, fmt.Errorf("overlay: child request at %d: %w", child.Resolver, out.err)
			}
			return out.path, nil
		}
		sys.noteRPCOutcome(child.Resolver, false)
		if attempt == sys.cfg.RPCRetries {
			return nil, fmt.Errorf("overlay: child request at %d: %d attempts: %w", child.Resolver, attempt+1, ErrRPCTimeout)
		}
		sys.noteRPCRetry()
		if !sys.backoffWait(backoff) {
			return nil, fmt.Errorf("overlay: child request at %d: shut down during retry backoff: %w", child.Resolver, ErrRPCTimeout)
		}
		backoff *= 2
	}
}
