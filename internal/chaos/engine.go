// Package chaos is a deterministic, seeded fault-injection engine for the
// overlay runtime: asymmetric partitions between node sets, per-link loss,
// latency inflation and jitter, duplication, and delay-based reordering,
// driven by a scripted timeline of inject/heal events aligned to protocol
// rounds.
//
// Determinism is the point. Every verdict is a pure hash of (engine seed,
// directed link, message kind, per-link message index) — no shared random
// stream whose draw order would depend on goroutine scheduling — so the same
// seed and schedule produce the same drops, the same duplicates, and the
// same event trace, run after run, even though the overlay executes with
// real concurrency. The trace (schedule events plus sorted per-link counter
// summaries) is byte-identical across runs and is what the regression tests
// snapshot.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hfc/internal/overlay"
)

// Fault is one named impairment of a set of directed links. The zero scope
// (nil From/To/Kinds) matches every payload message; Cut and the rates then
// apply to each matching message independently.
type Fault struct {
	// ID names the fault for Heal calls and trace lines. Required, unique
	// among simultaneously active faults.
	ID string
	// From and To scope the fault to messages from a node in From to a node
	// in To; nil means "any node". Symmetric also matches the reverse
	// direction — a full partition instead of an asymmetric one.
	From, To  []int
	Symmetric bool
	// Kinds restricts the fault to specific message classes (nil = all).
	Kinds []overlay.MsgKind
	// Cut loses every matching message — a partition edge.
	Cut bool
	// Drop loses each matching message with this probability.
	Drop float64
	// DelayMS holds every matching message back by this many simulated
	// milliseconds; JitterMS adds a uniform draw from [0, JitterMS) on top.
	DelayMS, JitterMS float64
	// DuplicateRate delivers a second copy of a matching message with this
	// probability.
	DuplicateRate float64
	// ReorderRate holds a matching message back by ReorderDelayMS with this
	// probability, letting later sends overtake it — reordering expressed
	// as selective lateness. ReorderDelayMS defaults to 1ms when a rate is
	// set without it.
	ReorderRate    float64
	ReorderDelayMS float64
}

// Partition builds a cut between two node sets: traffic a→b is lost, and
// b→a too when symmetric. A nil set means "every node" — note that
// isolating a group therefore takes an explicit complement for b (a nil b
// would cut the group's internal links as well).
func Partition(id string, a, b []int, symmetric bool) Fault {
	return Fault{ID: id, From: a, To: b, Symmetric: symmetric, Cut: true}
}

// Validate checks the fault's rates and scope.
func (f Fault) Validate() error {
	if f.ID == "" {
		return fmt.Errorf("chaos: fault with empty ID")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"DuplicateRate", f.DuplicateRate}, {"ReorderRate", f.ReorderRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: fault %q: %s %v outside [0,1]", f.ID, r.name, r.v)
		}
	}
	if f.DelayMS < 0 || f.JitterMS < 0 || f.ReorderDelayMS < 0 {
		return fmt.Errorf("chaos: fault %q: negative delay", f.ID)
	}
	if !f.Cut && f.Drop == 0 && f.DelayMS == 0 && f.JitterMS == 0 &&
		f.DuplicateRate == 0 && f.ReorderRate == 0 {
		return fmt.Errorf("chaos: fault %q does nothing", f.ID)
	}
	return nil
}

// activeFault is a Fault with its scope sets precomputed.
type activeFault struct {
	Fault
	from, to map[int]struct{} // nil = wildcard
	kinds    map[overlay.MsgKind]struct{}
}

func newActive(f Fault) *activeFault {
	a := &activeFault{Fault: f}
	if f.ReorderRate > 0 && f.ReorderDelayMS == 0 {
		a.ReorderDelayMS = 1
	}
	toSet := func(ids []int) map[int]struct{} {
		if ids == nil {
			return nil
		}
		m := make(map[int]struct{}, len(ids))
		for _, id := range ids {
			m[id] = struct{}{}
		}
		return m
	}
	a.from, a.to = toSet(f.From), toSet(f.To)
	if f.Kinds != nil {
		a.kinds = make(map[overlay.MsgKind]struct{}, len(f.Kinds))
		for _, k := range f.Kinds {
			a.kinds[k] = struct{}{}
		}
	}
	return a
}

func inSet(m map[int]struct{}, id int) bool {
	if m == nil {
		return true
	}
	_, ok := m[id]
	return ok
}

func (a *activeFault) matches(from, to int, kind overlay.MsgKind) bool {
	if a.kinds != nil {
		if _, ok := a.kinds[kind]; !ok {
			return false
		}
	}
	if inSet(a.from, from) && inSet(a.to, to) {
		return true
	}
	return a.Symmetric && inSet(a.from, to) && inSet(a.to, from)
}

// linkKey identifies one directed link and message class for the counters.
type linkKey struct {
	from, to int
	kind     overlay.MsgKind
}

// linkCounters tallies one directed link's chaos outcomes.
type linkCounters struct {
	seen, dropped, duplicated, delayed uint64
}

// Engine holds the active fault set and implements the overlay's LinkPolicy.
// Inject and Heal are meant to be called between quiesced protocol rounds
// (the Runner does); Policy itself is safe for concurrent use.
type Engine struct {
	seed  uint64
	scale time.Duration

	mu     sync.Mutex
	active []*activeFault            // guarded by mu
	links  map[linkKey]*linkCounters // guarded by mu
}

// DefaultScale converts a fault's simulated milliseconds to wall-clock time:
// 100µs per simulated ms keeps drill runtimes in check while preserving the
// ordering effects delays exist to cause.
const DefaultScale = 100 * time.Microsecond

// NewEngine creates an engine. All verdicts derive from seed; scale is the
// wall-clock duration of one simulated millisecond (0 selects DefaultScale).
func NewEngine(seed uint64, scale time.Duration) *Engine {
	if scale <= 0 {
		scale = DefaultScale
	}
	return &Engine{seed: seed, scale: scale, links: make(map[linkKey]*linkCounters)}
}

// Inject activates a fault. The ID must not collide with an active fault.
func (e *Engine) Inject(f Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, a := range e.active {
		if a.ID == f.ID {
			return fmt.Errorf("chaos: fault %q already active", f.ID)
		}
	}
	e.active = append(e.active, newActive(f))
	return nil
}

// Heal deactivates a fault by ID, reporting whether it was active.
func (e *Engine) Heal(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, a := range e.active {
		if a.ID == id {
			e.active = append(e.active[:i], e.active[i+1:]...)
			return true
		}
	}
	return false
}

// HealAll deactivates every fault and returns how many there were.
func (e *Engine) HealAll() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.active)
	e.active = nil
	return n
}

// Active returns the IDs of currently active faults in injection order.
func (e *Engine) Active() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.active))
	for i, a := range e.active {
		out[i] = a.ID
	}
	return out
}

// Policy is the overlay LinkPolicy: it merges the active faults matching the
// message's directed link and kind, then decides drop/delay/duplicate from
// the seeded hash of the link's message index. With no matching fault the
// message passes untouched (but is still counted, so traces also record the
// healthy traffic volume on previously faulted links).
func (e *Engine) Policy(from, to int, kind overlay.MsgKind) overlay.LinkVerdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := linkKey{from: from, to: to, kind: kind}
	lc := e.links[key]
	if lc == nil {
		lc = &linkCounters{}
		e.links[key] = lc
	}
	idx := lc.seen
	lc.seen++

	var m Fault
	matched := false
	for _, a := range e.active {
		if !a.matches(from, to, kind) {
			continue
		}
		matched = true
		m.Cut = m.Cut || a.Cut
		m.Drop = max(m.Drop, a.Drop)
		m.DelayMS += a.DelayMS
		m.JitterMS = max(m.JitterMS, a.JitterMS)
		m.DuplicateRate = max(m.DuplicateRate, a.DuplicateRate)
		if a.ReorderRate > m.ReorderRate {
			m.ReorderRate, m.ReorderDelayMS = a.ReorderRate, a.ReorderDelayMS
		}
	}
	if !matched {
		return overlay.LinkVerdict{}
	}

	// Four independent unit draws from one hashed stream: drop, duplicate,
	// jitter, reorder. The stream depends only on (seed, link, kind, idx).
	h := mix64(e.seed, uint64(uint32(from)), uint64(uint32(to)), uint64(kind), idx)
	uDrop, h := unit(h)
	uDup, h := unit(h)
	uJit, h := unit(h)
	uReord, _ := unit(h)

	var v overlay.LinkVerdict
	if m.Cut || uDrop < m.Drop {
		lc.dropped++
		v.Drop = true
		return v
	}
	delayMS := m.DelayMS + uJit*m.JitterMS
	if uReord < m.ReorderRate {
		delayMS += m.ReorderDelayMS
	}
	if delayMS > 0 {
		lc.delayed++
		v.Delay = time.Duration(delayMS * float64(e.scale))
	}
	if uDup < m.DuplicateRate {
		lc.duplicated++
		v.Duplicate = true
	}
	return v
}

// Summary renders the per-link counters of every link a fault ever touched
// (dropped, duplicated, or delayed at least one message), sorted, one line
// per directed link and kind. Together with the schedule's event lines this
// is the deterministic trace.
func (e *Engine) Summary() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]linkKey, 0, len(e.links))
	for k, lc := range e.links {
		if lc.dropped+lc.duplicated+lc.delayed > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.kind < b.kind
	})
	out := make([]string, len(keys))
	for i, k := range keys {
		lc := e.links[k]
		out[i] = fmt.Sprintf("link %d->%d %s: seen=%d dropped=%d dup=%d delayed=%d",
			k.from, k.to, k.kind, lc.seen, lc.dropped, lc.duplicated, lc.delayed)
	}
	return out
}

// ResetCounters clears the per-link counters (not the active faults).
func (e *Engine) ResetCounters() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.links = make(map[linkKey]*linkCounters)
}

// splitmix64 is the standard 64-bit mixer (Steele et al.) — tiny, fast, and
// good enough to decorrelate the per-message draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix64 folds the inputs into one hash state.
func mix64(vals ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unit advances the hash stream one step and returns a uniform draw in
// [0, 1) plus the next state.
func unit(h uint64) (float64, uint64) {
	next := splitmix64(h)
	return float64(next>>11) / (1 << 53), next
}
