package chaos

import (
	"fmt"

	"hfc/internal/hfc"
	"hfc/internal/overlay"
	"hfc/internal/routing"
	"hfc/internal/svc"
)

// Checker verifies the invariants the paper's design promises even under
// faults, on every route the drill resolves:
//
//   - §3 relay bound: between any two consecutive service-performing hops
//     (or an endpoint and the nearest service hop), a route crosses at most
//     MaxOverlayHops−1 pure relays — the border pair plus nothing else.
//   - Correctness: the path answers the request against the ground-truth
//     deployment (endpoints, service placement, graph feasibility). This
//     holds for degraded results too: stale may be slower, never wrong.
//   - Liveness of fresh results: a non-degraded route never crosses a
//     proxy the runtime itself knows is crashed — serving a fresh route
//     through a known-dead hop would be the stale-route bug the cache
//     invalidation exists to prevent.
type Checker struct {
	Topo *hfc.Topology
	// Caps is the ground-truth deployment the drill holds fixed.
	Caps []svc.CapabilitySet
}

// MaxRelayRun returns the longest run of consecutive pure-relay hops in the
// path (service-performing hops and the endpoints break runs).
func MaxRelayRun(p *routing.Path) int {
	longest, run := 0, 0
	for i, h := range p.Hops {
		if i > 0 && i < len(p.Hops)-1 && h.Service == "" {
			run++
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}

// CheckResult verifies one resolved route against the invariants above.
func (c *Checker) CheckResult(sys *overlay.System, req svc.Request, res *routing.Result) error {
	if res == nil || res.Path == nil {
		return fmt.Errorf("chaos: nil result for request %d->%d", req.Source, req.Dest)
	}
	if err := res.Path.Validate(req, c.Caps); err != nil {
		return fmt.Errorf("chaos: route %d->%d (degraded=%v) invalid against ground truth: %w",
			req.Source, req.Dest, res.Degraded, err)
	}
	if run := MaxRelayRun(res.Path); run > hfc.MaxOverlayHops-1 {
		return fmt.Errorf("chaos: route %d->%d crosses %d consecutive relays, §3 bound is %d: %v",
			req.Source, req.Dest, run, hfc.MaxOverlayHops-1, res.Path)
	}
	if !res.Degraded {
		for _, h := range res.Path.Hops {
			if sys.IsCrashed(h.Node) {
				return fmt.Errorf("chaos: fresh route %d->%d crosses crashed node %d: %v",
					req.Source, req.Dest, h.Node, res.Path)
			}
		}
	}
	return nil
}
