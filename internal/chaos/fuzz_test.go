package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"hfc/internal/overlay"
)

// fuzzNodes is the node-ID space the fuzzed schedules act on.
const fuzzNodes = 24

// decodeSchedule turns arbitrary bytes into a valid chaos schedule over
// fuzzNodes node IDs: 6 bytes per event (op, two nodes, a rate, a round
// advance, a magnitude), ending with a heal-all so every decoded timeline is
// a "heals eventually" schedule. The decoder is total: any input yields a
// schedule that passes Validate.
func decodeSchedule(data []byte) Schedule {
	var sched Schedule
	round, nextID := 1, 0
	var active []string
	for ; len(data) >= 6 && len(sched) < 12; data = data[6:] {
		op, a, b := data[0]%4, int(data[1])%fuzzNodes, int(data[2])%fuzzNodes
		rate := float64(data[3]) / 256
		round += int(data[4]) % 3
		mag := float64(data[5]%4) + 1
		switch op {
		case 0:
			id := fmt.Sprintf("f%d", nextID)
			nextID++
			active = append(active, id)
			sched = append(sched, Event{Round: round,
				Inject: []Fault{Partition(id, []int{a}, []int{b}, data[5]%2 == 0)}})
		case 1:
			id := fmt.Sprintf("f%d", nextID)
			nextID++
			active = append(active, id)
			sched = append(sched, Event{Round: round, Inject: []Fault{{
				ID: id, From: []int{a}, To: []int{b},
				Drop: rate * 0.9, DelayMS: mag, JitterMS: mag,
				DuplicateRate: rate / 2, ReorderRate: rate / 2,
			}}})
		case 2:
			if len(active) == 0 {
				continue
			}
			i := int(data[1]) % len(active)
			id := active[i]
			active = append(active[:i], active[i+1:]...)
			sched = append(sched, Event{Round: round, Heal: []string{id}})
		case 3:
			if len(active) == 0 {
				continue
			}
			active = nil
			sched = append(sched, Event{Round: round, Heal: []string{"*"}})
		}
	}
	sched = append(sched, Event{Round: round + 1, Heal: []string{"*"}})
	return sched
}

// FuzzChaosSchedule checks, for arbitrary decoded schedules, that (a) the
// decoder only emits schedules Validate accepts, and (b) two engines with
// the same seed replaying the same schedule against the same message stream
// agree on every verdict and on the final trace summary — the determinism
// property the overlay drills rely on, explored over fault-space instead of
// the handful of hand-written timelines.
func FuzzChaosSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 9, 200, 1, 2, 1, 3, 17, 128, 1, 1, 3, 0, 0, 0, 1, 0}, uint64(7))
	f.Add([]byte{1, 0, 23, 255, 0, 3, 1, 5, 5, 64, 2, 1, 2, 0, 0, 0, 0, 0}, uint64(42))
	f.Add([]byte{0, 8, 16, 10, 2, 0}, uint64(1))
	kinds := []overlay.MsgKind{overlay.MsgLocal, overlay.MsgAggregate,
		overlay.MsgRoute, overlay.MsgChild, overlay.MsgData}
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		sched := decodeSchedule(data)
		if err := sched.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid schedule: %v\n%+v", err, sched)
		}
		ea, eb := NewEngine(seed, 0), NewEngine(seed, 0)
		apply := func(e *Engine, ev Event) error {
			for _, id := range ev.Heal {
				if id == "*" {
					e.HealAll()
					continue
				}
				if !e.Heal(id) {
					return fmt.Errorf("heal %q missed", id)
				}
			}
			for _, fault := range ev.Inject {
				if err := e.Inject(fault); err != nil {
					return err
				}
			}
			return nil
		}
		msg := 0
		for _, ev := range sched {
			errA, errB := apply(ea, ev), apply(eb, ev)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("engines diverged applying %+v: %v vs %v", ev, errA, errB)
			}
			if errA != nil {
				// The decoder tracks the active set, so this is a bug.
				t.Fatalf("decoded schedule failed to apply: %v", errA)
			}
			// A burst of traffic between events, spread over links/kinds.
			for i := 0; i < 40; i++ {
				from := (msg*7 + 1) % fuzzNodes
				to := (msg*11 + 3) % fuzzNodes
				msg++
				if from == to {
					continue
				}
				kind := kinds[msg%len(kinds)]
				va, vb := ea.Policy(from, to, kind), eb.Policy(from, to, kind)
				if va != vb {
					t.Fatalf("verdict diverged at message %d (%d->%d %s): %+v vs %+v",
						msg, from, to, kind, va, vb)
				}
			}
		}
		if sa, sb := ea.Summary(), eb.Summary(); !reflect.DeepEqual(sa, sb) {
			t.Fatalf("summaries diverged:\n%v\n%v", sa, sb)
		}
		if got := ea.Active(); len(got) != 0 {
			t.Fatalf("schedule ended with active faults: %v", got)
		}
	})
}
