package chaos

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/overlay"
	"hfc/internal/routing"
	"hfc/internal/svc"
)

// fixture builds the 3-cluster, 24-node overlay topology the drills run on.
func fixture(t *testing.T, seed int64) (*hfc.Topology, []svc.CapabilitySet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []coords.Point
	for c := 0; c < 3; c++ {
		for i := 0; i < 8; i++ {
			pts = append(pts, coords.Point{float64(c)*300 + rng.Float64()*30, rng.Float64() * 30})
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	res, err := cluster.Cluster(len(pts), cmap.Dist, cluster.DefaultConfig())
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	topo, err := hfc.Build(cmap, res)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cat, err := svc.NewCatalog(12)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, len(pts), cat, 2, 5)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	return topo, caps
}

// drillConfig is the overlay configuration the chaos drills use: fast RPC
// deadlines, the accrual detector, degraded serving, route caching, and the
// engine wired in as the link policy.
func drillConfig(eng *Engine) overlay.Config {
	return overlay.Config{
		RouteTimeout:   50 * time.Millisecond,
		RPCTimeout:     15 * time.Millisecond,
		RPCRetries:     1,
		RPCBackoff:     time.Millisecond,
		LinkPolicy:     eng.Policy,
		Health:         overlay.HealthConfig{Enabled: true, MaxScore: 4},
		DegradedRoutes: true,
		CacheRoutes:    true,
	}
}

func startSys(t *testing.T, topo *hfc.Topology, caps []svc.CapabilitySet, cfg overlay.Config) *overlay.System {
	t.Helper()
	sys, err := overlay.New(topo, caps, cfg)
	if err != nil {
		t.Fatalf("overlay.New: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = sys.Stop() })
	return sys
}

func rounds(sys *overlay.System, n int) {
	for i := 0; i < n; i++ {
		sys.TriggerStateRound()
		sys.Quiesce()
	}
}

// splitSets partitions the node IDs into cluster c vs everyone else.
func splitSets(topo *hfc.Topology, c int) (minority, majority []int) {
	for i := 0; i < topo.N(); i++ {
		if topo.ClusterOf(i) == c {
			minority = append(minority, i)
		} else {
			majority = append(majority, i)
		}
	}
	return minority, majority
}

func TestFaultValidate(t *testing.T) {
	cases := []Fault{
		{},                          // empty ID
		{ID: "x"},                   // does nothing
		{ID: "x", Drop: 1.5},        // rate out of range
		{ID: "x", DelayMS: -1},      // negative delay
		{ID: "x", ReorderRate: -.1}, // negative rate
	}
	for i, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid fault accepted", i, f)
		}
	}
	ok := Fault{ID: "ok", Drop: 0.5, DelayMS: 2, JitterMS: 1, DuplicateRate: 0.1, ReorderRate: 0.2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
	if err := Partition("p", []int{1}, []int{2}, true).Validate(); err != nil {
		t.Errorf("partition rejected: %v", err)
	}
}

func TestEngineInjectHealActive(t *testing.T) {
	eng := NewEngine(1, 0)
	if err := eng.Inject(Partition("a", []int{0}, []int{1}, false)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if err := eng.Inject(Partition("a", []int{2}, []int{3}, false)); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := eng.Inject(Fault{ID: "b", Drop: 0.5}); err != nil {
		t.Fatalf("Inject b: %v", err)
	}
	if got := eng.Active(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Active = %v, want [a b]", got)
	}
	if !eng.Heal("a") || eng.Heal("a") {
		t.Error("Heal(a) should succeed once")
	}
	if n := eng.HealAll(); n != 1 {
		t.Errorf("HealAll = %d, want 1", n)
	}
}

func TestEngineVerdictDeterminismAndScope(t *testing.T) {
	mk := func(seed uint64) *Engine {
		e := NewEngine(seed, 0)
		if err := e.Inject(Fault{ID: "loss", From: []int{0}, To: []int{1}, Drop: 0.5,
			JitterMS: 2, DuplicateRate: 0.3}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		if err := e.Inject(Partition("cut", []int{2}, []int{3}, true)); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		return e
	}
	a, b := mk(7), mk(7)
	differsFromC := false
	c := mk(8)
	for i := 0; i < 200; i++ {
		va, vb := a.Policy(0, 1, overlay.MsgLocal), b.Policy(0, 1, overlay.MsgLocal)
		if va != vb {
			t.Fatalf("draw %d: same seed diverged: %+v vs %+v", i, va, vb)
		}
		if vc := c.Policy(0, 1, overlay.MsgLocal); vc != va {
			differsFromC = true
		}
	}
	if !differsFromC {
		t.Error("200 draws identical across different seeds")
	}
	if !reflect.DeepEqual(a.Summary(), b.Summary()) {
		t.Error("same-seed engines produced different summaries")
	}
	// The cut is symmetric and absolute; unrelated links are untouched.
	for i := 0; i < 10; i++ {
		if !a.Policy(2, 3, overlay.MsgChild).Drop || !a.Policy(3, 2, overlay.MsgChild).Drop {
			t.Fatal("cut link delivered")
		}
	}
	if v := a.Policy(4, 5, overlay.MsgLocal); v != (overlay.LinkVerdict{}) {
		t.Errorf("unfaulted link got verdict %+v", v)
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{{Round: 0, Heal: []string{"x"}}}).Validate(); err == nil {
		t.Error("round 0 accepted")
	}
	if err := (Schedule{{Round: 1}}).Validate(); err == nil {
		t.Error("empty event accepted")
	}
	if err := (Schedule{{Round: 1, Inject: []Fault{{}}}}).Validate(); err == nil {
		t.Error("invalid fault accepted")
	}
	if err := (Schedule{{Round: 1, Heal: []string{""}}}).Validate(); err == nil {
		t.Error("empty heal ID accepted")
	}
	s := Schedule{
		{Round: 2, Inject: []Fault{Partition("p", []int{0}, []int{1}, true)}},
		{Round: 5, Heal: []string{"*"}},
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if got := s.LastRound(); got != 5 {
		t.Errorf("LastRound = %d, want 5", got)
	}
}

func TestRunnerHealUnknownFaultErrors(t *testing.T) {
	topo, caps := fixture(t, 20)
	eng := NewEngine(20, 0)
	sys := startSys(t, topo, caps, drillConfig(eng))
	r := &Runner{Sys: sys, Engine: eng, Schedule: Schedule{{Round: 1, Heal: []string{"ghost"}}}}
	if _, err := r.Run(); err == nil {
		t.Error("healing an inactive fault did not error")
	}
}

// TestRunnerTraceDeterminism is the tentpole guarantee: two fresh systems,
// same seed, same schedule — byte-identical event traces despite the real
// goroutine-per-node concurrency underneath.
func TestRunnerTraceDeterminism(t *testing.T) {
	run := func(engSeed uint64) *Report {
		topo, caps := fixture(t, 21)
		minority, majority := splitSets(topo, 2)
		eng := NewEngine(engSeed, 0)
		sys := startSys(t, topo, caps, drillConfig(eng))
		sched := Schedule{
			{Round: 3, Inject: []Fault{
				Partition("split", minority, majority, true),
				{ID: "flaky", From: []int{majority[0]}, To: []int{majority[1]},
					Drop: 0.4, JitterMS: 1, DuplicateRate: 0.3, ReorderRate: 0.2},
			}},
			{Round: 7, Heal: []string{"*"}},
		}
		rep, err := (&Runner{Sys: sys, Engine: eng, Schedule: sched}).Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	a, b := run(42), run(42)
	ta, tb := strings.Join(a.Trace, "\n"), strings.Join(b.Trace, "\n")
	if ta != tb {
		t.Fatalf("same seed+schedule produced different traces:\n--- run A ---\n%s\n--- run B ---\n%s", ta, tb)
	}
	if len(a.Trace) < 4 {
		t.Fatalf("trace suspiciously short: %v", a.Trace)
	}
	if !a.Converged || a.ReconvergeRounds < 0 || a.ReconvergeRounds > 10 {
		t.Fatalf("run did not reconverge promptly: %+v", a)
	}
	if other := run(43); strings.Join(other.Trace, "\n") == ta {
		t.Error("different seed produced an identical trace")
	}
}

// TestPartitionHealDrill is the acceptance drill: a minority cluster is
// partitioned away; requests that must cross the cut are served from
// last-known-good state, tagged degraded and still correct against the
// ground-truth deployment; after the heal the overlay reconverges within a
// bounded number of rounds, quarantines drain, border elections return to
// the static optimum, and the same requests resolve fresh again.
func TestPartitionHealDrill(t *testing.T) {
	topo, caps := fixture(t, 22)
	minority, majority := splitSets(topo, 2)
	if len(minority) < 2 {
		t.Fatal("fixture cluster 2 too small")
	}
	// A service only the majority provides forces the drill request's
	// resolution across the cut.
	unique := svc.Service("chaos-unique")
	var majProvider int = -1
	for _, m := range majority {
		if topo.ClusterOf(m) == 0 {
			majProvider = m
			break
		}
	}
	caps[majProvider] = caps[majProvider].Clone()
	caps[majProvider].Add(unique)

	eng := NewEngine(22, 0)
	sys := startSys(t, topo, caps, drillConfig(eng))
	check := &Checker{Topo: topo, Caps: caps}
	rounds(sys, 2)

	sg, err := svc.Linear(unique)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: minority[0], Dest: minority[1], SG: sg}
	fresh, err := sys.Route(req)
	if err != nil {
		t.Fatalf("warm Route: %v", err)
	}
	if fresh.Degraded {
		t.Fatal("warm result degraded")
	}
	if err := check.CheckResult(sys, req, fresh); err != nil {
		t.Fatalf("warm result violates invariants: %v", err)
	}

	// Partition: cluster 2 cannot reach the rest of the overlay.
	if err := eng.Inject(Partition("split", minority, majority, true)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	rounds(sys, 2)
	stale, err := sys.Route(req)
	if err != nil {
		t.Fatalf("Route under partition: %v", err)
	}
	if !stale.Degraded {
		t.Fatal("cross-cut route under partition not served degraded")
	}
	// Degraded may be stale, never wrong: it still validates against the
	// (unchanged) ground-truth deployment and respects the §3 relay bound.
	if err := check.CheckResult(sys, req, stale); err != nil {
		t.Fatalf("degraded result violates invariants: %v", err)
	}
	if fc := sys.FaultCounters(); fc.DegradedRoutes == 0 || fc.DroppedByPolicy == 0 {
		t.Fatalf("FaultCounters = %+v, want DegradedRoutes > 0 and DroppedByPolicy > 0", fc)
	}

	// Heal. Reconvergence must be bounded, quarantines must drain, and the
	// live border elections must return to the fresh-rebuild optimum.
	eng.HealAll()
	reconverged := -1
	for r := 1; r <= 15; r++ {
		rounds(sys, 1)
		ok, err := sys.ConvergedLive()
		if err != nil {
			t.Fatalf("ConvergedLive: %v", err)
		}
		if ok {
			reconverged = r
			break
		}
	}
	if reconverged < 0 {
		t.Fatal("no reconvergence within 15 rounds of the heal")
	}
	t.Logf("reconverged %d round(s) after heal", reconverged)
	for r := 0; r < 20 && len(sys.QuarantinedNodes()) > 0; r++ {
		rounds(sys, 1)
	}
	if q := sys.QuarantinedNodes(); len(q) != 0 {
		t.Fatalf("quarantines never drained after heal: %v (suspicion of first: %v)",
			q, sys.SuspicionLevel(q[0]))
	}
	fresh2 := hfc.NewDynamic(topo)
	if err := fresh2.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if got, want := sys.BorderSnapshot(), fresh2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("post-heal border state diverges from a fresh rebuild")
	}
	again, err := sys.Route(req)
	if err != nil {
		t.Fatalf("post-heal Route: %v", err)
	}
	if again.Degraded {
		t.Fatal("post-heal route still served degraded — stale cache behavior")
	}
	if err := check.CheckResult(sys, req, again); err != nil {
		t.Fatalf("post-heal result violates invariants: %v", err)
	}
}

// TestScheduledChaosAlwaysReconverges is the reconvergence property: any
// schedule that ends fully healed leaves the overlay reconverged within the
// runner's bound and the border tables DeepEqual to a fresh rebuild.
func TestScheduledChaosAlwaysReconverges(t *testing.T) {
	topo, caps := fixture(t, 23)
	minority, majority := splitSets(topo, 2)
	scheds := []Schedule{
		{ // asymmetric partition, then a gray link, healed in stages
			{Round: 2, Inject: []Fault{Partition("oneway", minority, majority, false)}},
			{Round: 4, Inject: []Fault{{ID: "gray", From: []int{majority[0]}, Drop: 0.7}}},
			{Round: 6, Heal: []string{"oneway"}},
			{Round: 8, Heal: []string{"gray"}},
		},
		{ // flapping full partition
			{Round: 2, Inject: []Fault{Partition("flap", minority, majority, true)}},
			{Round: 3, Heal: []string{"flap"}},
			{Round: 4, Inject: []Fault{Partition("flap", minority, majority, true)}},
			{Round: 6, Heal: []string{"*"}},
		},
		{ // pure latency storm: delay, jitter, duplication, reordering
			{Round: 2, Inject: []Fault{{ID: "storm", DelayMS: 1, JitterMS: 2,
				DuplicateRate: 0.4, ReorderRate: 0.3}}},
			{Round: 7, Heal: []string{"storm"}},
		},
	}
	for i, sched := range scheds {
		eng := NewEngine(uint64(100+i), 0)
		sys := startSys(t, topo, caps, drillConfig(eng))
		rep, err := (&Runner{Sys: sys, Engine: eng, Schedule: sched, ReconvergeCap: 20}).Run()
		if err != nil {
			t.Fatalf("schedule %d: Run: %v", i, err)
		}
		if !rep.Converged {
			t.Fatalf("schedule %d: not reconverged after %d rounds", i, rep.RoundsRun)
		}
		t.Logf("schedule %d: reconverged %d round(s) after last event", i, rep.ReconvergeRounds)
		for r := 0; r < 20 && len(sys.QuarantinedNodes()) > 0; r++ {
			rounds(sys, 1)
		}
		if q := sys.QuarantinedNodes(); len(q) != 0 {
			t.Fatalf("schedule %d: quarantines never drained: %v", i, q)
		}
		fresh := hfc.NewDynamic(topo)
		if err := fresh.Rebuild(); err != nil {
			t.Fatalf("Rebuild: %v", err)
		}
		if got, want := sys.BorderSnapshot(), fresh.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("schedule %d: healed border state diverges from fresh rebuild", i)
		}
		if err := sys.Stop(); err != nil {
			t.Fatalf("Stop: %v", err)
		}
	}
}

func TestMaxRelayRun(t *testing.T) {
	mkPath := func(services ...svc.Service) *routing.Path {
		p := &routing.Path{}
		for i, s := range services {
			p.Hops = append(p.Hops, routing.Hop{Node: i, Service: s})
		}
		return p
	}
	cases := []struct {
		hops []svc.Service
		want int
	}{
		{[]svc.Service{"", ""}, 0},               // endpoints only
		{[]svc.Service{"", "a", ""}, 0},          // service hop, no relays
		{[]svc.Service{"", "", "a", ""}, 1},      // one relay before the service
		{[]svc.Service{"", "", "", "a", ""}, 2},  // border-pair relay run
		{[]svc.Service{"", "", "", "", "a"}, 3},  // over the §3 bound
		{[]svc.Service{"", "a", "", "", "b"}, 2}, // interior run between services
	}
	for i, c := range cases {
		if got := MaxRelayRun(mkPath(c.hops...)); got != c.want {
			t.Errorf("case %d %v: MaxRelayRun = %d, want %d", i, c.hops, got, c.want)
		}
	}
}

func TestCheckerRejectsNilResult(t *testing.T) {
	topo, caps := fixture(t, 24)
	check := &Checker{Topo: topo, Caps: caps}
	if err := check.CheckResult(nil, svc.Request{}, nil); err == nil {
		t.Error("nil result accepted")
	}
}
