package chaos

import (
	"strings"
	"testing"
	"time"

	"hfc/internal/vtime"
)

// TestRunnerDeterministicUnderVirtualTime replays a partition-and-heal
// schedule against an overlay on a virtual clock and checks the full chaos
// stack is deterministic end to end: two same-seed runs produce a
// byte-identical trace (schedule actions plus per-link drop counters), the
// same round count, and the same virtual duration. Under the baton
// scheduler a run also finishes with zero wall-clock sleeps, so the drill
// that needs real backoff time in wall mode is instant here.
func TestRunnerDeterministicUnderVirtualTime(t *testing.T) {
	run := func() (*Report, time.Duration) {
		topo, caps := fixture(t, 21)
		minority, majority := splitSets(topo, 0)
		eng := NewEngine(99, 0)
		cfg := drillConfig(eng)
		sim := vtime.NewSim()
		cfg.Clock = sim
		// Charge a small per-distance delay so rounds consume virtual time
		// and the clock comparison below is meaningful.
		cfg.DelayPerUnit = time.Microsecond
		sys := startSys(t, topo, caps, cfg)
		r := &Runner{Sys: sys, Engine: eng, Schedule: Schedule{
			{Round: 2, Inject: []Fault{
				Partition("split", minority, majority, true),
				{ID: "gray", From: majority[:1], To: majority[1:], Drop: 0.5},
			}},
			{Round: 5, Heal: []string{"*"}},
		}}
		var rep *Report
		var err error
		sim.Run(func() { rep, err = r.Run() })
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep, sim.Now()
	}

	a, avt := run()
	if !a.Converged {
		t.Fatal("healed schedule did not reconverge under virtual time")
	}
	if avt == 0 {
		t.Fatal("virtual clock did not advance")
	}
	if !strings.Contains(strings.Join(a.Trace, "\n"), "heal *") {
		t.Fatalf("trace missing heal event:\n%s", strings.Join(a.Trace, "\n"))
	}
	b, bvt := run()
	if strings.Join(a.Trace, "\n") != strings.Join(b.Trace, "\n") {
		t.Fatalf("same-seed chaos traces differ:\n--- run A ---\n%s\n--- run B ---\n%s",
			strings.Join(a.Trace, "\n"), strings.Join(b.Trace, "\n"))
	}
	if a.RoundsRun != b.RoundsRun || a.ReconvergeRounds != b.ReconvergeRounds {
		t.Fatalf("same-seed runs took different rounds: %d/%d vs %d/%d",
			a.RoundsRun, a.ReconvergeRounds, b.RoundsRun, b.ReconvergeRounds)
	}
	if avt != bvt {
		t.Fatalf("same-seed virtual durations differ: %v vs %v", avt, bvt)
	}
}
