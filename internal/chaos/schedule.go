package chaos

import (
	"fmt"
	"sort"
	"sync"

	"hfc/internal/overlay"
)

// Event is one step of a chaos timeline: immediately before protocol round
// Round fires, the listed faults are injected and/or healed.
type Event struct {
	// Round is the 1-based protocol round the event precedes.
	Round int
	// Inject lists faults switched on by this event.
	Inject []Fault
	// Heal lists fault IDs switched off; the single entry "*" heals
	// everything active.
	Heal []string
}

// Schedule is a scripted chaos timeline, replayed by a Runner.
type Schedule []Event

// Validate checks rounds and fault specs. Events need not be sorted; the
// Runner groups them by round. An ID may be reused across the timeline (a
// flapping link) but Inject/Heal pairing errors only surface at run time,
// where the active set is known.
func (s Schedule) Validate() error {
	for i, ev := range s {
		if ev.Round < 1 {
			return fmt.Errorf("chaos: event %d at round %d, rounds are 1-based", i, ev.Round)
		}
		if len(ev.Inject) == 0 && len(ev.Heal) == 0 {
			return fmt.Errorf("chaos: event %d at round %d does nothing", i, ev.Round)
		}
		for _, f := range ev.Inject {
			if err := f.Validate(); err != nil {
				return fmt.Errorf("chaos: event %d: %w", i, err)
			}
		}
		for _, id := range ev.Heal {
			if id == "" {
				return fmt.Errorf("chaos: event %d heals an empty fault ID", i)
			}
		}
	}
	return nil
}

// LastRound returns the highest event round (0 for an empty schedule).
func (s Schedule) LastRound() int {
	last := 0
	for _, ev := range s {
		if ev.Round > last {
			last = ev.Round
		}
	}
	return last
}

// Runner replays a Schedule against a running overlay, driving protocol
// rounds and recording the deterministic event trace. The overlay must have
// been built with Config.LinkPolicy = Engine.Policy.
type Runner struct {
	Sys      *overlay.System
	Engine   *Engine
	Schedule Schedule
	// ReconvergeCap bounds how many rounds past the last event the runner
	// waits for ConvergedLive (default 15). Hitting the cap is reported,
	// not an error: a schedule that never heals is allowed to end diverged.
	ReconvergeCap int

	// progressMu guards the live progress cursor below; monitors of long
	// chaos soaks read it through Progress while Run drives rounds.
	progressMu sync.Mutex
	round      int // guarded by progressMu
}

// Progress reports the protocol round the runner is currently driving, 0
// before Run reaches its first round. Safe to call concurrently with Run.
func (r *Runner) Progress() int {
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	return r.round
}

// Report is the outcome of one Runner.Run.
type Report struct {
	// RoundsRun is the total protocol rounds driven.
	RoundsRun int
	// Converged reports whether ConvergedLive held when the run ended, and
	// ReconvergeRounds is how many rounds past the schedule's last event
	// that took (0 = already converged at the last event, -1 = never).
	Converged        bool
	ReconvergeRounds int
	// Trace is the deterministic event trace: one line per schedule action
	// in round order, then the engine's sorted per-link counter summary.
	// Identical seed + schedule ⇒ byte-identical Trace.
	Trace []string
}

// Run validates the schedule and replays it: events fire before their
// round's TriggerStateRound, every round quiesces, and after the final
// event the runner keeps driving rounds until the overlay re-converges
// (modulo crashed nodes) or ReconvergeCap rounds pass.
func (r *Runner) Run() (*Report, error) {
	if err := r.Schedule.Validate(); err != nil {
		return nil, err
	}
	cap := r.ReconvergeCap
	if cap <= 0 {
		cap = 15
	}
	byRound := make(map[int][]Event, len(r.Schedule))
	for _, ev := range r.Schedule {
		byRound[ev.Round] = append(byRound[ev.Round], ev)
	}
	for _, evs := range byRound {
		sort.SliceStable(evs, func(i, j int) bool { return len(evs[i].Heal) > len(evs[j].Heal) })
	}
	last := r.Schedule.LastRound()

	rep := &Report{ReconvergeRounds: -1}
	for round := 1; round <= last+cap; round++ {
		r.progressMu.Lock()
		r.round = round
		r.progressMu.Unlock()
		for _, ev := range byRound[round] {
			// Heals before injects (the stable sort above): a same-round
			// heal+inject of one ID is a reconfiguration, not a collision.
			for _, id := range ev.Heal {
				if id == "*" {
					n := r.Engine.HealAll()
					rep.Trace = append(rep.Trace, fmt.Sprintf("round %d: heal * (%d faults)", round, n))
					continue
				}
				if !r.Engine.Heal(id) {
					return nil, fmt.Errorf("chaos: round %d heals %q, which is not active", round, id)
				}
				rep.Trace = append(rep.Trace, fmt.Sprintf("round %d: heal %s", round, id))
			}
			for _, f := range ev.Inject {
				if err := r.Engine.Inject(f); err != nil {
					return nil, fmt.Errorf("chaos: round %d: %w", round, err)
				}
				rep.Trace = append(rep.Trace, fmt.Sprintf("round %d: inject %s", round, f.ID))
			}
		}
		r.Sys.TriggerStateRound()
		r.Sys.Quiesce()
		rep.RoundsRun = round
		if round >= last {
			ok, err := r.Sys.ConvergedLive()
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Converged = true
				rep.ReconvergeRounds = round - last
				break
			}
		}
	}
	rep.Trace = append(rep.Trace, r.Engine.Summary()...)
	return rep, nil
}
