package svc

import (
	"reflect"
	"testing"
)

func TestParseGraphChainsAndBranches(t *testing.T) {
	g, err := ParseGraph("a->b->c, a->c")
	if err != nil {
		t.Fatalf("ParseGraph: %v", err)
	}
	if want := []Service{"a", "b", "c"}; !reflect.DeepEqual(g.Services, want) {
		t.Errorf("Services = %v, want %v", g.Services, want)
	}
	if want := [][2]int{{0, 1}, {1, 2}, {0, 2}}; !reflect.DeepEqual(g.Edges, want) {
		t.Errorf("Edges = %v, want %v", g.Edges, want)
	}
}

func TestParseGraphIsolatedAndDuplicates(t *testing.T) {
	g, err := ParseGraph(" a , b ")
	if err != nil {
		t.Fatalf("ParseGraph: %v", err)
	}
	if len(g.Services) != 2 || len(g.Edges) != 0 {
		t.Errorf("got %v / %v, want 2 isolated services", g.Services, g.Edges)
	}
	// Duplicate edges collapse.
	g, err = ParseGraph("a->b, a->b")
	if err != nil {
		t.Fatalf("ParseGraph: %v", err)
	}
	if len(g.Edges) != 1 {
		t.Errorf("duplicate edge not collapsed: %v", g.Edges)
	}
}

func TestParseGraphRejectsStructuralFaults(t *testing.T) {
	for _, bad := range []string{
		"",           // empty
		"a,,b",       // empty token
		"a-> ->b",    // empty name in chain
		"a->a",       // self-loop
		"a->b, b->a", // cycle
		"a->b->c->a", // longer cycle
	} {
		if _, err := ParseGraph(bad); err == nil {
			t.Errorf("ParseGraph(%q) accepted", bad)
		}
	}
}

func TestParseGraphRoundTripsString(t *testing.T) {
	for _, src := range []string{"a", "a,b,c", "a->b", "a->b->c, a->c", "x->y, z->y"} {
		g, err := ParseGraph(src)
		if err != nil {
			t.Fatalf("ParseGraph(%q): %v", src, err)
		}
		back, err := ParseGraph(g.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", g.String(), err)
		}
		if back.String() != g.String() {
			t.Errorf("String round trip of %q: %q != %q", src, back.String(), g.String())
		}
	}
}

func TestCanonicalDistinguishesWhatStringConflates(t *testing.T) {
	withIsolated := &Graph{Services: []Service{"a", "b", "c"}, Edges: [][2]int{{0, 1}}}
	plain := &Graph{Services: []Service{"a", "b"}, Edges: [][2]int{{0, 1}}}
	if withIsolated.String() != plain.String() {
		t.Fatalf("precondition: String forms differ (%q vs %q)", withIsolated.String(), plain.String())
	}
	if withIsolated.Canonical() == plain.Canonical() {
		t.Error("Canonical conflates graphs with different vertex sets")
	}
	if withIsolated.Fingerprint() == plain.Fingerprint() {
		t.Error("Fingerprint conflates graphs with different vertex sets")
	}
}

func TestCanonicalIsInjectiveOnDelimiters(t *testing.T) {
	// Length prefixes keep names containing the delimiters unambiguous.
	a := &Graph{Services: []Service{"x;", "y"}}
	b := &Graph{Services: []Service{"x", ";y"}}
	if a.Canonical() == b.Canonical() {
		t.Error("delimiter-bearing names collide in canonical form")
	}
}

func TestFingerprintStableAcrossCalls(t *testing.T) {
	g, err := ParseGraph("a->b->c")
	if err != nil {
		t.Fatalf("ParseGraph: %v", err)
	}
	if g.Fingerprint() != g.Fingerprint() {
		t.Error("Fingerprint not deterministic")
	}
}
