// Package svc models the composable-services layer of the paper (§2.1):
// uniquely named services statically installed on proxies, per-proxy service
// capability sets, and service graphs (SGs) — the linear or non-linear
// dependency DAGs that a service request must satisfy. A request is a source
// proxy, an SG, and a destination proxy; a feasible configuration is any
// service sequence along an SG path from a source service to a sink service
// (Fig. 2).
package svc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Service is a unique service name, e.g. "watermark" or "s17". The paper
// assumes each service can be uniquely named (§1).
type Service string

// Catalog is the universe of deployable services.
type Catalog struct {
	names []Service
}

// NewCatalog builds a synthetic catalog of n services named "s0" … "s{n-1}".
func NewCatalog(n int) (*Catalog, error) {
	if n < 1 {
		return nil, fmt.Errorf("svc: catalog size %d must be >= 1", n)
	}
	names := make([]Service, n)
	for i := range names {
		names[i] = Service(fmt.Sprintf("s%d", i))
	}
	return &Catalog{names: names}, nil
}

// CatalogOf wraps an explicit service list, rejecting duplicates and empty
// names.
func CatalogOf(names ...Service) (*Catalog, error) {
	if len(names) == 0 {
		return nil, errors.New("svc: empty catalog")
	}
	seen := make(map[Service]bool, len(names))
	for _, s := range names {
		if s == "" {
			return nil, errors.New("svc: empty service name")
		}
		if seen[s] {
			return nil, fmt.Errorf("svc: duplicate service %q", s)
		}
		seen[s] = true
	}
	return &Catalog{names: append([]Service(nil), names...)}, nil
}

// Len returns the catalog size.
func (c *Catalog) Len() int { return len(c.names) }

// Services returns a copy of the catalog's service list.
func (c *Catalog) Services() []Service { return append([]Service(nil), c.names...) }

// At returns the i-th service.
func (c *Catalog) At(i int) Service { return c.names[i] }

// CapabilitySet is the set of services installed on one proxy — its SCI
// (service capability information). The zero value is not usable; make sets
// with NewCapabilitySet.
type CapabilitySet map[Service]struct{}

// NewCapabilitySet builds a set from the given services.
func NewCapabilitySet(services ...Service) CapabilitySet {
	s := make(CapabilitySet, len(services))
	for _, x := range services {
		s[x] = struct{}{}
	}
	return s
}

// Add inserts a service.
func (s CapabilitySet) Add(x Service) { s[x] = struct{}{} }

// Has reports membership.
func (s CapabilitySet) Has(x Service) bool {
	_, ok := s[x]
	return ok
}

// Len returns the set size.
func (s CapabilitySet) Len() int { return len(s) }

// Clone returns an independent copy.
func (s CapabilitySet) Clone() CapabilitySet {
	out := make(CapabilitySet, len(s))
	for x := range s {
		out[x] = struct{}{}
	}
	return out
}

// UnionInto adds every service of other into s. This is the SCI aggregation
// operation from §4 footnote 5: a cluster's aggregate service set is the
// union of its members' sets.
func (s CapabilitySet) UnionInto(other CapabilitySet) {
	for x := range other {
		s[x] = struct{}{}
	}
}

// Union returns the union of the given sets as a new set.
func Union(sets ...CapabilitySet) CapabilitySet {
	out := make(CapabilitySet)
	for _, s := range sets {
		out.UnionInto(s)
	}
	return out
}

// Sorted returns the members in lexicographic order (for deterministic
// output and messages).
func (s CapabilitySet) Sorted() []Service {
	out := make([]Service, 0, len(s))
	for x := range s {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two sets have identical membership.
func (s CapabilitySet) Equal(other CapabilitySet) bool {
	if len(s) != len(other) {
		return false
	}
	for x := range s {
		if !other.Has(x) {
			return false
		}
	}
	return true
}

// String renders the set as "{a, b, c}" in sorted order.
func (s CapabilitySet) String() string {
	parts := make([]string, 0, len(s))
	for _, x := range s.Sorted() {
		parts = append(parts, string(x))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Graph is a service graph (SG): a DAG over service instances expressing
// dependency constraints. Vertices are indices into Services; an edge (i,j)
// means Services[i] must immediately precede Services[j] in the composed
// path. Source vertices (no incoming edges) are the places a configuration
// may start; sink vertices (no outgoing edges) are where it must end.
//
// A linear SG s0 → s1 → … → sk has exactly one configuration; a non-linear
// SG may have several (Fig. 2b).
type Graph struct {
	// Services holds the vertex labels. The same service name may appear
	// at most once; the paper's SGs request distinct processing steps.
	Services []Service
	// Edges are dependency arcs between vertex indices.
	Edges [][2]int
}

// Linear builds the SG s0 → s1 → … for the given sequence.
func Linear(services ...Service) (*Graph, error) {
	g := &Graph{Services: append([]Service(nil), services...)}
	for i := 0; i+1 < len(services); i++ {
		g.Edges = append(g.Edges, [2]int{i, i + 1})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Validate checks structural sanity: at least one service, unique non-empty
// names, in-range acyclic edges.
func (g *Graph) Validate() error {
	if g == nil {
		return errors.New("svc: nil service graph")
	}
	n := len(g.Services)
	if n == 0 {
		return errors.New("svc: empty service graph")
	}
	seen := make(map[Service]bool, n)
	for i, s := range g.Services {
		if s == "" {
			return fmt.Errorf("svc: service %d has empty name", i)
		}
		if seen[s] {
			return fmt.Errorf("svc: duplicate service %q in graph", s)
		}
		seen[s] = true
	}
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("svc: edge %v out of range [0,%d)", e, n)
		}
		if e[0] == e[1] {
			return fmt.Errorf("svc: self-loop on service %q", g.Services[e[0]])
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	// Kahn's algorithm detects cycles.
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	visited := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visited++
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if visited != n {
		return errors.New("svc: service graph contains a cycle")
	}
	return nil
}

// Len returns the number of service vertices.
func (g *Graph) Len() int { return len(g.Services) }

// IsLinear reports whether the SG is a single chain (every configuration
// visits every service).
func (g *Graph) IsLinear() bool {
	n := len(g.Services)
	if len(g.Edges) != n-1 {
		return false
	}
	return len(g.Sources()) == 1 && len(g.Sinks()) == 1 && len(g.Configurations()) == 1
}

// Sources returns the vertex indices with no incoming edges — the "source
// services" a configuration may start from.
func (g *Graph) Sources() []int {
	indeg := make([]int, len(g.Services))
	for _, e := range g.Edges {
		indeg[e[1]]++
	}
	var out []int
	for v, d := range indeg {
		if d == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the vertex indices with no outgoing edges — the "sink
// services" a configuration must end at.
func (g *Graph) Sinks() []int {
	outdeg := make([]int, len(g.Services))
	for _, e := range g.Edges {
		outdeg[e[0]]++
	}
	var out []int
	for v, d := range outdeg {
		if d == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Configurations enumerates every feasible configuration: each path from a
// source vertex to a sink vertex, as a slice of vertex indices. The count is
// exponential in the worst case; the SGs in this system are small (≤ ~12
// services), matching the paper's request lengths.
func (g *Graph) Configurations() [][]int {
	adj := make([][]int, len(g.Services))
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	sinks := make(map[int]bool)
	for _, v := range g.Sinks() {
		sinks[v] = true
	}
	var out [][]int
	var path []int
	var dfs func(v int)
	dfs = func(v int) {
		path = append(path, v)
		if sinks[v] {
			out = append(out, append([]int(nil), path...))
		}
		for _, w := range adj[v] {
			dfs(w)
		}
		path = path[:len(path)-1]
	}
	for _, s := range g.Sources() {
		dfs(s)
	}
	return out
}

// ServicesOf maps a configuration (vertex indices) to service names.
func (g *Graph) ServicesOf(config []int) []Service {
	out := make([]Service, len(config))
	for i, v := range config {
		out[i] = g.Services[v]
	}
	return out
}

// String renders the SG as "s0->s1, s0->s2, ..." (or a single service).
func (g *Graph) String() string {
	if len(g.Edges) == 0 {
		names := make([]string, len(g.Services))
		for i, s := range g.Services {
			names[i] = string(s)
		}
		return strings.Join(names, ",")
	}
	parts := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		parts[i] = fmt.Sprintf("%s->%s", g.Services[e[0]], g.Services[e[1]])
	}
	return strings.Join(parts, ", ")
}

// Request is a service request: find a service path from the source proxy
// through the SG to the destination proxy (§2.2).
type Request struct {
	// Source and Dest are overlay node indices.
	Source, Dest int
	// SG is the dependency graph the path must satisfy.
	SG *Graph
}

// Validate checks the request against an overlay of n proxies.
func (r Request) Validate(n int) error {
	if r.Source < 0 || r.Source >= n {
		return fmt.Errorf("svc: source proxy %d out of range [0,%d)", r.Source, n)
	}
	if r.Dest < 0 || r.Dest >= n {
		return fmt.Errorf("svc: destination proxy %d out of range [0,%d)", r.Dest, n)
	}
	if err := r.SG.Validate(); err != nil {
		return err
	}
	return nil
}
