package svc

import (
	"strings"
	"testing"
)

// FuzzServiceGraphParse throws arbitrary strings at ParseGraph. Accepted
// inputs must yield a graph that validates, has consistent vertex/edge
// tables, canonicalizes injectively, and whose String form re-parses to a
// fixed point.
func FuzzServiceGraphParse(f *testing.F) {
	f.Add("a->b->c, a->c")
	f.Add("a,b,c")
	f.Add("x->y, z->y, x->z")
	f.Add("a->a")
	f.Add(" spaced -> names , more ")
	f.Add("a->b,b->a")
	f.Add(",,,")
	f.Add("->")
	f.Fuzz(func(t *testing.T, s string) {
		// Guard against pathological blowup: the parser is O(len(s)) but the
		// Validate Kahn pass is quadratic-ish in vertices; inputs this long
		// are not interesting.
		if len(s) > 4096 {
			t.Skip()
		}
		g, err := ParseGraph(s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ParseGraph(%q) returned an invalid graph: %v", s, verr)
		}
		n := len(g.Services)
		for _, e := range g.Edges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				t.Fatalf("edge %v out of range for %d services", e, n)
			}
		}
		for _, name := range g.Services {
			if strings.TrimSpace(string(name)) != string(name) || name == "" {
				t.Fatalf("unnormalized service name %q survived parsing", name)
			}
		}
		// String → parse → String is a fixed point.
		s1 := g.String()
		g2, err := ParseGraph(s1)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", s1, s, err)
		}
		if s2 := g2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point: %q -> %q (input %q)", s1, s2, s)
		}
		// Canonical forms agree iff the graphs agree; a graph and its
		// re-parse may differ only by isolated vertices String drops.
		if g.Canonical() == g2.Canonical() && g.Fingerprint() != g2.Fingerprint() {
			t.Fatal("equal canonical forms with different fingerprints")
		}
	})
}
