package svc

import (
	"strings"
	"testing"
)

func TestNewCatalog(t *testing.T) {
	c, err := NewCatalog(5)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	if c.Len() != 5 {
		t.Errorf("Len = %d, want 5", c.Len())
	}
	if c.At(0) != "s0" || c.At(4) != "s4" {
		t.Errorf("names = %v", c.Services())
	}
	if _, err := NewCatalog(0); err == nil {
		t.Error("NewCatalog(0) succeeded")
	}
}

func TestCatalogOf(t *testing.T) {
	c, err := CatalogOf("watermark", "transcode")
	if err != nil {
		t.Fatalf("CatalogOf: %v", err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if _, err := CatalogOf(); err == nil {
		t.Error("empty CatalogOf succeeded")
	}
	if _, err := CatalogOf("a", "a"); err == nil {
		t.Error("duplicate CatalogOf succeeded")
	}
	if _, err := CatalogOf("a", ""); err == nil {
		t.Error("empty-name CatalogOf succeeded")
	}
}

func TestCatalogServicesIsCopy(t *testing.T) {
	c, err := CatalogOf("a", "b")
	if err != nil {
		t.Fatalf("CatalogOf: %v", err)
	}
	list := c.Services()
	list[0] = "mutated"
	if c.At(0) != "a" {
		t.Error("Services() exposes internal slice")
	}
}

func TestCapabilitySetBasics(t *testing.T) {
	s := NewCapabilitySet("a", "b")
	if !s.Has("a") || !s.Has("b") || s.Has("c") {
		t.Errorf("membership wrong: %v", s)
	}
	s.Add("c")
	if !s.Has("c") || s.Len() != 3 {
		t.Errorf("after Add: %v", s)
	}
	clone := s.Clone()
	clone.Add("d")
	if s.Has("d") {
		t.Error("Clone shares storage")
	}
	if got := s.String(); got != "{a, b, c}" {
		t.Errorf("String() = %q, want {a, b, c}", got)
	}
}

func TestUnionAggregation(t *testing.T) {
	// §4 footnote 5: cluster aggregate = union of member SCIs.
	a := NewCapabilitySet("s1", "s2")
	b := NewCapabilitySet("s2", "s3")
	c := NewCapabilitySet()
	u := Union(a, b, c)
	want := NewCapabilitySet("s1", "s2", "s3")
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	// Union must not alias its inputs.
	u.Add("s9")
	if a.Has("s9") || b.Has("s9") {
		t.Error("Union aliases input sets")
	}
}

func TestEqual(t *testing.T) {
	if !NewCapabilitySet("x").Equal(NewCapabilitySet("x")) {
		t.Error("equal sets reported unequal")
	}
	if NewCapabilitySet("x").Equal(NewCapabilitySet("y")) {
		t.Error("different sets reported equal")
	}
	if NewCapabilitySet("x").Equal(NewCapabilitySet("x", "y")) {
		t.Error("subset reported equal")
	}
}

func TestSortedDeterministic(t *testing.T) {
	s := NewCapabilitySet("s10", "s2", "s1")
	got := s.Sorted()
	if len(got) != 3 || got[0] != "s1" || got[1] != "s10" || got[2] != "s2" {
		t.Errorf("Sorted() = %v (lexicographic expected)", got)
	}
}

func TestLinearGraph(t *testing.T) {
	g, err := Linear("a", "b", "c")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if !g.IsLinear() {
		t.Error("IsLinear() = false for chain")
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Sources = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Sinks = %v, want [2]", got)
	}
	configs := g.Configurations()
	if len(configs) != 1 {
		t.Fatalf("Configurations = %d, want 1", len(configs))
	}
	names := g.ServicesOf(configs[0])
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("config services = %v", names)
	}
	if s := g.String(); s != "a->b, b->c" {
		t.Errorf("String() = %q", s)
	}
}

func TestSingleServiceGraph(t *testing.T) {
	g, err := Linear("only")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if !g.IsLinear() {
		t.Error("single-service graph not linear")
	}
	if len(g.Configurations()) != 1 {
		t.Error("single-service graph should have exactly 1 configuration")
	}
	if g.String() != "only" {
		t.Errorf("String() = %q", g.String())
	}
}

func TestGraphValidate(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"nil", nil},
		{"empty", &Graph{}},
		{"empty name", &Graph{Services: []Service{""}}},
		{"duplicate", &Graph{Services: []Service{"a", "a"}}},
		{"edge out of range", &Graph{Services: []Service{"a"}, Edges: [][2]int{{0, 5}}}},
		{"self loop", &Graph{Services: []Service{"a"}, Edges: [][2]int{{0, 0}}}},
		{"cycle", &Graph{Services: []Service{"a", "b"}, Edges: [][2]int{{0, 1}, {1, 0}}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", c.name)
		}
	}
}

func TestPaperFig2bConfigurations(t *testing.T) {
	// Fig. 2(b): three configurations: s0→s1→s2, s3→s1→s2, s3→s2.
	g := &Graph{
		Services: []Service{"s0", "s1", "s2", "s3"},
		Edges:    [][2]int{{0, 1}, {3, 1}, {1, 2}, {3, 2}},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.IsLinear() {
		t.Error("Fig 2b graph reported linear")
	}
	configs := g.Configurations()
	if len(configs) != 3 {
		t.Fatalf("got %d configurations, want 3: %v", len(configs), configs)
	}
	var rendered []string
	for _, c := range configs {
		names := g.ServicesOf(c)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = string(n)
		}
		rendered = append(rendered, strings.Join(parts, "->"))
	}
	want := map[string]bool{"s0->s1->s2": true, "s3->s1->s2": true, "s3->s2": true}
	for _, r := range rendered {
		if !want[r] {
			t.Errorf("unexpected configuration %q", r)
		}
		delete(want, r)
	}
	if len(want) != 0 {
		t.Errorf("missing configurations: %v", want)
	}
}

func TestRequestValidate(t *testing.T) {
	sg, err := Linear("a")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	ok := Request{Source: 0, Dest: 1, SG: sg}
	if err := ok.Validate(2); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if err := (Request{Source: -1, Dest: 1, SG: sg}).Validate(2); err == nil {
		t.Error("negative source accepted")
	}
	if err := (Request{Source: 0, Dest: 2, SG: sg}).Validate(2); err == nil {
		t.Error("out-of-range dest accepted")
	}
	if err := (Request{Source: 0, Dest: 1, SG: nil}).Validate(2); err == nil {
		t.Error("nil SG accepted")
	}
}
