package svc

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Canonical renders the graph in a collision-free canonical form: every
// vertex label length-prefixed in vertex order, then every edge as an index
// pair. Unlike String (a display format that drops isolated vertices when
// edges exist), two graphs share a Canonical form iff they have identical
// vertex and edge lists, which is what cache keys need.
func (g *Graph) Canonical() string {
	var b strings.Builder
	for _, s := range g.Services {
		fmt.Fprintf(&b, "%d:%s;", len(s), s)
	}
	b.WriteByte('|')
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "%d>%d;", e[0], e[1])
	}
	return b.String()
}

// Fingerprint hashes the canonical form (FNV-1a, 64-bit) into a compact
// cache-key component. Collisions are possible in principle; consumers must
// fall back to comparing Canonical strings before trusting a match.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	//hfcvet:ignore errsweep fnv hash Write never returns an error
	h.Write([]byte(g.Canonical()))
	return h.Sum64()
}

// ParseGraph parses the String rendering of a service graph back into a
// Graph: comma-separated tokens, each either a single service name or an
// "a->b->c" dependency chain. Vertices are numbered by first occurrence;
// duplicate edges collapse. The result is validated, so cycles, empty names
// and other structural faults fail here rather than later.
//
//	"a->b, a->c"  two edges out of a
//	"a"           single isolated service
//	"a,b"         two isolated services (only when no edges appear at all)
func ParseGraph(s string) (*Graph, error) {
	g := &Graph{}
	index := make(map[Service]int)
	vertex := func(name string) (int, error) {
		name = strings.TrimSpace(name)
		if name == "" {
			return 0, fmt.Errorf("svc: empty service name in %q", s)
		}
		sv := Service(name)
		if i, ok := index[sv]; ok {
			return i, nil
		}
		i := len(g.Services)
		index[sv] = i
		g.Services = append(g.Services, sv)
		return i, nil
	}
	seenEdge := make(map[[2]int]bool)
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("svc: empty token in %q", s)
		}
		parts := strings.Split(tok, "->")
		prev := -1
		for _, p := range parts {
			v, err := vertex(p)
			if err != nil {
				return nil, err
			}
			if prev != -1 {
				e := [2]int{prev, v}
				if !seenEdge[e] {
					seenEdge[e] = true
					g.Edges = append(g.Edges, e)
				}
			}
			prev = v
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
