package svc

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonical renders the graph in a collision-free canonical form: every
// vertex label length-prefixed in vertex order, then every edge as an index
// pair. Unlike String (a display format that drops isolated vertices when
// edges exist), two graphs share a Canonical form iff they have identical
// vertex and edge lists, which is what cache keys need.
//
//hfc:hotpath budget=8
func (g *Graph) Canonical() string {
	buf := make([]byte, 0, 16*len(g.Services)+8*len(g.Edges)+1)
	for _, s := range g.Services {
		buf = strconv.AppendInt(buf, int64(len(s)), 10)
		buf = append(buf, ':')
		buf = append(buf, s...)
		buf = append(buf, ';')
	}
	buf = append(buf, '|')
	for _, e := range g.Edges {
		buf = strconv.AppendInt(buf, int64(e[0]), 10)
		buf = append(buf, '>')
		buf = strconv.AppendInt(buf, int64(e[1]), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// Fingerprint hashes the canonical form (FNV-1a, 64-bit) into a compact
// cache-key component. Collisions are possible in principle; consumers must
// fall back to comparing Canonical strings before trusting a match.
func (g *Graph) Fingerprint() uint64 {
	return FingerprintCanonical(g.Canonical())
}

// FingerprintCanonical hashes an already-rendered Canonical form. Callers on
// a hot path that need both the canonical string and the fingerprint (the
// serving engine's cache key) render once and hash here instead of paying
// for a second render inside Fingerprint.
func FingerprintCanonical(canonical string) uint64 {
	// Inline FNV-1a 64 (hash/fnv's New64a parameters), allocation-free.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(canonical); i++ {
		h ^= uint64(canonical[i])
		h *= prime64
	}
	return h
}

// ParseGraph parses the String rendering of a service graph back into a
// Graph: comma-separated tokens, each either a single service name or an
// "a->b->c" dependency chain. Vertices are numbered by first occurrence;
// duplicate edges collapse. The result is validated, so cycles, empty names
// and other structural faults fail here rather than later.
//
//	"a->b, a->c"  two edges out of a
//	"a"           single isolated service
//	"a,b"         two isolated services (only when no edges appear at all)
func ParseGraph(s string) (*Graph, error) {
	g := &Graph{}
	index := make(map[Service]int)
	vertex := func(name string) (int, error) {
		name = strings.TrimSpace(name)
		if name == "" {
			return 0, fmt.Errorf("svc: empty service name in %q", s)
		}
		sv := Service(name)
		if i, ok := index[sv]; ok {
			return i, nil
		}
		i := len(g.Services)
		index[sv] = i
		g.Services = append(g.Services, sv)
		return i, nil
	}
	seenEdge := make(map[[2]int]bool)
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("svc: empty token in %q", s)
		}
		parts := strings.Split(tok, "->")
		prev := -1
		for _, p := range parts {
			v, err := vertex(p)
			if err != nil {
				return nil, err
			}
			if prev != -1 {
				e := [2]int{prev, v}
				if !seenEdge[e] {
					seenEdge[e] = true
					g.Edges = append(g.Edges, e)
				}
			}
			prev = v
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
