package svc

import (
	"errors"
	"fmt"
	"math/rand"
)

// ZipfRequestGenerator produces random linear requests whose services are
// drawn with Zipf-distributed popularity instead of uniformly: a few hot
// services (transcoders everyone needs) dominate the workload while the
// tail is rare — the skew real service deployments exhibit. Requests stay
// satisfiable: only deployed services are drawn.
type ZipfRequestGenerator struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	deployed []Service
	n        int
	minLen   int
	maxLen   int
}

// NewZipfRequestGenerator builds a generator over the deployment in caps.
// s > 1 is the Zipf exponent (larger = more skew); rank 0 (the most popular
// service) is the lexicographically first deployed service, which is
// arbitrary but deterministic.
func NewZipfRequestGenerator(rng *rand.Rand, caps []CapabilitySet, minLen, maxLen int, s float64) (*ZipfRequestGenerator, error) {
	if rng == nil {
		return nil, errors.New("svc: nil rng")
	}
	if len(caps) < 2 {
		return nil, fmt.Errorf("svc: need at least 2 proxies, got %d", len(caps))
	}
	if s <= 1 {
		return nil, fmt.Errorf("svc: zipf exponent %v must be > 1", s)
	}
	deployed := Union(caps...).Sorted()
	if len(deployed) == 0 {
		return nil, errors.New("svc: no services deployed on any proxy")
	}
	if minLen < 1 || maxLen < minLen {
		return nil, fmt.Errorf("svc: invalid request length range [%d,%d]", minLen, maxLen)
	}
	if maxLen > len(deployed) {
		return nil, fmt.Errorf("svc: request length up to %d but only %d distinct services deployed", maxLen, len(deployed))
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(len(deployed)-1))
	if zipf == nil {
		return nil, fmt.Errorf("svc: invalid zipf parameters (s=%v)", s)
	}
	return &ZipfRequestGenerator{
		rng:      rng,
		zipf:     zipf,
		deployed: deployed,
		n:        len(caps),
		minLen:   minLen,
		maxLen:   maxLen,
	}, nil
}

// Next returns the next random request. Service chains need distinct
// services, so duplicate Zipf draws are rejected and redrawn.
func (g *ZipfRequestGenerator) Next() (Request, error) {
	length := g.minLen + g.rng.Intn(g.maxLen-g.minLen+1)
	chosen := make([]Service, 0, length)
	seen := make(map[Service]bool, length)
	// With heavy skew, rejection can loop on hot ranks; bound the attempts
	// and fall back to a scan over unused ranks.
	for attempts := 0; len(chosen) < length && attempts < 50*length; attempts++ {
		s := g.deployed[g.zipf.Uint64()]
		if !seen[s] {
			seen[s] = true
			chosen = append(chosen, s)
		}
	}
	for rank := 0; len(chosen) < length && rank < len(g.deployed); rank++ {
		s := g.deployed[rank]
		if !seen[s] {
			seen[s] = true
			chosen = append(chosen, s)
		}
	}
	sg, err := Linear(chosen...)
	if err != nil {
		return Request{}, err
	}
	src := g.rng.Intn(g.n)
	dst := g.rng.Intn(g.n - 1)
	if dst >= src {
		dst++
	}
	return Request{Source: src, Dest: dst, SG: sg}, nil
}

// Popularity returns the empirical draw distribution over `draws` samples,
// indexed by deployed-service rank — used by tests and workload analysis.
func (g *ZipfRequestGenerator) Popularity(draws int) []int {
	counts := make([]int, len(g.deployed))
	for i := 0; i < draws; i++ {
		counts[g.zipf.Uint64()]++
	}
	return counts
}
