package svc

import (
	"errors"
	"fmt"
	"math/rand"
)

// RandomCapabilities assigns each of n proxies a uniform-random number of
// distinct services in [minServices, maxServices], drawn from the catalog.
// This reproduces Table 1's "services/proxy: 4-10" column.
func RandomCapabilities(rng *rand.Rand, n int, cat *Catalog, minServices, maxServices int) ([]CapabilitySet, error) {
	if rng == nil {
		return nil, errors.New("svc: nil rng")
	}
	if cat == nil {
		return nil, errors.New("svc: nil catalog")
	}
	if n < 1 {
		return nil, fmt.Errorf("svc: proxy count %d must be >= 1", n)
	}
	if minServices < 1 || maxServices < minServices {
		return nil, fmt.Errorf("svc: invalid services-per-proxy range [%d,%d]", minServices, maxServices)
	}
	if maxServices > cat.Len() {
		return nil, fmt.Errorf("svc: up to %d services per proxy but catalog has only %d", maxServices, cat.Len())
	}
	out := make([]CapabilitySet, n)
	for i := range out {
		count := minServices + rng.Intn(maxServices-minServices+1)
		perm := rng.Perm(cat.Len())
		set := make(CapabilitySet, count)
		for _, idx := range perm[:count] {
			set.Add(cat.At(idx))
		}
		out[i] = set
	}
	return out, nil
}

// RandomLinearRequest builds a request with a linear SG of uniform-random
// length in [minLen, maxLen] over distinct catalog services, and uniform
// random distinct source/destination proxies among n. This reproduces
// Table 1's "service req. length: 4-10" column.
//
// Only services available somewhere in the overlay can be satisfied, so the
// caller typically passes the union of all proxies' capabilities as the
// catalog (see RequestGenerator for that convenience).
func RandomLinearRequest(rng *rand.Rand, cat *Catalog, n, minLen, maxLen int) (Request, error) {
	if rng == nil {
		return Request{}, errors.New("svc: nil rng")
	}
	if cat == nil {
		return Request{}, errors.New("svc: nil catalog")
	}
	if n < 2 {
		return Request{}, fmt.Errorf("svc: need at least 2 proxies, got %d", n)
	}
	if minLen < 1 || maxLen < minLen {
		return Request{}, fmt.Errorf("svc: invalid request length range [%d,%d]", minLen, maxLen)
	}
	if maxLen > cat.Len() {
		return Request{}, fmt.Errorf("svc: request length up to %d but catalog has only %d services", maxLen, cat.Len())
	}
	length := minLen + rng.Intn(maxLen-minLen+1)
	perm := rng.Perm(cat.Len())
	services := make([]Service, length)
	for i := 0; i < length; i++ {
		services[i] = cat.At(perm[i])
	}
	sg, err := Linear(services...)
	if err != nil {
		return Request{}, err
	}
	src := rng.Intn(n)
	dst := rng.Intn(n - 1)
	if dst >= src {
		dst++
	}
	return Request{Source: src, Dest: dst, SG: sg}, nil
}

// RandomDAGRequest builds a request with a non-linear SG: `branches`
// alternative source chains that merge into a shared suffix chain, the shape
// of Fig. 2(b). Each configuration is one branch followed by the suffix.
// Total distinct services used: branches·branchLen + suffixLen.
func RandomDAGRequest(rng *rand.Rand, cat *Catalog, n, branches, branchLen, suffixLen int) (Request, error) {
	if rng == nil {
		return Request{}, errors.New("svc: nil rng")
	}
	if cat == nil {
		return Request{}, errors.New("svc: nil catalog")
	}
	if n < 2 {
		return Request{}, fmt.Errorf("svc: need at least 2 proxies, got %d", n)
	}
	if branches < 1 || branchLen < 1 || suffixLen < 1 {
		return Request{}, fmt.Errorf("svc: invalid DAG shape branches=%d branchLen=%d suffixLen=%d", branches, branchLen, suffixLen)
	}
	need := branches*branchLen + suffixLen
	if need > cat.Len() {
		return Request{}, fmt.Errorf("svc: DAG request needs %d services but catalog has %d", need, cat.Len())
	}
	perm := rng.Perm(cat.Len())
	next := 0
	take := func() Service {
		s := cat.At(perm[next])
		next++
		return s
	}

	g := &Graph{}
	addVertex := func(s Service) int {
		g.Services = append(g.Services, s)
		return len(g.Services) - 1
	}
	// Shared suffix chain.
	suffix := make([]int, suffixLen)
	for i := range suffix {
		suffix[i] = addVertex(take())
		if i > 0 {
			g.Edges = append(g.Edges, [2]int{suffix[i-1], suffix[i]})
		}
	}
	// Branches feeding the head of the suffix.
	for b := 0; b < branches; b++ {
		prev := -1
		for i := 0; i < branchLen; i++ {
			v := addVertex(take())
			if prev != -1 {
				g.Edges = append(g.Edges, [2]int{prev, v})
			}
			prev = v
		}
		g.Edges = append(g.Edges, [2]int{prev, suffix[0]})
	}
	if err := g.Validate(); err != nil {
		return Request{}, err
	}
	src := rng.Intn(n)
	dst := rng.Intn(n - 1)
	if dst >= src {
		dst++
	}
	return Request{Source: src, Dest: dst, SG: g}, nil
}

// RequestGenerator produces a stream of satisfiable random requests for an
// overlay: it restricts the catalog to services that are actually installed
// somewhere, so generated requests always have at least one feasible
// provider set.
type RequestGenerator struct {
	rng      *rand.Rand
	n        int
	minLen   int
	maxLen   int
	deployed *Catalog
}

// NewRequestGenerator builds a generator over n proxies with the given
// capability assignment and request length range.
func NewRequestGenerator(rng *rand.Rand, caps []CapabilitySet, minLen, maxLen int) (*RequestGenerator, error) {
	if rng == nil {
		return nil, errors.New("svc: nil rng")
	}
	if len(caps) < 2 {
		return nil, fmt.Errorf("svc: need at least 2 proxies, got %d", len(caps))
	}
	union := Union(caps...)
	if union.Len() == 0 {
		return nil, errors.New("svc: no services deployed on any proxy")
	}
	if minLen < 1 || maxLen < minLen {
		return nil, fmt.Errorf("svc: invalid request length range [%d,%d]", minLen, maxLen)
	}
	if maxLen > union.Len() {
		return nil, fmt.Errorf("svc: request length up to %d but only %d distinct services deployed", maxLen, union.Len())
	}
	deployed, err := CatalogOf(union.Sorted()...)
	if err != nil {
		return nil, err
	}
	return &RequestGenerator{
		rng:      rng,
		n:        len(caps),
		minLen:   minLen,
		maxLen:   maxLen,
		deployed: deployed,
	}, nil
}

// Next returns the next random linear request.
func (g *RequestGenerator) Next() (Request, error) {
	return RandomLinearRequest(g.rng, g.deployed, g.n, g.minLen, g.maxLen)
}
