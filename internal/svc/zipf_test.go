package svc

import (
	"math/rand"
	"testing"
)

func zipfCaps(t *testing.T, rng *rand.Rand) []CapabilitySet {
	t.Helper()
	cat := mustCatalog(t, 20)
	caps, err := RandomCapabilities(rng, 30, cat, 3, 8)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	return caps
}

func TestZipfRequestGeneratorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	caps := zipfCaps(t, rng)
	gen, err := NewZipfRequestGenerator(rng, caps, 3, 6, 1.5)
	if err != nil {
		t.Fatalf("NewZipfRequestGenerator: %v", err)
	}
	deployed := Union(caps...)
	for i := 0; i < 100; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if err := req.Validate(30); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if req.Source == req.Dest {
			t.Fatalf("request %d has equal endpoints", i)
		}
		l := req.SG.Len()
		if l < 3 || l > 6 {
			t.Fatalf("request %d length %d outside [3,6]", i, l)
		}
		seen := map[Service]bool{}
		for _, s := range req.SG.Services {
			if seen[s] {
				t.Fatalf("request %d repeats service %q", i, s)
			}
			seen[s] = true
			if !deployed.Has(s) {
				t.Fatalf("request %d uses undeployed service %q", i, s)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	caps := zipfCaps(t, rng)
	gen, err := NewZipfRequestGenerator(rng, caps, 2, 4, 2.0)
	if err != nil {
		t.Fatalf("NewZipfRequestGenerator: %v", err)
	}
	counts := gen.Popularity(20000)
	// Rank 0 must dominate the tail decisively at s=2.
	tail := 0
	for _, c := range counts[len(counts)/2:] {
		tail += c
	}
	if counts[0] <= tail {
		t.Errorf("rank-0 count %d not above combined tail %d (no skew?)", counts[0], tail)
	}
	// Monotone-ish: rank 0 >= rank at 1/4 >= rank at 1/2 (statistically).
	q := len(counts) / 4
	if counts[0] < counts[q] || counts[q] < counts[2*q] {
		t.Errorf("popularity not decreasing: %d, %d, %d", counts[0], counts[q], counts[2*q])
	}
}

func TestZipfHeavySkewStillProducesDistinctChains(t *testing.T) {
	// With extreme skew the hot service dominates draws; the fallback scan
	// must still complete chains with distinct services.
	rng := rand.New(rand.NewSource(3))
	caps := zipfCaps(t, rng)
	gen, err := NewZipfRequestGenerator(rng, caps, 6, 6, 8.0)
	if err != nil {
		t.Fatalf("NewZipfRequestGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if req.SG.Len() != 6 {
			t.Fatalf("chain length %d, want 6", req.SG.Len())
		}
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	caps := zipfCaps(t, rng)
	if _, err := NewZipfRequestGenerator(nil, caps, 2, 4, 1.5); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewZipfRequestGenerator(rng, caps[:1], 2, 4, 1.5); err == nil {
		t.Error("single proxy accepted")
	}
	if _, err := NewZipfRequestGenerator(rng, caps, 2, 4, 1.0); err == nil {
		t.Error("s <= 1 accepted")
	}
	if _, err := NewZipfRequestGenerator(rng, caps, 0, 4, 1.5); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewZipfRequestGenerator(rng, caps, 5, 4, 1.5); err == nil {
		t.Error("min > max accepted")
	}
	if _, err := NewZipfRequestGenerator(rng, caps, 2, 99, 1.5); err == nil {
		t.Error("max beyond deployment accepted")
	}
	empty := []CapabilitySet{NewCapabilitySet(), NewCapabilitySet()}
	if _, err := NewZipfRequestGenerator(rng, empty, 1, 1, 1.5); err == nil {
		t.Error("empty deployment accepted")
	}
}
