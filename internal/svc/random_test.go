package svc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	c, err := NewCatalog(n)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	return c
}

func TestRandomCapabilitiesRespectsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat := mustCatalog(t, 40)
	caps, err := RandomCapabilities(rng, 100, cat, 4, 10)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	if len(caps) != 100 {
		t.Fatalf("got %d sets, want 100", len(caps))
	}
	sawMin, sawSpread := false, false
	for i, s := range caps {
		if s.Len() < 4 || s.Len() > 10 {
			t.Errorf("proxy %d has %d services, want 4..10", i, s.Len())
		}
		if s.Len() == 4 {
			sawMin = true
		}
		if s.Len() >= 8 {
			sawSpread = true
		}
	}
	if !sawMin || !sawSpread {
		t.Error("capability sizes not spread across the range (suspicious RNG use)")
	}
}

func TestRandomCapabilitiesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat := mustCatalog(t, 5)
	if _, err := RandomCapabilities(nil, 3, cat, 1, 2); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RandomCapabilities(rng, 3, nil, 1, 2); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := RandomCapabilities(rng, 0, cat, 1, 2); err == nil {
		t.Error("zero proxies accepted")
	}
	if _, err := RandomCapabilities(rng, 3, cat, 0, 2); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := RandomCapabilities(rng, 3, cat, 3, 2); err == nil {
		t.Error("min > max accepted")
	}
	if _, err := RandomCapabilities(rng, 3, cat, 1, 6); err == nil {
		t.Error("max beyond catalog accepted")
	}
}

func TestRandomLinearRequestProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat, err := NewCatalog(20)
		if err != nil {
			return false
		}
		req, err := RandomLinearRequest(rng, cat, 50, 4, 10)
		if err != nil {
			return false
		}
		if req.Source == req.Dest {
			return false
		}
		if err := req.Validate(50); err != nil {
			return false
		}
		if !req.SG.IsLinear() {
			return false
		}
		l := req.SG.Len()
		if l < 4 || l > 10 {
			return false
		}
		// Services must be distinct.
		seen := make(map[Service]bool)
		for _, s := range req.SG.Services {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomLinearRequestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat := mustCatalog(t, 10)
	if _, err := RandomLinearRequest(nil, cat, 10, 2, 3); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RandomLinearRequest(rng, nil, 10, 2, 3); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := RandomLinearRequest(rng, cat, 1, 2, 3); err == nil {
		t.Error("single proxy accepted")
	}
	if _, err := RandomLinearRequest(rng, cat, 10, 0, 3); err == nil {
		t.Error("zero min length accepted")
	}
	if _, err := RandomLinearRequest(rng, cat, 10, 5, 3); err == nil {
		t.Error("min > max accepted")
	}
	if _, err := RandomLinearRequest(rng, cat, 10, 2, 11); err == nil {
		t.Error("length beyond catalog accepted")
	}
}

func TestRandomDAGRequestShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cat := mustCatalog(t, 30)
	req, err := RandomDAGRequest(rng, cat, 20, 3, 2, 3)
	if err != nil {
		t.Fatalf("RandomDAGRequest: %v", err)
	}
	if err := req.Validate(20); err != nil {
		t.Fatalf("generated request invalid: %v", err)
	}
	if req.SG.IsLinear() {
		t.Error("DAG request produced linear SG")
	}
	if req.SG.Len() != 3*2+3 {
		t.Errorf("SG has %d services, want 9", req.SG.Len())
	}
	configs := req.SG.Configurations()
	if len(configs) != 3 {
		t.Fatalf("got %d configurations, want 3 (one per branch)", len(configs))
	}
	for _, c := range configs {
		if len(c) != 2+3 {
			t.Errorf("configuration length %d, want 5", len(c))
		}
	}
}

func TestRandomDAGRequestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cat := mustCatalog(t, 10)
	if _, err := RandomDAGRequest(rng, cat, 20, 3, 3, 3); err == nil {
		t.Error("oversized DAG accepted (needs 12 > 10 services)")
	}
	if _, err := RandomDAGRequest(rng, cat, 20, 0, 1, 1); err == nil {
		t.Error("zero branches accepted")
	}
	if _, err := RandomDAGRequest(nil, cat, 20, 1, 1, 1); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RandomDAGRequest(rng, nil, 20, 1, 1, 1); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := RandomDAGRequest(rng, cat, 1, 1, 1, 1); err == nil {
		t.Error("single proxy accepted")
	}
}

func TestRequestGeneratorOnlyUsesDeployedServices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Deploy a limited set of services.
	caps := []CapabilitySet{
		NewCapabilitySet("a", "b", "c"),
		NewCapabilitySet("c", "d"),
		NewCapabilitySet("e", "f", "g", "h"),
	}
	gen, err := NewRequestGenerator(rng, caps, 2, 4)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	deployed := Union(caps...)
	for i := 0; i < 50; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for _, s := range req.SG.Services {
			if !deployed.Has(s) {
				t.Fatalf("request %d uses undeployed service %q", i, s)
			}
		}
		if req.Source < 0 || req.Source >= 3 || req.Dest < 0 || req.Dest >= 3 {
			t.Fatalf("request %d endpoints out of range: %+v", i, req)
		}
	}
}

func TestRequestGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	caps := []CapabilitySet{NewCapabilitySet("a"), NewCapabilitySet("b")}
	if _, err := NewRequestGenerator(nil, caps, 1, 1); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewRequestGenerator(rng, caps[:1], 1, 1); err == nil {
		t.Error("single proxy accepted")
	}
	if _, err := NewRequestGenerator(rng, []CapabilitySet{NewCapabilitySet(), NewCapabilitySet()}, 1, 1); err == nil {
		t.Error("empty deployment accepted")
	}
	if _, err := NewRequestGenerator(rng, caps, 1, 5); err == nil {
		t.Error("request length beyond deployed services accepted")
	}
	if _, err := NewRequestGenerator(rng, caps, 0, 1); err == nil {
		t.Error("zero min length accepted")
	}
}
