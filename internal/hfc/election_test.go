package hfc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hfc/internal/coords"
)

// TestBuildIndexedMatchesBrute is the tentpole equivalence property for the
// §3.3 elections: across 200 seeded instances large enough to engage the
// geo-indexed path (n >= borderIndexMinN, clusters >= clusterIndexMinSize),
// Build's full border tables are deeply equal to the always-brute
// BuildWithSelector reference. Instances mix separated blobs with snapped
// coordinates so exact cross-distance ties exercise the canonical
// (distance, low, high) order.
func TestBuildIndexedMatchesBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed property test")
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := borderIndexMinN + rng.Intn(256)
		k := 2 + rng.Intn(5)
		cmap, cl := randomClusteredInstance(rng, n, k)
		if seed%2 == 1 {
			// Snap to a coarse lattice: duplicated coordinates force exact
			// ties in the cross-cluster scans.
			for i, p := range cmap.Points {
				cmap.Points[i] = coords.Point{float64(int(p[0]/20)) * 20, float64(int(p[1]/20)) * 20}
			}
		}
		want, err := BuildWithSelector(cmap, cl, ClosestPairSelector())
		if err != nil {
			t.Fatalf("seed %d: brute build: %v", seed, err)
		}
		got, err := Build(cmap, cl)
		if err != nil {
			t.Fatalf("seed %d: indexed build: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d (n=%d k=%d): indexed border tables differ from brute", seed, n, k)
		}
	}
}

// TestDynamicIndexedMatchesDirectElections churns an overlay large enough
// for the Dynamic's lazy per-cluster indexes to engage and asserts that
// after every Leave/Rejoin the maintained tables equal a from-scratch brute
// election over the live membership.
func TestDynamicIndexedMatchesDirectElections(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n, k := borderIndexMinN+128, 4
	cmap, clustering := randomClusteredInstance(rng, n, k)
	topo, err := Build(cmap, clustering)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(topo)
	if !d.geoOK {
		t.Fatalf("expected geo indexes enabled at n=%d", n)
	}
	gone := make(map[int]bool)
	for step := 0; step < 120; step++ {
		if len(gone) > 0 && rng.Intn(3) == 0 {
			var nodes []int
			for v := range gone {
				nodes = append(nodes, v)
			}
			sort.Ints(nodes) // map order must not leak into the seeded draw
			v := nodes[rng.Intn(len(nodes))]
			if err := d.Rejoin(v); err != nil {
				t.Fatalf("step %d: Rejoin(%d): %v", step, v, err)
			}
			delete(gone, v)
		} else {
			v := rng.Intn(n)
			if gone[v] {
				continue
			}
			if err := d.Leave(v); err != nil {
				t.Fatalf("step %d: Leave(%d): %v", step, v, err)
			}
			gone[v] = true
		}
	}
	// Reference: brute-elect every live pair directly.
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			ma, mb := d.Members(a), d.Members(b)
			if len(ma) == 0 || len(mb) == 0 {
				continue
			}
			wantPair, err := closestPair(cmap, ma, mb)
			if err != nil {
				t.Fatalf("pair (%d,%d): %v", a, b, err)
			}
			wantBacks := backupPairs(cmap, ma, mb, wantPair, MaxBackupBorders)
			key := [2]int{a, b}
			if d.borders[key] != wantPair {
				t.Fatalf("pair (%d,%d): border=%v want %v", a, b, d.borders[key], wantPair)
			}
			if !reflect.DeepEqual(d.backups[key], wantBacks) {
				t.Fatalf("pair (%d,%d): backups=%v want %v", a, b, d.backups[key], wantBacks)
			}
		}
	}
}

// TestElectBordersEmptyCluster pins the error parity between the indexed
// and brute election paths.
func TestElectBordersEmptyCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cmap, clustering := randomClusteredInstance(rng, borderIndexMinN, 2)
	idx := buildElectionIndexes(cmap, clustering, 0)
	if idx == nil {
		t.Fatal("expected election indexes at threshold size")
	}
	if _, _, err := electBorders(cmap, nil, clustering.Clusters[1], idx.forPair(1)); err == nil {
		t.Fatal("expected error for empty cluster (indexed)")
	}
	if _, _, err := electBorders(cmap, nil, clustering.Clusters[1], nil); err == nil {
		t.Fatal("expected error for empty cluster (brute)")
	}
}
