package hfc

import (
	"errors"
	"fmt"
	"io"
)

// WriteDOT renders the HFC topology as a Graphviz graph: one subgraph
// cluster per overlay cluster with its members laid out by their embedded
// coordinates, border proxies emphasized, and the external border links
// drawn between clusters with their lengths. Feed the output to
// `dot -Kneato -n -Tsvg` to reproduce diagrams in the style of the paper's
// Figure 1.
func (t *Topology) WriteDOT(w io.Writer) error {
	if t == nil {
		return errors.New("hfc: nil topology")
	}
	var err error
	p := func(format string, args ...interface{}) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(w, format, args...)
	}
	p("graph hfc {\n")
	p("  layout=neato;\n  overlap=false;\n  node [shape=circle, fontsize=8, width=0.25, fixedsize=true];\n")
	for c := 0; c < t.NumClusters(); c++ {
		p("  subgraph cluster_%d {\n", c)
		p("    label=\"C%d\";\n    color=gray;\n", c)
		for _, m := range t.Members(c) {
			style := ""
			if t.IsBorder(m) {
				style = ", style=filled, fillcolor=lightgray"
			}
			pt := t.coords.Points[m]
			x, y := pt[0], 0.0
			if len(pt) > 1 {
				y = pt[1]
			}
			p("    n%d [pos=\"%.2f,%.2f!\"%s];\n", m, x, y, style)
		}
		p("  }\n")
	}
	for a := 0; a < t.NumClusters(); a++ {
		for b := a + 1; b < t.NumClusters(); b++ {
			u, v, berr := t.Border(a, b)
			if berr != nil {
				return berr
			}
			p("  n%d -- n%d [style=dashed, label=\"%.1f\", fontsize=7];\n", u, v, t.Dist(u, v))
		}
	}
	p("}\n")
	return err
}
