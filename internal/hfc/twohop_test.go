package hfc

import (
	"math/rand"
	"testing"
)

// TestAnyTwoNodesWithinTwoOverlayRelays is the §3 reachability property:
// between ANY two overlay nodes there is a path through at most two
// intermediate overlay nodes (the border pair), i.e. at most MaxOverlayHops
// hops. Checked exhaustively on random instances.
func TestAnyTwoNodesWithinTwoOverlayRelays(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		n := 20 + rng.Intn(40)
		k := 2 + rng.Intn(5)
		cmap, clustering := randomClusteredInstance(rng, n, k)
		topo, err := Build(cmap, clustering)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				path, err := topo.OverlayHopPath(u, v)
				if err != nil {
					t.Fatalf("OverlayHopPath(%d,%d): %v", u, v, err)
				}
				if hops := len(path) - 1; hops > MaxOverlayHops {
					t.Fatalf("path %v from %d to %d has %d hops, §3 bound is %d", path, u, v, hops, MaxOverlayHops)
				}
				if path[0] != u || path[len(path)-1] != v {
					t.Fatalf("path %v does not connect %d to %d", path, u, v)
				}
				if len(path) < 3 {
					continue // no intermediate relays to check
				}
				for _, hop := range path[1 : len(path)-1] {
					cu, cv := topo.ClusterOf(u), topo.ClusterOf(v)
					if c := topo.ClusterOf(hop); c != cu && c != cv {
						t.Fatalf("relay %d of path %v lies in cluster %d, not in %d or %d", hop, path, c, cu, cv)
					}
				}
			}
		}
	}
}

// TestTwoRelayPropertySurvivesChurn asserts the same bound holds over LIVE
// membership under incremental maintenance: for any two present nodes, the
// dyn-elected border pair yields a ≤ MaxOverlayHops path whose relays are
// all live.
func TestTwoRelayPropertySurvivesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		n := 24 + rng.Intn(40)
		k := 3 + rng.Intn(3)
		cmap, clustering := randomClusteredInstance(rng, n, k)
		topo, err := Build(cmap, clustering)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		dyn := NewDynamic(topo)
		// Crash ~a third of the nodes, keeping every cluster non-empty.
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				continue
			}
			if len(dyn.Members(topo.ClusterOf(i))) == 1 {
				continue
			}
			if err := dyn.Leave(i); err != nil {
				t.Fatalf("Leave(%d): %v", i, err)
			}
		}
		for u := 0; u < n; u++ {
			if !dyn.Present(u) {
				continue
			}
			for v := 0; v < n; v++ {
				if !dyn.Present(v) || u == v {
					continue
				}
				cu, cv := topo.ClusterOf(u), topo.ClusterOf(v)
				if cu == cv {
					continue // direct hop, trivially within bound
				}
				bu, bv, ok := dyn.Border(cu, cv)
				if !ok {
					t.Fatalf("no live border between clusters %d and %d", cu, cv)
				}
				if !dyn.Present(bu) || !dyn.Present(bv) {
					t.Fatalf("elected border (%d,%d) includes an absent node", bu, bv)
				}
				// u → bu → bv → v collapses when an endpoint is itself the
				// border: never more than two intermediate relays.
				hops := 1
				if bu != u {
					hops++
				}
				if bv != v {
					hops++
				}
				if hops > MaxOverlayHops {
					t.Fatalf("live path %d→%d→%d→%d has %d hops, bound %d", u, bu, bv, v, hops, MaxOverlayHops)
				}
			}
		}
	}
}
