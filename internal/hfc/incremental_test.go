package hfc

import (
	"math/rand"
	"reflect"
	"testing"
)

// rebuildReference builds a fresh Dynamic over the same topology, replays
// the live/absent membership, and runs a full Rebuild — the ground truth
// incremental maintenance must match.
func rebuildReference(t *testing.T, topo *Topology, present []bool) *Dynamic {
	t.Helper()
	ref := NewDynamic(topo)
	for node, p := range present {
		if !p {
			if err := ref.Leave(node); err != nil {
				t.Fatalf("reference Leave(%d): %v", node, err)
			}
		}
	}
	if err := ref.Rebuild(); err != nil {
		t.Fatalf("reference Rebuild: %v", err)
	}
	return ref
}

// TestDynamicEquivalentToRebuildUnderChurn is the satellite equivalence
// property test: after ANY sequence of leaves and rejoins, the incremental
// border tables equal a full rebuild over the same live membership. Border
// endpoints are deliberately targeted (they are the nodes whose departure
// actually changes elections).
func TestDynamicEquivalentToRebuildUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(50)
		k := 3 + rng.Intn(4)
		cmap, clustering := randomClusteredInstance(rng, n, k)
		topo, err := Build(cmap, clustering)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		dyn := NewDynamic(topo)
		present := make([]bool, n)
		for i := range present {
			present[i] = true
		}
		for step := 0; step < 60; step++ {
			// Half the time target a current border endpoint, otherwise a
			// uniform node; flip its membership.
			var node int
			if rng.Intn(2) == 0 && len(topo.BorderNodes()) > 0 {
				node = topo.BorderNodes()[rng.Intn(len(topo.BorderNodes()))]
			} else {
				node = rng.Intn(n)
			}
			if present[node] {
				// Keep every cluster non-empty so routing stays defined.
				c := topo.ClusterOf(node)
				if len(dyn.Members(c)) == 1 {
					continue
				}
				if err := dyn.Leave(node); err != nil {
					t.Fatalf("Leave(%d): %v", node, err)
				}
			} else {
				if err := dyn.Rejoin(node); err != nil {
					t.Fatalf("Rejoin(%d): %v", node, err)
				}
			}
			present[node] = !present[node]

			ref := rebuildReference(t, topo, present)
			if !reflect.DeepEqual(dyn.borders, ref.borders) {
				t.Fatalf("trial %d step %d: incremental borders diverge from rebuild", trial, step)
			}
			if !reflect.DeepEqual(dyn.backups, ref.backups) {
				t.Fatalf("trial %d step %d: incremental backups diverge from rebuild", trial, step)
			}
		}
		// The incremental path must actually skip work: strictly fewer
		// recomputes than checks (the whole point of the maintenance).
		st := dyn.Stats()
		if st.PairsRecomputed >= st.PairsChecked {
			t.Errorf("trial %d: recomputed %d of %d checked pairs — nothing was skipped",
				trial, st.PairsRecomputed, st.PairsChecked)
		}
	}
}

func TestDynamicNoChurnMatchesStatic(t *testing.T) {
	cmap, clustering := randomClusteredInstance(rand.New(rand.NewSource(3)), 40, 4)
	topo, err := Build(cmap, clustering)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dyn := NewDynamic(topo)
	k := topo.NumClusters()
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			wantA, wantB, err := topo.Border(a, b)
			if err != nil {
				t.Fatalf("Border(%d,%d): %v", a, b, err)
			}
			gotA, gotB, ok := dyn.Border(a, b)
			if !ok || gotA != wantA || gotB != wantB {
				t.Errorf("dyn.Border(%d,%d) = (%d,%d,%v), want (%d,%d,true)", a, b, gotA, gotB, ok, wantA, wantB)
			}
		}
	}
}

func TestDynamicMembershipErrors(t *testing.T) {
	cmap, clustering := randomClusteredInstance(rand.New(rand.NewSource(4)), 12, 3)
	topo, err := Build(cmap, clustering)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dyn := NewDynamic(topo)
	if err := dyn.Leave(-1); err == nil {
		t.Error("out-of-range Leave accepted")
	}
	if err := dyn.Rejoin(0); err == nil {
		t.Error("Rejoin of a present node accepted")
	}
	if err := dyn.Leave(0); err != nil {
		t.Fatalf("Leave(0): %v", err)
	}
	if err := dyn.Leave(0); err == nil {
		t.Error("double Leave accepted")
	}
	if dyn.Present(0) {
		t.Error("node 0 still present after Leave")
	}
	if err := dyn.Rejoin(0); err != nil {
		t.Fatalf("Rejoin(0): %v", err)
	}
	if !dyn.Present(0) {
		t.Error("node 0 absent after Rejoin")
	}
}

// TestDynamicEmptiedClusterClearsPairs drains a whole cluster and checks
// its pairs disappear, then repopulates it and checks they come back.
func TestDynamicEmptiedClusterClearsPairs(t *testing.T) {
	cmap, clustering := randomClusteredInstance(rand.New(rand.NewSource(5)), 12, 3)
	topo, err := Build(cmap, clustering)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dyn := NewDynamic(topo)
	victims := append([]int(nil), topo.Members(0)...)
	for _, v := range victims {
		if err := dyn.Leave(v); err != nil {
			t.Fatalf("Leave(%d): %v", v, err)
		}
	}
	if _, _, ok := dyn.Border(0, 1); ok {
		t.Error("border to an emptied cluster still exists")
	}
	for _, v := range victims {
		if err := dyn.Rejoin(v); err != nil {
			t.Fatalf("Rejoin(%d): %v", v, err)
		}
	}
	wantA, wantB, err := topo.Border(0, 1)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	gotA, gotB, ok := dyn.Border(0, 1)
	if !ok || gotA != wantA || gotB != wantB {
		t.Errorf("after full rejoin Border(0,1) = (%d,%d,%v), want (%d,%d,true)", gotA, gotB, ok, wantA, wantB)
	}
}
