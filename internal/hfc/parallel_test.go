package hfc

import (
	"math/rand"
	"reflect"
	"testing"

	"hfc/internal/cluster"
	"hfc/internal/coords"
)

// randomClusteredInstance generates n points in k well-separated blobs with
// an explicit assignment — a quick way to make realistic Build inputs.
func randomClusteredInstance(rng *rand.Rand, n, k int) (*coords.Map, *cluster.Result) {
	pts := make([]coords.Point, n)
	assignment := make([]int, n)
	for i := range pts {
		c := i % k
		assignment[i] = c
		pts[i] = coords.Point{
			float64(c%4)*300 + rng.Float64()*40,
			float64(c/4)*300 + rng.Float64()*40,
		}
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		panic(err)
	}
	return cmap, manualClustering(assignment)
}

// TestBuildParallelBitIdentical asserts the tentpole's hard gate: the
// parallel border construction produces a topology deeply equal to the
// serial Build for every worker count, across several instances.
func TestBuildParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		n := 24 + rng.Intn(60)
		k := 2 + rng.Intn(6)
		cmap, clustering := randomClusteredInstance(rng, n, k)
		want, err := Build(cmap, clustering)
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 4, -1} {
			got, err := BuildParallel(cmap, clustering, workers)
			if err != nil {
				t.Fatalf("trial %d: BuildParallel(%d): %v", trial, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d: BuildParallel(workers=%d) differs from Build", trial, workers)
			}
		}
	}
}

func TestBuildParallelValidation(t *testing.T) {
	cmap, clustering := randomClusteredInstance(rand.New(rand.NewSource(1)), 12, 3)
	if _, err := BuildParallel(nil, clustering, 2); err == nil {
		t.Error("nil map accepted")
	}
	if _, err := BuildParallel(cmap, nil, 2); err == nil {
		t.Error("nil clustering accepted")
	}
	short := manualClustering([]int{0, 0, 1})
	if _, err := BuildParallel(cmap, short, 2); err == nil {
		t.Error("mismatched clustering accepted")
	}
}
