package hfc

import (
	"math"
	"math/rand"
	"testing"

	"hfc/internal/cluster"
	"hfc/internal/coords"
)

func selectorFixtureMap(t *testing.T) (*coords.Map, *cluster.Result) {
	t.Helper()
	pts := []coords.Point{
		{0, 0}, {5, 0}, {2, 4},
		{100, 0}, {95, 0}, {98, 5},
		{0, 100}, {0, 95}, {5, 98},
	}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return cmap, manualClustering([]int{0, 0, 0, 1, 1, 1, 2, 2, 2})
}

func TestBuildWithSelectorValidation(t *testing.T) {
	cmap, clustering := selectorFixtureMap(t)
	if _, err := BuildWithSelector(cmap, clustering, nil); err == nil {
		t.Error("nil selector accepted")
	}
	if _, err := BuildWithSelector(nil, clustering, ClosestPairSelector()); err == nil {
		t.Error("nil map accepted")
	}
	if _, err := BuildWithSelector(cmap, nil, ClosestPairSelector()); err == nil {
		t.Error("nil clustering accepted")
	}
	short := manualClustering([]int{0, 0})
	if _, err := BuildWithSelector(cmap, short, ClosestPairSelector()); err == nil {
		t.Error("size-mismatched clustering accepted")
	}
	// A selector returning nodes outside the requested clusters must be
	// rejected.
	liar := func(cmap *coords.Map, a, b []int) (BorderPair, error) {
		return BorderPair{Low: a[0], High: a[0]}, nil
	}
	if _, err := BuildWithSelector(cmap, clustering, liar); err == nil {
		t.Error("out-of-cluster selector output accepted")
	}
}

func TestRandomPairSelectorStaysInClusters(t *testing.T) {
	cmap, clustering := selectorFixtureMap(t)
	topo, err := BuildWithSelector(cmap, clustering, RandomPairSelector(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatalf("BuildWithSelector: %v", err)
	}
	for a := 0; a < topo.NumClusters(); a++ {
		for b := 0; b < topo.NumClusters(); b++ {
			if a == b {
				continue
			}
			u, v, err := topo.Border(a, b)
			if err != nil {
				t.Fatalf("Border: %v", err)
			}
			if topo.ClusterOf(u) != a || topo.ClusterOf(v) != b {
				t.Errorf("random border (%d,%d) outside clusters (%d,%d)", u, v, a, b)
			}
		}
	}
}

func TestHeadSelectorUsesOneHeadPerCluster(t *testing.T) {
	cmap, clustering := selectorFixtureMap(t)
	topo, err := BuildWithSelector(cmap, clustering, HeadSelector())
	if err != nil {
		t.Fatalf("BuildWithSelector: %v", err)
	}
	// Every cluster's border toward all other clusters is the same node —
	// the single-logical-node representation.
	for c := 0; c < topo.NumClusters(); c++ {
		borders := topo.BorderNodesOf(c)
		if len(borders) != 1 {
			t.Errorf("cluster %d has %d border nodes under HeadSelector, want 1", c, len(borders))
		}
	}
	// The head is the member closest to the centroid.
	members := topo.Members(0)
	centroid := coords.Point{0, 0}
	for _, m := range members {
		centroid[0] += cmap.Points[m][0] / float64(len(members))
		centroid[1] += cmap.Points[m][1] / float64(len(members))
	}
	bestD := math.Inf(1)
	best := -1
	for _, m := range members {
		if d := coords.Dist(cmap.Points[m], centroid); d < bestD {
			bestD, best = d, m
		}
	}
	if got := topo.BorderNodesOf(0)[0]; got != best {
		t.Errorf("head of cluster 0 = %d, want centroid-closest %d", got, best)
	}
}

func TestSelectorsOnEmptyCluster(t *testing.T) {
	cmap, err := coords.NewMap([]coords.Point{{0, 0}})
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	for _, sel := range []BorderSelector{
		ClosestPairSelector(),
		RandomPairSelector(rand.New(rand.NewSource(1))),
		HeadSelector(),
	} {
		if _, err := sel(cmap, nil, []int{0}); err == nil {
			t.Error("selector accepted empty cluster")
		}
	}
}

func TestConstrainedDistMatchesHopPath(t *testing.T) {
	cmap, clustering := selectorFixtureMap(t)
	topo, err := Build(cmap, clustering)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for u := 0; u < topo.N(); u++ {
		for v := 0; v < topo.N(); v++ {
			path, err := topo.OverlayHopPath(u, v)
			if err != nil {
				t.Fatalf("OverlayHopPath: %v", err)
			}
			want := topo.PathLength(path)
			if got := topo.ConstrainedDist(u, v); math.Abs(got-want) > 1e-12 {
				t.Fatalf("ConstrainedDist(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestExternalLinkLengthErrors(t *testing.T) {
	cmap, clustering := selectorFixtureMap(t)
	topo, err := Build(cmap, clustering)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := topo.ExternalLinkLength(1, 1); err == nil {
		t.Error("same-cluster external link accepted")
	}
	if _, err := topo.ExternalLinkLength(-1, 1); err == nil {
		t.Error("out-of-range cluster accepted")
	}
}
