package hfc

import (
	"fmt"
	"sort"

	"hfc/internal/coords"
	"hfc/internal/geo"
)

// DynamicStats counts the maintenance work a Dynamic has performed, so
// tests and benchmarks can assert that incremental updates really skip the
// untouched cluster pairs a full rebuild would rescan.
type DynamicStats struct {
	// Leaves and Rejoins count accepted membership changes.
	Leaves, Rejoins int
	// PairsChecked counts cluster pairs examined across all updates;
	// PairsRecomputed counts how many of those actually re-ran the
	// closest-pair and backup scans.
	PairsChecked, PairsRecomputed int
}

// Dynamic maintains a topology's border tables incrementally under proxy
// churn (§4/§5): when a node leaves (crashes) or rejoins (recovers), only
// the cluster pairs whose border election that node could have influenced
// are recomputed, instead of rebuilding every pair from scratch.
//
// The incremental rule is provably equivalent to a full rebuild over the
// live membership: a departing node that is not an endpoint of a pair's
// primary or backup borders never won any greedy argmin for that pair, and
// with ties broken toward smaller indices, removing a losing candidate
// cannot change any winner — so those pairs are skipped outright. Touched
// pairs re-run exactly the closestPair + backupPairs election Build uses.
//
// A Dynamic is NOT safe for concurrent use; the overlay runtime guards it
// with its own mutex.
type Dynamic struct {
	cmap *coords.Map
	// home[n] is node n's (static) cluster; nodes never migrate.
	home []int
	// present[n] reports whether node n is currently live.
	present []bool
	// members[c] lists cluster c's live members, sorted ascending — the
	// same order Build scans, so elections match a rebuild bit for bit.
	members [][]int
	// borders and backups mirror Topology's tables over live members only.
	// Pairs touching an empty cluster are absent.
	borders map[[2]int]BorderPair
	backups map[[2]int][]BorderPair
	// geoOK enables the lazily built per-cluster geo indexes (geoIdx) the
	// re-elections query in place of brute scans; an entry is dropped
	// whenever its cluster's membership changes.
	geoOK  bool
	geoIdx []geo.Index
	stats  DynamicStats
}

// NewDynamic wraps a built topology for incremental maintenance. The
// initial state (all nodes present) copies the topology's own border
// tables, so a churn-free Dynamic agrees with the static Build exactly.
func NewDynamic(t *Topology) *Dynamic {
	n := t.N()
	k := t.NumClusters()
	d := &Dynamic{
		cmap:    t.coords,
		home:    make([]int, n),
		present: make([]bool, n),
		members: make([][]int, k),
		borders: make(map[[2]int]BorderPair, len(t.borders)),
		backups: make(map[[2]int][]BorderPair, len(t.backups)),
	}
	for i := 0; i < n; i++ {
		d.home[i] = t.ClusterOf(i)
		d.present[i] = true
	}
	for c := 0; c < k; c++ {
		d.members[c] = append([]int(nil), t.Members(c)...)
	}
	for key, pair := range t.borders {
		d.borders[key] = pair
	}
	for key, backs := range t.backups {
		d.backups[key] = append([]BorderPair(nil), backs...)
	}
	d.geoOK = n >= borderIndexMinN && geo.Finite(t.coords.Points)
	d.geoIdx = make([]geo.Index, k)
	return d
}

// indexFor returns the cached geo index over cluster c's live members,
// building it on first use after a membership change, or nil when the pair
// should elect brute-force (small overlay, small cluster, or a failed
// build, which disables indexing for the Dynamic's lifetime).
func (d *Dynamic) indexFor(c int) geo.Index {
	if !d.geoOK {
		return nil
	}
	if d.geoIdx[c] != nil {
		return d.geoIdx[c]
	}
	if len(d.members[c]) < clusterIndexMinSize {
		return nil
	}
	idx, err := geo.NewIndex(d.cmap.Points, d.members[c], geo.Auto)
	if err != nil {
		d.geoOK = false
		return nil
	}
	d.geoIdx[c] = idx
	return idx
}

// NumClusters returns the (fixed) cluster count.
func (d *Dynamic) NumClusters() int { return len(d.members) }

// Present reports whether a node is currently live.
func (d *Dynamic) Present(node int) bool {
	return node >= 0 && node < len(d.present) && d.present[node]
}

// Members returns cluster c's live members, sorted (shared slice — do not
// modify).
func (d *Dynamic) Members(c int) []int { return d.members[c] }

// Stats returns the cumulative maintenance counters.
func (d *Dynamic) Stats() DynamicStats { return d.stats }

// Border returns the live border pair between two distinct clusters,
// oriented so the first node lies in cluster a. ok is false when either
// cluster has no live members (or a == b / out of range), meaning no border
// election exists.
func (d *Dynamic) Border(a, b int) (inA, inB int, ok bool) {
	if a == b || a < 0 || b < 0 || a >= len(d.members) || b >= len(d.members) {
		return 0, 0, false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	pair, ok := d.borders[[2]int{lo, hi}]
	if !ok {
		return 0, 0, false
	}
	if a == lo {
		return pair.Low, pair.High, true
	}
	return pair.High, pair.Low, true
}

// BackupBorders returns the live ranked backup pairs between two distinct
// clusters, each oriented as {inA, inB}.
func (d *Dynamic) BackupBorders(a, b int) [][2]int {
	if a == b || a < 0 || b < 0 || a >= len(d.members) || b >= len(d.members) {
		return nil
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	pairs := d.backups[[2]int{lo, hi}]
	out := make([][2]int, len(pairs))
	for i, p := range pairs {
		if a == lo {
			out[i] = [2]int{p.Low, p.High}
		} else {
			out[i] = [2]int{p.High, p.Low}
		}
	}
	return out
}

// touches reports whether node appears as an endpoint of the pair's current
// primary or backup borders.
func (d *Dynamic) touches(key [2]int, node int) bool {
	if p, ok := d.borders[key]; ok && (p.Low == node || p.High == node) {
		return true
	}
	for _, p := range d.backups[key] {
		if p.Low == node || p.High == node {
			return true
		}
	}
	return false
}

// recomputePair re-runs the §3.3 election for one cluster pair over the
// live membership. Empty clusters clear the pair's tables.
func (d *Dynamic) recomputePair(key [2]int) error {
	lo, hi := key[0], key[1]
	if len(d.members[lo]) == 0 || len(d.members[hi]) == 0 {
		delete(d.borders, key)
		delete(d.backups, key)
		return nil
	}
	pair, backs, err := electBorders(d.cmap, d.members[lo], d.members[hi], d.indexFor(hi))
	if err != nil {
		return fmt.Errorf("hfc: recomputing border pair (%d,%d): %w", lo, hi, err)
	}
	d.borders[key] = pair
	d.backups[key] = backs
	return nil
}

// pairKeysOf enumerates the normalized pair keys of cluster c against every
// other cluster, in ascending order of the other cluster's ID.
func (d *Dynamic) pairKeysOf(c int) [][2]int {
	keys := make([][2]int, 0, len(d.members)-1)
	for o := 0; o < len(d.members); o++ {
		if o == c {
			continue
		}
		lo, hi := c, o
		if lo > hi {
			lo, hi = hi, lo
		}
		keys = append(keys, [2]int{lo, hi})
	}
	return keys
}

// Leave removes a live node (crash or departure, §5.2) and repairs the
// border tables of its cluster's pairs. Only pairs whose current primary or
// backup borders include the node are re-elected; every other pair is
// provably unchanged. Leaving while already absent is an error.
func (d *Dynamic) Leave(node int) error {
	if node < 0 || node >= len(d.present) {
		return fmt.Errorf("hfc: leave of node %d out of range [0,%d)", node, len(d.present))
	}
	if !d.present[node] {
		return fmt.Errorf("hfc: node %d is already absent", node)
	}
	d.present[node] = false
	c := d.home[node]
	mem := d.members[c]
	i := sort.SearchInts(mem, node)
	d.members[c] = append(mem[:i], mem[i+1:]...)
	d.geoIdx[c] = nil
	d.stats.Leaves++
	for _, key := range d.pairKeysOf(c) {
		d.stats.PairsChecked++
		// An emptied cluster invalidates all its pairs regardless of
		// endpoints; otherwise only elections the node won need re-running.
		if len(d.members[c]) != 0 && !d.touches(key, node) {
			continue
		}
		d.stats.PairsRecomputed++
		if err := d.recomputePair(key); err != nil {
			return err
		}
	}
	return nil
}

// Rejoin restores an absent node to its home cluster (recovery, §5.2) and
// re-elects every border pair of that cluster: a returning node can become
// the new closest cross pair toward any other cluster, so all of them are
// checked by re-running the election. Rejoining while present is an error.
func (d *Dynamic) Rejoin(node int) error {
	if node < 0 || node >= len(d.present) {
		return fmt.Errorf("hfc: rejoin of node %d out of range [0,%d)", node, len(d.present))
	}
	if d.present[node] {
		return fmt.Errorf("hfc: node %d is already present", node)
	}
	d.present[node] = true
	c := d.home[node]
	mem := d.members[c]
	i := sort.SearchInts(mem, node)
	d.members[c] = append(mem[:i], append([]int{node}, mem[i:]...)...)
	d.geoIdx[c] = nil
	d.stats.Rejoins++
	for _, key := range d.pairKeysOf(c) {
		d.stats.PairsChecked++
		d.stats.PairsRecomputed++
		if err := d.recomputePair(key); err != nil {
			return err
		}
	}
	return nil
}

// DynamicSnapshot is a deep copy of a Dynamic's live border state, in a
// directly comparable form: the chaos property tests assert a healed
// overlay's snapshot is DeepEqual to a freshly rebuilt one.
type DynamicSnapshot struct {
	// Members lists each cluster's live members, sorted ascending.
	Members [][]int
	// Borders and Backups mirror the live election tables, keyed by
	// normalized cluster pair.
	Borders map[[2]int]BorderPair
	Backups map[[2]int][]BorderPair
}

// Snapshot deep-copies the Dynamic's live membership and border tables.
func (d *Dynamic) Snapshot() DynamicSnapshot {
	s := DynamicSnapshot{
		Members: make([][]int, len(d.members)),
		Borders: make(map[[2]int]BorderPair, len(d.borders)),
		Backups: make(map[[2]int][]BorderPair, len(d.backups)),
	}
	for c, mem := range d.members {
		s.Members[c] = append([]int(nil), mem...)
	}
	for k, p := range d.borders {
		s.Borders[k] = p
	}
	for k, ps := range d.backups {
		s.Backups[k] = append([]BorderPair(nil), ps...)
	}
	return s
}

// Rebuild re-elects every cluster pair from the live membership, ignoring
// the incremental state. It is the reference the equivalence tests compare
// against and the baseline the maintenance benchmark measures incremental
// updates over.
func (d *Dynamic) Rebuild() error {
	k := len(d.members)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if err := d.recomputePair([2]int{a, b}); err != nil {
				return err
			}
		}
	}
	return nil
}
