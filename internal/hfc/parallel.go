package hfc

import (
	"errors"
	"fmt"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/par"
)

// pairResult is the per-cluster-pair output of the parallel border scan.
type pairResult struct {
	a, b    int
	primary BorderPair
	backups []BorderPair
	err     error
}

// BuildParallel is Build with the per-cluster-pair border scans — the §3.3
// closest-pair searches and their node-disjoint backup rankings — fanned out
// across a bounded worker pool (zero or one workers selects the serial
// scan; negative selects GOMAXPROCS).
//
// Determinism contract: each cluster pair's scan reads only the immutable
// coordinate map, member lists, and prebuilt per-cluster geo indexes, and
// writes a slot private to that pair; assembly then walks the pairs in
// exactly the serial a < b order. The resulting topology is therefore
// bit-identical to Build(cmap, clustering) for any worker count. Only the
// paper's closest-pair rule is supported — the ablation selectors draw
// from rng and must stay on BuildWithSelector.
func BuildParallel(cmap *coords.Map, clustering *cluster.Result, workers int) (*Topology, error) {
	if cmap == nil {
		return nil, errors.New("hfc: nil coordinate map")
	}
	if clustering == nil {
		return nil, errors.New("hfc: nil clustering")
	}
	if len(clustering.Assignment) != cmap.N() {
		return nil, fmt.Errorf("hfc: clustering covers %d nodes but map has %d", len(clustering.Assignment), cmap.N())
	}
	k := clustering.NumClusters()
	elect := buildElectionIndexes(cmap, clustering, workers)
	results := make([]pairResult, 0, k*(k-1)/2)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			results = append(results, pairResult{a: a, b: b})
		}
	}
	par.For(len(results), workers, func(i int) {
		r := &results[i]
		pair, backs, err := electBorders(cmap, clustering.Clusters[r.a], clustering.Clusters[r.b], elect.forPair(r.b))
		if err != nil {
			r.err = fmt.Errorf("hfc: selecting border pair (%d,%d): %w", r.a, r.b, err)
			return
		}
		r.primary = pair
		r.backups = backs
	})

	t := &Topology{
		coords:               cmap,
		clustering:           clustering,
		borders:              make(map[[2]int]BorderPair),
		backups:              make(map[[2]int][]BorderPair),
		borderNodesByCluster: make(map[int][]int),
	}
	borderSet := make(map[int]bool)
	backupSet := make(map[int]bool)
	perCluster := make(map[int]map[int]bool)
	t.borderInA = make([][]int, k)
	for a := range t.borderInA {
		t.borderInA[a] = make([]int, k)
		for b := range t.borderInA[a] {
			t.borderInA[a][b] = -1
		}
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		a, b, pair := r.a, r.b, r.primary
		if clustering.Assignment[pair.Low] != a || clustering.Assignment[pair.High] != b {
			return nil, fmt.Errorf("hfc: selector returned pair (%d,%d) outside clusters (%d,%d)", pair.Low, pair.High, a, b)
		}
		t.borders[[2]int{a, b}] = pair
		t.borderInA[a][b] = pair.Low
		t.borderInA[b][a] = pair.High
		if perCluster[a] == nil {
			perCluster[a] = make(map[int]bool)
		}
		if perCluster[b] == nil {
			perCluster[b] = make(map[int]bool)
		}
		borderSet[pair.Low] = true
		borderSet[pair.High] = true
		perCluster[a][pair.Low] = true
		perCluster[b][pair.High] = true
		t.backups[[2]int{a, b}] = r.backups
		for _, bp := range r.backups {
			backupSet[bp.Low] = true
			backupSet[bp.High] = true
		}
	}
	t.borderNodes = sortedKeys(borderSet)
	t.backupNodes = sortedKeys(backupSet)
	for c, set := range perCluster {
		t.borderNodesByCluster[c] = sortedKeys(set)
	}
	return t, nil
}
