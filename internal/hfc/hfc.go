// Package hfc constructs the paper's Hierarchically Fully-Connected overlay
// topology (§3): given the embedded coordinates of the overlay proxies and a
// distance-based clustering, it selects the border-proxy pair for every pair
// of clusters (the closest cross-cluster node pair, §3.3) and materializes
// the per-node topology views that the election-winner proxy P distributes
// (Fig. 4): cluster membership, the border table, and the coordinates every
// node is entitled to keep (own cluster members + all border proxies).
package hfc

import (
	"errors"
	"fmt"
	"sort"

	"hfc/internal/cluster"
	"hfc/internal/coords"
)

// BorderPair is the pair of border proxies connecting two clusters: the two
// closest nodes drawn one from each cluster. Low/High are overlay node
// indices; Low belongs to the cluster with the smaller cluster ID.
type BorderPair struct {
	Low, High int
}

// Topology is a constructed HFC overlay: intra-cluster connectivity is full,
// and clusters are fully connected pairwise through their border pairs.
type Topology struct {
	coords     *coords.Map
	clustering *cluster.Result
	// borders maps a normalized cluster-ID pair {lo, hi} to its border
	// pair.
	borders map[[2]int]BorderPair
	// backups maps a normalized cluster-ID pair {lo, hi} to its ranked
	// backup border pairs: successive closest cross pairs that are
	// node-disjoint from every earlier pair for the same cluster pair, so
	// a crashed primary endpoint never disables the first backup too.
	backups map[[2]int][]BorderPair
	// borderNodes is the sorted set of all primary border proxies in the
	// system; backupNodes is the sorted set of nodes that appear only in
	// backup pairs (the two sets may overlap across different cluster
	// pairs — backupNodes is reported as computed, without subtracting
	// borderNodes).
	borderNodes []int
	backupNodes []int
	// borderNodesByCluster[c] lists cluster c's border proxies, sorted.
	borderNodesByCluster map[int][]int
	// borderInA[a][b] is the border node of cluster a toward cluster b
	// (-1 on the diagonal); a dense mirror of borders for hot paths.
	borderInA [][]int
}

// MaxBackupBorders is how many backup border pairs Build precomputes per
// cluster pair (fewer when the clusters are too small to supply disjoint
// pairs).
const MaxBackupBorders = 2

// Build constructs the HFC topology from an embedded coordinate map and a
// clustering of the same node set. Border pairs are chosen per §3.3: for
// every pair of clusters, the cross-cluster node pair at minimum embedded
// distance, with deterministic index-order tie-breaking. Large overlays
// elect through per-cluster geo indexes (see election.go); the result is
// bit-identical to BuildWithSelector(cmap, clustering,
// ClosestPairSelector()), which always runs the brute scans.
func Build(cmap *coords.Map, clustering *cluster.Result) (*Topology, error) {
	return BuildParallel(cmap, clustering, 0)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// backupPairs ranks the backup border pairs between two member lists:
// repeatedly the closest cross pair whose endpoints are node-disjoint from
// every pair chosen so far (primary included). Disjointness guarantees the
// first backup survives any single crash among the primary's endpoints;
// small clusters yield fewer (possibly zero) backups.
// improves reports whether candidate pair (a, b) at distance d should
// replace the incumbent best pair: strictly closer, or an exact distance tie
// broken toward smaller node indices so border election is deterministic.
func improves(d, bestDist float64, a, b int, best BorderPair) bool {
	if best.Low == -1 || d < bestDist {
		return true
	}
	//hfcvet:ignore floatdist exact ties break toward smaller indices for deterministic border pairs
	return d == bestDist && (a < best.Low || (a == best.Low && b < best.High))
}

func backupPairs(cmap *coords.Map, membersA, membersB []int, primary BorderPair, max int) []BorderPair {
	used := map[int]bool{primary.Low: true, primary.High: true}
	var out []BorderPair
	for len(out) < max {
		best := BorderPair{Low: -1, High: -1}
		bestDist := 0.0
		for _, a := range membersA {
			if used[a] {
				continue
			}
			for _, b := range membersB {
				if used[b] {
					continue
				}
				d := cmap.Dist(a, b)
				if improves(d, bestDist, a, b, best) {
					best = BorderPair{Low: a, High: b}
					bestDist = d
				}
			}
		}
		if best.Low == -1 {
			break
		}
		used[best.Low], used[best.High] = true, true
		out = append(out, best)
	}
	return out
}

// closestPair returns the minimum-distance cross pair between two member
// lists. Ties break toward smaller node indices for determinism.
func closestPair(cmap *coords.Map, membersA, membersB []int) (BorderPair, error) {
	if len(membersA) == 0 || len(membersB) == 0 {
		return BorderPair{}, errors.New("hfc: empty cluster")
	}
	best := BorderPair{Low: -1, High: -1}
	bestDist := 0.0
	for _, a := range membersA {
		for _, b := range membersB {
			d := cmap.Dist(a, b)
			if improves(d, bestDist, a, b, best) {
				best = BorderPair{Low: a, High: b}
				bestDist = d
			}
		}
	}
	return best, nil
}

// N returns the number of overlay nodes.
func (t *Topology) N() int { return t.coords.N() }

// NumClusters returns the number of clusters.
func (t *Topology) NumClusters() int { return t.clustering.NumClusters() }

// ClusterOf returns the cluster ID of an overlay node.
func (t *Topology) ClusterOf(node int) int { return t.clustering.Assignment[node] }

// Members returns the member list of a cluster (sorted, shared slice — do
// not modify).
func (t *Topology) Members(clusterID int) []int { return t.clustering.Clusters[clusterID] }

// Coords returns the underlying coordinate map.
func (t *Topology) Coords() *coords.Map { return t.coords }

// Clustering returns the clustering the topology was built from.
func (t *Topology) Clustering() *cluster.Result { return t.clustering }

// Dist returns the embedded (decision-time) distance between two overlay
// nodes. It is the distance metric every HFC routing decision uses.
func (t *Topology) Dist(u, v int) float64 { return t.coords.Dist(u, v) }

// Border returns the border pair connecting two distinct clusters, oriented
// so that the first return value lies in cluster a and the second in
// cluster b.
func (t *Topology) Border(a, b int) (inA, inB int, err error) {
	if a == b {
		return 0, 0, fmt.Errorf("hfc: no border pair within a single cluster %d", a)
	}
	if a < 0 || a >= len(t.borderInA) || b < 0 || b >= len(t.borderInA) {
		return 0, 0, fmt.Errorf("hfc: no border pair for clusters (%d,%d)", a, b)
	}
	return t.borderInA[a][b], t.borderInA[b][a], nil
}

// BackupBorders returns the ranked backup border pairs between two distinct
// clusters, each oriented as {inA, inB}. The list may be empty when the
// clusters are too small to supply node-disjoint spares.
func (t *Topology) BackupBorders(a, b int) ([][2]int, error) {
	if a == b {
		return nil, fmt.Errorf("hfc: no border pairs within a single cluster %d", a)
	}
	if a < 0 || a >= len(t.borderInA) || b < 0 || b >= len(t.borderInA) {
		return nil, fmt.Errorf("hfc: no border pairs for clusters (%d,%d)", a, b)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	pairs := t.backups[[2]int{lo, hi}]
	out := make([][2]int, len(pairs))
	for i, p := range pairs {
		if a == lo {
			out[i] = [2]int{p.Low, p.High}
		} else {
			out[i] = [2]int{p.High, p.Low}
		}
	}
	return out, nil
}

// ConstrainedDist returns the length of the HFC overlay hop path from u to
// v without allocating: direct embedded distance within a cluster, and the
// through-the-borders sum across clusters. It is the hot-path form of
// PathLength(OverlayHopPath(u, v)).
func (t *Topology) ConstrainedDist(u, v int) float64 {
	cu, cv := t.ClusterOf(u), t.ClusterOf(v)
	if cu == cv {
		return t.Dist(u, v)
	}
	bu, bv := t.borderInA[cu][cv], t.borderInA[cv][cu]
	d := t.Dist(bu, bv)
	if u != bu {
		d += t.Dist(u, bu)
	}
	if v != bv {
		d += t.Dist(bv, v)
	}
	return d
}

// ExternalLinkLength returns the embedded length of the external link
// between two distinct clusters.
func (t *Topology) ExternalLinkLength(a, b int) (float64, error) {
	u, v, err := t.Border(a, b)
	if err != nil {
		return 0, err
	}
	return t.Dist(u, v), nil
}

// BorderNodes returns all primary border proxies in the system, sorted
// (shared slice — do not modify).
func (t *Topology) BorderNodes() []int { return t.borderNodes }

// BackupBorderNodes returns every node that serves in some backup border
// pair, sorted (shared slice — do not modify).
func (t *Topology) BackupBorderNodes() []int { return t.backupNodes }

// BorderNodesOf returns cluster c's border proxies, sorted (shared slice —
// do not modify). A single-cluster system has none.
func (t *Topology) BorderNodesOf(c int) []int { return t.borderNodesByCluster[c] }

// IsBorder reports whether node is a border proxy of its cluster.
func (t *Topology) IsBorder(node int) bool {
	for _, b := range t.borderNodesByCluster[t.ClusterOf(node)] {
		if b == node {
			return true
		}
	}
	return false
}

// OverlayHopPath returns the overlay relay sequence a message from u to v
// traverses under HFC connectivity (§3 property 2): a direct hop within a
// cluster, or via the two border proxies between the clusters. Endpoints
// are included; border proxies that coincide with an endpoint are not
// duplicated.
func (t *Topology) OverlayHopPath(u, v int) ([]int, error) {
	if u < 0 || u >= t.N() || v < 0 || v >= t.N() {
		return nil, fmt.Errorf("hfc: hop path (%d,%d) out of range [0,%d)", u, v, t.N())
	}
	cu, cv := t.ClusterOf(u), t.ClusterOf(v)
	if u == v {
		return []int{u}, nil
	}
	if cu == cv {
		return []int{u, v}, nil
	}
	bu, bv, err := t.Border(cu, cv)
	if err != nil {
		return nil, err
	}
	path := []int{u}
	if bu != u {
		path = append(path, bu)
	}
	if bv != v {
		path = append(path, bv)
	}
	path = append(path, v)
	return path, nil
}

// PathLength sums the embedded distances along a node sequence.
func (t *Topology) PathLength(nodes []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(nodes); i++ {
		total += t.Dist(nodes[i], nodes[i+1])
	}
	return total
}

// MaxOverlayHops is the §3 guarantee: any two nodes are at most two overlay
// nodes (three hops) apart in a bi-level HFC topology.
const MaxOverlayHops = 3

// Validate checks the topology's structural invariants: every cluster pair
// has a border pair whose endpoints lie in the right clusters, border lists
// are consistent, and every node belongs to exactly one cluster.
func (t *Topology) Validate() error {
	k := t.NumClusters()
	seen := make(map[int]bool, t.N())
	for c := 0; c < k; c++ {
		for _, m := range t.Members(c) {
			if t.ClusterOf(m) != c {
				return fmt.Errorf("hfc: node %d listed in cluster %d but assigned to %d", m, c, t.ClusterOf(m))
			}
			if seen[m] {
				return fmt.Errorf("hfc: node %d appears in multiple clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != t.N() {
		return fmt.Errorf("hfc: clusters cover %d of %d nodes", len(seen), t.N())
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			u, v, err := t.Border(a, b)
			if err != nil {
				return err
			}
			if t.ClusterOf(u) != a || t.ClusterOf(v) != b {
				return fmt.Errorf("hfc: border pair (%d,%d) of clusters (%d,%d) lies in clusters (%d,%d)",
					u, v, a, b, t.ClusterOf(u), t.ClusterOf(v))
			}
			// §3.3: the border pair is the closest cross pair.
			want, err := closestPair(t.coords, t.Members(a), t.Members(b))
			if err != nil {
				return err
			}
			if t.Dist(u, v) > t.Dist(want.Low, want.High)+1e-12 {
				return fmt.Errorf("hfc: border pair (%d,%d) is not the closest pair between clusters (%d,%d)", u, v, a, b)
			}
			// Backups: correctly clustered and node-disjoint from every
			// earlier pair of the same cluster pair.
			backs, err := t.BackupBorders(a, b)
			if err != nil {
				return err
			}
			usedNodes := map[int]bool{u: true, v: true}
			for _, p := range backs {
				if t.ClusterOf(p[0]) != a || t.ClusterOf(p[1]) != b {
					return fmt.Errorf("hfc: backup pair (%d,%d) of clusters (%d,%d) lies in clusters (%d,%d)",
						p[0], p[1], a, b, t.ClusterOf(p[0]), t.ClusterOf(p[1]))
				}
				if usedNodes[p[0]] || usedNodes[p[1]] {
					return fmt.Errorf("hfc: backup pair (%d,%d) of clusters (%d,%d) reuses an earlier border node", p[0], p[1], a, b)
				}
				usedNodes[p[0]], usedNodes[p[1]] = true, true
			}
		}
	}
	return nil
}
