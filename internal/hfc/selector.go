package hfc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hfc/internal/cluster"
	"hfc/internal/coords"
)

// BorderSelector chooses the border pair between two clusters given their
// member lists. The first returned node must belong to membersA and the
// second to membersB. The paper's rule (§3.3) is ClosestPairSelector; the
// alternatives exist for the ablation study of the design choice.
type BorderSelector func(cmap *coords.Map, membersA, membersB []int) (BorderPair, error)

// ClosestPairSelector implements §3.3: the minimum-distance cross pair.
func ClosestPairSelector() BorderSelector {
	return func(cmap *coords.Map, membersA, membersB []int) (BorderPair, error) {
		return closestPair(cmap, membersA, membersB)
	}
}

// RandomPairSelector picks a uniform random cross pair — the strawman that
// quantifies how much the closest-pair rule buys.
func RandomPairSelector(rng *rand.Rand) BorderSelector {
	return func(cmap *coords.Map, membersA, membersB []int) (BorderPair, error) {
		if len(membersA) == 0 || len(membersB) == 0 {
			return BorderPair{}, errors.New("hfc: empty cluster")
		}
		return BorderPair{
			Low:  membersA[rng.Intn(len(membersA))],
			High: membersB[rng.Intn(len(membersB))],
		}, nil
	}
}

// HeadSelector models the classical single-logical-node aggregation the
// paper argues against (§3, citing [19][20]): each cluster is represented
// by one head — the member closest to the cluster centroid — which serves
// as its border toward every other cluster.
func HeadSelector() BorderSelector {
	heads := make(map[string]int)
	headOf := func(cmap *coords.Map, members []int) (int, error) {
		if len(members) == 0 {
			return 0, errors.New("hfc: empty cluster")
		}
		key := fmt.Sprint(members[0], len(members))
		if h, ok := heads[key]; ok {
			return h, nil
		}
		dim := cmap.Dim
		centroid := make(coords.Point, dim)
		for _, m := range members {
			for d := 0; d < dim; d++ {
				centroid[d] += cmap.Points[m][d] / float64(len(members))
			}
		}
		best, bestD := members[0], math.Inf(1)
		for _, m := range members {
			if d := coords.Dist(cmap.Points[m], centroid); d < bestD {
				best, bestD = m, d
			}
		}
		heads[key] = best
		return best, nil
	}
	return func(cmap *coords.Map, membersA, membersB []int) (BorderPair, error) {
		a, err := headOf(cmap, membersA)
		if err != nil {
			return BorderPair{}, err
		}
		b, err := headOf(cmap, membersB)
		if err != nil {
			return BorderPair{}, err
		}
		return BorderPair{Low: a, High: b}, nil
	}
}

// BuildWithSelector constructs an HFC topology using a custom border
// selector; Build is equivalent to BuildWithSelector(…, ClosestPairSelector()).
func BuildWithSelector(cmap *coords.Map, clustering *cluster.Result, sel BorderSelector) (*Topology, error) {
	if sel == nil {
		return nil, errors.New("hfc: nil border selector")
	}
	if cmap == nil {
		return nil, errors.New("hfc: nil coordinate map")
	}
	if clustering == nil {
		return nil, errors.New("hfc: nil clustering")
	}
	if len(clustering.Assignment) != cmap.N() {
		return nil, fmt.Errorf("hfc: clustering covers %d nodes but map has %d", len(clustering.Assignment), cmap.N())
	}
	t := &Topology{
		coords:               cmap,
		clustering:           clustering,
		borders:              make(map[[2]int]BorderPair),
		backups:              make(map[[2]int][]BorderPair),
		borderNodesByCluster: make(map[int][]int),
	}
	k := clustering.NumClusters()
	borderSet := make(map[int]bool)
	backupSet := make(map[int]bool)
	perCluster := make(map[int]map[int]bool)
	t.borderInA = make([][]int, k)
	for a := range t.borderInA {
		t.borderInA[a] = make([]int, k)
		for b := range t.borderInA[a] {
			t.borderInA[a][b] = -1
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			pair, err := sel(cmap, clustering.Clusters[a], clustering.Clusters[b])
			if err != nil {
				return nil, fmt.Errorf("hfc: selecting border pair (%d,%d): %w", a, b, err)
			}
			if clustering.Assignment[pair.Low] != a || clustering.Assignment[pair.High] != b {
				return nil, fmt.Errorf("hfc: selector returned pair (%d,%d) outside clusters (%d,%d)", pair.Low, pair.High, a, b)
			}
			t.borders[[2]int{a, b}] = pair
			t.borderInA[a][b] = pair.Low
			t.borderInA[b][a] = pair.High
			if perCluster[a] == nil {
				perCluster[a] = make(map[int]bool)
			}
			if perCluster[b] == nil {
				perCluster[b] = make(map[int]bool)
			}
			borderSet[pair.Low] = true
			borderSet[pair.High] = true
			perCluster[a][pair.Low] = true
			perCluster[b][pair.High] = true
			// Failover spares: ranked node-disjoint backups behind whatever
			// pair the selector picked. They are tracked separately so the
			// primary border metrics (Fig. 9, ablation A4) keep their
			// meaning, but their coordinates travel in every node's view so
			// failover routing can price the spare links.
			backs := backupPairs(cmap, clustering.Clusters[a], clustering.Clusters[b], pair, MaxBackupBorders)
			t.backups[[2]int{a, b}] = backs
			for _, bp := range backs {
				backupSet[bp.Low] = true
				backupSet[bp.High] = true
			}
		}
	}
	t.borderNodes = sortedKeys(borderSet)
	t.backupNodes = sortedKeys(backupSet)
	for c, set := range perCluster {
		t.borderNodesByCluster[c] = sortedKeys(set)
	}
	return t, nil
}
