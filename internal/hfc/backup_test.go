package hfc

import (
	"testing"

	"hfc/internal/coords"
)

// threeClusterFixture: 4 nodes per cluster so every cluster pair can afford
// a node-disjoint backup behind the primary.
func threeClusterFixture(t *testing.T) *Topology {
	t.Helper()
	pts := []coords.Point{
		{0, 0}, {0, 10}, {0, 20}, {0, 30}, // cluster 0
		{100, 0}, {100, 10}, {100, 20}, {100, 30}, // cluster 1
		{50, 200}, {50, 210}, {50, 220}, {50, 230}, // cluster 2
	}
	return manualTopology(t, pts, []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2})
}

func TestBackupBordersRankedAndDisjoint(t *testing.T) {
	topo := threeClusterFixture(t)
	for a := 0; a < topo.NumClusters(); a++ {
		for b := 0; b < topo.NumClusters(); b++ {
			if a == b {
				continue
			}
			u, v, err := topo.Border(a, b)
			if err != nil {
				t.Fatalf("Border(%d,%d): %v", a, b, err)
			}
			backs, err := topo.BackupBorders(a, b)
			if err != nil {
				t.Fatalf("BackupBorders(%d,%d): %v", a, b, err)
			}
			if len(backs) == 0 {
				t.Fatalf("clusters (%d,%d): no backup pairs despite 4-node clusters", a, b)
			}
			used := map[int]bool{u: true, v: true}
			prevDist := topo.Dist(u, v)
			for i, p := range backs {
				if topo.ClusterOf(p[0]) != a || topo.ClusterOf(p[1]) != b {
					t.Errorf("backup %d of (%d,%d) = %v not oriented (inA,inB)", i, a, b, p)
				}
				if used[p[0]] || used[p[1]] {
					t.Errorf("backup %d of (%d,%d) = %v reuses an earlier border node", i, a, b, p)
				}
				used[p[0]], used[p[1]] = true, true
				d := topo.Dist(p[0], p[1])
				if d < prevDist-1e-12 {
					t.Errorf("backup %d of (%d,%d) is closer (%v) than its predecessor (%v)", i, a, b, d, prevDist)
				}
				prevDist = d
			}
		}
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBackupBordersValidation(t *testing.T) {
	topo := threeClusterFixture(t)
	if _, err := topo.BackupBorders(1, 1); err == nil {
		t.Error("same-cluster backup query accepted")
	}
	if _, err := topo.BackupBorders(-1, 0); err == nil {
		t.Error("out-of-range cluster accepted")
	}
}

func TestBackupBordersTinyClustersMayBeEmpty(t *testing.T) {
	topo := fourClusterFixture(t) // 2-node clusters: primary uses up to both nodes
	backs, err := topo.BackupBorders(0, 1)
	if err != nil {
		t.Fatalf("BackupBorders: %v", err)
	}
	// With 2-node clusters at most one disjoint spare exists.
	if len(backs) > 1 {
		t.Errorf("2-node clusters produced %d backups, want <= 1", len(backs))
	}
}

func TestViewBorderFailover(t *testing.T) {
	topo := threeClusterFixture(t)
	v, err := topo.View(0)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	u, w, err := v.Border(0, 1)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	ranked, err := v.BorderRanked(0, 1)
	if err != nil {
		t.Fatalf("BorderRanked: %v", err)
	}
	if ranked[0] != [2]int{u, w} {
		t.Fatalf("BorderRanked[0] = %v, want primary (%d,%d)", ranked[0], u, w)
	}
	if len(ranked) < 2 {
		t.Fatal("no backup pair in ranked list")
	}

	// Kill one primary endpoint: Border must fall over to the first
	// backup, whose coordinates the view holds (Dist must work).
	dead := map[int]bool{u: true}
	v.Alive = func(n int) bool { return !dead[n] }
	fu, fw, err := v.Border(0, 1)
	if err != nil {
		t.Fatalf("Border with failure detector: %v", err)
	}
	if fu == u {
		t.Errorf("failover still uses crashed border %d", u)
	}
	if [2]int{fu, fw} != ranked[1] {
		t.Errorf("failover pair (%d,%d), want first backup %v", fu, fw, ranked[1])
	}
	if _, err := v.Dist(fu, fw); err != nil {
		t.Errorf("view lacks coordinates for backup pair: %v", err)
	}

	// Everything dead: fall back to the primary rather than erroring.
	v.Alive = func(int) bool { return false }
	pu, pw, err := v.Border(0, 1)
	if err != nil {
		t.Fatalf("Border with all-dead detector: %v", err)
	}
	if pu != u || pw != w {
		t.Errorf("all-dead fallback (%d,%d), want primary (%d,%d)", pu, pw, u, w)
	}
}
