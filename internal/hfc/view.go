package hfc

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"hfc/internal/coords"
)

// NodeView is the partial-global-state a single proxy holds after the
// election-winner proxy P distributes the topology (Fig. 4): its own
// cluster's ID and membership, the system's cluster/border table, and the
// coordinates of exactly the nodes it is entitled to know — its own cluster
// members plus every border proxy in the system. Hierarchical routing at a
// node must work from this view alone; the experiments count its size to
// reproduce Fig. 9(a).
type NodeView struct {
	// Node is the proxy this view belongs to.
	Node int
	// ClusterID is the proxy's own cluster.
	ClusterID int
	// Members is the sorted membership of the proxy's cluster (including
	// the proxy itself).
	Members []int
	// NumClusters is the number of clusters in the system.
	NumClusters int
	// Borders maps every normalized cluster pair {lo, hi} to its border
	// pair.
	Borders map[[2]int]BorderPair
	// BackupBorders maps every normalized cluster pair {lo, hi} to its
	// ranked backup pairs (node-disjoint spares behind the primary).
	BackupBorders map[[2]int][]BorderPair
	// Coords holds the coordinates the node keeps: own cluster members
	// and all border proxies (backup borders included).
	Coords map[int]coords.Point
	// Alive, when non-nil, is the node's failure detector: Border skips
	// pairs with a crashed endpoint and falls back to the next ranked
	// pair. Nil means every node is presumed live (the fault-free primary
	// behaviour).
	Alive func(node int) bool
	// BorderOverride, when non-nil, is consulted before the view's own
	// border table: it models the §5.2 re-distribution of incrementally
	// re-elected border pairs (a Dynamic maintainer in the runtime). A
	// false ok falls through to the static ranked pairs.
	BorderOverride func(a, b int) (inA, inB int, ok bool)
	// ResolveCoord, when non-nil, supplies coordinates for nodes outside
	// the view's static entitlement — the Fig. 4 coordinate hand-off that
	// accompanies a promoted border's announcement. Dist consults it only
	// after Coords misses.
	ResolveCoord func(node int) (coords.Point, bool)

	// dense caches the SoA mirror of the view's border and coordinate
	// tables (see Dense). Built lazily from the static fields, which must
	// not be mutated after the first Dense call.
	dense atomic.Pointer[DenseTables]
}

// DenseTables is the struct-of-arrays mirror of a view's border and
// coordinate maps, built once per view so hot routing paths replace
// per-lookup map hashing with array indexing. The tables cover only the
// static primary pairs and static coordinates; dynamic concerns (Alive,
// BorderOverride, promoted borders via ResolveCoord) stay with the view's
// map-based methods, which callers fall back to per lookup.
type DenseTables struct {
	// K is the cluster count the square tables are sized for.
	K int
	// BorderInA[a*K+b] is the primary border proxy of cluster a toward
	// cluster b, or -1 when a == b or the view has no pair for (a, b).
	BorderInA []int32
	// Ext[a*K+b] is the embedded length of the primary external link
	// between clusters a and b, or NaN when unknown.
	Ext []float64
	// Pts[id] is node id's coordinate, nil when the view does not hold
	// it. Indexed by node id; covers cluster members and every primary
	// and backup border proxy whose coordinate the view can resolve.
	Pts []coords.Point
}

// Dense returns the view's SoA tables, building them on first use. The
// build is idempotent; concurrent first calls may build twice and either
// result wins the store. The returned tables are shared and read-only.
func (v *NodeView) Dense() *DenseTables {
	if t := v.dense.Load(); t != nil {
		return t
	}
	t := v.buildDense()
	v.dense.Store(t)
	return t
}

// buildDense materializes the dense mirror from the view's maps. Border
// pairs are walked by cluster-pair key (not map iteration) so the build
// is deterministic.
func (v *NodeView) buildDense() *DenseTables {
	k := v.NumClusters
	if k < 0 {
		k = 0
	}
	t := &DenseTables{
		K:         k,
		BorderInA: make([]int32, k*k),
		Ext:       make([]float64, k*k),
	}
	for i := range t.BorderInA {
		t.BorderInA[i] = -1
		t.Ext[i] = math.NaN()
	}
	// Gather every node id whose coordinate a routing pass may ask for:
	// own-cluster members (the tail hop ends at v.Node) plus all ranked
	// border proxies.
	maxID := v.Node
	note := func(id int) {
		if id > maxID {
			maxID = id
		}
	}
	for _, m := range v.Members {
		note(m)
	}
	for lo := 0; lo < k; lo++ {
		for hi := lo + 1; hi < k; hi++ {
			key := [2]int{lo, hi}
			pair, ok := v.Borders[key]
			if !ok {
				continue
			}
			note(pair.Low)
			note(pair.High)
			if pair.Low >= 0 && pair.High >= 0 {
				t.BorderInA[lo*k+hi] = int32(pair.Low)
				t.BorderInA[hi*k+lo] = int32(pair.High)
			}
			for _, bp := range v.BackupBorders[key] {
				note(bp.Low)
				note(bp.High)
			}
		}
	}
	t.Pts = make([]coords.Point, maxID+1)
	fill := func(id int) {
		if id < 0 || id >= len(t.Pts) || t.Pts[id] != nil {
			return
		}
		if p, err := v.coordOf(id); err == nil {
			t.Pts[id] = p
		}
	}
	fill(v.Node)
	for _, m := range v.Members {
		fill(m)
	}
	for lo := 0; lo < k; lo++ {
		for hi := lo + 1; hi < k; hi++ {
			key := [2]int{lo, hi}
			pair, ok := v.Borders[key]
			if !ok {
				continue
			}
			fill(pair.Low)
			fill(pair.High)
			for _, bp := range v.BackupBorders[key] {
				fill(bp.Low)
				fill(bp.High)
			}
			if pl, ph := t.Pts[pair.Low], t.Pts[pair.High]; pl != nil && ph != nil {
				d := coords.Dist(pl, ph)
				t.Ext[lo*k+hi] = d
				t.Ext[hi*k+lo] = d
			}
		}
	}
	return t
}

// View materializes the Fig. 4 information for one node.
func (t *Topology) View(node int) (*NodeView, error) {
	if node < 0 || node >= t.N() {
		return nil, fmt.Errorf("hfc: view for node %d out of range [0,%d)", node, t.N())
	}
	c := t.ClusterOf(node)
	v := &NodeView{
		Node:          node,
		ClusterID:     c,
		Members:       append([]int(nil), t.Members(c)...),
		NumClusters:   t.NumClusters(),
		Borders:       make(map[[2]int]BorderPair, len(t.borders)),
		BackupBorders: make(map[[2]int][]BorderPair, len(t.backups)),
		Coords:        make(map[int]coords.Point),
	}
	for k, pair := range t.borders {
		v.Borders[k] = pair
	}
	for k, pairs := range t.backups {
		v.BackupBorders[k] = append([]BorderPair(nil), pairs...)
	}
	for _, m := range v.Members {
		v.Coords[m] = t.coords.Points[m].Clone()
	}
	for _, b := range t.borderNodes {
		v.Coords[b] = t.coords.Points[b].Clone()
	}
	for _, b := range t.backupNodes {
		v.Coords[b] = t.coords.Points[b].Clone()
	}
	return v, nil
}

// SharedView materializes a node's view without copying: Members aliases
// the topology's membership slice and Borders/BackupBorders alias the
// topology's own maps, with coordinates served on demand through
// ResolveCoord straight from the topology's point table instead of a
// per-node Coords clone. A full-copy View costs O(K² + |C|) per node —
// prohibitive at n=100k where the runtime builds one view per node — while
// SharedView is O(1).
//
// The price is a strict aliasing contract: callers must treat Members,
// Borders, and BackupBorders as read-only, and the backing Topology must
// outlive the view. CoordinateStateSize reports 0 (the Fig. 9(a) state
// accounting needs the materialized View). The large-scale simulation
// runtime uses SharedView; anything measuring per-node state keeps View.
func (t *Topology) SharedView(node int) (*NodeView, error) {
	if node < 0 || node >= t.N() {
		return nil, fmt.Errorf("hfc: view for node %d out of range [0,%d)", node, t.N())
	}
	c := t.ClusterOf(node)
	return &NodeView{
		Node:          node,
		ClusterID:     c,
		Members:       t.Members(c),
		NumClusters:   t.NumClusters(),
		Borders:       t.borders,
		BackupBorders: t.backups,
		ResolveCoord: func(u int) (coords.Point, bool) {
			if u < 0 || u >= len(t.coords.Points) {
				return nil, false
			}
			return t.coords.Points[u], true
		},
	}, nil
}

// Dist returns the embedded distance between two nodes whose coordinates
// the view holds. It returns an error when the view lacks either node —
// i.e., when routing code oversteps the node's legitimate knowledge.
func (v *NodeView) Dist(u, w int) (float64, error) {
	pu, err := v.coordOf(u)
	if err != nil {
		return 0, err
	}
	pw, err := v.coordOf(w)
	if err != nil {
		return 0, err
	}
	return coords.Dist(pu, pw), nil
}

// coordOf looks a node's coordinates up in the static view, falling back to
// the ResolveCoord hand-off for promoted borders the view does not hold.
func (v *NodeView) coordOf(u int) (coords.Point, error) {
	if p, ok := v.Coords[u]; ok {
		return p, nil
	}
	if v.ResolveCoord != nil {
		if p, ok := v.ResolveCoord(u); ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("hfc: node %d's view has no coordinates for node %d", v.Node, u)
}

// Border returns the preferred live border pair between two distinct
// clusters, oriented (inA, inB). Without a failure detector (Alive == nil)
// that is always the primary pair; with one, the first ranked pair whose
// endpoints are both live wins, and when every ranked pair has a crashed
// endpoint the primary is returned so callers still compute a path (sends
// to the crashed border surface as counted drops and RPC timeouts).
func (v *NodeView) Border(a, b int) (inA, inB int, err error) {
	if v.BorderOverride != nil && a != b {
		if inA, inB, ok := v.BorderOverride(a, b); ok {
			return inA, inB, nil
		}
	}
	pairs, err := v.BorderRanked(a, b)
	if err != nil {
		return 0, 0, err
	}
	if v.Alive != nil {
		for _, p := range pairs {
			if v.Alive(p[0]) && v.Alive(p[1]) {
				return p[0], p[1], nil
			}
		}
	}
	return pairs[0][0], pairs[0][1], nil
}

// BorderRanked returns every border pair between two distinct clusters in
// preference order — primary first, then the node-disjoint backups — each
// oriented {inA, inB}. Liveness is not consulted.
func (v *NodeView) BorderRanked(a, b int) ([][2]int, error) {
	if a == b {
		return nil, fmt.Errorf("hfc: no border pair within a single cluster %d", a)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	pair, ok := v.Borders[[2]int{lo, hi}]
	if !ok {
		return nil, fmt.Errorf("hfc: view has no border pair for clusters (%d,%d)", a, b)
	}
	orient := func(p BorderPair) [2]int {
		if a == lo {
			return [2]int{p.Low, p.High}
		}
		return [2]int{p.High, p.Low}
	}
	out := [][2]int{orient(pair)}
	for _, p := range v.BackupBorders[[2]int{lo, hi}] {
		out = append(out, orient(p))
	}
	return out, nil
}

// CoordinateStateSize is the number of coordinate node-states the view
// stores — the quantity Fig. 9(a) reports per proxy. Own-cluster members
// and border proxies are deduplicated, since a node needs only one
// coordinate record per known node.
func (v *NodeView) CoordinateStateSize() int { return len(v.Coords) }

// KnownNodes returns the sorted IDs of all nodes whose coordinates the view
// holds.
func (v *NodeView) KnownNodes() []int {
	out := make([]int, 0, len(v.Coords))
	for id := range v.Coords {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
