package hfc

import (
	"fmt"
	"sort"

	"hfc/internal/coords"
)

// NodeView is the partial-global-state a single proxy holds after the
// election-winner proxy P distributes the topology (Fig. 4): its own
// cluster's ID and membership, the system's cluster/border table, and the
// coordinates of exactly the nodes it is entitled to know — its own cluster
// members plus every border proxy in the system. Hierarchical routing at a
// node must work from this view alone; the experiments count its size to
// reproduce Fig. 9(a).
type NodeView struct {
	// Node is the proxy this view belongs to.
	Node int
	// ClusterID is the proxy's own cluster.
	ClusterID int
	// Members is the sorted membership of the proxy's cluster (including
	// the proxy itself).
	Members []int
	// NumClusters is the number of clusters in the system.
	NumClusters int
	// Borders maps every normalized cluster pair {lo, hi} to its border
	// pair.
	Borders map[[2]int]BorderPair
	// Coords holds the coordinates the node keeps: own cluster members
	// and all border proxies.
	Coords map[int]coords.Point
}

// View materializes the Fig. 4 information for one node.
func (t *Topology) View(node int) (*NodeView, error) {
	if node < 0 || node >= t.N() {
		return nil, fmt.Errorf("hfc: view for node %d out of range [0,%d)", node, t.N())
	}
	c := t.ClusterOf(node)
	v := &NodeView{
		Node:        node,
		ClusterID:   c,
		Members:     append([]int(nil), t.Members(c)...),
		NumClusters: t.NumClusters(),
		Borders:     make(map[[2]int]BorderPair, len(t.borders)),
		Coords:      make(map[int]coords.Point),
	}
	for k, pair := range t.borders {
		v.Borders[k] = pair
	}
	for _, m := range v.Members {
		v.Coords[m] = t.coords.Points[m].Clone()
	}
	for _, b := range t.borderNodes {
		v.Coords[b] = t.coords.Points[b].Clone()
	}
	return v, nil
}

// Dist returns the embedded distance between two nodes whose coordinates
// the view holds. It returns an error when the view lacks either node —
// i.e., when routing code oversteps the node's legitimate knowledge.
func (v *NodeView) Dist(u, w int) (float64, error) {
	pu, ok := v.Coords[u]
	if !ok {
		return 0, fmt.Errorf("hfc: node %d's view has no coordinates for node %d", v.Node, u)
	}
	pw, ok := v.Coords[w]
	if !ok {
		return 0, fmt.Errorf("hfc: node %d's view has no coordinates for node %d", v.Node, w)
	}
	return coords.Dist(pu, pw), nil
}

// Border returns the border pair between two distinct clusters, oriented
// (inA, inB).
func (v *NodeView) Border(a, b int) (inA, inB int, err error) {
	if a == b {
		return 0, 0, fmt.Errorf("hfc: no border pair within a single cluster %d", a)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	pair, ok := v.Borders[[2]int{lo, hi}]
	if !ok {
		return 0, 0, fmt.Errorf("hfc: view has no border pair for clusters (%d,%d)", a, b)
	}
	if a == lo {
		return pair.Low, pair.High, nil
	}
	return pair.High, pair.Low, nil
}

// CoordinateStateSize is the number of coordinate node-states the view
// stores — the quantity Fig. 9(a) reports per proxy. Own-cluster members
// and border proxies are deduplicated, since a node needs only one
// coordinate record per known node.
func (v *NodeView) CoordinateStateSize() int { return len(v.Coords) }

// KnownNodes returns the sorted IDs of all nodes whose coordinates the view
// holds.
func (v *NodeView) KnownNodes() []int {
	out := make([]int, 0, len(v.Coords))
	for id := range v.Coords {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
