package hfc

import (
	"errors"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/geo"
	"hfc/internal/par"
)

// borderIndexMinN is the overlay size at which the §3.3 border elections
// switch from brute cross scans to the geo engine; below it the scans are
// at least as fast as building per-cluster indexes.
const borderIndexMinN = 512

// clusterIndexMinSize is the smallest cluster worth indexing: pairs whose
// high-side cluster is tinier than this scan brute-force even in an
// indexed build. Below geo's own brute cutover an "index" is just a
// wrapped linear scan, so the floor sits above it — benchmarking the
// n=512 maintenance gates showed indexing 32-member clusters costs ~25%
// for nothing.
const clusterIndexMinSize = 64

// electionIndexes caches one geo index per cluster (over its members) for
// the closest-pair elections. Entries are nil for clusters too small to
// index; a nil *electionIndexes means the whole build runs brute.
type electionIndexes struct {
	idx []geo.Index
}

// forPair returns the index for the high side of a cluster pair, or nil
// when that pair should scan brute-force.
func (e *electionIndexes) forPair(hi int) geo.Index {
	if e == nil {
		return nil
	}
	return e.idx[hi]
}

// buildElectionIndexes constructs the per-cluster indexes on the worker
// pool (each slot is private to its cluster, so the fan-out is
// deterministic). It returns nil — meaning brute elections — for small
// overlays or non-finite coordinates.
func buildElectionIndexes(cmap *coords.Map, clustering *cluster.Result, workers int) *electionIndexes {
	if cmap.N() < borderIndexMinN || !geo.Finite(cmap.Points) {
		return nil
	}
	e := &electionIndexes{idx: make([]geo.Index, clustering.NumClusters())}
	errs := make([]error, clustering.NumClusters())
	par.For(clustering.NumClusters(), workers, func(c int) {
		if len(clustering.Clusters[c]) < clusterIndexMinSize {
			return
		}
		e.idx[c], errs[c] = geo.NewIndex(cmap.Points, clustering.Clusters[c], geo.Auto)
	})
	for _, err := range errs {
		if err != nil {
			return nil // validated inputs make this unreachable; fall back to brute
		}
	}
	return e
}

// electBorders runs the full §3.3 election for one cluster pair: the
// primary closest cross pair plus its ranked node-disjoint backups. With a
// nil index it is exactly the brute closestPair + backupPairs scan; with
// an index it answers through geo.ClosestPairIndexed, which implements the
// same canonical (distance, low node, high node) order, so the results are
// bit-identical (asserted by the 200-seed property test).
func electBorders(cmap *coords.Map, membersA, membersB []int, bIdx geo.Index) (BorderPair, []BorderPair, error) {
	if bIdx == nil {
		pair, err := closestPair(cmap, membersA, membersB)
		if err != nil {
			return BorderPair{}, nil, err
		}
		return pair, backupPairs(cmap, membersA, membersB, pair, MaxBackupBorders), nil
	}
	if len(membersA) == 0 || len(membersB) == 0 {
		return BorderPair{}, nil, errors.New("hfc: empty cluster")
	}
	p, ok := geo.ClosestPairIndexed(cmap.Points, membersA, bIdx, nil, nil)
	if !ok {
		return BorderPair{}, nil, errors.New("hfc: empty cluster")
	}
	primary := BorderPair{Low: p.A, High: p.B}
	used := map[int]bool{primary.Low: true, primary.High: true}
	skip := func(j int) bool { return used[j] }
	var backs []BorderPair
	for len(backs) < MaxBackupBorders {
		bp, ok := geo.ClosestPairIndexed(cmap.Points, membersA, bIdx, skip, skip)
		if !ok {
			break
		}
		used[bp.A], used[bp.B] = true, true
		backs = append(backs, BorderPair{Low: bp.A, High: bp.B})
	}
	return primary, backs, nil
}
