package hfc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hfc/internal/cluster"
	"hfc/internal/coords"
)

// manualTopology builds an HFC topology from explicit points and an explicit
// cluster assignment (bypassing the MST detection, which has its own tests).
func manualTopology(t *testing.T, pts []coords.Point, assignment []int) *Topology {
	t.Helper()
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	res := manualClustering(assignment)
	topo, err := Build(cmap, res)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func manualClustering(assignment []int) *cluster.Result {
	maxID := 0
	for _, c := range assignment {
		if c > maxID {
			maxID = c
		}
	}
	clusters := make([][]int, maxID+1)
	for node, c := range assignment {
		clusters[c] = append(clusters[c], node)
	}
	return &cluster.Result{Assignment: append([]int(nil), assignment...), Clusters: clusters}
}

// fourClusterFixture: 2 nodes each in 4 well-separated squares.
//
//	cluster 0 near (0,0); 1 near (100,0); 2 near (0,100); 3 near (100,100)
func fourClusterFixture(t *testing.T) *Topology {
	pts := []coords.Point{
		{0, 0}, {5, 0}, // cluster 0: nodes 0,1
		{100, 0}, {95, 0}, // cluster 1: nodes 2,3
		{0, 100}, {0, 95}, // cluster 2: nodes 4,5
		{100, 100}, {95, 95}, // cluster 3: nodes 6,7
	}
	return manualTopology(t, pts, []int{0, 0, 1, 1, 2, 2, 3, 3})
}

func TestBuildValidation(t *testing.T) {
	cmap, err := coords.NewMap([]coords.Point{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if _, err := Build(nil, manualClustering([]int{0, 0})); err == nil {
		t.Error("nil map accepted")
	}
	if _, err := Build(cmap, nil); err == nil {
		t.Error("nil clustering accepted")
	}
	if _, err := Build(cmap, manualClustering([]int{0})); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestBorderSelectionIsClosestPair(t *testing.T) {
	topo := fourClusterFixture(t)
	// Between cluster 0 {(0,0),(5,0)} and cluster 1 {(100,0),(95,0)}, the
	// closest pair is node 1 (5,0) and node 3 (95,0).
	u, v, err := topo.Border(0, 1)
	if err != nil {
		t.Fatalf("Border: %v", err)
	}
	if u != 1 || v != 3 {
		t.Errorf("Border(0,1) = (%d,%d), want (1,3)", u, v)
	}
	// Orientation flips with argument order.
	v2, u2, err := topo.Border(1, 0)
	if err != nil {
		t.Fatalf("Border(1,0): %v", err)
	}
	if v2 != 3 || u2 != 1 {
		t.Errorf("Border(1,0) = (%d,%d), want (3,1)", v2, u2)
	}
}

func TestBorderSameClusterRejected(t *testing.T) {
	topo := fourClusterFixture(t)
	if _, _, err := topo.Border(1, 1); err == nil {
		t.Error("Border(1,1) succeeded")
	}
}

func TestExternalLinkLength(t *testing.T) {
	topo := fourClusterFixture(t)
	l, err := topo.ExternalLinkLength(0, 1)
	if err != nil {
		t.Fatalf("ExternalLinkLength: %v", err)
	}
	if math.Abs(l-90) > 1e-9 {
		t.Errorf("external link length = %v, want 90", l)
	}
}

func TestBorderNodeBookkeeping(t *testing.T) {
	topo := fourClusterFixture(t)
	all := topo.BorderNodes()
	if len(all) == 0 {
		t.Fatal("no border nodes recorded")
	}
	for _, b := range all {
		if !topo.IsBorder(b) {
			t.Errorf("node %d in BorderNodes() but IsBorder false", b)
		}
	}
	// Per-cluster border lists partition by cluster.
	for c := 0; c < topo.NumClusters(); c++ {
		for _, b := range topo.BorderNodesOf(c) {
			if topo.ClusterOf(b) != c {
				t.Errorf("border %d listed for cluster %d but assigned to %d", b, c, topo.ClusterOf(b))
			}
		}
	}
	// A non-border node reports false.
	if topo.IsBorder(0) && topo.IsBorder(1) && len(topo.Members(0)) == 2 {
		// Both members of cluster 0 can legitimately be borders (to
		// different clusters); just ensure IsBorder is consistent with the
		// per-cluster lists.
		t.Log("all cluster-0 members are borders (allowed)")
	}
}

func TestValidatePasses(t *testing.T) {
	topo := fourClusterFixture(t)
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestOverlayHopPathIntraCluster(t *testing.T) {
	topo := fourClusterFixture(t)
	path, err := topo.OverlayHopPath(0, 1)
	if err != nil {
		t.Fatalf("OverlayHopPath: %v", err)
	}
	if len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Errorf("intra-cluster path = %v, want [0 1]", path)
	}
	self, err := topo.OverlayHopPath(2, 2)
	if err != nil {
		t.Fatalf("OverlayHopPath(2,2): %v", err)
	}
	if len(self) != 1 || self[0] != 2 {
		t.Errorf("self path = %v, want [2]", self)
	}
}

func TestOverlayHopPathInterCluster(t *testing.T) {
	topo := fourClusterFixture(t)
	// 0 (cluster 0) → 2 (cluster 1) goes via borders 1 and 3.
	path, err := topo.OverlayHopPath(0, 2)
	if err != nil {
		t.Fatalf("OverlayHopPath: %v", err)
	}
	want := []int{0, 1, 3, 2}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestOverlayHopPathBorderEndpointsNotDuplicated(t *testing.T) {
	topo := fourClusterFixture(t)
	// Node 1 is the border of cluster 0 toward cluster 1; path from 1 to 3
	// (the opposite border) is just the external link.
	path, err := topo.OverlayHopPath(1, 3)
	if err != nil {
		t.Fatalf("OverlayHopPath: %v", err)
	}
	if len(path) != 2 || path[0] != 1 || path[1] != 3 {
		t.Errorf("border-to-border path = %v, want [1 3]", path)
	}
}

func TestOverlayHopPathBoundsProperty(t *testing.T) {
	// §3: any two nodes are at most 2 overlay nodes apart — hop paths have
	// at most MaxOverlayHops hops (4 nodes).
	rng := rand.New(rand.NewSource(3))
	pts := make([]coords.Point, 60)
	assignment := make([]int, 60)
	for i := range pts {
		c := i % 5
		pts[i] = coords.Point{float64(c)*200 + rng.Float64()*10, rng.Float64() * 10}
		assignment[i] = c
	}
	topo := manualTopology(t, pts, assignment)
	check := func(a, b uint8) bool {
		u, v := int(a)%60, int(b)%60
		path, err := topo.OverlayHopPath(u, v)
		if err != nil {
			return false
		}
		return len(path) <= MaxOverlayHops+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOverlayHopPathOutOfRange(t *testing.T) {
	topo := fourClusterFixture(t)
	if _, err := topo.OverlayHopPath(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := topo.OverlayHopPath(0, 99); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestPathLength(t *testing.T) {
	topo := fourClusterFixture(t)
	if l := topo.PathLength([]int{0, 1}); math.Abs(l-5) > 1e-9 {
		t.Errorf("PathLength([0 1]) = %v, want 5", l)
	}
	if l := topo.PathLength([]int{0}); l != 0 {
		t.Errorf("PathLength single node = %v, want 0", l)
	}
	if l := topo.PathLength(nil); l != 0 {
		t.Errorf("PathLength(nil) = %v, want 0", l)
	}
}

func TestSingleClusterTopology(t *testing.T) {
	pts := []coords.Point{{0, 0}, {1, 0}, {2, 0}}
	topo := manualTopology(t, pts, []int{0, 0, 0})
	if topo.NumClusters() != 1 {
		t.Fatalf("NumClusters = %d, want 1", topo.NumClusters())
	}
	if len(topo.BorderNodes()) != 0 {
		t.Errorf("single-cluster system has border nodes: %v", topo.BorderNodes())
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	path, err := topo.OverlayHopPath(0, 2)
	if err != nil {
		t.Fatalf("OverlayHopPath: %v", err)
	}
	if len(path) != 2 {
		t.Errorf("intra path = %v", path)
	}
}

func TestViewContents(t *testing.T) {
	topo := fourClusterFixture(t)
	v, err := topo.View(4) // node 4, cluster 2
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if v.ClusterID != 2 {
		t.Errorf("ClusterID = %d, want 2", v.ClusterID)
	}
	if len(v.Members) != 2 || v.Members[0] != 4 || v.Members[1] != 5 {
		t.Errorf("Members = %v, want [4 5]", v.Members)
	}
	if v.NumClusters != 4 {
		t.Errorf("NumClusters = %d, want 4", v.NumClusters)
	}
	// The view knows all 6 border-pair entries (4 choose 2).
	if len(v.Borders) != 6 {
		t.Errorf("Borders has %d entries, want 6", len(v.Borders))
	}
	// Coordinates: own members + every (primary or backup) border node;
	// never a foreign node with no border duty at all.
	backup := make(map[int]bool)
	for _, b := range topo.BackupBorderNodes() {
		backup[b] = true
	}
	for id := range v.Coords {
		if topo.ClusterOf(id) == 2 {
			continue
		}
		if !topo.IsBorder(id) && !backup[id] {
			t.Errorf("view holds coordinates of foreign non-border node %d", id)
		}
	}
	if v.CoordinateStateSize() != len(v.Coords) {
		t.Error("CoordinateStateSize inconsistent")
	}
	if got := v.KnownNodes(); len(got) != len(v.Coords) {
		t.Errorf("KnownNodes returned %d ids, want %d", len(got), len(v.Coords))
	}
}

func TestViewOutOfRange(t *testing.T) {
	topo := fourClusterFixture(t)
	if _, err := topo.View(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := topo.View(8); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestViewDistRefusesUnknownNodes(t *testing.T) {
	topo := fourClusterFixture(t)
	v, err := topo.View(0) // cluster 0
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	// Find a foreign non-border node: in cluster 3 one of {6,7} may be
	// non-border; search for any node the view lacks.
	var unknown = -1
	for id := 0; id < topo.N(); id++ {
		if _, ok := v.Coords[id]; !ok {
			unknown = id
			break
		}
	}
	if unknown == -1 {
		t.Skip("tiny fixture: every node is a border node")
	}
	if _, err := v.Dist(0, unknown); err == nil {
		t.Errorf("view computed distance to unknown node %d", unknown)
	}
	if _, err := v.Dist(unknown, 0); err == nil {
		t.Errorf("view computed distance from unknown node %d", unknown)
	}
}

func TestViewDistMatchesTopologyDist(t *testing.T) {
	topo := fourClusterFixture(t)
	v, err := topo.View(0)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	d, err := v.Dist(0, 1)
	if err != nil {
		t.Fatalf("view Dist: %v", err)
	}
	//hfcvet:ignore floatdist the view forwards the topology's value unchanged, identity expected
	if d != topo.Dist(0, 1) {
		t.Errorf("view Dist = %v, topology Dist = %v", d, topo.Dist(0, 1))
	}
}

func TestViewBorderOrientation(t *testing.T) {
	topo := fourClusterFixture(t)
	v, err := topo.View(0)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	u1, v1, err := v.Border(0, 1)
	if err != nil {
		t.Fatalf("view Border: %v", err)
	}
	tu, tv, err := topo.Border(0, 1)
	if err != nil {
		t.Fatalf("topo Border: %v", err)
	}
	if u1 != tu || v1 != tv {
		t.Errorf("view Border = (%d,%d), topology = (%d,%d)", u1, v1, tu, tv)
	}
	if _, _, err := v.Border(2, 2); err == nil {
		t.Error("view Border(2,2) succeeded")
	}
}

func TestViewCoordsAreCopies(t *testing.T) {
	topo := fourClusterFixture(t)
	v, err := topo.View(0)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	v.Coords[0][0] = 12345
	if topo.Coords().Points[0][0] == 12345 {
		t.Error("view coordinates alias the topology's points")
	}
}

func TestWriteDOT(t *testing.T) {
	topo := fourClusterFixture(t)
	var buf strings.Builder
	if err := topo.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"graph hfc", "subgraph cluster_0", "subgraph cluster_3", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every node appears.
	for n := 0; n < topo.N(); n++ {
		if !strings.Contains(out, fmt.Sprintf("n%d [", n)) {
			t.Errorf("DOT output missing node %d", n)
		}
	}
	var nilTopo *Topology
	if err := nilTopo.WriteDOT(&buf); err == nil {
		t.Error("nil topology accepted")
	}
	// Writer failures propagate.
	if err := topo.WriteDOT(failWriter{}); err == nil {
		t.Error("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("sink failed")
