// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring the API and
// fixture conventions of golang.org/x/tools/go/analysis/analysistest.
//
// The upstream harness depends on go/packages, which is not part of the
// toolchain-vendored subset of x/tools this repo builds against (the
// build must work with no module proxy), so this is a self-contained
// reimplementation on the stdlib source importer. Fixtures live under
// <testdata>/src/<pkg>/ and annotate expected diagnostics as
//
//	rand.Intn(5) // want `global math/rand`
//
// where the backquoted (or double-quoted) text is a regular expression
// matched against diagnostics reported on that line. Lines without a
// want comment must produce no diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each fixture package under dir/src with a, comparing
// reported diagnostics to the // want expectations in the fixtures.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), a)
	}
}

// TestData returns the canonical testdata directory of the calling
// test's package, like the upstream helper.
func TestData() string {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return testdata
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func runPackage(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type error in fixture: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             files,
		Pkg:               pkg,
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", runtime.GOARCH),
		ResultOf:          map[*analysis.Analyzer]interface{}{},
		Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
	}
	for _, req := range a.Requires {
		res, err := runRequired(pass, req)
		if err != nil {
			t.Fatalf("%s: required analyzer %s: %v", dir, req.Name, err)
		}
		pass.ResultOf[req] = res
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %s: %v", dir, a.Name, err)
	}

	checkExpectations(t, fset, files, diags)
}

// runRequired executes a prerequisite analyzer (e.g. the inspect pass)
// against the same pass state.
func runRequired(base *analysis.Pass, req *analysis.Analyzer) (interface{}, error) {
	sub := *base
	sub.Analyzer = req
	sub.ResultOf = map[*analysis.Analyzer]interface{}{}
	for _, r := range req.Requires {
		res, err := runRequired(base, r)
		if err != nil {
			return nil, err
		}
		sub.ResultOf[r] = res
	}
	return req.Run(&sub)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

var wantRe = regexp.MustCompile("// want (.*)$")

// checkExpectations matches diagnostics to // want comments line by line.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	// file -> line -> expectations
	wants := map[string]map[int][]*expectation{}
	for _, f := range files {
		filename := fset.Position(f.Pos()).Filename
		wants[filename] = map[int][]*expectation{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				exps, err := parseWants(m[1])
				if err != nil {
					t.Fatalf("%s:%d: %v", filename, line, err)
				}
				wants[filename][line] = append(wants[filename][line], exps...)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, exp := range wants[pos.Filename][pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for filename, lines := range wants {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", filename, line, exp.re)
				}
			}
		}
	}
}

// parseWants parses the payload of a want comment: one or more regexps,
// each in backquotes or double quotes.
func parseWants(s string) ([]*expectation, error) {
	var out []*expectation
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want payload must be backquoted or quoted, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		pat := s[1 : 1+end]
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", pat, err)
		}
		out = append(out, &expectation{re: re})
		s = strings.TrimSpace(s[2+end:])
	}
	return out, nil
}
