package lockscope_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockscope.Analyzer, "a", "mailbox")
}
