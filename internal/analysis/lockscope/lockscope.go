// Package lockscope defines an Analyzer that flags blocking operations
// executed while a sync.Mutex or sync.RWMutex is held.
//
// PR 1 fixed a distributed deadlock in the overlay mailbox loops caused
// by a channel send performed under a lock; this analyzer machine-checks
// the whole class. A "blocking operation" is:
//
//   - a channel send or receive outside a select with a default case
//   - a select statement without a default case
//   - a range over a channel
//   - sync.WaitGroup.Wait
//   - time.Sleep
//
// Suppress an intentional site with
//
//	//hfcvet:ignore lockscope <why this cannot deadlock>
package lockscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
	"hfc/internal/analysis/lockwalk"
)

// Analyzer is the lockscope pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "report blocking operations (channel ops, select, WaitGroup.Wait, time.Sleep) while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFunc(pass, dirs, body)
			return true
		})
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

// checkFunc reports blocking operations under held locks in one function
// body. Function literals inside the body are visited by the walker with
// the appropriate held set, so they need no separate traversal here.
func checkFunc(pass *analysis.Pass, dirs *ignore.Directives, body *ast.BlockStmt) {
	// Channel operations that are the communication clause of a select
	// are reported through the select itself (blocking only when the
	// select has no default), never individually.
	commOps := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				commOps[comm] = true
			case *ast.ExprStmt:
				commOps[comm.X] = true
			case *ast.AssignStmt:
				for _, r := range comm.Rhs {
					commOps[r] = true
				}
			}
		}
		return true
	})

	lockwalk.Walk(pass, body, func(n ast.Node, held lockwalk.Held) {
		if len(held) == 0 {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !commOps[n] {
				dirs.Report(pass, n.Arrow, "channel send while %s", describe(held))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commOps[n] {
				dirs.Report(pass, n.OpPos, "channel receive while %s", describe(held))
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				dirs.Report(pass, n.Select, "select without default while %s", describe(held))
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					dirs.Report(pass, n.For, "range over channel while %s", describe(held))
				}
			}
		case *ast.CallExpr:
			if name, ok := blockingCall(pass, n); ok {
				dirs.Report(pass, n.Lparen, "%s while %s", name, describe(held))
			}
		}
	})
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall recognizes time.Sleep and sync.WaitGroup.Wait.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name == "Sleep" {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "time" {
				return "time.Sleep", true
			}
		}
	}
	if sel.Sel.Name == "Wait" {
		t := pass.TypesInfo.TypeOf(sel.X)
		if t == nil {
			return "", false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return "sync.WaitGroup.Wait", true
			}
		}
	}
	return "", false
}

// describe renders the held set for a diagnostic, deterministically.
func describe(held lockwalk.Held) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 1 {
		return fmt.Sprintf("mutex %s is held", keys[0])
	}
	return fmt.Sprintf("mutexes %s are held", strings.Join(keys, ", "))
}
