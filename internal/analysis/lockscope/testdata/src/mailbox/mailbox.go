// Package mailbox reintroduces the exact send-under-lock pattern that
// PR 1 fixed by hand in the overlay mailbox loops: a state mutation and
// a protocol send to a peer's bounded inbox inside the same critical
// section. lockscope must report it (acceptance criterion for the
// analyzer suite).
package mailbox

import "sync"

type message struct{ seq uint64 }

type node struct {
	mu    sync.Mutex
	seq   uint64
	peers []*node
	inbox chan message
}

// broadcastLocked is the deadlock: every peer doing this concurrently
// with full inboxes forms a cycle of senders blocked under their own
// locks, each waiting for a receiver that is blocked sending.
func (n *node) broadcast() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	m := message{seq: n.seq}
	for _, p := range n.peers {
		p.inbox <- m // want `channel send while mutex n\.mu is held`
	}
}

// broadcastFixed is the PR 1 shape: snapshot under the lock, send after
// releasing it. Clean.
func (n *node) broadcastFixed() {
	n.mu.Lock()
	n.seq++
	m := message{seq: n.seq}
	peers := append([]*node(nil), n.peers...)
	n.mu.Unlock()
	for _, p := range peers {
		p.inbox <- m
	}
}
