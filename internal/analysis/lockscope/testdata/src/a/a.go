// Positive and negative cases for the lockscope analyzer.
package a

import (
	"sync"
	"time"
)

type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	wg  sync.WaitGroup
	val int
}

func (b *box) sendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while mutex b\.mu is held`
	b.mu.Unlock()
}

func (b *box) sendUnderDeferredLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 // want `channel send while mutex b\.mu is held`
}

func (b *box) recvUnderRLock() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return <-b.ch // want `channel receive while mutex b\.rw is held`
}

func (b *box) selectNoDefaultUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select without default while mutex b\.mu is held`
	case v := <-b.ch:
		b.val = v
	case b.ch <- 2:
	}
}

func (b *box) sleepAndWaitUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while mutex b\.mu is held`
	b.wg.Wait()                  // want `sync\.WaitGroup\.Wait while mutex b\.mu is held`
	b.mu.Unlock()
}

func (b *box) rangeOverChannelUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want `range over channel while mutex b\.mu is held`
		b.val += v
	}
}

func (b *box) twoLocksHeld() {
	b.mu.Lock()
	b.rw.Lock()
	b.ch <- 1 // want `channel send while mutexes b\.mu, b\.rw are held`
	b.rw.Unlock()
	b.mu.Unlock()
}

// sendAfterUnlock is clean: the lock is released before the send.
func (b *box) sendAfterUnlock() {
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
	b.ch <- b.val
}

// selectWithDefaultUnderLock is clean: a default case makes the select
// non-blocking (the backpressure-shedding idiom).
func (b *box) selectWithDefaultUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- 1:
	default:
		b.val++
	}
}

// goroutineStartsUnlocked is clean: the literal launched with go runs on
// its own goroutine, which does not inherit the caller's lock.
func (b *box) goroutineStartsUnlocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1
	}()
}

// branchRelease is clean after the if: one branch released the lock, so
// the conservative tracking drops it.
func (b *box) branchRelease(cond bool) {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
	} else {
		b.val++
		b.mu.Unlock()
	}
	b.ch <- 1
}

// closureInheritsLock: a synchronously-invoked closure built under the
// lock still counts as running under it.
func (b *box) closureInheritsLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := func() {
		b.ch <- 1 // want `channel send while mutex b\.mu is held`
	}
	f()
}

// suppressed documents an intentional exception.
func (b *box) suppressed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//hfcvet:ignore lockscope buffered channel owned by this goroutine, cannot block
	b.ch <- 1
}
