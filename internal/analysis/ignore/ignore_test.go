package ignore_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
)

// newPass parses src and returns a minimal pass for the directive layer
// (no type information needed) plus the diagnostic sink.
func newPass(t *testing.T, src string) (*analysis.Pass, *[]string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var diags []string
	return &analysis.Pass{
		Analyzer: &analysis.Analyzer{Name: "testcheck"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, d.Message)
		},
	}, &diags
}

// lineOf returns the position of the first occurrence of needle in src,
// as a token.Pos into the parsed file.
func posOf(t *testing.T, pass *analysis.Pass, src, needle string) token.Pos {
	t.Helper()
	off := strings.Index(src, needle)
	if off < 0 {
		t.Fatalf("needle %q not in src", needle)
	}
	return pass.Fset.File(pass.Files[0].Pos()).Pos(off)
}

func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// diagAt is a source substring whose line receives a testcheck
		// diagnostic; empty means no diagnostic is attempted.
		diagAt         string
		wantSuppressed bool
		// wantParseDiags are substrings expected among the diagnostics
		// reported by Parse itself (malformed directives).
		wantParseDiags []string
	}{
		{
			name: "same line",
			src: "package p\n" +
				"var x = 1 //hfcvet:ignore testcheck the literal is intentional\n",
			diagAt:         "var x",
			wantSuppressed: true,
		},
		{
			name: "line above",
			src: "package p\n" +
				"//hfcvet:ignore testcheck the next line is intentional\n" +
				"var x = 1\n",
			diagAt:         "var x",
			wantSuppressed: true,
		},
		{
			name: "two lines above does not cover",
			src: "package p\n" +
				"//hfcvet:ignore testcheck too far away\n" +
				"var y = 2\n" +
				"var x = 1\n",
			diagAt:         "var x",
			wantSuppressed: false,
		},
		{
			name: "wrong analyzer name",
			src: "package p\n" +
				"var x = 1 //hfcvet:ignore othercheck reason applies to another pass\n",
			diagAt:         "var x",
			wantSuppressed: false,
		},
		{
			name: "missing justification is malformed",
			src: "package p\n" +
				"var x = 1 //hfcvet:ignore testcheck\n",
			diagAt:         "var x",
			wantSuppressed: false,
			wantParseDiags: []string{"malformed suppression"},
		},
		{
			name: "bare directive is malformed",
			src: "package p\n" +
				"var x = 1 //hfcvet:ignore\n",
			diagAt:         "var x",
			wantSuppressed: false,
			wantParseDiags: []string{"malformed suppression"},
		},
		{
			name: "block comment is inert, not malformed",
			src: "package p\n" +
				"/*hfcvet:ignore testcheck block comments do not pin a line*/\n" +
				"var x = 1\n",
			diagAt:         "var x",
			wantSuppressed: false,
		},
		{
			name: "directive inside multiline doc group",
			src: "package p\n" +
				"// x is documented at length,\n" +
				"// over several lines.\n" +
				"//hfcvet:ignore testcheck only the directive line matters\n" +
				"var x = 1\n",
			diagAt:         "var x",
			wantSuppressed: true,
		},
		{
			name: "trailing comment after code plus second statement",
			src: "package p\n" +
				"var x = 1 //hfcvet:ignore testcheck covers x only\n" +
				"var y = 2\n",
			diagAt:         "var y",
			wantSuppressed: true, // the directive's line is the line above y
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pass, diags := newPass(t, tc.src)
			dirs := ignore.Parse(pass)
			for _, want := range tc.wantParseDiags {
				found := false
				for _, d := range *diags {
					if strings.Contains(d, want) {
						found = true
					}
				}
				if !found {
					t.Errorf("Parse diagnostics %q lack %q", *diags, want)
				}
			}
			if len(tc.wantParseDiags) == 0 && len(*diags) != 0 {
				t.Errorf("Parse reported unexpectedly: %q", *diags)
			}
			if tc.diagAt == "" {
				return
			}
			pos := posOf(t, pass, tc.src, tc.diagAt)
			if got := dirs.Suppressed("testcheck", pos); got != tc.wantSuppressed {
				t.Errorf("Suppressed(testcheck, %q) = %v, want %v", tc.diagAt, got, tc.wantSuppressed)
			}
		})
	}
}

func TestReportUnused(t *testing.T) {
	src := "package p\n" +
		"var x = 1 //hfcvet:ignore testcheck absorbs the diagnostic below\n" +
		"var y = 2 //hfcvet:ignore testcheck never matches anything\n"
	pass, diags := newPass(t, src)
	dirs := ignore.Parse(pass)

	// The first directive earns its keep; the second never fires.
	if !dirs.Suppressed("testcheck", posOf(t, pass, src, "var x")) {
		t.Fatal("first directive should suppress")
	}
	dirs.ReportUnused(pass)
	if len(*diags) != 1 || !strings.Contains((*diags)[0], "stale suppression") {
		t.Fatalf("want exactly one stale-suppression report, got %q", *diags)
	}
}

func TestReportRespectsDirectives(t *testing.T) {
	src := "package p\n" +
		"var x = 1 //hfcvet:ignore testcheck intentional\n" +
		"var y = 2\n"
	pass, diags := newPass(t, src)
	dirs := ignore.Parse(pass)
	dirs.Report(pass, posOf(t, pass, src, "var x"), "on x")
	dirs.Report(pass, posOf(t, pass, src, "var y"), "on y")
	// "on y"? The directive's reach is its own line plus the next, and
	// var y sits on the line after the directive — so both are absorbed.
	if len(*diags) != 0 {
		t.Fatalf("want both reports suppressed (line + line-above reach), got %q", *diags)
	}
	dirs.ReportUnused(pass)
	if len(*diags) != 0 {
		t.Fatalf("directive was used; want no stale report, got %q", *diags)
	}
}
