// Package ignore implements hfcvet's suppression comments.
//
// A diagnostic from analyzer <name> at some line is suppressed when that
// line, or the line immediately above it, carries a comment of the form
//
//	//hfcvet:ignore <name> <justification>
//
// The justification is mandatory: a bare `//hfcvet:ignore lockscope` is
// itself reported, so every suppression in the tree documents why the
// invariant does not apply at that site.
package ignore

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "hfcvet:ignore"

// Directives is the parsed suppression table for one pass: analyzer name
// by file and line.
type Directives struct {
	fset  *token.FileSet
	lines map[string]map[int]string
}

// Parse scans the files of pass for //hfcvet:ignore comments and returns
// a lookup structure. Malformed directives (no analyzer name, or no
// justification) are reported immediately on pass.
func Parse(pass *analysis.Pass) *Directives {
	d := &Directives{fset: pass.Fset, lines: map[string]map[int]string{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(), "malformed suppression: want //hfcvet:ignore <analyzer> <justification>")
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if d.lines[p.Filename] == nil {
					d.lines[p.Filename] = map[int]string{}
				}
				d.lines[p.Filename][p.Line] = name
			}
		}
	}
	return d
}

// Suppressed reports whether a diagnostic from analyzer name at pos is
// covered by a directive on the same line or the line above.
func (d *Directives) Suppressed(name string, pos token.Pos) bool {
	p := d.fset.Position(pos)
	for _, l := range []int{p.Line, p.Line - 1} {
		if d.lines[p.Filename][l] == name {
			return true
		}
	}
	return false
}

// Report emits a diagnostic at pos through pass unless a directive for
// pass's analyzer covers that line.
func (d *Directives) Report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if d.Suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
