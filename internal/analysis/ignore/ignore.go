// Package ignore implements hfcvet's suppression comments.
//
// A diagnostic from analyzer <name> at some line is suppressed when that
// line, or the line immediately above it, carries a comment of the form
//
//	//hfcvet:ignore <name> <justification>
//
// The justification is mandatory: a bare `//hfcvet:ignore lockscope` is
// itself reported, so every suppression in the tree documents why the
// invariant does not apply at that site.
//
// Since hfcvet v2 a suppression must also *work for a living*: when an
// analyzer finishes a package, ReportUnused flags every directive naming
// that analyzer which never absorbed a diagnostic. A refactor that removes
// the offending code therefore removes its suppression in the same commit,
// instead of leaving fossil justifications that silence future, unrelated
// findings on the same line.
package ignore

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "hfcvet:ignore"

// directive is one parsed suppression: which analyzer it silences and
// whether it ever did.
type directive struct {
	name string
	pos  token.Pos
	used bool
}

// Directives is the parsed suppression table for one pass: analyzer name
// by file and line.
type Directives struct {
	fset  *token.FileSet
	lines map[string]map[int]*directive
}

// Parse scans the files of pass for //hfcvet:ignore comments and returns
// a lookup structure. Malformed directives (no analyzer name, or no
// justification) are reported immediately on pass. Directives only take
// the line-comment form: a //hfcvet:ignore inside a /* */ block is inert
// (block comments don't sit on "the offending line" in any useful sense)
// and parsing ignores it.
func Parse(pass *analysis.Pass) *Directives {
	d := &Directives{fset: pass.Fset, lines: map[string]map[int]*directive{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue // block comment
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(), "malformed suppression: want //hfcvet:ignore <analyzer> <justification>")
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if d.lines[p.Filename] == nil {
					d.lines[p.Filename] = map[int]*directive{}
				}
				d.lines[p.Filename][p.Line] = &directive{name: name, pos: c.Pos()}
			}
		}
	}
	return d
}

// lookup finds the directive covering a diagnostic from analyzer name at
// pos: same line or the line above.
func (d *Directives) lookup(name string, pos token.Pos) *directive {
	p := d.fset.Position(pos)
	for _, l := range []int{p.Line, p.Line - 1} {
		if dir := d.lines[p.Filename][l]; dir != nil && dir.name == name {
			return dir
		}
	}
	return nil
}

// Suppressed reports whether a diagnostic from analyzer name at pos is
// covered by a directive on the same line or the line above, marking the
// directive as earning its keep.
func (d *Directives) Suppressed(name string, pos token.Pos) bool {
	if dir := d.lookup(name, pos); dir != nil {
		dir.used = true
		return true
	}
	return false
}

// Report emits a diagnostic at pos through pass unless a directive for
// pass's analyzer covers that line.
func (d *Directives) Report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if d.Suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// ReportUnused flags every directive naming pass's analyzer that suppressed
// nothing during the pass — a stale justification left behind by a refactor.
// Call it at the end of the analyzer's run, after every Report.
func (d *Directives) ReportUnused(pass *analysis.Pass) {
	name := pass.Analyzer.Name
	for _, byLine := range d.lines {
		for _, dir := range byLine {
			if dir.name == name && !dir.used {
				pass.Reportf(dir.pos, "stale suppression: //hfcvet:ignore %s no longer matches any diagnostic; delete it", name)
			}
		}
	}
}
