// Fixture a: mixing sync/atomic updates with plain loads and stores of
// the same variable, with and without a guarding mutex.
package a

import (
	"sync"
	"sync/atomic"
)

type C struct {
	mu   sync.Mutex
	hits uint64
	cold int64
}

var total uint64

func (c *C) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&total, 1)
}

func (c *C) race() uint64 {
	return c.hits // want `plain access to field hits, which is updated atomically`
}

func (c *C) write() {
	c.hits = 0 // want `plain access to field hits, which is updated atomically`
}

func raceVar() uint64 {
	return total // want `plain access to total, which is updated atomically`
}

// guarded: the plain access happens under a mutex — deliberate mixing,
// not flagged.
func (c *C) guarded() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// snapshotLocked follows the Locked-helper convention: the caller holds
// the lock.
func (c *C) snapshotLocked() uint64 {
	return c.hits
}

// cold is never touched atomically: plain access is fine.
func (c *C) plainOnly() int64 {
	return c.cold
}

func (c *C) suppressed() uint64 {
	//hfcvet:ignore atomicmix fixture: read during single-threaded construction
	return c.hits
}
