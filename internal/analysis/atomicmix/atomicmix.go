// Package atomicmix defines an Analyzer that flags mixed atomic and
// plain access to the same variable.
//
// A field updated through sync/atomic (atomic.AddUint64(&s.n, 1)) makes
// a silent contract: every other access must also be atomic, or hold a
// mutex that the atomic writers also respect. A plain `s.n++` or
// `if s.n > 0` next to atomic updates compiles fine, usually works, and
// races under load — the exact class of bug the typed atomic wrappers
// (atomic.Uint64 fields) were introduced to prevent. This codebase uses
// the typed wrappers for new state, but the analyzer guards the legacy
// pointer-style sites and anything contributors bring in.
//
// Per package, the analyzer collects every variable whose address is
// passed to a sync/atomic operation, then reports each plain read or
// write of that variable performed with no mutex held (the lockwalk
// held-set; functions following the fooLocked naming convention are
// exempt, as in the guardedby pass).
//
// Suppress an intentional site with
//
//	//hfcvet:ignore atomicmix <why this access cannot race>
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
	"hfc/internal/analysis/lockwalk"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag variables accessed both through sync/atomic and through plain loads/stores without a mutex",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	atomicVars := collectAtomicVars(pass)
	if len(atomicVars) == 0 {
		return nil, nil
	}
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isLockedHelper(fn.Name.Name) {
				continue
			}
			checkFunc(pass, dirs, atomicVars, fn.Body)
		}
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

func isLockedHelper(name string) bool {
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

// collectAtomicVars maps every variable object whose address feeds a
// sync/atomic call to one witnessing position, and remembers the exact
// &x argument nodes so the atomic sites themselves are not re-reported
// as plain accesses.
type atomicUse struct {
	witness string
	addrOf  map[ast.Expr]bool
}

func collectAtomicVars(pass *analysis.Pass) map[types.Object]*atomicUse {
	out := map[types.Object]*atomicUse{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := addressedObject(pass, un.X)
				if obj == nil {
					continue
				}
				use := out[obj]
				if use == nil {
					p := pass.Fset.Position(call.Pos())
					use = &atomicUse{
						witness: filepath.Base(p.Filename) + ":" + itoa(p.Line),
						addrOf:  map[ast.Expr]bool{},
					}
					out[obj] = use
				}
				use.addrOf[un.X] = true
			}
			return true
		})
	}
	return out
}

// addressedObject resolves &x or &s.f to the variable object.
func addressedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

// isAtomicCall recognizes sync/atomic package-level operations.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// checkFunc reports plain, unguarded accesses to atomic variables in one
// function body.
func checkFunc(pass *analysis.Pass, dirs *ignore.Directives, atomicVars map[types.Object]*atomicUse, body *ast.BlockStmt) {
	lockwalk.Walk(pass, body, func(n ast.Node, held lockwalk.Held) {
		if len(held) > 0 {
			return // some mutex guards this access; the mix is deliberate
		}
		var obj types.Object
		var at ast.Node
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				obj = sel.Obj()
				at = n.Sel
			}
		case *ast.Ident:
			obj = pass.TypesInfo.ObjectOf(n)
			// Field objects are handled through their SelectorExpr; the
			// selector's Sel ident resolves to the same object and would
			// double-report.
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return
			}
			at = n
		default:
			return
		}
		use, tracked := atomicVars[obj]
		if !tracked {
			return
		}
		// The atomic operation's own &x argument is not a plain access.
		if sel, ok := n.(*ast.SelectorExpr); ok && use.addrOf[sel] {
			return
		}
		if id, ok := n.(*ast.Ident); ok && use.addrOf[id] {
			return
		}
		dirs.Report(pass, at.Pos(),
			"plain access to %s, which is updated atomically (e.g. at %s); use sync/atomic or hold the guarding mutex",
			objName(obj), use.witness)
	})
}

// objName renders a variable for the diagnostic.
func objName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	return obj.Name()
}

// itoa avoids strconv for a single call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
