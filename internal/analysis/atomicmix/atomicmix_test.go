package atomicmix_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "a")
}
