package guardedby_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "a", "clean")
}
