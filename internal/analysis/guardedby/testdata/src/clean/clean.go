// Package clean is the guardedby negative fixture: consistently locked
// accesses, including through a closure built under the lock, produce no
// diagnostics.
package clean

import "sync"

type store struct {
	mu sync.RWMutex
	// guarded by mu
	items map[int]string
}

func (s *store) get(k int) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

func (s *store) put(k int, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.items == nil {
		s.items = map[int]string{}
	}
	s.items[k] = v
}

// earlyReturn releases in a terminating branch: the fall-through path
// still holds the lock.
func (s *store) earlyReturn(k int) string {
	s.mu.Lock()
	if s.items == nil {
		s.mu.Unlock()
		return ""
	}
	v := s.items[k]
	s.mu.Unlock()
	return v
}

// snapshot uses a closure under the read lock, like the overlay's
// provider lookup.
func (s *store) snapshot() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	collect := func() []string {
		out := make([]string, 0, len(s.items))
		for _, v := range s.items {
			out = append(out, v)
		}
		return out
	}
	return collect()
}
