// Positive and negative cases for the guardedby analyzer.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int

	rw sync.RWMutex
	// table of live entries; guarded by rw
	table map[string]int

	free int // unguarded: no annotation
}

// badRead accesses n without the lock.
func (c *counter) badRead() int {
	return c.n // want `access to c\.n without holding c\.mu`
}

// badWrite writes table without any lock.
func (c *counter) badWrite(k string) {
	c.table[k] = 1 // want `access to c\.table without holding c\.rw`
}

// writeUnderReadLock holds the wrong mode.
func (c *counter) writeUnderReadLock(k string) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.table[k] = 1 // want `write to c\.table under read lock c\.rw`
}

// goodLocked does everything right.
func (c *counter) goodLocked(k string) int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.table[k] + c.free
}

// goodWriteLock writes under the exclusive lock.
func (c *counter) goodWriteLock(k string) {
	c.rw.Lock()
	c.table[k] = 2
	c.rw.Unlock()
}

// bumpLocked follows the *Locked naming convention: callers hold mu.
func (c *counter) bumpLocked() {
	c.n++
}

// newCounter constructs via a composite literal: not shared yet, exempt.
func newCounter() *counter {
	return &counter{n: 1, table: map[string]int{}}
}

// lateInit initializes a guarded field outside the literal without the
// lock: still a violation (move it into the literal or take the lock).
func newCounterLateInit() *counter {
	c := &counter{}
	c.table = map[string]int{} // want `access to c\.table without holding c\.rw`
	return c
}

// suppressed documents a justified exception.
func (c *counter) suppressed() int {
	//hfcvet:ignore guardedby value is immutable after construction in this test
	return c.n
}

// wrongMutexName: the annotation must name a real mutex field.
type broken struct {
	// guarded by missing
	x int // want `struct has no sync\.Mutex/RWMutex field named missing`
}
