// Package guardedby defines an Analyzer that enforces `// guarded by mu`
// field annotations.
//
// A struct field whose doc or line comment contains `guarded by <mu>`
// (where <mu> names a sync.Mutex / sync.RWMutex field of the same
// struct) may only be accessed through a selector x.field while x.<mu>
// is held: in any mode for reads, exclusively for writes (an RLock does
// not license a write through an RWMutex).
//
// Exemptions, in decreasing order of preference:
//
//   - composite-literal construction ( &T{field: v} ) — the value is not
//     shared yet, so the zero-annotation form needs no lock;
//   - functions whose name ends in "Locked", the convention for helpers
//     documented to be called with the lock already held;
//   - an explicit `//hfcvet:ignore guardedby <justification>` on the
//     access line.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
	"hfc/internal/analysis/lockwalk"
)

// Analyzer is the guardedby pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that fields annotated `// guarded by mu` are only accessed with mu held",
	Run:  run,
}

var annotation = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *analysis.Pass) (interface{}, error) {
	guards := collectAnnotations(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isLockedHelper(fn.Name.Name) {
				continue
			}
			checkFunc(pass, dirs, guards, fn.Body)
		}
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

// isLockedHelper reports the fooLocked naming convention.
func isLockedHelper(name string) bool {
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}

// collectAnnotations maps annotated field objects to the name of the
// mutex field guarding them, validating that the mutex field exists on
// the same struct and has a sync mutex type.
func collectAnnotations(pass *analysis.Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotatedMutex(field)
				if mu == "" {
					continue
				}
				// A mutex's own doc comment often mentions what it guards
				// ("...; guarded by statMu"); that does not annotate the
				// mutex itself.
				if t := pass.TypesInfo.TypeOf(field.Type); isMutexType(t) {
					continue
				}
				if !structHasMutex(pass, st, mu) {
					pass.Reportf(field.Pos(), "guarded by %s: struct has no sync.Mutex/RWMutex field named %s", mu, mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotatedMutex extracts the mutex name from a field's comments.
func annotatedMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := annotation.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasMutex checks the guard names a mutex-typed sibling field.
func structHasMutex(pass *analysis.Pass, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == mu {
				return isMutexType(pass.TypesInfo.TypeOf(field.Type))
			}
		}
	}
	return false
}

// isMutexType reports whether t is (a pointer to) sync.Mutex/RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkFunc verifies every guarded selector access in one function.
func checkFunc(pass *analysis.Pass, dirs *ignore.Directives, guards map[types.Object]string, body *ast.BlockStmt) {
	writes := writeTargets(body)
	lockwalk.Walk(pass, body, func(n ast.Node, held lockwalk.Held) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := fieldObject(pass, sel)
		if obj == nil {
			return
		}
		mu, guarded := guards[obj]
		if !guarded {
			return
		}
		key := types.ExprString(sel.X) + "." + mu
		mode, ok := held[key]
		if !ok {
			dirs.Report(pass, sel.Sel.Pos(), "access to %s.%s without holding %s (field is `guarded by %s`)",
				types.ExprString(sel.X), sel.Sel.Name, key, mu)
			return
		}
		if writes[sel] && mode != lockwalk.Write {
			dirs.Report(pass, sel.Sel.Pos(), "write to %s.%s under read lock %s; exclusive Lock required",
				types.ExprString(sel.X), sel.Sel.Name, key)
		}
	})
}

// fieldObject resolves a selector to the struct field object it selects,
// or nil when the selector is not a field access.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// writeTargets collects the selector expressions written through in the
// body: assignment LHS subtrees and IncDec targets. A write through
// s.caps[i] marks both the index expression's base selector and any
// nested ones.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if s, ok := n.(*ast.SelectorExpr); ok {
				writes[s] = true
				// Only the outermost selector chain is the written
				// location; deeper bases are reads, but flagging a write
				// through a guarded base under RLock errs safe.
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		}
		return true
	})
	return writes
}
