// Positive and negative cases for the floatdist analyzer.
package a

type edge struct{ weight float64 }

func equalDist(a, b float64) bool {
	return a == b // want `== between two computed floating-point values`
}

func tieBreak(es []edge, i, j int) bool {
	if es[i].weight != es[j].weight { // want `!= between two computed floating-point values`
		return es[i].weight < es[j].weight
	}
	return i < j
}

// sentinel comparisons against constants stay allowed.
func isZero(d float64) bool {
	return d == 0
}

func notMax(d float64) bool {
	const max = 1e308
	return d != max
}

// integers are not the analyzer's business.
func intEqual(a, b int) bool {
	return a == b
}

// orderings are fine; only exact equality is fragile.
func closer(a, b float64) bool {
	return a < b
}

// suppressed documents an intentional exact tie-break.
func exactTie(a, b float64) bool {
	//hfcvet:ignore floatdist deterministic tie-break on identical cached values
	return a == b
}
