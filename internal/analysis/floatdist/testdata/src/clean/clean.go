// Package clean is the floatdist negative fixture: epsilon-helper usage
// and ordering comparisons produce no diagnostics.
package clean

import "math"

const eps = 1e-9

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func shorterPath(cost, best float64) bool {
	return cost < best
}

func sameLength(a, b float64) bool {
	return almostEqual(a, b)
}
