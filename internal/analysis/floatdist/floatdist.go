// Package floatdist defines an Analyzer that flags == and != between two
// non-constant floating-point expressions.
//
// Distances, coordinates and path costs in this codebase are float64
// values produced by different arithmetic routes (embedded coordinates,
// Dijkstra sums, cached aggregates), so exact equality between two
// computed values is almost always a latent bug; such comparisons must
// go through an epsilon helper (floats.AlmostEqual).
//
// Comparing a computed float against a constant (x == 0, d != math.MaxFloat64)
// stays allowed: sentinel checks against exact values are well-defined.
// Intentional exact comparisons — deterministic tie-breaking in sort
// comparators, for example — carry a suppression:
//
//	//hfcvet:ignore floatdist <why exact equality is intended>
package floatdist

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
)

// Analyzer is the floatdist pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatdist",
	Doc:  "flag ==/!= between two computed floating-point values; use an epsilon helper",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !computedFloat(pass, cmp.X) || !computedFloat(pass, cmp.Y) {
				return true
			}
			dirs.Report(pass, cmp.OpPos,
				"%s between two computed floating-point values; use floats.AlmostEqual (or suppress for intentional exact ties)",
				cmp.Op)
			return true
		})
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

// computedFloat reports whether e is a float-typed expression that is
// not a compile-time constant.
func computedFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false // constant (or untyped literal): sentinel comparisons allowed
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
