package floatdist_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/floatdist"
)

func TestFloatdist(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatdist.Analyzer, "a", "clean")
}
