package hotalloc_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a")
}
