// Fixture a: allocation budgets on annotated hot paths. Unannotated
// functions allocate freely; annotated ones are held to their declared
// site count.
package a

type T struct{ n int }

// cold is unmarked: no budget applies.
func cold(n int) []int {
	return make([]int, n)
}

//hfc:hotpath budget=1
func within(n int) []int {
	return make([]int, n)
}

//hfc:hotpath budget=1
func over(n int) []int { // want `hot path over has 3 potential allocation sites, budget 1`
	xs := make([]int, 0, n)
	xs = append(xs, n)
	p := new(int)
	_ = p
	return xs
}

//hfc:hotpath
func zeroBudget() *T { // want `hot path zeroBudget has 1 potential allocation sites, budget 0`
	return &T{}
}

//hfc:hotpath budget=0
func concat(a, b string) string { // want `hot path concat has 1 potential allocation sites, budget 0`
	return a + b
}

//hfc:hotpath budget=0
func convert(b []byte) string { // want `hot path convert has 1 potential allocation sites, budget 0`
	return string(b)
}

//hfc:hotpath budget=0
func boxes(v int, sink func(any)) { // want `hot path boxes has 1 potential allocation sites, budget 0`
	sink(v)
}

//hfc:hotpath budget=0
func noBox(p *T, sink func(any)) {
	sink(p) // pointer-shaped: fits the interface word, no allocation
}

//hfc:hotpath budget=0
func pooled() []byte {
	//hfcvet:ignore hotalloc fixture: the buffer comes from a pool in the real caller
	buf := make([]byte, 64)
	return buf
}

//hfc:hotpath budget=lots
func malformed() {} // want `malformed hot-path annotation`
