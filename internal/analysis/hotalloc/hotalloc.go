// Package hotalloc defines an Analyzer that ratchets allocation counts
// on the serving hot paths.
//
// PR 4's resolution benchmarks live and die by allocations per request
// (a cache hit must stay allocation-free; a full path computation runs
// from a pooled scratch). Benchmarks catch regressions after the fact;
// this analyzer makes the budget part of the function's declaration:
//
//	// findPathScratch runs Dijkstra from pooled scratch state.
//	//
//	//hfc:hotpath budget=3
//	func (r *Router) findPathScratch(...) ...
//
// Every function whose doc comment carries //hfc:hotpath is scanned for
// potential allocation sites, and a count above the declared budget
// (default 0) is reported with the full site list. Counted sites:
//
//   - make and new calls
//   - composite literals (outermost only — nested literals share the
//     enclosing allocation)
//   - append calls (may grow the backing array)
//   - function literals (closure allocation)
//   - string concatenation with a non-constant result
//   - string ⇄ byte/rune-slice conversions
//   - interface boxing: a non-pointer-shaped value passed for an
//     interface parameter (pointers, maps, chans and funcs fit the
//     interface word and do not count)
//
// This is a syntactic may-allocate count, deliberately cruder than the
// compiler's escape analysis: sites the compiler proves stack-safe still
// count, so the budget is a stable upper bound that does not silently
// shift with inlining decisions. A site that is provably cold or pooled
// can be excluded with
//
//	//hfcvet:ignore hotalloc <why this site does not allocate per call>
//
// which removes it from the count.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "enforce //hfc:hotpath allocation budgets on hot-path functions",
	Run:  run,
}

const directive = "hfc:hotpath"

var budgetRe = regexp.MustCompile(`^//hfc:hotpath(?:\s+budget=(\d+))?\s*$`)

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			budget, marked := hotpathBudget(pass, fn)
			if !marked {
				continue
			}
			checkHot(pass, dirs, fn, budget)
		}
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

// hotpathBudget parses the //hfc:hotpath line from a function's doc
// comment. Malformed forms (extra tokens, bad budget) are reported.
func hotpathBudget(pass *analysis.Pass, fn *ast.FuncDecl) (int, bool) {
	if fn.Doc == nil {
		return 0, false
	}
	for _, c := range fn.Doc.List {
		if !strings.HasPrefix(c.Text, "//"+directive) {
			continue
		}
		m := budgetRe.FindStringSubmatch(c.Text)
		if m == nil {
			// Reported on the declaration, where a fix lands anyway.
			pass.Reportf(fn.Name.Pos(), "malformed hot-path annotation: want //hfc:hotpath budget=<n>")
			return 0, false
		}
		if m[1] == "" {
			return 0, true
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			pass.Reportf(fn.Name.Pos(), "malformed hot-path budget %q", m[1])
			return 0, false
		}
		return n, true
	}
	return 0, false
}

// site is one potential allocation.
type site struct {
	what string
	pos  token.Pos
}

// checkHot counts allocation sites in one hot function and reports when
// the count exceeds the budget.
func checkHot(pass *analysis.Pass, dirs *ignore.Directives, fn *ast.FuncDecl, budget int) {
	var sites []site
	add := func(what string, pos token.Pos) {
		if dirs.Suppressed("hotalloc", pos) {
			return // justified site: excluded from the count
		}
		sites = append(sites, site{what: what, pos: pos})
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			// Count the outermost literal only; nested literals share the
			// enclosing allocation. Calls inside elements still count.
			add("composite literal", n.Pos())
			for _, e := range n.Elts {
				ast.Inspect(e, func(m ast.Node) bool {
					if _, nested := m.(*ast.CompositeLit); nested {
						return true
					}
					return visit(m)
				})
			}
			return false
		case *ast.FuncLit:
			// The closure itself allocates; its body is part of this
			// function's per-call cost when invoked inline, so keep
			// counting inside it too.
			add("closure", n.Pos())
		case *ast.CallExpr:
			classifyCall(pass, n, add)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				add("string concatenation", n.OpPos)
			}
		}
		return true
	}
	ast.Inspect(fn.Body, visit)

	if len(sites) <= budget {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hot path %s has %d potential allocation sites, budget %d:",
		fn.Name.Name, len(sites), budget)
	for _, s := range sites {
		p := pass.Fset.Position(s.pos)
		fmt.Fprintf(&b, "\n\t%s at %s:%d", s.what, filepath.Base(p.Filename), p.Line)
	}
	dirs.Report(pass, fn.Name.Pos(), "%s", b.String())
}

// classifyCall records make/new/append, allocating conversions, and
// interface-boxing arguments.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, add func(string, token.Pos)) {
	// Conversions: T(x). String/byte-slice crossings copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocatingConversion(pass, tv.Type, call.Args[0]) {
			add("string/slice conversion", call.Pos())
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add("make", call.Pos())
			case "new":
				add("new", call.Pos())
			case "append":
				add("append", call.Pos())
			}
			return
		}
	}
	// Interface boxing of non-pointer-shaped arguments.
	sigTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		add("interface boxing", arg.Pos())
	}
}

// boxFree reports whether a value of type t fits an interface without
// allocating: interfaces themselves, pointer-shaped types, and untyped
// nil.
func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}

// allocatingConversion reports string ⇄ []byte / []rune crossings.
func allocatingConversion(pass *analysis.Pass, to types.Type, arg ast.Expr) bool {
	from := pass.TypesInfo.TypeOf(arg)
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// isNonConstString reports a string + whose result is not a constant.
func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
