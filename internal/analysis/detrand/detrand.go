// Package detrand defines an Analyzer that keeps the deterministic core
// packages deterministic: experiment tables (Fig. 8/9, the fault sweeps)
// are only reproducible if every package between the seed and the result
// draws randomness from an injected, seeded *rand.Rand and takes time
// from an injected clock.
//
// Inside the configured packages (by default the simulation core:
// state, routing, hfc, graph, coords, svc, topology) the analyzer
// reports:
//
//   - calls to math/rand (and math/rand/v2) package-level functions that
//     use the global source — rand.Intn, rand.Shuffle, rand.Float64, ...
//     Constructors (rand.New, rand.NewSource, rand.NewZipf, ...) are the
//     sanctioned way to build an injectable source and stay allowed;
//   - bare time.Now() calls;
//   - wall-clock scheduling — time.Sleep, time.After, time.AfterFunc,
//     time.NewTimer, time.NewTicker, time.Tick. Since the virtual-time
//     runtime (internal/vtime) these must go through the injected Clock
//     so the same code runs identically on the real clock and in
//     simulation; vtime itself is the sanctioned boundary and is not in
//     the checked set.
//
// Suppress an intentional site with
//
//	//hfcvet:ignore detrand <why determinism is preserved>
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand functions and time.Now in the deterministic core packages",
	Run:  run,
}

// DefaultPackages is the comma-separated list of package names the check
// applies to when the -packages flag is not set. experiments is included
// since hfcvet v2: the paper tables it emits are the artifacts whose
// reproducibility everything else protects. overlay and netsim joined
// with the virtual-time runtime: both must schedule exclusively through
// the injected Clock so simulation runs stay byte-identical per seed
// (vtime itself implements the clock and stays out of the set).
const DefaultPackages = "state,routing,hfc,graph,coords,svc,topology,serve,geo,chaos,experiments,overlay,netsim"

var packagesFlag string

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", DefaultPackages,
		"comma-separated package names that must stay deterministic")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !deterministic(pass.Pkg.Name()) {
		return nil, nil
	}
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkg.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if strings.HasPrefix(sel.Sel.Name, "New") {
					return true // constructors build injectable sources
				}
				dirs.Report(pass, call.Pos(),
					"%s.%s draws from the global math/rand source; inject a seeded *rand.Rand instead",
					pkg.Name(), sel.Sel.Name)
			case "time":
				switch sel.Sel.Name {
				case "Now":
					dirs.Report(pass, call.Pos(),
						"time.Now in a deterministic package; inject a clock so experiment seeds stay meaningful")
				case "Sleep", "After", "AfterFunc", "NewTimer", "NewTicker", "Tick":
					dirs.Report(pass, call.Pos(),
						"time.%s schedules on the wall clock in a deterministic package; use the injected Clock (vtime.Real or a Sim) instead",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

// deterministic reports whether a package name is in the configured set.
func deterministic(name string) bool {
	// Test variants ("state" test binary package "state_test") count too.
	name = strings.TrimSuffix(name, "_test")
	for _, p := range strings.Split(packagesFlag, ",") {
		if strings.TrimSpace(p) == name {
			return true
		}
	}
	return false
}
